// Command pinsqld is the autonomous diagnosing daemon: it monitors one or
// many (simulated) cloud database instances through the full PinSQL
// pipeline — streaming collection via the broker, windowed aggregation,
// round-the-clock anomaly detection, diagnosis on detection, and
// (optionally) automatic repairing actions — mirroring the production
// deployment of Fig. 2, where one diagnosis cluster multiplexes a fleet
// of RDS instances.
//
// Each monitoring window simulates `-window` seconds of instance time; a
// deterministic incident rotation injects an anomaly every other window so
// the pipeline has work.
//
// With -data-dir every instance's query-log store, template registry, and
// committed-window journal live on disk (internal/logstore/segment): a
// restart — even after SIGKILL — resumes every instance at its last
// committed window and runs the remainder of its `-windows` target,
// reproducing the uninterrupted run byte for byte.
//
// With -serve the process exposes an HTTP control plane (fleet status,
// per-instance diagnoses, Prometheus metrics — including per-stage
// pinsql_stage_duration_seconds summaries for collect/detect/diagnose/
// commit — and pprof) and runs until
// SIGTERM/SIGINT, which triggers a graceful drain: queued windows are
// diagnosed and committed, durable topics are sealed, and the process
// exits 0.
//
// With -shards K the fleet is hash-partitioned across K fully independent
// scheduler/store shards — each with its own worker pool, its own durable
// stores under -data-dir/shard-<k>/, and its own group-committed window
// journal — behind one aggregating control plane (GET /shards shows the
// per-shard rollups). The report stays byte-identical for every shard
// count; 0 picks GOMAXPROCS, and a durable layout pins the count it was
// created with.
//
// With -role coordinator every shard runs as a separate supervised
// `pinsqld -role worker` process speaking a small versioned HTTP/JSON
// worker API; the parent process is a pure fan-out control plane. A
// SIGKILLed worker is relaunched and resumes from its own
// data-dir/shard-<k>/ journal; the aggregated report stays byte-identical
// to in-process mode. -role worker serves one shard directly (normally
// spawned by a coordinator, occasionally by hand for debugging).
//
// With -ingest the daemon monitors a recorded trace instead of the
// simulator: a MySQL slow query log, a pg_stat_activity-style wait-event
// sample stream, or a pinsql trace file (gzip detected automatically,
// format guessed from the name unless -ingest-format says otherwise).
// The recording is replayed through the identical pipeline — windowed,
// detected, diagnosed — and the run ends when the trace does.
//
// Usage:
//
//	pinsqld -windows 6 -window 1200 -auto-repair
//	pinsqld -data-dir /var/lib/pinsql -windows 6     # durable, resumable
//	pinsqld -instances 8 -serve :8080                # fleet + control plane
//	pinsqld -ingest slow.log.gz -ingest-format slowlog
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pinsql/internal/fleet"
	"pinsql/internal/ingest"
	"pinsql/internal/parallel"
	"pinsql/internal/shard"
	"pinsql/internal/shard/remote"
)

func main() {
	// A coordinator relaunches this binary with the worker config in the
	// environment; such a process is a worker no matter its argv.
	remote.MaybeWorker()

	var (
		instances  = flag.Int("instances", 1, "number of simulated instances to monitor")
		windows    = flag.Int("windows", 4, "monitoring windows each instance should have committed in total (a restarted run finishes the remainder)")
		windowSec  = flag.Int("window", 1200, "window length in simulated seconds")
		seed       = flag.Int64("seed", 42, "simulation seed")
		autoRepair = flag.Bool("auto-repair", false, "execute suggested repairing actions")
		shards     = flag.Int("shards", 1, "independent scheduler/store shards; instances are hash-partitioned across them (0 = GOMAXPROCS; a durable layout keeps the count it was created with)")
		workers    = flag.Int("workers", 0, "total scheduler workers split across shards (0 = GOMAXPROCS, 1 = sequential)")
		queueDepth = flag.Int("queue-depth", 8, "staged windows per instance before diagnosis shedding")
		dataDir    = flag.String("data-dir", "", "directory for the durable per-instance stores (empty = in-memory)")
		syncEvery  = flag.Int("sync-every", 0, "fsync the log-store wal every N records (0 = only at seal/close; process-crash safe either way)")
		serve      = flag.String("serve", "", "address for the HTTP control plane (empty = run to completion and exit)")

		role       = flag.String("role", "", "process role: \"\" runs shards in-process, \"coordinator\" runs one supervised pinsqld worker process per shard, \"worker\" serves one shard's worker API (normally spawned by a coordinator)")
		shardIndex = flag.Int("shard-index", 0, "this worker's shard index (with -role worker)")
		workerAddr = flag.String("worker-addr", "", "worker API listen address (with -role worker; empty = 127.0.0.1: an OS-picked port)")
		addrFile   = flag.String("addr-file", "", "file the worker publishes host:port and pid to (with -role worker; empty = <data-dir>/worker-<k>.addr)")

		ingestPath   = flag.String("ingest", "", "replay a recorded trace file instead of simulating (slow log, wait-event JSONL, or pinsql trace; .gz fine)")
		ingestFormat = flag.String("ingest-format", "", "trace format: slowlog, waitevents, or trace (empty = guess from the file name)")
		ingestSpeed  = flag.Float64("ingest-speed", 0, "pace trace replay against the wall clock at this factor (0 = as fast as possible)")
	)
	flag.Parse()

	// Ingest mode defaults differ where the simulator's do not fit:
	// recorded traces are minutes long, so windows default to 2 simulated
	// minutes and the run ends with the trace.
	windowSet, windowsSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "window":
			windowSet = true
		case "windows":
			windowsSet = true
		}
	})
	if *ingestPath != "" {
		if !windowSet {
			*windowSec = 120
		}
		if !windowsSet {
			*windows = 0 // until the trace ends
		}
	}

	opt := shard.Options{
		Shards:     *shards,
		Workers:    *workers,
		QueueDepth: *queueDepth,
		DataDir:    *dataDir,
		SyncEvery:  *syncEvery,
	}
	ing := ingestConfig{path: *ingestPath, format: *ingestFormat, speed: *ingestSpeed}

	// The multi-process roles ship specs to workers as a serializable
	// recipe; trace-backed specs carry closures and cannot cross the
	// process boundary, so -ingest stays in-process.
	if *role != "" && ing.path != "" {
		fmt.Fprintln(os.Stderr, "pinsqld: -ingest runs in-process; drop -role")
		os.Exit(1)
	}
	specSet := remote.SpecSet{Seed: *seed, Windows: *windows, WindowSec: *windowSec, AutoRepair: *autoRepair}
	if *instances <= 1 {
		specSet.Single = "pinsqld"
	} else {
		specSet.Instances = *instances
	}

	switch *role {
	case "":
	case "coordinator":
		opt.Runtime = remote.Factory(remote.Options{Specs: specSet, DataDir: *dataDir})
	case "worker":
		if err := runWorker(specSet, *shardIndex, *shards, *workers, *queueDepth, *syncEvery, *dataDir, *workerAddr, *addrFile); err != nil {
			fmt.Fprintln(os.Stderr, "pinsqld:", err)
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "pinsqld: unknown -role %q (want coordinator or worker)\n", *role)
		os.Exit(1)
	}
	if err := run(*instances, *windows, *windowSec, *seed, *autoRepair, opt, *serve, ing); err != nil {
		fmt.Fprintln(os.Stderr, "pinsqld:", err)
		os.Exit(1)
	}
}

// runWorker is `pinsqld -role worker`: serve one shard's worker API until
// the coordinator posts /api/v1/quit. The shard's worker budget is the
// same pinned split the coordinator computes, so a hand-launched worker
// produces the same bytes a spawned one would.
func runWorker(specs remote.SpecSet, shardIndex, shards, workers, queueDepth, syncEvery int, dataDir, addr, addrFile string) error {
	if shards < 1 {
		return fmt.Errorf("-role worker needs an explicit -shards count")
	}
	if addrFile == "" {
		if dataDir == "" {
			return fmt.Errorf("-role worker needs -addr-file (or -data-dir to derive it)")
		}
		addrFile = filepath.Join(dataDir, fmt.Sprintf("worker-%d.addr", shardIndex))
	}
	return remote.RunWorker(remote.Config{
		APIVersion: remote.APIVersion,
		Shard:      shardIndex,
		Shards:     shards,
		Specs:      specs,
		Workers:    shard.WorkerShare(parallel.Resolve(workers), shardIndex, shards),
		QueueDepth: queueDepth,
		SyncEvery:  syncEvery,
		DataDir:    dataDir,
		Addr:       addr,
		AddrFile:   addrFile,
	})
}

type ingestConfig struct {
	path   string
	format string
	speed  float64
}

// traceSpec builds the trace-backed instance spec for -ingest: one
// instance, named after the file, replaying through the ingest stack.
func (c ingestConfig) traceSpec(windows, windowSec int) fleet.InstanceSpec {
	id := strings.TrimSuffix(filepath.Base(c.path), ".gz")
	if ext := filepath.Ext(id); ext != "" {
		id = strings.TrimSuffix(id, ext)
	}
	spec := fleet.TraceSpec(id, windowSec, func() (ingest.Source, error) {
		return ingest.Open(c.path, c.format, ingest.OpenOptions{
			Replay: ingest.ReplayOptions{Speed: c.speed},
		})
	})
	spec.Windows = windows
	return spec
}

func run(instances, windows, windowSec int, seed int64, autoRepair bool, opt shard.Options, serve string, ing ingestConfig) error {
	var specs []fleet.InstanceSpec
	switch {
	case ing.path != "":
		if autoRepair {
			return fmt.Errorf("-auto-repair has no live database to act on in -ingest mode")
		}
		if instances > 1 {
			return fmt.Errorf("-ingest replays one trace; drop -instances")
		}
		specs = []fleet.InstanceSpec{ing.traceSpec(windows, windowSec)}
	case instances <= 1:
		specs = []fleet.InstanceSpec{fleet.DefaultSpec("pinsqld", seed, windows, windowSec)}
	default:
		specs = fleet.DefaultFleet(instances, seed, windows, windowSec)
	}
	for i := range specs {
		specs[i].AutoRepair = autoRepair
	}

	// One progress line per committed window, as the scheduler drains.
	opt.OnCommit = func(id string, rep *fleet.WindowReport) {
		line := fmt.Sprintf("%s window %d [%d, %d)s: records=%d anomalies=%d",
			id, rep.Window, rep.FromMs/1000, rep.ToMs/1000, rep.Records, len(rep.Anomalies))
		if rep.Injected != "" {
			line += " injected=" + rep.Injected
		}
		if rep.Shed {
			line += " SHED"
		}
		fmt.Println(line)
	}

	m, err := shard.New(specs, opt)
	if err != nil {
		return err
	}
	if opt.Shards != 1 || m.Shards() != 1 {
		fmt.Printf("fleet of %d instances across %d shards (%d workers total)\n",
			len(specs), m.Shards(), m.Workers())
	}
	for _, is := range m.Status().Instances {
		if is.Committed > 0 {
			fmt.Printf("%s: recovered %d committed windows, resuming at window %d (shard %d)\n",
				is.ID, is.Committed, is.Committed, is.Shard)
		}
	}

	if serve == "" {
		m.Start()
		werr := m.Wait()
		rep, rerr := m.Report()
		fmt.Print(rep)
		if cerr := m.Close(); werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = rerr
		}
		return werr
	}

	ln, err := net.Listen("tcp", serve)
	if err != nil {
		m.Close()
		return err
	}
	srv := &http.Server{Handler: m.Handler()}
	go srv.Serve(ln)
	fmt.Printf("control plane on http://%s (GET /fleet, /shards, /instances/{id}/diagnoses, /metrics, /debug/pprof/)\n", ln.Addr())

	m.Start()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	// Serve until asked to stop — a finished fleet keeps its control plane
	// up so status, diagnoses, and metrics stay queryable.
	s := <-sig
	fmt.Printf("received %s, draining fleet\n", s)
	werr := m.Stop()
	rep, rerr := m.Report()
	fmt.Print(rep)
	if werr == nil {
		werr = rerr
	}
	// Close releases every shard engine — and, in multi-process mode, asks
	// each drained worker process to exit.
	if cerr := m.Close(); werr == nil {
		werr = cerr
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && werr == nil {
		werr = err
	}
	return werr
}
