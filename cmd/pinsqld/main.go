// Command pinsqld is the autonomous diagnosing daemon: it continuously
// monitors a (simulated) cloud database instance through the full PinSQL
// pipeline — streaming collection via the broker, windowed aggregation,
// round-the-clock anomaly detection, diagnosis on detection, and
// (optionally) automatic repairing actions — mirroring the production
// deployment of Fig. 2.
//
// Each monitoring window simulates `-window` seconds of instance time; a
// random anomaly is injected every few windows so the pipeline has work.
//
// With -data-dir the query-log store and template registry live on disk
// (internal/logstore/segment): a restart reopens the store, replays the
// registry snapshot + delta log, and resumes monitoring after the last
// persisted record, so diagnosis history survives process death. Without
// it everything is in memory, as before.
//
// Usage:
//
//	pinsqld -windows 6 -window 1200 -auto-repair
//	pinsqld -data-dir /var/lib/pinsql -windows 6   # durable, resumable
package main

import (
	"flag"
	"fmt"
	"os"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/core"
	"pinsql/internal/dbsim"
	"pinsql/internal/logstore"
	"pinsql/internal/logstore/segment"
	"pinsql/internal/repair"
	"pinsql/internal/session"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/workload"
)

// topicName is the log-store topic of the monitored instance.
const topicName = "pinsqld"

func main() {
	var (
		windows    = flag.Int("windows", 4, "number of monitoring windows to run")
		windowSec  = flag.Int("window", 1200, "window length in simulated seconds")
		seed       = flag.Int64("seed", 42, "simulation seed")
		autoRepair = flag.Bool("auto-repair", false, "execute suggested repairing actions")
		workers    = flag.Int("workers", 0, "diagnosis worker pool (0 = GOMAXPROCS, 1 = sequential)")
		dataDir    = flag.String("data-dir", "", "directory for the durable log store (empty = in-memory)")
		syncEvery  = flag.Int("sync-every", 0, "fsync the log-store wal every N records (0 = only at seal/close; process-crash safe either way)")
	)
	flag.Parse()

	if err := run(*windows, *windowSec, *seed, *autoRepair, *workers, *dataDir, *syncEvery); err != nil {
		fmt.Fprintln(os.Stderr, "pinsqld:", err)
		os.Exit(1)
	}
}

func run(windows, windowSec int, seed int64, autoRepair bool, workers int, dataDir string, syncEvery int) error {
	world := workload.DefaultWorld(seed)
	world.AddFillerServices(3, 6)
	cfg := dbsim.DefaultConfig()
	cfg.Seed = seed
	inst := dbsim.NewInstance(cfg)
	world.Apply(inst)

	// Storage backend: in-memory by default; with -data-dir, the durable
	// segment store plus restart replay of the persisted registry, and
	// monitoring resumes after the last persisted record.
	var (
		registry *collect.Registry
		store    logstore.Backend
		baseMs   int64
	)
	if dataDir == "" {
		registry = collect.NewRegistry()
		store = logstore.New(0)
	} else {
		seg, err := segment.Open(dataDir, segment.Options{SyncEvery: syncEvery})
		if err != nil {
			return err
		}
		defer func() {
			if err := seg.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pinsqld: closing store:", err)
			}
		}()
		if registry, err = collect.OpenRegistry(seg); err != nil {
			return err
		}
		store = seg
		if _, maxMs, ok := seg.Bounds(topicName); ok {
			// Resume on the window boundary after the newest record.
			windowMs := int64(windowSec) * 1000
			baseMs = (maxMs/windowMs + 1) * windowMs
			fmt.Printf("recovered %s: %d records (through %d s), %d templates; resuming at window %d\n",
				dataDir, seg.Len(topicName), maxMs/1000, registry.Len(), baseMs/windowMs)
		} else {
			fmt.Printf("opened %s: empty store, %d templates\n", dataDir, registry.Len())
		}
	}
	broker := collect.NewBroker()
	defer broker.Close()
	det := anomaly.NewDetector(anomaly.Config{})
	mod := repair.New(repair.DefaultConfig(), repair.DefaultOptimizer())
	diagCfg := core.DefaultConfig()
	diagCfg.Workers = workers

	anomalies := []func(from, to int64){
		func(from, to int64) { world.InjectBusinessSpike(world.Services[2], 40, from, to) },
		func(from, to int64) { world.InjectLockStorm(world.Services[2], "orders", 7, from, to) },
		func(from, to int64) { world.InjectMDL("orders", from, (to-from)/2) },
	}

	for w := 0; w < windows; w++ {
		fromMs := baseMs + int64(w*windowSec)*1000
		toMs := baseMs + int64((w+1)*windowSec)*1000
		fmt.Printf("=== window %d: [%d, %d) s ===\n", w, fromMs/1000, toMs/1000)

		// Every other window gets an injected incident.
		if w%2 == 1 {
			as := fromMs + int64(windowSec)*1000/3
			ae := as + int64(windowSec)*1000/4
			anomalies[(w/2)%len(anomalies)](as, ae)
			fmt.Printf("  (injected incident over [%d, %d) s)\n", as/1000, ae/1000)
		}

		// Streaming collection: instance → broker → aggregator.
		lostBefore := broker.Dropped(topicName)
		coll := collect.NewCollector(topicName, fromMs, toMs, registry, store)
		ch, cancel := broker.Subscribe(topicName, 4096)
		done := collect.NewStreamAggregator(coll).Consume(ch)
		secs, err := inst.Run(dbsim.RunOptions{
			StartMs: fromMs,
			EndMs:   toMs,
			Source:  world.Source(fromMs, toMs, seed+int64(w)),
			Sink:    broker.Sink(topicName),
		})
		cancel()
		<-done
		if err != nil {
			return err
		}
		coll.IngestMetrics(secs)
		snap := coll.Snapshot()
		store.Expire(toMs) // keep the log store within its TTL budget
		if lost := broker.Dropped(topicName) - lostBefore; lost > 0 {
			// Backpressure loss: the aggregator fell behind the producer
			// and records were shed at the broker (by design — never slow
			// the instance). Surfaced so a DBA can size the buffer.
			fmt.Printf("  (broker dropped %d records under backpressure)\n", lost)
		}

		// Round-the-clock detection.
		phenomena := det.DetectPhenomena(map[string]timeseries.Series{
			anomaly.MetricActiveSession: snap.ActiveSession,
			anomaly.MetricCPUUsage:      snap.CPUUsage,
			anomaly.MetricIOPSUsage:     snap.IOPSUsage,
		}, anomaly.DefaultRules())
		if len(phenomena) == 0 {
			fmt.Printf("  no anomalies (mean session %.2f, cpu %.1f%%)\n\n",
				snap.ActiveSession.Mean(), snap.CPUUsage.Mean())
			continue
		}

		for _, ph := range phenomena {
			fmt.Printf("  ANOMALY %s [%d, %d) s\n", ph.Rule, int(fromMs/1000)+ph.Start, int(fromMs/1000)+ph.End)
			c := anomaly.NewCase(snap, ph)
			d := core.Diagnose(c, queriesOf(coll, snap), diagCfg)
			if len(d.RSQLs) == 0 {
				fmt.Println("    no R-SQL pinpointed")
				continue
			}
			top := d.RSQLs[0]
			fmt.Printf("    R-SQL: %s (score %.2f, verified %v)\n", top.ID, top.Score, top.Verified)
			if ts := snap.Template(top.ID); ts != nil {
				fmt.Printf("    statement: %s\n", ts.Meta.Text)
			}
			sugg := mod.Suggest(c, []sqltemplate.ID{top.ID})
			env := repair.Environment{
				Throttler: inst,
				Scaler:    inst,
				SpecOf: func(id sqltemplate.ID) repair.Optimizable {
					if spec := world.SpecByID(id); spec != nil {
						return spec
					}
					return nil
				},
				AutoExecute: autoRepair,
			}
			for _, s := range mod.Execute(env, sugg) {
				state := "suggested"
				if s.Executed {
					state = "EXECUTED"
				}
				fmt.Printf("    action %-9s %s (rule %s, value %.1f)\n", s.Action, state, s.Rule, s.Value)
			}
		}
		fmt.Println()
	}
	return nil
}

func queriesOf(coll *collect.Collector, snap *collect.Snapshot) session.Queries {
	out := make(session.Queries)
	reg := coll.Registry()
	// Stream the window instead of materializing a copy of every record:
	// the diagnosis window can span millions of observations.
	coll.Store().ScanFunc(snap.Topic, snap.StartMs, snap.StartMs+int64(snap.Seconds)*1000,
		func(r logstore.Record) bool {
			id := reg.At(r.TemplateIdx).ID
			out[id] = append(out[id], session.Obs{ArrivalMs: r.ArrivalMs, ResponseMs: r.ResponseMs})
			return true
		})
	return out
}
