// Command pinsql-diagnose runs the PinSQL pipeline on a serialized anomaly
// case and prints the ranked High-impact and Root Cause SQLs.
//
// The input is the caseio JSON document (produce one with pinsql-gen, or
// see -print-sample for a minimal hand-written example). -demo generates,
// diagnoses and prints a synthetic case end-to-end without any input file.
//
// Usage:
//
//	pinsql-diagnose case.json
//	pinsql-diagnose -demo lock_storm
//	pinsql-diagnose -print-sample > case.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pinsql/internal/anomaly"
	"pinsql/internal/caseio"
	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/workload"
)

func main() {
	var (
		demo        = flag.String("demo", "", "generate and diagnose a synthetic case: business_spike|poor_sql|lock_storm|mdl_lock")
		printSample = flag.Bool("print-sample", false, "emit a small sample case JSON and exit")
		topK        = flag.Int("top", 5, "how many ranked templates to print")
	)
	flag.Parse()

	switch {
	case *printSample:
		if err := emitSample(); err != nil {
			fail(err)
		}
	case *demo != "":
		if err := runDemo(*demo, *topK); err != nil {
			fail(err)
		}
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pinsql-diagnose [-top K] case.json | -demo <family> | -print-sample")
			os.Exit(2)
		}
		if err := runFile(flag.Arg(0), *topK); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pinsql-diagnose:", err)
	os.Exit(1)
}

func runFile(path string, topK int) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	doc, err := caseio.Read(fh)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	c, fr, err := doc.ToFrame()
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	if fr.NumObs() == 0 {
		// No raw query log in the file: fall back to the response-time
		// proxy for individual sessions.
		cfg.NoEstimateSession = true
	}
	d := core.DiagnoseFrame(c, fr, cfg)
	printDiagnosis(d, c, topK)
	if doc.Truth != nil && len(doc.Truth.RSQLs) > 0 && len(d.RSQLs) > 0 {
		hit := false
		for _, id := range doc.Truth.RSQLs {
			if sqltemplate.ID(id) == d.RSQLs[0].ID {
				hit = true
			}
		}
		fmt.Printf("\nground truth R-SQLs: %v — top-1 %s\n", doc.Truth.RSQLs, verdict(hit))
	}
	return nil
}

func verdict(hit bool) string {
	if hit {
		return "HIT"
	}
	return "MISS"
}

func runDemo(family string, topK int) error {
	kinds := map[string]workload.AnomalyKind{
		"business_spike": workload.KindBusinessSpike,
		"poor_sql":       workload.KindPoorSQL,
		"lock_storm":     workload.KindLockStorm,
		"mdl_lock":       workload.KindMDL,
	}
	kind, ok := kinds[family]
	if !ok {
		return fmt.Errorf("unknown demo family %q", family)
	}
	opt := cases.DefaultOptions()
	opt.FillerServices = 2
	opt.FillerSpecs = 5
	lab, err := cases.GenerateOne(opt, 1, kind)
	if err != nil {
		return err
	}
	fmt.Printf("generated %s (anomaly window [%d, %d) s, %d templates)\n",
		lab.Name, lab.Case.AS, lab.Case.AE, len(lab.Case.Snapshot.Templates))
	fmt.Printf("ground truth R-SQLs: %v\n\n", keys(lab.RSQLs))
	d := core.DiagnoseFrame(lab.Case, lab.Collector.Frame(), core.DefaultConfig())
	printDiagnosis(d, lab.Case, topK)
	return nil
}

func printDiagnosis(d *core.Diagnosis, c *anomaly.Case, topK int) {
	fmt.Printf("diagnosis completed in %s (estimate %s, H-rank %s, cluster %s, verify %s)\n",
		d.Time.Total().Round(100_000), d.Time.EstimateSession.Round(100_000),
		d.Time.RankHSQL.Round(100_000), d.Time.ClusterFilter.Round(100_000),
		d.Time.VerifyRank.Round(100_000))
	fmt.Printf("anomaly window: [%d, %d) of %d seconds\n\n", c.AS, c.AE, c.Snapshot.Seconds)

	fmt.Println("High-impact SQLs (H-SQLs):")
	for i, s := range d.HSQLs {
		if i >= topK {
			break
		}
		fmt.Printf("  %d. %-10s impact=%+.3f (trend %+0.2f, scale %+0.2f, scale-trend %+0.2f)  %s\n",
			i+1, s.ID, s.Impact, s.Trend, s.Scale, s.ScaleTrend, templateText(c, s.ID))
	}
	fmt.Println("\nRoot Cause SQLs (R-SQLs):")
	if len(d.RSQLs) == 0 {
		fmt.Println("  (none pinpointed)")
		return
	}
	for i, r := range d.RSQLs {
		if i >= topK {
			break
		}
		verified := ""
		if r.Verified {
			verified = " [history-verified]"
		}
		fmt.Printf("  %d. %-10s score=%+.3f cluster=%d%s  %s\n",
			i+1, r.ID, r.Score, r.Cluster, verified, templateText(c, r.ID))
	}
}

func templateText(c *anomaly.Case, id sqltemplate.ID) string {
	if ts := c.Snapshot.Template(id); ts != nil && ts.Meta.Text != "" {
		text := ts.Meta.Text
		if len(text) > 70 {
			text = text[:67] + "..."
		}
		return text
	}
	return ""
}

// emitSample writes a minimal hand-constructable case: a stable SELECT
// victim and an UPDATE culprit that appears only during the anomaly.
func emitSample() error {
	n := 120
	doc := &caseio.File{
		Version: caseio.CurrentVersion,
		Name:    "sample-lock-case",
		Seconds: n,
		Anomaly: caseio.Window{Start: 60, End: 100},
	}
	sess := make([]float64, n)
	countA := make([]float64, n)
	rtA := make([]float64, n)
	countB := make([]float64, n)
	rtB := make([]float64, n)
	for i := 0; i < n; i++ {
		sess[i] = 2
		countA[i] = 50
		rtA[i] = 250
		if i >= 60 && i < 100 {
			sess[i] = 30
			countB[i] = 40
			rtB[i] = 20000
			rtA[i] = 2500
		}
	}
	doc.ActiveSession = sess
	doc.Templates = []caseio.Template{
		{ID: "VICTIM01", SQL: "SELECT * FROM orders WHERE uid = ?", Table: "orders", Count: countA, SumRT: rtA},
		{ID: "CULPRIT7", SQL: "UPDATE orders SET state = ? WHERE id = ?", Table: "orders", Count: countB, SumRT: rtB},
	}
	doc.History = []caseio.History{{DaysAgo: 1, Counts: map[string][]float64{"VICTIM01": countA}}}
	doc.Truth = &caseio.Truth{RSQLs: []string{"CULPRIT7"}}
	return doc.Write(os.Stdout)
}

func keys(m map[sqltemplate.ID]bool) []sqltemplate.ID {
	out := make([]sqltemplate.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}
