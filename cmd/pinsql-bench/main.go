// Command pinsql-bench regenerates the tables and figures of the PinSQL
// paper's evaluation (§VIII) on the simulated substrate and prints them in
// the paper's layout.
//
// Usage:
//
//	pinsql-bench -exp all                 # every experiment
//	pinsql-bench -exp table1 -cases 40    # Table I with a 40-case corpus
//	pinsql-bench -exp fig7                # scalability sweep
//	pinsql-bench -exp sweep -param tau    # hyperparameter sensitivity
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pinsql/internal/bench"
	"pinsql/internal/cases"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig6|fig7|fig8|table2|table3|table4|sweep|families|logstore|all")
		n       = flag.Int("cases", 24, "corpus size for table1/fig6/families")
		seed    = flag.Int64("seed", 1, "corpus seed")
		param   = flag.String("param", "ks", "sweep parameter: ks|tau|buckets")
		small   = flag.Bool("small", false, "use reduced trace lengths (faster, noisier)")
		workers = flag.Int("workers", 0, "diagnosis worker pool for fig7's parallel curve (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	corpus := func(count int) cases.Options {
		if *small {
			return bench.SmallCorpus(*seed, count)
		}
		opt := cases.DefaultOptions()
		opt.Seed = *seed
		opt.Count = count
		return opt
	}

	run := func(name string, fn func() (fmt.Stringer, error)) {
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinsql-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res)
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	experiments := map[string]func(){
		"table1": func() {
			run("table1", func() (fmt.Stringer, error) { return wrap(bench.RunTableI(corpus(*n))) })
		},
		"fig6": func() {
			run("fig6", func() (fmt.Stringer, error) { return wrap(bench.RunFig6(corpus(*n))) })
		},
		"fig7": func() {
			run("fig7", func() (fmt.Stringer, error) { return wrap(bench.RunFig7(*seed, nil, nil, *workers)) })
		},
		"fig8": func() {
			run("fig8", func() (fmt.Stringer, error) { return wrap(bench.RunFig8(*seed)) })
		},
		"table2": func() {
			run("table2", func() (fmt.Stringer, error) { return wrap(bench.RunTableII(*seed, *n/2)) })
		},
		"table3": func() {
			run("table3", func() (fmt.Stringer, error) { return wrap(bench.RunTableIII(*seed, 10)) })
		},
		"table4": func() {
			run("table4", func() (fmt.Stringer, error) { return wrap(bench.RunTableIV(bench.StressOptions{Seed: *seed})) })
		},
		"sweep": func() {
			values := map[string][]float64{
				"ks":      {2, 10, 30, 100, 1000},
				"tau":     {0.5, 0.65, 0.8, 0.9, 0.97},
				"buckets": {1, 5, 10, 20, 50},
			}[*param]
			run("sweep-"+*param, func() (fmt.Stringer, error) {
				return wrap(bench.RunParamSweep(corpus(*n), *param, values))
			})
		},
		"families": func() {
			run("families", func() (fmt.Stringer, error) { return wrap(bench.RunFamilyBreakdown(corpus(*n))) })
		},
		"logstore": func() {
			run("logstore", func() (fmt.Stringer, error) {
				opt := bench.LogStoreBenchOptions{Seed: *seed}
				if *small {
					opt.Records = 10_000
					opt.Topics = 2
				}
				return wrap(bench.RunLogStoreBench(opt))
			})
		},
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig6", "fig7", "fig8", "table2", "table3", "table4", "families", "logstore"} {
			experiments[name]()
		}
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "pinsql-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

// formatter is any experiment result with a Format method.
type formatter interface{ Format() string }

// wrapped adapts Format to fmt.Stringer.
type wrapped struct{ f formatter }

func (w wrapped) String() string { return w.f.Format() }

func wrap[T formatter](res T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return wrapped{res}, nil
}
