// Command pinsql-bench regenerates the tables and figures of the PinSQL
// paper's evaluation (§VIII) on the simulated substrate and prints them in
// the paper's layout.
//
// Usage:
//
//	pinsql-bench -exp all                 # every experiment
//	pinsql-bench -exp table1 -cases 40    # Table I with a 40-case corpus
//	pinsql-bench -exp fig7                # scalability sweep
//	pinsql-bench -exp sweep -param tau    # hyperparameter sensitivity
//	pinsql-bench -exp gen                 # generation/collection fast path
//	pinsql-bench -exp fig7 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pinsql/internal/bench"
	"pinsql/internal/cases"
	"pinsql/internal/shard/remote"
)

func main() {
	// The fleet sweep's multi-process cells re-exec this binary as shard
	// workers; when the worker config env var is set this call never
	// returns.
	remote.MaybeWorker()
	os.Exit(realMain())
}

// realMain carries the exit code back to main so deferred profile writers
// run before the process exits (os.Exit skips defers).
func realMain() (code int) {
	var (
		exp         = flag.String("exp", "all", "experiment: table1|fig6|fig7|fig8|table2|table3|table4|sweep|families|scenario|logstore|gen|fleet|diagnose|fuzz|ingest|all")
		n           = flag.Int("cases", 24, "corpus size for table1/fig6/families")
		seed        = flag.Int64("seed", 1, "corpus seed")
		param       = flag.String("param", "ks", "sweep parameter: ks|tau|buckets")
		small       = flag.Bool("small", false, "use reduced trace lengths (faster, noisier)")
		workers     = flag.Int("workers", 0, "worker pool for case generation and fig7's parallel curve (0 = GOMAXPROCS, 1 = sequential)")
		genOut      = flag.String("gen-out", "BENCH_gen.json", "output file for the -exp gen report (empty = stdout only)")
		diagOut     = flag.String("diagnose-out", "BENCH_diagnose.json", "output file for the -exp diagnose report (empty = stdout only)")
		fleetOut    = flag.String("fleet-out", "BENCH_fleet.json", "output file for the -exp fleet report (empty = stdout only)")
		fleetNoProc = flag.Bool("fleet-no-proc", false, "skip the fleet sweep's multi-process cells")
		ingestOut   = flag.String("ingest-out", "BENCH_ingest.json", "output file for the -exp ingest report (empty = stdout only)")
		ingestPath  = flag.String("ingest-trace", "", "trace file for -exp ingest (empty = the committed example recording)")
		fuzzOut     = flag.String("fuzz-out", "BENCH_fuzz.json", "output file for the -exp fuzz report (empty = stdout only)")
		fuzzBudget  = flag.Int("fuzz-budget", 0, "cases per fuzz search run (0 = default for the size)")
		corpusDir   = flag.String("corpus-dir", "", "directory the fuzz search writes repro bundles into (empty = none)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		profDir     = flag.String("cpuprofile-dir", "", "for -exp fleet: write one CPU profile per sweep cell (fleet_i<N>_s<K>_w<W>.pprof) into this directory")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinsql-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pinsql-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pinsql-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "pinsql-bench: memprofile: %v\n", err)
			}
		}()
	}

	corpus := func(count int) cases.Options {
		opt := cases.DefaultOptions()
		if *small {
			opt = bench.SmallCorpus(*seed, count)
		} else {
			opt.Seed = *seed
			opt.Count = count
		}
		opt.Workers = *workers
		return opt
	}

	failed := false
	run := func(name string, fn func() (fmt.Stringer, error)) {
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinsql-bench: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Println(res)
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	experiments := map[string]func(){
		"table1": func() {
			run("table1", func() (fmt.Stringer, error) { return wrap(bench.RunTableI(corpus(*n))) })
		},
		"fig6": func() {
			run("fig6", func() (fmt.Stringer, error) { return wrap(bench.RunFig6(corpus(*n))) })
		},
		"fig7": func() {
			run("fig7", func() (fmt.Stringer, error) { return wrap(bench.RunFig7(*seed, nil, nil, *workers)) })
		},
		"fig8": func() {
			run("fig8", func() (fmt.Stringer, error) { return wrap(bench.RunFig8(*seed)) })
		},
		"table2": func() {
			run("table2", func() (fmt.Stringer, error) { return wrap(bench.RunTableII(*seed, *n/2, *workers)) })
		},
		"table3": func() {
			run("table3", func() (fmt.Stringer, error) { return wrap(bench.RunTableIII(*seed, 10)) })
		},
		"table4": func() {
			run("table4", func() (fmt.Stringer, error) { return wrap(bench.RunTableIV(bench.StressOptions{Seed: *seed})) })
		},
		"sweep": func() {
			values := map[string][]float64{
				"ks":      {2, 10, 30, 100, 1000},
				"tau":     {0.5, 0.65, 0.8, 0.9, 0.97},
				"buckets": {1, 5, 10, 20, 50},
			}[*param]
			run("sweep-"+*param, func() (fmt.Stringer, error) {
				return wrap(bench.RunParamSweep(corpus(*n), *param, values))
			})
		},
		"families": func() {
			run("families", func() (fmt.Stringer, error) { return wrap(bench.RunFamilyBreakdown(corpus(*n))) })
		},
		"logstore": func() {
			run("logstore", func() (fmt.Stringer, error) {
				opt := bench.LogStoreBenchOptions{Seed: *seed}
				if *small {
					opt.Records = 10_000
					opt.Topics = 2
				}
				return wrap(bench.RunLogStoreBench(opt))
			})
		},
		"gen": func() {
			run("gen", func() (fmt.Stringer, error) {
				res, err := bench.RunGenBench(bench.GenBenchOptions{
					Seed: *seed, Workers: *workers, Small: *small,
				})
				if err != nil {
					return nil, err
				}
				if *genOut != "" {
					data, err := json.MarshalIndent(res, "", " ")
					if err != nil {
						return nil, err
					}
					if err := os.WriteFile(*genOut, append(data, '\n'), 0o644); err != nil {
						return nil, err
					}
					fmt.Printf("[gen report written to %s]\n", *genOut)
				}
				return wrapped{res}, nil
			})
		},
		"diagnose": func() {
			run("diagnose", func() (fmt.Stringer, error) {
				res, err := bench.RunDiagnoseBench(bench.DiagnoseBenchOptions{
					Seed: *seed, Workers: *workers, Small: *small,
				})
				if err != nil {
					return nil, err
				}
				if *diagOut != "" {
					data, err := json.MarshalIndent(res, "", " ")
					if err != nil {
						return nil, err
					}
					if err := os.WriteFile(*diagOut, append(data, '\n'), 0o644); err != nil {
						return nil, err
					}
					fmt.Printf("[diagnose report written to %s]\n", *diagOut)
				}
				return wrapped{res}, nil
			})
		},
		"scenario": func() {
			run("scenario", func() (fmt.Stringer, error) { return wrap(bench.RunScenarioAccuracy(corpus(*n))) })
		},
		"fuzz": func() {
			run("fuzz", func() (fmt.Stringer, error) {
				res, err := bench.RunFuzzBench(bench.FuzzBenchOptions{
					Seed: *seed, Budget: *fuzzBudget, Workers: *workers,
					Small: *small, CorpusDir: *corpusDir,
				})
				if err != nil {
					return nil, err
				}
				if *fuzzOut != "" {
					data, err := json.MarshalIndent(res, "", " ")
					if err != nil {
						return nil, err
					}
					if err := os.WriteFile(*fuzzOut, append(data, '\n'), 0o644); err != nil {
						return nil, err
					}
					fmt.Printf("[fuzz report written to %s]\n", *fuzzOut)
				}
				return wrapped{res}, nil
			})
		},
		"fleet": func() {
			run("fleet", func() (fmt.Stringer, error) {
				res, err := bench.RunFleetBench(bench.FleetBenchOptions{Seed: *seed, Small: *small, ProfileDir: *profDir, NoProc: *fleetNoProc})
				if err != nil {
					return nil, err
				}
				if *fleetOut != "" {
					data, err := json.MarshalIndent(res, "", " ")
					if err != nil {
						return nil, err
					}
					if err := os.WriteFile(*fleetOut, append(data, '\n'), 0o644); err != nil {
						return nil, err
					}
					fmt.Printf("[fleet report written to %s]\n", *fleetOut)
				}
				if !res.Identical {
					return nil, fmt.Errorf("report divergence: some sweep cells (cross-shard or cross-process-mode) produced a different fleet report than their instance count's baseline")
				}
				return wrapped{res}, nil
			})
		},
		"ingest": func() {
			run("ingest", func() (fmt.Stringer, error) {
				res, err := bench.RunIngestBench(bench.IngestBenchOptions{Path: *ingestPath})
				if err != nil {
					return nil, err
				}
				if *ingestOut != "" {
					data, err := json.MarshalIndent(res, "", " ")
					if err != nil {
						return nil, err
					}
					if err := os.WriteFile(*ingestOut, append(data, '\n'), 0o644); err != nil {
						return nil, err
					}
					fmt.Printf("[ingest report written to %s]\n", *ingestOut)
				}
				if !res.Identical {
					return nil, fmt.Errorf("replay divergence: two pipeline passes over %s produced different reports", res.Path)
				}
				return wrapped{res}, nil
			})
		},
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig6", "fig7", "fig8", "table2", "table3", "table4", "families", "logstore"} {
			experiments[name]()
		}
	} else if fn, ok := experiments[*exp]; ok {
		fn()
	} else {
		fmt.Fprintf(os.Stderr, "pinsql-bench: unknown experiment %q\n", *exp)
		return 2
	}
	if failed {
		return 1
	}
	return 0
}

// formatter is any experiment result with a Format method.
type formatter interface{ Format() string }

// wrapped adapts Format to fmt.Stringer.
type wrapped struct{ f formatter }

func (w wrapped) String() string { return w.f.Format() }

func wrap[T formatter](res T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return wrapped{res}, nil
}
