// Command pinsql-gen generates labeled anomaly cases from the synthetic
// corpus (the ADAC substitute) and writes them as caseio JSON documents,
// ready for offline diagnosis with pinsql-diagnose or for sharing as a
// benchmark dataset.
//
// Usage:
//
//	pinsql-gen -count 8 -out ./corpus          # corpus/case-000-*.json ...
//	pinsql-gen -family lock_storm -out ./c     # only one anomaly family
//	pinsql-gen -count 1 -queries=false -out -  # metrics-only, to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pinsql/internal/caseio"
	"pinsql/internal/cases"
	"pinsql/internal/workload"
)

func main() {
	var (
		count   = flag.Int("count", 4, "number of cases to generate")
		seed    = flag.Int64("seed", 1, "corpus seed")
		family  = flag.String("family", "", "restrict to one family: business_spike|poor_sql|lock_storm|mdl_lock")
		out     = flag.String("out", ".", "output directory, or '-' for stdout")
		queries = flag.Bool("queries", true, "include raw query observations (larger files, better diagnosis)")
		small   = flag.Bool("small", false, "reduced trace length (faster, smaller)")
	)
	flag.Parse()

	if err := run(*count, *seed, *family, *out, *queries, *small); err != nil {
		fmt.Fprintln(os.Stderr, "pinsql-gen:", err)
		os.Exit(1)
	}
}

func run(count int, seed int64, family, out string, withQueries, small bool) error {
	kinds := []workload.AnomalyKind{
		workload.KindBusinessSpike,
		workload.KindPoorSQL,
		workload.KindLockStorm,
		workload.KindMDL,
	}
	if family != "" {
		named := map[string]workload.AnomalyKind{
			"business_spike": workload.KindBusinessSpike,
			"poor_sql":       workload.KindPoorSQL,
			"lock_storm":     workload.KindLockStorm,
			"mdl_lock":       workload.KindMDL,
		}
		kind, ok := named[family]
		if !ok {
			return fmt.Errorf("unknown family %q", family)
		}
		kinds = []workload.AnomalyKind{kind}
	}

	opt := cases.DefaultOptions()
	opt.Seed = seed
	if small {
		opt.TraceSec = 1200
		opt.AnomalyStartSec = 700
		opt.AnomalyMinDurSec = 180
		opt.AnomalyMaxDurSec = 300
		opt.FillerServices = 1
		opt.FillerSpecs = 3
		opt.HistoryDays = []int{1}
	}

	if out != "-" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}
	for i := 0; i < count; i++ {
		kind := kinds[i%len(kinds)]
		lab, err := cases.GenerateOne(opt, int64(i), kind)
		if err != nil {
			return err
		}
		var doc *caseio.File
		if withQueries {
			// The frame carries the observation columns the collector
			// already built — same bytes as FromCase over QueriesOf.
			doc = caseio.FromFrame(lab.Case, lab.Collector.Frame())
		} else {
			doc = caseio.FromCase(lab.Case, nil)
		}
		doc.Name = lab.Name
		doc.Truth = &caseio.Truth{Kind: kind.String()}
		for id := range lab.RSQLs {
			doc.Truth.RSQLs = append(doc.Truth.RSQLs, string(id))
		}
		for id := range lab.HSQLs {
			doc.Truth.HSQLs = append(doc.Truth.HSQLs, string(id))
		}

		if out == "-" {
			if err := doc.Write(os.Stdout); err != nil {
				return err
			}
			continue
		}
		path := filepath.Join(out, lab.Name+".json")
		fh, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := doc.Write(fh); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		info, _ := os.Stat(path)
		fmt.Printf("wrote %s (%d templates, %d KiB)\n", path, len(doc.Templates), info.Size()/1024)
	}
	return nil
}
