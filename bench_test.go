package pinsql

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VIII). Each benchmark runs the same harness as cmd/pinsql-bench and
// reports domain metrics (accuracy, gains, declines) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every experiment.
//
// Corpus sizes are reduced relative to cmd/pinsql-bench defaults to keep a
// full -bench=. pass in the minutes range; use the command for the
// full-size corpora.

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"pinsql/internal/bench"
	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/dbsim"
	"pinsql/internal/session"
	"pinsql/internal/workload"
)

// BenchmarkTableI_Overall regenerates Table I: Hits@k / MRR / diagnosis
// time of PinSQL versus the Top-SQL baselines on R-SQL and H-SQL
// identification.
func BenchmarkTableI_Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableI(bench.SmallCorpus(1, 12))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Method == "PinSQL" {
				b.ReportMetric(100*row.R.H1, "R-H@1-%")
				b.ReportMetric(100*row.H.H1, "H-H@1-%")
				b.ReportMetric(row.TimeMs, "diagnose-ms")
			}
			if row.Method == "Top-All" {
				b.ReportMetric(100*row.R.H1, "TopAll-R-H@1-%")
			}
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFig6_Ablation regenerates Fig. 6: every pipeline component
// removed in turn.
func BenchmarkFig6_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6(bench.SmallCorpus(2, 8))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Rows[0].R.H1, "full-R-H@1-%")
		for _, row := range res.Rows {
			if row.Variant == "w/o Estimate Session" {
				b.ReportMetric(100*row.H.H1, "noEst-H-H@1-%")
			}
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFig7_Scalability regenerates Fig. 7: diagnosis computing time
// versus template count and anomaly-period length with polynomial fits.
func BenchmarkFig7_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(3, []int{100, 300, 600}, []int{300, 900, 1800}, 0)
		if err != nil {
			b.Fatal(err)
		}
		last := res.ByPeriod[len(res.ByPeriod)-1]
		b.ReportMetric(last.TimeSec, "diagnose-s-at-max-period")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFig8_RepairCase regenerates Fig. 8: the scripted manual-throttle
// versus PinSQL-repair timeline.
func BenchmarkFig8_RepairCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8(11)
		if err != nil {
			b.Fatal(err)
		}
		if res.PinpointedCorrect() {
			b.ReportMetric(1, "pinpointed-correct")
		} else {
			b.ReportMetric(0, "pinpointed-correct")
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkTableII_OptimizationGain regenerates Table II: metric gains of
// optimizing R-SQLs versus slow SQLs.
func BenchmarkTableII_OptimizationGain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableII(13, 4, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].TresGain, "rsql-tres-gain-%")
		b.ReportMetric(res.Rows[1].TresGain, "slow-tres-gain-%")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkTableIII_SessionEstimate regenerates Table III: estimation
// quality of the three active-session estimators.
func BenchmarkTableIII_SessionEstimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableIII(17, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Corr, "byRT-corr")
		b.ReportMetric(res.Rows[2].Corr, "buckets-corr")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkTableIV_PfsOverhead regenerates Table IV: QPS decline under
// Performance Schema configurations.
func BenchmarkTableIV_PfsOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableIV(bench.StressOptions{DurationSec: 6, Seed: 19})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cells[dbsim.PerfSchemaOn][bench.ReadOnly].Decline, "pfs-ro-decline-%")
		b.ReportMetric(res.Cells[dbsim.PerfSchemaConIns][bench.ReadOnly].Decline, "full-ro-decline-%")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// parallelCase lazily generates one large diagnosis case (~4000 templates,
// the upper region of the paper's Fig. 7 sweep) shared by every
// BenchmarkDiagnoseParallel worker-count variant.
var parallelCase struct {
	once    sync.Once
	lab     *cases.Labeled
	queries session.Queries
	err     error
}

func loadParallelCase() (*cases.Labeled, session.Queries, error) {
	parallelCase.once.Do(func() {
		opt := cases.DefaultOptions()
		opt.Seed = 5
		opt.TraceSec = 2400
		opt.AnomalyStartSec = 1500
		opt.AnomalyMinDurSec = 300
		opt.AnomalyMaxDurSec = 300
		opt.HistoryDays = []int{1}
		opt.FillerServices = (4000 - 23) / 25
		opt.FillerSpecs = 25
		parallelCase.lab, parallelCase.err = cases.GenerateOne(opt, 0, workload.KindBusinessSpike)
		if parallelCase.err == nil {
			parallelCase.queries = cases.QueriesOf(parallelCase.lab.Collector, parallelCase.lab.Case.Snapshot)
		}
	})
	return parallelCase.lab, parallelCase.queries, parallelCase.err
}

// BenchmarkDiagnoseParallel measures the parallel diagnosis pipeline on a
// ~4000-template case across worker counts — the speedup axis the Fig. 7
// scalability experiment sweeps. Every variant must produce the identical
// ranked output as Workers=1 (checked on the first iteration); on a
// multi-core box Workers=4 is expected to cut the Workers=1 wall-clock by
// ≥2× (the pair-scan stage is embarrassingly parallel).
func BenchmarkDiagnoseParallel(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	var baseline *core.Diagnosis
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			lab, queries, err := loadParallelCase()
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.Workers = w
			b.ReportMetric(float64(len(lab.Case.Snapshot.Templates)), "templates")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := core.Diagnose(lab.Case, queries, cfg)
				if i == 0 {
					if w == 1 && baseline == nil {
						baseline = d
					} else if baseline != nil {
						if !reflect.DeepEqual(baseline.HSQLIDs(), d.HSQLIDs()) ||
							!reflect.DeepEqual(baseline.RSQLIDs(), d.RSQLIDs()) {
							b.Fatalf("workers=%d ranked output diverged from workers=1", w)
						}
					}
				}
			}
		})
	}
}

// BenchmarkAblation_SmoothFactor sweeps the sigmoid smooth factor ks — the
// DESIGN.md sensitivity study beyond the paper's ablations.
func BenchmarkAblation_SmoothFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunParamSweep(bench.SmallCorpus(23, 4), "ks", []float64{5, 30, 300})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkAblation_ClusterTau sweeps the clustering threshold τ.
func BenchmarkAblation_ClusterTau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunParamSweep(bench.SmallCorpus(29, 4), "tau", []float64{0.6, 0.8, 0.95})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkAblation_BucketK sweeps the session-estimation bucket count K.
func BenchmarkAblation_BucketK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunParamSweep(bench.SmallCorpus(31, 4), "buckets", []float64{1, 10, 40})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkLogStoreBackends compares the in-memory and durable segment
// log-store backends on an identical ingest: append and windowed-scan
// throughput for both, restart-recovery latency and disk footprint for the
// durable store. The harness also asserts the two backends streamed
// byte-identical scan sequences.
func BenchmarkLogStoreBackends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunLogStoreBench(bench.LogStoreBenchOptions{
			Seed: 7, Topics: 2, Records: 30_000, Windows: 32, Dir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Equivalent {
			b.Fatalf("backend scan sequences diverged\n%s", res.Format())
		}
		mem, seg := res.Rows[0], res.Rows[1]
		b.ReportMetric(mem.AppendPerSec, "mem-append-rec/s")
		b.ReportMetric(seg.AppendPerSec, "seg-append-rec/s")
		b.ReportMetric(mem.ScanPerSec, "mem-scan-rec/s")
		b.ReportMetric(seg.ScanPerSec, "seg-scan-rec/s")
		b.ReportMetric(seg.RecoverMs, "seg-recover-ms")
		b.ReportMetric(float64(seg.DiskBytes)/float64(2*30_000), "seg-bytes/rec")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}
