package pinsql

import (
	"testing"
)

// endToEnd simulates a lock storm and returns the run plus the first
// detected case.
func endToEnd(t *testing.T) (*Run, *Case, TemplateID) {
	t.Helper()
	world := NewDemoWorld(1)
	storm := world.InjectLockStorm(world.Services[2], "orders", 7, 600_000, 900_000)
	run, err := Simulate(world, SimOptions{DurationSec: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	detected := run.DetectCases()
	if len(detected) == 0 {
		t.Fatal("no anomaly detected")
	}
	return run, detected[0], storm.RSQLs[0]
}

func TestSimulateProducesSnapshot(t *testing.T) {
	run, _, _ := endToEnd(t)
	snap := run.Snapshot
	if snap.Seconds != 1500 {
		t.Errorf("seconds = %d", snap.Seconds)
	}
	if len(snap.Templates) < 10 {
		t.Errorf("templates = %d, want the demo world's population", len(snap.Templates))
	}
	if snap.ActiveSession.Sum() <= 0 {
		t.Error("no session activity recorded")
	}
}

func TestDetectCasesFindsStormWindow(t *testing.T) {
	_, c, _ := endToEnd(t)
	// The storm runs [600, 900); the detected window must overlap it.
	if c.AE <= 600 || c.AS >= 900 {
		t.Errorf("detected window [%d, %d) misses the storm", c.AS, c.AE)
	}
}

func TestDiagnosePinpointsInjectedRSQL(t *testing.T) {
	run, c, truth := endToEnd(t)
	d := run.Diagnose(c)
	if len(d.RSQLs) == 0 {
		t.Fatal("no R-SQLs")
	}
	found := false
	for i, r := range d.RSQLs {
		if i < 2 && r.ID == truth {
			found = true
		}
	}
	if !found {
		t.Errorf("truth %s not in top-2: %v", truth, d.RSQLIDs())
	}
	if len(d.HSQLs) == 0 {
		t.Fatal("no H-SQLs")
	}
}

func TestRepairSuggestionsAndExecution(t *testing.T) {
	run, c, _ := endToEnd(t)
	d := run.Diagnose(c)
	sugg := run.Repair(c, d, false)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	for _, s := range sugg {
		if s.Executed {
			t.Errorf("suggestion executed without auto: %+v", s)
		}
	}
	executed := run.Repair(c, d, true)
	anyRan := false
	for _, s := range executed {
		if s.Executed {
			anyRan = true
		}
	}
	if !anyRan {
		t.Error("auto repair executed nothing")
	}
}

func TestTopSQLFacade(t *testing.T) {
	run, c, _ := endToEnd(t)
	for _, method := range []string{"Top-RT", "Top-ER", "Top-EN"} {
		ranked, err := TopSQL(run.Snapshot, c.AS, c.AE, method)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) == 0 {
			t.Errorf("%s returned nothing", method)
		}
	}
	if _, err := TopSQL(run.Snapshot, c.AS, c.AE, "Top-Nope"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestNewTemplateFacade(t *testing.T) {
	a := NewTemplate("SELECT * FROM t WHERE id = 1")
	b := NewTemplate("SELECT * FROM t WHERE id = 2")
	if a.ID != b.ID {
		t.Error("literal-differing statements should share a template")
	}
	if a.Text != "SELECT * FROM t WHERE id = ?" {
		t.Errorf("text = %q", a.Text)
	}
}

func TestSimulateValidation(t *testing.T) {
	world := NewDemoWorld(2)
	run, err := Simulate(world, SimOptions{}) // defaults applied
	if err != nil {
		t.Fatal(err)
	}
	if run.Snapshot.Seconds != 1800 {
		t.Errorf("default duration = %d", run.Snapshot.Seconds)
	}
	if run.Instance.Cores() != 16 {
		t.Errorf("default cores = %d", run.Instance.Cores())
	}
}

func TestSetConfigChangesDiagnosis(t *testing.T) {
	run, c, _ := endToEnd(t)
	cfg := DefaultConfig()
	cfg.NoEstimateSession = true
	run.SetConfig(cfg)
	d := run.Diagnose(c)
	if d.Est != nil || d.FrameEst != nil {
		t.Error("estimation ran despite NoEstimateSession")
	}
}
