// Package pinsql is a from-scratch Go reproduction of PinSQL (Liu et al.,
// ICDE 2022): an autonomous diagnosing system that pinpoints Root Cause
// SQLs (R-SQLs) for performance anomalies in cloud databases, together
// with every substrate the paper's evaluation depends on — a discrete-event
// database-instance simulator, a microservice workload generator with
// anomaly injection, a streaming collection pipeline, and a repairing
// module.
//
// The package exposes the paper's pipeline as four composable stages:
//
//  1. Collection — a Collector aggregates the instance's query log into
//     per-template metric series and archives raw records (§IV-A).
//  2. Detection — a Detector recognizes anomalous phenomena on the
//     performance metrics and assembles anomaly Cases (§IV-B).
//  3. Diagnosis — Diagnose estimates each template's individual active
//     session from the log (§IV-C), ranks High-impact SQLs (§V), and
//     pinpoints R-SQLs via clustering, cumulative-threshold selection and
//     history trend verification (§VI).
//  4. Repair — a Repairer suggests and (optionally) executes throttling,
//     query optimization, or autoscale actions on the R-SQLs (§VII).
//
// Quickstart:
//
//	world := pinsql.NewDemoWorld(1)
//	world.InjectLockStorm(world.Services[2], "orders", 20, 600_000, 900_000)
//	run, _ := pinsql.Simulate(world, pinsql.SimOptions{DurationSec: 1500, Seed: 7})
//	for _, c := range run.DetectCases() {
//	    report := run.Diagnose(c)
//	    fmt.Println(report.RSQLs[0].ID) // the lock-storm UPDATE
//	}
//
// This repository is a single-module research reproduction: the public
// surface re-exports the implementation types from internal/ packages via
// aliases. A production release would promote those packages out of
// internal/; the API shape would not change.
package pinsql
