package caseio

import (
	"bytes"
	"testing"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/dbsim"
	"pinsql/internal/session"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// caseOf wraps a snapshot in an anomaly case with one history window.
func caseOf(t *testing.T, snap *collect.Snapshot) *anomaly.Case {
	t.Helper()
	c := anomaly.NewCase(snap, anomaly.Phenomenon{Rule: "active_session_anomaly", Start: 10, End: 40})
	c.History = []anomaly.HistoryWindow{{
		DaysAgo: 1,
		Counts: map[sqltemplate.ID]timeseries.Series{
			"A1": make(timeseries.Series, snap.Seconds),
		},
	}}
	return c
}

// frameQueries flattens the frame's observation columns into the legacy
// map — what cases.QueriesOf returns for the same window.
func frameQueries(f *window.Frame) session.Queries {
	out := make(session.Queries, len(f.Templates))
	for pos := range f.Templates {
		arr, resp := f.Obs(pos)
		for i := range arr {
			out[f.Templates[pos].Meta.ID] = append(out[f.Templates[pos].Meta.ID],
				session.Obs{ArrivalMs: arr[i], ResponseMs: resp[i]})
		}
	}
	return out
}

// frameSample builds a real collector window (so FromCase and FromFrame
// start from the same underlying data) and returns the collector.
func frameSample(t *testing.T) *collect.Collector {
	t.Helper()
	coll := collect.NewCollector("frame-io", 0, 60_000, nil, nil)
	recs := []dbsim.LogRecord{
		{TemplateID: "B2", SQL: "UPDATE t SET x = ?", Table: "t", Kind: dbsim.KindUpdate, ArrivalMs: 500, ResponseMs: 90, ExaminedRows: 3},
		{TemplateID: "A1", SQL: "SELECT * FROM t", Table: "t", Kind: dbsim.KindSelect, ArrivalMs: 2_000, ResponseMs: 10, ExaminedRows: 1},
		{TemplateID: "A1", SQL: "SELECT * FROM t", Table: "t", Kind: dbsim.KindSelect, ArrivalMs: 100, ResponseMs: 25, ExaminedRows: 2},
		{TemplateID: "C3", SQL: "DELETE FROM u", Table: "u", Kind: dbsim.KindDelete, ArrivalMs: 7_000, ResponseMs: 40, ExaminedRows: 4},
	}
	for _, r := range recs {
		coll.Ingest(r)
	}
	coll.IngestMetrics([]dbsim.SecondMetrics{{Second: 0, ActiveSession: 2, CPUUsage: 0.4}})
	return coll
}

func TestFromFrameBytesMatchFromCase(t *testing.T) {
	coll := frameSample(t)
	fr := coll.Frame()
	snap := collect.SnapshotOfFrame(fr)
	c := caseOf(t, snap)

	legacy := FromCase(c, frameQueries(fr))
	framed := FromFrame(c, fr)

	var a, b bytes.Buffer
	if err := legacy.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := framed.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("FromFrame bytes diverge from FromCase:\n--- legacy ---\n%s\n--- frame ---\n%s", a.String(), b.String())
	}
}

func TestToFrameRoundTrip(t *testing.T) {
	coll := frameSample(t)
	fr := coll.Frame()
	snap := collect.SnapshotOfFrame(fr)
	c := caseOf(t, snap)

	var buf bytes.Buffer
	if err := FromFrame(c, fr).Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, fr2, err := loaded.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if c2.AS != c.AS || c2.AE != c.AE {
		t.Errorf("window [%d,%d) vs [%d,%d)", c2.AS, c2.AE, c.AS, c.AE)
	}
	if fr2.NumTemplates() != fr.NumTemplates() || fr2.NumObs() != fr.NumObs() {
		t.Fatalf("reloaded frame %d templates / %d obs, want %d / %d",
			fr2.NumTemplates(), fr2.NumObs(), fr.NumTemplates(), fr.NumObs())
	}
	for pos := range fr.Templates {
		if fr2.Templates[pos].Meta.ID != fr.Templates[pos].Meta.ID {
			t.Fatalf("template %d is %s, want %s", pos, fr2.Templates[pos].Meta.ID, fr.Templates[pos].Meta.ID)
		}
		arr, resp := fr.Obs(pos)
		arr2, resp2 := fr2.Obs(pos)
		if len(arr2) != len(arr) {
			t.Fatalf("template %d obs = %d, want %d", pos, len(arr2), len(arr))
		}
		for i := range arr {
			if arr2[i] != arr[i] || resp2[i] != resp[i] {
				t.Fatalf("template %d obs %d = (%d, %g), want (%d, %g)",
					pos, i, arr2[i], resp2[i], arr[i], resp[i])
			}
		}
	}
	for i, p := range fr.ByID {
		if fr2.ByID[i] != p {
			t.Fatalf("ByID = %v, want %v", fr2.ByID, fr.ByID)
		}
	}
}
