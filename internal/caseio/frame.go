package caseio

import (
	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/session"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/window"
)

// FromFrame converts an anomaly case plus its window frame into the
// serializable document, without materializing the legacy map-keyed query
// table. The rendered bytes are identical to
// FromCase(c, queries-of-the-same-window): templates are emitted in frame
// (registry-index) order — the snapshot order FromCase walks — and the
// query rows follow the frame's ByID permutation, which is exactly the
// sorted-template-ID order FromCase fixes by sorting the map's keys.
func FromFrame(c *anomaly.Case, f *window.Frame) *File {
	out := &File{
		Version:       CurrentVersion,
		StartMs:       f.StartMs,
		Seconds:       f.Seconds,
		Anomaly:       Window{Start: c.AS, End: c.AE},
		Rule:          c.Phenomenon.Rule,
		ActiveSession: f.ActiveSession,
		CPUUsage:      f.CPUUsage,
		IOPSUsage:     f.IOPSUsage,
		MemUsage:      f.MemUsage,
		RowLockWaits:  f.RowLockWaits,
		MDLWaits:      f.MDLWaits,
	}
	for i := range f.Templates {
		t := &f.Templates[i]
		out.Templates = append(out.Templates, Template{
			ID:      string(t.Meta.ID),
			SQL:     t.Meta.Text,
			Table:   t.Meta.Table,
			Count:   t.Count,
			SumRT:   t.SumRT,
			SumRows: t.SumRows,
		})
	}
	for _, pos := range f.ByID {
		arr, resp := f.Obs(int(pos))
		id := string(f.Templates[pos].Meta.ID)
		for i, a := range arr {
			out.Queries = append(out.Queries, Query{
				Template:   id,
				ArrivalMs:  a,
				ResponseMs: resp[i],
			})
		}
	}
	for _, hw := range c.History {
		h := History{DaysAgo: hw.DaysAgo, Counts: make(map[string][]float64, len(hw.Counts))}
		for id, s := range hw.Counts {
			h.Counts[string(id)] = s
		}
		out.History = append(out.History, h)
	}
	return out
}

// ToFrame reconstructs the case and its columnar window frame from a
// document — the frame-path counterpart of ToCase. Query rows are grouped
// by template in file order; rows referencing a template absent from the
// Templates section are dropped (ToCase keeps them in its map, but the
// frame's axes are the declared templates — files produced by FromCase /
// FromFrame never contain such rows). Finalize re-sorts each group by
// arrival time, so a hand-edited file with out-of-order rows diagnoses as
// if its rows had been arrival-sorted.
func (f *File) ToFrame() (*anomaly.Case, *window.Frame, error) {
	c, queries, err := f.ToCase()
	if err != nil {
		return nil, nil, err
	}
	fr := frameOf(c.Snapshot, queries)
	return c, fr, nil
}

// frameOf assembles a window frame from a snapshot (templates in index
// order) and the legacy map-keyed query table.
func frameOf(snap *collect.Snapshot, queries session.Queries) *window.Frame {
	fr := &window.Frame{
		Topic:         snap.Topic,
		StartMs:       snap.StartMs,
		Seconds:       snap.Seconds,
		ActiveSession: snap.ActiveSession,
		AvgSession:    snap.AvgSession,
		CPUUsage:      snap.CPUUsage,
		IOPSUsage:     snap.IOPSUsage,
		MemUsage:      snap.MemUsage,
		QPS:           snap.QPS,
		RowLockWaits:  snap.RowLockWaits,
		MDLWaits:      snap.MDLWaits,
		Templates:     make([]window.Template, len(snap.Templates)),
		Off:           make([]int32, len(snap.Templates)+1),
	}
	total := 0
	seen := make(map[sqltemplate.ID]bool, len(snap.Templates))
	for _, ts := range snap.Templates {
		if !seen[ts.Meta.ID] {
			seen[ts.Meta.ID] = true
			total += len(queries[ts.Meta.ID])
		}
	}
	fr.Arrival = make([]int64, 0, total)
	fr.Response = make([]float64, 0, total)
	claimed := make(map[sqltemplate.ID]bool, len(snap.Templates))
	for i, ts := range snap.Templates {
		fr.Templates[i] = window.Template{
			Meta:      window.Meta(ts.Meta),
			Count:     ts.Count,
			SumRT:     ts.SumRT,
			SumRows:   ts.SumRows,
			Throttled: ts.Throttled,
		}
		// A duplicated template ID claims its observations once (first
		// position wins, matching Snapshot.Template resolution).
		if obs := queries[ts.Meta.ID]; len(obs) > 0 && !claimed[ts.Meta.ID] {
			claimed[ts.Meta.ID] = true
			for _, o := range obs {
				fr.Arrival = append(fr.Arrival, o.ArrivalMs)
				fr.Response = append(fr.Response, o.ResponseMs)
			}
		}
		fr.Off[i+1] = int32(len(fr.Arrival))
	}
	fr.Finalize()
	return fr
}
