package caseio

// Satellite coverage for parallel case generation: a case generated under
// Workers>1 must serialize to the byte-identical file as the same case
// generated sequentially, and survive a write/read round trip. This pins
// both halves of the determinism story — generation cannot depend on
// worker scheduling, and FromCase cannot depend on map iteration order.

import (
	"bytes"
	"testing"

	"pinsql/internal/cases"
)

// generateCorpus materializes a tiny corpus at the given worker count.
func generateCorpus(t *testing.T, workers int) []*cases.Labeled {
	t.Helper()
	opt := cases.DefaultOptions()
	opt.TraceSec = 600
	opt.AnomalyStartSec = 300
	opt.AnomalyMinDurSec = 120
	opt.AnomalyMaxDurSec = 180
	opt.FillerServices = 1
	opt.FillerSpecs = 3
	opt.HistoryDays = []int{1}
	opt.Count = 2
	opt.Workers = workers
	labs, err := cases.Generate(opt)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return labs
}

func encodeCase(t *testing.T, lab *cases.Labeled) []byte {
	t.Helper()
	f := FromCase(lab.Case, cases.QueriesOf(lab.Collector, lab.Case.Snapshot))
	f.Name = lab.Name
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelGenerationSerializesIdentically(t *testing.T) {
	seq := generateCorpus(t, 1)
	par := generateCorpus(t, 3)
	if len(seq) != len(par) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := encodeCase(t, seq[i]), encodeCase(t, par[i])
		if !bytes.Equal(a, b) {
			t.Errorf("case %d: parallel-generated file differs from sequential (%d vs %d bytes)", i, len(b), len(a))
		}
		// Repeated serialization of the same in-memory case must also be
		// stable — FromCase may not leak map iteration order.
		if again := encodeCase(t, par[i]); !bytes.Equal(b, again) {
			t.Errorf("case %d: re-serialization not byte-stable", i)
		}
	}

	// The parallel-generated file survives a full round trip.
	f, err := Read(bytes.NewReader(encodeCase(t, par[0])))
	if err != nil {
		t.Fatal(err)
	}
	c, queries, err := f.ToCase()
	if err != nil {
		t.Fatal(err)
	}
	if c.AS != par[0].Case.AS || c.AE != par[0].Case.AE {
		t.Errorf("round trip window [%d,%d) vs [%d,%d)", c.AS, c.AE, par[0].Case.AS, par[0].Case.AE)
	}
	if len(c.Snapshot.Templates) != len(par[0].Case.Snapshot.Templates) {
		t.Errorf("round trip templates %d vs %d", len(c.Snapshot.Templates), len(par[0].Case.Snapshot.Templates))
	}
	if len(queries) == 0 {
		t.Error("round trip dropped raw queries")
	}
}
