package caseio

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// This file defines the self-contained repro bundle the adversarial fuzzer
// emits for every diagnosis miss it finds: a directory holding the case's
// frame document (case.json, the ordinary caseio format with Truth labels)
// plus a manifest (manifest.json) recording how the case was found — seed,
// minimized parameter vector, bandit arm — and what the diagnosis did wrong
// (expected vs. actual ranking, the misrank verdict). A bundle replays
// without the generator: load case.json, diagnose the frame, re-judge
// against Truth, and compare verdicts byte-for-byte.

// Bundle file names. The case document is gzip-compressed on disk — a
// full frame of per-query observations runs to megabytes of JSON, an
// order of magnitude less once compressed — while the manifest stays
// plain text for reviewable diffs.
const (
	BundleCaseFile     = "case.json.gz"
	BundleManifestFile = "manifest.json"
)

// ManifestVersion guards the manifest format.
const ManifestVersion = 1

// Verdict is the misrank judgment of one diagnosed case against its ground
// truth. Zero Score means a perfect top-1 diagnosis with a clean H-SQL
// head; Miss mirrors the paper's headline metric (Hits@1 on R-SQLs).
type Verdict struct {
	// RankOfTruth is the 1-based rank of the first true R-SQL in the
	// ranked R-SQL list; 0 means no true R-SQL was ranked at all.
	RankOfTruth int  `json:"rank_of_truth"`
	Top1Hit     bool `json:"top1_hit"`
	Top3Hit     bool `json:"top3_hit"`
	// RFalseAhead counts the false positives ranked above the first true
	// R-SQL (the whole list when the truth is absent).
	RFalseAhead int `json:"r_false_ahead"`
	// HFalseTop5 counts top-5 H-SQLs absent from the H-SQL ground truth.
	HFalseTop5 int `json:"h_false_top5"`
	// Score is the misrank severity in [0,1]; the fuzzer's bandit reward.
	Score float64 `json:"score"`
	// Miss is the searched-for failure: the true root cause not at rank 1.
	Miss bool `json:"miss"`
}

// ReproParams is the flat, serialization-side mirror of the generator's
// parameter vector (cases.CaseParams); the fuzz package converts. Keeping
// the JSON type here lets bundles parse without importing the generator.
type ReproParams struct {
	Kind            string  `json:"kind"`
	Service         int     `json:"service"`
	Intensity       float64 `json:"intensity"`
	StartSec        int     `json:"start_sec"`
	DurSec          int     `json:"dur_sec"`
	FillerServices  int     `json:"filler_services"`
	FillerSpecs     int     `json:"filler_specs"`
	ConfuserService int     `json:"confuser_service"`
	ConfuserFactor  float64 `json:"confuser_factor,omitempty"`
	ConfuserLeadSec int     `json:"confuser_lead_sec,omitempty"`
	ConfuserDurSec  int     `json:"confuser_dur_sec,omitempty"`
}

// ReproManifest describes one found-and-minimized miss.
type ReproManifest struct {
	Version int    `json:"version"`
	Name    string `json:"name"`

	// Provenance: the search that found the case. (Seed, CaseIndex,
	// Params) replays the exact case through the generator; the frame in
	// case.json replays the diagnosis without it.
	Seed      int64  `json:"seed"`
	CaseIndex int64  `json:"case_index"`
	TraceSec  int    `json:"trace_sec"`
	Arm       string `json:"arm,omitempty"`
	// HistoryDays / Cores complete the generator options: replaying from
	// Params needs the exact history-window offsets and instance size.
	HistoryDays []int `json:"history_days,omitempty"`
	Cores       int   `json:"cores,omitempty"`

	// Params is the minimized vector; Original the as-found vector when
	// minimization shrank anything.
	Params         ReproParams  `json:"params"`
	Original       *ReproParams `json:"original,omitempty"`
	MinimizeProbes int          `json:"minimize_probes,omitempty"`

	// Expected holds the ground-truth R-SQL IDs (sorted); ActualR/ActualH
	// the head of the diagnosis' ranked lists when the miss was recorded.
	Expected []string `json:"expected"`
	ActualR  []string `json:"actual_r"`
	ActualH  []string `json:"actual_h,omitempty"`

	Verdict Verdict `json:"verdict"`
}

// Validate checks structural invariants of a parsed manifest.
func (m *ReproManifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("caseio: unsupported manifest version %d", m.Version)
	}
	if m.Name == "" {
		return fmt.Errorf("caseio: manifest has no name")
	}
	if len(m.Expected) == 0 {
		return fmt.Errorf("caseio: manifest %s has no expected R-SQLs", m.Name)
	}
	if m.Verdict.RankOfTruth < 0 {
		return fmt.Errorf("caseio: manifest %s: negative rank_of_truth", m.Name)
	}
	if m.Verdict.RankOfTruth == 1 != m.Verdict.Top1Hit {
		return fmt.Errorf("caseio: manifest %s: top1_hit inconsistent with rank_of_truth %d",
			m.Name, m.Verdict.RankOfTruth)
	}
	if m.Verdict.Miss == m.Verdict.Top1Hit {
		return fmt.Errorf("caseio: manifest %s: miss inconsistent with top1_hit", m.Name)
	}
	return nil
}

// ParseManifest decodes and validates a manifest document.
func ParseManifest(data []byte) (*ReproManifest, error) {
	var m ReproManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("caseio: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// MarshalIndented renders the manifest exactly as WriteBundle lays it on
// disk, so byte-level comparisons have one canonical form.
func (m *ReproManifest) MarshalIndented() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteBundle materializes a repro bundle directory: dir/manifest.json and
// dir/case.json. The directory is created (parents included).
func WriteBundle(dir string, m *ReproManifest, f *File) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := m.MarshalIndented()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, BundleManifestFile), data, 0o644); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, BundleCaseFile))
	if err != nil {
		return err
	}
	// gzip with a zeroed header: byte-identical output for identical
	// documents, so re-mined bundles diff clean.
	zw := gzip.NewWriter(cf)
	if err := f.Write(zw); err != nil {
		zw.Close()
		cf.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

// ReadBundle loads a repro bundle directory back into its manifest and
// case document.
func ReadBundle(dir string) (*ReproManifest, *File, error) {
	data, err := os.ReadFile(filepath.Join(dir, BundleManifestFile))
	if err != nil {
		return nil, nil, err
	}
	m, err := ParseManifest(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", dir, err)
	}
	cf, err := os.Open(filepath.Join(dir, BundleCaseFile))
	if err != nil {
		return nil, nil, err
	}
	defer cf.Close()
	zr, err := gzip.NewReader(cf)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", dir, err)
	}
	defer zr.Close()
	f, err := Read(zr)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", dir, err)
	}
	return m, f, nil
}
