package caseio

import (
	"bytes"
	"strings"
	"testing"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/session"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

func sampleCase() (*anomaly.Case, session.Queries) {
	n := 60
	snap := &collect.Snapshot{
		Topic:         "sample",
		Seconds:       n,
		ActiveSession: ramp(n, 2),
		CPUUsage:      ramp(n, 1),
		IOPSUsage:     make(timeseries.Series, n),
		MemUsage:      make(timeseries.Series, n),
		RowLockWaits:  make(timeseries.Series, n),
		MDLWaits:      make(timeseries.Series, n),
		AvgSession:    make(timeseries.Series, n),
		QPS:           make(timeseries.Series, n),
	}
	snap.Templates = []*collect.TemplateSeries{
		{
			Meta:    collect.TemplateMeta{Index: 0, ID: "AAAA0001", Text: "SELECT * FROM t WHERE id = ?", Table: "t"},
			Count:   ramp(n, 3),
			SumRT:   ramp(n, 4),
			SumRows: ramp(n, 5),
		},
		{
			Meta:    collect.TemplateMeta{Index: 1, ID: "BBBB0002", Text: "UPDATE t SET x = ?", Table: "t"},
			Count:   ramp(n, 6),
			SumRT:   ramp(n, 7),
			SumRows: ramp(n, 8),
		},
	}
	c := anomaly.NewCase(snap, anomaly.Phenomenon{Rule: "active_session_anomaly", Start: 30, End: 50})
	c.History = []anomaly.HistoryWindow{{
		DaysAgo: 1,
		Counts: map[sqltemplate.ID]timeseries.Series{
			"AAAA0001": ramp(n, 9),
		},
	}}
	queries := session.Queries{
		"AAAA0001": {{ArrivalMs: 100, ResponseMs: 25}, {ArrivalMs: 2000, ResponseMs: 10}},
		"BBBB0002": {{ArrivalMs: 500, ResponseMs: 90}},
	}
	return c, queries
}

func ramp(n int, k float64) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = k * float64(i%7)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	c, queries := sampleCase()
	f := FromCase(c, queries)

	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, q2, err := loaded.ToCase()
	if err != nil {
		t.Fatal(err)
	}

	if c2.AS != c.AS || c2.AE != c.AE {
		t.Errorf("window [%d,%d) vs [%d,%d)", c2.AS, c2.AE, c.AS, c.AE)
	}
	if c2.Phenomenon.Rule != c.Phenomenon.Rule {
		t.Errorf("rule %q vs %q", c2.Phenomenon.Rule, c.Phenomenon.Rule)
	}
	if len(c2.Snapshot.Templates) != 2 {
		t.Fatalf("templates = %d", len(c2.Snapshot.Templates))
	}
	for i, ts := range c.Snapshot.Templates {
		got := c2.Snapshot.Template(ts.Meta.ID)
		if got == nil {
			t.Fatalf("template %s missing", ts.Meta.ID)
		}
		if got.Meta.Text != ts.Meta.Text || got.Meta.Table != ts.Meta.Table {
			t.Errorf("template %d meta mismatch: %+v", i, got.Meta)
		}
		for sec := range ts.Count {
			if got.Count[sec] != ts.Count[sec] || got.SumRT[sec] != ts.SumRT[sec] {
				t.Fatalf("template %d series mismatch at %d", i, sec)
			}
		}
	}
	for sec := range c.Snapshot.ActiveSession {
		if c2.Snapshot.ActiveSession[sec] != c.Snapshot.ActiveSession[sec] {
			t.Fatalf("active session mismatch at %d", sec)
		}
	}
	if len(c2.History) != 1 || c2.History[0].DaysAgo != 1 {
		t.Fatalf("history = %+v", c2.History)
	}
	if len(q2) != 2 || len(q2["AAAA0001"]) != 2 || q2["BBBB0002"][0].ResponseMs != 90 {
		t.Errorf("queries = %+v", q2)
	}
}

func TestToCaseValidation(t *testing.T) {
	bad := &File{Version: CurrentVersion, Seconds: 0}
	if _, _, err := bad.ToCase(); err == nil {
		t.Error("zero seconds accepted")
	}
	bad = &File{Version: 99, Seconds: 10, Templates: []Template{{ID: "X"}}}
	if _, _, err := bad.ToCase(); err == nil {
		t.Error("future version accepted")
	}
	bad = &File{Version: CurrentVersion, Seconds: 10}
	if _, _, err := bad.ToCase(); err == nil {
		t.Error("no templates accepted")
	}
	bad = &File{Version: CurrentVersion, Seconds: 10, Templates: []Template{{}}}
	if _, _, err := bad.ToCase(); err == nil {
		t.Error("template without id or sql accepted")
	}
}

func TestToCaseDigestsSQLWhenNoID(t *testing.T) {
	f := &File{
		Version: CurrentVersion,
		Seconds: 5,
		Templates: []Template{
			{SQL: "SELECT * FROM x WHERE id = 42", Count: []float64{1}},
		},
	}
	c, _, err := f.ToCase()
	if err != nil {
		t.Fatal(err)
	}
	want := sqltemplate.New("SELECT * FROM x WHERE id = 42").ID
	if c.Snapshot.Templates[0].Meta.ID != want {
		t.Errorf("digested ID = %s, want %s", c.Snapshot.Templates[0].Meta.ID, want)
	}
}

func TestReadToleratesMissingVersion(t *testing.T) {
	doc := `{"seconds": 3, "templates": [{"id":"A","count":[1,2,3],"sum_rt":[1,2,3]}], "anomaly": {"start":0,"end":2}, "active_session":[1,2,3]}`
	f, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != CurrentVersion {
		t.Errorf("version = %d", f.Version)
	}
	if _, _, err := f.ToCase(); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSeriesPadding(t *testing.T) {
	f := &File{
		Version:       CurrentVersion,
		Seconds:       10,
		ActiveSession: []float64{1, 2}, // shorter than Seconds
		Templates:     []Template{{ID: "A", Count: []float64{5}}},
	}
	c, _, err := f.ToCase()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Snapshot.ActiveSession) != 10 || c.Snapshot.ActiveSession[1] != 2 || c.Snapshot.ActiveSession[5] != 0 {
		t.Errorf("padded series = %v", c.Snapshot.ActiveSession)
	}
	if len(c.Snapshot.Template("A").Count) != 10 {
		t.Error("template series not padded")
	}
}
