package caseio

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/timeseries"
)

// testBundle builds a tiny but fully valid manifest + case document pair.
func testBundle(t testing.TB) (*ReproManifest, *File) {
	t.Helper()
	const secs = 8
	series := func(vals ...float64) timeseries.Series {
		s := make(timeseries.Series, secs)
		copy(s, vals)
		return s
	}
	snap := &collect.Snapshot{
		Topic:         "bundle-test",
		Seconds:       secs,
		ActiveSession: series(1, 1, 1, 6, 7, 6, 1, 1),
		CPUUsage:      series(0.2, 0.2, 0.2, 0.9, 0.9, 0.9, 0.2, 0.2),
		IOPSUsage:     make(timeseries.Series, secs),
		MemUsage:      make(timeseries.Series, secs),
		RowLockWaits:  make(timeseries.Series, secs),
		MDLWaits:      make(timeseries.Series, secs),
		AvgSession:    make(timeseries.Series, secs),
		QPS:           make(timeseries.Series, secs),
	}
	snap.Templates = append(snap.Templates, &collect.TemplateSeries{
		Meta:      collect.TemplateMeta{Index: 0, ID: "tpl-a", Text: "SELECT a FROM t WHERE id = ?"},
		Count:     series(2, 2, 2, 9, 9, 9, 2, 2),
		SumRT:     series(10, 10, 10, 400, 420, 410, 10, 10),
		SumRows:   series(4, 4, 4, 60, 60, 60, 4, 4),
		Throttled: make(timeseries.Series, secs),
	}, &collect.TemplateSeries{
		Meta:      collect.TemplateMeta{Index: 1, ID: "tpl-b", Text: "UPDATE t SET v = ? WHERE id = ?"},
		Count:     series(1, 1, 1, 1, 1, 1, 1, 1),
		SumRT:     series(5, 5, 5, 5, 5, 5, 5, 5),
		SumRows:   series(1, 1, 1, 1, 1, 1, 1, 1),
		Throttled: make(timeseries.Series, secs),
	})
	c := anomaly.NewCase(snap, anomaly.Phenomenon{Rule: "test", Start: 3, End: 6})
	file := FromCase(c, nil)
	file.Name = "bundle-test"
	file.Truth = &Truth{RSQLs: []string{"tpl-b"}, HSQLs: []string{"tpl-a"}, Kind: "poor_sql"}

	m := &ReproManifest{
		Version:   ManifestVersion,
		Name:      "bundle-test",
		Seed:      42,
		CaseIndex: 3,
		TraceSec:  secs,
		Arm:       "poor_sql/hi/confuser",
		Params: ReproParams{
			Kind: "poor_sql", Service: 1, Intensity: 2.5,
			StartSec: 3, DurSec: 3, ConfuserService: -1,
		},
		Expected: []string{"tpl-b"},
		ActualR:  []string{"tpl-a", "tpl-b"},
		ActualH:  []string{"tpl-a"},
		Verdict: Verdict{
			RankOfTruth: 2, Top3Hit: true, RFalseAhead: 1,
			HFalseTop5: 0, Score: 0.425, Miss: true,
		},
	}
	return m, file
}

func TestBundleRoundTrip(t *testing.T) {
	m, file := testBundle(t)
	dir := filepath.Join(t.TempDir(), "repro")
	if err := WriteBundle(dir, m, file); err != nil {
		t.Fatal(err)
	}
	m2, f2, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("manifest round-trip diverged:\n%+v\n%+v", m, m2)
	}
	if f2.Truth == nil || f2.Truth.RSQLs[0] != "tpl-b" {
		t.Fatalf("truth labels lost in round-trip: %+v", f2.Truth)
	}
	// The re-read case must rebuild the same frame the writer serialized.
	_, fr, err := f2.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumTemplates() != 2 || fr.Seconds != 8 {
		t.Fatalf("frame reconstruction wrong: %d templates, %d seconds", fr.NumTemplates(), fr.Seconds)
	}
	// Canonical manifest bytes are stable across a write/read cycle.
	b1, err := m.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m2.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("canonical manifest bytes diverged across round-trip")
	}
}

func TestManifestValidate(t *testing.T) {
	base, _ := testBundle(t)
	tests := []struct {
		name   string
		mutate func(*ReproManifest)
	}{
		{"bad version", func(m *ReproManifest) { m.Version = 99 }},
		{"no name", func(m *ReproManifest) { m.Name = "" }},
		{"no expected", func(m *ReproManifest) { m.Expected = nil }},
		{"negative rank", func(m *ReproManifest) { m.Verdict.RankOfTruth = -1 }},
		{"top1 inconsistent", func(m *ReproManifest) { m.Verdict.Top1Hit = true }},
		{"miss inconsistent", func(m *ReproManifest) {
			m.Verdict.RankOfTruth = 1
			m.Verdict.Top1Hit = true
			m.Verdict.Miss = true
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := *base
			m.Verdict = base.Verdict
			tc.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base manifest should validate: %v", err)
	}
}

// FuzzReproBundle drives arbitrary bytes through the bundle parsers — the
// manifest decoder and the caseio frame parser — asserting panic-freedom
// and, for inputs that parse, stable canonical re-encoding.
func FuzzReproBundle(f *testing.F) {
	m, file := testBundle(f)
	mb, err := m.MarshalIndented()
	if err != nil {
		f.Fatal(err)
	}
	var cb bytes.Buffer
	if err := file.Write(&cb); err != nil {
		f.Fatal(err)
	}
	f.Add(mb, cb.Bytes())
	f.Add([]byte(`{"version":1}`), []byte(`{"version":1,"seconds":-3}`))
	f.Add([]byte(`not json`), []byte(`[]`))

	f.Fuzz(func(t *testing.T, manifestJSON, caseJSON []byte) {
		if m, err := ParseManifest(manifestJSON); err == nil {
			// A valid manifest re-encodes canonically and re-parses equal.
			b, err := m.MarshalIndented()
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			m2, err := ParseManifest(b)
			if err != nil {
				t.Fatalf("canonical bytes failed to re-parse: %v", err)
			}
			if !reflect.DeepEqual(m, m2) {
				t.Fatalf("canonical re-parse diverged: %+v vs %+v", m, m2)
			}
		}

		cf, err := Read(bytes.NewReader(caseJSON))
		if err != nil {
			return
		}
		// Bound resource use before reconstructing series: pad() allocates
		// Seconds samples per template.
		if cf.Seconds > 4096 || len(cf.Templates) > 256 || len(cf.Queries) > 8192 {
			return
		}
		var hist int
		for _, h := range cf.History {
			hist += len(h.Counts)
		}
		if hist > 256 {
			return
		}
		c1, fr1, err := cf.ToFrame()
		if err != nil {
			return
		}
		// Idempotence oracle: a frame round-tripped through the document
		// format must rebuild the identical frame.
		doc := FromFrame(c1, fr1)
		doc.Truth = cf.Truth
		var buf bytes.Buffer
		if err := doc.Write(&buf); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		cf2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-serialized document failed to parse: %v", err)
		}
		c2, fr2, err := cf2.ToFrame()
		if err != nil {
			t.Fatalf("re-serialized document failed to rebuild: %v", err)
		}
		if c1.AS != c2.AS || c1.AE != c2.AE || fr1.NumTemplates() != fr2.NumTemplates() || fr1.NumObs() != fr2.NumObs() {
			t.Fatalf("frame round-trip diverged: [%d,%d) %dT/%dN vs [%d,%d) %dT/%dN",
				c1.AS, c1.AE, fr1.NumTemplates(), fr1.NumObs(),
				c2.AS, c2.AE, fr2.NumTemplates(), fr2.NumObs())
		}
		for pos := 0; pos < fr1.NumTemplates(); pos++ {
			a1, r1 := fr1.Obs(pos)
			a2, r2 := fr2.Obs(pos)
			if len(a1) != len(a2) {
				t.Fatalf("template %d observation count diverged", pos)
			}
			for i := range a1 {
				if a1[i] != a2[i] || r1[i] != r2[i] {
					t.Fatalf("template %d observation %d diverged", pos, i)
				}
			}
		}
	})
}

// TestReproBundleSeeds replays the committed seed corpus through the same
// oracle the fuzz target uses, so the seeds stay green without -fuzz.
func TestReproBundleSeeds(t *testing.T) {
	m, file := testBundle(t)
	if _, err := m.MarshalIndented(); err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	if err := file.Write(&cb); err != nil {
		t.Fatal(err)
	}
	cf, err := Read(bytes.NewReader(cb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var d json.RawMessage
	if err := json.Unmarshal(cb.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cf.ToFrame(); err != nil {
		t.Fatal(err)
	}
}
