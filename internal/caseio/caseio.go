// Package caseio serializes anomaly cases to and from JSON, so diagnosis
// can run offline: `pinsql-gen` exports cases from the simulator (or a real
// collector could export production windows), and `pinsql-diagnose` loads
// them. The format carries everything Definition II.2 requires — the
// performance metrics M, the per-template series Q, the anomaly window
// [as, ae) — plus the optional raw query observations the session estimator
// wants and the history windows the R-SQL verifier wants.
package caseio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/session"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// File is the serialized case document.
type File struct {
	// Version guards against future format changes.
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`

	StartMs int64 `json:"start_ms"`
	Seconds int   `json:"seconds"`

	Anomaly Window `json:"anomaly"`
	Rule    string `json:"rule,omitempty"`

	ActiveSession []float64 `json:"active_session"`
	CPUUsage      []float64 `json:"cpu_usage,omitempty"`
	IOPSUsage     []float64 `json:"iops_usage,omitempty"`
	MemUsage      []float64 `json:"mem_usage,omitempty"`
	RowLockWaits  []float64 `json:"row_lock_waits,omitempty"`
	MDLWaits      []float64 `json:"mdl_waits,omitempty"`

	Templates []Template `json:"templates"`
	Queries   []Query    `json:"queries,omitempty"`
	History   []History  `json:"history,omitempty"`

	// Truth carries ground-truth labels when the case came from the
	// synthetic corpus; absent for production exports.
	Truth *Truth `json:"truth,omitempty"`
}

// Window is a half-open [Start, End) second range.
type Window struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Template is one SQL template's aggregated series.
type Template struct {
	ID      string    `json:"id"`
	SQL     string    `json:"sql,omitempty"`
	Table   string    `json:"table,omitempty"`
	Count   []float64 `json:"count"`
	SumRT   []float64 `json:"sum_rt"`
	SumRows []float64 `json:"sum_rows,omitempty"`
}

// Query is one raw query observation.
type Query struct {
	Template   string  `json:"template"`
	ArrivalMs  int64   `json:"arrival_ms"`
	ResponseMs float64 `json:"response_ms"`
}

// History is one Nd-days-ago window of #execution series.
type History struct {
	DaysAgo int                  `json:"days_ago"`
	Counts  map[string][]float64 `json:"counts"`
}

// Truth carries corpus labels.
type Truth struct {
	RSQLs []string `json:"rsqls"`
	HSQLs []string `json:"hsqls,omitempty"`
	Kind  string   `json:"kind,omitempty"`
}

// CurrentVersion of the format.
const CurrentVersion = 1

// FromCase converts an in-memory case (plus optional raw queries) into the
// serializable document.
func FromCase(c *anomaly.Case, queries session.Queries) *File {
	snap := c.Snapshot
	f := &File{
		Version:       CurrentVersion,
		StartMs:       snap.StartMs,
		Seconds:       snap.Seconds,
		Anomaly:       Window{Start: c.AS, End: c.AE},
		Rule:          c.Phenomenon.Rule,
		ActiveSession: snap.ActiveSession,
		CPUUsage:      snap.CPUUsage,
		IOPSUsage:     snap.IOPSUsage,
		MemUsage:      snap.MemUsage,
		RowLockWaits:  snap.RowLockWaits,
		MDLWaits:      snap.MDLWaits,
	}
	for _, ts := range snap.Templates {
		f.Templates = append(f.Templates, Template{
			ID:      string(ts.Meta.ID),
			SQL:     ts.Meta.Text,
			Table:   ts.Meta.Table,
			Count:   ts.Count,
			SumRT:   ts.SumRT,
			SumRows: ts.SumRows,
		})
	}
	// Iterate templates in sorted order, not map order: the rendered file
	// must be byte-identical for the same case however it was produced
	// (the parallel-generation equivalence tests diff files directly).
	ids := make([]sqltemplate.ID, 0, len(queries))
	for id := range queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, o := range queries[id] {
			f.Queries = append(f.Queries, Query{
				Template:   string(id),
				ArrivalMs:  o.ArrivalMs,
				ResponseMs: o.ResponseMs,
			})
		}
	}
	for _, hw := range c.History {
		h := History{DaysAgo: hw.DaysAgo, Counts: make(map[string][]float64, len(hw.Counts))}
		for id, s := range hw.Counts {
			h.Counts[string(id)] = s
		}
		f.History = append(f.History, h)
	}
	return f
}

// ToCase reconstructs the in-memory case and raw queries from a document.
func (f *File) ToCase() (*anomaly.Case, session.Queries, error) {
	if f.Version != CurrentVersion {
		return nil, nil, fmt.Errorf("caseio: unsupported version %d", f.Version)
	}
	if f.Seconds <= 0 {
		return nil, nil, fmt.Errorf("caseio: seconds must be positive")
	}
	if len(f.Templates) == 0 {
		return nil, nil, fmt.Errorf("caseio: no templates")
	}
	snap := &collect.Snapshot{
		Topic:         f.Name,
		StartMs:       f.StartMs,
		Seconds:       f.Seconds,
		ActiveSession: pad(f.ActiveSession, f.Seconds),
		CPUUsage:      pad(f.CPUUsage, f.Seconds),
		IOPSUsage:     pad(f.IOPSUsage, f.Seconds),
		MemUsage:      pad(f.MemUsage, f.Seconds),
		RowLockWaits:  pad(f.RowLockWaits, f.Seconds),
		MDLWaits:      pad(f.MDLWaits, f.Seconds),
		AvgSession:    make(timeseries.Series, f.Seconds),
		QPS:           make(timeseries.Series, f.Seconds),
	}
	for i, t := range f.Templates {
		id := sqltemplate.ID(t.ID)
		if id == "" {
			if t.SQL == "" {
				return nil, nil, fmt.Errorf("caseio: template %d has neither id nor sql", i)
			}
			id = sqltemplate.New(t.SQL).ID
		}
		snap.Templates = append(snap.Templates, &collect.TemplateSeries{
			Meta: collect.TemplateMeta{
				Index: int32(i),
				ID:    id,
				Text:  t.SQL,
				Table: t.Table,
			},
			Count:     pad(t.Count, f.Seconds),
			SumRT:     pad(t.SumRT, f.Seconds),
			SumRows:   pad(t.SumRows, f.Seconds),
			Throttled: make(timeseries.Series, f.Seconds),
		})
	}
	rule := f.Rule
	if rule == "" {
		rule = "from_file"
	}
	c := anomaly.NewCase(snap, anomaly.Phenomenon{
		Rule:  rule,
		Start: f.Anomaly.Start,
		End:   f.Anomaly.End,
	})
	for _, h := range f.History {
		hw := anomaly.HistoryWindow{
			DaysAgo: h.DaysAgo,
			Counts:  make(map[sqltemplate.ID]timeseries.Series, len(h.Counts)),
		}
		for id, counts := range h.Counts {
			hw.Counts[sqltemplate.ID(id)] = pad(counts, f.Seconds)
		}
		c.History = append(c.History, hw)
	}
	queries := make(session.Queries)
	for _, q := range f.Queries {
		id := sqltemplate.ID(q.Template)
		queries[id] = append(queries[id], session.Obs{ArrivalMs: q.ArrivalMs, ResponseMs: q.ResponseMs})
	}
	return c, queries, nil
}

// Write encodes the document to w (indented JSON).
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// Read decodes a document from r.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("caseio: decoding: %w", err)
	}
	if f.Version == 0 {
		f.Version = CurrentVersion // tolerate hand-written files
	}
	return &f, nil
}

func pad(v []float64, n int) timeseries.Series {
	out := make(timeseries.Series, n)
	copy(out, v)
	return out
}
