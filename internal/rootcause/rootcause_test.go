package rootcause

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// buildPoorSQLCase models the paper's poor-SQL mechanism: a newly deployed
// statement ("RSQL") appears at the anomaly start, is itself the heaviest
// session consumer (slow queries pile up → it is its own H-SQL), and slows
// the victims in other business clusters. Trace: 2400 s, anomaly [1800,2100).
func buildPoorSQLCase(rng *rand.Rand) Input {
	n := 2400
	as, ae := 1800, 2100

	rsqlExec := make(timeseries.Series, n)
	victimExec := make(timeseries.Series, n)
	otherExec := make(timeseries.Series, n)
	giantExec := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		if i >= as {
			rsqlExec[i] = 20 + rng.Float64() // new template: zero before deploy
		}
		victimExec[i] = 30 + 25*float64(i%600)/600 + rng.Float64()
		otherExec[i] = 10 + 12*float64((i/250)%2) + rng.Float64()
		giantExec[i] = 200 + rng.Float64()*2
	}

	mkSession := func(base, bump float64) timeseries.Series {
		s := make(timeseries.Series, n)
		for i := range s {
			s[i] = base + 0.1*rng.Float64()
			if i >= as && i < ae {
				s[i] += bump
			}
		}
		return s
	}
	rsqlSess := mkSession(0, 40)   // the poor SQL piles up hardest
	victimSess := mkSession(2, 15) // slowed by CPU contention
	otherSess := mkSession(1, 5)
	giantSess := mkSession(15, 0)

	inst := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		inst[i] = rsqlSess[i] + victimSess[i] + otherSess[i] + giantSess[i]
	}

	templates := []Template{
		{ID: "RSQL", Exec: rsqlExec, Session: rsqlSess, Impact: 2.6},
		{ID: "VICTIM", Exec: victimExec, Session: victimSess, Impact: 1.8},
		{ID: "OTHER", Exec: otherExec, Session: otherSess, Impact: 0.9},
		{ID: "GIANT", Exec: giantExec, Session: giantSess, Impact: 0.1},
	}
	history := []HistoryWindow{
		{DaysAgo: 1, Counts: map[sqltemplate.ID]timeseries.Series{
			// RSQL absent (new statement); victims had their usual shapes.
			"VICTIM": victimExec.Clone(),
			"OTHER":  otherExec.Clone(),
			"GIANT":  giantExec.Clone(),
		}},
	}
	return Input{
		Templates:   templates,
		InstSession: inst,
		AS:          as,
		AE:          ae,
		History:     history,
	}
}

func TestIdentifyPinpointsRSQL(t *testing.T) {
	in := buildPoorSQLCase(rand.New(rand.NewSource(1)))
	res := Identify(in, DefaultOptions())
	if len(res.Ranked) == 0 {
		t.Fatal("no candidates returned")
	}
	if res.Ranked[0].ID != "RSQL" {
		t.Errorf("top candidate = %s, want RSQL; ranking = %+v", res.Ranked[0].ID, res.Ranked)
	}
	if !res.Ranked[0].Verified {
		t.Error("RSQL should pass history verification")
	}
}

func TestHistoryVerificationFiltersVictims(t *testing.T) {
	// Victims with flat #execution must never outrank the verified
	// R-SQL, even when their clusters are selected.
	in := buildPoorSQLCase(rand.New(rand.NewSource(2)))
	res := Identify(in, DefaultOptions())
	for _, c := range res.Ranked {
		if c.ID != "RSQL" && c.Verified {
			t.Errorf("flat-traffic template %s passed verification", c.ID)
		}
	}
}

func TestHistoryVerificationFiltersRecurring(t *testing.T) {
	in := buildPoorSQLCase(rand.New(rand.NewSource(3)))
	// Make RSQL's appearance an everyday occurrence: same step in history.
	in.History[0].Counts["RSQL"] = in.Templates[0].Exec.Clone()
	res := Identify(in, DefaultOptions())
	for _, c := range res.Ranked {
		if c.ID == "RSQL" && c.Verified {
			t.Error("recurring step should fail history verification")
		}
	}
}

func TestWithoutHistoryVerification(t *testing.T) {
	in := buildPoorSQLCase(rand.New(rand.NewSource(4)))
	in.History[0].Counts["RSQL"] = in.Templates[0].Exec.Clone()
	opt := DefaultOptions()
	opt.UseHistoryVerification = false
	res := Identify(in, opt)
	found := false
	for _, c := range res.Ranked {
		if c.ID == "RSQL" {
			found = true
		}
	}
	if !found {
		t.Errorf("RSQL missing from unverified ranking: %+v", res.Ranked)
	}
}

func TestClusteringGroupsCoSpikingBusiness(t *testing.T) {
	// A business (QPS) spike lifts every template of one microservice DAG
	// simultaneously (Fig. 4): the shared anomaly spike dominates their
	// variance, so they must land in one cluster, separate from an
	// unrelated stable business.
	rng := rand.New(rand.NewSource(5))
	n, as, ae := 2400, 1800, 2100
	mkDAG := func(base, lift float64) timeseries.Series {
		s := make(timeseries.Series, n)
		for i := 0; i < n; i++ {
			s[i] = base + rng.Float64()
			if i >= as && i < ae {
				s[i] += lift
			}
		}
		return s
	}
	t1 := Template{ID: "API_A1", Exec: mkDAG(10, 80), Impact: 2.0, Session: make(timeseries.Series, n)}
	t2 := Template{ID: "API_A2", Exec: mkDAG(25, 200), Impact: 1.5, Session: make(timeseries.Series, n)}
	t3 := Template{ID: "API_A3", Exec: mkDAG(4, 30), Impact: 1.2, Session: make(timeseries.Series, n)}
	stable := Template{ID: "STABLE", Exec: mkDAG(50, 0), Impact: 0.1, Session: make(timeseries.Series, n)}

	in := Input{
		Templates:   []Template{t1, t2, t3, stable},
		InstSession: make(timeseries.Series, n),
		AS:          as, AE: ae,
	}
	res := Identify(in, DefaultOptions())
	top := res.Clusters[0]
	if len(top) != 3 {
		t.Fatalf("top cluster = %v, want the three DAG templates", top)
	}
	members := map[sqltemplate.ID]bool{}
	for _, id := range top {
		members[id] = true
	}
	if !members["API_A1"] || !members["API_A2"] || !members["API_A3"] {
		t.Errorf("top cluster = %v", top)
	}
	if members["STABLE"] {
		t.Errorf("stable business joined the spike cluster: %v", top)
	}
}

func TestCumulativeThresholdSelectsMultipleClusters(t *testing.T) {
	// Two independent businesses contribute to the anomaly in disjoint
	// sub-windows; the top-1 cluster explains only half the session
	// curve, so the cumulative threshold must take both.
	rng := rand.New(rand.NewSource(6))
	n := 1200
	as, ae := 600, 900
	mk := func(from, to int, bump float64) Template {
		exec := make(timeseries.Series, n)
		sess := make(timeseries.Series, n)
		for i := 0; i < n; i++ {
			exec[i] = 5 + rng.Float64()
			sess[i] = 1 + 0.05*rng.Float64()
			if i >= from && i < to {
				exec[i] += 60
				sess[i] += bump
			}
		}
		return Template{Exec: exec, Session: sess}
	}
	a := mk(600, 750, 20)
	a.ID, a.Impact = "BIZ_A", 2.0
	b := mk(750, 900, 18)
	b.ID, b.Impact = "BIZ_B", 1.8
	inst := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		inst[i] = a.Session[i] + b.Session[i]
	}
	in := Input{Templates: []Template{a, b}, InstSession: inst, AS: as, AE: ae}

	res := Identify(in, DefaultOptions())
	if len(res.Clusters) < 2 {
		t.Fatalf("expected ≥ 2 clusters, got %d", len(res.Clusters))
	}
	if res.Selected < 2 {
		t.Errorf("selected = %d clusters (cum corr %.3f), want ≥ 2", res.Selected, res.CumulativeCorr)
	}
	ids := map[sqltemplate.ID]bool{}
	for _, c := range res.Ranked {
		ids[c.ID] = true
	}
	if !ids["BIZ_A"] || !ids["BIZ_B"] {
		t.Errorf("ranking = %+v, want both businesses", res.Ranked)
	}

	opt := DefaultOptions()
	opt.UseCumulativeThreshold = false
	res1 := Identify(in, opt)
	if res1.Selected != 1 {
		t.Errorf("w/o cumulative threshold selected = %d, want 1", res1.Selected)
	}
}

func TestMetricTempNodesDensifyGraph(t *testing.T) {
	// Two templates correlate with a metric (ρ > τ each) but barely with
	// each other directly below τ; the temp node must bridge them into
	// one cluster, then be filtered from the output.
	n := 600
	base := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		base[i] = float64(i % 120)
	}
	noisy := func(eps float64, seed int64) timeseries.Series {
		rng := rand.New(rand.NewSource(seed))
		s := make(timeseries.Series, n)
		for i := range s {
			s[i] = base[i] + eps*rng.NormFloat64()*30
		}
		return s
	}
	a := Template{ID: "A", Exec: noisy(1.0, 1), Session: make(timeseries.Series, n), Impact: 1}
	b := Template{ID: "B", Exec: noisy(1.0, 2), Session: make(timeseries.Series, n), Impact: 0.5}

	withMetric := Input{
		Templates:   []Template{a, b},
		Metrics:     map[string]timeseries.Series{"cpu": base.Clone()},
		InstSession: make(timeseries.Series, n),
		AS:          100, AE: 200,
	}
	corrAB, _ := timeseries.Corr(a.Exec.Downsample(60), b.Exec.Downsample(60))
	corrAM, _ := timeseries.Corr(a.Exec.Downsample(60), base.Downsample(60))
	if !(corrAB <= DefaultTau && corrAM > DefaultTau) {
		t.Skipf("noise did not produce the bridge condition: AB=%.3f AM=%.3f", corrAB, corrAM)
	}
	res := Identify(withMetric, DefaultOptions())
	if len(res.Clusters[0]) != 2 {
		t.Errorf("bridged cluster = %v, want A and B", res.Clusters[0])
	}
	for _, cl := range res.Clusters {
		for _, id := range cl {
			if id == "cpu" {
				t.Error("metric temp node leaked into clusters")
			}
		}
	}
}

func TestIdentifyEmptyInput(t *testing.T) {
	res := Identify(Input{}, DefaultOptions())
	if len(res.Ranked) != 0 || len(res.Clusters) != 0 {
		t.Errorf("empty input result = %+v", res)
	}
}

func TestIdentifySingleTemplate(t *testing.T) {
	n := 600
	exec := make(timeseries.Series, n)
	sess := make(timeseries.Series, n)
	for i := range exec {
		exec[i] = 1 + float64(i%5)
		if i >= 300 && i < 350 {
			exec[i] += 50
			sess[i] = 20
		}
	}
	inst := sess.Clone()
	in := Input{
		Templates:   []Template{{ID: "ONLY", Exec: exec, Session: sess, Impact: 1}},
		InstSession: inst,
		AS:          300, AE: 350,
	}
	res := Identify(in, DefaultOptions())
	if len(res.Ranked) != 1 || res.Ranked[0].ID != "ONLY" {
		t.Errorf("single-template result = %+v", res.Ranked)
	}
}

func TestVerifyFallbackWhenAllFiltered(t *testing.T) {
	// No template has an anomaly-window spike → verification would drop
	// everything; the module must fall back to the unverified pool.
	n := 600
	flatExec := make(timeseries.Series, n)
	sess := make(timeseries.Series, n)
	for i := range flatExec {
		flatExec[i] = 5 + float64(i%2)
		sess[i] = 1
	}
	in := Input{
		Templates:   []Template{{ID: "A", Exec: flatExec, Session: sess, Impact: 1}},
		InstSession: sess.Clone(),
		AS:          300, AE: 350,
	}
	res := Identify(in, DefaultOptions())
	if len(res.Ranked) != 1 {
		t.Fatalf("fallback ranking = %+v", res.Ranked)
	}
	if res.Ranked[0].Verified {
		t.Error("fallback candidate must not be marked verified")
	}
}

func TestUnionFindLaws(t *testing.T) {
	f := func(pairs []uint8) bool {
		const n = 16
		uf := newUnionFind(n)
		type pair struct{ a, b int }
		var ps []pair
		for i := 0; i+1 < len(pairs); i += 2 {
			p := pair{int(pairs[i]) % n, int(pairs[i+1]) % n}
			ps = append(ps, p)
			uf.union(p.a, p.b)
		}
		// Union-consistency: every merged pair shares a root.
		for _, p := range ps {
			if uf.find(p.a) != uf.find(p.b) {
				return false
			}
		}
		// Equivalence classes must match a reference partition.
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		var refFind func(x int) int
		refFind = func(x int) int {
			if ref[x] != x {
				ref[x] = refFind(ref[x])
			}
			return ref[x]
		}
		for _, p := range ps {
			ra, rb := refFind(p.a), refFind(p.b)
			if ra != rb {
				ref[ra] = rb
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (uf.find(i) == uf.find(j)) != (refFind(i) == refFind(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStandardizeDegenerate(t *testing.T) {
	if standardize(timeseries.Series{5, 5, 5, 5}) != nil {
		t.Error("constant series should standardize to nil")
	}
	v := standardize(timeseries.Series{1, 2, 3})
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm < 0.999 || norm > 1.001 {
		t.Errorf("standardized norm = %v, want 1", norm)
	}
}
