package rootcause

// Workers-equivalence and refactor-equivalence properties for the
// parallelized clustering stage: any worker count must yield the exact
// Result that the sequential path yields, and the precomputed-standardize
// dot-product scan must produce the same connected components as the
// naive per-pair path it replaced.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// randomInput builds a randomized clustering input: a handful of latent
// "business" signals, each shared (with noise) by a random group of
// templates, so the pair scan sees both strongly correlated groups and
// independent walkers — plus occasional constant series (nil vectors) and
// metric temp nodes.
func randomInput(rng *rand.Rand) Input {
	n := 300 + rng.Intn(600) // seconds; downsampled to 5..15 points
	nT := 1 + rng.Intn(40)
	nSignals := 1 + rng.Intn(4)
	signals := make([]timeseries.Series, nSignals)
	for s := range signals {
		sig := make(timeseries.Series, n)
		v := rng.Float64() * 10
		for i := range sig {
			v += rng.NormFloat64()
			sig[i] = v
		}
		signals[s] = sig
	}

	as := n / 4
	ae := n / 2
	inst := make(timeseries.Series, n)
	templates := make([]Template, nT)
	for t := range templates {
		exec := make(timeseries.Series, n)
		sess := make(timeseries.Series, n)
		switch rng.Intn(5) {
		case 0: // constant: standardizes to nil
			for i := range exec {
				exec[i] = 7
			}
		default:
			sig := signals[rng.Intn(nSignals)]
			noise := 0.1 + rng.Float64()*3
			for i := range exec {
				exec[i] = sig[i] + rng.NormFloat64()*noise
			}
		}
		for i := range sess {
			sess[i] = rng.Float64() * 5
			inst[i] += sess[i]
		}
		templates[t] = Template{
			ID:      sqltemplate.ID(rune('A'+t%26)) + sqltemplate.ID(rune('A'+t/26)),
			Exec:    exec,
			Session: sess,
			Impact:  rng.NormFloat64(),
		}
	}

	in := Input{Templates: templates, InstSession: inst, AS: as, AE: ae}
	if rng.Intn(2) == 0 {
		in.Metrics = map[string]timeseries.Series{
			"cpu": signals[0].Clone(),
			"io":  signals[nSignals-1].Clone(),
		}
	}
	if rng.Intn(2) == 0 {
		counts := make(map[sqltemplate.ID]timeseries.Series)
		for _, tpl := range templates {
			if rng.Intn(3) > 0 {
				counts[tpl.ID] = tpl.Exec.Clone()
			}
		}
		in.History = []HistoryWindow{{DaysAgo: 1, Counts: counts}}
	}
	return in
}

// stripDurations zeroes the wall-clock fields so Results can be compared
// structurally.
func stripDurations(r *Result) *Result {
	r.ClusterDur = 0
	r.VerifyDur = 0
	return r
}

// TestIdentifyWorkersEquivalence is the module-level determinism property:
// for random inputs, Identify with any worker count returns exactly the
// sequential result — cluster partition, selection, and final ranking.
func TestIdentifyWorkersEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInput(rand.New(rand.NewSource(seed)))
		opt := DefaultOptions()
		opt.Workers = 1
		seq := stripDurations(Identify(in, opt))
		for _, w := range []int{2, 3, 8} {
			opt.Workers = w
			par := stripDurations(Identify(in, opt))
			if !reflect.DeepEqual(seq, par) {
				t.Logf("seed %d: workers=%d diverged\nseq: %+v\npar: %+v", seed, w, seq, par)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// clusterPairwiseRef is the pre-optimization reference: standardize both
// series of every pair on the spot and take the dot product, with no
// already-connected shortcut — the O(n²) per-pair path the precomputed
// scan replaced. Components must match bit-for-bit (standardize is a pure
// function, so per-pair recomputation yields the same vectors).
func clusterPairwiseRef(in Input, tau float64) [][]int {
	nT := len(in.Templates)
	series := make([]timeseries.Series, 0, nT+len(in.Metrics))
	for _, tpl := range in.Templates {
		series = append(series, tpl.Exec)
	}
	for _, name := range sortedMetricNames(in.Metrics) {
		series = append(series, in.Metrics[name])
	}
	uf := newUnionFind(len(series))
	for i := range series {
		for j := i + 1; j < len(series); j++ {
			a := standardize(series[i].Downsample(clusterGranularitySec))
			b := standardize(series[j].Downsample(clusterGranularitySec))
			if a == nil || b == nil {
				continue
			}
			if dot(a, b) > tau {
				uf.union(i, j)
			}
		}
	}
	var comps [][]int
	seen := make(map[int]int)
	for i := 0; i < nT; i++ {
		root := uf.find(i)
		ci, ok := seen[root]
		if !ok {
			ci = len(comps)
			seen[root] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], i)
	}
	return comps
}

func sortedMetricNames(metrics map[string]timeseries.Series) []string {
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ { // tiny insertion sort, test-only
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// TestClusterTemplatesMatchesPairwiseReference checks that the
// precomputed-standardize scan — sequential and sharded alike — produces
// the same connected components as the per-pair reference.
func TestClusterTemplatesMatchesPairwiseReference(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInput(rand.New(rand.NewSource(seed)))
		want := clusterPairwiseRef(in, DefaultTau)
		for _, w := range []int{1, 4} {
			got := clusterTemplates(in, DefaultTau, w)
			members := make([][]int, len(got))
			for i, c := range got {
				members[i] = c.members
			}
			if !reflect.DeepEqual(members, want) {
				t.Logf("seed %d workers=%d: components %v, want %v", seed, w, members, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestClusterTemplatesManyRowsCrossesBlocks forces the sharded scan past
// one pairScanBlock of rows so the block/round logic is exercised, and
// checks it still matches the sequential path.
func TestClusterTemplatesManyRowsCrossesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 300
	sig := make(timeseries.Series, n)
	for i := range sig {
		sig[i] = float64(i%60) + rng.NormFloat64()
	}
	templates := make([]Template, pairScanBlock+40)
	for t := range templates {
		exec := make(timeseries.Series, n)
		for i := range exec {
			exec[i] = sig[i] + rng.NormFloat64()*float64(1+t%7)
		}
		templates[t] = Template{ID: sqltemplate.ID(rune(t)), Exec: exec}
	}
	in := Input{Templates: templates}
	seq := clusterTemplates(in, DefaultTau, 1)
	par := clusterTemplates(in, DefaultTau, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sharded scan diverged across %d rows: %d vs %d clusters", len(templates), len(seq), len(par))
	}
}
