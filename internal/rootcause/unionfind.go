package rootcause

// unionFind is a classic disjoint-set forest with path halving and union by
// rank, used to compute connected components of the template correlation
// graph.
type unionFind struct {
	parent []int
	rank   []byte
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]byte, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
