// Package rootcause implements PinSQL's Root Cause SQL Identification
// Module (§VI). Starting from the H-SQL impact ranking it:
//
//  1. clusters SQL templates by the trend of their #execution series
//     (pairwise Pearson > τ → edge; connected components → business
//     clusters, exploiting the microservice call-DAG correlation of
//     Fig. 4), with performance metrics added as temporary nodes to
//     densify the graph;
//  2. ranks clusters by their best member's impact score
//     (impact(c) = max_{Q∈c} impact(Q));
//  3. selects clusters with the cumulative threshold: keep adding clusters
//     (up to K_c) until the summed session of selected templates
//     correlates with the instance session at ≥ τ_c — so anomalies driven
//     by multiple independent businesses keep all their R-SQLs;
//  4. verifies candidates against history: a true R-SQL's #execution
//     spikes in the anomaly window (Tukey's rule) and did NOT spike in the
//     same window 1/3/7 days ago;
//  5. ranks the survivors by corr(#execution, session).
package rootcause

import (
	"math"
	"sort"
	"time"

	"pinsql/internal/parallel"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// Defaults from §VIII-A.
const (
	DefaultTau    = 0.8  // clustering correlation threshold τ
	DefaultTauC   = 0.95 // cumulative threshold τ_c
	DefaultKc     = 5    // max cluster iterations K_c
	DefaultTukeyK = 3.0  // Tukey multiplier for history verification
	// clusterGranularitySec is the downsampling factor applied to
	// #execution series before the O(N²) pairwise correlation, keeping
	// clustering tractable for thousands of templates (the paper
	// aggregates at 1-minute granularity for the same reason).
	clusterGranularitySec = 60
)

// Options tunes the module; the Use* switches exist for the Fig. 6
// ablations.
type Options struct {
	Tau    float64
	TauC   float64
	Kc     int
	TukeyK float64

	// UseCumulativeThreshold=false keeps only the top-1 cluster
	// ("PinSQL w/o Cumulative Threshold").
	UseCumulativeThreshold bool
	// UseHistoryVerification=false skips step 4
	// ("PinSQL w/o History Trend Verification").
	UseHistoryVerification bool

	// Workers bounds the fan-out of the clustering, verification and
	// ranking loops: 1 is the sequential path, <= 0 means GOMAXPROCS.
	// The output is identical for every value (see clusterTemplates).
	Workers int
}

// DefaultOptions returns the full PinSQL configuration.
func DefaultOptions() Options {
	return Options{
		Tau:                    DefaultTau,
		TauC:                   DefaultTauC,
		Kc:                     DefaultKc,
		TukeyK:                 DefaultTukeyK,
		UseCumulativeThreshold: true,
		UseHistoryVerification: true,
	}
}

// Template is one SQL template's input to the module.
type Template struct {
	ID      sqltemplate.ID
	Exec    timeseries.Series // #execution per second over [ts, te)
	Session timeseries.Series // estimated individual active session
	Impact  float64           // H-SQL impact score (or a baseline's score)
}

// HistoryWindow carries #execution series of the same-length window Nd days
// ago. Templates absent from a window are treated as new SQLs.
type HistoryWindow struct {
	DaysAgo int
	Counts  map[sqltemplate.ID]timeseries.Series
}

// Input bundles everything the module needs for one anomaly case.
type Input struct {
	Templates   []Template
	Metrics     map[string]timeseries.Series // temporary clustering nodes
	InstSession timeseries.Series            // instance active session over [ts, te)
	AS, AE      int                          // anomaly window [as, ae) in seconds
	History     []HistoryWindow
}

// Candidate is one ranked R-SQL.
type Candidate struct {
	ID       sqltemplate.ID
	Score    float64 // corr(#execution, session)
	Cluster  int     // index into Result.Clusters
	Verified bool    // passed history trend verification
}

// Result is the module's full output, exposing intermediate structure for
// diagnostics and the experiment harness.
type Result struct {
	// Clusters lists template IDs per connected component, ordered by
	// descending cluster impact.
	Clusters [][]sqltemplate.ID
	// ClusterImpact[i] is max impact of Clusters[i].
	ClusterImpact []float64
	// Selected is the number of leading clusters chosen by the
	// cumulative threshold.
	Selected int
	// CumulativeCorr is corr(Σ selected sessions, instance session) at
	// the point the iteration stopped.
	CumulativeCorr float64
	// Ranked is the final R-SQL ranking, best first.
	Ranked []Candidate

	// ClusterDur and VerifyDur split the module's run time into the
	// clustering+filtering and history-verification+ranking stages, for
	// the §VIII-B timing breakdown.
	ClusterDur time.Duration
	VerifyDur  time.Duration
}

// Identify runs the full module.
func Identify(in Input, opt Options) *Result {
	res := &Result{}
	if len(in.Templates) == 0 {
		return res
	}
	stageStart := time.Now()

	clusters := clusterTemplates(in, opt.Tau, opt.Workers)
	orderClustersByImpact(clusters, in.Templates)
	for _, c := range clusters {
		ids := make([]sqltemplate.ID, len(c.members))
		for i, m := range c.members {
			ids[i] = in.Templates[m].ID
		}
		res.Clusters = append(res.Clusters, ids)
		res.ClusterImpact = append(res.ClusterImpact, c.impact)
	}

	res.Selected, res.CumulativeCorr = selectClusters(clusters, in, opt)

	// Candidate pool: members of the selected clusters.
	var pool []int
	for _, c := range clusters[:res.Selected] {
		pool = append(pool, c.members...)
	}
	res.ClusterDur = time.Since(stageStart)
	stageStart = time.Now()

	verified := make(map[int]bool, len(pool))
	if opt.UseHistoryVerification {
		kept := verifyAll(in, pool, opt, verified)
		if len(kept) == 0 {
			// Every selected candidate failed verification: the chosen
			// clusters held only affected statements (victims), not the
			// cause. Widen the search to every cluster — the R-SQL's own
			// cluster may have ranked below the victims' when the
			// business bridge was too weak to join them.
			all := make([]int, len(in.Templates))
			for idx := range all {
				all[idx] = idx
			}
			kept = verifyAll(in, all, opt, verified)
		}
		// A still-empty pool would leave the DBA empty-handed; fall back
		// to the unverified selection (rare, mostly when the anomaly
		// window clips the trace boundary).
		if len(kept) > 0 {
			pool = kept
		}
	}

	clusterOf := make(map[int]int)
	for ci, c := range clusters {
		for _, m := range c.members {
			clusterOf[m] = ci
		}
	}
	// Final ranking scores, fanned out per candidate; Ranked is assembled
	// sequentially in pool order so the stable sort sees the same input
	// for every worker count.
	scores := make([]float64, len(pool))
	parallel.ForEach(opt.Workers, len(pool), func(i int) {
		scores[i], _ = timeseries.Corr(in.Templates[pool[i]].Exec, in.InstSession)
	})
	for i, idx := range pool {
		res.Ranked = append(res.Ranked, Candidate{
			ID:       in.Templates[idx].ID,
			Score:    scores[i],
			Cluster:  clusterOf[idx],
			Verified: verified[idx],
		})
	}
	sort.SliceStable(res.Ranked, func(i, j int) bool { return res.Ranked[i].Score > res.Ranked[j].Score })
	res.VerifyDur = time.Since(stageStart)
	return res
}

// cluster is an internal connected component.
type cluster struct {
	members []int // template indexes
	impact  float64
}

// verifyAll runs history verification over the candidate indexes, fanning
// the Tukey checks across workers into an index-ordered verdict slice, and
// returns the surviving indexes in input order (marking them in verified).
func verifyAll(in Input, candidates []int, opt Options, verified map[int]bool) []int {
	verdicts := make([]bool, len(candidates))
	parallel.ForEach(opt.Workers, len(candidates), func(i int) {
		verdicts[i] = verifyHistory(in, candidates[i], opt.TukeyK)
	})
	var kept []int
	for i, ok := range verdicts {
		if ok {
			verified[candidates[i]] = true
			kept = append(kept, candidates[i])
		}
	}
	return kept
}

// pairScanBlock is the number of graph rows whose τ-edges are
// materialized per parallel round of clusterTemplates. Between rounds the
// union-find absorbs the round's edges, so the next round's root snapshot
// can skip already-connected pairs (the same shortcut the sequential scan
// takes pair-by-pair); within a round edge memory is bounded by
// pairScanBlock·n instead of the full n²/2 triangle.
const pairScanBlock = 256

// clusterTemplates builds the correlation graph over templates plus metric
// temp nodes and returns its connected components (templates only).
//
// The pairwise-Pearson scan over the upper triangle is the O(n²) heart of
// the Fig. 7 scalability curve. With workers == 1 it runs the classic
// sequential loop; otherwise rows are sharded across the pool in blocks,
// every worker appending τ-edges to the row it owns, and the union-find
// consumes the rows strictly in (i, j) order afterwards. Skipped
// already-connected pairs never change connected components, and
// component enumeration orders clusters by smallest member index, so the
// resulting partition — and every downstream ranking — is identical for
// every worker count.
func clusterTemplates(in Input, tau float64, workers int) []cluster {
	nT := len(in.Templates)
	// Standardize each node's downsampled #execution (or metric) series
	// once up front: corr(a, b) then reduces to a dot product per pair
	// instead of a per-pair re-standardization.
	metricNames := make([]string, 0, len(in.Metrics))
	for name := range in.Metrics {
		metricNames = append(metricNames, name)
	}
	sort.Strings(metricNames)
	n := nT + len(metricNames)
	vecs := make([][]float64, n)
	parallel.ForEach(workers, n, func(i int) {
		if i < nT {
			vecs[i] = standardize(in.Templates[i].Exec.Downsample(clusterGranularitySec))
		} else {
			vecs[i] = standardize(in.Metrics[metricNames[i-nT]].Downsample(clusterGranularitySec))
		}
	})

	uf := newUnionFind(n)
	if parallel.Resolve(workers) <= 1 {
		for i := 0; i < n; i++ {
			if vecs[i] == nil {
				continue
			}
			for j := i + 1; j < n; j++ {
				if vecs[j] == nil || uf.find(i) == uf.find(j) {
					continue
				}
				if dot(vecs[i], vecs[j]) > tau {
					uf.union(i, j)
				}
			}
		}
	} else {
		// roots is a read-only snapshot of the union-find taken between
		// rounds; workers consult it instead of uf.find, whose path
		// halving mutates shared state.
		roots := make([]int, n)
		edges := make([][]int32, pairScanBlock)
		for blockLo := 0; blockLo < n; blockLo += pairScanBlock {
			blockHi := blockLo + pairScanBlock
			if blockHi > n {
				blockHi = n
			}
			for i := 0; i < n; i++ {
				roots[i] = uf.find(i)
			}
			parallel.ForEach(workers, blockHi-blockLo, func(r int) {
				i := blockLo + r
				edges[r] = edges[r][:0]
				if vecs[i] == nil {
					return
				}
				for j := i + 1; j < n; j++ {
					if vecs[j] == nil || roots[i] == roots[j] {
						continue
					}
					if dot(vecs[i], vecs[j]) > tau {
						edges[r] = append(edges[r], int32(j))
					}
				}
			})
			for r := 0; r < blockHi-blockLo; r++ {
				for _, j := range edges[r] {
					uf.union(blockLo+r, int(j))
				}
			}
		}
	}

	// Collect components; only template nodes (index < nT) become cluster
	// members — the metric temp nodes are filtered here, as in the paper.
	var clusters []cluster
	seen := make(map[int]int)
	for i := 0; i < nT; i++ {
		root := uf.find(i)
		ci, ok := seen[root]
		if !ok {
			ci = len(clusters)
			seen[root] = ci
			clusters = append(clusters, cluster{})
		}
		clusters[ci].members = append(clusters[ci].members, i)
	}
	return clusters
}

// orderClustersByImpact computes each cluster's impact and sorts descending.
func orderClustersByImpact(clusters []cluster, templates []Template) {
	for i := range clusters {
		best := templates[clusters[i].members[0]].Impact
		for _, m := range clusters[i].members[1:] {
			if templates[m].Impact > best {
				best = templates[m].Impact
			}
		}
		clusters[i].impact = best
	}
	sort.SliceStable(clusters, func(i, j int) bool { return clusters[i].impact > clusters[j].impact })
}

// selectClusters applies the cumulative threshold (§VI): iterate clusters
// in impact order, summing member sessions, until the sum correlates with
// the instance session at ≥ τ_c or K_c clusters are taken.
func selectClusters(clusters []cluster, in Input, opt Options) (selected int, cumCorr float64) {
	if len(clusters) == 0 {
		return 0, 0
	}
	if !opt.UseCumulativeThreshold {
		return 1, 0
	}
	kc := opt.Kc
	if kc <= 0 {
		kc = DefaultKc
	}
	if kc > len(clusters) {
		kc = len(clusters)
	}
	sum := make(timeseries.Series, len(in.InstSession))
	for i := 0; i < kc; i++ {
		for _, m := range clusters[i].members {
			s := in.Templates[m].Session
			for t := 0; t < len(sum) && t < len(s); t++ {
				sum[t] += s[t]
			}
		}
		cumCorr, _ = timeseries.Corr(sum, in.InstSession)
		if cumCorr >= opt.TauC {
			return i + 1, cumCorr
		}
	}
	return kc, cumCorr
}

// verifyHistory applies the paper's two rules to one template: (i) the
// #execution abruptly increased in the anomaly window now, and (ii) it did
// not in the corresponding window of any history trace. Templates missing
// from a history window are new SQLs and pass that window.
//
// "Abruptly increased" is judged with Tukey fences computed from the
// pre-anomaly baseline [0, as): using the whole trace would let a
// sustained plateau inflate its own fences and hide itself (a brand-new
// statement elevated for a third of the window would otherwise never be an
// outlier of its own distribution).
func verifyHistory(in Input, idx int, tukeyK float64) bool {
	if tukeyK <= 0 {
		tukeyK = DefaultTukeyK
	}
	t := in.Templates[idx]
	if !windowAbruptlyUp(t.Exec, in.AS, in.AE, tukeyK) {
		return false
	}
	for _, hw := range in.History {
		hist, ok := hw.Counts[t.ID]
		if !ok {
			continue // new SQL: nothing to compare against
		}
		if windowAbruptlyUp(hist, in.AS, in.AE, tukeyK) {
			return false
		}
	}
	return true
}

// windowAbruptlyUp reports whether the window mean of s exceeds the upper
// Tukey fence of the pre-window baseline.
func windowAbruptlyUp(s timeseries.Series, as, ae int, k float64) bool {
	base := s.Slice(0, as)
	if len(base) < 10 {
		base = s // degenerate window placement: whole-series fences
	}
	_, hi := base.TukeyBounds(k)
	win := s.Slice(as, ae)
	return len(win) > 0 && win.Mean() > hi
}

// standardize returns s centered and scaled to unit norm, or nil for a
// (near-)constant series, which cannot carry trend information.
func standardize(s timeseries.Series) []float64 {
	m := s.Mean()
	var norm float64
	out := make([]float64, len(s))
	for i, v := range s {
		d := v - m
		out[i] = d
		norm += d * d
	}
	if norm <= 1e-18*float64(len(s))*(m*m+1) {
		return nil
	}
	inv := 1 / math.Sqrt(norm)
	for i := range out {
		out[i] *= inv
	}
	return out
}

func dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var acc float64
	for i := 0; i < n; i++ {
		acc += a[i] * b[i]
	}
	return acc
}
