package session

import (
	"pinsql/internal/parallel"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// FrameEstimate is a session estimation whose per-template axis is keyed by
// frame position (0..T-1) instead of template ID — the index-first
// counterpart of Estimate. PerTemplate has one series per frame template,
// including all-zero series for templates with no logged observations.
type FrameEstimate struct {
	PerTemplate []timeseries.Series
	Total       timeseries.Series
	SelBucket   []int
}

// Quality reports the two Table III metrics — Pearson correlation and MSE —
// between the estimated total and the observed instance active session.
func (e *FrameEstimate) Quality(observed timeseries.Series) (corr, mse float64) {
	n := len(e.Total)
	if len(observed) < n {
		n = len(observed)
	}
	corr, _ = timeseries.Corr(e.Total[:n], observed[:n])
	mse, _ = timeseries.MSE(e.Total[:n], observed[:n])
	return corr, mse
}

// EstimateFrameByRT is EstimateByRT over a window frame: total response
// time per arrival second as the session proxy.
func EstimateFrameByRT(f *window.Frame) *FrameEstimate {
	est := newFrameEstimate(f)
	for pos := range f.Templates {
		s := est.PerTemplate[pos]
		arr, resp := f.Obs(pos)
		for i, a := range arr {
			sec := int((a - f.StartMs) / 1000)
			if a < f.StartMs || sec >= f.Seconds {
				continue
			}
			s[sec] += resp[i] / 1000
		}
	}
	est.sumTotal(f)
	return est
}

// EstimateFrameNoBuckets is EstimateNoBuckets over a window frame: the
// expected active session over each whole second.
func EstimateFrameNoBuckets(f *window.Frame) *FrameEstimate {
	est := newFrameEstimate(f)
	for pos := range f.Templates {
		accumulateFrame(est.PerTemplate[pos], f, pos, func(sec int) (float64, float64) {
			lo := float64(f.StartMs + int64(sec)*1000)
			return lo, lo + 1000
		})
	}
	est.sumTotal(f)
	return est
}

// EstimateFrameBuckets is the paper's bucketed estimator (§IV-C) over a
// window frame, with the pipeline's Workers knob. It mirrors
// EstimateBucketsWorkers stage for stage — the per-second candidate lists
// are filled in ascending-template-ID (ByID) order, bucket totals and
// selection are sharded by second, and per-template accumulation is sharded
// by template — so its output is bit-identical to the legacy map-keyed
// estimator for every worker count.
func EstimateFrameBuckets(f *window.Frame, observed timeseries.Series, k, workers int) *FrameEstimate {
	if k <= 0 {
		k = DefaultBuckets
	}
	est := newFrameEstimate(f)
	seconds := f.Seconds
	if seconds <= 0 {
		return est
	}
	bucketLen := 1000.0 / float64(k)

	// Per-second index of the observations whose active interval touches
	// each second, in ByID order so every second's accumulation order is
	// identical to the legacy sorted-map walk. Counted first, then filled
	// into one flat arena — no per-second append growth.
	counts := make([]int32, seconds+1)
	forEachSpan(f, func(obsIdx int32, first, last int) {
		for sec := first; sec <= last; sec++ {
			counts[sec+1]++
		}
	})
	for sec := 1; sec <= seconds; sec++ {
		counts[sec] += counts[sec-1]
	}
	perSecOff := counts
	arena := make([]int32, perSecOff[seconds])
	next := make([]int32, seconds)
	forEachSpan(f, func(obsIdx int32, first, last int) {
		for sec := first; sec <= last; sec++ {
			arena[perSecOff[sec]+next[sec]] = obsIdx
			next[sec]++
		}
	})

	// Pass 1+2 fused and sharded by second: expected total session per
	// bucket, then selection against the observed SHOW STATUS value.
	parallel.Blocks(workers, seconds, func(lo, hi int) {
		totals := make([]float64, k)
		for sec := lo; sec < hi; sec++ {
			for b := range totals {
				totals[b] = 0
			}
			base := float64(f.StartMs + int64(sec)*1000)
			for _, oi := range arena[perSecOff[sec]:perSecOff[sec+1]] {
				q := Obs{ArrivalMs: f.Arrival[oi], ResponseMs: f.Response[oi]}
				for b := 0; b < k; b++ {
					blo := base + float64(b)*bucketLen
					if ov := overlapMs(q, blo, blo+bucketLen); ov > 0 {
						totals[b] += ov / bucketLen
					}
				}
			}
			var target float64
			if sec < len(observed) {
				target = observed[sec]
			}
			best, bestDiff := 0, abs(totals[0]-target)
			for b := 1; b < k; b++ {
				if d := abs(totals[b] - target); d < bestDiff {
					best, bestDiff = b, d
				}
			}
			est.SelBucket[sec] = best
		}
	})

	// Pass 3: per-template expectation inside the selected bucket, sharded
	// by template — each worker writes only the series it owns.
	parallel.ForEach(workers, len(f.Templates), func(pos int) {
		accumulateFrame(est.PerTemplate[pos], f, pos, func(sec int) (float64, float64) {
			lo := float64(f.StartMs+int64(sec)*1000) + float64(est.SelBucket[sec])*bucketLen
			return lo, lo + bucketLen
		})
	})
	est.sumTotal(f)
	return est
}

// forEachSpan walks every observation in ByID template order and reports
// its clamped window-second span (empty spans are skipped).
func forEachSpan(f *window.Frame, fn func(obsIdx int32, first, last int)) {
	for _, pos := range f.ByID {
		lo, hi := f.Off[pos], f.Off[pos+1]
		for oi := lo; oi < hi; oi++ {
			first, last := secondSpan(Obs{ArrivalMs: f.Arrival[oi], ResponseMs: f.Response[oi]}, f.StartMs, f.Seconds)
			if first > last {
				continue
			}
			fn(oi, first, last)
		}
	}
}

// accumulateFrame adds template pos's observation probabilities to s for
// every second each observation spans, using the period from periodOf.
func accumulateFrame(s timeseries.Series, f *window.Frame, pos int, periodOf func(sec int) (float64, float64)) {
	arr, resp := f.Obs(pos)
	for i, a := range arr {
		q := Obs{ArrivalMs: a, ResponseMs: resp[i]}
		first, last := secondSpan(q, f.StartMs, f.Seconds)
		for sec := first; sec <= last; sec++ {
			lo, hi := periodOf(sec)
			if ov := overlapMs(q, lo, hi); ov > 0 {
				s[sec] += ov / (hi - lo)
			}
		}
	}
}

func newFrameEstimate(f *window.Frame) *FrameEstimate {
	est := &FrameEstimate{
		PerTemplate: make([]timeseries.Series, len(f.Templates)),
		Total:       make(timeseries.Series, f.Seconds),
		SelBucket:   make([]int, f.Seconds),
	}
	for i := range est.SelBucket {
		est.SelBucket[i] = -1
	}
	for pos := range est.PerTemplate {
		est.PerTemplate[pos] = make(timeseries.Series, f.Seconds)
	}
	return est
}

// sumTotal accumulates Total in ByID order — the same ascending-template-ID
// float-addition order as Estimate.sumTotal. Templates without
// observations contribute exact zeros, so including them changes no bits.
func (e *FrameEstimate) sumTotal(f *window.Frame) {
	for _, pos := range f.ByID {
		for i, v := range e.PerTemplate[pos] {
			e.Total[i] += v
		}
	}
}
