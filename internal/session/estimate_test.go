package session

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestOverlapMs(t *testing.T) {
	q := Obs{ArrivalMs: 100, ResponseMs: 200} // active [100, 300)
	tests := []struct {
		lo, hi float64
		want   float64
	}{
		{0, 100, 0},
		{0, 150, 50},
		{150, 250, 100},
		{250, 400, 50},
		{300, 400, 0},
		{0, 1000, 200},
	}
	for _, tc := range tests {
		if got := overlapMs(q, tc.lo, tc.hi); !almostEq(got, tc.want, 1e-9) {
			t.Errorf("overlap [%v,%v) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestSecondSpan(t *testing.T) {
	tests := []struct {
		name        string
		q           Obs
		first, last int
	}{
		{"within one second", Obs{ArrivalMs: 1100, ResponseMs: 200}, 1, 1},
		{"spans three seconds", Obs{ArrivalMs: 900, ResponseMs: 1500}, 0, 2},
		{"starts before window", Obs{ArrivalMs: -500, ResponseMs: 800}, 0, 0},
		{"ends after window", Obs{ArrivalMs: 9500, ResponseMs: 5000}, 9, 9},
		{"entirely before window", Obs{ArrivalMs: -900, ResponseMs: 100}, 0, -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			first, last := secondSpan(tc.q, 0, 10)
			if first != tc.first || last != tc.last {
				t.Errorf("span = [%d,%d], want [%d,%d]", first, last, tc.first, tc.last)
			}
		})
	}
}

func TestEstimateNoBucketsSingleQuery(t *testing.T) {
	// One query active [500, 1500): expected session 0.5 in second 0 and
	// 0.5 in second 1.
	q := Queries{"A": {{ArrivalMs: 500, ResponseMs: 1000}}}
	est := EstimateNoBuckets(q, 0, 3)
	s := est.PerTemplate["A"]
	if !almostEq(s[0], 0.5, 1e-9) || !almostEq(s[1], 0.5, 1e-9) || s[2] != 0 {
		t.Errorf("per-second estimate = %v", s)
	}
	if !almostEq(est.Total.Sum(), 1.0, 1e-9) {
		t.Errorf("total mass = %v, want 1 (1000 ms of activity)", est.Total.Sum())
	}
}

func TestEstimateByRTChargesArrivalSecond(t *testing.T) {
	q := Queries{"A": {{ArrivalMs: 900, ResponseMs: 2000}}}
	est := EstimateByRT(q, 0, 3)
	s := est.PerTemplate["A"]
	// All 2 s of response time land in the arrival second — the
	// inaccuracy the paper calls out.
	if !almostEq(s[0], 2.0, 1e-9) || s[1] != 0 {
		t.Errorf("by-RT estimate = %v", s)
	}
	if est.SelBucket[0] != -1 {
		t.Error("ByRT must not select buckets")
	}
}

func TestEstimateBucketsSelectsCorrectBucket(t *testing.T) {
	// Construct a second where activity differs sharply across buckets:
	// 5 queries active only in the first half, 1 query active all second.
	var obs []Obs
	for i := 0; i < 5; i++ {
		obs = append(obs, Obs{ArrivalMs: 0, ResponseMs: 500})
	}
	obs = append(obs, Obs{ArrivalMs: 0, ResponseMs: 1000})
	q := Queries{"A": obs}

	// SHOW STATUS sampled late in the second: saw only the long query.
	observed := timeseries.Series{1}
	est := EstimateBuckets(q, observed, 0, 1, 10)
	if est.SelBucket[0] < 5 {
		t.Errorf("selected bucket %d, want a late bucket (≥5)", est.SelBucket[0])
	}
	if !almostEq(est.PerTemplate["A"][0], 1, 1e-9) {
		t.Errorf("estimate = %v, want 1", est.PerTemplate["A"][0])
	}

	// SHOW STATUS sampled early: saw all 6.
	observed = timeseries.Series{6}
	est = EstimateBuckets(q, observed, 0, 1, 10)
	if est.SelBucket[0] >= 5 {
		t.Errorf("selected bucket %d, want an early bucket (<5)", est.SelBucket[0])
	}
	if !almostEq(est.PerTemplate["A"][0], 6, 1e-9) {
		t.Errorf("estimate = %v, want 6", est.PerTemplate["A"][0])
	}
}

func TestEstimateBucketsPerTemplateSplit(t *testing.T) {
	// Template A active early, template B active late; the bucket chosen
	// decides which template gets the session mass.
	q := Queries{
		"A": {{ArrivalMs: 0, ResponseMs: 400}},
		"B": {{ArrivalMs: 600, ResponseMs: 400}},
	}
	est := EstimateBuckets(q, timeseries.Series{1}, 0, 1, 10)
	a, b := est.PerTemplate["A"][0], est.PerTemplate["B"][0]
	// Either bucket family matches the observation of 1; exactly one
	// template must carry it.
	if !almostEq(a+b, 1, 1e-9) {
		t.Errorf("A+B = %v, want 1", a+b)
	}
	if a != 0 && b != 0 {
		t.Errorf("both templates active in the chosen bucket: A=%v B=%v", a, b)
	}
}

func TestEstimateQualityOrdering(t *testing.T) {
	// Synthetic ground truth: random queries; observation = expectation
	// in a known bucket. The bucketed estimator must beat by-RT on
	// correlation, reproducing Table III's ordering.
	rng := rand.New(rand.NewSource(5))
	seconds := 120
	q := Queries{}
	ids := []sqltemplate.ID{"T1", "T2", "T3", "T4"}
	for _, id := range ids {
		var obs []Obs
		for i := 0; i < 2500; i++ {
			start := rng.Int63n(int64(seconds) * 1000)
			rt := 20 + rng.Float64()*3000
			obs = append(obs, Obs{ArrivalMs: start, ResponseMs: rt})
		}
		q[id] = obs
	}
	// Ground truth: instantaneous active count at offset 337 ms of each
	// second.
	observed := make(timeseries.Series, seconds)
	for sec := 0; sec < seconds; sec++ {
		instant := float64(sec*1000 + 337)
		for _, obs := range q {
			for _, o := range obs {
				if float64(o.ArrivalMs) <= instant && instant < float64(o.ArrivalMs)+o.ResponseMs {
					observed[sec]++
				}
			}
		}
	}

	bkt := EstimateBuckets(q, observed, 0, seconds, 10)
	nob := EstimateNoBuckets(q, 0, seconds)
	rt := EstimateByRT(q, 0, seconds)

	cb, mb := bkt.Quality(observed)
	cn, mn := nob.Quality(observed)
	cr, mr := rt.Quality(observed)

	if !(cb >= cn && cn > cr) {
		t.Errorf("correlation ordering violated: buckets=%v nobuckets=%v byRT=%v", cb, cn, cr)
	}
	if !(mb <= mn && mn < mr) {
		t.Errorf("MSE ordering violated: buckets=%v nobuckets=%v byRT=%v", mb, mn, mr)
	}
	if cb < 0.9 {
		t.Errorf("bucketed correlation = %v, want ≥ 0.9", cb)
	}
}

func TestEstimateBucketsDefaultK(t *testing.T) {
	q := Queries{"A": {{ArrivalMs: 100, ResponseMs: 100}}}
	est := EstimateBuckets(q, timeseries.Series{1}, 0, 1, 0)
	if est.SelBucket[0] < 0 || est.SelBucket[0] >= DefaultBuckets {
		t.Errorf("default K bucket = %d", est.SelBucket[0])
	}
}

func TestEstimateEmptyInputs(t *testing.T) {
	est := EstimateBuckets(Queries{}, nil, 0, 5, 10)
	if est.Total.Sum() != 0 || len(est.Total) != 5 {
		t.Errorf("empty estimate = %+v", est)
	}
	est2 := EstimateByRT(nil, 0, 3)
	if est2.Total.Sum() != 0 {
		t.Errorf("nil queries estimate = %v", est2.Total)
	}
}

// Property: every estimated value is non-negative, and per-template series
// sum to the total exactly.
func TestEstimateAdditivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seconds := 10
		q := Queries{}
		for tpl := 0; tpl < 3; tpl++ {
			id := sqltemplate.ID(rune('A' + tpl))
			var obs []Obs
			for i := 0; i < 30; i++ {
				obs = append(obs, Obs{
					ArrivalMs:  rng.Int63n(int64(seconds) * 1000),
					ResponseMs: rng.Float64() * 2000,
				})
			}
			q[id] = obs
		}
		observed := make(timeseries.Series, seconds)
		for i := range observed {
			observed[i] = rng.Float64() * 10
		}
		est := EstimateBuckets(q, observed, 0, seconds, 10)
		for sec := 0; sec < seconds; sec++ {
			var sum float64
			for _, s := range est.PerTemplate {
				if s[sec] < 0 {
					return false
				}
				sum += s[sec]
			}
			if !almostEq(sum, est.Total[sec], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the whole-second expectation integrates to total busy time:
// Σ_t E[session_t] = Σ_q tres(q)/1000 for queries fully inside the window.
func TestNoBucketsMassConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seconds := 20
		var obs []Obs
		var mass float64
		for i := 0; i < 50; i++ {
			start := rng.Int63n(int64(seconds-5) * 1000)
			rt := rng.Float64() * 3000
			obs = append(obs, Obs{ArrivalMs: start, ResponseMs: rt})
			mass += rt / 1000
		}
		est := EstimateNoBuckets(Queries{"A": obs}, 0, seconds)
		return almostEq(est.Total.Sum(), mass, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
