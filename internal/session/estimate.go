// Package session implements PinSQL's individual active-session estimation
// (§IV-C): recovering, for every SQL template, a per-second active-session
// series from nothing but the query log — no Performance Schema, no load on
// the instance.
//
// A query q is active during [t(q), t(q)+tres(q)). For a time period p the
// probability that q is observed active is
//
//	P(observed(p, q)) = |p ∩ [t(q), t(q)+tres(q))| / |p|,
//
// and the expected active session of period p is the sum of P over all
// queries. SHOW STATUS reports the instance's session count at one unknown
// instant t₃ inside each second (Fig. 3); the estimator splits every second
// into K buckets, picks the bucket whose expected session count is closest
// to the reported value (selₜ = argmin |sessionₜ − E[session_bᵢ]|), and
// evaluates each template's expectation inside that bucket only.
//
// Three estimators are provided, matching Table III's comparison: ByRT
// (total response time per second), NoBuckets (whole-second expectation),
// and Buckets (the paper's method, K = 10 by default).
package session

import (
	"sort"

	"pinsql/internal/parallel"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// Obs is one logged query observation: start time and response time.
type Obs struct {
	ArrivalMs  int64
	ResponseMs float64
}

// Queries maps each SQL template to its logged observations inside the
// diagnosis window.
type Queries map[sqltemplate.ID][]Obs

// DefaultBuckets is the paper's K = 10.
const DefaultBuckets = 10

// Estimate is the result of a session estimation over a window of n
// seconds.
type Estimate struct {
	// PerTemplate is each template's estimated individual active session,
	// one value per second (sessionQ of §IV-C).
	PerTemplate map[sqltemplate.ID]timeseries.Series
	// Total is the sum over templates; comparing it against the observed
	// instance active session measures estimation quality (§VIII-F).
	Total timeseries.Series
	// SelBucket is the chosen bucket index per second; -1 where no bucket
	// selection happened (ByRT / NoBuckets variants).
	SelBucket []int
}

// overlapMs returns the overlap in milliseconds between [lo, hi) and the
// query's active interval.
func overlapMs(q Obs, lo, hi float64) float64 {
	qlo := float64(q.ArrivalMs)
	qhi := qlo + q.ResponseMs
	if qlo > lo {
		lo = qlo
	}
	if qhi < hi {
		hi = qhi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// EstimateByRT is the baseline that uses total response time per second as
// the session proxy ("Estimate by RT" in Table III): the summed response
// time of the queries of each second, in seconds. It ignores how a query's
// active interval actually spreads across seconds, which is exactly why it
// correlates poorly with the sampled active session.
func EstimateByRT(queries Queries, startMs int64, seconds int) *Estimate {
	est := newEstimate(queries, seconds)
	for id, obs := range queries {
		s := est.PerTemplate[id]
		for _, q := range obs {
			sec := int((q.ArrivalMs - startMs) / 1000)
			if q.ArrivalMs < startMs || sec >= seconds {
				continue
			}
			s[sec] += q.ResponseMs / 1000
		}
	}
	est.sumTotal()
	return est
}

// EstimateNoBuckets computes the expected active session over each whole
// second ("Estimate w/o buckets"): accurate for the time-averaged session
// but blind to where inside the second SHOW STATUS actually sampled.
func EstimateNoBuckets(queries Queries, startMs int64, seconds int) *Estimate {
	est := newEstimate(queries, seconds)
	for id, obs := range queries {
		s := est.PerTemplate[id]
		accumulate(s, obs, startMs, seconds, func(sec int) (float64, float64) {
			lo := float64(startMs + int64(sec)*1000)
			return lo, lo + 1000
		})
	}
	est.sumTotal()
	return est
}

// EstimateBuckets is the paper's method: split each second into k buckets,
// select the bucket whose expected total session is closest to the observed
// SHOW STATUS value, and evaluate per-template expectations there. observed
// must hold one SHOW STATUS sample per second (length ≥ seconds).
func EstimateBuckets(queries Queries, observed timeseries.Series, startMs int64, seconds, k int) *Estimate {
	return EstimateBucketsWorkers(queries, observed, startMs, seconds, k, 1)
}

// EstimateBucketsWorkers is EstimateBuckets with the diagnosis pipeline's
// Workers knob: 1 runs sequentially on the calling goroutine, <= 0 uses
// GOMAXPROCS workers. The result is identical for every worker count:
// bucket totals and selection are sharded by second (each second's
// accumulation is owned by exactly one worker and runs in sorted template
// order), and per-template accumulation is sharded by template (each
// series is owned by exactly one worker) — no cross-worker reduction ever
// happens, so even the floating-point addition order is fixed.
func EstimateBucketsWorkers(queries Queries, observed timeseries.Series, startMs int64, seconds, k, workers int) *Estimate {
	if k <= 0 {
		k = DefaultBuckets
	}
	est := newEstimate(queries, seconds)
	if seconds <= 0 {
		return est
	}
	bucketLen := 1000.0 / float64(k)
	ids := sortedIDs(queries)

	// Per-second index of the queries whose active interval touches each
	// second, in sorted template order so every second's accumulation
	// order is independent of both map iteration and worker count.
	perSec := make([][]Obs, seconds)
	for _, id := range ids {
		for _, q := range queries[id] {
			first, last := secondSpan(q, startMs, seconds)
			for sec := first; sec <= last; sec++ {
				perSec[sec] = append(perSec[sec], q)
			}
		}
	}

	// Pass 1+2 fused and sharded by second: expected total session per
	// bucket, then selection against the observed SHOW STATUS value.
	parallel.Blocks(workers, seconds, func(lo, hi int) {
		totals := make([]float64, k)
		for sec := lo; sec < hi; sec++ {
			for b := range totals {
				totals[b] = 0
			}
			base := float64(startMs + int64(sec)*1000)
			for _, q := range perSec[sec] {
				for b := 0; b < k; b++ {
					blo := base + float64(b)*bucketLen
					if ov := overlapMs(q, blo, blo+bucketLen); ov > 0 {
						totals[b] += ov / bucketLen
					}
				}
			}
			var target float64
			if sec < len(observed) {
				target = observed[sec]
			}
			best, bestDiff := 0, abs(totals[0]-target)
			for b := 1; b < k; b++ {
				if d := abs(totals[b] - target); d < bestDiff {
					best, bestDiff = b, d
				}
			}
			est.SelBucket[sec] = best
		}
	})

	// Pass 3: per-template expectation inside the selected bucket, sharded
	// by template — each worker writes only the series it owns.
	parallel.ForEach(workers, len(ids), func(ti int) {
		id := ids[ti]
		accumulate(est.PerTemplate[id], queries[id], startMs, seconds, func(sec int) (float64, float64) {
			lo := float64(startMs+int64(sec)*1000) + float64(est.SelBucket[sec])*bucketLen
			return lo, lo + bucketLen
		})
	})
	est.sumTotal()
	return est
}

// sortedIDs returns the template IDs of queries in ascending order, fixing
// an iteration order for the map.
func sortedIDs(queries Queries) []sqltemplate.ID {
	ids := make([]sqltemplate.ID, 0, len(queries))
	for id := range queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// accumulate adds each query's observation probability to s for every
// second it spans, using the period returned by periodOf(sec).
func accumulate(s timeseries.Series, obs []Obs, startMs int64, seconds int, periodOf func(sec int) (float64, float64)) {
	for _, q := range obs {
		first, last := secondSpan(q, startMs, seconds)
		for sec := first; sec <= last; sec++ {
			lo, hi := periodOf(sec)
			if ov := overlapMs(q, lo, hi); ov > 0 {
				s[sec] += ov / (hi - lo)
			}
		}
	}
}

// secondSpan returns the inclusive range of window seconds a query's active
// interval can touch, clamped to [0, seconds-1]. A query entirely outside
// the window yields an empty range (first > last).
func secondSpan(q Obs, startMs int64, seconds int) (first, last int) {
	endMs := float64(q.ArrivalMs) + q.ResponseMs
	first = int((q.ArrivalMs - startMs) / 1000)
	if q.ArrivalMs < startMs {
		first = 0
	}
	last = int((endMs - float64(startMs)) / 1000)
	if first < 0 {
		first = 0
	}
	if last >= seconds {
		last = seconds - 1
	}
	if endMs <= float64(startMs) {
		last = -1 // empty
	}
	return first, last
}

func newEstimate(queries Queries, seconds int) *Estimate {
	est := &Estimate{
		PerTemplate: make(map[sqltemplate.ID]timeseries.Series, len(queries)),
		Total:       make(timeseries.Series, seconds),
		SelBucket:   make([]int, seconds),
	}
	for i := range est.SelBucket {
		est.SelBucket[i] = -1
	}
	for id := range queries {
		est.PerTemplate[id] = make(timeseries.Series, seconds)
	}
	return est
}

func (e *Estimate) sumTotal() {
	// Sum in sorted template order: Total's floating-point bits must not
	// depend on map iteration order (the Workers-equivalence property
	// tests compare estimates for exact equality).
	ids := make([]sqltemplate.ID, 0, len(e.PerTemplate))
	for id := range e.PerTemplate {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for i, v := range e.PerTemplate[id] {
			e.Total[i] += v
		}
	}
}

// Quality reports the two Table III metrics — Pearson correlation and MSE —
// between the estimated total and the observed instance active session.
func (e *Estimate) Quality(observed timeseries.Series) (corr, mse float64) {
	n := len(e.Total)
	if len(observed) < n {
		n = len(observed)
	}
	corr, _ = timeseries.Corr(e.Total[:n], observed[:n])
	mse, _ = timeseries.MSE(e.Total[:n], observed[:n])
	return corr, mse
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
