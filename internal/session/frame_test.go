package session

// Differential tests: the frame estimators must reproduce the legacy
// map-keyed estimators bit for bit — same per-template series, same total,
// same bucket selection — when both see the same observations in the same
// per-template order (the arrival-sorted order the frame fixes).

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// frameFromQueries builds a window frame over the given query log with the
// templates deliberately laid out in DESCENDING ID order, so the ByID
// permutation is a real reordering and any iteration-order mistake in the
// frame estimators shows up as a bit difference.
func frameFromQueries(q Queries, startMs int64, seconds int) *window.Frame {
	ids := make([]string, 0, len(q))
	for id := range q {
		ids = append(ids, string(id))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	f := &window.Frame{
		Topic:   "differential",
		StartMs: startMs,
		Seconds: seconds,
		Off:     make([]int32, 1, len(ids)+1),
	}
	for i, id := range ids {
		f.Templates = append(f.Templates, window.Template{
			Meta: window.Meta{Index: int32(i), ID: sqltemplate.ID(id)},
		})
		for _, o := range q[sqltemplate.ID(id)] {
			f.Arrival = append(f.Arrival, o.ArrivalMs)
			f.Response = append(f.Response, o.ResponseMs)
		}
		f.Off = append(f.Off, int32(len(f.Arrival)))
	}
	f.Finalize()
	return f
}

// queriesOfFrame flattens the frame back into the legacy map — the
// arrival-sorted per-template order both estimators then walk.
func queriesOfFrame(f *window.Frame) Queries {
	out := make(Queries, len(f.Templates))
	for pos := range f.Templates {
		arr, resp := f.Obs(pos)
		if len(arr) == 0 {
			continue
		}
		obs := make([]Obs, len(arr))
		for i := range arr {
			obs[i] = Obs{ArrivalMs: arr[i], ResponseMs: resp[i]}
		}
		out[f.Templates[pos].Meta.ID] = obs
	}
	return out
}

// sameBits compares two series down to float bits.
func sameBits(a, b timeseries.Series) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// checkFrameEstimate verifies fe against the legacy est over frame f.
func checkFrameEstimate(t *testing.T, label string, f *window.Frame, fe *FrameEstimate, est *Estimate) {
	t.Helper()
	if !sameBits(fe.Total, est.Total) {
		t.Fatalf("%s: totals diverge", label)
	}
	for pos := range f.Templates {
		id := f.Templates[pos].Meta.ID
		legacy, ok := est.PerTemplate[id]
		if !ok {
			// Zero-observation templates have no legacy entry; the frame
			// series must be exactly zero.
			if fe.PerTemplate[pos].Sum() != 0 {
				t.Fatalf("%s: template %s has mass without observations", label, id)
			}
			continue
		}
		if !sameBits(fe.PerTemplate[pos], legacy) {
			t.Fatalf("%s: template %s series diverge", label, id)
		}
	}
	if est.SelBucket != nil {
		for sec := range est.SelBucket {
			if fe.SelBucket[sec] != est.SelBucket[sec] {
				t.Fatalf("%s: bucket selection diverges at second %d: %d vs %d",
					label, sec, fe.SelBucket[sec], est.SelBucket[sec])
			}
		}
	}
}

func TestFrameEstimatorsMatchLegacyBitForBit(t *testing.T) {
	const (
		startMs = 1000
		seconds = 30
		k       = 10
	)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		raw, observed := randomQueries(rng, startMs, seconds)
		f := frameFromQueries(raw, startMs, seconds)
		q := queriesOfFrame(f)

		checkFrameEstimate(t, fmt.Sprintf("seed %d byRT", seed), f,
			EstimateFrameByRT(f), EstimateByRT(q, startMs, seconds))
		checkFrameEstimate(t, fmt.Sprintf("seed %d noBuckets", seed), f,
			EstimateFrameNoBuckets(f), EstimateNoBuckets(q, startMs, seconds))
		for _, workers := range []int{1, 3, 0} {
			checkFrameEstimate(t, fmt.Sprintf("seed %d buckets w=%d", seed, workers), f,
				EstimateFrameBuckets(f, observed, k, workers),
				EstimateBucketsWorkers(q, observed, startMs, seconds, k, 1))
		}
	}
}
