package session

// Workers-equivalence property for the sharded bucket estimator: for
// random query logs, EstimateBucketsWorkers must return the exact same
// Estimate — selected buckets, per-template series, and total, down to
// floating-point bits — for every worker count.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// randomQueries builds a query log with boundary-hostile observations:
// arrivals before the window, responses spilling past it, zero response
// times, and sub-millisecond bursts.
func randomQueries(rng *rand.Rand, startMs int64, seconds int) (Queries, timeseries.Series) {
	q := make(Queries)
	nTemplates := rng.Intn(9)
	for t := 0; t < nTemplates; t++ {
		id := sqltemplate.ID(fmt.Sprintf("T%02d", t))
		nObs := rng.Intn(41)
		for o := 0; o < nObs; o++ {
			arrival := startMs + int64(rng.Intn(seconds*1000+4000)) - 2000
			q[id] = append(q[id], Obs{
				ArrivalMs:  arrival,
				ResponseMs: rng.Float64() * 5000,
			})
		}
	}
	observed := make(timeseries.Series, seconds)
	for i := range observed {
		observed[i] = rng.Float64() * float64(nTemplates+1)
	}
	return q, observed
}

func TestEstimateBucketsWorkersEquivalence(t *testing.T) {
	const (
		startMs = 1000
		seconds = 30
		k       = 10
	)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		queries, observed := randomQueries(rng, startMs, seconds)
		seq := EstimateBucketsWorkers(queries, observed, startMs, seconds, k, 1)
		for _, w := range []int{2, 4, 0} { // 0 = GOMAXPROCS
			par := EstimateBucketsWorkers(queries, observed, startMs, seconds, k, w)
			if !reflect.DeepEqual(seq, par) {
				t.Logf("seed %d workers=%d: estimates diverged", seed, w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEstimateBucketsWrapperIsSequential pins the compatibility contract:
// the original EstimateBuckets signature is the Workers=1 path.
func TestEstimateBucketsWrapperIsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries, observed := randomQueries(rng, 0, 20)
	a := EstimateBuckets(queries, observed, 0, 20, 10)
	b := EstimateBucketsWorkers(queries, observed, 0, 20, 10, 1)
	if !reflect.DeepEqual(a, b) {
		t.Error("EstimateBuckets diverged from EstimateBucketsWorkers(..., 1)")
	}
}
