package sqltemplate

// Native fuzzing for the SQL normalizer, the first code every logged
// statement passes through: it must never panic on hostile input, must be
// idempotent (a template is its own template), and must keep the
// template → SQL ID mapping functional (equal template text, equal ID).
//
// Run a longer campaign with: go test -fuzz=FuzzNormalize ./internal/sqltemplate
// (the Makefile's fuzz-smoke target runs a 10 s slice in CI).

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// normalizeReference is the pre-pooling shape of Normalize: a fresh token
// slice per call and an always-copy IN-list collapse. The fuzzer holds the
// pooled fast path to this oracle so scratch-slice reuse and the
// copy-on-write collapse can never drift from the simple semantics.
func normalizeReference(sql string) string {
	tokens := tokenize(sql) // fresh allocation per call
	out := make([]string, 0, len(tokens))
	i := 0
	for i < len(tokens) {
		if run := inListRun(tokens, i); run > 0 {
			out = append(out, "IN", "(", Placeholder, ")")
			i += run
			continue
		}
		out = append(out, tokens[i])
		i++
	}
	var b strings.Builder
	for i, tok := range out {
		if i > 0 && needsSpace(out[i-1], tok) {
			b.WriteByte(' ')
		}
		b.WriteString(tok)
	}
	return b.String()
}

func FuzzNormalize(f *testing.F) {
	seeds := []string{
		// Plain statements and literal kinds.
		"SELECT * FROM orders WHERE id = 42",
		"select name from users where age >= 18 and city = 'NY' limit 10",
		"INSERT INTO t (a, b) VALUES (1.5, -2)",
		"UPDATE t SET x = 0x1F, y = 1e-9 WHERE z IN (1, 2, 3)",
		"SELECT * FROM t WHERE price > -3.25e+10",
		// Quoted strings with escapes.
		`SELECT * FROM t WHERE s = 'it''s fine'`,
		`SELECT * FROM t WHERE s = 'back\'slash' AND r = "dq\"uote"`,
		`SELECT * FROM t WHERE s = 'unterminated`,
		"SELECT `weird ident` FROM `a b`",
		// Comments and operators.
		"SELECT 1 -- trailing comment",
		"SELECT /* block */ 1 /* unterminated",
		"SELECT a FROM t WHERE b <> 1 AND c != 2 AND d <= 3",
		// Collapsing IN lists.
		"DELETE FROM t WHERE id IN (1, 2, 3, 4, 5)",
		"SELECT * FROM t WHERE id IN (SELECT id FROM u)",
		// Multibyte input.
		"SELECT * FROM 用户 WHERE 名字 = '张三'",
		"SELECT 'héllo wörld' FROM t WHERE e = '😀'",
		// Degenerates.
		"", " ", "''", "`", "--", "/*", "?", "IN (", "0x", "1.2.3.4",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, sql string) {
		once := Normalize(sql) // must not panic
		twice := Normalize(once)
		if once != twice {
			t.Errorf("not idempotent:\n in: %q\n 1x: %q\n 2x: %q", sql, once, twice)
		}

		// The pooled-scratch fast path must match the fresh-allocation
		// reference pipeline exactly.
		if ref := normalizeReference(sql); once != ref {
			t.Errorf("pooled path diverged from reference:\n in: %q\n pooled: %q\n ref: %q", sql, once, ref)
		}

		// The stack-buffer keyword and function-name lookups must agree
		// with the strings.ToUpper folding they replace, on any string.
		wantUp := strings.ToUpper(sql)
		if kw, ok := keywordToken(sql); ok != keywords[wantUp] || (ok && kw != wantUp) {
			t.Errorf("keywordToken(%q) = (%q, %v); ToUpper reference = (%q, %v)",
				sql, kw, ok, wantUp, keywords[wantUp])
		}
		if got, want := isFunctionName(sql), funcNames[wantUp]; got != want {
			t.Errorf("isFunctionName(%q) = %v, ToUpper reference %v", sql, got, want)
		}

		// Equal templates hash to equal IDs, and New is consistent with
		// the Normalize/HashID pair it composes.
		tpl := New(sql)
		if tpl.Text != once {
			t.Errorf("New text %q != Normalize %q", tpl.Text, once)
		}
		if tpl.ID != HashID(once) {
			t.Errorf("New ID %q != HashID of template %q", tpl.ID, once)
		}
		if again := New(sql); again != tpl {
			t.Errorf("New not deterministic: %+v vs %+v", tpl, again)
		}
		// A template normalized again is the same template with the same ID.
		if reTpl := New(once); reTpl.ID != tpl.ID {
			t.Errorf("template of template changed ID: %q -> %q", tpl.ID, reTpl.ID)
		}

		// The normalizer must not invent invalid UTF-8 out of valid input.
		if utf8.ValidString(sql) && !utf8.ValidString(once) {
			t.Errorf("valid input normalized to invalid UTF-8: %q -> %q", sql, once)
		}
	})
}
