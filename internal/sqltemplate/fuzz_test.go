package sqltemplate

// Native fuzzing for the SQL normalizer, the first code every logged
// statement passes through: it must never panic on hostile input, must be
// idempotent (a template is its own template), and must keep the
// template → SQL ID mapping functional (equal template text, equal ID).
//
// Run a longer campaign with: go test -fuzz=FuzzNormalize ./internal/sqltemplate
// (the Makefile's fuzz-smoke target runs a 10 s slice in CI).

import (
	"testing"
	"unicode/utf8"
)

func FuzzNormalize(f *testing.F) {
	seeds := []string{
		// Plain statements and literal kinds.
		"SELECT * FROM orders WHERE id = 42",
		"select name from users where age >= 18 and city = 'NY' limit 10",
		"INSERT INTO t (a, b) VALUES (1.5, -2)",
		"UPDATE t SET x = 0x1F, y = 1e-9 WHERE z IN (1, 2, 3)",
		"SELECT * FROM t WHERE price > -3.25e+10",
		// Quoted strings with escapes.
		`SELECT * FROM t WHERE s = 'it''s fine'`,
		`SELECT * FROM t WHERE s = 'back\'slash' AND r = "dq\"uote"`,
		`SELECT * FROM t WHERE s = 'unterminated`,
		"SELECT `weird ident` FROM `a b`",
		// Comments and operators.
		"SELECT 1 -- trailing comment",
		"SELECT /* block */ 1 /* unterminated",
		"SELECT a FROM t WHERE b <> 1 AND c != 2 AND d <= 3",
		// Collapsing IN lists.
		"DELETE FROM t WHERE id IN (1, 2, 3, 4, 5)",
		"SELECT * FROM t WHERE id IN (SELECT id FROM u)",
		// Multibyte input.
		"SELECT * FROM 用户 WHERE 名字 = '张三'",
		"SELECT 'héllo wörld' FROM t WHERE e = '😀'",
		// Degenerates.
		"", " ", "''", "`", "--", "/*", "?", "IN (", "0x", "1.2.3.4",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, sql string) {
		once := Normalize(sql) // must not panic
		twice := Normalize(once)
		if once != twice {
			t.Errorf("not idempotent:\n in: %q\n 1x: %q\n 2x: %q", sql, once, twice)
		}

		// Equal templates hash to equal IDs, and New is consistent with
		// the Normalize/HashID pair it composes.
		tpl := New(sql)
		if tpl.Text != once {
			t.Errorf("New text %q != Normalize %q", tpl.Text, once)
		}
		if tpl.ID != HashID(once) {
			t.Errorf("New ID %q != HashID of template %q", tpl.ID, once)
		}
		if again := New(sql); again != tpl {
			t.Errorf("New not deterministic: %+v vs %+v", tpl, again)
		}
		// A template normalized again is the same template with the same ID.
		if reTpl := New(once); reTpl.ID != tpl.ID {
			t.Errorf("template of template changed ID: %q -> %q", tpl.ID, reTpl.ID)
		}

		// The normalizer must not invent invalid UTF-8 out of valid input.
		if utf8.ValidString(sql) && !utf8.ValidString(once) {
			t.Errorf("valid input normalized to invalid UTF-8: %q -> %q", sql, once)
		}
	})
}
