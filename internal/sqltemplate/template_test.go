package sqltemplate

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeBasicSelect(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{
			"paper example",
			"SELECT * FROM user_table WHERE uid = 123456",
			"SELECT * FROM user_table WHERE uid = ?",
		},
		{
			"string literal",
			"select name from users where city = 'Hangzhou'",
			"SELECT name FROM users WHERE city = ?",
		},
		{
			"double-quoted literal",
			`SELECT a FROM t WHERE b = "x"`,
			"SELECT a FROM t WHERE b = ?",
		},
		{
			"whitespace squeeze",
			"SELECT   *\n\tFROM  t  WHERE a=1",
			"SELECT * FROM t WHERE a = ?",
		},
		{
			"decimal and scientific",
			"SELECT * FROM t WHERE a = 1.5 AND b = 2e10",
			"SELECT * FROM t WHERE a = ? AND b = ?",
		},
		{
			"hex literal",
			"SELECT * FROM t WHERE a = 0xFF",
			"SELECT * FROM t WHERE a = ?",
		},
		{
			"negative literal",
			"SELECT * FROM t WHERE a = -5",
			"SELECT * FROM t WHERE a = ?",
		},
		{
			"update",
			"UPDATE sales SET amount = 99 WHERE id = 7",
			"UPDATE sales SET amount = ? WHERE id = ?",
		},
		{
			"insert values",
			"INSERT INTO orders (id, total) VALUES (1, 250.00)",
			"INSERT INTO orders (id, total) VALUES (?, ?)",
		},
		{
			"ddl untouched identifiers",
			"ALTER TABLE sales ADD COLUMN note varchar",
			"ALTER TABLE sales ADD COLUMN note varchar",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Normalize(tc.in); got != tc.want {
				t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

func TestNormalizeInListCollapse(t *testing.T) {
	a := Normalize("SELECT * FROM t WHERE id IN (1, 2, 3)")
	b := Normalize("SELECT * FROM t WHERE id IN (4)")
	c := Normalize("SELECT * FROM t WHERE id IN (5, 6, 7, 8, 9, 10)")
	if a != b || b != c {
		t.Errorf("IN-lists did not collapse: %q / %q / %q", a, b, c)
	}
	if !strings.Contains(a, "IN (?)") {
		t.Errorf("collapsed form = %q, want to contain IN (?)", a)
	}
}

func TestNormalizeCommentsDropped(t *testing.T) {
	got := Normalize("SELECT * FROM t -- trailing comment\nWHERE a = 1 /* block */ AND b = 2")
	want := "SELECT * FROM t WHERE a = ? AND b = ?"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestNormalizeEscapedStrings(t *testing.T) {
	tests := []string{
		`SELECT * FROM t WHERE a = 'it''s'`,
		`SELECT * FROM t WHERE a = 'it\'s'`,
		`SELECT * FROM t WHERE a = 'plain'`,
	}
	want := Normalize(tests[2])
	for _, in := range tests {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeUnterminatedString(t *testing.T) {
	// Must not panic or loop; the open literal swallows the tail.
	got := Normalize("SELECT * FROM t WHERE a = 'oops")
	if !strings.HasSuffix(got, "?") {
		t.Errorf("got %q, want trailing placeholder", got)
	}
}

func TestNormalizeIdentifiersWithDigits(t *testing.T) {
	got := Normalize("SELECT c1, c2 FROM table_3 WHERE c1 = 10")
	want := "SELECT c1, c2 FROM table_3 WHERE c1 = ?"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestNormalizeBacktickIdentifiers(t *testing.T) {
	got := Normalize("SELECT `From` FROM `Order` WHERE `Order`.id = 5")
	if !strings.Contains(got, "`From`") || !strings.Contains(got, "`Order`") {
		t.Errorf("backtick identifiers not preserved: %q", got)
	}
	if !strings.HasSuffix(got, "= ?") {
		t.Errorf("literal not replaced: %q", got)
	}
}

func TestTemplatesShareID(t *testing.T) {
	q1 := New("SELECT * FROM user_table WHERE uid = 123456")
	q2 := New("SELECT * FROM user_table WHERE uid = 654321")
	q3 := New("SELECT * FROM user_table WHERE uid = 123321")
	if q1.ID != q2.ID || q2.ID != q3.ID {
		t.Errorf("IDs differ: %s %s %s", q1.ID, q2.ID, q3.ID)
	}
	other := New("SELECT * FROM other_table WHERE uid = 123456")
	if other.ID == q1.ID {
		t.Error("different templates must get different IDs")
	}
}

func TestHashIDFormat(t *testing.T) {
	id := HashID("SELECT 1")
	if len(id) != 8 {
		t.Fatalf("ID length = %d, want 8", len(id))
	}
	for _, r := range id {
		if !strings.ContainsRune("0123456789ABCDEF", r) {
			t.Errorf("ID %q contains non-hex rune %q", id, r)
		}
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if got := Normalize(""); got != "" {
		t.Errorf("Normalize(\"\") = %q", got)
	}
	if got := Normalize("   \n\t  "); got != "" {
		t.Errorf("Normalize(whitespace) = %q", got)
	}
}

// Property: normalization is idempotent.
func TestNormalizeIdempotentProperty(t *testing.T) {
	samples := []string{
		"SELECT * FROM t WHERE a = %d AND b = '%d'",
		"UPDATE inv SET qty = qty - %d WHERE sku = %d",
		"INSERT INTO log (msg, ts) VALUES ('%d', %d)",
		"SELECT a, b FROM t1 JOIN t2 ON t1.id = t2.id WHERE t1.x IN (%d, %d)",
		"DELETE FROM t WHERE created < %d LIMIT %d",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tpl := samples[r.Intn(len(samples))]
		sql := strings.NewReplacer("%d", itoa(r.Intn(1_000_000))).Replace(tpl)
		once := Normalize(sql)
		return Normalize(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: templates are invariant to the literal values used.
func TestTemplateLiteralInvarianceProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		s1 := "SELECT name FROM users WHERE uid = " + itoa(int(a%1e6)) + " AND age > " + itoa(int(b%120))
		s2 := "SELECT name FROM users WHERE uid = " + itoa(int(b%1e6)) + " AND age > " + itoa(int(a%120))
		return New(s1).ID == New(s2).ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Normalize never panics on arbitrary byte soup and always returns
// printable single-line-ish output (no tabs/newlines).
func TestNormalizeArbitraryInputProperty(t *testing.T) {
	f := func(raw []byte) bool {
		out := Normalize(string(raw))
		return !strings.ContainsAny(out, "\n\t\r")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
