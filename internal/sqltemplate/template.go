// Package sqltemplate turns raw SQL statements into SQL templates (digests):
// structurally identical statements with different literal values share one
// template (Definition II.3 of the paper). A template is identified by a
// short hex SQL ID derived from an FNV hash of the normalized text, matching
// the query-log presentation in Fig. 1.
package sqltemplate

import (
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// Placeholder is the token substituted for every literal value.
const Placeholder = "?"

// ID is the unique identifier of a SQL template, a short uppercase hex
// string such as "2304A84F".
type ID string

// Template is a normalized SQL statement plus its identity.
type Template struct {
	ID   ID     // hash of the normalized text
	Text string // normalized statement with literals replaced by '?'
}

// normScratch is the per-call working set of Normalize: the token slice and
// the IN-list collapse buffer. Pooling it makes steady-state normalization
// allocate only the returned string — the token slices themselves are
// reused across calls (they hold substrings of past inputs between uses,
// which is fine: inputs are log-record SQL that outlives the call anyway).
type normScratch struct {
	tokens []string
	out    []string
}

var scratchPool = sync.Pool{New: func() any { return new(normScratch) }}

// Normalize rewrites a SQL statement into its template text: string and
// numeric literals become '?', IN (...) lists collapse to IN (?), whitespace
// is squeezed, and keywords are uppercased outside of (former) literals.
// Normalization is idempotent: Normalize(Normalize(s)) == Normalize(s).
func Normalize(sql string) string {
	sc := scratchPool.Get().(*normScratch)
	sc.tokens = appendTokens(sc.tokens[:0], sql)
	tokens, copied := collapseInListsInto(sc.out[:0], sc.tokens)
	if copied {
		sc.out = tokens
	}
	var b strings.Builder
	b.Grow(len(sql))
	for i, tok := range tokens {
		if i > 0 && needsSpace(tokens[i-1], tok) {
			b.WriteByte(' ')
		}
		b.WriteString(tok)
	}
	scratchPool.Put(sc)
	return b.String()
}

// New builds the Template for a raw SQL statement.
func New(sql string) Template {
	text := Normalize(sql)
	return Template{ID: HashID(text), Text: text}
}

// HashID computes the SQL ID of already-normalized template text. The FNV-1a
// round is inlined (rather than hash/fnv) so the only allocation is the
// returned 8-byte ID itself — no hasher object, no []byte(normalized) copy.
func HashID(normalized string) ID {
	sum := uint32(2166136261) // FNV-1a offset basis
	for i := 0; i < len(normalized); i++ {
		sum ^= uint32(normalized[i])
		sum *= 16777619 // FNV prime
	}
	const hexdigits = "0123456789ABCDEF"
	var buf [8]byte
	for i := 7; i >= 0; i-- {
		buf[i] = hexdigits[sum&0xF]
		sum >>= 4
	}
	return ID(buf[:])
}

// tokenize splits SQL into normalized tokens; it is appendTokens with a
// fresh slice, kept for tests and one-off callers.
func tokenize(sql string) []string {
	return appendTokens(nil, sql)
}

// appendTokens appends the normalized tokens of sql onto tokens:
// keywords/identifiers (uppercased keywords, identifiers preserved),
// literals (replaced by '?'), and punctuation. Passing a recycled
// zero-length slice makes tokenization allocation-free once the backing
// array has grown to the statement's token count.
func appendTokens(tokens []string, sql string) []string {
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			// String literal; honor backslash and doubled-quote escapes.
			i = skipString(sql, i)
			tokens = append(tokens, Placeholder)
		case c == '`':
			// Quoted identifier: keep verbatim (case-sensitive). An
			// identifier cannot span lines, so an unterminated quote
			// ends at the line break.
			j := i + 1
			for j < n && sql[j] != '`' && sql[j] != '\n' && sql[j] != '\r' && sql[j] != '\t' {
				j++
			}
			if j < n && sql[j] == '`' {
				j++
				tokens = append(tokens, sql[i:j])
			} else {
				// Unterminated: close the quote ourselves, otherwise the
				// rendered template re-tokenizes differently (a following
				// backtick would pair with the dangling one across the
				// inserted space — found by FuzzNormalize).
				tokens = append(tokens, sql[i:j]+"`")
			}
			i = j
		case isDigit(c) && !prevIsIdentifier(tokens):
			// Numeric literal (integer, decimal, scientific, hex).
			i = skipNumber(sql, i)
			tokens = append(tokens, Placeholder)
		case c == '-' && i+1 < n && sql[i+1] == '-':
			// Line comment: drop entirely.
			for i < n && sql[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && sql[i+1] == '*':
			// Block comment: drop entirely.
			j := i + 2
			for j+1 < n && !(sql[j] == '*' && sql[j+1] == '/') {
				j++
			}
			if j+1 < n {
				j += 2
			} else {
				j = n
			}
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(sql[j]) {
				j++
			}
			word := sql[i:j]
			if kw, ok := keywordToken(word); ok {
				tokens = append(tokens, kw)
			} else {
				tokens = append(tokens, word)
			}
			i = j
		case (c == '-' || c == '+') && i+1 < n && isDigit(sql[i+1]) && startsLiteralContext(tokens):
			// Signed numeric literal after an operator/comparison.
			i = skipNumber(sql, i+1)
			tokens = append(tokens, Placeholder)
		default:
			// Punctuation / operator, possibly multi-char (<=, >=, <>, !=).
			j := i + 1
			if j < n && isComparisonPair(sql[i], sql[j]) {
				j++
			}
			tokens = append(tokens, sql[i:j])
			i = j
		}
	}
	return tokens
}

func skipString(sql string, i int) int {
	quote := sql[i]
	n := len(sql)
	j := i + 1
	for j < n {
		switch sql[j] {
		case '\\':
			j += 2
			continue
		case quote:
			if j+1 < n && sql[j+1] == quote { // doubled-quote escape
				j += 2
				continue
			}
			return j + 1
		}
		j++
	}
	return n
}

func skipNumber(sql string, i int) int {
	n := len(sql)
	j := i
	if j+1 < n && sql[j] == '0' && (sql[j+1] == 'x' || sql[j+1] == 'X') {
		j += 2
		for j < n && isHexDigit(sql[j]) {
			j++
		}
		return j
	}
	for j < n && (isDigit(sql[j]) || sql[j] == '.') {
		j++
	}
	if j < n && (sql[j] == 'e' || sql[j] == 'E') {
		k := j + 1
		if k < n && (sql[k] == '+' || sql[k] == '-') {
			k++
		}
		if k < n && isDigit(sql[k]) {
			for k < n && isDigit(sql[k]) {
				k++
			}
			j = k
		}
	}
	return j
}

// collapseInListsInto rewrites "IN ( ? , ? , ? )" token runs into
// "IN ( ? )" so queries differing only in IN-list arity share a template.
// It is copy-on-write: most statements have no collapsible list, and for
// those the input slice is returned as-is (copied == false) without
// touching dst. When a collapse is needed, the result is built in dst
// (which must be a zero-length slice the caller owns) and copied == true.
func collapseInListsInto(dst, tokens []string) (out []string, copied bool) {
	i := 0
	for i < len(tokens) {
		if run := inListRun(tokens, i); run > 0 {
			if !copied {
				dst = append(dst, tokens[:i]...)
				copied = true
			}
			dst = append(dst, "IN", "(", Placeholder, ")")
			i += run
			continue
		}
		if copied {
			dst = append(dst, tokens[i])
		}
		i++
	}
	if !copied {
		return tokens, false
	}
	return dst, true
}

// inListRun reports the length in tokens of a collapsible
// "IN ( ? [, ?]... )" run starting at i, or 0 if tokens[i] does not start
// one. The parenthesized run must be non-empty and contain only
// placeholders and commas.
func inListRun(tokens []string, i int) int {
	if !strings.EqualFold(tokens[i], "IN") || i+2 >= len(tokens) || tokens[i+1] != "(" {
		return 0
	}
	j := i + 2
	for j < len(tokens) {
		if tokens[j] == ")" {
			if j > i+2 {
				return j + 1 - i
			}
			return 0
		}
		if tokens[j] != Placeholder && tokens[j] != "," {
			return 0
		}
		j++
	}
	return 0
}

// needsSpace decides whether two adjacent tokens need a separating space in
// the rendered template.
func needsSpace(prev, cur string) bool {
	if cur == "," || cur == ")" || cur == ";" {
		return false
	}
	if prev == "(" || prev == "." {
		return false
	}
	if cur == "." {
		return false
	}
	if cur == "(" {
		// Tight call syntax only after function names: COUNT(*), SUM(x).
		return !isFunctionName(prev)
	}
	return true
}

// funcNames is the set of SQL functions that render with a tight opening
// parenthesis: COUNT(*), SUM(x).
var funcNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"COALESCE": true, "IFNULL": true, "NOW": true, "DATE": true,
	"LENGTH": true, "LOWER": true, "UPPER": true, "SUBSTR": true,
	"CONCAT": true,
}

const maxFuncLen = len("COALESCE")

// isFunctionName reports whether tok is a SQL function that renders with a
// tight opening parenthesis. ASCII tokens are uppercased into a stack
// buffer so the per-token check in the render loop never allocates; rare
// non-ASCII tokens fall back to strings.ToUpper, which matches the
// Unicode case-folding the pre-pooling implementation applied.
func isFunctionName(tok string) bool {
	for i := 0; i < len(tok); i++ {
		if tok[i] >= utf8.RuneSelf {
			return funcNames[strings.ToUpper(tok)]
		}
	}
	if len(tok) > maxFuncLen {
		return false
	}
	var buf [maxFuncLen]byte
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	return funcNames[string(buf[:len(tok)])]
}

func isWordToken(tok string) bool {
	if tok == "" {
		return false
	}
	return isIdentStart(tok[0]) || tok[0] == '`'
}

func prevIsIdentifier(tokens []string) bool {
	if len(tokens) == 0 {
		return false
	}
	last := tokens[len(tokens)-1]
	// A digit directly following an identifier tail is part of the
	// identifier-ish stream (e.g. table names like user_1 already consumed);
	// tokenize only reaches here when the digit starts a new token, so the
	// relevant case is "identifier <space> 123" which IS a literal. Only a
	// dot joining means it's a qualified part, handled by ident scanning.
	return last == "."
}

func startsLiteralContext(tokens []string) bool {
	if len(tokens) == 0 {
		return true
	}
	switch tokens[len(tokens)-1] {
	case "=", "<", ">", "<=", ">=", "<>", "!=", "(", ",", "+", "-", "*", "/":
		return true
	}
	return false
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c|0x20 >= 'a' && c|0x20 <= 'f') }

// isIdentStart treats every non-ASCII byte as part of an identifier, as
// MySQL does for unquoted identifiers: a multibyte UTF-8 rune must stay
// one token, or normalization would split it into invalid byte fragments
// (found by FuzzNormalize).
func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= utf8.RuneSelf || unicode.IsLetter(rune(c))
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isComparisonPair(a, b byte) bool {
	switch {
	case a == '<' && (b == '=' || b == '>'):
		return true
	case a == '>' && b == '=':
		return true
	case a == '!' && b == '=':
		return true
	case a == ':' && b == '=':
		return true
	}
	return false
}

// keywords is the set of SQL keywords uppercased during normalization. It
// intentionally covers the dialect the workload generator emits plus common
// MySQL DDL/DML; unlisted words are treated as identifiers and preserved.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "OUTER": true, "ON": true, "GROUP": true,
	"BY": true, "ORDER": true, "HAVING": true, "LIMIT": true, "OFFSET": true,
	"AS": true, "DISTINCT": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "LIKE": true, "BETWEEN": true, "IS": true,
	"NULL": true, "ASC": true, "DESC": true, "UNION": true, "ALL": true,
	"CREATE": true, "ALTER": true, "DROP": true, "TABLE": true, "INDEX": true,
	"ADD": true, "COLUMN": true, "PRIMARY": true, "KEY": true, "FOREIGN": true,
	"REFERENCES": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"FOR": true, "SHOW": true, "STATUS": true, "EXISTS": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "IF": true,
	"TRUNCATE": true, "REPLACE": true, "LOCK": true, "UNLOCK": true,
}

// keywordCanon maps an uppercase keyword to its canonical (interned) string
// so the tokenizer can emit the uppercase form without allocating.
var keywordCanon = func() map[string]string {
	m := make(map[string]string, len(keywords))
	for k := range keywords {
		m[k] = k
	}
	return m
}()

const maxKeywordLen = len("REFERENCES")

// keywordToken reports whether word is a SQL keyword and, if so, returns
// its canonical uppercase token. ASCII words (the only kind the workload
// emits) are uppercased into a stack buffer — zero allocations. Non-ASCII
// words fall back to strings.ToUpper before the lookup, preserving the
// exact Unicode case-folding behavior of the pre-pooling implementation
// (e.g. a dotless ı uppercases to ASCII I); the fallback must run before
// any length check because Unicode uppercasing can shrink byte length.
func keywordToken(word string) (string, bool) {
	for i := 0; i < len(word); i++ {
		if word[i] >= utf8.RuneSelf {
			up := strings.ToUpper(word)
			if keywords[up] {
				return up, true
			}
			return "", false
		}
	}
	if len(word) > maxKeywordLen {
		return "", false
	}
	var buf [maxKeywordLen]byte
	for i := 0; i < len(word); i++ {
		c := word[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	canon, ok := keywordCanon[string(buf[:len(word)])]
	return canon, ok
}
