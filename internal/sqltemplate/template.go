// Package sqltemplate turns raw SQL statements into SQL templates (digests):
// structurally identical statements with different literal values share one
// template (Definition II.3 of the paper). A template is identified by a
// short hex SQL ID derived from an FNV hash of the normalized text, matching
// the query-log presentation in Fig. 1.
package sqltemplate

import (
	"hash/fnv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Placeholder is the token substituted for every literal value.
const Placeholder = "?"

// ID is the unique identifier of a SQL template, a short uppercase hex
// string such as "2304A84F".
type ID string

// Template is a normalized SQL statement plus its identity.
type Template struct {
	ID   ID     // hash of the normalized text
	Text string // normalized statement with literals replaced by '?'
}

// Normalize rewrites a SQL statement into its template text: string and
// numeric literals become '?', IN (...) lists collapse to IN (?), whitespace
// is squeezed, and keywords are uppercased outside of (former) literals.
// Normalization is idempotent: Normalize(Normalize(s)) == Normalize(s).
func Normalize(sql string) string {
	tokens := tokenize(sql)
	tokens = collapseInLists(tokens)
	var b strings.Builder
	b.Grow(len(sql))
	for i, tok := range tokens {
		if i > 0 && needsSpace(tokens[i-1], tok) {
			b.WriteByte(' ')
		}
		b.WriteString(tok)
	}
	return b.String()
}

// New builds the Template for a raw SQL statement.
func New(sql string) Template {
	text := Normalize(sql)
	return Template{ID: HashID(text), Text: text}
}

// HashID computes the SQL ID of already-normalized template text.
func HashID(normalized string) ID {
	h := fnv.New32a()
	h.Write([]byte(normalized))
	const hexdigits = "0123456789ABCDEF"
	sum := h.Sum32()
	var buf [8]byte
	for i := 7; i >= 0; i-- {
		buf[i] = hexdigits[sum&0xF]
		sum >>= 4
	}
	return ID(buf[:])
}

// tokenize splits SQL into normalized tokens: keywords/identifiers
// (uppercased keywords, identifiers preserved), literals (replaced by '?'),
// and punctuation.
func tokenize(sql string) []string {
	var tokens []string
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			// String literal; honor backslash and doubled-quote escapes.
			i = skipString(sql, i)
			tokens = append(tokens, Placeholder)
		case c == '`':
			// Quoted identifier: keep verbatim (case-sensitive). An
			// identifier cannot span lines, so an unterminated quote
			// ends at the line break.
			j := i + 1
			for j < n && sql[j] != '`' && sql[j] != '\n' && sql[j] != '\r' && sql[j] != '\t' {
				j++
			}
			if j < n && sql[j] == '`' {
				j++
				tokens = append(tokens, sql[i:j])
			} else {
				// Unterminated: close the quote ourselves, otherwise the
				// rendered template re-tokenizes differently (a following
				// backtick would pair with the dangling one across the
				// inserted space — found by FuzzNormalize).
				tokens = append(tokens, sql[i:j]+"`")
			}
			i = j
		case isDigit(c) && !prevIsIdentifier(tokens):
			// Numeric literal (integer, decimal, scientific, hex).
			i = skipNumber(sql, i)
			tokens = append(tokens, Placeholder)
		case c == '-' && i+1 < n && sql[i+1] == '-':
			// Line comment: drop entirely.
			for i < n && sql[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && sql[i+1] == '*':
			// Block comment: drop entirely.
			j := i + 2
			for j+1 < n && !(sql[j] == '*' && sql[j+1] == '/') {
				j++
			}
			if j+1 < n {
				j += 2
			} else {
				j = n
			}
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(sql[j]) {
				j++
			}
			word := sql[i:j]
			if isKeyword(word) {
				tokens = append(tokens, strings.ToUpper(word))
			} else {
				tokens = append(tokens, word)
			}
			i = j
		case (c == '-' || c == '+') && i+1 < n && isDigit(sql[i+1]) && startsLiteralContext(tokens):
			// Signed numeric literal after an operator/comparison.
			i = skipNumber(sql, i+1)
			tokens = append(tokens, Placeholder)
		default:
			// Punctuation / operator, possibly multi-char (<=, >=, <>, !=).
			j := i + 1
			if j < n && isComparisonPair(sql[i], sql[j]) {
				j++
			}
			tokens = append(tokens, sql[i:j])
			i = j
		}
	}
	return tokens
}

func skipString(sql string, i int) int {
	quote := sql[i]
	n := len(sql)
	j := i + 1
	for j < n {
		switch sql[j] {
		case '\\':
			j += 2
			continue
		case quote:
			if j+1 < n && sql[j+1] == quote { // doubled-quote escape
				j += 2
				continue
			}
			return j + 1
		}
		j++
	}
	return n
}

func skipNumber(sql string, i int) int {
	n := len(sql)
	j := i
	if j+1 < n && sql[j] == '0' && (sql[j+1] == 'x' || sql[j+1] == 'X') {
		j += 2
		for j < n && isHexDigit(sql[j]) {
			j++
		}
		return j
	}
	for j < n && (isDigit(sql[j]) || sql[j] == '.') {
		j++
	}
	if j < n && (sql[j] == 'e' || sql[j] == 'E') {
		k := j + 1
		if k < n && (sql[k] == '+' || sql[k] == '-') {
			k++
		}
		if k < n && isDigit(sql[k]) {
			for k < n && isDigit(sql[k]) {
				k++
			}
			j = k
		}
	}
	return j
}

// collapseInLists rewrites "IN ( ? , ? , ? )" token runs into "IN ( ? )" so
// queries differing only in IN-list arity share a template.
func collapseInLists(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	i := 0
	for i < len(tokens) {
		if strings.EqualFold(tokens[i], "IN") && i+2 < len(tokens) && tokens[i+1] == "(" {
			// Check that the parenthesized run is only placeholders and commas.
			j := i + 2
			onlyPlaceholders := false
			for j < len(tokens) {
				if tokens[j] == ")" {
					onlyPlaceholders = j > i+2
					break
				}
				if tokens[j] != Placeholder && tokens[j] != "," {
					break
				}
				j++
			}
			if onlyPlaceholders && j < len(tokens) && tokens[j] == ")" {
				out = append(out, "IN", "(", Placeholder, ")")
				i = j + 1
				continue
			}
		}
		out = append(out, tokens[i])
		i++
	}
	return out
}

// needsSpace decides whether two adjacent tokens need a separating space in
// the rendered template.
func needsSpace(prev, cur string) bool {
	if cur == "," || cur == ")" || cur == ";" {
		return false
	}
	if prev == "(" || prev == "." {
		return false
	}
	if cur == "." {
		return false
	}
	if cur == "(" {
		// Tight call syntax only after function names: COUNT(*), SUM(x).
		return !isFunctionName(prev)
	}
	return true
}

// isFunctionName reports whether tok is a SQL function that renders with a
// tight opening parenthesis.
func isFunctionName(tok string) bool {
	switch strings.ToUpper(tok) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "COALESCE", "IFNULL",
		"NOW", "DATE", "LENGTH", "LOWER", "UPPER", "SUBSTR", "CONCAT":
		return true
	}
	return false
}

func isWordToken(tok string) bool {
	if tok == "" {
		return false
	}
	return isIdentStart(tok[0]) || tok[0] == '`'
}

func prevIsIdentifier(tokens []string) bool {
	if len(tokens) == 0 {
		return false
	}
	last := tokens[len(tokens)-1]
	// A digit directly following an identifier tail is part of the
	// identifier-ish stream (e.g. table names like user_1 already consumed);
	// tokenize only reaches here when the digit starts a new token, so the
	// relevant case is "identifier <space> 123" which IS a literal. Only a
	// dot joining means it's a qualified part, handled by ident scanning.
	return last == "."
}

func startsLiteralContext(tokens []string) bool {
	if len(tokens) == 0 {
		return true
	}
	switch tokens[len(tokens)-1] {
	case "=", "<", ">", "<=", ">=", "<>", "!=", "(", ",", "+", "-", "*", "/":
		return true
	}
	return false
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c|0x20 >= 'a' && c|0x20 <= 'f') }

// isIdentStart treats every non-ASCII byte as part of an identifier, as
// MySQL does for unquoted identifiers: a multibyte UTF-8 rune must stay
// one token, or normalization would split it into invalid byte fragments
// (found by FuzzNormalize).
func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= utf8.RuneSelf || unicode.IsLetter(rune(c))
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isComparisonPair(a, b byte) bool {
	switch {
	case a == '<' && (b == '=' || b == '>'):
		return true
	case a == '>' && b == '=':
		return true
	case a == '!' && b == '=':
		return true
	case a == ':' && b == '=':
		return true
	}
	return false
}

// keywords is the set of SQL keywords uppercased during normalization. It
// intentionally covers the dialect the workload generator emits plus common
// MySQL DDL/DML; unlisted words are treated as identifiers and preserved.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "OUTER": true, "ON": true, "GROUP": true,
	"BY": true, "ORDER": true, "HAVING": true, "LIMIT": true, "OFFSET": true,
	"AS": true, "DISTINCT": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "LIKE": true, "BETWEEN": true, "IS": true,
	"NULL": true, "ASC": true, "DESC": true, "UNION": true, "ALL": true,
	"CREATE": true, "ALTER": true, "DROP": true, "TABLE": true, "INDEX": true,
	"ADD": true, "COLUMN": true, "PRIMARY": true, "KEY": true, "FOREIGN": true,
	"REFERENCES": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"FOR": true, "SHOW": true, "STATUS": true, "EXISTS": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "IF": true,
	"TRUNCATE": true, "REPLACE": true, "LOCK": true, "UNLOCK": true,
}

func isKeyword(word string) bool { return keywords[strings.ToUpper(word)] }
