package repair

import (
	"strings"
	"testing"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// fakeCase builds a minimal anomaly case with one template whose
// examined-rows series spikes inside the anomaly window.
func fakeCase(metric string, feature anomaly.Feature) *anomaly.Case {
	n := 300
	as, ae := 200, 260
	count := make(timeseries.Series, n)
	rows := make(timeseries.Series, n)
	rt := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		count[i] = 10 + float64(i%2)
		rows[i] = 100 + float64(i%3)
		rt[i] = 50
		if i >= as && i < ae {
			count[i] += 40
			rows[i] += 100_000
			rt[i] += 5000
		}
	}
	snap := &collect.Snapshot{
		Seconds: n,
		Templates: []*collect.TemplateSeries{{
			Meta:    collect.TemplateMeta{ID: "RSQL1", Table: "orders"},
			Count:   count,
			SumRT:   rt,
			SumRows: rows,
		}},
	}
	return anomaly.NewCase(snap, anomaly.Phenomenon{
		Rule:  metric + "_anomaly",
		Start: as,
		End:   ae,
		Events: []anomaly.Event{
			{Metric: metric, Feature: feature, Start: as, End: ae},
		},
	})
}

func TestParseConfig(t *testing.T) {
	data := []byte(`{"rules":[{"name":"r1","when":{"metric":"cpu_usage","feature":"spike"},"actions":["optimize"],"auto_execute":true,"notify":["sms"]}]}`)
	cfg, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Rules) != 1 || cfg.Rules[0].Name != "r1" || !cfg.Rules[0].AutoExecute {
		t.Errorf("config = %+v", cfg)
	}
}

func TestParseConfigRejectsUnknownAction(t *testing.T) {
	data := []byte(`{"rules":[{"name":"bad","when":{"metric":"x","feature":"spike"},"actions":["explode"]}]}`)
	if _, err := ParseConfig(data); err == nil || !strings.Contains(err.Error(), "explode") {
		t.Errorf("error = %v", err)
	}
}

func TestParseConfigRejectsGarbage(t *testing.T) {
	if _, err := ParseConfig([]byte("not json")); err == nil {
		t.Error("garbage config accepted")
	}
}

func TestSuggestSessionPileup(t *testing.T) {
	m := New(DefaultConfig(), Optimizer{})
	c := fakeCase(anomaly.MetricActiveSession, anomaly.SpikeUp)
	sugg := m.Suggest(c, []sqltemplate.ID{"RSQL1"})
	var actions []string
	for _, s := range sugg {
		actions = append(actions, s.Action)
		if s.Template != "RSQL1" {
			t.Errorf("suggestion targets %q", s.Template)
		}
	}
	if len(actions) != 2 || actions[0] != ActionThrottle || actions[1] != ActionOptimize {
		t.Errorf("actions = %v, want [throttle optimize]", actions)
	}
	// Default throttle: half the anomaly-window rate (≈ 50/2).
	if sugg[0].Value < 20 || sugg[0].Value > 30 {
		t.Errorf("throttle QPS = %v, want ≈ 25", sugg[0].Value)
	}
}

func TestSuggestCPUBurnRequiresRowsSpike(t *testing.T) {
	m := New(DefaultConfig(), Optimizer{})
	c := fakeCase(anomaly.MetricCPUUsage, anomaly.SpikeUp)
	sugg := m.Suggest(c, []sqltemplate.ID{"RSQL1"})
	found := false
	for _, s := range sugg {
		if s.Rule == "cpu-burn" && s.Action == ActionOptimize {
			found = true
			if len(s.Notify) == 0 {
				t.Error("cpu-burn suggestion should carry notify channels")
			}
		}
	}
	if !found {
		t.Errorf("no cpu-burn optimize suggestion: %+v", sugg)
	}

	// Flatten the rows series: the template condition must now fail.
	flat := fakeCase(anomaly.MetricCPUUsage, anomaly.SpikeUp)
	for i := range flat.Snapshot.Templates[0].SumRows {
		flat.Snapshot.Templates[0].SumRows[i] = 100
	}
	for _, s := range m.Suggest(flat, []sqltemplate.ID{"RSQL1"}) {
		if s.Rule == "cpu-burn" {
			t.Errorf("cpu-burn fired without a rows spike: %+v", s)
		}
	}
}

func TestSuggestNoMatchWrongMetric(t *testing.T) {
	m := New(DefaultConfig(), Optimizer{})
	c := fakeCase(anomaly.MetricMemUsage, anomaly.SpikeUp)
	if sugg := m.Suggest(c, []sqltemplate.ID{"RSQL1"}); len(sugg) != 0 {
		t.Errorf("suggestions for unmatched metric: %+v", sugg)
	}
}

func TestSuggestLevelShiftSatisfiesSpike(t *testing.T) {
	m := New(DefaultConfig(), Optimizer{})
	c := fakeCase(anomaly.MetricActiveSession, anomaly.LevelShiftUp)
	if sugg := m.Suggest(c, []sqltemplate.ID{"RSQL1"}); len(sugg) == 0 {
		t.Error("level shift should satisfy a spike condition")
	}
}

type fakeSpec struct{ rows, time float64 }

func (f *fakeSpec) ApplyOptimization(rowsFactor, timeFactor float64) {
	f.rows = rowsFactor
	f.time = timeFactor
}

func TestExecute(t *testing.T) {
	m := New(DefaultConfig(), Optimizer{})
	c := fakeCase(anomaly.MetricActiveSession, anomaly.SpikeUp)
	sugg := m.Suggest(c, []sqltemplate.ID{"RSQL1"})

	inst := dbsim.NewInstance(dbsim.DefaultConfig())
	spec := &fakeSpec{}
	env := Environment{
		Throttler:   inst,
		Scaler:      inst,
		SpecOf:      func(id sqltemplate.ID) Optimizable { return spec },
		AutoExecute: true,
	}
	done := m.Execute(env, sugg)
	for _, s := range done {
		if !s.Executed {
			t.Errorf("suggestion not executed: %+v", s)
		}
	}
	if _, ok := inst.Throttled("RSQL1"); !ok {
		t.Error("throttle not installed on instance")
	}
	if spec.rows != 12 || spec.time != 12 {
		t.Errorf("optimization factors = %v/%v, want 12/12", spec.rows, spec.time)
	}
}

func TestExecuteRespectsAutoExecuteSwitch(t *testing.T) {
	m := New(DefaultConfig(), Optimizer{})
	c := fakeCase(anomaly.MetricActiveSession, anomaly.SpikeUp)
	sugg := m.Suggest(c, []sqltemplate.ID{"RSQL1"})
	inst := dbsim.NewInstance(dbsim.DefaultConfig())
	env := Environment{Throttler: inst, Scaler: inst, AutoExecute: false}
	done := m.Execute(env, sugg)
	for _, s := range done {
		if s.Executed {
			t.Errorf("suggestion executed without authorization: %+v", s)
		}
	}
	if _, ok := inst.Throttled("RSQL1"); ok {
		t.Error("throttle installed despite AutoExecute=false")
	}
}

func TestExecuteAutoScale(t *testing.T) {
	cfg := Config{Rules: []Rule{{
		Name:        "grow",
		When:        Condition{Metric: anomaly.MetricActiveSession, Feature: "spike"},
		Actions:     []string{ActionAutoScale},
		AutoExecute: true,
	}}}
	m := New(cfg, Optimizer{})
	c := fakeCase(anomaly.MetricActiveSession, anomaly.SpikeUp)
	sugg := m.Suggest(c, nil)
	if len(sugg) != 1 || sugg[0].Action != ActionAutoScale {
		t.Fatalf("suggestions = %+v", sugg)
	}
	inst := dbsim.NewInstance(dbsim.DefaultConfig())
	before := inst.Cores()
	m.Execute(Environment{Scaler: inst}, sugg)
	if inst.Cores() != before*2 {
		t.Errorf("cores %d → %d, want 2×", before, inst.Cores())
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := New(Config{}, Optimizer{})
	if len(m.cfg.Rules) == 0 {
		t.Error("default rules not applied")
	}
	if m.opt.RowsFactor != 12 {
		t.Error("default optimizer not applied")
	}
}

func TestTimedThrottleExecution(t *testing.T) {
	cfg := Config{Rules: []Rule{{
		Name:                "bounded",
		When:                Condition{Metric: anomaly.MetricActiveSession, Feature: "spike"},
		Actions:             []string{ActionThrottle},
		AutoExecute:         true,
		ThrottleQPS:         5,
		ThrottleDurationSec: 60,
	}}}
	m := New(cfg, Optimizer{})
	c := fakeCase(anomaly.MetricActiveSession, anomaly.SpikeUp)
	sugg := m.Suggest(c, []sqltemplate.ID{"RSQL1"})
	if len(sugg) != 1 || sugg[0].DurationMs != 60_000 {
		t.Fatalf("suggestions = %+v", sugg)
	}
	inst := dbsim.NewInstance(dbsim.DefaultConfig())
	done := m.Execute(Environment{Throttler: inst, NowMs: 10_000}, sugg)
	if !done[0].Executed {
		t.Fatal("not executed")
	}
	if qps, ok := inst.Throttled("RSQL1"); !ok || qps != 5 {
		t.Errorf("throttle = %v, %v", qps, ok)
	}
}
