// Package repair implements PinSQL's Repairing Module (§VII): rule-driven
// problem-solving actions on the pinpointed R-SQLs. Three actions are
// provided — SQL Throttling, Query Optimization and Instance AutoScale —
// behind a user-editable configuration (Fig. 5): each rule matches a
// detected anomaly phenomenon, optionally requires an anomalous feature on
// the R-SQL's own template metrics (e.g. a #examined_rows spike), and lists
// the actions to suggest. Actions are only executed when the rule enables
// automatic execution; otherwise they remain suggestions for the DBA.
package repair

import (
	"encoding/json"
	"fmt"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// Action names used in configuration.
const (
	ActionThrottle  = "throttle"
	ActionOptimize  = "optimize"
	ActionAutoScale = "autoscale"
)

// Condition matches a metric/feature pair, e.g. {cpu_usage, spike}.
type Condition struct {
	Metric  string `json:"metric"`
	Feature string `json:"feature"`
}

// Rule is one configuration entry (the JSON shape mirrors Fig. 5).
type Rule struct {
	Name string `json:"name"`
	// When matches the detected anomaly phenomenon.
	When Condition `json:"when"`
	// TemplateWhen, if set, additionally requires the anomalous feature
	// on the R-SQL's own metric series ("the algorithm is adapted again
	// for detecting the anomaly phenomenon of SQL template metrics").
	TemplateWhen *Condition `json:"template_when,omitempty"`
	Actions      []string   `json:"actions"`
	AutoExecute  bool       `json:"auto_execute"`
	// Notify lists channels (DingTalk/SMS) to receive the anomaly status;
	// notifications are recorded on the suggestion, not delivered.
	Notify []string `json:"notify,omitempty"`

	// Action parameters.
	ThrottleQPS float64 `json:"throttle_qps,omitempty"` // 0 → half the observed rate
	// ThrottleDurationSec bounds the throttle's lifetime ("users can
	// customize the time duration of the throttling"); 0 → indefinite.
	ThrottleDurationSec int     `json:"throttle_duration_sec,omitempty"`
	ScaleFactor         float64 `json:"scale_factor,omitempty"` // 0 → 2×
}

// Config is the module's rule set.
type Config struct {
	Rules []Rule `json:"rules"`
}

// ParseConfig decodes a JSON rule set.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("repair: parsing config: %w", err)
	}
	for i, r := range cfg.Rules {
		for _, a := range r.Actions {
			switch a {
			case ActionThrottle, ActionOptimize, ActionAutoScale:
			default:
				return Config{}, fmt.Errorf("repair: rule %d (%s): unknown action %q", i, r.Name, a)
			}
		}
	}
	return cfg, nil
}

// DefaultConfig is the paper's default behaviour: throttle-then-optimize on
// active-session anomalies, optimize on CPU/IO anomalies whose R-SQL shows
// an examined-rows spike (§VII: Query Optimization "is configured to
// execute only when the anomaly phenomenon … is related to CPU/IO usage").
func DefaultConfig() Config {
	return Config{Rules: []Rule{
		{
			Name:    "session-pileup",
			When:    Condition{Metric: anomaly.MetricActiveSession, Feature: "spike"},
			Actions: []string{ActionThrottle, ActionOptimize},
		},
		{
			Name:         "cpu-burn",
			When:         Condition{Metric: anomaly.MetricCPUUsage, Feature: "spike"},
			TemplateWhen: &Condition{Metric: "examined_rows", Feature: "spike"},
			Actions:      []string{ActionOptimize},
			Notify:       []string{"dingtalk"},
		},
		{
			Name:    "io-burn",
			When:    Condition{Metric: anomaly.MetricIOPSUsage, Feature: "spike"},
			Actions: []string{ActionOptimize},
		},
	}}
}

// Suggestion is one recommended action on one R-SQL (or the instance).
type Suggestion struct {
	Rule     string
	Action   string
	Template sqltemplate.ID // empty for instance-level actions (autoscale)
	// Params: throttle → max QPS; autoscale → scale factor.
	Value float64
	// DurationMs bounds a throttle's lifetime; 0 → indefinite.
	DurationMs int64
	Reason     string
	Notify     []string
	Executed   bool
}

// Throttler installs per-template rate limits (dbsim.Instance implements it).
type Throttler interface {
	SetThrottle(templateID string, maxQPS float64)
}

// TimedThrottler additionally supports expiring rate limits
// (dbsim.Instance implements it). Execute prefers it when a rule sets a
// throttle duration.
type TimedThrottler interface {
	SetThrottleUntil(templateID string, maxQPS float64, untilMs int64)
}

// Scaler resizes the instance (dbsim.Instance implements it).
type Scaler interface {
	Cores() int
	SetCores(n int)
}

// Optimizable is a workload statement that a query optimization (automatic
// indexing + rewrite) can improve; workload.Spec implements it.
type Optimizable interface {
	ApplyOptimization(rowsFactor, timeFactor float64)
}

// Environment wires the module to its actuators.
type Environment struct {
	Throttler Throttler
	Scaler    Scaler
	// SpecOf resolves a template to its optimizable statement; nil specs
	// skip optimization (e.g. statements the optimizer cannot rewrite).
	SpecOf func(id sqltemplate.ID) Optimizable
	// AutoExecute globally enables execution of suggestions ("users can
	// enable the automatic execution of suggested actions").
	AutoExecute bool
	// NowMs is the virtual time at which actions are applied; expiring
	// throttles are installed until NowMs + duration.
	NowMs int64
}

// Optimizer models the DAS query optimizer (automatic indexing + SQL
// rewrite): an accepted optimization divides the statement's examined rows
// and service time by the configured factors, which lands the Table II
// gains (~92 %) when the statement's slowness was self-inflicted.
type Optimizer struct {
	RowsFactor float64 // examined-rows divisor, default 12
	TimeFactor float64 // service-time divisor, default 12
}

// DefaultOptimizer matches the Table II calibration.
func DefaultOptimizer() Optimizer { return Optimizer{RowsFactor: 12, TimeFactor: 12} }

// Module evaluates rules and performs actions.
type Module struct {
	cfg Config
	opt Optimizer
}

// New creates a repairing module; zero-valued arguments use defaults.
func New(cfg Config, opt Optimizer) *Module {
	if len(cfg.Rules) == 0 {
		cfg = DefaultConfig()
	}
	if opt.RowsFactor <= 0 || opt.TimeFactor <= 0 {
		opt = DefaultOptimizer()
	}
	return &Module{cfg: cfg, opt: opt}
}

// Suggest matches the case's phenomenon against the rules and produces
// suggestions for the top R-SQLs. rsqls should be the head of the R-SQL
// ranking (the module acts on the pinpointed statements only, treating the
// downstream repairs as black boxes).
func (m *Module) Suggest(c *anomaly.Case, rsqls []sqltemplate.ID) []Suggestion {
	var out []Suggestion
	det := anomaly.NewDetector(anomaly.Config{})
	for _, rule := range m.cfg.Rules {
		if !m.phenomenonMatches(rule.When, c) {
			continue
		}
		for _, action := range rule.Actions {
			switch action {
			case ActionAutoScale:
				out = append(out, Suggestion{
					Rule:   rule.Name,
					Action: ActionAutoScale,
					Value:  scaleFactorOr(rule.ScaleFactor),
					Reason: "anticipated traffic growth; scale instead of throttling",
					Notify: rule.Notify,
				})
			case ActionThrottle, ActionOptimize:
				for _, id := range rsqls {
					ts := c.Snapshot.Template(id)
					if ts == nil {
						continue
					}
					if rule.TemplateWhen != nil && !templateMatches(det, *rule.TemplateWhen, ts, c) {
						continue
					}
					s := Suggestion{
						Rule:     rule.Name,
						Action:   action,
						Template: id,
						Notify:   rule.Notify,
					}
					if action == ActionThrottle {
						s.Value = rule.ThrottleQPS
						if s.Value <= 0 {
							// Default: half the anomaly-window rate.
							s.Value = ts.Count.Slice(c.AS, c.AE).Mean() / 2
							if s.Value < 1 {
								s.Value = 1
							}
						}
						s.DurationMs = int64(rule.ThrottleDurationSec) * 1000
						s.Reason = "rate-limit the root-cause statement"
					} else {
						s.Reason = "report to the query optimizer (auto index / rewrite)"
					}
					out = append(out, s)
				}
			}
		}
	}
	return out
}

// Execute performs the suggestions against the environment, honoring the
// global and per-rule auto-execution switches, and marks what ran.
func (m *Module) Execute(env Environment, suggestions []Suggestion) []Suggestion {
	ruleAuto := make(map[string]bool, len(m.cfg.Rules))
	for _, r := range m.cfg.Rules {
		ruleAuto[r.Name] = r.AutoExecute
	}
	for i := range suggestions {
		s := &suggestions[i]
		if !env.AutoExecute && !ruleAuto[s.Rule] {
			continue
		}
		switch s.Action {
		case ActionThrottle:
			if env.Throttler == nil {
				break
			}
			if tt, ok := env.Throttler.(TimedThrottler); ok && s.DurationMs > 0 {
				tt.SetThrottleUntil(string(s.Template), s.Value, env.NowMs+s.DurationMs)
			} else {
				env.Throttler.SetThrottle(string(s.Template), s.Value)
			}
			s.Executed = true
		case ActionOptimize:
			if env.SpecOf != nil {
				if spec := env.SpecOf(s.Template); spec != nil {
					spec.ApplyOptimization(m.opt.RowsFactor, m.opt.TimeFactor)
					s.Executed = true
				}
			}
		case ActionAutoScale:
			if env.Scaler != nil {
				cur := env.Scaler.Cores()
				target := int(float64(cur) * s.Value)
				if target <= cur {
					target = cur + 1
				}
				env.Scaler.SetCores(target)
				s.Executed = true
			}
		}
	}
	return suggestions
}

// phenomenonMatches checks the case's phenomenon against a rule condition.
// The phenomenon's rule name encodes the metric (see anomaly.DefaultRules);
// its events carry the concrete features.
func (m *Module) phenomenonMatches(cond Condition, c *anomaly.Case) bool {
	for _, ev := range c.Phenomenon.Events {
		if ev.Metric != cond.Metric {
			continue
		}
		if featureName(ev.Feature) == cond.Feature || cond.Feature == "" {
			return true
		}
		// A level shift satisfies a "spike" condition: both are upward
		// excursions; configs usually say "spike" for either.
		if cond.Feature == "spike" && ev.Feature == anomaly.LevelShiftUp {
			return true
		}
	}
	return false
}

func featureName(f anomaly.Feature) string { return f.String() }

// templateMatches re-runs the feature detector on the template's own metric
// series inside the case window.
func templateMatches(det *anomaly.Detector, cond Condition, ts *collect.TemplateSeries, c *anomaly.Case) bool {
	var series timeseries.Series
	switch cond.Metric {
	case "examined_rows":
		series = ts.SumRows
	case "execution_count":
		series = ts.Count
	case "response_time":
		series = ts.SumRT
	default:
		return false
	}
	for _, ev := range det.DetectFeatures(cond.Metric, series) {
		if featureName(ev.Feature) != cond.Feature && !(cond.Feature == "spike" && ev.Feature == anomaly.LevelShiftUp) {
			continue
		}
		// The feature must overlap the anomaly window.
		if ev.Start < c.AE && c.AS < ev.End {
			return true
		}
	}
	return false
}

func scaleFactorOr(v float64) float64 {
	if v <= 1 {
		return 2
	}
	return v
}
