// Package timeseries provides the time-series primitives that every PinSQL
// module builds on: basic statistics, Pearson and weighted Pearson
// correlation, the sigmoid anomaly-period weight from the paper (§V),
// min-max normalization, Tukey's rule and robust spike detection (§IV-B,
// §VI), mean-squared error, and polynomial least-squares fitting (Fig. 7).
//
// A Series is a plain []float64 sampled at a fixed interval. Following
// Definition II.1 of the paper, accessing an element by timestamp is
// equivalent to accessing it by index once the caller subtracts the start
// time and divides by the interval; the packages above this one do that
// translation, so everything here is index-based.
package timeseries

import (
	"errors"
	"math"
	"sort"
)

// Series is a fixed-interval sequence of observations (Definition II.1).
type Series []float64

// ErrLengthMismatch reports that two series passed to a pairwise operation
// have different lengths.
var ErrLengthMismatch = errors.New("timeseries: series length mismatch")

// Clone returns a copy of s that shares no storage with s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Sum returns the sum of all observations.
func (s Series) Sum() float64 {
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s))
}

// Var returns the population variance, or 0 for an empty series.
func (s Series) Var() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(s))
}

// Std returns the population standard deviation.
func (s Series) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or +Inf for an empty series.
func (s Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or -Inf for an empty series.
func (s Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	return max
}

// Add returns the element-wise sum of s and t.
func (s Series) Add(t Series) (Series, error) {
	if len(s) != len(t) {
		return nil, ErrLengthMismatch
	}
	out := make(Series, len(s))
	for i := range s {
		out[i] = s[i] + t[i]
	}
	return out, nil
}

// AddInPlace accumulates t into s element-wise. The series must have equal
// lengths.
func (s Series) AddInPlace(t Series) error {
	if len(s) != len(t) {
		return ErrLengthMismatch
	}
	for i := range s {
		s[i] += t[i]
	}
	return nil
}

// Div returns the element-wise ratio s/t. Positions where t is zero yield
// zero rather than Inf/NaN: in PinSQL the denominator is the instance active
// session, and an idle second contributes no impact signal (§V,
// scale-trend-level).
func (s Series) Div(t Series) (Series, error) {
	if len(s) != len(t) {
		return nil, ErrLengthMismatch
	}
	out := make(Series, len(s))
	for i := range s {
		if t[i] != 0 {
			out[i] = s[i] / t[i]
		}
	}
	return out, nil
}

// Slice returns s[lo:hi] clamped to the valid index range, so callers can
// pass anomaly windows that overrun the trace boundary without panicking.
func (s Series) Slice(lo, hi int) Series {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	if lo >= hi {
		return Series{}
	}
	return s[lo:hi]
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It returns 0 for an empty series.
func (s Series) Quantile(q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sorted := s.Clone()
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func (s Series) Median() float64 { return s.Quantile(0.5) }

// MAD returns the median absolute deviation from the median.
func (s Series) MAD() float64 {
	if len(s) == 0 {
		return 0
	}
	med := s.Median()
	dev := make(Series, len(s))
	for i, v := range s {
		dev[i] = math.Abs(v - med)
	}
	return dev.Median()
}

// Downsample aggregates consecutive groups of factor samples using sum,
// producing a coarser-granularity series (e.g. 1 s → 1 min with factor 60).
// A trailing partial group is aggregated as-is.
func (s Series) Downsample(factor int) Series {
	if factor <= 1 || len(s) == 0 {
		return s.Clone()
	}
	out := make(Series, 0, (len(s)+factor-1)/factor)
	for i := 0; i < len(s); i += factor {
		hi := i + factor
		if hi > len(s) {
			hi = len(s)
		}
		out = append(out, Series(s[i:hi]).Sum())
	}
	return out
}

// MinMax rescales s into [0,1]. A constant series maps to all zeros, which
// keeps downstream scores finite (the paper's min-max normalization feeds
// the scale-level score, §V).
func (s Series) MinMax() Series {
	out := make(Series, len(s))
	min, max := s.Min(), s.Max()
	span := max - min
	if span == 0 || math.IsInf(min, 0) {
		return out
	}
	for i, v := range s {
		out[i] = (v - min) / span
	}
	return out
}

// MSE returns the mean squared error between two equal-length series.
func MSE(a, b Series) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, nil
	}
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc / float64(len(a)), nil
}
