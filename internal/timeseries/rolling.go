package timeseries

import (
	"math"
	"sort"
)

// Rolling maintains the order statistics of a growing series under append:
// median, arbitrary quantiles, the median absolute deviation and Tukey's
// fences, each available at any point without re-sorting the window. It is
// the incremental engine behind the Basic Perception Layer's per-second
// updates: a batch detector pays an O(n log n) sort per query, a Rolling
// pays O(log n + C) per append (C the chunk size) and answers order
// statistics by merging at most two sorted runs.
//
// Determinism contract: every statistic is bit-identical (math.Float64bits)
// to the batch reference on the same finite values — Quantile to
// Series.Quantile, Median to Series.Median, MAD to Series.MAD, TukeyBounds
// to Series.TukeyBounds. The rolling detector path must never change a
// diagnosis byte, so the interpolation formulas below mirror series.go
// exactly and the deviation merge in MAD reproduces the sorted deviation
// array element-for-element (IEEE 754 subtraction is sign-symmetric, so
// med-v equals math.Abs(v-med) bitwise for finite inputs). NaN values are
// outside the contract, as they are for the batch sort.
type Rolling struct {
	// chunks holds the observed values as a sequence of sorted runs:
	// every element of chunks[i] is ≤ every element of chunks[i+1], and
	// each run stays within [1, 2*rollingChunk) elements. Insertion cost
	// is a binary search over run boundaries plus one bounded memmove.
	chunks [][]float64
	n      int
}

// rollingChunk is the target sorted-run length: runs split at twice this.
// 256 keeps the per-append memmove under two cache lines' worth of
// float64s while keeping the run count (and thus rank-walk cost) at n/256.
const rollingChunk = 256

// NewRolling returns an empty rolling-statistics accumulator.
func NewRolling() *Rolling { return &Rolling{} }

// Len returns the number of appended observations.
func (r *Rolling) Len() int { return r.n }

// Append adds one observation.
func (r *Rolling) Append(v float64) {
	r.n++
	if len(r.chunks) == 0 {
		c := make([]float64, 1, rollingChunk)
		c[0] = v
		r.chunks = append(r.chunks, c)
		return
	}
	// First chunk whose last element is ≥ v; v beyond every chunk goes
	// into the last one.
	ci := sort.Search(len(r.chunks), func(i int) bool {
		c := r.chunks[i]
		return c[len(c)-1] >= v
	})
	if ci == len(r.chunks) {
		ci--
	}
	c := r.chunks[ci]
	i := sort.SearchFloat64s(c, v)
	c = append(c, 0)
	copy(c[i+1:], c[i:])
	c[i] = v
	if len(c) < 2*rollingChunk {
		r.chunks[ci] = c
		return
	}
	// Split the run in two to bound the next memmove.
	mid := len(c) / 2
	right := make([]float64, len(c)-mid, rollingChunk*2)
	copy(right, c[mid:])
	r.chunks[ci] = c[:mid]
	r.chunks = append(r.chunks, nil)
	copy(r.chunks[ci+2:], r.chunks[ci+1:])
	r.chunks[ci+1] = right
}

// AppendAll adds every observation of s in order.
func (r *Rolling) AppendAll(s Series) {
	for _, v := range s {
		r.Append(v)
	}
}

// at returns the k-th smallest observation (0-based). k must be in [0, n).
func (r *Rolling) at(k int) float64 {
	for _, c := range r.chunks {
		if k < len(c) {
			return c[k]
		}
		k -= len(c)
	}
	panic("timeseries: Rolling rank out of range")
}

// rankGE returns the number of observations strictly below v — the rank of
// the first observation ≥ v in sorted order.
func (r *Rolling) rankGE(v float64) int {
	rank := 0
	for _, c := range r.chunks {
		if c[len(c)-1] < v {
			rank += len(c)
			continue
		}
		return rank + sort.SearchFloat64s(c, v)
	}
	return rank
}

// Quantile returns the q-th quantile with linear interpolation between
// closest ranks, bit-identical to Series.Quantile over the same values. It
// returns 0 when empty.
func (r *Rolling) Quantile(q float64) float64 {
	if r.n == 0 {
		return 0
	}
	if q <= 0 {
		return r.at(0)
	}
	if q >= 1 {
		return r.at(r.n - 1)
	}
	pos := q * float64(r.n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return r.at(lo)
	}
	frac := pos - float64(lo)
	return r.at(lo)*(1-frac) + r.at(hi)*frac
}

// Median returns the 0.5 quantile.
func (r *Rolling) Median() float64 { return r.Quantile(0.5) }

// TukeyBounds returns Tukey's outlier fences with multiplier k,
// bit-identical to Series.TukeyBounds.
func (r *Rolling) TukeyBounds(k float64) (lo, hi float64) {
	q1 := r.Quantile(0.25)
	q3 := r.Quantile(0.75)
	iqr := q3 - q1
	return q1 - k*iqr, q3 + k*iqr
}

// cursor walks the chunked sorted order from a starting rank, forward or
// backward, in O(1) amortized per step.
type cursor struct {
	r  *Rolling
	ci int
	i  int
}

// newCursor positions a cursor at the given sorted rank. The rank may be -1
// (before the first element) or n (past the last); valid() is false there.
func (r *Rolling) newCursor(rank int) cursor {
	c := cursor{r: r}
	if rank < 0 {
		c.ci, c.i = -1, 0
		return c
	}
	for c.ci = 0; c.ci < len(r.chunks); c.ci++ {
		if rank < len(r.chunks[c.ci]) {
			c.i = rank
			return c
		}
		rank -= len(r.chunks[c.ci])
	}
	c.i = 0 // ci == len(chunks): past the end
	return c
}

func (c *cursor) valid() bool { return c.ci >= 0 && c.ci < len(c.r.chunks) }

func (c *cursor) value() float64 { return c.r.chunks[c.ci][c.i] }

func (c *cursor) advance() {
	c.i++
	if c.i >= len(c.r.chunks[c.ci]) {
		c.ci++
		c.i = 0
	}
}

func (c *cursor) retreat() {
	c.i--
	if c.i < 0 {
		c.ci--
		if c.ci >= 0 {
			c.i = len(c.r.chunks[c.ci]) - 1
		} else {
			c.i = 0
		}
	}
}

// MAD returns the median absolute deviation from the median, bit-identical
// to Series.MAD over the same values.
//
// The batch reference sorts the deviation array |v−med| and interpolates
// its median. That sorted array is the ascending merge of two runs the
// chunked order already contains: values below the median walked backward
// (deviation med−v, increasing) and values at/above it walked forward
// (deviation v−med, increasing). Selecting to the median rank through that
// merge touches n/2+1 elements and allocates nothing.
func (r *Rolling) MAD() float64 {
	if r.n == 0 {
		return 0
	}
	med := r.Median()
	split := r.rankGE(med)
	back := r.newCursor(split - 1)
	fwd := r.newCursor(split)

	pos := 0.5 * float64(r.n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	var dLo, dHi float64
	for k := 0; k <= hi; k++ {
		var d float64
		switch {
		case back.valid() && fwd.valid():
			bd := med - back.value()
			fd := fwd.value() - med
			if bd <= fd {
				d = bd
				back.retreat()
			} else {
				d = fd
				fwd.advance()
			}
		case back.valid():
			d = med - back.value()
			back.retreat()
		default:
			d = fwd.value() - med
			fwd.advance()
		}
		if k == lo {
			dLo = d
		}
		if k == hi {
			dHi = d
		}
	}
	if lo == hi {
		return dLo
	}
	frac := pos - float64(lo)
	return dLo*(1-frac) + dHi*frac
}
