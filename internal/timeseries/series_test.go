package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSumMeanVarStd(t *testing.T) {
	tests := []struct {
		name string
		s    Series
		sum  float64
		mean float64
		vari float64
	}{
		{"empty", Series{}, 0, 0, 0},
		{"single", Series{4}, 4, 4, 0},
		{"constant", Series{2, 2, 2, 2}, 8, 2, 0},
		{"simple", Series{1, 2, 3, 4}, 10, 2.5, 1.25},
		{"negative", Series{-1, 1}, 0, 0, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Sum(); !almostEqual(got, tc.sum, 1e-12) {
				t.Errorf("Sum = %v, want %v", got, tc.sum)
			}
			if got := tc.s.Mean(); !almostEqual(got, tc.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, tc.mean)
			}
			if got := tc.s.Var(); !almostEqual(got, tc.vari, 1e-12) {
				t.Errorf("Var = %v, want %v", got, tc.vari)
			}
			if got := tc.s.Std(); !almostEqual(got, math.Sqrt(tc.vari), 1e-12) {
				t.Errorf("Std = %v, want %v", got, math.Sqrt(tc.vari))
			}
		})
	}
}

func TestMinMaxExtremes(t *testing.T) {
	s := Series{3, -2, 7, 0}
	if s.Min() != -2 {
		t.Errorf("Min = %v, want -2", s.Min())
	}
	if s.Max() != 7 {
		t.Errorf("Max = %v, want 7", s.Max())
	}
	empty := Series{}
	if !math.IsInf(empty.Min(), 1) || !math.IsInf(empty.Max(), -1) {
		t.Errorf("empty Min/Max = %v/%v, want +Inf/-Inf", empty.Min(), empty.Max())
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Series{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddAndAddInPlace(t *testing.T) {
	a := Series{1, 2, 3}
	b := Series{10, 20, 30}
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{11, 22, 33}
	for i := range want {
		if sum[i] != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, sum[i], want[i])
		}
	}
	if a[0] != 1 {
		t.Error("Add mutated receiver")
	}
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a[2] != 33 {
		t.Errorf("AddInPlace result = %v", a)
	}
	if _, err := a.Add(Series{1}); err != ErrLengthMismatch {
		t.Errorf("Add length mismatch error = %v", err)
	}
	if err := a.AddInPlace(Series{1}); err != ErrLengthMismatch {
		t.Errorf("AddInPlace length mismatch error = %v", err)
	}
}

func TestDivZeroDenominator(t *testing.T) {
	num := Series{4, 6, 8}
	den := Series{2, 0, 4}
	got, err := num.Div(den)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{2, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Div[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSliceClamping(t *testing.T) {
	s := Series{0, 1, 2, 3, 4}
	tests := []struct {
		lo, hi int
		want   int
	}{
		{-5, 3, 3},
		{2, 100, 3},
		{4, 2, 0},
		{0, 5, 5},
		{5, 5, 0},
	}
	for _, tc := range tests {
		if got := len(s.Slice(tc.lo, tc.hi)); got != tc.want {
			t.Errorf("Slice(%d,%d) len = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestQuantileMedian(t *testing.T) {
	s := Series{1, 3, 2, 4}
	if got := s.Median(); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Errorf("Q1 = %v, want 4", got)
	}
	if got := (Series{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// Quantile must not reorder the receiver.
	if s[0] != 1 || s[1] != 3 {
		t.Error("Quantile mutated receiver order")
	}
}

func TestMAD(t *testing.T) {
	s := Series{1, 1, 2, 2, 4, 6, 9}
	// median = 2; |x-2| = {1,1,0,0,2,4,7}; median of that = 1.
	if got := s.MAD(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := (Series{}).MAD(); got != 0 {
		t.Errorf("empty MAD = %v, want 0", got)
	}
}

func TestDownsample(t *testing.T) {
	s := Series{1, 2, 3, 4, 5}
	got := s.Downsample(2)
	want := Series{3, 7, 5}
	if len(got) != len(want) {
		t.Fatalf("Downsample len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Downsample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	same := s.Downsample(1)
	if len(same) != len(s) {
		t.Error("Downsample(1) should preserve length")
	}
	same[0] = 42
	if s[0] == 42 {
		t.Error("Downsample(1) must copy, not alias")
	}
}

func TestMinMaxNormalization(t *testing.T) {
	s := Series{2, 4, 6}
	got := s.MinMax()
	want := Series{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("MinMax[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	flat := (Series{5, 5, 5}).MinMax()
	for i, v := range flat {
		if v != 0 {
			t.Errorf("constant MinMax[%d] = %v, want 0", i, v)
		}
	}
}

func TestMSE(t *testing.T) {
	a := Series{1, 2, 3}
	b := Series{1, 4, 3}
	got, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 4.0/3.0, 1e-12) {
		t.Errorf("MSE = %v, want 4/3", got)
	}
	if _, err := MSE(a, Series{1}); err != ErrLengthMismatch {
		t.Errorf("MSE mismatch error = %v", err)
	}
	if v, err := MSE(Series{}, Series{}); err != nil || v != 0 {
		t.Errorf("empty MSE = %v, %v", v, err)
	}
}

// Property: MinMax output always lies in [0, 1].
func TestMinMaxRangeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		s := sanitize(vals)
		for _, v := range s.MinMax() {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Downsample preserves the total sum.
func TestDownsampleSumProperty(t *testing.T) {
	f := func(vals []float64, factor uint8) bool {
		s := sanitize(vals)
		fac := int(factor%7) + 1
		return almostEqual(s.Downsample(fac).Sum(), s.Sum(), 1e-6*(1+math.Abs(s.Sum())))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		s := sanitize(vals)
		if len(s) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// sanitize maps arbitrary quick-generated floats into finite, moderate
// values so properties are not dominated by Inf/NaN inputs.
func sanitize(vals []float64) Series {
	out := make(Series, 0, len(vals))
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(v, 1e6))
	}
	return out
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}
}
