package timeseries

import (
	"errors"
	"math"
)

// ErrSingular reports that the least-squares normal equations are singular
// (e.g. all x values identical for degree ≥ 1).
var ErrSingular = errors.New("timeseries: singular system in polynomial fit")

// PolyFit fits a polynomial of the given degree to the points (x[i], y[i])
// by ordinary least squares, returning coefficients c so that
// y ≈ c[0] + c[1]·x + … + c[degree]·x^degree. It is used to draw the fitted
// scalability curves of Fig. 7. The normal equations are solved by Gaussian
// elimination with partial pivoting, which is ample for the low degrees
// (≤ 3) the harness uses.
func PolyFit(x, y Series, degree int) ([]float64, error) {
	if len(x) != len(y) {
		return nil, ErrLengthMismatch
	}
	if degree < 0 {
		return nil, errors.New("timeseries: negative polynomial degree")
	}
	if len(x) < degree+1 {
		return nil, errors.New("timeseries: not enough points for requested degree")
	}
	n := degree + 1

	// Build the normal equations A·c = b where A[i][j] = Σ x^(i+j) and
	// b[i] = Σ y·x^i.
	pow := make([]float64, 2*degree+1)
	for _, xv := range x {
		p := 1.0
		for k := 0; k <= 2*degree; k++ {
			pow[k] += p
			p *= xv
		}
	}
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = pow[i+j]
		}
	}
	for k, xv := range x {
		p := 1.0
		for i := 0; i < n; i++ {
			b[i] += y[k] * p
			p *= xv
		}
	}
	return solveLinear(a, b)
}

// PolyEval evaluates the polynomial with coefficients c (lowest degree
// first) at x using Horner's rule.
func PolyEval(c []float64, x float64) float64 {
	var v float64
	for i := len(c) - 1; i >= 0; i-- {
		v = v*x + c[i]
	}
	return v
}

// solveLinear solves a·x = b in place via Gaussian elimination with partial
// pivoting. a and b are consumed.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := b[i]
		for j := i + 1; j < n; j++ {
			v -= a[i][j] * x[j]
		}
		x[i] = v / a[i][i]
	}
	return x, nil
}
