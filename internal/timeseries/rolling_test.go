package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

// rollingInputs builds adversarial value streams for the differential
// tests: duplicates, constants, monotone runs, sign changes and scales
// spanning many orders of magnitude.
func rollingInputs(rng *rand.Rand, n int) map[string]Series {
	uniform := make(Series, n)
	ints := make(Series, n)
	constant := make(Series, n)
	sortedUp := make(Series, n)
	sortedDown := make(Series, n)
	sawtooth := make(Series, n)
	wide := make(Series, n)
	for i := 0; i < n; i++ {
		uniform[i] = rng.NormFloat64() * 37.5
		ints[i] = float64(rng.Intn(7) - 3)
		constant[i] = 42.25
		sortedUp[i] = float64(i) * 0.125
		sortedDown[i] = float64(n-i) * 0.125
		sawtooth[i] = float64(i%13) - 6
		wide[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(13)-6))
	}
	return map[string]Series{
		"uniform": uniform, "ints": ints, "constant": constant,
		"sorted_up": sortedUp, "sorted_down": sortedDown,
		"sawtooth": sawtooth, "wide": wide,
	}
}

// TestRollingMatchesBatchBitwise pins the determinism contract: at every
// prefix length, every rolling statistic is bit-identical to the batch
// Series reference computed over the same prefix.
func TestRollingMatchesBatchBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
	for name, s := range rollingInputs(rng, 600) {
		r := NewRolling()
		for i, v := range s {
			r.Append(v)
			prefix := s[:i+1]
			if r.Len() != len(prefix) {
				t.Fatalf("%s[:%d]: Len = %d", name, i+1, r.Len())
			}
			for _, q := range quantiles {
				got, want := r.Quantile(q), prefix.Quantile(q)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s[:%d]: Quantile(%g) = %v, batch %v", name, i+1, q, got, want)
				}
			}
			if got, want := r.Median(), prefix.Median(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s[:%d]: Median = %v, batch %v", name, i+1, got, want)
			}
			if got, want := r.MAD(), prefix.MAD(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s[:%d]: MAD = %v, batch %v", name, i+1, got, want)
			}
			for _, k := range []float64{1.5, 3} {
				gl, gh := r.TukeyBounds(k)
				wl, wh := prefix.TukeyBounds(k)
				if math.Float64bits(gl) != math.Float64bits(wl) || math.Float64bits(gh) != math.Float64bits(wh) {
					t.Fatalf("%s[:%d]: TukeyBounds(%g) = (%v,%v), batch (%v,%v)", name, i+1, k, gl, gh, wl, wh)
				}
			}
		}
	}
}

// TestRollingChunkSplit forces many run splits and checks the statistics
// survive them (large n crosses the 2*rollingChunk split threshold many
// times over).
func TestRollingChunkSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8 * rollingChunk
	s := make(Series, n)
	for i := range s {
		s[i] = rng.Float64()*200 - 100
	}
	r := NewRolling()
	r.AppendAll(s)
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got, want := r.Quantile(q), s.Quantile(q); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Quantile(%g) = %v, batch %v", q, got, want)
		}
	}
	if got, want := r.MAD(), s.MAD(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("MAD = %v, batch %v", got, want)
	}
	for _, c := range r.chunks {
		if len(c) == 0 || len(c) >= 2*rollingChunk {
			t.Fatalf("chunk length %d outside [1, %d)", len(c), 2*rollingChunk)
		}
	}
}

// TestRollingEmpty pins the empty-accumulator conventions to the batch
// ones: zero quantiles and MAD, and the degenerate Tukey fences.
func TestRollingEmpty(t *testing.T) {
	r := NewRolling()
	if r.Len() != 0 || r.Quantile(0.5) != 0 || r.MAD() != 0 {
		t.Fatalf("empty Rolling not zero-valued: len=%d med=%v mad=%v", r.Len(), r.Quantile(0.5), r.MAD())
	}
	gl, gh := r.TukeyBounds(1.5)
	wl, wh := Series{}.TukeyBounds(1.5)
	if gl != wl || gh != wh {
		t.Fatalf("empty TukeyBounds = (%v,%v), batch (%v,%v)", gl, gh, wl, wh)
	}
}

func BenchmarkRollingAppendMedianMAD(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 3600)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 25
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRolling()
		for _, v := range vals {
			r.Append(v)
		}
		_ = r.Median()
		_ = r.MAD()
	}
}
