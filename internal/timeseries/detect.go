package timeseries

import "math"

// TukeyBounds returns the outlier fences of Tukey's rule with multiplier k
// (1.5 for "outliers", 3 for "far out"; the paper applies Tukey's rule for
// efficient history-trend anomaly detection, §VI).
func (s Series) TukeyBounds(k float64) (lo, hi float64) {
	q1 := s.Quantile(0.25)
	q3 := s.Quantile(0.75)
	iqr := q3 - q1
	return q1 - k*iqr, q3 + k*iqr
}

// TukeyOutliers returns the indices of observations outside the Tukey fences
// with multiplier k.
func (s Series) TukeyOutliers(k float64) []int {
	if len(s) == 0 {
		return nil
	}
	lo, hi := s.TukeyBounds(k)
	var out []int
	for i, v := range s {
		if v < lo || v > hi {
			out = append(out, i)
		}
	}
	return out
}

// TukeyUpperOutliers returns the indices of observations above the upper
// Tukey fence only. R-SQL history verification cares about sudden increases
// of #execution, not drops (§VI, History Trend Verification).
func (s Series) TukeyUpperOutliers(k float64) []int {
	if len(s) == 0 {
		return nil
	}
	_, hi := s.TukeyBounds(k)
	var out []int
	for i, v := range s {
		if v > hi {
			out = append(out, i)
		}
	}
	return out
}

// HasUpperAnomaly reports whether any observation inside [lo, hi) exceeds
// the upper Tukey fence computed from the whole series.
func (s Series) HasUpperAnomaly(k float64, lo, hi int) bool {
	if len(s) == 0 {
		return false
	}
	_, fence := s.TukeyBounds(k)
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	for i := lo; i < hi; i++ {
		if s[i] > fence {
			return true
		}
	}
	return false
}

// RobustScale returns the MAD-based robust scale estimate (MAD times the
// 1.4826 consistency constant for normal data), falling back to the
// standard deviation when the MAD is zero. Both the batch and the rolling
// detector paths derive their z-score denominators through this rule.
func (s Series) RobustScale() float64 {
	scale := s.MAD() * 1.4826
	if scale == 0 {
		scale = s.Std()
	}
	return scale
}

// RobustZScores returns per-point robust z-scores based on the median and
// MAD (scaled by the 1.4826 consistency constant for normal data). A zero
// MAD falls back to the standard deviation; if that is also zero the scores
// are all zero.
func (s Series) RobustZScores() Series {
	out := make(Series, len(s))
	if len(s) == 0 {
		return out
	}
	med := s.Median()
	scale := s.RobustScale()
	if scale == 0 {
		return out
	}
	for i, v := range s {
		out[i] = (v - med) / scale
	}
	return out
}

// SpikeDirection classifies the sign of a detected excursion.
type SpikeDirection int

// Spike directions.
const (
	SpikeUp SpikeDirection = iota + 1
	SpikeDown
)

// Spike is a contiguous run of points whose robust z-score exceeds a
// threshold in one direction.
type Spike struct {
	Start, End int // half-open index range [Start, End)
	Direction  SpikeDirection
	Peak       float64 // most extreme z-score in the run
}

// DetectSpikes finds maximal runs where |robust z| ≥ threshold. Runs mixing
// directions are split. This is the "spike up/down" anomalous feature of the
// Basic Perception Layer (§IV-B).
func (s Series) DetectSpikes(threshold float64) []Spike {
	if len(s) == 0 {
		return nil
	}
	return s.DetectSpikesScaled(threshold, s.Median(), s.RobustScale())
}

// DetectSpikesScaled is DetectSpikes with the median and robust scale
// supplied by the caller — the rolling detector maintains both
// incrementally and must reproduce the batch result bit-for-bit, so the
// run scan is shared. A zero scale yields no spikes, matching the all-zero
// z-scores of the batch path.
func (s Series) DetectSpikesScaled(threshold, med, scale float64) []Spike {
	z := make(Series, len(s))
	if scale != 0 {
		for i, v := range s {
			z[i] = (v - med) / scale
		}
	}
	var spikes []Spike
	i := 0
	for i < len(z) {
		switch {
		case z[i] >= threshold:
			j, peak := i, z[i]
			for j < len(z) && z[j] >= threshold {
				if z[j] > peak {
					peak = z[j]
				}
				j++
			}
			spikes = append(spikes, Spike{Start: i, End: j, Direction: SpikeUp, Peak: peak})
			i = j
		case z[i] <= -threshold:
			j, peak := i, z[i]
			for j < len(z) && z[j] <= -threshold {
				if z[j] < peak {
					peak = z[j]
				}
				j++
			}
			spikes = append(spikes, Spike{Start: i, End: j, Direction: SpikeDown, Peak: peak})
			i = j
		default:
			i++
		}
	}
	return spikes
}

// LevelShift is a sustained mean change detected at index At: the mean of
// the window after At differs from the mean of the window before it by more
// than threshold robust scales ("level shift up/down", §IV-B).
type LevelShift struct {
	At        int
	Direction SpikeDirection
	Delta     float64 // after-mean minus before-mean
}

// DetectLevelShifts scans s with symmetric windows of the given size and
// reports points where the windowed mean jumps by at least threshold times
// the robust scale of the series. Adjacent detections are collapsed to the
// point of largest |Delta|.
func (s Series) DetectLevelShifts(window int, threshold float64) []LevelShift {
	if window <= 0 || len(s) < 2*window {
		return nil
	}
	// Scale from the first differences: a level shift inflates the raw
	// series' MAD but barely moves the MAD of point-to-point changes, so
	// this stays sensitive even when the shift dominates the trace.
	diff := make(Series, len(s)-1)
	for i := 1; i < len(s); i++ {
		diff[i-1] = s[i] - s[i-1]
	}
	return s.DetectLevelShiftsScaled(window, threshold, diff.RobustScale())
}

// DetectLevelShiftsScaled is DetectLevelShifts with the first-difference
// robust scale supplied by the caller (the rolling detector maintains it
// incrementally); the windowed-mean scan is shared so the two paths agree
// bit-for-bit.
func (s Series) DetectLevelShiftsScaled(window int, threshold, scale float64) []LevelShift {
	if window <= 0 || len(s) < 2*window {
		return nil
	}
	if scale == 0 {
		return nil
	}
	minDelta := threshold * scale

	var shifts []LevelShift
	best := LevelShift{}
	inRun := false
	flush := func() {
		if inRun {
			shifts = append(shifts, best)
			inRun = false
		}
	}
	for t := window; t+window <= len(s); t++ {
		before := Series(s[t-window : t]).Mean()
		after := Series(s[t : t+window]).Mean()
		delta := after - before
		if math.Abs(delta) < minDelta {
			flush()
			continue
		}
		dir := SpikeUp
		if delta < 0 {
			dir = SpikeDown
		}
		if inRun && dir == best.Direction {
			if math.Abs(delta) > math.Abs(best.Delta) {
				best = LevelShift{At: t, Direction: dir, Delta: delta}
			}
			continue
		}
		flush()
		best = LevelShift{At: t, Direction: dir, Delta: delta}
		inRun = true
	}
	flush()
	return shifts
}
