package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCorrBasic(t *testing.T) {
	tests := []struct {
		name string
		x, y Series
		want float64
	}{
		{"perfect positive", Series{1, 2, 3, 4}, Series{2, 4, 6, 8}, 1},
		{"perfect negative", Series{1, 2, 3, 4}, Series{8, 6, 4, 2}, -1},
		{"shifted positive", Series{1, 2, 3}, Series{11, 12, 13}, 1},
		{"constant x", Series{5, 5, 5}, Series{1, 2, 3}, 0},
		{"constant y", Series{1, 2, 3}, Series{5, 5, 5}, 0},
		{"empty", Series{}, Series{}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Corr(tc.x, tc.y)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tc.want, 1e-9) {
				t.Errorf("Corr = %v, want %v", got, tc.want)
			}
		})
	}
	if _, err := Corr(Series{1}, Series{1, 2}); err != ErrLengthMismatch {
		t.Errorf("length mismatch error = %v", err)
	}
}

func TestCorrUncorrelated(t *testing.T) {
	// Orthogonal patterns: x alternates around its mean independent of y.
	x := Series{1, -1, 1, -1}
	y := Series{1, 1, -1, -1}
	got, err := Corr(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0, 1e-12) {
		t.Errorf("Corr = %v, want 0", got)
	}
}

func TestWeightedCorrUniformEqualsPlain(t *testing.T) {
	x := Series{1, 3, 2, 5, 4, 7}
	y := Series{2, 5, 3, 9, 8, 13}
	w := Series{1, 1, 1, 1, 1, 1}
	plain, err := Corr(x, y)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := WeightedCorr(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(plain, weighted, 1e-12) {
		t.Errorf("uniform WeightedCorr = %v, plain Corr = %v", weighted, plain)
	}
}

func TestWeightedCorrZeroWeight(t *testing.T) {
	x := Series{1, 2, 3}
	y := Series{4, 5, 6}
	got, err := WeightedCorr(x, y, Series{0, 0, 0})
	if err != nil || got != 0 {
		t.Errorf("zero-weight corr = %v, %v; want 0, nil", got, err)
	}
}

func TestWeightedCorrSelectsWindow(t *testing.T) {
	// Inside the window x and y move together; outside they oppose. A
	// weight that selects only the window must report strong positive
	// correlation.
	x := Series{1, 2, 1, 10, 20, 30, 1, 2, 1}
	y := Series{2, 1, 2, 11, 21, 31, 2, 1, 2}
	w := Series{0, 0, 0, 1, 1, 1, 0, 0, 0}
	got, err := WeightedCorr(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.99 {
		t.Errorf("windowed corr = %v, want ≈ 1", got)
	}
}

func TestWeightedCorrMismatch(t *testing.T) {
	if _, err := WeightedCorr(Series{1, 2}, Series{1, 2}, Series{1}); err != ErrLengthMismatch {
		t.Errorf("error = %v, want ErrLengthMismatch", err)
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEqual(Sigmoid(0), 0.5, 1e-12) {
		t.Errorf("Sigmoid(0) = %v", Sigmoid(0))
	}
	if Sigmoid(100) < 0.999 || Sigmoid(-100) > 0.001 {
		t.Error("Sigmoid saturation incorrect")
	}
}

func TestSigmoidWeightShape(t *testing.T) {
	n, as, ae := 100, 40, 60
	w := SigmoidWeight(n, as, ae, 3)
	// Peak inside the anomaly window, low far outside.
	mid := w[(as+ae)/2]
	if mid < 0.9 {
		t.Errorf("weight at window center = %v, want ≥ 0.9", mid)
	}
	if w[0] > 0.01 || w[n-1] > 0.01 {
		t.Errorf("weight at edges = %v / %v, want ≈ 0", w[0], w[n-1])
	}
	// Non-negative everywhere and ≤ 1 + eps.
	for i, v := range w {
		if v < 0 || v > 1+1e-9 {
			t.Errorf("weight[%d] = %v out of [0,1]", i, v)
		}
	}
	// Rising before window start, falling after window end.
	if !(w[as-10] < w[as-1]) {
		t.Error("weight should rise approaching the anomaly window")
	}
	if !(w[ae+1] > w[ae+10]) {
		t.Error("weight should fall after the anomaly window")
	}
}

func TestSigmoidWeightLimits(t *testing.T) {
	n, as, ae := 50, 20, 30
	// ks → 0 behaves like the indicator of [as, ae) (Eq. 1).
	w0 := SigmoidWeight(n, as, ae, 0)
	for i, v := range w0 {
		want := 0.0
		if i >= as && i < ae {
			want = 1
		}
		if v != want {
			t.Errorf("ks=0 weight[%d] = %v, want %v", i, v, want)
		}
	}
	// ks → ∞ flattens to a (tiny) uniform weight ≈ (ae−as)/(4·ks); what
	// matters for the paper's Eq. 1 is that the weighting degenerates to
	// plain Pearson, i.e. the weights become equal, not their magnitude.
	wInf := SigmoidWeight(n, as, ae, 1e9)
	for i, v := range wInf {
		if v <= 0 || !almostEqual(v, wInf[0], wInf[0]*1e-3) {
			t.Errorf("ks→∞ weight[%d] = %v, want uniform ≈ %v", i, v, wInf[0])
		}
	}
}

// Property: Pearson correlation is symmetric, bounded, and invariant to
// positive affine transforms.
func TestCorrProperties(t *testing.T) {
	f := func(xs, ys []float64, scale float64, shift float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x := sanitize(xs[:n])
		y := sanitize(ys[:n])
		n = len(x)
		if len(y) < n {
			n = len(y)
		}
		x, y = x[:n], y[:n]
		cxy, err1 := Corr(x, y)
		cyx, err2 := Corr(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		if cxy < -1 || cxy > 1 || !almostEqual(cxy, cyx, 1e-9) {
			return false
		}
		// Positive affine invariance.
		k := math.Abs(math.Mod(scale, 100)) + 0.5
		b := math.Mod(shift, 1000)
		x2 := make(Series, n)
		for i := range x {
			x2[i] = k*x[i] + b
		}
		c2, err := Corr(x2, y)
		if err != nil {
			return false
		}
		return almostEqual(cxy, c2, 1e-6)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: weighted Pearson with the large-ks sigmoid weight matches plain
// Pearson (the ks→∞ limit of §V).
func TestWeightedCorrLimitProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x := sanitize(xs[:n])
		y := sanitize(ys[:n])
		n = len(x)
		if len(y) < n {
			n = len(y)
		}
		x, y = x[:n], y[:n]
		if n < 3 {
			return true
		}
		// ks large relative to n but small enough that σ(a)+σ(b)−1 does
		// not lose all significance to cancellation around 0.5.
		w := SigmoidWeight(n, n/3, 2*n/3, 1e6)
		plain, err1 := Corr(x, y)
		weighted, err2 := WeightedCorr(x, y, w)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(plain, weighted, 1e-6)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
