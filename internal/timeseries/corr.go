package timeseries

import "math"

// Corr returns the Pearson correlation coefficient between x and y (§V,
// "Correlation Coefficient"). When either series has zero variance the
// correlation is undefined; we return 0, which in every PinSQL use site
// means "no evidence of relationship" and keeps scores bounded.
func Corr(x, y Series) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) == 0 {
		return 0, nil
	}
	mx, my := x.Mean(), y.Mean()
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	n := float64(len(x))
	if degenerate(sxx, n, mx) || degenerate(syy, n, my) {
		return 0, nil
	}
	return clampCorr(sxy / math.Sqrt(sxx*syy)), nil
}

// degenerate reports whether a sum of squared deviations is zero for all
// practical purposes: exactly zero, or so small relative to the magnitude
// of the data that it is rounding noise from the mean subtraction. Without
// this, two constant series correlate "perfectly" through their shared
// float rounding pattern.
func degenerate(ss, weight, mean float64) bool {
	return ss <= 1e-18*weight*(mean*mean+1)
}

// WeightedCorr returns the weighted Pearson correlation between x and y
// under the non-negative weight vector w, computed with the weighted
// covariance of §V:
//
//	cov(X,Y;W) = Σᵢ wᵢ·(xᵢ−m(X;W))·(yᵢ−m(Y;W)) / Σᵢ wᵢ
//
// Zero total weight or zero weighted variance yields 0.
func WeightedCorr(x, y, w Series) (float64, error) {
	if len(x) != len(y) || len(x) != len(w) {
		return 0, ErrLengthMismatch
	}
	if len(x) == 0 {
		return 0, nil
	}
	var wsum float64
	for _, wi := range w {
		wsum += wi
	}
	if wsum == 0 {
		return 0, nil
	}
	var mx, my float64
	for i := range x {
		mx += w[i] * x[i]
		my += w[i] * y[i]
	}
	mx /= wsum
	my /= wsum
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += w[i] * dx * dy
		sxx += w[i] * dx * dx
		syy += w[i] * dy * dy
	}
	if degenerate(sxx, wsum, mx) || degenerate(syy, wsum, my) {
		return 0, nil
	}
	return clampCorr(sxy / math.Sqrt(sxx*syy)), nil
}

// clampCorr guards against floating-point drift pushing a correlation a few
// ulps outside [-1, 1].
func clampCorr(c float64) float64 {
	switch {
	case c > 1:
		return 1
	case c < -1:
		return -1
	case math.IsNaN(c):
		return 0
	}
	return c
}

// Sigmoid is the logistic function σ(x) = 1/(1+e^−x).
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SigmoidWeight builds the smooth anomaly-emphasis weight of §V:
//
//	W_t = σ((t−a_s)/k_s) + σ((a_e−t)/k_s) − 1,  t ∈ [0, n)
//
// where [as, ae) is the anomaly window in index units and ks > 0 is the
// smooth factor. As ks→0 the weight approaches the indicator of [as, ae);
// as ks→∞ it approaches the all-ones vector (Eq. 1 of the paper).
func SigmoidWeight(n, as, ae int, ks float64) Series {
	w := make(Series, n)
	if ks <= 0 {
		// Degenerate limit: indicator of the anomaly window.
		for t := range w {
			if t >= as && t < ae {
				w[t] = 1
			}
		}
		return w
	}
	for t := range w {
		ft := float64(t)
		v := Sigmoid((ft-float64(as))/ks) + Sigmoid((float64(ae)-ft)/ks) - 1
		if v < 0 {
			v = 0
		}
		w[t] = v
	}
	return w
}
