package timeseries

import (
	"math"
	"testing"
)

func TestPolyFitExactLine(t *testing.T) {
	x := Series{0, 1, 2, 3, 4}
	y := Series{1, 3, 5, 7, 9} // y = 1 + 2x
	c, err := PolyFit(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c[0], 1, 1e-9) || !almostEqual(c[1], 2, 1e-9) {
		t.Errorf("coeffs = %v, want [1 2]", c)
	}
}

func TestPolyFitQuadratic(t *testing.T) {
	x := make(Series, 20)
	y := make(Series, 20)
	for i := range x {
		xv := float64(i) / 2
		x[i] = xv
		y[i] = 2 - 3*xv + 0.5*xv*xv
	}
	c, err := PolyFit(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -3, 0.5}
	for i := range want {
		if !almostEqual(c[i], want[i], 1e-6) {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestPolyFitDegreeZero(t *testing.T) {
	x := Series{1, 2, 3, 4}
	y := Series{5, 7, 9, 11}
	c, err := PolyFit(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c[0], 8, 1e-9) {
		t.Errorf("constant fit = %v, want mean 8", c[0])
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit(Series{1}, Series{1, 2}, 1); err != ErrLengthMismatch {
		t.Errorf("mismatch error = %v", err)
	}
	if _, err := PolyFit(Series{1, 2}, Series{1, 2}, -1); err == nil {
		t.Error("negative degree should error")
	}
	if _, err := PolyFit(Series{1}, Series{1}, 3); err == nil {
		t.Error("under-determined fit should error")
	}
	// Identical x values make the system singular for degree ≥ 1.
	if _, err := PolyFit(Series{2, 2, 2}, Series{1, 2, 3}, 1); err != ErrSingular {
		t.Errorf("singular error = %v, want ErrSingular", err)
	}
}

func TestPolyEval(t *testing.T) {
	c := []float64{1, -2, 3} // 1 - 2x + 3x²
	if got := PolyEval(c, 2); !almostEqual(got, 9, 1e-12) {
		t.Errorf("PolyEval = %v, want 9", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Errorf("empty PolyEval = %v, want 0", got)
	}
}

func TestPolyFitResidualsSmallOnNoisyLine(t *testing.T) {
	// A noisy line should still produce a fit whose residual RMS is of
	// the order of the injected noise, not larger.
	x := make(Series, 100)
	y := make(Series, 100)
	for i := range x {
		x[i] = float64(i)
		noise := 0.5 * math.Sin(float64(i)*1.7)
		y[i] = 4 + 0.25*x[i] + noise
	}
	c, err := PolyFit(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	var rss float64
	for i := range x {
		d := y[i] - PolyEval(c, x[i])
		rss += d * d
	}
	rms := math.Sqrt(rss / float64(len(x)))
	if rms > 1 {
		t.Errorf("residual RMS = %v, want ≤ 1", rms)
	}
}
