package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTukeyBounds(t *testing.T) {
	s := Series{1, 2, 3, 4, 5, 6, 7, 8}
	lo, hi := s.TukeyBounds(1.5)
	// Q1 = 2.75, Q3 = 6.25, IQR = 3.5 → fences at -2.5 and 11.5.
	if !almostEqual(lo, -2.5, 1e-9) || !almostEqual(hi, 11.5, 1e-9) {
		t.Errorf("bounds = (%v, %v), want (-2.5, 11.5)", lo, hi)
	}
}

func TestTukeyOutliers(t *testing.T) {
	base := make(Series, 50)
	for i := range base {
		base[i] = 10 + float64(i%3)
	}
	base[25] = 500
	base[40] = -500
	out := base.TukeyOutliers(1.5)
	if len(out) != 2 || out[0] != 25 || out[1] != 40 {
		t.Errorf("outliers = %v, want [25 40]", out)
	}
	upper := base.TukeyUpperOutliers(1.5)
	if len(upper) != 1 || upper[0] != 25 {
		t.Errorf("upper outliers = %v, want [25]", upper)
	}
	if got := (Series{}).TukeyOutliers(1.5); got != nil {
		t.Errorf("empty outliers = %v, want nil", got)
	}
}

func TestHasUpperAnomaly(t *testing.T) {
	s := make(Series, 100)
	for i := range s {
		s[i] = 5 + float64(i%2)
	}
	s[70] = 1000
	if !s.HasUpperAnomaly(3, 60, 80) {
		t.Error("expected anomaly inside [60,80)")
	}
	if s.HasUpperAnomaly(3, 0, 60) {
		t.Error("no anomaly expected inside [0,60)")
	}
	// Window clamping: out-of-range bounds must not panic.
	if !s.HasUpperAnomaly(3, -10, 1000) {
		t.Error("clamped full-range scan should find the anomaly")
	}
	if (Series{}).HasUpperAnomaly(3, 0, 10) {
		t.Error("empty series cannot have anomalies")
	}
}

func TestRobustZScoresDegenerate(t *testing.T) {
	flat := Series{7, 7, 7, 7}
	for i, z := range flat.RobustZScores() {
		if z != 0 {
			t.Errorf("flat z[%d] = %v, want 0", i, z)
		}
	}
	if got := (Series{}).RobustZScores(); len(got) != 0 {
		t.Errorf("empty z-scores length = %d", len(got))
	}
	// Zero MAD but nonzero std: one extreme value among constants.
	s := Series{5, 5, 5, 5, 5, 5, 5, 100}
	z := s.RobustZScores()
	if z[7] <= 0 {
		t.Errorf("outlier z = %v, want > 0", z[7])
	}
}

func TestDetectSpikes(t *testing.T) {
	s := make(Series, 60)
	for i := range s {
		s[i] = 10 + float64(i%2)
	}
	for i := 30; i < 35; i++ {
		s[i] = 100
	}
	s[50] = -80
	spikes := s.DetectSpikes(6)
	if len(spikes) != 2 {
		t.Fatalf("spikes = %+v, want 2", spikes)
	}
	up := spikes[0]
	if up.Direction != SpikeUp || up.Start != 30 || up.End != 35 {
		t.Errorf("up spike = %+v", up)
	}
	down := spikes[1]
	if down.Direction != SpikeDown || down.Start != 50 || down.End != 51 {
		t.Errorf("down spike = %+v", down)
	}
	if up.Peak <= 0 || down.Peak >= 0 {
		t.Errorf("peaks = %v / %v", up.Peak, down.Peak)
	}
}

func TestDetectSpikesNone(t *testing.T) {
	s := Series{1, 2, 1, 2, 1, 2}
	if got := s.DetectSpikes(10); len(got) != 0 {
		t.Errorf("spikes = %+v, want none", got)
	}
}

func TestDetectLevelShifts(t *testing.T) {
	s := make(Series, 120)
	for i := range s {
		if i < 60 {
			s[i] = 10 + float64(i%2)
		} else {
			s[i] = 40 + float64(i%2)
		}
	}
	shifts := s.DetectLevelShifts(10, 3)
	if len(shifts) == 0 {
		t.Fatal("expected a level shift")
	}
	found := false
	for _, sh := range shifts {
		if sh.Direction == SpikeUp && sh.At >= 50 && sh.At <= 70 {
			found = true
		}
	}
	if !found {
		t.Errorf("shifts = %+v, want an up-shift near t=60", shifts)
	}
}

func TestDetectLevelShiftsDegenerate(t *testing.T) {
	if got := (Series{1, 2}).DetectLevelShifts(5, 3); got != nil {
		t.Errorf("short series shifts = %v", got)
	}
	flat := make(Series, 50)
	if got := flat.DetectLevelShifts(5, 3); got != nil {
		t.Errorf("flat series shifts = %v", got)
	}
}

// Property: widening the Tukey multiplier never finds more outliers.
func TestTukeyMonotoneProperty(t *testing.T) {
	f := func(vals []float64, k1, k2 float64) bool {
		s := sanitize(vals)
		a := absMod(k1, 5)
		b := absMod(k2, 5)
		if a > b {
			a, b = b, a
		}
		return len(s.TukeyOutliers(b)) <= len(s.TukeyOutliers(a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: every spike's index range is valid and within bounds, and spike
// runs never overlap.
func TestSpikeRangesProperty(t *testing.T) {
	f := func(vals []float64) bool {
		s := sanitize(vals)
		spikes := s.DetectSpikes(3)
		prevEnd := 0
		for _, sp := range spikes {
			if sp.Start < prevEnd || sp.End <= sp.Start || sp.End > len(s) {
				return false
			}
			prevEnd = sp.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func absMod(v, m float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Abs(math.Mod(v, m))
}
