package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestSummaryObserveAndValue(t *testing.T) {
	var s Summary
	s.Observe(0.25)
	s.Observe(0.75)
	s.Observe(1)
	count, sum := s.Value()
	if count != 3 || sum != 2 {
		t.Fatalf("Value = (%d, %g), want (3, 2)", count, sum)
	}
}

func TestSummaryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Summary("s_seconds", "", L("stage", "collect"))
	b := r.Summary("s_seconds", "", L("stage", "collect"))
	if a != b {
		t.Fatal("same name+labels must return the same summary")
	}
	if c := r.Summary("s_seconds", "", L("stage", "detect")); c == a {
		t.Fatal("distinct labels must return distinct summaries")
	}
}

// TestSummaryRendering locks the two-line exposition of a summary family:
// <name>_sum and <name>_count per label set, under one TYPE header.
func TestSummaryRendering(t *testing.T) {
	r := NewRegistry()
	r.Summary("pinsql_stage_duration_seconds", "Per-stage wall-clock.", L("stage", "diagnose")).Observe(0.5)
	s := r.Summary("pinsql_stage_duration_seconds", "Per-stage wall-clock.", L("stage", "collect"))
	s.Observe(1.25)
	s.Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP pinsql_stage_duration_seconds Per-stage wall-clock.
# TYPE pinsql_stage_duration_seconds summary
pinsql_stage_duration_seconds_sum{stage="collect"} 1.5
pinsql_stage_duration_seconds_count{stage="collect"} 2
pinsql_stage_duration_seconds_sum{stage="diagnose"} 0.5
pinsql_stage_duration_seconds_count{stage="diagnose"} 1
`
	if b.String() != want {
		t.Fatalf("rendering mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSummaryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m_total as a summary should panic")
		}
	}()
	r.Summary("m_total", "")
}

func TestSummaryConcurrentObserve(t *testing.T) {
	var s Summary
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	count, sum := s.Value()
	if count != 8000 {
		t.Fatalf("count = %d, want 8000", count)
	}
	if sum < 7.99 || sum > 8.01 {
		t.Fatalf("sum = %g, want ≈ 8", sum)
	}
}
