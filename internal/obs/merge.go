package obs

import (
	"sort"
	"strings"
)

// textFamily is one family block of a Prometheus text exposition: the
// optional # HELP line, the # TYPE line, and the series lines that follow.
type textFamily struct {
	name   string
	header []string // "# HELP ..." and/or "# TYPE ..." lines, in input order
	lines  []string // series lines, in input order
}

// MergeText merges Prometheus text expositions from several sources into
// one document: family blocks with the same metric name are coalesced
// (header lines from the first source that carries them, series lines
// concatenated in source order), and the merged families are emitted
// sorted by name — the same ordering Registry.WritePrometheus uses.
//
// This is how a sharded coordinator folds worker-process scrapes into its
// own registry's output: each worker's series already carry a shard label,
// so concatenation cannot collide, and per-source line order is preserved
// so a summary's _sum/_count pairs stay adjacent. Merging a single
// well-formed exposition reproduces it byte for byte.
func MergeText(sources ...string) string {
	var names []string
	fams := make(map[string]*textFamily)
	get := func(name string) *textFamily {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &textFamily{name: name}
		fams[name] = f
		names = append(names, name)
		return f
	}
	for _, src := range sources {
		var cur *textFamily
		for _, line := range strings.Split(src, "\n") {
			if line == "" {
				continue
			}
			if name, ok := headerName(line); ok {
				cur = get(name)
				if !hasHeader(cur, line) {
					cur.header = append(cur.header, line)
				}
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue // stray comment: drop
			}
			// A series line outside any family block (no preceding
			// HELP/TYPE) is grouped under its own sample name so it is
			// not silently lost.
			if cur == nil {
				cur = get(sampleName(line))
			}
			cur.lines = append(cur.lines, line)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		for _, h := range f.header {
			b.WriteString(h)
			b.WriteByte('\n')
		}
		for _, l := range f.lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// headerName extracts the family name from a "# HELP name ..." or
// "# TYPE name ..." line; ok is false for any other line.
func headerName(line string) (string, bool) {
	rest, ok := strings.CutPrefix(line, "# HELP ")
	if !ok {
		rest, ok = strings.CutPrefix(line, "# TYPE ")
	}
	if !ok {
		return "", false
	}
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// hasHeader reports whether the family already recorded a header line of
// the same kind (HELP or TYPE) — later sources repeat them; keep the first.
func hasHeader(f *textFamily, line string) bool {
	kind := line[:7] // "# HELP " or "# TYPE "
	for _, h := range f.header {
		if strings.HasPrefix(h, kind) {
			return true
		}
	}
	return false
}

// sampleName extracts the metric name of a bare series line, folding a
// summary's _sum/_count suffixes onto the base family name.
func sampleName(line string) string {
	name := line
	if i := strings.IndexAny(name, "{ "); i >= 0 {
		name = name[:i]
	}
	for _, suf := range []string{"_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			return base
		}
	}
	return name
}
