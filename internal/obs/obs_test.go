package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusRendering locks the exact exposition text: family order,
// label order, HELP/TYPE lines, integer counters and float gauges.
func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("pinsql_windows_total", "Windows processed.", L("instance", "b")).Add(3)
	r.Counter("pinsql_windows_total", "Windows processed.", L("instance", "a")).Add(7)
	r.Gauge("pinsql_queue_depth", "Queued windows.", L("instance", "a")).Set(2.5)
	r.GaugeFunc("pinsql_cache_hits", "Raw-cache hits.", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP pinsql_cache_hits Raw-cache hits.
# TYPE pinsql_cache_hits gauge
pinsql_cache_hits 42
# HELP pinsql_queue_depth Queued windows.
# TYPE pinsql_queue_depth gauge
pinsql_queue_depth{instance="a"} 2.5
# HELP pinsql_windows_total Windows processed.
# TYPE pinsql_windows_total counter
pinsql_windows_total{instance="a"} 7
pinsql_windows_total{instance="b"} 3
`
	if b.String() != want {
		t.Fatalf("rendering mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestCounterIdentity checks repeated registration returns the same series.
func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", L("k", "v"))
	b := r.Counter("c_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Inc()
	b.Add(2)
	a.Add(-5) // ignored: counters only go up
	if got := a.Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
	g1 := r.Gauge("g", "")
	g2 := r.Gauge("g", "")
	if g1 != g2 {
		t.Fatal("same name+labels must return the same gauge")
	}
}

// TestLabelOrderCanonical checks label pairs render sorted by key
// regardless of registration order.
func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("z", "1"), L("a", "2"))
	b := r.Counter("x_total", "", L("a", "2"), L("z", "1"))
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
	a.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `x_total{a="2",z="1"} 1`) {
		t.Fatalf("labels not canonically ordered:\n%s", sb.String())
	}
}

// TestTypeConflictPanics checks that reusing a name with another type is a
// loud programming error.
func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge type conflict")
		}
	}()
	r.Gauge("m", "")
}

// TestHandler scrapes over HTTP.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "help").Add(9)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 9") {
		t.Fatalf("scrape missing counter:\n%s", buf[:n])
	}
}

// TestConcurrentUse hammers registration and increments from many
// goroutines; run under -race this is the thread-safety proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("conc_total", "", L("w", string(rune('a'+i%4)))).Inc()
				r.Gauge("conc_depth", "").Set(float64(j))
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += r.Counter("conc_total", "", L("w", lbl)).Value()
	}
	if total != 8*200 {
		t.Fatalf("lost increments: %d != %d", total, 8*200)
	}
}
