package obs

import (
	"strings"
	"testing"
)

// TestMergeTextIdentity pins the single-source guarantee: merging one
// well-formed registry exposition reproduces it byte for byte (the
// coordinator's /metrics must not change when every shard is in-process).
func TestMergeTextIdentity(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b help", L("shard", "0")).Add(3)
	r.Gauge("a_gauge", "a help", L("shard", "0")).Set(1.5)
	r.Summary("s_lat", "s help", L("shard", "0")).Observe(0.25)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := MergeText(b.String()); got != b.String() {
		t.Fatalf("MergeText(single) changed the exposition:\n--- in\n%s--- out\n%s", b.String(), got)
	}
}

// TestMergeTextCoalescesFamilies pins the multi-source shape: same-name
// families from different sources fold into one block (first source's
// HELP/TYPE, series concatenated in source order) and families are
// emitted sorted by name.
func TestMergeTextCoalescesFamilies(t *testing.T) {
	coord := "# HELP pinsql_shard_up Worker liveness.\n" +
		"# TYPE pinsql_shard_up gauge\n" +
		"pinsql_shard_up{shard=\"0\"} 1\n" +
		"pinsql_shard_up{shard=\"1\"} 1\n"
	w0 := "# HELP pinsql_fleet_windows_total Committed windows.\n" +
		"# TYPE pinsql_fleet_windows_total counter\n" +
		"pinsql_fleet_windows_total{instance=\"a\",shard=\"0\"} 2\n" +
		"# TYPE pinsql_stage_duration_seconds summary\n" +
		"pinsql_stage_duration_seconds_sum{shard=\"0\",stage=\"detect\"} 0.5\n" +
		"pinsql_stage_duration_seconds_count{shard=\"0\",stage=\"detect\"} 4\n"
	w1 := "# HELP pinsql_fleet_windows_total Committed windows.\n" +
		"# TYPE pinsql_fleet_windows_total counter\n" +
		"pinsql_fleet_windows_total{instance=\"b\",shard=\"1\"} 2\n" +
		"# TYPE pinsql_stage_duration_seconds summary\n" +
		"pinsql_stage_duration_seconds_sum{shard=\"1\",stage=\"detect\"} 0.75\n" +
		"pinsql_stage_duration_seconds_count{shard=\"1\",stage=\"detect\"} 4\n"

	want := "# HELP pinsql_fleet_windows_total Committed windows.\n" +
		"# TYPE pinsql_fleet_windows_total counter\n" +
		"pinsql_fleet_windows_total{instance=\"a\",shard=\"0\"} 2\n" +
		"pinsql_fleet_windows_total{instance=\"b\",shard=\"1\"} 2\n" +
		"# HELP pinsql_shard_up Worker liveness.\n" +
		"# TYPE pinsql_shard_up gauge\n" +
		"pinsql_shard_up{shard=\"0\"} 1\n" +
		"pinsql_shard_up{shard=\"1\"} 1\n" +
		"# TYPE pinsql_stage_duration_seconds summary\n" +
		"pinsql_stage_duration_seconds_sum{shard=\"0\",stage=\"detect\"} 0.5\n" +
		"pinsql_stage_duration_seconds_count{shard=\"0\",stage=\"detect\"} 4\n" +
		"pinsql_stage_duration_seconds_sum{shard=\"1\",stage=\"detect\"} 0.75\n" +
		"pinsql_stage_duration_seconds_count{shard=\"1\",stage=\"detect\"} 4\n"

	if got := MergeText(coord, w0, w1); got != want {
		t.Fatalf("merged exposition mismatch:\n--- got\n%s--- want\n%s", got, want)
	}
}

// TestMergeTextBareSeries pins the fallback for series lines with no
// preceding header: they are grouped under their own sample name, with a
// summary's _sum/_count folded onto the base family.
func TestMergeTextBareSeries(t *testing.T) {
	got := MergeText("z_total 1\n", "a_lat_sum 0.5\na_lat_count 2\n")
	want := "a_lat_sum 0.5\na_lat_count 2\nz_total 1\n"
	if got != want {
		t.Fatalf("bare-series merge = %q, want %q", got, want)
	}
}
