// Package obs is a minimal metrics registry for the fleet control plane:
// counters, gauges, callback gauges and count/sum summaries (per-stage
// durations) with optional label pairs, rendered in the Prometheus text
// exposition format. It is stdlib-only and
// deliberately small — the fleet needs a handful of counters (windows
// processed, anomalies, shed windows, broker drops, registry cache
// hits/misses) and queue-depth gauges, not a client library.
//
// Output is deterministic: families are rendered in name order and series
// within a family in label order, so scrapes diff cleanly and tests can
// assert on exact lines.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (negative deltas are ignored — counters
// only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Summary is a count+sum pair — enough to derive rates and mean durations
// from scrapes (the fleet's per-stage wall-clock metrics). It renders as a
// Prometheus summary with no quantiles: <name>_count and <name>_sum.
type Summary struct {
	mu    sync.Mutex
	count int64
	sum   float64
}

// Observe records one value (e.g. a stage duration in seconds).
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.count++
	s.sum += v
	s.mu.Unlock()
}

// Value returns the current observation count and sum.
func (s *Summary) Value() (count int64, sum float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, s.sum
}

// series is one labelled time series inside a family.
type series struct {
	read    func() float64
	isInt   bool     // render as an integer (counters)
	summary *Summary // non-nil for summary families (renders two lines)
}

// family is one metric name with its type and series.
type family struct {
	name     string
	help     string
	typ      string // "counter" | "gauge"
	mu       sync.Mutex
	byLabel  map[string]*series
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// Registry holds metric families and renders them for scraping.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels builds the deterministic label block of a series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// getFamily returns the family, creating it with the given type on first
// use. Re-registering a name with a different type panics — that is a
// programming error, not a runtime condition.
func (r *Registry) getFamily(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			byLabel:  make(map[string]*series),
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter for name+labels, creating it on first use;
// repeated registrations return the same counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, "counter")
	lb := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.counters[lb]; ok {
		return c
	}
	c := &Counter{}
	f.counters[lb] = c
	f.byLabel[lb] = &series{read: func() float64 { return float64(c.Value()) }, isInt: true}
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, "gauge")
	lb := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.gauges[lb]; ok {
		return g
	}
	g := &Gauge{}
	f.gauges[lb] = g
	f.byLabel[lb] = &series{read: g.Value}
	return g
}

// Summary returns the summary for name+labels, creating it on first use;
// repeated registrations return the same summary.
func (r *Registry) Summary(name, help string, labels ...Label) *Summary {
	f := r.getFamily(name, help, "summary")
	lb := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[lb]; ok && s.summary != nil {
		return s.summary
	}
	s := &Summary{}
	f.byLabel[lb] = &series{summary: s}
	return s
}

// CounterFunc registers a callback counter for cumulative values that
// already live elsewhere (a broker's drop count, a cache's hit count):
// fn is invoked at scrape time and must be monotonically non-decreasing.
// Re-registering the same name+labels replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, "counter")
	lb := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.counters, lb)
	f.byLabel[lb] = &series{read: fn, isInt: true}
}

// GaugeFunc registers a callback gauge: fn is invoked at scrape time.
// Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, "gauge")
	lb := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.gauges, lb)
	f.byLabel[lb] = &series{read: fn}
}

// WritePrometheus renders every family in the text exposition format,
// deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		lbs := make([]string, 0, len(f.byLabel))
		for lb := range f.byLabel {
			lbs = append(lbs, lb)
		}
		sort.Strings(lbs)
		lines := make([]string, 0, len(lbs))
		for _, lb := range lbs {
			s := f.byLabel[lb]
			if s.summary != nil {
				count, sum := s.summary.Value()
				lines = append(lines,
					f.name+"_sum"+lb+" "+strconv.FormatFloat(sum, 'g', -1, 64),
					f.name+"_count"+lb+" "+strconv.FormatInt(count, 10))
				continue
			}
			v := s.read()
			var val string
			if s.isInt {
				val = strconv.FormatInt(int64(v), 10)
			} else {
				val = strconv.FormatFloat(v, 'g', -1, 64)
			}
			lines = append(lines, f.name+lb+" "+val)
		}
		f.mu.Unlock()

		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, line := range lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
