// Package rank provides the evaluation metrics of §VIII-A (Hits@k, MRR)
// and the four Top-SQL competitors (Top-EN, Top-RT, Top-ER, Top-All) that
// PinSQL is compared against in Table I. Each competitor ranks the SQL
// templates of an anomaly case by one aggregated metric over the anomaly
// window, which is exactly what the Performance-Insights-style products of
// cloud vendors expose.
package rank

import (
	"sort"

	"pinsql/internal/collect"
	"pinsql/internal/sqltemplate"
)

// Hit reports whether any of the first k entries of ranked appears in the
// annotated truth set (H@k counts the first correctly found template,
// §VIII-A).
func Hit(ranked []sqltemplate.ID, truth map[sqltemplate.ID]bool, k int) bool {
	if k > len(ranked) {
		k = len(ranked)
	}
	for _, id := range ranked[:k] {
		if truth[id] {
			return true
		}
	}
	return false
}

// ReciprocalRank returns 1/rank of the first ranked template that appears
// in the truth set, or 0 when none does.
func ReciprocalRank(ranked []sqltemplate.ID, truth map[sqltemplate.ID]bool) float64 {
	for i, id := range ranked {
		if truth[id] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// Eval aggregates per-case results into the Table I row format.
type Eval struct {
	H1    float64 // Hits@1, as a fraction in [0,1]
	H5    float64 // Hits@5
	MRR   float64
	Cases int
}

// Evaluate scores a ranking method over a set of cases; rankings[i] is the
// method's output for case i and truths[i] the annotated set.
func Evaluate(rankings [][]sqltemplate.ID, truths []map[sqltemplate.ID]bool) Eval {
	var ev Eval
	if len(rankings) != len(truths) || len(rankings) == 0 {
		return ev
	}
	for i, ranked := range rankings {
		truth := truths[i]
		if Hit(ranked, truth, 1) {
			ev.H1++
		}
		if Hit(ranked, truth, 5) {
			ev.H5++
		}
		ev.MRR += ReciprocalRank(ranked, truth)
	}
	n := float64(len(rankings))
	ev.H1 /= n
	ev.H5 /= n
	ev.MRR /= n
	ev.Cases = len(rankings)
	return ev
}

// Method identifies a Top-SQL baseline.
type Method string

// The §VIII-A competitors.
const (
	MethodTopEN Method = "Top-EN" // by #execution
	MethodTopRT Method = "Top-RT" // by total response time (≈ avg active session)
	MethodTopER Method = "Top-ER" // by #examined_rows
)

// Methods lists the individual baselines in presentation order.
func Methods() []Method { return []Method{MethodTopRT, MethodTopER, MethodTopEN} }

// TopSQL ranks the snapshot's templates by the method's metric summed over
// the anomaly window [as, ae), descending. Ties break by template ID for
// determinism.
func TopSQL(snap *collect.Snapshot, as, ae int, m Method) []sqltemplate.ID {
	type scored struct {
		id    sqltemplate.ID
		value float64
	}
	rows := make([]scored, 0, len(snap.Templates))
	for _, ts := range snap.Templates {
		var v float64
		switch m {
		case MethodTopEN:
			v = ts.Count.Slice(as, ae).Sum()
		case MethodTopRT:
			v = ts.SumRT.Slice(as, ae).Sum()
		case MethodTopER:
			v = ts.SumRows.Slice(as, ae).Sum()
		}
		rows = append(rows, scored{ts.Meta.ID, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].value != rows[j].value {
			return rows[i].value > rows[j].value
		}
		return rows[i].id < rows[j].id
	})
	out := make([]sqltemplate.ID, len(rows))
	for i, r := range rows {
		out[i] = r.id
	}
	return out
}

// BestOf returns, per evaluation metric, the best result across the given
// evals — the paper's Top-All row ("the best results of the variants of
// Top SQLs").
func BestOf(evals ...Eval) Eval {
	var best Eval
	for _, e := range evals {
		if e.H1 > best.H1 {
			best.H1 = e.H1
		}
		if e.H5 > best.H5 {
			best.H5 = e.H5
		}
		if e.MRR > best.MRR {
			best.MRR = e.MRR
		}
		if e.Cases > best.Cases {
			best.Cases = e.Cases
		}
	}
	return best
}
