package rank

import (
	"testing"

	"pinsql/internal/collect"
	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

func ids(ss ...string) []sqltemplate.ID {
	out := make([]sqltemplate.ID, len(ss))
	for i, s := range ss {
		out[i] = sqltemplate.ID(s)
	}
	return out
}

func truth(ss ...string) map[sqltemplate.ID]bool {
	m := make(map[sqltemplate.ID]bool)
	for _, s := range ss {
		m[sqltemplate.ID(s)] = true
	}
	return m
}

func TestHit(t *testing.T) {
	ranked := ids("A", "B", "C", "D", "E", "F")
	tr := truth("C")
	if Hit(ranked, tr, 1) {
		t.Error("H@1 should miss")
	}
	if !Hit(ranked, tr, 5) {
		t.Error("H@5 should hit")
	}
	if Hit(ids(), tr, 5) {
		t.Error("empty ranking cannot hit")
	}
	if !Hit(ids("C"), tr, 10) {
		t.Error("k beyond length must clamp")
	}
}

func TestReciprocalRank(t *testing.T) {
	ranked := ids("A", "B", "C")
	if got := ReciprocalRank(ranked, truth("A")); got != 1 {
		t.Errorf("RR = %v, want 1", got)
	}
	if got := ReciprocalRank(ranked, truth("C")); got != 1.0/3 {
		t.Errorf("RR = %v, want 1/3", got)
	}
	if got := ReciprocalRank(ranked, truth("Z")); got != 0 {
		t.Errorf("RR = %v, want 0", got)
	}
	// Multiple truths: first hit counts.
	if got := ReciprocalRank(ranked, truth("B", "C")); got != 0.5 {
		t.Errorf("RR = %v, want 0.5", got)
	}
}

func TestEvaluate(t *testing.T) {
	rankings := [][]sqltemplate.ID{
		ids("R1", "X", "Y"), // hit@1
		ids("X", "R2", "Y"), // hit@5, RR 1/2
		ids("X", "Y", "Z"),  // miss
	}
	truths := []map[sqltemplate.ID]bool{truth("R1"), truth("R2"), truth("R3")}
	ev := Evaluate(rankings, truths)
	if !almostEq(ev.H1, 1.0/3) || !almostEq(ev.H5, 2.0/3) {
		t.Errorf("H1 = %v H5 = %v", ev.H1, ev.H5)
	}
	if !almostEq(ev.MRR, (1+0.5+0)/3) {
		t.Errorf("MRR = %v", ev.MRR)
	}
	if ev.Cases != 3 {
		t.Errorf("cases = %d", ev.Cases)
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	if ev := Evaluate(nil, nil); ev.Cases != 0 || ev.H1 != 0 {
		t.Errorf("empty evaluate = %+v", ev)
	}
	// Length mismatch returns zero value rather than panicking.
	if ev := Evaluate([][]sqltemplate.ID{ids("A")}, nil); ev.Cases != 0 {
		t.Errorf("mismatched evaluate = %+v", ev)
	}
}

func snapFor(t *testing.T) *collect.Snapshot {
	t.Helper()
	c := collect.NewCollector("db", 0, 10_000, nil, nil)
	add := func(tpl string, sec int, rt float64, rows int64) {
		c.Ingest(dbsim.LogRecord{
			TemplateID: tpl, SQL: tpl, Table: "t", Kind: dbsim.KindSelect,
			ArrivalMs: int64(sec * 1000), ResponseMs: rt, ExaminedRows: rows,
		})
	}
	// Window [2,5): EN ranks by count, RT by summed time, ER by rows.
	add("MANY", 2, 1, 1)
	add("MANY", 3, 1, 1)
	add("MANY", 4, 1, 1)
	add("SLOW", 3, 500, 10)
	add("SCAN", 3, 5, 100_000)
	// Outside the window: must not count.
	add("SLOW", 8, 9999, 1)
	return c.Snapshot()
}

func TestTopSQLVariants(t *testing.T) {
	snap := snapFor(t)
	if got := TopSQL(snap, 2, 5, MethodTopEN)[0]; got != "MANY" {
		t.Errorf("Top-EN first = %s", got)
	}
	if got := TopSQL(snap, 2, 5, MethodTopRT)[0]; got != "SLOW" {
		t.Errorf("Top-RT first = %s", got)
	}
	if got := TopSQL(snap, 2, 5, MethodTopER)[0]; got != "SCAN" {
		t.Errorf("Top-ER first = %s", got)
	}
	// All variants rank every template.
	if got := TopSQL(snap, 2, 5, MethodTopRT); len(got) != 3 {
		t.Errorf("ranking length = %d, want 3", len(got))
	}
}

func TestTopSQLDeterministicTies(t *testing.T) {
	snap := &collect.Snapshot{
		Seconds: 3,
		Templates: []*collect.TemplateSeries{
			{Meta: collect.TemplateMeta{ID: "B"}, Count: timeseries.Series{1, 1, 1}, SumRT: timeseries.Series{1, 1, 1}, SumRows: timeseries.Series{0, 0, 0}},
			{Meta: collect.TemplateMeta{ID: "A"}, Count: timeseries.Series{1, 1, 1}, SumRT: timeseries.Series{1, 1, 1}, SumRows: timeseries.Series{0, 0, 0}},
		},
	}
	got := TopSQL(snap, 0, 3, MethodTopRT)
	if got[0] != "A" || got[1] != "B" {
		t.Errorf("tie order = %v, want [A B]", got)
	}
}

func TestMethods(t *testing.T) {
	ms := Methods()
	if len(ms) != 3 || ms[0] != MethodTopRT {
		t.Errorf("methods = %v", ms)
	}
}

func TestBestOf(t *testing.T) {
	a := Eval{H1: 0.3, H5: 0.6, MRR: 0.4, Cases: 10}
	b := Eval{H1: 0.1, H5: 0.9, MRR: 0.3, Cases: 10}
	best := BestOf(a, b)
	if best.H1 != 0.3 || best.H5 != 0.9 || best.MRR != 0.4 {
		t.Errorf("best = %+v", best)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
