package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pinsql/internal/fleet"
)

// testSpecs mirrors the fleet package's fixture shape at 8 instances —
// enough that K=8 puts one instance on every shard (see TestAssignPinned)
// and K=2 splits them 4/4. The auto-repair instance keeps executed actions
// in the journal, the hardest case for cross-shard determinism.
func testSpecs(n int) []fleet.InstanceSpec {
	specs := fleet.DefaultFleet(n, 7, 3, 300)
	specs[3].AutoRepair = true
	return specs
}

func runManager(t *testing.T, specs []fleet.InstanceSpec, opt Options) (string, *Manager) {
	t.Helper()
	m, err := New(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return rep, m
}

// TestAssignPinned is the partition-function regression test: Assign
// decides which shard directory owns an instance's durable state, so
// changing it strands every existing layout. These values are pinned
// forever — if this test fails, revert the hash, don't update the table.
func TestAssignPinned(t *testing.T) {
	pinned := []struct {
		id     string
		shards int
		want   int
	}{
		{"inst-00", 2, 0}, {"inst-01", 2, 1}, {"inst-02", 2, 0}, {"inst-03", 2, 1},
		{"inst-04", 2, 0}, {"inst-05", 2, 1}, {"inst-06", 2, 0}, {"inst-07", 2, 1},
		{"inst-00", 8, 4}, {"inst-01", 8, 7}, {"inst-02", 8, 2}, {"inst-03", 8, 5},
		{"inst-04", 8, 0}, {"inst-05", 8, 3}, {"inst-06", 8, 6}, {"inst-07", 8, 1},
		{"inst-00", 1, 0}, {"", 2, 1}, {"prod-db-eu-west-1", 8, 4},
	}
	for _, p := range pinned {
		if got := Assign(p.id, p.shards); got != p.want {
			t.Errorf("Assign(%q, %d) = %d, want %d (pinned: durable layouts depend on it)", p.id, p.shards, got, p.want)
		}
	}
	// One instance per shard at K=8 for the test fixture's IDs.
	seen := make(map[int]bool)
	for i := 0; i < 8; i++ {
		seen[Assign(fmt.Sprintf("inst-%02d", i), 8)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("inst-00..07 cover %d of 8 shards; the fixture assumption broke", len(seen))
	}
}

// TestShardDeterminism is the tentpole contract: the aggregated report is
// byte-identical to the unsharded fleet's for every shard count and worker
// split.
func TestShardDeterminism(t *testing.T) {
	specs := testSpecs(8)
	// Ground truth: the same specs through a plain unsharded fleet.
	f, err := fleet.New(specs, fleet.Options{Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	want := f.Report()
	f.Close()
	if !strings.Contains(want, "rsql") || !strings.Contains(want, "action") {
		t.Fatalf("fixture lost its teeth:\n%s", want)
	}

	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {2, 3}, {8, 2},
	} {
		rep, m := runManager(t, specs, Options{Shards: tc.shards, Workers: tc.workers, QueueDepth: 16})
		if m.Shards() != tc.shards {
			t.Fatalf("Shards() = %d, want %d", m.Shards(), tc.shards)
		}
		if rep != want {
			t.Fatalf("shards=%d workers=%d: report diverged from unsharded fleet\n--- unsharded ---\n%s\n--- sharded ---\n%s", tc.shards, tc.workers, want, rep)
		}
		st := m.Status()
		if st.Committed != 8*3 || st.Shed != 0 || !st.Done {
			t.Fatalf("shards=%d: status %+v", tc.shards, st)
		}
		if len(st.Instances) != 8 || st.Instances[0].ID != "inst-00" || st.Instances[7].ID != "inst-07" {
			t.Fatalf("instances not merged in global ID order: %+v", st.Instances)
		}
		// Per-shard rollups must sum to the fleet totals.
		sumCommitted, sumInst := 0, 0
		for _, ss := range m.ShardStatuses() {
			sumCommitted += ss.Committed
			sumInst += ss.Instances
		}
		if sumCommitted != st.Committed || sumInst != 8 {
			t.Fatalf("shard rollups don't sum: committed %d/%d instances %d/8", sumCommitted, st.Committed, sumInst)
		}
	}
}

// TestShardWorkerSplit pins the budget split: the per-shard pools sum to
// the requested total, every shard keeps at least one worker, and a shard
// count above the budget over-provisions rather than starving a shard.
func TestShardWorkerSplit(t *testing.T) {
	specs := testSpecs(8)
	for _, tc := range []struct{ shards, workers, wantTotal int }{
		{2, 5, 5}, // uneven split: 3+2
		{4, 4, 4}, // even: 1 each
		{8, 3, 8}, // more shards than workers: every shard still gets 1
	} {
		m, err := New(specs, Options{Shards: tc.shards, Workers: tc.workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Workers(); got != tc.wantTotal {
			t.Fatalf("shards=%d workers=%d: total %d, want %d", tc.shards, tc.workers, got, tc.wantTotal)
		}
		for sh := 0; sh < tc.shards; sh++ {
			if w := m.shardWorkers(sh, tc.shards); w < 1 {
				t.Fatalf("shard %d got %d workers", sh, w)
			}
		}
		m.Close()
	}
}

// TestShardKillRestart is the durability contract under sharding: a
// whole-process SIGKILL (every shard dies at its next commit once the
// trigger fires) at each commit phase, then a restart over the same data
// directory — per-shard journals recover independently and the finished
// report is byte-identical to an uninterrupted run's.
func TestShardKillRestart(t *testing.T) {
	specs := testSpecs(4)
	want, _ := runManager(t, specs, Options{Shards: 2, Workers: 2, QueueDepth: 16, DataDir: t.TempDir()})

	for _, phase := range []string{"pre-append", "mid-append", "pre-journal", "post-journal"} {
		t.Run(phase, func(t *testing.T) {
			dir := t.TempDir()
			// Whole-process kill: after the trigger fires in one shard,
			// every shard dies at its next commit-phase check, exactly as
			// SIGKILL takes all shards of one process down together.
			var mu sync.Mutex
			fired := false
			opt := Options{Shards: 2, Workers: 2, QueueDepth: 16, DataDir: dir}
			opt.CrashAt = func(id string, window int, ph string) bool {
				mu.Lock()
				defer mu.Unlock()
				if fired {
					return true
				}
				if id == "inst-03" && window == 1 && ph == phase {
					fired = true
					return true
				}
				return false
			}
			m, err := New(specs, opt)
			if err != nil {
				t.Fatal(err)
			}
			m.Start()
			m.Wait() // crashed shards report errors; the kill is the point
			st := m.Status()
			m.Close()
			mu.Lock()
			if !fired {
				mu.Unlock()
				t.Fatal("crash hook never fired")
			}
			mu.Unlock()
			if st.Committed == 4*3 {
				t.Fatal("crash killed nothing: every window already committed")
			}

			got, m2 := runManager(t, specs, Options{Shards: 2, Workers: 2, QueueDepth: 16, DataDir: dir})
			if got != want {
				t.Fatalf("post-restart report diverged\n--- uninterrupted ---\n%s\n--- resumed(%s) ---\n%s", want, phase, got)
			}
			for _, is := range m2.Status().Instances {
				if !is.Done || is.Committed != is.Windows {
					t.Fatalf("instance %s did not finish: committed %d/%d", is.ID, is.Committed, is.Windows)
				}
			}
		})
	}
}

// TestShardCountPersistence: the shard count is part of the durable
// layout. An explicit mismatch on reopen errors; -shards 0 adopts the
// persisted value.
func TestShardCountPersistence(t *testing.T) {
	specs := testSpecs(4)
	dir := t.TempDir()
	if _, m := runManager(t, specs, Options{Shards: 2, Workers: 1, DataDir: dir}); m.Shards() != 2 {
		t.Fatalf("first open: %d shards, want 2", m.Shards())
	}
	if _, err := New(specs, Options{Shards: 3, Workers: 1, DataDir: dir}); err == nil {
		t.Fatal("reopening a 2-shard layout with -shards 3 did not error")
	}
	m, err := New(specs, Options{Shards: 0, Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 2 {
		t.Fatalf("auto shards adopted %d, want the persisted 2", m.Shards())
	}
	m.Close()
}

// TestShardStopDrains: Stop seals every shard in parallel after the first
// commit; the drained-window counts across shards sum to the manager's
// total, and a restart finishes the remainder byte-identically.
func TestShardStopDrains(t *testing.T) {
	specs := testSpecs(4)
	dir := t.TempDir()
	want, _ := runManager(t, specs, Options{Shards: 2, Workers: 2, DataDir: t.TempDir()})

	committed := make(chan struct{}, 1)
	opt := Options{Shards: 2, Workers: 2, DataDir: dir}
	opt.OnCommit = func(string, *fleet.WindowReport) {
		select {
		case committed <- struct{}{}:
		default:
		}
	}
	m, err := New(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	<-committed
	if err := m.Stop(); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if !st.Draining {
		t.Fatal("Stop did not mark the shards draining")
	}
	// Drain accounting: per-shard committed counts must sum to the
	// aggregate, and the journals must have durably recorded exactly the
	// committed windows.
	sum, journaled := 0, int64(0)
	for _, ss := range m.ShardStatuses() {
		sum += ss.Committed
		journaled += ss.CommitBatchWindows
	}
	if sum != st.Committed {
		t.Fatalf("per-shard drained windows sum to %d, manager says %d", sum, st.Committed)
	}
	if journaled != int64(st.Committed) {
		t.Fatalf("journals recorded %d windows, %d committed", journaled, st.Committed)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	got, m2 := runManager(t, specs, Options{Shards: 2, Workers: 2, DataDir: dir})
	if got != want {
		t.Fatalf("drain+restart report diverged\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
	if st := m2.Status(); st.Committed != 4*3 {
		t.Fatalf("restart finished %d windows, want 12", st.Committed)
	}
}

// TestShardHTTP exercises the aggregating control plane end to end: the
// merged /fleet document, the /shards rollups, routed diagnoses, and the
// shard-labelled metrics (including non-zero group-commit counters).
func TestShardHTTP(t *testing.T) {
	specs := fleet.DefaultFleet(4, 3, 2, 300)
	m, err := New(specs, Options{Shards: 2, Workers: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	get := func(path string, wantCode int) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var st Status
	if err := json.Unmarshal([]byte(get("/fleet", 200)), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || !st.Done || st.Committed != 8 || len(st.Instances) != 4 {
		t.Fatalf("unexpected /fleet status: %+v", st)
	}
	for _, is := range st.Instances {
		if want := Assign(is.ID, 2); is.Shard != want {
			t.Fatalf("instance %s annotated shard=%d, want %d", is.ID, is.Shard, want)
		}
	}

	var shards []ShardStatus
	if err := json.Unmarshal([]byte(get("/shards", 200)), &shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("/shards returned %d rows, want 2", len(shards))
	}
	for _, ss := range shards {
		if ss.Instances != 2 || ss.Committed != 4 || !ss.Done {
			t.Fatalf("unexpected shard rollup: %+v", ss)
		}
		if ss.CommitBatches < 1 || ss.CommitBatchWindows != 4 {
			t.Fatalf("group-commit accounting off: %+v", ss)
		}
	}

	var reps []*fleet.WindowReport
	if err := json.Unmarshal([]byte(get("/instances/inst-00/diagnoses", 200)), &reps); err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[1].Records == 0 {
		t.Fatalf("unexpected diagnoses: %+v", reps)
	}
	get("/instances/nope/diagnoses", 404)

	metrics := get("/metrics", 200)
	for _, want := range []string{
		// Manager aggregates, one series per shard.
		`pinsql_shard_instances{shard="0"} 2`,
		`pinsql_shard_instances{shard="1"} 2`,
		`pinsql_shard_windows_total{shard="0"} 4`,
		`pinsql_shard_shed_windows_total{shard="1"} 0`,
		`pinsql_shard_queue_depth{shard="0"} 0`,
		`pinsql_shard_workers{shard="0"} 1`,
		`pinsql_shard_commit_batch_windows_total{shard="1"} 4`,
		// Fleet series carry the shard label so K shards share the
		// registry without colliding (labels render sorted by key).
		`pinsql_fleet_windows_total{instance="inst-00",shard="0"} 2`,
		`pinsql_fleet_windows_total{instance="inst-01",shard="1"} 2`,
		`pinsql_broker_dropped_total{shard="0",topic="inst-00"} 0`,
		`pinsql_ingest_parse_errors_total{instance="inst-00",shard="0"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
	// Group commits must actually have happened (durable mode).
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, `pinsql_shard_commit_batches_total{shard="0"}`) && strings.HasSuffix(line, " 0") {
			t.Fatalf("no group commits recorded: %s", line)
		}
	}
	if !strings.Contains(get("/debug/pprof/cmdline", 200), "shard") {
		t.Fatal("pprof cmdline endpoint not wired")
	}
}

// TestShardEmptyShards: a shard with no instances is legal (the pinned
// hash may leave gaps) and settles immediately without blocking Wait or
// Stop.
func TestShardEmptyShards(t *testing.T) {
	specs := []fleet.InstanceSpec{fleet.DefaultSpec("inst-00", 5, 2, 300)}
	rep, m := runManager(t, specs, Options{Shards: 4, Workers: 2})
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", m.Shards())
	}
	if !strings.HasPrefix(rep, "instance inst-00: 2 windows") {
		t.Fatalf("unexpected report:\n%s", rep)
	}
	st := m.Status()
	if !st.Done || st.Committed != 2 {
		t.Fatalf("status %+v", st)
	}
}
