package remote

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"pinsql/internal/fleet"
	"pinsql/internal/obs"
	"pinsql/internal/shard"
)

// APIVersion is the worker API's version. The /ready handshake carries it
// and the coordinator refuses a worker that speaks a different version —
// a mixed-binary deployment fails loudly at spawn, not subtly at merge.
const APIVersion = 1

// EnvConfig is the environment variable a coordinator sets when spawning
// a worker: the JSON-encoded Config. A process that finds it set is a
// worker regardless of its argv (see MaybeWorker).
const EnvConfig = "PINSQL_WORKER_CONFIG"

// Config is everything a worker process needs to open its shard: which
// slice of the fleet it owns, the per-shard engine knobs the coordinator
// resolved for it, and where to report its address. It rides to the
// child in EnvConfig.
type Config struct {
	APIVersion int `json:"api_version"`

	// Shard / Shards locate this worker in the pinned Assign partition:
	// the worker rebuilds the full spec set and keeps exactly the
	// instances with Assign(id, Shards) == Shard.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`

	Specs SpecSet `json:"specs"`

	// Workers is this shard's already-split scheduler budget (the
	// coordinator runs the same split as in-process mode, so the worker
	// must not re-derive it).
	Workers          int `json:"workers"`
	QueueDepth       int `json:"queue_depth,omitempty"`
	SyncEvery        int `json:"sync_every,omitempty"`
	DiagnosisWorkers int `json:"diagnosis_workers,omitempty"`
	BrokerBuffer     int `json:"broker_buffer,omitempty"`

	// DataDir is the fleet-wide root; the worker namespaces itself under
	// DataDir/shard-<k> exactly like the in-process runtime. "" keeps the
	// shard in memory.
	DataDir string `json:"data_dir,omitempty"`

	// Addr is the listen address ("" = 127.0.0.1:0). AddrFile is where
	// the worker publishes "host:port\npid\n" once it is ready to serve —
	// written to a temp name and renamed, so a reader never sees a torn
	// file.
	Addr     string `json:"addr,omitempty"`
	AddrFile string `json:"addr_file"`

	// KillAt is the crash-injection hook: "instance:window:phase" makes
	// the worker SIGKILL itself at that exact commit phase (see
	// fleet.Options.CrashAt). Supervision tests use it to die at every
	// phase; the coordinator never forwards it to a respawn.
	KillAt string `json:"kill_at,omitempty"`
}

func encodeConfig(cfg Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("remote: config not marshalable: %v", err))
	}
	return string(b)
}

// MaybeWorker turns the current process into a shard worker when
// EnvConfig is set, and never returns in that case. Every binary that
// spawns workers via SelfCommand must call it first thing in main (or
// TestMain) — before flag parsing, before anything that could differ
// between coordinator and worker.
func MaybeWorker() {
	raw := os.Getenv(EnvConfig)
	if raw == "" {
		return
	}
	var cfg Config
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pinsql-worker: bad %s: %v\n", EnvConfig, err)
		os.Exit(2)
	}
	if err := RunWorker(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pinsql-worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker opens the shard's fleet, publishes the address file, and
// serves the worker API until the coordinator posts /api/v1/quit. It is
// the whole worker main loop.
func RunWorker(cfg Config) error {
	if cfg.APIVersion != APIVersion {
		return fmt.Errorf("worker speaks API v%d, config is v%d", APIVersion, cfg.APIVersion)
	}
	if cfg.Shards < 1 || cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return fmt.Errorf("bad shard index %d of %d", cfg.Shard, cfg.Shards)
	}
	all, err := cfg.Specs.Build()
	if err != nil {
		return err
	}
	var mine []fleet.InstanceSpec
	for _, sp := range all {
		if shard.Assign(sp.ID, cfg.Shards) == cfg.Shard {
			mine = append(mine, sp)
		}
	}

	reg := obs.NewRegistry()
	fopt := fleet.Options{
		Workers:          cfg.Workers,
		QueueDepth:       cfg.QueueDepth,
		SyncEvery:        cfg.SyncEvery,
		DiagnosisWorkers: cfg.DiagnosisWorkers,
		BrokerBuffer:     cfg.BrokerBuffer,
		Metrics:          reg,
		Labels:           []obs.Label{obs.L("shard", strconv.Itoa(cfg.Shard))},
		CrashAt:          killAtHook(cfg.KillAt),
	}
	if cfg.DataDir != "" {
		fopt.DataDir = filepath.Join(cfg.DataDir, "shard-"+strconv.Itoa(cfg.Shard))
	}
	flt, err := fleet.New(mine, fopt)
	if err != nil {
		return err
	}

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		flt.Close()
		return err
	}
	w := &workerServer{cfg: cfg, flt: flt, reg: reg, quit: make(chan struct{})}
	srv := &http.Server{Handler: w.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if err := writeAddrFile(cfg.AddrFile, ln.Addr().String()); err != nil {
		flt.Close()
		ln.Close()
		return err
	}

	select {
	case <-w.quit:
		// Graceful exit: drain already ran (or the fleet never started);
		// Close is idempotent and a no-op after Stop.
		err := flt.Close()
		ln.Close()
		return err
	case err := <-serveErr:
		flt.Close()
		return fmt.Errorf("worker API server: %w", err)
	}
}

// killAtHook parses "instance:window:phase" into a fleet.CrashAt hook
// that SIGKILLs this process — a real kill -9, not a simulated one, so
// supervision tests exercise the same recovery path a production OOM
// kill would.
func killAtHook(spec string) func(id string, window int, phase string) bool {
	if spec == "" {
		return nil
	}
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 {
		return nil
	}
	wantWin, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil
	}
	return func(id string, window int, phase string) bool {
		if id != parts[0] || window != wantWin || phase != parts[2] {
			return false
		}
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: the signal is uncatchable
	}
}

// writeAddrFile publishes "host:port\npid\n" atomically (temp + rename).
func writeAddrFile(path, addr string) error {
	if path == "" {
		return fmt.Errorf("worker config names no addr file")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	body := addr + "\n" + strconv.Itoa(os.Getpid()) + "\n"
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readAddrFile parses a published address file.
func readAddrFile(path string) (addr string, pid int, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", 0, err
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 2 {
		return "", 0, fmt.Errorf("remote: torn addr file %s: %q", path, b)
	}
	pid, err = strconv.Atoi(lines[1])
	if err != nil {
		return "", 0, fmt.Errorf("remote: bad pid in %s: %q", path, lines[1])
	}
	return lines[0], pid, nil
}

// readyDoc is the GET /api/v1/ready handshake. The coordinator checks
// every field against what it expects before trusting the worker.
type readyDoc struct {
	Version int      `json:"version"`
	Shard   int      `json:"shard"`
	Shards  int      `json:"shards"`
	Pid     int      `json:"pid"`
	IDs     []string `json:"ids"`
}

// statusDoc is the GET /api/v1/status document: the shard's fleet.Status
// plus the journal's group-commit accounting, one round trip.
type statusDoc struct {
	Status             fleet.Status `json:"status"`
	CommitBatches      int64        `json:"commit_batches"`
	CommitBatchWindows int64        `json:"commit_batch_windows"`
}

// diagnosesDoc is the GET /api/v1/diagnoses?id= document.
type diagnosesDoc struct {
	OK      bool                  `json:"ok"`
	Reports []*fleet.WindowReport `json:"reports"`
}

// errDoc carries an operation result ("" = success) for the blocking
// endpoints (/wait, /drain).
type errDoc struct {
	Error string `json:"error"`
}

// workerServer is the worker-side API surface over one fleet shard.
type workerServer struct {
	cfg      Config
	flt      *fleet.Fleet
	reg      *obs.Registry
	start    sync.Once
	quit     chan struct{}
	quitOnce sync.Once
}

// mux wires the versioned worker API:
//
//	GET  /api/v1/ready      handshake (version, shard, pid, owned IDs)
//	POST /api/v1/start      launch the shard's scheduler (idempotent)
//	GET  /api/v1/wait       long-poll until the shard settles
//	GET  /api/v1/status     fleet.Status + journal group-commit stats
//	GET  /api/v1/report     report fragment: every owned instance's
//	                        committed windows, keyed by instance ID
//	GET  /api/v1/diagnoses  one instance's committed windows (?id=)
//	GET  /api/v1/metrics    the shard's own Prometheus exposition
//	POST /api/v1/drain      graceful drain (fleet.Stop), blocks
//	POST /api/v1/quit       acknowledge, then exit the process
func (w *workerServer) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/ready", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, readyDoc{
			Version: APIVersion,
			Shard:   w.cfg.Shard,
			Shards:  w.cfg.Shards,
			Pid:     os.Getpid(),
			IDs:     w.flt.IDs(),
		})
	})
	mux.HandleFunc("POST /api/v1/start", func(rw http.ResponseWriter, r *http.Request) {
		w.start.Do(w.flt.Start)
		writeJSON(rw, errDoc{})
	})
	mux.HandleFunc("GET /api/v1/wait", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, errDoc{Error: errString(w.flt.Wait())})
	})
	mux.HandleFunc("GET /api/v1/status", func(rw http.ResponseWriter, r *http.Request) {
		doc := statusDoc{Status: w.flt.Status()}
		doc.CommitBatches, doc.CommitBatchWindows = w.flt.JournalStats()
		writeJSON(rw, doc)
	})
	mux.HandleFunc("GET /api/v1/report", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, w.flt.Reports())
	})
	mux.HandleFunc("GET /api/v1/diagnoses", func(rw http.ResponseWriter, r *http.Request) {
		reps, ok := w.flt.Diagnoses(r.URL.Query().Get("id"))
		if reps == nil {
			reps = []*fleet.WindowReport{}
		}
		writeJSON(rw, diagnosesDoc{OK: ok, Reports: reps})
	})
	mux.HandleFunc("GET /api/v1/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = w.reg.WritePrometheus(rw)
	})
	mux.HandleFunc("POST /api/v1/drain", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, errDoc{Error: errString(w.flt.Stop())})
	})
	mux.HandleFunc("POST /api/v1/quit", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, errDoc{})
		w.quitOnce.Do(func() { close(w.quit) })
	})
	return mux
}

func errString(err error) string {
	if err != nil {
		return err.Error()
	}
	return ""
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
