// Package remote runs shards as separate pinsqld worker processes behind
// the shard.Runtime seam. The coordinator side (Factory / Runtime)
// supervises one child process per shard and speaks a small versioned
// HTTP/JSON worker API to it; the worker side (MaybeWorker / RunWorker)
// opens the shard's fleet exactly as the in-process runtime would —
// same worker split, same shard-<k> data directory, same shard-labelled
// metrics — so the aggregated fleet report is byte-identical across the
// process boundary. That identity is the package's contract: every float
// in a WindowReport round-trips exactly through encoding/json, and the
// coordinator merges fragments in the same pinned instance-ID order as
// the in-process manager.
package remote

import (
	"fmt"
	"sort"

	"pinsql/internal/fleet"
)

// SpecSet is the serializable description of a fleet's instance specs.
// fleet.InstanceSpec carries closures (Setup/Inject/Trace) that cannot
// cross a process boundary, so the coordinator ships this recipe instead
// and both sides rebuild the concrete specs deterministically from it —
// the same way a restarted pinsqld rebuilds them from its flags.
type SpecSet struct {
	// Single names a one-instance fleet (pinsqld's default mode); empty
	// selects the n-instance DefaultFleet.
	Single string `json:"single,omitempty"`

	// Instances is the DefaultFleet size (ignored when Single is set).
	Instances int `json:"instances,omitempty"`

	Seed      int64 `json:"seed"`
	Windows   int   `json:"windows"`
	WindowSec int   `json:"window_sec"`

	// AutoRepair turns on repair execution for every instance;
	// AutoRepairIDs turns it on for specific ones (tests use this to
	// reproduce mixed fleets).
	AutoRepair    bool     `json:"auto_repair,omitempty"`
	AutoRepairIDs []string `json:"auto_repair_ids,omitempty"`
}

// Build rebuilds the concrete instance specs. Deterministic in the
// SpecSet alone: coordinator and worker construct identical fleets.
func (s SpecSet) Build() ([]fleet.InstanceSpec, error) {
	var specs []fleet.InstanceSpec
	switch {
	case s.Single != "":
		specs = []fleet.InstanceSpec{fleet.DefaultSpec(s.Single, s.Seed, s.Windows, s.WindowSec)}
	case s.Instances > 0:
		specs = fleet.DefaultFleet(s.Instances, s.Seed, s.Windows, s.WindowSec)
	default:
		return nil, fmt.Errorf("remote: spec set names no instances")
	}
	repair := make(map[string]bool, len(s.AutoRepairIDs))
	for _, id := range s.AutoRepairIDs {
		repair[id] = true
	}
	for i := range specs {
		if s.AutoRepair || repair[specs[i].ID] {
			specs[i].AutoRepair = true
		}
	}
	return specs, nil
}

// IDs returns the sorted instance IDs the spec set describes.
func (s SpecSet) IDs() ([]string, error) {
	specs, err := s.Build()
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = sp.ID
	}
	sort.Strings(ids)
	return ids, nil
}
