package remote

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pinsql/internal/fleet"
	"pinsql/internal/shard"
)

// TestMain makes the test binary dual-role: a coordinator-side test
// spawns THIS binary as its workers (SelfCommand), and MaybeWorker turns
// those children into shard workers before any test runs.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// testSpecSet mirrors the in-process shard tests' fleet: n heterogeneous
// instances, one auto-repairing.
func testSpecSet(n, windows int) SpecSet {
	ss := SpecSet{Instances: n, Seed: 7, Windows: windows, WindowSec: 300}
	if n > 3 {
		ss.AutoRepairIDs = []string{"inst-03"}
	}
	return ss
}

// recordingFactory wraps Factory so tests can reach the concrete
// *Runtime values (restart counts, adoption state, the Abandon seam).
func recordingFactory(opt Options, sink *[]*Runtime) shard.RuntimeFactory {
	inner := Factory(opt)
	var mu sync.Mutex
	return func(sh, shards int, specs []fleet.InstanceSpec, fopt fleet.Options) (shard.Runtime, error) {
		rt, err := inner(sh, shards, specs, fopt)
		if err == nil {
			mu.Lock()
			*sink = append(*sink, rt.(*Runtime))
			mu.Unlock()
		}
		return rt, err
	}
}

// runToReport drives a manager through Start/Wait/Report/Close.
func runToReport(t *testing.T, specs []fleet.InstanceSpec, opt shard.Options) string {
	t.Helper()
	m, err := shard.New(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCrossModeDeterminism is the tentpole's headline claim: the fleet
// report is byte-identical between in-process shards and worker
// processes, for shards in {1, 2, 8}.
func TestCrossModeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	ss := testSpecSet(8, 2)
	specs, err := ss.Build()
	if err != nil {
		t.Fatal(err)
	}
	golden := runToReport(t, specs, shard.Options{Shards: 1, Workers: 2})
	if !strings.Contains(golden, "instance inst-00") {
		t.Fatalf("golden report looks empty:\n%s", golden)
	}

	for _, k := range []int{1, 2, 8} {
		specs, err := ss.Build()
		if err != nil {
			t.Fatal(err)
		}
		got := runToReport(t, specs, shard.Options{
			Shards:  k,
			Workers: 2,
			Runtime: Factory(Options{Specs: ss}),
		})
		if got != golden {
			t.Errorf("shards=%d multi-process report diverges from in-process golden\n--- got\n%s--- want\n%s", k, got, golden)
		}
	}
}

// TestRemoteControlPlane exercises the coordinator's merged reads over
// live worker processes: /fleet-shaped Status, routed Diagnoses, the
// merged metrics exposition, and per-shard rollups with liveness.
func TestRemoteControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	ss := testSpecSet(4, 2)
	specs, err := ss.Build()
	if err != nil {
		t.Fatal(err)
	}
	var rts []*Runtime
	m, err := shard.New(specs, shard.Options{
		Shards:  2,
		Workers: 2,
		Runtime: recordingFactory(Options{Specs: ss}, &rts),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}

	st := m.Status()
	if st.Shards != 2 || !st.Done {
		t.Errorf("Status = shards %d done %v, want 2/true", st.Shards, st.Done)
	}
	if len(st.Instances) != 4 {
		t.Fatalf("Status has %d instances, want 4", len(st.Instances))
	}
	for _, is := range st.Instances {
		if is.Committed != 2 {
			t.Errorf("instance %s committed %d windows, want 2", is.ID, is.Committed)
		}
		if want := shard.Assign(is.ID, 2); is.Shard != want {
			t.Errorf("instance %s annotated shard %d, want %d", is.ID, is.Shard, want)
		}
	}

	reps, ok := m.Diagnoses("inst-02")
	if !ok || len(reps) != 2 {
		t.Errorf("Diagnoses(inst-02) = %d reports ok=%v, want 2/true", len(reps), ok)
	}
	if _, ok := m.Diagnoses("nope"); ok {
		t.Error("Diagnoses(nope) ok for unknown instance")
	}

	for _, row := range m.ShardStatuses() {
		if !row.Up || !row.Done {
			t.Errorf("shard %d up=%v done=%v, want true/true", row.Shard, row.Up, row.Done)
		}
	}

	text := m.MetricsExposition()
	for _, want := range []string{
		`pinsql_shard_up{shard="0"} 1`,
		`pinsql_shard_up{shard="1"} 1`,
		`pinsql_fleet_windows_total{instance="inst-00",shard="` + fmt.Sprint(shard.Assign("inst-00", 2)) + `"} 2`,
		"# TYPE pinsql_shard_windows_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged /metrics misses %q", want)
		}
	}
	// The merged document must not duplicate a family header.
	if n := strings.Count(text, "# TYPE pinsql_fleet_windows_total counter"); n != 1 {
		t.Errorf("merged /metrics has %d pinsql_fleet_windows_total TYPE lines, want 1", n)
	}
}

// TestWorkerKillRestart SIGKILLs a worker process at every commit phase
// and asserts the coordinator relaunches it, the journal replays, and
// the final report matches the never-killed golden byte for byte.
func TestWorkerKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker processes")
	}
	ss := testSpecSet(4, 3)
	const victim = "inst-00"
	victimShard := shard.Assign(victim, 2)

	goldenSpecs, err := ss.Build()
	if err != nil {
		t.Fatal(err)
	}
	golden := runToReport(t, goldenSpecs, shard.Options{
		Shards: 2, Workers: 2, DataDir: t.TempDir(),
	})

	for _, phase := range []string{"pre-append", "mid-append", "pre-journal", "post-journal"} {
		t.Run(phase, func(t *testing.T) {
			specs, err := ss.Build()
			if err != nil {
				t.Fatal(err)
			}
			var rts []*Runtime
			got := runToReport(t, specs, shard.Options{
				Shards:  2,
				Workers: 2,
				DataDir: t.TempDir(),
				Runtime: recordingFactory(Options{
					Specs:  ss,
					KillAt: victim + ":1:" + phase,
				}, &rts),
			})
			if got != golden {
				t.Errorf("report after SIGKILL at %s diverges\n--- got\n%s--- want\n%s", phase, got, golden)
			}
			killed := false
			for _, rt := range rts {
				rt.mu.Lock()
				if rt.cfg.Shard == victimShard && rt.restarts > 0 {
					killed = true
				}
				rt.mu.Unlock()
			}
			if !killed {
				t.Errorf("kill hook at %s never fired: no worker restart recorded", phase)
			}
		})
	}
}

// TestCoordinatorRestartAdoptsWorkers simulates a coordinator crash with
// live workers: the replacement coordinator finds the published address
// files, adopts the running processes instead of spawning duplicates
// over the same shard directories, and serves the same bytes.
func TestCoordinatorRestartAdoptsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	ss := testSpecSet(4, 2)
	dir := t.TempDir()

	specs, err := ss.Build()
	if err != nil {
		t.Fatal(err)
	}
	var rts1 []*Runtime
	m1, err := shard.New(specs, shard.Options{
		Shards: 2, Workers: 2, DataDir: dir,
		Runtime: recordingFactory(Options{Specs: ss, DataDir: dir}, &rts1),
	})
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	if err := m1.Wait(); err != nil {
		t.Fatal(err)
	}
	golden, err := m1.Report()
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator "crashes": supervision detaches, workers keep running,
	// address files stay published.
	pids := make(map[int]bool)
	for _, rt := range rts1 {
		rt.mu.Lock()
		if rt.cmd != nil {
			pids[rt.cmd.Process.Pid] = true
		}
		rt.mu.Unlock()
		rt.Abandon()
	}
	if len(pids) != 2 {
		t.Fatalf("recorded %d worker pids, want 2", len(pids))
	}

	specs, err = ss.Build()
	if err != nil {
		t.Fatal(err)
	}
	var rts2 []*Runtime
	m2, err := shard.New(specs, shard.Options{
		Shards: 2, Workers: 2, DataDir: dir,
		Runtime: recordingFactory(Options{Specs: ss, DataDir: dir}, &rts2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range rts2 {
		rt.mu.Lock()
		adopted, pid := rt.cmd == nil, rt.adoptPid
		rt.mu.Unlock()
		if !adopted || !pids[pid] {
			t.Errorf("shard %d: adopted=%v pid=%d, want adoption of a live worker %v",
				rt.cfg.Shard, adopted, pid, pids)
		}
	}
	m2.Start()
	if err := m2.Wait(); err != nil {
		t.Fatal(err)
	}
	got, err := m2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got != golden {
		t.Errorf("adopting coordinator's report diverges\n--- got\n%s--- want\n%s", got, golden)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	// Close must actually have taken the adopted workers down.
	deadline := time.Now().Add(5 * time.Second)
	for pid := range pids {
		for time.Now().Before(deadline) && syscall.Kill(pid, 0) == nil {
			time.Sleep(50 * time.Millisecond)
		}
		if syscall.Kill(pid, 0) == nil {
			t.Errorf("worker pid %d still alive after Close", pid)
		}
	}
}

// TestHandshakeRejects pins the readiness handshake: a worker that
// answers /ready with the wrong API version, shard coordinates, or
// instance set is refused.
func TestHandshakeRejects(t *testing.T) {
	serve := func(doc readyDoc) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /api/v1/ready", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, doc)
		})
		return httptest.NewServer(mux)
	}
	r := &Runtime{cfg: Config{Shard: 0, Shards: 2}, ids: []string{"inst-00", "inst-02"}}

	cases := []struct {
		name string
		doc  readyDoc
		want string
	}{
		{"version", readyDoc{Version: 99, Shard: 0, Shards: 2, IDs: []string{"inst-00", "inst-02"}}, "speaks API"},
		{"shard", readyDoc{Version: APIVersion, Shard: 1, Shards: 2, IDs: []string{"inst-00", "inst-02"}}, "identifies as shard"},
		{"ids", readyDoc{Version: APIVersion, Shard: 0, Shards: 2, IDs: []string{"inst-00", "inst-03"}}, "owns"},
	}
	for _, tc := range cases {
		srv := serve(tc.doc)
		err := r.handshake(strings.TrimPrefix(srv.URL, "http://"))
		srv.Close()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: handshake err = %v, want containing %q", tc.name, err, tc.want)
		}
	}

	ok := serve(readyDoc{Version: APIVersion, Shard: 0, Shards: 2, IDs: []string{"inst-00", "inst-02"}})
	defer ok.Close()
	if err := r.handshake(strings.TrimPrefix(ok.URL, "http://")); err != nil {
		t.Errorf("matching handshake rejected: %v", err)
	}
}

// TestSpecSetRoundTrip pins the spec recipe: coordinator and worker build
// identical instance sets from the same SpecSet, and the worker's Assign
// filter partitions them without loss.
func TestSpecSetRoundTrip(t *testing.T) {
	ss := testSpecSet(8, 2)
	a, err := ss.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ss.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("Build sizes %d/%d, want 8", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Seed != b[i].Seed || a[i].AutoRepair != b[i].AutoRepair {
			t.Errorf("spec %d differs across builds: %+v vs %+v", i, a[i], b[i])
		}
	}
	if !a[3].AutoRepair || a[2].AutoRepair {
		t.Error("AutoRepairIDs not applied to exactly inst-03")
	}
	owned := 0
	for k := 0; k < 3; k++ {
		for _, sp := range a {
			if shard.Assign(sp.ID, 3) == k {
				owned++
			}
		}
	}
	if owned != len(a) {
		t.Errorf("Assign partition covers %d of %d specs", owned, len(a))
	}
	if _, err := (SpecSet{}).Build(); err == nil {
		t.Error("empty SpecSet built without error")
	}
}
