package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"pinsql/internal/fleet"
	"pinsql/internal/shard"
)

// Options configures the worker-process runtime factory.
type Options struct {
	// Specs is the serializable fleet recipe shipped to every worker
	// (each worker keeps only the instances Assign routes to its shard).
	Specs SpecSet

	// DataDir is the fleet-wide durable root — the same value handed to
	// shard.Options.DataDir. Workers namespace themselves under
	// DataDir/shard-<k>, and the address files live next to the SHARDS
	// file so a restarted coordinator can find (and adopt) live workers.
	// "" keeps shards in memory; address files then live in a temp
	// directory and adoption across coordinator restarts is off.
	DataDir string

	// Command builds the command that launches a worker for a config.
	// Nil selects SelfCommand (re-exec this binary with EnvConfig set;
	// the binary must call MaybeWorker first thing in main). Tests
	// override it to strip the KillAt hook from respawns or point at a
	// different binary.
	Command func(cfg Config) *exec.Cmd

	// ReadyTimeout bounds one worker's spawn-to-ready window (address
	// file published and the /ready handshake answered). 0 = 60s.
	ReadyTimeout time.Duration

	// MaxRestarts caps how many times one shard's worker is relaunched
	// after unexpected exits before the runtime gives up. 0 = 16.
	MaxRestarts int

	// KillAt is the crash-injection hook, forwarded to each worker's
	// FIRST spawn only — a respawned worker never inherits it, so a
	// kill-at test cannot crash-loop.
	KillAt string
}

// SelfCommand relaunches the current binary as a worker: same executable,
// EnvConfig carrying the JSON config. MaybeWorker on the child side picks
// it up before anything else runs.
func SelfCommand(cfg Config) *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), EnvConfig+"="+encodeConfig(cfg))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd
}

// Factory returns the shard.RuntimeFactory that runs every shard as a
// supervised pinsqld worker process. Drop it into shard.Options.Runtime
// and the Manager becomes a multi-process coordinator; everything else —
// partition, worker split, merge order, report bytes — stays identical
// to in-process mode.
func Factory(opt Options) shard.RuntimeFactory {
	return func(sh, shards int, specs []fleet.InstanceSpec, fopt fleet.Options) (shard.Runtime, error) {
		return newRuntime(sh, shards, specs, fopt, opt)
	}
}

// Runtime supervises one shard's worker process: spawn (or adopt),
// readiness handshake, restart-on-crash, and the HTTP/JSON calls behind
// every shard.Runtime method. All coordination runs through one mutex +
// cond; blocking API calls (Wait, drain) re-resolve the worker address
// after every respawn.
type Runtime struct {
	cfg     Config
	opt     Options
	ids     []string // expected owned instance IDs, sorted
	tmpDir  string   // addr-file temp dir to remove at Close ("" = none)
	command func(cfg Config) *exec.Cmd

	client     *http.Client // bounded calls: ready/status/report/metrics
	longClient *http.Client // unbounded calls: wait/drain

	mu        sync.Mutex
	cond      *sync.Cond
	addr      string
	cmd       *exec.Cmd // nil when the worker was adopted, not spawned
	adoptPid  int
	started   bool // Start() was called; respawns auto-start
	drained   bool // Stop() completed; respawns stay idle
	closing   bool
	down      bool // worker dead, respawn in flight
	restarts  int
	permErr   error // supervision gave up; every call fails with this
	superDone chan struct{}

	statMu sync.Mutex
	stat   statusDoc
	statAt time.Time
}

func newRuntime(sh, shards int, specs []fleet.InstanceSpec, fopt fleet.Options, opt Options) (*Runtime, error) {
	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = sp.ID
	}
	sort.Strings(ids)

	if opt.ReadyTimeout <= 0 {
		opt.ReadyTimeout = 60 * time.Second
	}
	if opt.MaxRestarts <= 0 {
		opt.MaxRestarts = 16
	}

	addrDir, tmpDir := opt.DataDir, ""
	if addrDir == "" {
		d, err := os.MkdirTemp("", "pinsql-remote-")
		if err != nil {
			return nil, err
		}
		addrDir, tmpDir = d, d
	}

	r := &Runtime{
		cfg: Config{
			APIVersion:       APIVersion,
			Shard:            sh,
			Shards:           shards,
			Specs:            opt.Specs,
			Workers:          fopt.Workers,
			QueueDepth:       fopt.QueueDepth,
			SyncEvery:        fopt.SyncEvery,
			DiagnosisWorkers: fopt.DiagnosisWorkers,
			BrokerBuffer:     fopt.BrokerBuffer,
			DataDir:          opt.DataDir,
			AddrFile:         filepath.Join(addrDir, fmt.Sprintf("worker-%d.addr", sh)),
			KillAt:           opt.KillAt,
		},
		opt:        opt,
		ids:        ids,
		tmpDir:     tmpDir,
		command:    opt.Command,
		client:     &http.Client{Timeout: 30 * time.Second},
		longClient: &http.Client{},
		superDone:  make(chan struct{}),
	}
	if r.command == nil {
		r.command = SelfCommand
	}
	r.cond = sync.NewCond(&r.mu)

	// A live worker from a previous coordinator? Adopt it instead of
	// spawning a duplicate over the same shard directory.
	if addr, pid, err := readAddrFile(r.cfg.AddrFile); err == nil {
		if r.handshake(addr) == nil {
			r.addr, r.adoptPid = addr, pid
			go r.supervise()
			return r, nil
		}
		// Stale file: a half-dead worker must not keep the shard's
		// stores open while a fresh one starts over them.
		_ = syscall.Kill(pid, syscall.SIGKILL)
		_ = os.Remove(r.cfg.AddrFile)
	}

	if err := r.spawn(true); err != nil {
		r.cleanupTmp()
		return nil, err
	}
	go r.supervise()
	return r, nil
}

// spawn launches a worker process and blocks until its readiness
// handshake passes. withKill forwards the KillAt hook (first spawn only).
func (r *Runtime) spawn(withKill bool) error {
	cfg := r.cfg
	if !withKill {
		cfg.KillAt = ""
	}
	_ = os.Remove(cfg.AddrFile)
	cmd := r.command(cfg)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn worker %d: %w", r.cfg.Shard, err)
	}

	addr, err := r.awaitReady(cfg.AddrFile, cmd)
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return err
	}

	r.mu.Lock()
	r.cmd, r.adoptPid, r.addr = cmd, 0, addr
	started, drained := r.started, r.drained
	r.mu.Unlock()

	// A respawned worker resumes where its journal left off — but only
	// if the coordinator had started the fleet (and has not drained it).
	if started && !drained {
		_ = r.post(addr, "/api/v1/start")
	}
	return nil
}

// awaitReady polls for the worker's address file, then validates the
// /ready handshake: API version, shard coordinates, and the exact owned
// instance IDs. cmd (optional) lets the poll fail fast if the child dies
// before publishing.
func (r *Runtime) awaitReady(addrFile string, cmd *exec.Cmd) (string, error) {
	deadline := time.Now().Add(r.opt.ReadyTimeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if cmd != nil && cmd.ProcessState != nil {
			return "", fmt.Errorf("worker %d exited before ready", r.cfg.Shard)
		}
		addr, _, err := readAddrFile(addrFile)
		if err == nil {
			if err := r.handshake(addr); err == nil {
				return addr, nil
			} else {
				lastErr = err
			}
		} else {
			lastErr = err
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("worker %d not ready after %s: %w", r.cfg.Shard, r.opt.ReadyTimeout, lastErr)
}

// handshake validates GET /ready against what this coordinator expects.
func (r *Runtime) handshake(addr string) error {
	cl := &http.Client{Timeout: 2 * time.Second}
	resp, err := cl.Get("http://" + addr + "/api/v1/ready")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var doc readyDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("worker %d: bad ready document: %w", r.cfg.Shard, err)
	}
	if doc.Version != APIVersion {
		return fmt.Errorf("worker %d speaks API v%d, coordinator v%d", r.cfg.Shard, doc.Version, APIVersion)
	}
	if doc.Shard != r.cfg.Shard || doc.Shards != r.cfg.Shards {
		return fmt.Errorf("worker at %s identifies as shard %d/%d, want %d/%d",
			addr, doc.Shard, doc.Shards, r.cfg.Shard, r.cfg.Shards)
	}
	if len(doc.IDs) != len(r.ids) {
		return fmt.Errorf("worker %d owns %d instances, want %d", r.cfg.Shard, len(doc.IDs), len(r.ids))
	}
	for i, id := range r.ids {
		if doc.IDs[i] != id {
			return fmt.Errorf("worker %d owns %q at %d, want %q", r.cfg.Shard, doc.IDs[i], i, id)
		}
	}
	return nil
}

// supervise is the restart loop: block until the worker dies (cmd.Wait
// for spawned workers, health polling for adopted ones), then relaunch it
// unless the runtime is closing. A relaunched worker reopens its journal
// and — when the fleet had been started — resumes the remaining windows.
func (r *Runtime) supervise() {
	defer close(r.superDone)
	for {
		r.mu.Lock()
		cmd, closing := r.cmd, r.closing
		r.mu.Unlock()
		if closing {
			return
		}

		if cmd != nil {
			_ = cmd.Wait()
		} else if !r.pollAdopted() {
			return // closing
		}

		r.mu.Lock()
		if r.closing {
			r.mu.Unlock()
			return
		}
		r.down = true
		r.restarts++
		give := r.restarts > r.opt.MaxRestarts
		r.cond.Broadcast()
		r.mu.Unlock()

		var err error
		if give {
			err = fmt.Errorf("worker %d: gave up after %d restarts", r.cfg.Shard, r.restarts-1)
		} else {
			err = r.spawn(false)
		}
		r.mu.Lock()
		if err != nil {
			r.permErr = err
		} else {
			r.down = false
		}
		r.cond.Broadcast()
		closing = r.closing
		fresh, addr := r.cmd, r.addr
		r.mu.Unlock()
		if err != nil {
			return
		}
		if closing {
			// Close ran while the respawn was in flight: it never saw
			// this process, so quitting it is on us.
			_ = r.post(addr, "/api/v1/quit")
			if fresh != nil {
				done := make(chan struct{})
				go func() { _ = fresh.Wait(); close(done) }()
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					_ = fresh.Process.Kill()
					<-done
				}
			}
			return
		}
	}
}

// pollAdopted health-checks an adopted worker (no child handle to wait
// on) until it stops answering. Returns false when the runtime closed.
func (r *Runtime) pollAdopted() bool {
	fails := 0
	for {
		time.Sleep(250 * time.Millisecond)
		r.mu.Lock()
		addr, closing := r.addr, r.closing
		r.mu.Unlock()
		if closing {
			return false
		}
		if r.handshake(addr) != nil {
			if fails++; fails >= 2 {
				return true
			}
		} else {
			fails = 0
		}
	}
}

// liveAddr blocks until the worker is up (waiting out a respawn) and
// returns its address, or the reason it never will be.
func (r *Runtime) liveAddr() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.down && r.permErr == nil && !r.closing {
		r.cond.Wait()
	}
	if r.permErr != nil {
		return "", r.permErr
	}
	if r.closing {
		return "", errors.New("remote: runtime closed")
	}
	return r.addr, nil
}

// getJSON performs a bounded GET with respawn-aware retries.
func (r *Runtime) getJSON(path string, v any) error {
	deadline := time.Now().Add(r.opt.ReadyTimeout)
	var lastErr error
	for {
		addr, err := r.liveAddr()
		if err != nil {
			return err
		}
		resp, err := r.client.Get("http://" + addr + path)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				err = json.NewDecoder(resp.Body).Decode(v)
				resp.Body.Close()
				return err
			}
			resp.Body.Close()
			err = fmt.Errorf("worker %d: %s returned %s", r.cfg.Shard, path, resp.Status)
		}
		lastErr = err
		if time.Now().After(deadline) {
			return fmt.Errorf("worker %d: %s: %w", r.cfg.Shard, path, lastErr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// post performs a bounded POST to one endpoint (no retries — callers
// that need them loop themselves).
func (r *Runtime) post(addr, path string) error {
	resp, err := r.client.Post("http://"+addr+path, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var doc errDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return err
	}
	if doc.Error != "" {
		return errors.New(doc.Error)
	}
	return nil
}

// Start marks the fleet started and kicks the worker. If the worker is
// mid-respawn the flag is enough: every (re)spawn auto-starts a started
// fleet.
func (r *Runtime) Start() {
	r.mu.Lock()
	r.started = true
	addr, down := r.addr, r.down
	r.mu.Unlock()
	if !down {
		_ = r.post(addr, "/api/v1/start")
	}
}

// Wait long-polls /api/v1/wait until the shard settles. A worker death
// mid-poll is not an error — the supervisor respawns it, the journal
// replays, and Wait re-polls the fresh process until the fleet finishes
// the windows the crash interrupted.
func (r *Runtime) Wait() error {
	for {
		addr, err := r.liveAddr()
		if err != nil {
			return err
		}
		resp, err := r.longClient.Get("http://" + addr + "/api/v1/wait")
		if err == nil {
			var doc errDoc
			derr := json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if derr == nil {
				if doc.Error != "" {
					return errors.New(doc.Error)
				}
				return nil
			}
		}
		// Transport failure: the worker died (or is dying). Let the
		// supervisor notice and respawn; liveAddr blocks until then.
		time.Sleep(50 * time.Millisecond)
	}
}

// Stop drains the worker's fleet: queued windows still diagnosed and
// committed, durable topics sealed. The worker process stays up — a
// drained shard keeps serving status, diagnoses, and its report fragment
// until Close.
func (r *Runtime) Stop() error {
	for {
		addr, err := r.liveAddr()
		if err != nil {
			return err
		}
		resp, err := r.longClient.Post("http://"+addr+"/api/v1/drain", "application/json", nil)
		if err == nil {
			var doc errDoc
			derr := json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if derr == nil {
				r.mu.Lock()
				r.drained = true
				r.mu.Unlock()
				if doc.Error != "" {
					return errors.New(doc.Error)
				}
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Close asks the worker to exit, waits for it, and stops supervision.
func (r *Runtime) Close() error {
	r.mu.Lock()
	if r.closing {
		r.mu.Unlock()
		<-r.superDone
		return nil
	}
	r.closing = true
	addr, cmd, adoptPid, down := r.addr, r.cmd, r.adoptPid, r.down
	r.cond.Broadcast()
	r.mu.Unlock()

	if !down {
		_ = r.post(addr, "/api/v1/quit")
	}
	if cmd != nil {
		// The supervisor owns cmd.Wait; give the worker a grace window,
		// then force it.
		select {
		case <-r.superDone:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-r.superDone
		}
	} else {
		<-r.superDone
		if adoptPid > 0 {
			// Poll the adopted worker out; it is not our child, so a
			// liveness probe is all we have.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) && syscall.Kill(adoptPid, 0) == nil {
				time.Sleep(50 * time.Millisecond)
			}
			if syscall.Kill(adoptPid, 0) == nil {
				_ = syscall.Kill(adoptPid, syscall.SIGKILL)
			}
		}
	}
	_ = os.Remove(r.cfg.AddrFile)
	r.cleanupTmp()
	return nil
}

// Abandon detaches supervision without touching the worker process —
// the test seam for "coordinator crashed": workers keep running, the
// address files stay published, and a new coordinator can adopt them.
func (r *Runtime) Abandon() {
	r.mu.Lock()
	r.closing = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *Runtime) cleanupTmp() {
	if r.tmpDir != "" {
		_ = os.RemoveAll(r.tmpDir)
	}
}

// IDs returns the shard's owned instance IDs (validated against the
// worker at every handshake).
func (r *Runtime) IDs() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Diagnoses fetches one instance's committed reports from the worker.
func (r *Runtime) Diagnoses(id string) ([]*fleet.WindowReport, bool) {
	var doc diagnosesDoc
	if err := r.getJSON("/api/v1/diagnoses?id="+id, &doc); err != nil {
		return nil, false
	}
	return doc.Reports, doc.OK
}

// Reports fetches the shard's whole report fragment in one round trip.
func (r *Runtime) Reports() (map[string][]*fleet.WindowReport, error) {
	out := make(map[string][]*fleet.WindowReport)
	if err := r.getJSON("/api/v1/report", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// status fetches (with a short cache, so one metrics scrape's seven
// series cost one round trip) the worker's combined status document.
func (r *Runtime) status() (statusDoc, error) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	if !r.statAt.IsZero() && time.Since(r.statAt) < 50*time.Millisecond {
		return r.stat, nil
	}
	var doc statusDoc
	if err := r.getJSON("/api/v1/status", &doc); err != nil {
		return statusDoc{}, err
	}
	r.stat, r.statAt = doc, time.Now()
	return doc, nil
}

// Status snapshots the worker's fleet.Status.
func (r *Runtime) Status() (fleet.Status, error) {
	doc, err := r.status()
	return doc.Status, err
}

// JournalStats reports the worker journal's group-commit accounting.
func (r *Runtime) JournalStats() (batches, windows int64) {
	doc, err := r.status()
	if err != nil {
		return 0, 0
	}
	return doc.CommitBatches, doc.CommitBatchWindows
}

// MetricsText scrapes the worker's own registry for the coordinator's
// merged /metrics.
func (r *Runtime) MetricsText() (string, error) {
	addr, err := r.liveAddr()
	if err != nil {
		return "", err
	}
	resp, err := r.client.Get("http://" + addr + "/api/v1/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Up reports whether the supervised worker is currently running.
func (r *Runtime) Up() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.down && r.permErr == nil && !r.closing
}
