// Package shard is the sharded fleet runtime: it partitions a fleet's
// instances across K fully independent per-shard engines behind a thin
// aggregating control plane — the single-process step toward the paper's
// cloud-scale deployment (one monitoring system over an entire RDS estate)
// and the first rung of the ROADMAP's multi-process distributed mode.
//
// Each shard is a complete fleet.Fleet: its own two-priority scheduler
// pool, its own per-instance segment stores and group-committed window
// journal rooted at data-dir/shard-<k>/, its own broker and repair module.
// Nothing is shared between shards on the hot path — no lock, no channel,
// no queue; the only cross-shard structures are the obs registry (atomic
// counters, series kept apart by a shard label) and the aggregation layer,
// which fans reads out and merges deterministically in instance-ID order.
//
// Instances map to shards by a pinned hash of their ID (Assign), so a
// restart with the same shard count finds every instance's data where the
// previous run left it; the shard count itself is persisted in the data
// directory and reopening with a different -shards value is an error, not
// a silent re-partition.
//
// Determinism contract: the aggregated fleet report is a pure function of
// (seed, instance) — byte-identical for every shard count, every worker
// count, and across SIGKILL-at-any-commit-phase restarts (each shard's
// journal recovers independently).
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pinsql/internal/fleet"
	"pinsql/internal/obs"
	"pinsql/internal/parallel"
)

// Options configures the sharded runtime. The per-shard knobs mirror
// fleet.Options; Workers and DataDir are fleet-wide and split/namespaced
// across shards by the manager.
type Options struct {
	// Shards is the number of independent scheduler/store shards. 0 picks
	// the persisted layout of DataDir when one exists, else GOMAXPROCS.
	// Reopening a data directory with a different explicit count fails.
	Shards int

	// Workers is the total scheduler worker budget across every shard,
	// split as evenly as the shard count allows (every shard gets at
	// least one). 0 = GOMAXPROCS. The aggregated report is byte-identical
	// for every value.
	Workers int

	// QueueDepth, SyncEvery, DiagnosisWorkers and BrokerBuffer are passed
	// through to every shard's fleet.Options.
	QueueDepth       int
	SyncEvery        int
	DiagnosisWorkers int
	BrokerBuffer     int

	// DataDir roots the durable layout: shard k keeps its instances'
	// segment stores and its window journal under DataDir/shard-<k>/, and
	// the manager persists the shard count in DataDir/SHARDS. "" keeps
	// everything in memory.
	DataDir string

	// Metrics receives every shard's series (kept apart by a shard
	// label) plus the manager's pinsql_shard_* aggregates; nil creates a
	// private registry.
	Metrics *obs.Registry

	// OnCommit, if set, is called after every committed window, from the
	// owning shard's scheduler.
	OnCommit func(id string, rep *fleet.WindowReport)

	// CrashAt is the crash-injection test hook, forwarded to every shard
	// (see fleet.Options.CrashAt). A fired hook kills only the shard it
	// fired in — to simulate a whole-process SIGKILL, fire in every shard.
	CrashAt func(id string, window int, phase string) bool

	// Runtime opens each shard's engine. Nil selects NewLocalRuntime (the
	// in-process fleet); remote.Factory runs the shard as a supervised
	// pinsqld worker process instead. The aggregated report is
	// byte-identical either way — that is the seam's contract.
	Runtime RuntimeFactory
}

// shardsFile persists the shard count inside DataDir so a restart cannot
// silently re-partition a durable layout.
const shardsFile = "SHARDS"

// Assign is the pinned instance→shard partition function: FNV-1a over the
// instance ID, reduced mod shards. It depends only on (id, shards) — never
// on the rest of the fleet — so adding or removing instances does not move
// the survivors' data, and a restart with the same shard count finds every
// topic where the previous run wrote it. Changing this function strands
// every existing durable layout; the regression test pins its outputs.
func Assign(id string, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// Manager runs K independent shards and aggregates them. Create with New,
// then Start/Wait/Stop/Close exactly like a fleet.Fleet.
type Manager struct {
	opt      Options
	runtimes []Runtime
	assign   map[string]int
	ids      []string // all instance IDs, sorted — the merge order
	workers  int      // resolved total across shards
	metrics  *obs.Registry
}

// New partitions the specs and opens every shard (recovering each shard's
// journal and stores independently in durable mode).
func New(specs []fleet.InstanceSpec, opt Options) (*Manager, error) {
	if len(specs) == 0 {
		return nil, errors.New("shard: no instance specs")
	}
	assign := make(map[string]int, len(specs))
	ids := make([]string, 0, len(specs))
	for _, s := range specs {
		if s.ID == "" {
			return nil, errors.New("shard: instance spec without ID")
		}
		if _, dup := assign[s.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate instance ID %q", s.ID)
		}
		assign[s.ID] = -1
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)

	k, err := resolveShards(opt)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		opt:     opt,
		assign:  assign,
		ids:     ids,
		workers: parallel.Resolve(opt.Workers),
		metrics: opt.Metrics,
	}
	if m.metrics == nil {
		m.metrics = obs.NewRegistry()
	}

	parts := make([][]fleet.InstanceSpec, k)
	for _, s := range specs {
		sh := Assign(s.ID, k)
		m.assign[s.ID] = sh
		parts[sh] = append(parts[sh], s)
	}

	open := opt.Runtime
	if open == nil {
		open = NewLocalRuntime
	}
	for sh := 0; sh < k; sh++ {
		fopt := fleet.Options{
			Workers:          m.shardWorkers(sh, k),
			QueueDepth:       opt.QueueDepth,
			SyncEvery:        opt.SyncEvery,
			DiagnosisWorkers: opt.DiagnosisWorkers,
			BrokerBuffer:     opt.BrokerBuffer,
			Metrics:          m.metrics,
			Labels:           []obs.Label{obs.L("shard", strconv.Itoa(sh))},
			OnCommit:         opt.OnCommit,
			CrashAt:          opt.CrashAt,
		}
		if opt.DataDir != "" {
			fopt.DataDir = filepath.Join(opt.DataDir, "shard-"+strconv.Itoa(sh))
		}
		rt, err := open(sh, k, parts[sh], fopt)
		if err != nil {
			for _, prev := range m.runtimes {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
		m.runtimes = append(m.runtimes, rt)
	}
	m.registerMetrics()
	return m, nil
}

// shardWorkers splits the total worker budget: shard k gets its even share
// (the first Workers%K shards absorb the remainder), and never less than
// one — a shard is an independent engine and must be able to make progress
// on its own.
func (m *Manager) shardWorkers(sh, k int) int {
	return WorkerShare(m.workers, sh, k)
}

// WorkerShare is the pinned worker-budget split: shard sh of k gets its
// even share of total (the first total%k shards absorb the remainder),
// never less than one. Exported so a manually launched worker process
// (`pinsqld -role worker`) derives the same budget the coordinator would
// hand it — the split is part of the determinism contract's inputs.
func WorkerShare(total, sh, k int) int {
	w := total/k + boolInt(sh < total%k)
	if w < 1 {
		w = 1
	}
	return w
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// resolveShards picks the shard count: an explicit request must match any
// persisted layout; 0 adopts the persisted layout or GOMAXPROCS.
func resolveShards(opt Options) (int, error) {
	req := opt.Shards
	if opt.DataDir == "" {
		if req <= 0 {
			req = parallel.Resolve(0)
		}
		return req, nil
	}
	if err := os.MkdirAll(opt.DataDir, 0o755); err != nil {
		return 0, err
	}
	path := filepath.Join(opt.DataDir, shardsFile)
	if b, err := os.ReadFile(path); err == nil {
		persisted, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr != nil || persisted < 1 {
			return 0, fmt.Errorf("shard: corrupt shard-count file %s: %q", path, b)
		}
		if req > 0 && req != persisted {
			return 0, fmt.Errorf("shard: -shards %d does not match the existing layout in %s (%d shards); a durable layout keeps the shard count it was created with", req, opt.DataDir, persisted)
		}
		return persisted, nil
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	if req <= 0 {
		req = parallel.Resolve(0)
	}
	// Persist with an fsync: the shard count is part of the durable
	// layout's commit point, same as the journals it governs.
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if _, err := f.WriteString(strconv.Itoa(req) + "\n"); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return req, nil
}

// registerMetrics adds the per-shard aggregate series. Everything reads
// shard state at scrape time through the Runtime seam — nothing here
// touches the hot path. A remote shard whose worker is unreachable
// reports zeroes (and pinsql_shard_up 0) rather than failing the scrape.
func (m *Manager) registerMetrics() {
	for sh, rt := range m.runtimes {
		sh, rt := sh, rt
		lbl := obs.L("shard", strconv.Itoa(sh))
		status := func() fleet.Status {
			st, _ := rt.Status()
			return st
		}
		m.metrics.GaugeFunc("pinsql_shard_up", "Whether the shard's engine is running and reachable (always 1 in-process).", func() float64 {
			return float64(boolInt(rt.Up()))
		}, lbl)
		m.metrics.GaugeFunc("pinsql_shard_instances", "Instances assigned to the shard.", func() float64 {
			return float64(len(rt.IDs()))
		}, lbl)
		m.metrics.GaugeFunc("pinsql_shard_workers", "Scheduler workers owned by the shard.", func() float64 {
			return float64(status().Workers)
		}, lbl)
		m.metrics.CounterFunc("pinsql_shard_windows_total", "Monitoring windows committed by the shard.", func() float64 {
			return float64(status().Committed)
		}, lbl)
		m.metrics.CounterFunc("pinsql_shard_shed_windows_total", "Windows whose diagnosis the shard shed under backpressure.", func() float64 {
			return float64(status().Shed)
		}, lbl)
		m.metrics.GaugeFunc("pinsql_shard_queue_depth", "Staged windows awaiting diagnosis across the shard's instances.", func() float64 {
			depth := 0
			for _, is := range status().Instances {
				depth += is.QueueDepth
			}
			return float64(depth)
		}, lbl)
		m.metrics.CounterFunc("pinsql_shard_commit_batches_total", "Window-journal group commits (one fsync each).", func() float64 {
			b, _ := rt.JournalStats()
			return float64(b)
		}, lbl)
		m.metrics.CounterFunc("pinsql_shard_commit_batch_windows_total", "Windows covered by journal group commits (divide by batches for the mean batch size).", func() float64 {
			_, w := rt.JournalStats()
			return float64(w)
		}, lbl)
	}
}

// Metrics returns the shared registry behind GET /metrics.
func (m *Manager) Metrics() *obs.Registry { return m.metrics }

// MetricsExposition renders the full Prometheus text document: the
// coordinator's own registry (pinsql_shard_* aggregates plus every
// in-process shard's series) merged with each remote shard's scrape.
// Worker series already carry the shard label, so the merged families
// line up exactly with in-process mode; when every shard is in-process
// the output is the registry's exposition, byte for byte. A shard whose
// worker cannot be scraped contributes nothing this scrape (its
// pinsql_shard_up gauge reads 0).
func (m *Manager) MetricsExposition() string {
	var b strings.Builder
	_ = m.metrics.WritePrometheus(&b)
	texts := make([]string, 0, 1+len(m.runtimes))
	texts = append(texts, b.String())
	remote := false
	for _, rt := range m.runtimes {
		t, err := rt.MetricsText()
		if err != nil || t == "" {
			continue
		}
		remote = true
		texts = append(texts, t)
	}
	if !remote {
		return texts[0]
	}
	return obs.MergeText(texts...)
}

// Shards returns the number of shards.
func (m *Manager) Shards() int { return len(m.runtimes) }

// Workers returns the resolved total worker budget (the sum of the
// per-shard pools can exceed it when shards outnumber workers: every shard
// keeps at least one).
func (m *Manager) Workers() int {
	total := 0
	for sh := range m.runtimes {
		total += m.shardWorkers(sh, len(m.runtimes))
	}
	return total
}

// Start launches every shard's scheduler.
func (m *Manager) Start() {
	for _, rt := range m.runtimes {
		rt.Start()
	}
}

// Wait blocks until every shard settles and returns the first shard
// error. Shards wait concurrently so one slow (or mid-restart remote)
// shard does not serialize the others.
func (m *Manager) Wait() error {
	errs := make([]error, len(m.runtimes))
	var wg sync.WaitGroup
	for sh, rt := range m.runtimes {
		wg.Add(1)
		go func(sh int, rt Runtime) {
			defer wg.Done()
			errs[sh] = rt.Wait()
		}(sh, rt)
	}
	wg.Wait()
	return firstShardErr(errs)
}

// Stop drains every shard in parallel — no new windows, queued windows
// still diagnosed and committed, durable topics sealed. Sealing shards
// concurrently is safe because they share no storage; the drained-window
// accounting still sums to the unsharded total (pinned by test).
func (m *Manager) Stop() error {
	errs := make([]error, len(m.runtimes))
	var wg sync.WaitGroup
	for sh, rt := range m.runtimes {
		wg.Add(1)
		go func(sh int, rt Runtime) {
			defer wg.Done()
			errs[sh] = rt.Stop()
		}(sh, rt)
	}
	wg.Wait()
	return firstShardErr(errs)
}

// Close closes every shard in parallel (graceful unless a shard crashed).
func (m *Manager) Close() error {
	errs := make([]error, len(m.runtimes))
	var wg sync.WaitGroup
	for sh, rt := range m.runtimes {
		wg.Add(1)
		go func(sh int, rt Runtime) {
			defer wg.Done()
			errs[sh] = rt.Close()
		}(sh, rt)
	}
	wg.Wait()
	return firstShardErr(errs)
}

func firstShardErr(errs []error) error {
	for sh, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return nil
}

// Report merges the shards' committed windows into the fleet-wide report,
// instances in global ID order — byte-identical to the same specs run
// unsharded, in-process or as worker processes (the determinism
// contract's observable artifact). Fragments are fetched concurrently,
// one round trip per shard; the merge order is fixed by m.ids, so fetch
// concurrency cannot reorder a byte.
func (m *Manager) Report() (string, error) {
	frags := make([]map[string][]*fleet.WindowReport, len(m.runtimes))
	errs := make([]error, len(m.runtimes))
	var wg sync.WaitGroup
	for sh, rt := range m.runtimes {
		wg.Add(1)
		go func(sh int, rt Runtime) {
			defer wg.Done()
			frags[sh], errs[sh] = rt.Reports()
		}(sh, rt)
	}
	wg.Wait()
	if err := firstShardErr(errs); err != nil {
		return "", err
	}
	var b strings.Builder
	for _, id := range m.ids {
		fleet.FormatInstanceReport(&b, id, frags[m.assign[id]][id])
	}
	return b.String(), nil
}

// Diagnoses routes to the owning shard; ok is false for unknown instances.
func (m *Manager) Diagnoses(id string) ([]*fleet.WindowReport, bool) {
	sh, ok := m.assign[id]
	if !ok {
		return nil, false
	}
	return m.runtimes[sh].Diagnoses(id)
}

// InstanceRow is one instance of GET /fleet, annotated with its shard.
type InstanceRow struct {
	fleet.InstanceStatus
	Shard int `json:"shard"`
}

// Status is the aggregated GET /fleet document.
type Status struct {
	Shards    int           `json:"shards"`
	Workers   int           `json:"workers"`
	Draining  bool          `json:"draining"`
	Done      bool          `json:"done"`
	Committed int           `json:"committed"`
	Anomalies int           `json:"anomalies"`
	Shed      int64         `json:"shed"`
	Instances []InstanceRow `json:"instances"`
}

// ShardStatus is one row of GET /shards.
type ShardStatus struct {
	Shard              int   `json:"shard"`
	Workers            int   `json:"workers"`
	Instances          int   `json:"instances"`
	Committed          int   `json:"committed"`
	Anomalies          int   `json:"anomalies"`
	Shed               int64 `json:"shed"`
	QueueDepth         int   `json:"queue_depth"`
	CommitBatches      int64 `json:"commit_batches"`
	CommitBatchWindows int64 `json:"commit_batch_windows"`
	Done               bool  `json:"done"`
	// Up is the engine's liveness (always true in-process); Error carries
	// the last status-read failure for a remote shard.
	Up    bool   `json:"up"`
	Error string `json:"error,omitempty"`
}

// Status snapshots every shard and merges, instances in global ID order.
func (m *Manager) Status() Status {
	out := Status{Shards: len(m.runtimes), Done: true}
	rows := make(map[string]InstanceRow, len(m.ids))
	for sh, rt := range m.runtimes {
		st, err := rt.Status()
		if err != nil {
			// An unreachable shard (worker mid-restart) contributes no
			// rows; the fleet is visibly not done rather than wrong.
			out.Done = false
			continue
		}
		out.Workers += st.Workers
		out.Committed += st.Committed
		out.Anomalies += st.Anomalies
		out.Shed += st.Shed
		if st.Draining {
			out.Draining = true
		}
		if !st.Done {
			out.Done = false
		}
		for _, is := range st.Instances {
			rows[is.ID] = InstanceRow{InstanceStatus: is, Shard: sh}
		}
	}
	for _, id := range m.ids {
		if row, ok := rows[id]; ok {
			out.Instances = append(out.Instances, row)
		}
	}
	return out
}

// ShardStatuses snapshots the per-shard rollups behind GET /shards.
func (m *Manager) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(m.runtimes))
	for sh, rt := range m.runtimes {
		st, err := rt.Status()
		if err != nil {
			out[sh] = ShardStatus{Shard: sh, Up: rt.Up(), Error: err.Error()}
			continue
		}
		row := ShardStatus{
			Shard:     sh,
			Workers:   st.Workers,
			Instances: len(st.Instances),
			Committed: st.Committed,
			Anomalies: st.Anomalies,
			Shed:      st.Shed,
			Done:      st.Done,
			Up:        rt.Up(),
		}
		for _, is := range st.Instances {
			row.QueueDepth += is.QueueDepth
		}
		row.CommitBatches, row.CommitBatchWindows = rt.JournalStats()
		out[sh] = row
	}
	return out
}
