package shard

import "pinsql/internal/fleet"

// Runtime is one shard's engine as the aggregating control plane sees it.
// The Manager never touches a concrete engine: the in-process fleet
// (localRuntime) and the worker-process supervisor (internal/shard/remote)
// both satisfy this seam, which is exactly the coordinator/worker cut —
// everything the merge layer consumes, nothing the hot path owns.
//
// Lifecycle mirrors fleet.Fleet: Start launches the shard's scheduler,
// Wait blocks until it settles, Stop drains (queued windows still
// diagnosed and committed, durable topics sealed), Close releases the
// engine. Reads (IDs, Diagnoses, Reports, Status, JournalStats,
// MetricsText) are safe while the shard runs and keep working after
// Stop — a drained worker process still serves its committed state until
// Close tells it to exit.
type Runtime interface {
	Start()
	Wait() error
	Stop() error
	Close() error

	// IDs returns the shard's instance IDs in sorted order.
	IDs() []string

	// Diagnoses returns one instance's committed window reports; ok is
	// false for an instance the shard does not own (or, for a remote
	// shard, when the worker cannot be reached).
	Diagnoses(id string) ([]*fleet.WindowReport, bool)

	// Reports returns every owned instance's committed reports keyed by
	// instance ID — the shard's report fragment, one round trip.
	Reports() (map[string][]*fleet.WindowReport, error)

	// Status snapshots the shard's fleet.Status.
	Status() (fleet.Status, error)

	// JournalStats reports the shard journal's group-commit accounting
	// (fsynced batches, windows covered). Zero in in-memory mode or when
	// a remote worker is unreachable.
	JournalStats() (batches, windows int64)

	// MetricsText returns the shard's own Prometheus text exposition for
	// engines that keep a private registry (worker processes). Engines
	// whose series already live in the coordinator's registry return "".
	MetricsText() (string, error)

	// Up reports liveness: always true in-process; for a remote shard,
	// whether the supervised worker is currently running and ready.
	Up() bool
}

// RuntimeFactory opens the engine for one shard. The Manager hands it the
// shard index, the total shard count, the specs the pinned Assign hash
// routed to this shard, and the fully resolved per-shard fleet options
// (worker split, shard-<k> data dir, shard-labelled metrics registry,
// hooks). NewLocalRuntime is the in-process default; remote.Factory
// supervises a pinsqld worker process instead.
type RuntimeFactory func(sh, shards int, specs []fleet.InstanceSpec, fopt fleet.Options) (Runtime, error)

// NewLocalRuntime is the in-process RuntimeFactory: the shard engine is a
// fleet.Fleet in this process, its series registered straight into the
// shared registry under the shard label.
func NewLocalRuntime(sh, shards int, specs []fleet.InstanceSpec, fopt fleet.Options) (Runtime, error) {
	flt, err := fleet.New(specs, fopt)
	if err != nil {
		return nil, err
	}
	return &localRuntime{flt: flt}, nil
}

// localRuntime adapts *fleet.Fleet to the Runtime seam.
type localRuntime struct {
	flt *fleet.Fleet
}

func (l *localRuntime) Start()        { l.flt.Start() }
func (l *localRuntime) Wait() error   { return l.flt.Wait() }
func (l *localRuntime) Stop() error   { return l.flt.Stop() }
func (l *localRuntime) Close() error  { return l.flt.Close() }
func (l *localRuntime) IDs() []string { return l.flt.IDs() }

func (l *localRuntime) Diagnoses(id string) ([]*fleet.WindowReport, bool) {
	return l.flt.Diagnoses(id)
}

func (l *localRuntime) Reports() (map[string][]*fleet.WindowReport, error) {
	return l.flt.Reports(), nil
}

func (l *localRuntime) Status() (fleet.Status, error) {
	return l.flt.Status(), nil
}

func (l *localRuntime) JournalStats() (batches, windows int64) {
	return l.flt.JournalStats()
}

func (l *localRuntime) MetricsText() (string, error) { return "", nil }

func (l *localRuntime) Up() bool { return true }
