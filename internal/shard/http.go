package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"

	"pinsql/internal/fleet"
)

// Handler is the aggregating control plane over every shard:
//
//	GET /fleet                     merged fleet + per-instance status (JSON)
//	GET /shards                    per-shard rollups (JSON)
//	GET /instances/{id}/diagnoses  committed window reports, routed to the
//	                               owning shard (JSON)
//	GET /metrics                   Prometheus text exposition (all shards'
//	                               series plus pinsql_shard_* aggregates)
//	GET /debug/pprof/...           stdlib profiling endpoints
//
// The API is a superset of fleet.Handler's, so `pinsqld -shards K` is a
// drop-in replacement for the unsharded server: same paths, same document
// shapes (GET /fleet gains a "shards" field and a per-instance "shard"
// annotation). Read-only and safe to serve while the shards run — every
// handler snapshots per-shard state under that shard's own lock; no
// cross-shard lock exists.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.Status())
	})
	mux.HandleFunc("GET /shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.ShardStatuses())
	})
	mux.HandleFunc("GET /instances/{id}/diagnoses", func(w http.ResponseWriter, r *http.Request) {
		reps, ok := m.Diagnoses(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown instance", http.StatusNotFound)
			return
		}
		if reps == nil {
			reps = []*fleet.WindowReport{}
		}
		writeJSON(w, reps)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = io.WriteString(w, m.MetricsExposition())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
