package impact

// Differential test: RankFrame must reproduce the legacy map-keyed Rank
// bit for bit (ignoring the frame-only Pos field) for random session sets
// and every Workers count.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// randomFrameSessions builds a frame whose templates are laid out in
// descending ID order (so ByID is a real permutation) plus one random
// session series per template and an instance series.
func randomFrameSessions(rng *rand.Rand, templates, seconds int) (*window.Frame, []timeseries.Series, timeseries.Series) {
	ids := make([]string, templates)
	for i := range ids {
		ids[i] = fmt.Sprintf("T%02d", i)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	f := &window.Frame{Topic: "impact", Seconds: seconds, Off: make([]int32, templates+1)}
	sessions := make([]timeseries.Series, templates)
	for i, id := range ids {
		f.Templates = append(f.Templates, window.Template{
			Meta: window.Meta{Index: int32(i), ID: sqltemplate.ID(id)},
		})
		s := make(timeseries.Series, seconds)
		for j := range s {
			s[j] = rng.Float64() * 10
		}
		sessions[i] = s
	}
	f.Finalize()
	inst := make(timeseries.Series, seconds)
	for j := range inst {
		inst[j] = rng.Float64() * float64(templates)
	}
	return f, sessions, inst
}

func TestRankFrameMatchesLegacyRank(t *testing.T) {
	const seconds = 40
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f, sessions, inst := randomFrameSessions(rng, 1+rng.Intn(12), seconds)
		legacySessions := make(map[sqltemplate.ID]timeseries.Series, len(sessions))
		for pos := range sessions {
			legacySessions[f.Templates[pos].Meta.ID] = sessions[pos]
		}
		opt := Options{
			SmoothKs:      DefaultSmoothKs,
			UseTrend:      true,
			UseScale:      true,
			UseScaleTrend: seed%2 == 0,
			WeightedScore: seed%3 != 0,
		}
		as, ae := seconds/4, seconds/2
		want := Rank(legacySessions, inst, as, ae, opt)
		for _, workers := range []int{1, 4, 0} {
			opt.Workers = workers
			got := RankFrame(f, sessions, inst, as, ae, opt)
			if len(got) != len(want) {
				t.Fatalf("seed %d w=%d: %d scores, want %d", seed, workers, len(got), len(want))
			}
			for i := range want {
				w, g := want[i], got[i]
				if g.ID != w.ID ||
					math.Float64bits(g.Trend) != math.Float64bits(w.Trend) ||
					math.Float64bits(g.Scale) != math.Float64bits(w.Scale) ||
					math.Float64bits(g.ScaleTrend) != math.Float64bits(w.ScaleTrend) ||
					math.Float64bits(g.Impact) != math.Float64bits(w.Impact) {
					t.Fatalf("seed %d w=%d rank %d: frame %+v vs legacy %+v", seed, workers, i, g, w)
				}
				if pos := g.Pos; pos < 0 || f.Templates[pos].Meta.ID != g.ID {
					t.Fatalf("seed %d rank %d: Pos %d does not point at %s", seed, i, pos, g.ID)
				}
			}
		}
	}
}
