package impact

import (
	"sort"

	"pinsql/internal/parallel"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// RankFrame is Rank over a window frame: sessions[pos] is the estimated
// individual active session of frame template pos (one entry per template,
// as produced by session.EstimateFrameBuckets). Scoring iterates the
// frame's ByID permutation — the same ascending-template-ID order the
// legacy map-keyed Rank fixes by sorting — so masses, normalization,
// α/β selection and the final stable sort see identical inputs and the
// ranking is byte-identical to the legacy path. Each returned Score
// carries its frame position for index-first downstream stages.
func RankFrame(f *window.Frame, sessions []timeseries.Series, instSession timeseries.Series, as, ae int, opt Options) []Score {
	if len(sessions) == 0 {
		return nil
	}
	n := len(instSession)
	weight := timeseries.SigmoidWeight(n, as, ae, opt.SmoothKs)

	// Scale-level: anomaly-window session mass per template, min-max
	// normalized across templates and mapped into [-1, 1].
	masses := make(timeseries.Series, len(f.ByID))
	for i, pos := range f.ByID {
		masses[i] = sessions[pos].Slice(as, ae).Sum()
	}
	norm := masses.MinMax()

	scores := make([]Score, len(f.ByID))
	parallel.ForEach(opt.Workers, len(f.ByID), func(i int) {
		pos := f.ByID[i]
		s := sessions[pos]
		trend, _ := timeseries.WeightedCorr(s, instSession, weight)
		ratio, _ := s.Div(instSession)
		scaleTrend, _ := timeseries.Corr(ratio, instSession)
		scores[i] = Score{
			ID:         f.Templates[pos].Meta.ID,
			Pos:        int(pos),
			Trend:      trend,
			Scale:      2*norm[i] - 1,
			ScaleTrend: scaleTrend,
		}
	})
	var maxIdx int
	for i := range masses {
		if masses[i] > masses[maxIdx] {
			maxIdx = i
		}
	}

	alpha, beta := 1.0, 1.0
	if opt.WeightedScore {
		a, _ := timeseries.Corr(sessions[f.ByID[maxIdx]], instSession)
		alpha, beta = a, -a
	}
	for i := range scores {
		var impact float64
		if opt.UseTrend {
			impact += beta * scores[i].Trend
		}
		if opt.UseScaleTrend {
			impact += scores[i].ScaleTrend
		}
		if opt.UseScale {
			impact += alpha * scores[i].Scale
		}
		scores[i].Impact = impact
	}

	sort.SliceStable(scores, func(i, j int) bool { return scores[i].Impact > scores[j].Impact })
	return scores
}
