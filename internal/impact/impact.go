// Package impact implements PinSQL's High-impact SQL Identification Module
// (§V): ranking SQL templates by how strongly they drive the instance's
// active-session metric during an anomaly, by fusing three level scores:
//
//   - trend-level: weighted Pearson correlation between the template's
//     individual active session and the instance session, with a
//     sigmoid weight emphasizing the anomaly period;
//   - scale-level: the template's share of total session mass inside the
//     anomaly window, min-max normalized across templates into [-1, 1];
//   - scale-trend-level: correlation between the template's session share
//     (sessionQ/session) and the instance session, rewarding templates
//     whose share grows exactly when the metric is anomalous.
//
// The three scores fuse into a weighted final score
//
//	impact(Q) = β·trend(Q) + scale_trend(Q) + α·scale(Q)
//
// with α = corr(session_Qmax, session) for the template of largest scale
// and β = −α: when the biggest template itself explains the session curve,
// scale is trusted; when it does not (a huge stable-traffic template),
// trend takes over.
package impact

import (
	"sort"

	"pinsql/internal/parallel"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// DefaultSmoothKs is the paper's smooth factor k_s = 30 (§VIII-A).
const DefaultSmoothKs = 30

// Options tunes the module; the Use* flags exist for the Fig. 6 ablations.
type Options struct {
	SmoothKs      float64
	UseTrend      bool // include β·trend(Q)
	UseScale      bool // include α·scale(Q)
	UseScaleTrend bool // include scale_trend(Q)
	// WeightedScore enables the adaptive α/β weights; disabled, both are
	// the constant 1 ("PinSQL w/o Weighted Final Score").
	WeightedScore bool
	// Workers bounds the per-template scoring fan-out: 1 is the
	// sequential path, <= 0 means GOMAXPROCS. Scores land in an
	// index-ordered slice, so the ranking is identical for every value.
	Workers int
}

// DefaultOptions returns the full PinSQL configuration.
func DefaultOptions() Options {
	return Options{
		SmoothKs:      DefaultSmoothKs,
		UseTrend:      true,
		UseScale:      true,
		UseScaleTrend: true,
		WeightedScore: true,
	}
}

// Score is one template's H-SQL scoring breakdown.
type Score struct {
	ID         sqltemplate.ID
	Pos        int // frame position (RankFrame); -1 on the legacy map path
	Trend      float64
	Scale      float64
	ScaleTrend float64
	Impact     float64
}

// Rank scores every template and returns them sorted by descending impact.
// sessions maps template → estimated individual active session; instSession
// is the instance's active-session metric; [as, ae) is the anomaly window
// in series indexes.
func Rank(sessions map[sqltemplate.ID]timeseries.Series, instSession timeseries.Series, as, ae int, opt Options) []Score {
	if len(sessions) == 0 {
		return nil
	}
	n := len(instSession)
	weight := timeseries.SigmoidWeight(n, as, ae, opt.SmoothKs)

	ids := make([]sqltemplate.ID, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Scale-level: anomaly-window session mass per template, min-max
	// normalized across templates and mapped into [-1, 1].
	masses := make(timeseries.Series, len(ids))
	for i, id := range ids {
		masses[i] = sessions[id].Slice(as, ae).Sum()
	}
	norm := masses.MinMax()

	// Per-template level scores, fanned out across workers; scores[i] is
	// owned by the worker handling i, so the slice — and everything the
	// stable sort below sees — is identical for every worker count.
	scores := make([]Score, len(ids))
	parallel.ForEach(opt.Workers, len(ids), func(i int) {
		s := sessions[ids[i]]
		trend, _ := timeseries.WeightedCorr(s, instSession, weight)
		ratio, _ := s.Div(instSession)
		scaleTrend, _ := timeseries.Corr(ratio, instSession)
		scores[i] = Score{
			ID:         ids[i],
			Pos:        -1,
			Trend:      trend,
			Scale:      2*norm[i] - 1,
			ScaleTrend: scaleTrend,
		}
	})
	var maxIdx int
	for i := range masses {
		if masses[i] > masses[maxIdx] {
			maxIdx = i
		}
	}

	alpha, beta := 1.0, 1.0
	if opt.WeightedScore {
		a, _ := timeseries.Corr(sessions[ids[maxIdx]], instSession)
		alpha, beta = a, -a
	}
	for i := range scores {
		var impact float64
		if opt.UseTrend {
			impact += beta * scores[i].Trend
		}
		if opt.UseScaleTrend {
			impact += scores[i].ScaleTrend
		}
		if opt.UseScale {
			impact += alpha * scores[i].Scale
		}
		scores[i].Impact = impact
	}

	sort.SliceStable(scores, func(i, j int) bool { return scores[i].Impact > scores[j].Impact })
	return scores
}
