package impact

import (
	"math/rand"
	"testing"

	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// scenario builds an instance session trace with an anomaly window driven
// by the "HSQL" template, a big stable template, and small noise templates.
// bump is the anomaly's session lift; with a small bump the stable template
// keeps the largest anomaly-window mass, which is the hard case for
// Top-SQL-style rankings.
func scenario(rng *rand.Rand, bump float64) (map[sqltemplate.ID]timeseries.Series, timeseries.Series, int, int) {
	n, as, ae := 600, 300, 360
	sessions := make(map[sqltemplate.ID]timeseries.Series)

	hsql := make(timeseries.Series, n)
	stable := make(timeseries.Series, n)
	tiny := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		hsql[i] = 0.5 + 0.1*rng.Float64()
		if i >= as && i < ae {
			hsql[i] += bump // the anomaly: this template's sessions pile up
		}
		stable[i] = 10 + rng.Float64() // heavy but flat traffic
		tiny[i] = 0.05 * rng.Float64() // noise template
	}
	sessions["HSQL"] = hsql
	sessions["STABLE"] = stable
	sessions["TINY"] = tiny

	inst := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		inst[i] = hsql[i] + stable[i] + tiny[i]
	}
	return sessions, inst, as, ae
}

func TestRankIdentifiesHSQL(t *testing.T) {
	sessions, inst, as, ae := scenario(rand.New(rand.NewSource(1)), 40)
	scores := Rank(sessions, inst, as, ae, DefaultOptions())
	if len(scores) != 3 {
		t.Fatalf("scores = %d, want 3", len(scores))
	}
	if scores[0].ID != "HSQL" {
		t.Errorf("top template = %s (%+v), want HSQL", scores[0].ID, scores)
	}
}

func TestRankScoreBounds(t *testing.T) {
	sessions, inst, as, ae := scenario(rand.New(rand.NewSource(2)), 40)
	for _, sc := range Rank(sessions, inst, as, ae, DefaultOptions()) {
		for name, v := range map[string]float64{
			"trend": sc.Trend, "scale": sc.Scale, "scale-trend": sc.ScaleTrend,
		} {
			if v < -1-1e-9 || v > 1+1e-9 {
				t.Errorf("%s score of %s = %v outside [-1,1]", name, sc.ID, v)
			}
		}
		if sc.Impact < -3-1e-9 || sc.Impact > 3+1e-9 {
			t.Errorf("impact of %s = %v outside [-3,3]", sc.ID, sc.Impact)
		}
	}
}

func TestRankStableTrafficNotTop(t *testing.T) {
	// The stable template has by far the largest total session mass; a
	// pure Top-RT style ranking would place it first. Impact must not.
	sessions, inst, as, ae := scenario(rand.New(rand.NewSource(3)), 3)
	stableMass := sessions["STABLE"].Slice(as, ae).Sum()
	hsqlMass := sessions["HSQL"].Slice(as, ae).Sum()
	if stableMass < hsqlMass {
		t.Fatal("scenario must make the stable template dominant in window mass")
	}
	scores := Rank(sessions, inst, as, ae, DefaultOptions())
	if scores[0].ID == "STABLE" {
		t.Errorf("stable-traffic template ranked top: %+v", scores)
	}
}

func TestRankAblationTrendMatters(t *testing.T) {
	// With a template whose only virtue is scale (stable giant), removing
	// the trend and scale-trend signals should promote it.
	sessions, inst, as, ae := scenario(rand.New(rand.NewSource(4)), 3)
	opt := DefaultOptions()
	opt.UseTrend = false
	opt.UseScaleTrend = false
	opt.WeightedScore = false
	scores := Rank(sessions, inst, as, ae, opt)
	if scores[0].ID != "STABLE" {
		t.Errorf("scale-only ranking top = %s, want STABLE", scores[0].ID)
	}
}

func TestRankEmptyInput(t *testing.T) {
	if got := Rank(nil, timeseries.Series{1, 2}, 0, 1, DefaultOptions()); got != nil {
		t.Errorf("empty rank = %+v", got)
	}
}

func TestRankSingleTemplate(t *testing.T) {
	s := timeseries.Series{1, 2, 3, 10, 10, 3, 2, 1}
	sessions := map[sqltemplate.ID]timeseries.Series{"ONLY": s}
	scores := Rank(sessions, s.Clone(), 3, 5, DefaultOptions())
	if len(scores) != 1 {
		t.Fatalf("scores = %+v", scores)
	}
	// MinMax of a single value is 0 → scale = -1; trend = 1 (identical
	// series). Just assert the call is well-formed and bounded.
	if scores[0].Trend < 0.99 {
		t.Errorf("trend of identical series = %v, want ≈ 1", scores[0].Trend)
	}
}

func TestRankConstantInstanceSession(t *testing.T) {
	flat := make(timeseries.Series, 100)
	for i := range flat {
		flat[i] = 5
	}
	sessions := map[sqltemplate.ID]timeseries.Series{
		"A": flat.Clone(),
		"B": flat.Clone(),
	}
	scores := Rank(sessions, flat, 40, 60, DefaultOptions())
	for _, sc := range scores {
		if sc.Trend != 0 || sc.ScaleTrend != 0 {
			t.Errorf("zero-variance trend scores: %+v", sc)
		}
	}
}

func TestRankDeterministic(t *testing.T) {
	sessions, inst, as, ae := scenario(rand.New(rand.NewSource(6)), 40)
	a := Rank(sessions, inst, as, ae, DefaultOptions())
	b := Rank(sessions, inst, as, ae, DefaultOptions())
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Impact != b[i].Impact {
			t.Fatalf("rank not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
