package impact

// Workers-equivalence property for the fanned-out H-SQL scorer: Rank must
// return the identical ranked slice — order and float bits — for every
// worker count.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

func randomSessions(rng *rand.Rand, n int) (map[sqltemplate.ID]timeseries.Series, timeseries.Series) {
	sessions := make(map[sqltemplate.ID]timeseries.Series)
	inst := make(timeseries.Series, n)
	for t, nT := 0, 1+rng.Intn(20); t < nT; t++ {
		s := make(timeseries.Series, n)
		base := rng.Float64() * 10
		for i := range s {
			s[i] = base + rng.Float64()
			inst[i] += s[i]
		}
		sessions[sqltemplate.ID(fmt.Sprintf("Q%02d", t))] = s
	}
	return sessions, inst
}

func TestRankWorkersEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(200)
		sessions, inst := randomSessions(rng, n)
		as := n / 3
		ae := 2 * n / 3
		opt := DefaultOptions()
		opt.Workers = 1
		seq := Rank(sessions, inst, as, ae, opt)
		for _, w := range []int{2, 5, 0} { // 0 = GOMAXPROCS
			opt.Workers = w
			if par := Rank(sessions, inst, as, ae, opt); !reflect.DeepEqual(seq, par) {
				t.Logf("seed %d workers=%d: rankings diverged", seed, w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
