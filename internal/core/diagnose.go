// Package core is PinSQL's diagnosis pipeline — the paper's primary
// contribution assembled end-to-end (§III): given an anomaly case, it
// estimates every template's individual active session from the query log
// (§IV-C), ranks High-impact SQLs by the fused multi-level score (§V), and
// pinpoints Root Cause SQLs through clustering, cumulative-threshold
// selection and history trend verification (§VI).
//
// Every ablation of Fig. 6 is a switch on Config, so the experiment
// harness runs the identical pipeline with one component replaced.
package core

import (
	"time"

	"pinsql/internal/anomaly"
	"pinsql/internal/impact"
	"pinsql/internal/rootcause"
	"pinsql/internal/session"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// Config carries the full pipeline configuration. Zero value fields fall
// back to the paper's defaults (§VIII-A: δs = 30 min, ks = 30, τ = 0.8,
// Kc = 5, τc = 0.95, K = 10 buckets).
type Config struct {
	Buckets  int     // session estimation buckets K
	SmoothKs float64 // sigmoid smooth factor ks
	Tau      float64 // clustering threshold τ
	TauC     float64 // cumulative threshold τc
	Kc       int     // max clusters Kc
	TukeyK   float64 // history verification Tukey multiplier

	// Workers bounds the fan-out of the three parallelized stages
	// (session estimation, H-SQL scoring, R-SQL clustering/verification).
	// 1 runs the whole pipeline sequentially on the calling goroutine;
	// 0 (or negative) uses GOMAXPROCS workers. Diagnosis output is
	// identical for every value — each stage merges into index-ordered
	// slices, so even floating-point addition order is fixed.
	Workers int

	// Ablation switches (Fig. 6). All false means full PinSQL.
	NoEstimateSession      bool // use total response time instead of estimated sessions
	NoTrendLevel           bool
	NoScaleLevel           bool
	NoScaleTrendLevel      bool
	NoWeightedFinalScore   bool
	NoCumulativeThreshold  bool
	NoHistoryVerification  bool
	NoDirectCauseRanking   bool // rank clusters by Top-RT instead of impact
	IncludeMetricTempNodes bool // add performance metrics as clustering temp nodes
}

// DefaultConfig returns the paper's default parameters with metric temp
// nodes enabled.
func DefaultConfig() Config {
	return Config{
		Buckets:                session.DefaultBuckets,
		SmoothKs:               impact.DefaultSmoothKs,
		Tau:                    rootcause.DefaultTau,
		TauC:                   rootcause.DefaultTauC,
		Kc:                     rootcause.DefaultKc,
		TukeyK:                 rootcause.DefaultTukeyK,
		IncludeMetricTempNodes: true,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.Buckets <= 0 {
		c.Buckets = def.Buckets
	}
	if c.SmoothKs <= 0 {
		c.SmoothKs = def.SmoothKs
	}
	if c.Tau <= 0 {
		c.Tau = def.Tau
	}
	if c.TauC <= 0 {
		c.TauC = def.TauC
	}
	if c.Kc <= 0 {
		c.Kc = def.Kc
	}
	if c.TukeyK <= 0 {
		c.TukeyK = def.TukeyK
	}
	return c
}

// Timing reports where diagnosis time went, matching the paper's §VIII-B
// breakdown (estimation, H-SQL ranking, clustering+filtering, history
// verification).
type Timing struct {
	EstimateSession time.Duration
	RankHSQL        time.Duration
	ClusterFilter   time.Duration
	VerifyRank      time.Duration
}

// Total returns the end-to-end diagnosis time.
func (t Timing) Total() time.Duration {
	return t.EstimateSession + t.RankHSQL + t.ClusterFilter + t.VerifyRank
}

// Diagnosis is the pipeline output: both ranked lists of Definition II.5
// plus intermediate artifacts for the harness and the repair module.
type Diagnosis struct {
	HSQLs []impact.Score        // ranked H-SQL list
	RSQLs []rootcause.Candidate // ranked R-SQL list
	Root  *rootcause.Result     // full R-SQL module output
	Est   *session.Estimate     // individual active sessions (legacy path)
	// FrameEst holds the position-keyed estimate when the diagnosis ran
	// through DiagnoseFrame; Est stays nil on that path.
	FrameEst *session.FrameEstimate
	Time     Timing
}

// HSQLIDs returns the ranked H-SQL template IDs.
func (d *Diagnosis) HSQLIDs() []sqltemplate.ID {
	out := make([]sqltemplate.ID, len(d.HSQLs))
	for i, s := range d.HSQLs {
		out[i] = s.ID
	}
	return out
}

// RSQLIDs returns the ranked R-SQL template IDs.
func (d *Diagnosis) RSQLIDs() []sqltemplate.ID {
	out := make([]sqltemplate.ID, len(d.RSQLs))
	for i, c := range d.RSQLs {
		out[i] = c.ID
	}
	return out
}

// Diagnose runs the full pipeline on an anomaly case. queries holds the
// raw per-query observations of the case window (from the log store); it
// is required unless NoEstimateSession is set.
func Diagnose(c *anomaly.Case, queries session.Queries, cfg Config) *Diagnosis {
	cfg = cfg.withDefaults()
	snap := c.Snapshot
	d := &Diagnosis{}

	// Stage 1: individual active session estimation (§IV-C).
	start := time.Now()
	var sessions map[sqltemplate.ID]timeseries.Series
	if cfg.NoEstimateSession {
		// Ablation: aggregated response time as the session proxy.
		sessions = make(map[sqltemplate.ID]timeseries.Series, len(snap.Templates))
		for _, ts := range snap.Templates {
			s := make(timeseries.Series, len(ts.SumRT))
			for i, v := range ts.SumRT {
				s[i] = v / 1000
			}
			sessions[ts.Meta.ID] = s
		}
	} else {
		est := session.EstimateBucketsWorkers(queries, snap.ActiveSession, snap.StartMs, snap.Seconds, cfg.Buckets, cfg.Workers)
		d.Est = est
		sessions = est.PerTemplate
		// Templates with zero logged queries still deserve a (zero) row.
		for _, ts := range snap.Templates {
			if _, ok := sessions[ts.Meta.ID]; !ok {
				sessions[ts.Meta.ID] = make(timeseries.Series, snap.Seconds)
			}
		}
	}
	d.Time.EstimateSession = time.Since(start)

	// Stage 2: H-SQL identification (§V).
	start = time.Now()
	iopt := impact.Options{
		SmoothKs:      cfg.SmoothKs,
		UseTrend:      !cfg.NoTrendLevel,
		UseScale:      !cfg.NoScaleLevel,
		UseScaleTrend: !cfg.NoScaleTrendLevel,
		WeightedScore: !cfg.NoWeightedFinalScore,
		Workers:       cfg.Workers,
	}
	d.HSQLs = impact.Rank(sessions, snap.ActiveSession, c.AS, c.AE, iopt)
	d.Time.RankHSQL = time.Since(start)

	// Stage 3: R-SQL identification (§VI).
	impactOf := make(map[sqltemplate.ID]float64, len(d.HSQLs))
	for _, s := range d.HSQLs {
		impactOf[s.ID] = s.Impact
	}
	templates := make([]rootcause.Template, 0, len(snap.Templates))
	for _, ts := range snap.Templates {
		score := impactOf[ts.Meta.ID]
		if cfg.NoDirectCauseRanking {
			// Ablation: the best Top-SQL baseline (Top-RT) replaces the
			// H-SQL impact for cluster ranking.
			score = ts.SumRT.Slice(c.AS, c.AE).Sum()
		}
		templates = append(templates, rootcause.Template{
			ID:      ts.Meta.ID,
			Exec:    ts.Count,
			Session: sessions[ts.Meta.ID],
			Impact:  score,
		})
	}
	var metricNodes map[string]timeseries.Series
	if cfg.IncludeMetricTempNodes {
		metricNodes = map[string]timeseries.Series{
			anomaly.MetricCPUUsage:     snap.CPUUsage,
			anomaly.MetricIOPSUsage:    snap.IOPSUsage,
			anomaly.MetricRowLockWaits: snap.RowLockWaits,
			anomaly.MetricMDLWaits:     snap.MDLWaits,
		}
	}
	history := make([]rootcause.HistoryWindow, 0, len(c.History))
	for _, hw := range c.History {
		history = append(history, rootcause.HistoryWindow{DaysAgo: hw.DaysAgo, Counts: hw.Counts})
	}
	ropt := rootcause.Options{
		Tau:                    cfg.Tau,
		TauC:                   cfg.TauC,
		Kc:                     cfg.Kc,
		TukeyK:                 cfg.TukeyK,
		UseCumulativeThreshold: !cfg.NoCumulativeThreshold,
		UseHistoryVerification: !cfg.NoHistoryVerification,
		Workers:                cfg.Workers,
	}
	in := rootcause.Input{
		Templates:   templates,
		Metrics:     metricNodes,
		InstSession: snap.ActiveSession,
		AS:          c.AS,
		AE:          c.AE,
		History:     history,
	}
	d.Root = rootcause.Identify(in, ropt)
	d.RSQLs = d.Root.Ranked
	d.Time.ClusterFilter = d.Root.ClusterDur
	d.Time.VerifyRank = d.Root.VerifyDur
	return d
}
