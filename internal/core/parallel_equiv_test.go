package core

// End-to-end Workers-equivalence: the full diagnosis of a generated
// anomaly case must be identical — H-SQL ranking, R-SQL ranking, cluster
// structure, and every estimated session series — whatever the worker
// count. This is the pipeline-level contract behind the Fig. 7
// sequential-vs-parallel curves: parallelism buys time, never answers.

import (
	"reflect"
	"testing"

	"pinsql/internal/cases"
	"pinsql/internal/workload"
)

func TestDiagnoseWorkersEquivalence(t *testing.T) {
	opt := cases.DefaultOptions()
	opt.FillerServices = 3
	opt.FillerSpecs = 6
	for _, kind := range []workload.AnomalyKind{workload.KindBusinessSpike, workload.KindLockStorm} {
		lab, err := cases.GenerateOne(opt, 8, kind)
		if err != nil {
			t.Fatal(err)
		}
		queries := cases.QueriesOf(lab.Collector, lab.Case.Snapshot)

		cfg := DefaultConfig()
		cfg.Workers = 1
		seq := Diagnose(lab.Case, queries, cfg)

		for _, w := range []int{2, 4, 0} { // 0 = GOMAXPROCS
			cfg.Workers = w
			par := Diagnose(lab.Case, queries, cfg)
			if !reflect.DeepEqual(seq.HSQLs, par.HSQLs) {
				t.Errorf("%v workers=%d: H-SQL ranking diverged", kind, w)
			}
			if !reflect.DeepEqual(seq.RSQLs, par.RSQLs) {
				t.Errorf("%v workers=%d: R-SQL ranking diverged", kind, w)
			}
			if !reflect.DeepEqual(seq.Root.Clusters, par.Root.Clusters) {
				t.Errorf("%v workers=%d: cluster structure diverged", kind, w)
			}
			if !reflect.DeepEqual(seq.Est.PerTemplate, par.Est.PerTemplate) {
				t.Errorf("%v workers=%d: estimated session series diverged", kind, w)
			}
			if !reflect.DeepEqual(seq.Est.Total, par.Est.Total) {
				t.Errorf("%v workers=%d: estimated total session diverged", kind, w)
			}
			if !reflect.DeepEqual(seq.Est.SelBucket, par.Est.SelBucket) {
				t.Errorf("%v workers=%d: bucket selection diverged", kind, w)
			}
		}
	}
}
