package core

// Differential tests for the index-first refactor: DiagnoseFrame must be a
// drop-in replacement for the legacy map-keyed Diagnose — identical H-SQL
// and R-SQL rankings down to float bits on real generated workloads — and
// the decisions downstream (repair) must not be able to tell the paths
// apart. A final allocation budget pins the frame path's headline win.

import (
	"math"
	"reflect"
	"testing"

	"pinsql/internal/cases"
	"pinsql/internal/repair"
	"pinsql/internal/workload"
)

// bothPaths generates one labeled case and diagnoses it on the legacy and
// the frame path with the same configuration.
func bothPaths(t *testing.T, idx int64, kind workload.AnomalyKind, cfg Config) (*cases.Labeled, *Diagnosis, *Diagnosis) {
	t.Helper()
	opt := cases.DefaultOptions()
	opt.FillerServices = 2
	opt.FillerSpecs = 5
	lab, err := cases.GenerateOne(opt, idx, kind)
	if err != nil {
		t.Fatal(err)
	}
	legacy := Diagnose(lab.Case, cases.QueriesOf(lab.Collector, lab.Case.Snapshot), cfg)
	framed := DiagnoseFrame(lab.Case, lab.Collector.Frame(), cfg)
	return lab, legacy, framed
}

// requireSameDiagnosis compares rankings bit for bit, ignoring the
// frame-only Score.Pos field and the Est/FrameEst representation split.
func requireSameDiagnosis(t *testing.T, legacy, framed *Diagnosis) {
	t.Helper()
	if len(legacy.HSQLs) != len(framed.HSQLs) {
		t.Fatalf("H-SQL count: legacy %d, frame %d", len(legacy.HSQLs), len(framed.HSQLs))
	}
	for i, l := range legacy.HSQLs {
		f := framed.HSQLs[i]
		if l.ID != f.ID ||
			math.Float64bits(l.Trend) != math.Float64bits(f.Trend) ||
			math.Float64bits(l.Scale) != math.Float64bits(f.Scale) ||
			math.Float64bits(l.ScaleTrend) != math.Float64bits(f.ScaleTrend) ||
			math.Float64bits(l.Impact) != math.Float64bits(f.Impact) {
			t.Fatalf("H-SQL %d: legacy %+v, frame %+v", i, l, f)
		}
	}
	if len(legacy.RSQLs) != len(framed.RSQLs) {
		t.Fatalf("R-SQL count: legacy %d, frame %d", len(legacy.RSQLs), len(framed.RSQLs))
	}
	for i, l := range legacy.RSQLs {
		f := framed.RSQLs[i]
		if l.ID != f.ID || l.Cluster != f.Cluster || l.Verified != f.Verified ||
			math.Float64bits(l.Score) != math.Float64bits(f.Score) {
			t.Fatalf("R-SQL %d: legacy %+v, frame %+v", i, l, f)
		}
	}
}

func TestDiagnoseFrameMatchesLegacyAllFamilies(t *testing.T) {
	kinds := []workload.AnomalyKind{
		workload.KindBusinessSpike, workload.KindPoorSQL,
		workload.KindLockStorm, workload.KindMDL,
	}
	for i, kind := range kinds {
		_, legacy, framed := bothPaths(t, int64(i), kind, DefaultConfig())
		requireSameDiagnosis(t, legacy, framed)
	}
}

func TestDiagnoseFrameMatchesLegacyUnderAblations(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"no_estimate_session", func(c *Config) { c.NoEstimateSession = true }},
		{"no_weighted_score", func(c *Config) { c.NoWeightedFinalScore = true }},
		{"no_direct_cause", func(c *Config) { c.NoDirectCauseRanking = true }},
		{"no_history", func(c *Config) { c.NoHistoryVerification = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			_, legacy, framed := bothPaths(t, 2, workload.KindLockStorm, cfg)
			requireSameDiagnosis(t, legacy, framed)
		})
	}
}

// TestRepairDecisionsIdenticalAcrossPaths closes the loop on the refactor's
// contract: repair acts only on the case and the ranked R-SQL IDs, so two
// diagnoses that agree must yield the same suggested actions, parameters
// and reasons on both the lock-storm and the poor-SQL family.
func TestRepairDecisionsIdenticalAcrossPaths(t *testing.T) {
	for i, kind := range []workload.AnomalyKind{workload.KindLockStorm, workload.KindPoorSQL} {
		lab, legacy, framed := bothPaths(t, int64(10+i), kind, DefaultConfig())
		requireSameDiagnosis(t, legacy, framed)
		mod := repair.New(repair.DefaultConfig(), repair.DefaultOptimizer())
		topOf := func(d *Diagnosis) []string {
			ids := d.RSQLIDs()
			if len(ids) > 3 {
				ids = ids[:3]
			}
			out := make([]string, len(ids))
			for j, id := range ids {
				out[j] = string(id)
			}
			return out
		}
		if !reflect.DeepEqual(topOf(legacy), topOf(framed)) {
			t.Fatalf("%s: top R-SQLs differ", kind)
		}
		top := legacy.RSQLIDs()
		if len(top) > 3 {
			top = top[:3]
		}
		suggLegacy := mod.Suggest(lab.Case, top)
		suggFrame := mod.Suggest(lab.Case, framed.RSQLIDs()[:len(top)])
		if !reflect.DeepEqual(suggLegacy, suggFrame) {
			t.Fatalf("%s: repair suggestions differ:\nlegacy: %+v\nframe:  %+v", kind, suggLegacy, suggFrame)
		}
	}
}

// TestDiagnoseFrameAllocBudget pins the frame path's allocation profile:
// a warm diagnosis must stay orders of magnitude below the legacy path's
// ~10k allocations (most of what remains is one series per template in
// the estimator output).
func TestDiagnoseFrameAllocBudget(t *testing.T) {
	opt := cases.DefaultOptions()
	opt.FillerServices = 2
	opt.FillerSpecs = 5
	lab, err := cases.GenerateOne(opt, 2, workload.KindLockStorm)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 1 // sequential: no scheduling allocations in the count
	fr := lab.Collector.Frame()
	DiagnoseFrame(lab.Case, fr, cfg) // warm-up

	const budget = 1500
	if allocs := testing.AllocsPerRun(5, func() {
		DiagnoseFrame(lab.Case, fr, cfg)
	}); allocs > budget {
		t.Errorf("warm DiagnoseFrame allocates %.0f objects/run, budget %d", allocs, budget)
	}
}
