package core

import (
	"testing"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/session"
	"pinsql/internal/timeseries"
)

func TestConfigDefaultsApplied(t *testing.T) {
	got := (Config{}).withDefaults()
	def := DefaultConfig()
	if got.Buckets != def.Buckets || got.SmoothKs != def.SmoothKs ||
		got.Tau != def.Tau || got.TauC != def.TauC || got.Kc != def.Kc ||
		got.TukeyK != def.TukeyK {
		t.Errorf("defaults not applied: %+v", got)
	}
	// Explicit values survive.
	custom := (Config{Buckets: 3, Tau: 0.5}).withDefaults()
	if custom.Buckets != 3 || custom.Tau != 0.5 {
		t.Errorf("explicit values overridden: %+v", custom)
	}
	// Ablation switches default to off (full PinSQL).
	if def.NoEstimateSession || def.NoTrendLevel || def.NoCumulativeThreshold {
		t.Error("default config must be the full pipeline")
	}
	if !def.IncludeMetricTempNodes {
		t.Error("metric temp nodes should be on by default")
	}
}

// syntheticCase builds a tiny in-memory case without any simulation: one
// culprit template stepping up inside the window, one stable template.
func syntheticCase() (*anomaly.Case, session.Queries) {
	n := 240
	as, ae := 120, 180
	inst := make(timeseries.Series, n)
	culpritCount := make(timeseries.Series, n)
	stableCount := make(timeseries.Series, n)
	culpritRT := make(timeseries.Series, n)
	stableRT := make(timeseries.Series, n)
	queries := session.Queries{}
	for i := 0; i < n; i++ {
		inst[i] = 1
		stableCount[i] = 10
		stableRT[i] = 100
		if i >= as && i < ae {
			inst[i] = 12
			culpritCount[i] = 8
			culpritRT[i] = 8 * 1200
		}
	}
	for i := as; i < ae; i++ {
		for k := 0; k < 8; k++ {
			queries["CULPRIT"] = append(queries["CULPRIT"], session.Obs{
				ArrivalMs:  int64(i*1000 + k*120),
				ResponseMs: 1200,
			})
		}
		for k := 0; k < 10; k++ {
			queries["STABLE"] = append(queries["STABLE"], session.Obs{
				ArrivalMs:  int64(i*1000 + k*100),
				ResponseMs: 10,
			})
		}
	}
	snap := &collect.Snapshot{
		Seconds:       n,
		ActiveSession: inst,
		CPUUsage:      make(timeseries.Series, n),
		IOPSUsage:     make(timeseries.Series, n),
		RowLockWaits:  make(timeseries.Series, n),
		MDLWaits:      make(timeseries.Series, n),
		Templates: []*collect.TemplateSeries{
			{Meta: collect.TemplateMeta{Index: 0, ID: "CULPRIT"}, Count: culpritCount, SumRT: culpritRT, SumRows: culpritCount.Clone()},
			{Meta: collect.TemplateMeta{Index: 1, ID: "STABLE"}, Count: stableCount, SumRT: stableRT, SumRows: stableCount.Clone()},
		},
	}
	c := anomaly.NewCase(snap, anomaly.Phenomenon{Rule: "active_session_anomaly", Start: as, End: ae})
	return c, queries
}

func TestDiagnoseSyntheticCulprit(t *testing.T) {
	c, queries := syntheticCase()
	d := Diagnose(c, queries, DefaultConfig())
	if len(d.HSQLs) != 2 || d.HSQLs[0].ID != "CULPRIT" {
		t.Errorf("H ranking = %+v", d.HSQLs)
	}
	if len(d.RSQLs) == 0 || d.RSQLs[0].ID != "CULPRIT" {
		t.Errorf("R ranking = %+v", d.RSQLs)
	}
}

func TestDiagnoseWithoutMetricTempNodes(t *testing.T) {
	c, queries := syntheticCase()
	cfg := DefaultConfig()
	cfg.IncludeMetricTempNodes = false
	d := Diagnose(c, queries, cfg)
	if len(d.RSQLs) == 0 || d.RSQLs[0].ID != "CULPRIT" {
		t.Errorf("R ranking without temp nodes = %+v", d.RSQLs)
	}
}

func TestDiagnoseZeroQueryTemplates(t *testing.T) {
	// A template present in the snapshot but absent from the query log
	// must still get a (zero) session row and not crash anything.
	c, queries := syntheticCase()
	delete(queries, "STABLE")
	d := Diagnose(c, queries, DefaultConfig())
	if len(d.HSQLs) != 2 {
		t.Fatalf("H ranking lost a template: %+v", d.HSQLs)
	}
}

func TestIDAccessors(t *testing.T) {
	c, queries := syntheticCase()
	d := Diagnose(c, queries, DefaultConfig())
	if len(d.HSQLIDs()) != len(d.HSQLs) || len(d.RSQLIDs()) != len(d.RSQLs) {
		t.Error("accessor lengths differ")
	}
	if d.HSQLIDs()[0] != d.HSQLs[0].ID {
		t.Error("HSQLIDs order differs")
	}
}

func TestTimingTotal(t *testing.T) {
	tm := Timing{EstimateSession: 1, RankHSQL: 2, ClusterFilter: 3, VerifyRank: 4}
	if tm.Total() != 10 {
		t.Errorf("total = %v", tm.Total())
	}
}
