package core

import (
	"pinsql/internal/anomaly"
	"pinsql/internal/window"
)

// Perception is the perception front of the diagnosis pipeline: the Basic
// and Phenomenon Perception Layers (§IV-B) over the metrics of one
// monitoring window, backed by rolling order-statistics state
// (anomaly.StreamDetector). Feeding one second at a time costs O(log n)
// amortized per metric instead of the O(n log n) full-window re-sort the
// batch detector pays on every pass, while the recognized phenomena stay
// bit-identical to the batch path — so diagnosis reports remain
// byte-identical across worker counts and restarts.
//
// A Perception is per-window state: create one per monitoring window,
// observe the window's metric samples (incrementally via ObserveSecond or
// all at once via ObserveFrame) and harvest with Phenomena.
type Perception struct {
	det   *anomaly.StreamDetector
	rules []anomaly.Rule
}

// NewPerception builds a perception front with the given detector config
// and phenomenon rules. Nil rules fall back to anomaly.DefaultRules.
func NewPerception(cfg anomaly.Config, rules []anomaly.Rule) *Perception {
	if rules == nil {
		rules = anomaly.DefaultRules()
	}
	return &Perception{det: anomaly.NewStreamDetector(cfg), rules: rules}
}

// ObserveSecond appends one per-second sample of the named metric.
func (p *Perception) ObserveSecond(metric string, v float64) {
	p.det.Observe(metric, v)
}

// ObserveFrame feeds the frame's detection metrics — the three the default
// production rules watch (active sessions, CPU, IOPS) — sample by sample
// into the rolling state. Seconds already observed for this window must
// not be fed twice; the usual pattern is one ObserveFrame on the sealed
// window frame, or per-second ObserveSecond calls and no ObserveFrame.
func (p *Perception) ObserveFrame(fr *window.Frame) {
	p.det.ObserveSeries(anomaly.MetricActiveSession, fr.ActiveSession)
	p.det.ObserveSeries(anomaly.MetricCPUUsage, fr.CPUUsage)
	p.det.ObserveSeries(anomaly.MetricIOPSUsage, fr.IOPSUsage)
}

// Phenomena runs the Phenomenon Perception Layer over the features
// detected from the current rolling state and returns the recognized
// phenomena, merged, duration-filtered and deterministically ordered.
func (p *Perception) Phenomena() []anomaly.Phenomenon {
	return p.det.DetectPhenomena(p.rules)
}
