package core

import (
	"time"

	"pinsql/internal/anomaly"
	"pinsql/internal/impact"
	"pinsql/internal/rootcause"
	"pinsql/internal/session"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// DiagnoseFrame runs the full pipeline on an anomaly case using the
// columnar window frame as its only data source — no log-store re-scan, no
// map-keyed intermediate tables. Template identity stays a frame position
// through estimation, H-SQL ranking and R-SQL clustering; string template
// IDs appear only in the returned Diagnosis.
//
// The frame must be the window the case was detected on (c.Snapshot built
// from the same collector state, e.g. via collect.SnapshotOfFrame). Output
// is byte-identical to Diagnose(c, queries, cfg) with queries drawn from
// the same window: every float accumulation runs in the same order the
// legacy path fixed by sorting (see window.Frame's ByID contract).
func DiagnoseFrame(c *anomaly.Case, f *window.Frame, cfg Config) *Diagnosis {
	cfg = cfg.withDefaults()
	d := &Diagnosis{}

	// Stage 1: individual active session estimation (§IV-C), keyed by
	// frame position.
	start := time.Now()
	var sessions []timeseries.Series
	if cfg.NoEstimateSession {
		// Ablation: aggregated response time as the session proxy.
		sessions = make([]timeseries.Series, len(f.Templates))
		for pos := range f.Templates {
			sumRT := f.Templates[pos].SumRT
			s := make(timeseries.Series, len(sumRT))
			for i, v := range sumRT {
				s[i] = v / 1000
			}
			sessions[pos] = s
		}
	} else {
		fe := session.EstimateFrameBuckets(f, f.ActiveSession, cfg.Buckets, cfg.Workers)
		d.FrameEst = fe
		sessions = fe.PerTemplate
	}
	d.Time.EstimateSession = time.Since(start)

	// Stage 2: H-SQL identification (§V).
	start = time.Now()
	iopt := impact.Options{
		SmoothKs:      cfg.SmoothKs,
		UseTrend:      !cfg.NoTrendLevel,
		UseScale:      !cfg.NoScaleLevel,
		UseScaleTrend: !cfg.NoScaleTrendLevel,
		WeightedScore: !cfg.NoWeightedFinalScore,
		Workers:       cfg.Workers,
	}
	d.HSQLs = impact.RankFrame(f, sessions, f.ActiveSession, c.AS, c.AE, iopt)
	d.Time.RankHSQL = time.Since(start)

	// Stage 3: R-SQL identification (§VI). The cluster input is assembled
	// in frame order (ascending registry index — the same order the legacy
	// path walks snap.Templates in).
	impactByPos := make([]float64, len(f.Templates))
	for i := range d.HSQLs {
		impactByPos[d.HSQLs[i].Pos] = d.HSQLs[i].Impact
	}
	templates := make([]rootcause.Template, len(f.Templates))
	for pos := range f.Templates {
		t := &f.Templates[pos]
		score := impactByPos[pos]
		if cfg.NoDirectCauseRanking {
			// Ablation: the best Top-SQL baseline (Top-RT) replaces the
			// H-SQL impact for cluster ranking.
			score = t.SumRT.Slice(c.AS, c.AE).Sum()
		}
		templates[pos] = rootcause.Template{
			ID:      t.Meta.ID,
			Exec:    t.Count,
			Session: sessions[pos],
			Impact:  score,
		}
	}
	var metricNodes map[string]timeseries.Series
	if cfg.IncludeMetricTempNodes {
		metricNodes = map[string]timeseries.Series{
			anomaly.MetricCPUUsage:     f.CPUUsage,
			anomaly.MetricIOPSUsage:    f.IOPSUsage,
			anomaly.MetricRowLockWaits: f.RowLockWaits,
			anomaly.MetricMDLWaits:     f.MDLWaits,
		}
	}
	history := make([]rootcause.HistoryWindow, 0, len(c.History))
	for _, hw := range c.History {
		history = append(history, rootcause.HistoryWindow{DaysAgo: hw.DaysAgo, Counts: hw.Counts})
	}
	ropt := rootcause.Options{
		Tau:                    cfg.Tau,
		TauC:                   cfg.TauC,
		Kc:                     cfg.Kc,
		TukeyK:                 cfg.TukeyK,
		UseCumulativeThreshold: !cfg.NoCumulativeThreshold,
		UseHistoryVerification: !cfg.NoHistoryVerification,
		Workers:                cfg.Workers,
	}
	in := rootcause.Input{
		Templates:   templates,
		Metrics:     metricNodes,
		InstSession: f.ActiveSession,
		AS:          c.AS,
		AE:          c.AE,
		History:     history,
	}
	d.Root = rootcause.Identify(in, ropt)
	d.RSQLs = d.Root.Ranked
	d.Time.ClusterFilter = d.Root.ClusterDur
	d.Time.VerifyRank = d.Root.VerifyDur
	return d
}
