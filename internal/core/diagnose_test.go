package core

import (
	"testing"

	"pinsql/internal/cases"
	"pinsql/internal/rank"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/workload"
)

// diagnoseCase generates one labeled case of the given family and runs the
// full pipeline on it.
func diagnoseCase(t *testing.T, idx int64, kind workload.AnomalyKind, cfg Config) (*cases.Labeled, *Diagnosis) {
	t.Helper()
	opt := cases.DefaultOptions()
	opt.FillerServices = 2
	opt.FillerSpecs = 5
	lab, err := cases.GenerateOne(opt, idx, kind)
	if err != nil {
		t.Fatal(err)
	}
	queries := cases.QueriesOf(lab.Collector, lab.Case.Snapshot)
	return lab, Diagnose(lab.Case, queries, cfg)
}

func TestDiagnoseBusinessSpike(t *testing.T) {
	lab, d := diagnoseCase(t, 0, workload.KindBusinessSpike, DefaultConfig())
	if !lab.Detected {
		t.Error("anomaly not detected by the perception layers")
	}
	if !rank.Hit(d.RSQLIDs(), lab.RSQLs, 5) {
		t.Errorf("R-SQL not in top-5: ranked=%v truth=%v", head(d.RSQLIDs(), 5), keys(lab.RSQLs))
	}
	if !rank.Hit(d.HSQLIDs(), lab.HSQLs, 5) {
		t.Errorf("H-SQL not in top-5: ranked=%v truth=%v", head(d.HSQLIDs(), 5), keys(lab.HSQLs))
	}
}

func TestDiagnosePoorSQL(t *testing.T) {
	lab, d := diagnoseCase(t, 1, workload.KindPoorSQL, DefaultConfig())
	if !rank.Hit(d.RSQLIDs(), lab.RSQLs, 1) {
		t.Errorf("poor SQL not top-1: ranked=%v truth=%v", head(d.RSQLIDs(), 5), keys(lab.RSQLs))
	}
}

func TestDiagnoseLockStorm(t *testing.T) {
	lab, d := diagnoseCase(t, 2, workload.KindLockStorm, DefaultConfig())
	if !rank.Hit(d.RSQLIDs(), lab.RSQLs, 5) {
		t.Errorf("lock-storm UPDATE not in top-5: ranked=%v truth=%v", head(d.RSQLIDs(), 5), keys(lab.RSQLs))
	}
}

func TestDiagnoseMDL(t *testing.T) {
	lab, d := diagnoseCase(t, 3, workload.KindMDL, DefaultConfig())
	// MDL cases are the hardest family (a single DDL execution has almost
	// no #execution trend); require the pipeline to at least surface it
	// among the candidates or to rank real H-SQLs on top.
	if !rank.Hit(d.HSQLIDs(), lab.HSQLs, 5) {
		t.Errorf("H-SQL not in top-5 for MDL case: ranked=%v truth=%v", head(d.HSQLIDs(), 5), keys(lab.HSQLs))
	}
}

func TestDiagnoseTimingPopulated(t *testing.T) {
	_, d := diagnoseCase(t, 4, workload.KindBusinessSpike, DefaultConfig())
	if d.Time.EstimateSession <= 0 || d.Time.RankHSQL <= 0 {
		t.Errorf("timing not populated: %+v", d.Time)
	}
	if d.Time.Total() <= 0 {
		t.Error("total time zero")
	}
}

func TestDiagnoseAblationNoEstimate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoEstimateSession = true
	lab, d := diagnoseCase(t, 5, workload.KindPoorSQL, cfg)
	if d.Est != nil {
		t.Error("estimate should be skipped")
	}
	if len(d.HSQLs) == 0 {
		t.Fatal("no H-SQLs ranked")
	}
	_ = lab
}

func TestDiagnoseBeatsTopSQLOnRSQL(t *testing.T) {
	// The core claim of Table I in miniature: on a poor-SQL case the
	// baselines cannot put the R-SQL first (the victims dominate their
	// metrics), while PinSQL can.
	lab, d := diagnoseCase(t, 6, workload.KindPoorSQL, DefaultConfig())
	if !rank.Hit(d.RSQLIDs(), lab.RSQLs, 1) {
		t.Fatalf("PinSQL missed the R-SQL: %v", head(d.RSQLIDs(), 5))
	}
	snap := lab.Case.Snapshot
	topEN := rank.TopSQL(snap, lab.Case.AS, lab.Case.AE, rank.MethodTopEN)
	if rank.Hit(topEN, lab.RSQLs, 1) {
		t.Log("Top-EN also found it (possible but unusual); not a failure")
	}
}

func head(ids []sqltemplate.ID, n int) []sqltemplate.ID {
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

func keys(m map[sqltemplate.ID]bool) []sqltemplate.ID {
	out := make([]sqltemplate.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}
