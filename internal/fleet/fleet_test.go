package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// testSpecs is the shared fixture: four heterogeneous instances, the last
// one auto-repairing (lockstep scheduling, executed actions in the
// journal).
func testSpecs() []InstanceSpec {
	specs := DefaultFleet(4, 7, 3, 300)
	specs[3].AutoRepair = true
	return specs
}

func runReport(t *testing.T, specs []InstanceSpec, opt Options) (string, *Fleet) {
	t.Helper()
	f, err := New(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	rep := f.Report()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return rep, f
}

// TestFleetWorkersEquivalence is the determinism contract across
// scheduling: a fixed-seed fleet produces a byte-identical report for
// every worker count.
func TestFleetWorkersEquivalence(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 8} {
		rep, f := runReport(t, testSpecs(), Options{Workers: workers, QueueDepth: 16})
		st := f.Status()
		if st.Committed != 4*3 {
			t.Fatalf("workers=%d: committed %d windows, want 12", workers, st.Committed)
		}
		if st.Shed != 0 {
			t.Fatalf("workers=%d: %d windows shed with a deep queue", workers, st.Shed)
		}
		if st.Anomalies == 0 {
			t.Fatalf("workers=%d: no anomalies diagnosed — fixture lost its teeth", workers)
		}
		if want == "" {
			want = rep
			continue
		}
		if rep != want {
			t.Fatalf("workers=%d: report diverged\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s", workers, want, workers, rep)
		}
	}
	if !strings.Contains(want, "rsql") {
		t.Fatalf("no R-SQL diagnosed in:\n%s", want)
	}
	if !strings.Contains(want, "action") {
		t.Fatalf("no repairing action in:\n%s", want)
	}
}

// TestFleetCrashResume is the durability contract: kill the fleet at every
// commit phase of a mid-run window, reopen the data directory, and the
// finished fleet's report is byte-identical to an uninterrupted run's.
func TestFleetCrashResume(t *testing.T) {
	specs := testSpecs()
	want, _ := runReport(t, specs, Options{Workers: 4, QueueDepth: 16, DataDir: t.TempDir()})

	for _, phase := range []string{"pre-append", "mid-append", "pre-journal", "post-journal"} {
		t.Run(phase, func(t *testing.T) {
			dir := t.TempDir()
			var mu sync.Mutex
			fired := false
			opt := Options{Workers: 4, QueueDepth: 16, DataDir: dir}
			opt.CrashAt = func(id string, window int, ph string) bool {
				mu.Lock()
				defer mu.Unlock()
				if id == "inst-03" && window == 1 && ph == phase {
					fired = true
					return true
				}
				return false
			}
			f, err := New(specs, opt)
			if err != nil {
				t.Fatal(err)
			}
			f.Start()
			f.Wait()
			st := f.Status()
			f.Close() // post-crash: leaves files exactly as the kill did
			mu.Lock()
			if !fired {
				mu.Unlock()
				t.Fatal("crash hook never fired")
			}
			mu.Unlock()
			if st.Committed == 4*3 {
				t.Fatal("crash killed nothing: every window already committed")
			}

			// Reopen the same directory: every instance must resume at its
			// journal watermark and finish the remainder.
			got, f2 := runReport(t, specs, Options{Workers: 4, QueueDepth: 16, DataDir: dir})
			if got != want {
				t.Fatalf("post-restart report diverged\n--- uninterrupted ---\n%s\n--- resumed(%s) ---\n%s", want, phase, got)
			}
			for _, is := range f2.Status().Instances {
				if !is.Done || is.Committed != is.Windows {
					t.Fatalf("instance %s did not finish: committed %d/%d", is.ID, is.Committed, is.Windows)
				}
			}
		})
	}
}

// TestFleetRestartNoRemainder pins the already-finished case: reopening a
// completed fleet runs zero new windows and rebuilds the identical report
// purely from the journal.
func TestFleetRestartNoRemainder(t *testing.T) {
	specs := testSpecs()
	dir := t.TempDir()
	want, _ := runReport(t, specs, Options{Workers: 2, DataDir: dir})
	got, f := runReport(t, specs, Options{Workers: 2, DataDir: dir})
	if got != want {
		t.Fatalf("journal-rebuilt report diverged\n--- live ---\n%s\n--- rebuilt ---\n%s", want, got)
	}
	if st := f.Status(); st.Instances[0].Simulated != st.Instances[0].Windows {
		t.Fatalf("restart re-simulated: %+v", st.Instances[0])
	}
}

// TestFleetShedPolicy forces backpressure: one worker gives simulator
// steps strict priority over diagnosis drains, so a depth-1 queue must
// shed every window but the last — yet all windows still commit their
// records, keeping the topic contiguous.
func TestFleetShedPolicy(t *testing.T) {
	spec := DefaultSpec("shed", 11, 4, 300)
	f, err := New([]InstanceSpec{spec}, Options{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st := f.Status().Instances[0]
	if st.Committed != 4 {
		t.Fatalf("committed %d windows, want 4 (shed windows must still commit)", st.Committed)
	}
	if st.Shed != 3 {
		t.Fatalf("shed %d windows, want 3 (all but the final drain)", st.Shed)
	}
	reps, _ := f.Diagnoses("shed")
	for w, rep := range reps {
		if rep.Records == 0 {
			t.Fatalf("window %d committed no records", w)
		}
		if shed := w < 3; rep.Shed != shed {
			t.Fatalf("window %d shed=%v, want %v", w, rep.Shed, shed)
		}
		if rep.Shed && len(rep.Anomalies) > 0 {
			t.Fatalf("window %d kept a diagnosis despite being shed", w)
		}
	}
	if c := f.insts["shed"].cShed.Value(); c != 3 {
		t.Fatalf("shed counter = %d, want 3", c)
	}
}

// TestFleetStopDrains checks graceful shutdown: Stop commits everything
// already queued, seals the durable topics, and a restart picks up the
// remaining windows.
func TestFleetStopDrains(t *testing.T) {
	specs := testSpecs()
	dir := t.TempDir()
	want, _ := runReport(t, specs, Options{Workers: 4, DataDir: t.TempDir()})

	f, err := New(specs, Options{Workers: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Stop after the very first commit: the fleet must drain cleanly with
	// most windows still unrun.
	committed := make(chan struct{}, 1)
	f.opt.OnCommit = func(string, *WindowReport) {
		select {
		case committed <- struct{}{}:
		default:
		}
	}
	f.Start()
	<-committed
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if st := f.Status(); !st.Draining {
		t.Fatal("Stop did not mark the fleet draining")
	}

	got, _ := runReport(t, specs, Options{Workers: 4, DataDir: dir})
	if got != want {
		t.Fatalf("drain+restart report diverged\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

// TestFleetHTTP exercises the control plane end to end against a live
// fleet.
func TestFleetHTTP(t *testing.T) {
	specs := DefaultFleet(2, 3, 2, 300)
	f, err := New(specs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	get := func(path string, wantCode int) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var st Status
	if err := json.Unmarshal([]byte(get("/fleet", 200)), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Instances) != 2 || !st.Done || st.Committed != 4 {
		t.Fatalf("unexpected /fleet status: %+v", st)
	}

	var reps []*WindowReport
	if err := json.Unmarshal([]byte(get("/instances/inst-00/diagnoses", 200)), &reps); err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[1].Records == 0 {
		t.Fatalf("unexpected diagnoses: %+v", reps)
	}
	get("/instances/nope/diagnoses", 404)

	metrics := get("/metrics", 200)
	for _, want := range []string{
		`pinsql_fleet_windows_total{instance="inst-00"} 2`,
		`pinsql_fleet_anomalies_total{instance=`,
		`pinsql_fleet_shed_windows_total{instance="inst-01"} 0`,
		`pinsql_registry_raw_cache_hits_total{instance=`,
		`pinsql_broker_dropped_total{topic="inst-00"} 0`,
		`pinsql_fleet_queue_depth{instance="inst-01"} 0`,
		`pinsql_ingest_parse_errors_total{instance="inst-00"} 0`,
		`pinsql_ingest_lag_seconds{instance="inst-01"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
	// The simulator replays through the ingest seam like any trace, so
	// its records counter must reflect the committed windows.
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, `pinsql_ingest_records_total{instance="inst-00"}`) {
			if strings.HasSuffix(line, " 0") {
				t.Fatalf("ingest records counter stuck at zero: %s", line)
			}
		}
	}
	if !strings.Contains(metrics, `pinsql_ingest_records_total{instance="inst-00"}`) {
		t.Fatal("/metrics missing pinsql_ingest_records_total")
	}
	if !strings.Contains(get("/debug/pprof/cmdline", 200), "fleet") {
		t.Fatal("pprof cmdline endpoint not wired")
	}
}

// TestRunInstanceSingle pins the single-instance helper pinsqld uses.
func TestRunInstanceSingle(t *testing.T) {
	reps, err := RunInstance(DefaultSpec("one", 42, 2, 300), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports, want 2", len(reps))
	}
	if reps[1].Injected == "" || reps[1].Records == 0 {
		t.Fatalf("window 1 looks empty: %+v", reps[1])
	}
}
