package fleet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
)

// TestStageDurationMetrics runs a small fleet to completion and checks the
// per-stage wall-clock summaries on /metrics: every stage present, counts
// consistent with the number of processed windows, sums non-negative.
func TestStageDurationMetrics(t *testing.T) {
	specs := DefaultFleet(2, 5, 2, 300)
	f, err := New(specs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	counts := make(map[string]int64)
	for _, stage := range []string{"collect", "detect", "diagnose", "commit"} {
		sumRe := regexp.MustCompile(`pinsql_stage_duration_seconds_sum\{stage="` + stage + `"\} (\S+)`)
		cntRe := regexp.MustCompile(`pinsql_stage_duration_seconds_count\{stage="` + stage + `"\} (\d+)`)
		sm := sumRe.FindStringSubmatch(text)
		cm := cntRe.FindStringSubmatch(text)
		if sm == nil || cm == nil {
			t.Fatalf("stage %q missing from /metrics:\n%s", stage, text)
		}
		sum, err := strconv.ParseFloat(sm[1], 64)
		if err != nil || sum < 0 {
			t.Fatalf("stage %q sum = %q", stage, sm[1])
		}
		n, err := strconv.ParseInt(cm[1], 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("stage %q count = %q", stage, cm[1])
		}
		counts[stage] = n
	}

	// Every simulated window goes through collect and commit exactly once;
	// detect and diagnose run once per diagnosed window.
	if counts["collect"] != counts["commit"] {
		t.Errorf("collect count %d != commit count %d", counts["collect"], counts["commit"])
	}
	if counts["detect"] != counts["diagnose"] {
		t.Errorf("detect count %d != diagnose count %d", counts["detect"], counts["diagnose"])
	}
}
