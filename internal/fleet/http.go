package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler is the fleet's HTTP control plane:
//
//	GET /fleet                     fleet + per-instance status (JSON)
//	GET /instances/{id}/diagnoses  committed window reports (JSON)
//	GET /metrics                   Prometheus text exposition
//	GET /debug/pprof/...           stdlib profiling endpoints
//
// It is read-only — process control stays with signals (SIGTERM drains) —
// and safe to serve while the fleet runs: every handler snapshots state
// under the fleet lock.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.Status())
	})
	mux.HandleFunc("GET /instances/{id}/diagnoses", func(w http.ResponseWriter, r *http.Request) {
		reps, ok := f.Diagnoses(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown instance", http.StatusNotFound)
			return
		}
		if reps == nil {
			reps = []*WindowReport{}
		}
		writeJSON(w, reps)
	})
	mux.Handle("GET /metrics", f.opt.Metrics.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
