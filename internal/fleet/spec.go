// Package fleet is the multi-instance monitoring service: it runs the full
// PinSQL pipeline (collect → aggregate → detect → diagnose → repair) for N
// simulated database instances concurrently inside one process, the way
// the paper's production deployment multiplexes thousands of RDS instances
// through one Kafka/Flink/diagnosis cluster (Fig. 2, §II).
//
// Each instance owns a per-tenant state machine driven by a shared
// two-priority scheduler: simulator steps run at high priority (the
// database never pauses for its monitor), diagnosis drains fill the idle
// capacity. Per-instance queues are bounded with an explicit shed policy —
// when diagnosis falls behind, the oldest queued window loses its
// diagnosis (counted, never blocking the simulator). With a data
// directory every instance persists its query log to a durable topic
// (internal/logstore/segment) plus a committed-window journal, so a killed
// fleet resumes every instance at the correct window after restart.
//
// Determinism contract: with a fixed seed and no shed windows, the final
// fleet report is byte-identical for every worker count and across
// kill/restart.
package fleet

import (
	"fmt"

	"pinsql/internal/dbsim"
	"pinsql/internal/ingest"
	"pinsql/internal/workload"
)

// InstanceSpec describes one monitored instance: how to build its world
// and simulator, how many windows to run, and which incidents to inject.
type InstanceSpec struct {
	// ID names the instance; it is also its log-store topic and its HTTP
	// path element. IDs must be unique within a fleet.
	ID string

	// Seed drives every random choice of this instance: the workload
	// world, the per-window arrival streams, and the metric sampling
	// phase.
	Seed int64

	// Windows is the total number of monitoring windows this instance
	// should have committed. A restarted fleet runs only the remainder:
	// an instance killed after committing 3 of 6 windows resumes at
	// window 3 and runs 3 more.
	Windows int

	// WindowSec is the window length in simulated seconds.
	WindowSec int

	// AutoRepair executes suggested repairing actions at window commit.
	// Repairs mutate the world, so an auto-repairing instance runs in
	// lockstep: window w+1 is not simulated until window w committed.
	AutoRepair bool

	// Setup builds the instance's workload world and simulator config.
	// Nil selects the pinsqld default (DefaultWorld + 3×6 filler
	// services).
	Setup func(seed int64) (*workload.World, dbsim.Config)

	// Inject optionally mutates the world before window `window` is
	// simulated (fromMs/toMs are the window bounds in absolute simulated
	// milliseconds) and returns a label for the report ("" = nothing
	// injected). Injections are replayed in window order during crash
	// recovery, so they must be deterministic in (window, world state).
	// Nil selects the pinsqld default rotation (an incident every other
	// window). Ignored by trace-backed specs (there is no world to
	// mutate).
	Inject func(w *workload.World, window int, fromMs, toMs int64) string

	// Trace, when non-nil, makes this a trace-backed instance: the fleet
	// monitors the recorded stream the returned ingest.Source yields
	// instead of building a workload world and simulator. The builder is
	// called once per fleet open — on crash recovery the fresh source is
	// skipped to the first uncommitted window boundary. Trace-backed
	// specs leave Setup/Inject unused, may set Windows to 0 ("replay
	// until the trace ends"), and cannot set AutoRepair (there is no
	// live database to act on).
	Trace func() (ingest.Source, error)
}

// withDefaults fills nil hooks and zero values. A trace-backed spec keeps
// Windows == 0: the trace's own length bounds the run.
func (s InstanceSpec) withDefaults() InstanceSpec {
	if s.Windows <= 0 && s.Trace == nil {
		s.Windows = 4
	}
	if s.WindowSec <= 0 {
		s.WindowSec = 1200
	}
	if s.Setup == nil {
		s.Setup = func(seed int64) (*workload.World, dbsim.Config) {
			world := workload.DefaultWorld(seed)
			world.AddFillerServices(3, 6)
			cfg := dbsim.DefaultConfig()
			cfg.Seed = seed
			return world, cfg
		}
	}
	if s.Inject == nil {
		s.Inject = DefaultInject(0)
	}
	return s
}

// DefaultInject returns the pinsqld incident rotation: every other window
// gets an anomaly over the window's middle third — a business spike, a
// lock storm, or a blocking DDL, rotating with the window number (offset
// by rot so a fleet's instances do not all fail identically).
func DefaultInject(rot int) func(w *workload.World, window int, fromMs, toMs int64) string {
	return func(w *workload.World, window int, fromMs, toMs int64) string {
		if window%2 != 1 {
			return ""
		}
		winMs := toMs - fromMs
		as := fromMs + winMs/3
		ae := as + winMs/4
		switch (window/2 + rot) % 3 {
		case 0:
			w.InjectBusinessSpike(w.Services[2], 40, as, ae)
			return "business_spike"
		case 1:
			w.InjectLockStorm(w.Services[2], "orders", 7, as, ae)
			return "lock_storm"
		default:
			w.InjectMDL("orders", as, (ae-as)/2)
			return "ddl_mdl"
		}
	}
}

// DefaultSpec is the single-instance pinsqld configuration as a spec.
func DefaultSpec(id string, seed int64, windows, windowSec int) InstanceSpec {
	return InstanceSpec{ID: id, Seed: seed, Windows: windows, WindowSec: windowSec}.withDefaults()
}

// DefaultFleet builds n heterogeneous specs: each instance gets its own
// seed, its own filler-service mix (so per-tenant workloads differ, as in
// the RESQ-style diverse-tenant setting), and a rotated incident schedule.
func DefaultFleet(n int, baseSeed int64, windows, windowSec int) []InstanceSpec {
	specs := make([]InstanceSpec, n)
	for i := range specs {
		idx := i
		specs[i] = InstanceSpec{
			ID:        fmt.Sprintf("inst-%02d", i),
			Seed:      baseSeed + int64(i)*1000,
			Windows:   windows,
			WindowSec: windowSec,
			Setup: func(seed int64) (*workload.World, dbsim.Config) {
				world := workload.DefaultWorld(seed)
				world.AddFillerServices(1+idx%3, 4+idx%3)
				cfg := dbsim.DefaultConfig()
				cfg.Seed = seed
				return world, cfg
			},
			Inject: DefaultInject(idx),
		}
	}
	return specs
}

// TraceSpec builds a trace-backed spec: monitor the recorded stream in
// windows of windowSec seconds until the trace ends.
func TraceSpec(id string, windowSec int, trace func() (ingest.Source, error)) InstanceSpec {
	return InstanceSpec{ID: id, WindowSec: windowSec, Trace: trace}
}
