package fleet

import (
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/core"
	"pinsql/internal/dbsim"
	"pinsql/internal/ingest"
	"pinsql/internal/logstore"
	"pinsql/internal/logstore/segment"
	"pinsql/internal/obs"
	"pinsql/internal/parallel"
	"pinsql/internal/repair"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/workload"
)

// Options configures a fleet.
type Options struct {
	// Workers sizes the shared scheduler pool (0 = GOMAXPROCS). The
	// final report is byte-identical for every value (when no window is
	// shed).
	Workers int

	// QueueDepth bounds each instance's staged-window queue; when a
	// freshly simulated window arrives at a full queue, the oldest
	// queued window is shed — it loses its diagnosis (counted in the
	// shed metric) but its records still commit, so window numbering
	// and the durable topic stay contiguous. Default 8.
	QueueDepth int

	// DataDir enables durable per-instance stores under
	// DataDir/<instance>/ (a segment store plus a committed-window
	// journal); "" keeps everything in memory.
	DataDir string

	// SyncEvery is the segment store's wal fsync policy (see
	// segment.Options.SyncEvery).
	SyncEvery int

	// DiagnosisWorkers is the inner core.Config.Workers of each
	// diagnosis. The fleet's parallelism comes from running instances
	// concurrently, so the default is 1 (sequential inner pipeline — no
	// oversubscription); diagnosis output is identical for every value.
	DiagnosisWorkers int

	// BrokerBuffer is the per-window subscription buffer between the
	// trace player and the stream aggregator. Default 65536. The player
	// publishes losslessly (a replayed window is pumped much faster than
	// real time, and a dropped record would break bit-reproducibility),
	// so the buffer is pipe depth, not a drop threshold: a full buffer
	// throttles the player to the aggregator.
	BrokerBuffer int

	// Metrics receives the fleet's counters and gauges; nil creates a
	// private registry (reachable via Fleet.Metrics). When several fleets
	// share one registry (the shard manager), Labels keeps their series
	// apart.
	Metrics *obs.Registry

	// Labels is appended to every series this fleet registers — the shard
	// manager sets shard="k" so K shards can share one registry without
	// colliding (and without sharing a stage-summary mutex across shards).
	Labels []obs.Label

	// OnCommit, if set, is called after every committed window (from a
	// scheduler goroutine; keep it quick).
	OnCommit func(id string, rep *WindowReport)

	// CrashAt is the crash-injection test hook: returning true at a
	// commit phase ("pre-append", "mid-append", "pre-journal",
	// "post-journal") makes the fleet behave as if the process died
	// there — all work stops and no file is flushed or closed cleanly.
	// Exported so the shard package's kill/restart tests can reach it;
	// production code leaves it nil.
	CrashAt func(id string, window int, phase string) bool
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.DiagnosisWorkers == 0 {
		o.DiagnosisWorkers = 1
	}
	if o.BrokerBuffer <= 0 {
		o.BrokerBuffer = 65536
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// stagedWindow is one simulated-but-not-yet-committed window.
type stagedWindow struct {
	window       int
	fromMs, toMs int64
	coll         *collect.Collector
	staging      *logstore.Store
	shed         bool

	rep *WindowReport
	// suggestions[i] belongs to rep.Anomalies[i]; executed at commit.
	suggestions [][]repair.Suggestion
}

// instState is the per-tenant state machine.
type instState struct {
	spec     InstanceSpec
	world    *workload.World // nil for trace-backed instances
	sim      *dbsim.Instance // nil for trace-backed instances
	play     *ingest.Player  // the instance's raw stream, window by window
	srcEOF   bool            // the source is exhausted; simulate no further
	registry *collect.Registry
	store    logstore.Backend
	seg      *segment.Store // non-nil in durable mode

	reports []*WindowReport // committed windows, len(reports) == next to commit

	queue       []*stagedWindow
	nextSim     int // next window to simulate
	simActive   bool
	drainActive bool
	peakQueue   int
	err         error

	cWindows, cAnomalies, cShed, cRecords *obs.Counter
}

// Fleet monitors N instances concurrently. Create with New, launch with
// Start, block with Wait, shut down with Stop (graceful drain) or Close.
type Fleet struct {
	opt     Options
	diagCfg core.Config

	mu    sync.Mutex
	cond  *sync.Cond
	insts map[string]*instState
	ids   []string // sorted

	pool    *parallel.Pool
	broker  *collect.Broker
	mod     *repair.Module
	journal *journal // non-nil in durable mode: one group-committed file per fleet

	// stages are the fleet-wide per-stage wall-clock summaries exported on
	// /metrics as pinsql_stage_duration_seconds{stage=...}.
	stages struct {
		collect, detect, diagnose, commit *obs.Summary
	}

	started  bool
	draining bool
	dead     bool // crash hook fired: abandon all state, leave files as killed
	closed   bool
	closeErr error
}

// errCrashed is the internal sentinel of the crash-injection hook.
var errCrashed = errors.New("fleet: crash hook fired")

// New builds a fleet over the specs, opening (and in -data-dir mode
// recovering) every instance: the fleet journal is read once and split by
// instance, every durable topic is truncated back to its last journaled
// window boundary, the workload world is rebuilt by replaying injections
// and executed repair actions of every committed window, and monitoring
// resumes at the first uncommitted window.
func New(specs []InstanceSpec, opt Options) (*Fleet, error) {
	opt = opt.withDefaults()
	f := &Fleet{
		opt:    opt,
		insts:  make(map[string]*instState, len(specs)),
		broker: collect.NewBroker(),
		mod:    repair.New(repair.DefaultConfig(), repair.DefaultOptimizer()),
	}
	f.cond = sync.NewCond(&f.mu)
	f.diagCfg = core.DefaultConfig()
	f.diagCfg.Workers = opt.DiagnosisWorkers

	withDefaults := make([]InstanceSpec, 0, len(specs))
	windowMs := make(map[string]int64, len(specs))
	for _, spec := range specs {
		spec = spec.withDefaults()
		if spec.ID == "" {
			return nil, errors.New("fleet: instance spec without ID")
		}
		if _, dup := windowMs[spec.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate instance ID %q", spec.ID)
		}
		if url.PathEscape(spec.ID) == journalFile {
			return nil, fmt.Errorf("fleet: instance ID %q collides with the fleet journal file", spec.ID)
		}
		if spec.Trace != nil && spec.AutoRepair {
			return nil, fmt.Errorf("fleet: instance %s: AutoRepair requires a simulator-backed spec (a recorded trace has no live database to act on)", spec.ID)
		}
		windowMs[spec.ID] = int64(spec.WindowSec) * 1000
		withDefaults = append(withDefaults, spec)
	}

	recovered := map[string][]*WindowReport{}
	if opt.DataDir != "" {
		if err := os.MkdirAll(opt.DataDir, 0o755); err != nil {
			return nil, err
		}
		var err error
		f.journal, recovered, err = openJournal(filepath.Join(opt.DataDir, journalFile), windowMs)
		if err != nil {
			return nil, err
		}
	}

	for _, spec := range withDefaults {
		st, err := f.openInstance(spec, recovered[spec.ID])
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: instance %s: %w", spec.ID, err)
		}
		f.insts[spec.ID] = st
		f.ids = append(f.ids, spec.ID)
	}
	f.ids = sortedIDs(f.insts)
	f.registerMetrics()
	return f, nil
}

// journalFile is the fleet journal's name inside DataDir. One file per
// fleet — under the shard manager that is one independently recovering
// journal per shard.
const journalFile = "journal.jsonl"

// openInstance opens one instance's storage, adopts its committed history
// (recovered from the fleet journal), and rebuilds its world/simulator
// state.
func (f *Fleet) openInstance(spec InstanceSpec, reports []*WindowReport) (*instState, error) {
	st := &instState{spec: spec, reports: reports}
	windowMs := int64(spec.WindowSec) * 1000

	if f.opt.DataDir == "" {
		st.registry = collect.NewRegistry()
		st.store = logstore.New(0)
	} else {
		dir := filepath.Join(f.opt.DataDir, url.PathEscape(spec.ID))
		seg, err := segment.Open(dir, segment.Options{SyncEvery: f.opt.SyncEvery})
		if err != nil {
			return nil, err
		}
		st.seg = seg
		st.store = seg
		if st.registry, err = collect.OpenRegistry(seg); err != nil {
			seg.Close()
			return nil, err
		}
		// Discard the partially committed suffix: everything at or after
		// the first unjournaled window boundary is replayed from scratch.
		seg.TruncateFrom(spec.ID, int64(len(st.reports))*windowMs)
	}

	if spec.Trace != nil {
		src, err := spec.Trace()
		if err != nil {
			st.closeStorage()
			return nil, err
		}
		st.play = ingest.NewPlayer(src)
	} else {
		world, cfg := spec.Setup(spec.Seed)
		st.world = world
		st.sim = dbsim.NewInstance(cfg)
		world.Apply(st.sim)

		// Replay committed history in window order: injections first (they
		// consume the world's RNG stream exactly as the original run did),
		// then that window's executed repairing actions.
		opt := repair.DefaultOptimizer()
		for _, rep := range st.reports {
			spec.Inject(world, rep.Window, rep.FromMs, rep.ToMs)
			for _, a := range rep.Anomalies {
				for _, act := range a.Actions {
					if !act.Executed {
						continue
					}
					switch act.Action {
					case repair.ActionThrottle:
						if act.DurationMs > 0 {
							st.sim.SetThrottleUntil(act.Template, act.Value, rep.ToMs+act.DurationMs)
						} else {
							st.sim.SetThrottle(act.Template, act.Value)
						}
					case repair.ActionOptimize:
						if sp := world.SpecByID(sqltemplate.ID(act.Template)); sp != nil {
							sp.ApplyOptimization(opt.RowsFactor, opt.TimeFactor)
						}
					case repair.ActionAutoScale:
						cur := st.sim.Cores()
						target := int(float64(cur) * act.Value)
						if target <= cur {
							target = cur + 1
						}
						st.sim.SetCores(target)
					}
				}
			}
		}
		st.play = ingest.NewPlayer(ingest.NewSimSource(world, st.sim, spec.Seed, spec.Windows, spec.WindowSec))
	}
	st.nextSim = len(st.reports)
	// Resume the raw stream at the first uncommitted window boundary: the
	// simulator source seeks (windows re-derive from the seed, as pre-seam
	// recovery did), recorded traces skip their committed prefix.
	if st.nextSim > 0 {
		if err := st.play.SkipTo(int64(st.nextSim) * windowMs); err != nil {
			st.play.Close()
			st.closeStorage()
			return nil, err
		}
	}
	return st, nil
}

// closeStorage releases an instance's storage handles on an openInstance
// error path (the instance never makes it into f.insts, so Close would
// miss it).
func (st *instState) closeStorage() {
	if st.seg != nil {
		st.seg.Close()
	}
}

// lbls appends the fleet's extra labels (e.g. the shard manager's
// shard="k") to a series' own labels.
func (f *Fleet) lbls(ls ...obs.Label) []obs.Label {
	return append(ls, f.opt.Labels...)
}

// registerMetrics wires the fleet's counters and callback series into the
// obs registry.
func (f *Fleet) registerMetrics() {
	m := f.opt.Metrics
	const stageHelp = "Wall-clock time spent per pipeline stage, fleet-wide."
	f.stages.collect = m.Summary("pinsql_stage_duration_seconds", stageHelp, f.lbls(obs.L("stage", "collect"))...)
	f.stages.detect = m.Summary("pinsql_stage_duration_seconds", stageHelp, f.lbls(obs.L("stage", "detect"))...)
	f.stages.diagnose = m.Summary("pinsql_stage_duration_seconds", stageHelp, f.lbls(obs.L("stage", "diagnose"))...)
	f.stages.commit = m.Summary("pinsql_stage_duration_seconds", stageHelp, f.lbls(obs.L("stage", "commit"))...)
	for _, id := range f.ids {
		st := f.insts[id]
		lbl := obs.L("instance", id)
		st.cWindows = m.Counter("pinsql_fleet_windows_total", "Monitoring windows committed.", f.lbls(lbl)...)
		st.cAnomalies = m.Counter("pinsql_fleet_anomalies_total", "Anomaly phenomena diagnosed.", f.lbls(lbl)...)
		st.cShed = m.Counter("pinsql_fleet_shed_windows_total", "Windows whose diagnosis was shed under backpressure.", f.lbls(lbl)...)
		st.cRecords = m.Counter("pinsql_fleet_records_total", "Query-log records collected.", f.lbls(lbl)...)
		m.GaugeFunc("pinsql_fleet_queue_depth", "Staged windows awaiting diagnosis.", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(len(st.queue))
		}, f.lbls(lbl)...)
		m.CounterFunc("pinsql_registry_raw_cache_hits_total", "Template-registry raw-SQL cache hits.", func() float64 {
			h, _, _ := st.registry.RawCacheStats()
			return float64(h)
		}, f.lbls(lbl)...)
		m.CounterFunc("pinsql_registry_raw_cache_misses_total", "Template-registry raw-SQL cache misses.", func() float64 {
			_, miss, _ := st.registry.RawCacheStats()
			return float64(miss)
		}, f.lbls(lbl)...)
		m.CounterFunc("pinsql_ingest_records_total", "Trace records delivered into the monitoring pipeline.", func() float64 {
			return float64(st.play.Stats().Records)
		}, f.lbls(lbl)...)
		m.CounterFunc("pinsql_ingest_parse_errors_total", "Malformed trace inputs counted and skipped by the source chain.", func() float64 {
			return float64(st.play.Stats().ParseErrors)
		}, f.lbls(lbl)...)
		m.GaugeFunc("pinsql_ingest_lag_seconds", "Known trace end minus the replay playhead.", func() float64 {
			return st.play.Stats().LagSeconds
		}, f.lbls(lbl)...)
		id := id
		m.CounterFunc("pinsql_broker_dropped_total", "Records dropped by the broker under backpressure.", func() float64 {
			return float64(f.broker.Dropped(id))
		}, f.lbls(obs.L("topic", id))...)
	}
}

// Metrics returns the fleet's obs registry (the one behind GET /metrics).
func (f *Fleet) Metrics() *obs.Registry { return f.opt.Metrics }

// Start launches the scheduler. Idempotent.
func (f *Fleet) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started || f.closed {
		return
	}
	f.started = true
	f.pool = parallel.NewPool(f.opt.Workers)
	for _, id := range f.ids {
		f.maybeScheduleSim(f.insts[id])
	}
}

// maybeScheduleSim submits the instance's next simulator window at high
// priority. Callers hold f.mu. At most one sim task per instance runs at
// a time (dbsim instances are not concurrency-safe); an auto-repairing
// instance additionally runs in lockstep with its commits, because
// repairs mutate the world the next window simulates.
// doneSimLocked reports whether the instance has no further windows to
// play: its window budget is exhausted, or its source hit end of trace.
// Callers hold f.mu.
func (st *instState) doneSimLocked() bool {
	if st.srcEOF {
		return true
	}
	return st.spec.Windows > 0 && st.nextSim >= st.spec.Windows
}

func (f *Fleet) maybeScheduleSim(st *instState) {
	if st.simActive || st.err != nil || f.draining || f.dead {
		return
	}
	if st.doneSimLocked() {
		return
	}
	if st.spec.AutoRepair && st.nextSim != len(st.reports) {
		return
	}
	st.simActive = true
	w := st.nextSim
	f.pool.Submit(func() { f.runSim(st, w) })
}

// maybeScheduleDrain submits a diagnosis/commit drain at low priority.
// Callers hold f.mu. One drain per instance at a time: windows commit
// strictly in order.
func (f *Fleet) maybeScheduleDrain(st *instState) {
	if st.drainActive || st.err != nil || f.dead || len(st.queue) == 0 {
		return
	}
	st.drainActive = true
	f.pool.SubmitLow(func() { f.runDrain(st) })
}

// runSim plays window w and stages its output, shedding the oldest
// queued window when the queue is full — the player is never blocked on
// diagnosis.
func (f *Fleet) runSim(st *instState, w int) {
	start := time.Now()
	sw, more, err := f.simWindow(st, w)
	f.stages.collect.Observe(time.Since(start).Seconds())
	f.mu.Lock()
	defer f.mu.Unlock()
	st.simActive = false
	defer f.cond.Broadcast()
	if f.dead {
		return
	}
	if err == io.EOF {
		// The trace ended before this window's first second: nothing to
		// stage, the instance is done simulating.
		st.srcEOF = true
		return
	}
	if err != nil {
		st.err = err
		return
	}
	if !more {
		st.srcEOF = true
	}
	st.nextSim = w + 1
	if len(st.queue) >= f.opt.QueueDepth {
		for _, q := range st.queue {
			if !q.shed {
				q.shed = true
				st.cShed.Inc()
				break
			}
		}
	}
	st.queue = append(st.queue, sw)
	if len(st.queue) > st.peakQueue {
		st.peakQueue = len(st.queue)
	}
	f.maybeScheduleDrain(st)
	f.maybeScheduleSim(st)
}

// simWindow runs the collect/aggregate stage of one window: the player
// pumps the instance's source (the simulator or a recorded trace) through
// the broker into a staging collector backed by a private in-memory
// store; nothing durable happens here. It returns io.EOF when the trace
// was exhausted before this window's first second.
func (f *Fleet) simWindow(st *instState, w int) (*stagedWindow, bool, error) {
	spec := st.spec
	windowMs := int64(spec.WindowSec) * 1000
	fromMs := int64(w) * windowMs
	toMs := fromMs + windowMs

	injected := ""
	if st.world != nil {
		injected = spec.Inject(st.world, w, fromMs, toMs)
	}

	staging := logstore.New(0)
	coll := collect.NewCollector(spec.ID, fromMs, toMs, st.registry, staging)
	dropBefore := f.broker.Dropped(spec.ID)
	ch, cancel := f.broker.Subscribe(spec.ID, f.opt.BrokerBuffer)
	done := collect.NewStreamAggregator(coll).Consume(ch)
	// Lossless publish: the player is throttled to the aggregator, which
	// keeps draining until cancel — so the pump can run arbitrarily
	// faster than trace time without shedding records.
	rows, more, err := st.play.PlayWindow(fromMs, toMs, f.broker.BlockingSink(spec.ID))
	cancel()
	<-done
	if err != nil {
		return nil, more, err
	}
	coll.IngestMetricsAt(rows)

	var sess, cpu float64
	for _, s := range rows {
		sess += s.ActiveSession
		cpu += s.CPUUsage
	}
	if n := len(rows); n > 0 {
		sess /= float64(n)
		cpu /= float64(n)
	}
	return &stagedWindow{
		window: w, fromMs: fromMs, toMs: toMs,
		coll: coll, staging: staging,
		rep: &WindowReport{
			Window: w, FromMs: fromMs, ToMs: toMs,
			Injected:    injected,
			Records:     coll.Records(),
			Dropped:     f.broker.Dropped(spec.ID) - dropBefore,
			MeanSession: sess,
			MeanCPU:     cpu,
		},
	}, more, nil
}

// runDrain pops the instance's oldest staged window, diagnoses it (unless
// shed), and commits it.
func (f *Fleet) runDrain(st *instState) {
	f.mu.Lock()
	if f.dead || len(st.queue) == 0 {
		st.drainActive = false
		f.cond.Broadcast()
		f.mu.Unlock()
		return
	}
	sw := st.queue[0]
	st.queue = st.queue[1:]
	f.mu.Unlock()

	if sw.shed {
		sw.rep.Shed = true
	} else {
		f.diagnose(sw)
	}
	start := time.Now()
	err := f.commit(st, sw)
	f.stages.commit.Observe(time.Since(start).Seconds())

	f.mu.Lock()
	st.drainActive = false
	switch {
	case errors.Is(err, errCrashed):
		f.dead = true
	case err != nil:
		st.err = err
	default:
		st.reports = append(st.reports, sw.rep)
		st.cWindows.Inc()
		st.cAnomalies.Add(int64(len(sw.rep.Anomalies)))
		st.cRecords.Add(sw.rep.Records)
		f.maybeScheduleDrain(st)
		f.maybeScheduleSim(st)
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	if err == nil && f.opt.OnCommit != nil {
		f.opt.OnCommit(st.spec.ID, sw.rep)
	}
}

// diagnose runs detection and, per phenomenon, the full diagnosis
// pipeline plus repair suggestions for the top R-SQL. Everything runs off
// the window frame the collector built during ingest: detection reads the
// frame's metric series, and each phenomenon's diagnosis consumes the
// frame directly — the staged log store is never re-scanned (the legacy
// path re-scanned it once per phenomenon).
func (f *Fleet) diagnose(sw *stagedWindow) {
	fr := sw.coll.Frame()
	snap := collect.SnapshotOfFrame(fr)
	start := time.Now()
	per := core.NewPerception(anomaly.Config{}, nil)
	per.ObserveFrame(fr)
	phenomena := per.Phenomena()
	f.stages.detect.Observe(time.Since(start).Seconds())
	start = time.Now()
	defer func() { f.stages.diagnose.Observe(time.Since(start).Seconds()) }()
	baseSec := int(sw.fromMs / 1000)
	for _, ph := range phenomena {
		c := anomaly.NewCase(snap, ph)
		d := core.DiagnoseFrame(c, fr, f.diagCfg)
		ar := AnomalyReport{Rule: ph.Rule, StartSec: baseSec + ph.Start, EndSec: baseSec + ph.End}
		for i, cand := range d.RSQLs {
			if i == 3 {
				break
			}
			ar.RSQLs = append(ar.RSQLs, RSQLReport{ID: string(cand.ID), Score: cand.Score, Verified: cand.Verified})
		}
		var sugg []repair.Suggestion
		if len(d.RSQLs) > 0 {
			sugg = f.mod.Suggest(c, []sqltemplate.ID{d.RSQLs[0].ID})
		}
		sw.rep.Anomalies = append(sw.rep.Anomalies, ar)
		sw.suggestions = append(sw.suggestions, sugg)
	}
}

// crash consults the crash-injection hook.
func (f *Fleet) crash(id string, window int, phase string) bool {
	return f.opt.CrashAt != nil && f.opt.CrashAt(id, window, phase)
}

// commit makes one window durable and applies its repairs, strictly in
// window order per instance:
//
//  1. the staged records are appended (sorted, strict) to the instance's
//     long-term topic;
//  2. repairing actions execute (when AutoRepair) against the live
//     world/simulator and are recorded with their Executed flags;
//  3. the window is journaled (fsync) — this is the commit point a
//     restart counts;
//  4. the store expires past-TTL records.
//
// A crash anywhere before (3) leaves an unjournaled suffix in the topic
// that recovery truncates and replays; a crash after (3) loses nothing.
func (f *Fleet) commit(st *instState, sw *stagedWindow) error {
	id := st.spec.ID
	if f.crash(id, sw.window, "pre-append") {
		return errCrashed
	}
	var appendErr error
	crashed := false
	n := 0
	sw.staging.ScanFunc(id, sw.fromMs, sw.toMs, func(r logstore.Record) bool {
		if n == 1 && f.crash(id, sw.window, "mid-append") {
			crashed = true
			return false
		}
		if err := st.store.Append(id, r); err != nil {
			appendErr = err
			return false
		}
		n++
		return true
	})
	if crashed {
		return errCrashed
	}
	if appendErr != nil {
		return appendErr
	}

	if !sw.shed {
		for i := range sw.rep.Anomalies {
			sugg := sw.suggestions[i]
			if len(sugg) == 0 {
				continue
			}
			env := repair.Environment{
				AutoExecute: st.spec.AutoRepair,
				NowMs:       sw.toMs,
			}
			// A trace-backed instance has no live simulator/world: leave
			// the interfaces nil (not typed-nil) so Execute records the
			// actions as suggestions without executing anything.
			if st.sim != nil {
				env.Throttler = st.sim
				env.Scaler = st.sim
			}
			if st.world != nil {
				env.SpecOf = func(tid sqltemplate.ID) repair.Optimizable {
					if sp := st.world.SpecByID(tid); sp != nil {
						return sp
					}
					return nil
				}
			}
			for _, s := range f.mod.Execute(env, sugg) {
				sw.rep.Anomalies[i].Actions = append(sw.rep.Anomalies[i].Actions, ActionReport{
					Rule: s.Rule, Action: s.Action, Template: string(s.Template),
					Value: s.Value, DurationMs: s.DurationMs, Executed: s.Executed,
				})
			}
		}
	}

	if f.crash(id, sw.window, "pre-journal") {
		return errCrashed
	}
	if f.journal != nil {
		if err := f.journal.Append(id, sw.rep); err != nil {
			return err
		}
	}
	if f.crash(id, sw.window, "post-journal") {
		return errCrashed
	}
	st.store.Expire(sw.toMs)
	return nil
}

// settledLocked reports whether no further work can happen: every healthy
// instance has drained its queue and — unless the fleet is draining —
// simulated and committed every target window.
func (f *Fleet) settledLocked() bool {
	for _, st := range f.insts {
		if st.err != nil {
			continue
		}
		if st.simActive || st.drainActive || len(st.queue) > 0 {
			return false
		}
		if !f.draining && !st.doneSimLocked() {
			return false
		}
	}
	return true
}

// Wait blocks until every instance has finished (or the fleet is draining
// and the queues emptied, or the crash hook fired) and returns the first
// instance error in ID order.
func (f *Fleet) Wait() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.started {
		return nil
	}
	for !f.dead && !f.settledLocked() {
		f.cond.Wait()
	}
	for _, id := range f.ids {
		if err := f.insts[id].err; err != nil {
			return fmt.Errorf("instance %s: %w", id, err)
		}
	}
	return nil
}

// Stop is the graceful drain: no new windows are simulated, every queued
// window is still diagnosed and committed, and the durable topics are
// sealed and closed. Safe to call at any time, including after Wait.
func (f *Fleet) Stop() error {
	f.mu.Lock()
	f.draining = true
	for _, id := range f.ids {
		// A lockstepped instance may be idle waiting for a commit; wake
		// nothing — pending drains finish on their own. Broadcast so a
		// concurrent Wait re-evaluates under the drain flag.
		_ = id
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	return f.Close()
}

// Close waits for the fleet to settle, shuts the scheduler down, seals
// every durable topic (so restart recovery starts from sealed segments),
// and closes all files. After a simulated crash nothing is sealed,
// flushed, or closed — files stay exactly as the "kill" left them.
func (f *Fleet) Close() error {
	f.Wait()
	f.mu.Lock()
	if f.closed {
		err := f.closeErr
		f.mu.Unlock()
		return err
	}
	f.closed = true
	dead := f.dead
	f.mu.Unlock()

	if f.pool != nil {
		f.pool.Close()
	}
	f.broker.Close()
	var first error
	for _, id := range f.ids {
		st := f.insts[id]
		if dead {
			continue
		}
		if st.play != nil {
			if err := st.play.Close(); err != nil && first == nil {
				first = err
			}
		}
		if st.seg != nil {
			if err := st.seg.Seal(); err != nil && first == nil {
				first = err
			}
			if err := st.seg.Close(); err != nil && first == nil {
				first = err
			}
		} else if st.store != nil {
			st.store.Close()
		}
	}
	// After a simulated crash the journal is abandoned exactly as a kill
	// would leave it: whatever the OS has is what recovery sees.
	if f.journal != nil && !dead {
		if err := f.journal.Close(); err != nil && first == nil {
			first = err
		}
	}
	f.mu.Lock()
	f.closeErr = first
	f.mu.Unlock()
	return first
}

// JournalStats reports the fleet journal's group-commit accounting: total
// fsynced batches and the windows they covered. Zero in in-memory mode.
func (f *Fleet) JournalStats() (batches, windows int64) {
	if f.journal == nil {
		return 0, 0
	}
	return f.journal.Stats()
}

// IDs returns the fleet's instance IDs in sorted order.
func (f *Fleet) IDs() []string {
	out := make([]string, len(f.ids))
	copy(out, f.ids)
	return out
}

// Report renders every instance's committed windows, instances in ID
// order — the determinism contract's observable artifact.
func (f *Fleet) Report() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	for _, id := range f.ids {
		FormatInstanceReport(&b, id, f.insts[id].reports)
	}
	return b.String()
}

// Diagnoses returns a copy of one instance's committed window reports; ok
// is false for an unknown instance.
func (f *Fleet) Diagnoses(id string) ([]*WindowReport, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.insts[id]
	if !ok {
		return nil, false
	}
	out := make([]*WindowReport, len(st.reports))
	copy(out, st.reports)
	return out, true
}

// Reports returns a copy of every instance's committed window reports,
// keyed by instance ID — the fleet's report fragment. One call hands a
// coordinator everything Report would render, so a worker process serves
// its whole shard in a single round trip instead of one call per instance.
func (f *Fleet) Reports() map[string][]*WindowReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]*WindowReport, len(f.ids))
	for _, id := range f.ids {
		st := f.insts[id]
		reps := make([]*WindowReport, len(st.reports))
		copy(reps, st.reports)
		out[id] = reps
	}
	return out
}

// InstanceStatus is one row of GET /fleet.
type InstanceStatus struct {
	ID         string `json:"id"`
	Windows    int    `json:"windows"`
	Committed  int    `json:"committed"`
	Simulated  int    `json:"simulated"`
	QueueDepth int    `json:"queue_depth"`
	PeakQueue  int    `json:"peak_queue"`
	Shed       int64  `json:"shed"`
	Anomalies  int    `json:"anomalies"`
	Records    int64  `json:"records"`
	Dropped    int64  `json:"dropped"`
	AutoRepair bool   `json:"auto_repair,omitempty"`
	Done       bool   `json:"done"`
	Error      string `json:"error,omitempty"`
}

// Status is the GET /fleet document.
type Status struct {
	Workers   int              `json:"workers"`
	Draining  bool             `json:"draining"`
	Done      bool             `json:"done"`
	Committed int              `json:"committed"`
	Anomalies int              `json:"anomalies"`
	Shed      int64            `json:"shed"`
	Instances []InstanceStatus `json:"instances"`
}

// Status snapshots the fleet's progress.
func (f *Fleet) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := Status{
		Workers:  parallel.Resolve(f.opt.Workers),
		Draining: f.draining,
		Done:     f.settledLocked() && f.started,
	}
	for _, id := range f.ids {
		st := f.insts[id]
		is := InstanceStatus{
			ID:         id,
			Windows:    st.spec.Windows,
			Committed:  len(st.reports),
			Simulated:  st.nextSim,
			QueueDepth: len(st.queue),
			PeakQueue:  st.peakQueue,
			Shed:       st.cShed.Value(),
			Records:    st.cRecords.Value(),
			Dropped:    f.broker.Dropped(id),
			AutoRepair: st.spec.AutoRepair,
			Done:       st.doneSimLocked() && len(st.reports) == st.nextSim,
		}
		for _, rep := range st.reports {
			is.Anomalies += len(rep.Anomalies)
		}
		if st.err != nil {
			is.Error = st.err.Error()
		}
		out.Committed += is.Committed
		out.Anomalies += is.Anomalies
		out.Shed += is.Shed
		out.Instances = append(out.Instances, is)
	}
	return out
}

// RunInstance runs one instance's full monitoring loop to completion —
// single-instance mode (the old pinsqld inner loop) is just a 1-instance
// fleet. It returns the committed window reports.
func RunInstance(spec InstanceSpec, opt Options) ([]*WindowReport, error) {
	f, err := New([]InstanceSpec{spec}, opt)
	if err != nil {
		return nil, err
	}
	f.Start()
	werr := f.Wait()
	cerr := f.Close()
	if werr != nil {
		return nil, werr
	}
	if cerr != nil {
		return nil, cerr
	}
	reps, _ := f.Diagnoses(spec.ID)
	return reps, nil
}
