package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testWindowMs() map[string]int64 {
	return map[string]int64{"a": 1000, "b": 2000}
}

func mkReport(w int, windowMs int64) *WindowReport {
	return &WindowReport{Window: w, FromMs: int64(w) * windowMs, ToMs: int64(w+1) * windowMs, Records: int64(10 + w)}
}

// TestJournalRoundTrip appends interleaved entries for two instances with
// different window lengths and recovers them split by instance, in window
// order.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recovered, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d instances", len(recovered))
	}
	for w := 0; w < 3; w++ {
		if err := j.Append("a", mkReport(w, 1000)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append("b", mkReport(w, 2000)); err != nil {
			t.Fatal(err)
		}
	}
	batches, windows := j.Stats()
	if windows != 6 {
		t.Fatalf("windows = %d, want 6", windows)
	}
	if batches < 1 || batches > 6 {
		t.Fatalf("batches = %d, want 1..6", batches)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if len(rec2[id]) != 3 {
			t.Fatalf("instance %s recovered %d windows, want 3", id, len(rec2[id]))
		}
		for w, rep := range rec2[id] {
			if rep.Window != w || rep.Records != int64(10+w) {
				t.Fatalf("instance %s window %d recovered as %+v", id, w, rep)
			}
		}
	}
}

// TestJournalGroupCommit pins the batching contract: appends that queue up
// while a sync is in flight ride one batch and share one fsync.
func TestJournalGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Park a fake leader so concurrent appenders pile into pending.
	j.mu.Lock()
	j.syncing = true
	j.mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := j.Append("a", mkReport(w, 1000)); err != nil {
				t.Error(err)
			}
		}(w)
	}
	// Wait until all four entries are pending, then release the fake
	// leader: the first waiter to wake writes the whole batch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		n := j.pendN
		j.mu.Unlock()
		if n == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d entries pending", n)
		}
		time.Sleep(time.Millisecond)
	}
	j.mu.Lock()
	j.syncing = false
	j.cond.Broadcast()
	j.mu.Unlock()
	wg.Wait()

	batches, windows := j.Stats()
	if windows != 4 {
		t.Fatalf("windows = %d, want 4", windows)
	}
	if batches != 1 {
		t.Fatalf("batches = %d, want 1 (group commit must coalesce queued appends)", batches)
	}
	// Concurrent goroutines appended in arbitrary order, so this test does
	// not reopen: out-of-order windows for one instance are exactly what
	// the contiguity validator truncates.
}

// TestJournalTornTail writes a valid prefix plus a torn last line and
// checks recovery truncates to the prefix and appends resume cleanly.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	j.Append("a", mkReport(0, 1000))
	j.Append("a", mkReport(1, 1000))
	j.Close()
	// Torn tail: half a JSON line, no newline.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"instance":"a","report":{"window":2,"fr`)
	f.Close()

	j2, recovered, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered["a"]) != 2 {
		t.Fatalf("recovered %d windows, want 2", len(recovered["a"]))
	}
	if err := j2.Append("a", mkReport(2, 1000)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rec3, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3["a"]) != 3 {
		t.Fatalf("after truncate+append recovered %d windows, want 3", len(rec3["a"]))
	}
}

// TestJournalOutOfSequence checks the contiguity validator: an entry that
// skips a window stops the scan and truncates, keeping only the prefix.
func TestJournalOutOfSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	j.Append("a", mkReport(0, 1000))
	j.Append("a", mkReport(2, 1000)) // skips window 1: durable but invalid
	j.Append("b", mkReport(0, 2000)) // after the bad entry: also dropped
	j.Close()

	_, recovered, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered["a"]) != 1 || len(recovered["b"]) != 0 {
		t.Fatalf("recovered a=%d b=%d, want a=1 b=0", len(recovered["a"]), len(recovered["b"]))
	}
	data, _ := os.ReadFile(path)
	if strings.Count(string(data), "\n") != 1 {
		t.Fatalf("file not truncated to the good prefix: %q", data)
	}
}

// TestJournalUnknownInstance: a journal naming an instance the fleet does
// not know is a configuration error, never a truncation.
func TestJournalUnknownInstance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := openJournal(path, testWindowMs())
	if err != nil {
		t.Fatal(err)
	}
	j.Append("a", mkReport(0, 1000))
	j.Close()
	if _, _, err := openJournal(path, map[string]int64{"b": 2000}); err == nil {
		t.Fatal("unknown instance in journal did not error")
	}
	// The file must be untouched by the failed open.
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), `"instance":"a"`) {
		t.Fatalf("failed open mangled the journal: %q", data)
	}
}
