package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// journalEntry is one committed window in the fleet journal. The journal is
// shared by every instance of the fleet (one file per fleet — which under
// the shard manager means one file per shard), so each line carries the
// instance it belongs to. Within one instance the entries are strictly
// window-ordered; across instances they interleave in commit order.
type journalEntry struct {
	Instance string        `json:"instance"`
	Report   *WindowReport `json:"report"`
}

// journal is the fleet's committed-window log with group commit: every
// Append is durable when it returns (the fsync is the commit point a
// restart counts), but concurrent appends from different instances are
// batched under one fsync — the first appender to reach the file becomes
// the batch leader, writes every pending entry, syncs once, and wakes the
// followers. A fleet draining W windows concurrently therefore pays
// ~W/batch fsyncs instead of W.
type journal struct {
	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	pending []byte // serialized entries awaiting the next batch write
	pendN   int    // entry count inside pending
	nextGen int64  // batch number the next leader will write
	synced  int64  // highest batch number made durable
	syncing bool   // a leader is between Write and Sync
	err     error  // sticky: first write/sync failure fails every later Append

	// Batch accounting for the pinsql_shard_commit_* metrics: windows/batches
	// is the mean commit batch size.
	batches atomic.Int64
	windows atomic.Int64
}

// openJournal loads the committed-window prefix of a fleet journal. Every
// entry must belong to a known instance (windowMs maps instance ID to its
// window length) and continue that instance's contiguous window sequence;
// the scan stops at the first torn or out-of-sequence line (a crash
// mid-batch leaves a partial tail), truncates the file to the good prefix,
// and leaves it open for appends. An entry for an unknown instance is an
// error, not a truncation point — it means the journal belongs to a
// different fleet configuration and silently discarding it would destroy
// committed history.
func openJournal(path string, windowMs map[string]int64) (*journal, map[string][]*WindowReport, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	byInst := make(map[string][]*WindowReport)
	good := int64(0)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Report == nil {
			break
		}
		wm, known := windowMs[e.Instance]
		if !known {
			f.Close()
			return nil, nil, fmt.Errorf("fleet: journal %s references unknown instance %q (fleet configuration changed?)", path, e.Instance)
		}
		w := len(byInst[e.Instance])
		if e.Report.Window != w || e.Report.FromMs != int64(w)*wm || e.Report.ToMs != int64(w+1)*wm {
			break
		}
		byInst[e.Instance] = append(byInst[e.Instance], e.Report)
		good += int64(len(line)) + 1
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &journal{f: f, synced: -1}
	j.cond = sync.NewCond(&j.mu)
	return j, byInst, nil
}

// Append makes one committed window durable. It returns only after an
// fsync covering the entry completed; entries appended concurrently ride
// the same batch and share that fsync.
func (j *journal) Append(id string, rep *WindowReport) error {
	line, err := json.Marshal(journalEntry{Instance: id, Report: rep})
	if err != nil {
		return err
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.pending = append(j.pending, line...)
	j.pendN++
	myGen := j.nextGen // the batch my entry will be written in
	for {
		if j.err != nil {
			return j.err
		}
		if j.synced >= myGen {
			return nil
		}
		if j.syncing {
			// A leader is mid-sync for an earlier batch; when it finishes it
			// broadcasts and a follower of the next batch takes over.
			j.cond.Wait()
			continue
		}
		// Become the batch leader: take everything pending (my entry plus any
		// followers that queued behind it), write and sync once.
		j.syncing = true
		buf, n, gen := j.pending, j.pendN, j.nextGen
		j.pending, j.pendN = nil, 0
		j.nextGen++
		j.mu.Unlock()
		_, werr := j.f.Write(buf)
		var serr error
		if werr == nil {
			serr = j.f.Sync()
		}
		j.mu.Lock()
		j.syncing = false
		switch {
		case werr != nil:
			j.err = werr
		case serr != nil:
			j.err = serr
		default:
			j.synced = gen
			j.batches.Add(1)
			j.windows.Add(int64(n))
		}
		j.cond.Broadcast()
	}
}

// Stats returns the batch accounting: total fsynced batches and total
// windows they covered (windows/batches = mean commit batch size).
func (j *journal) Stats() (batches, windows int64) {
	return j.batches.Load(), j.windows.Load()
}

// Close closes the file. Nothing is pending by construction (every Append
// returns only after its batch synced), so there is no final flush.
func (j *journal) Close() error {
	j.mu.Lock()
	if j.err == nil {
		j.err = os.ErrClosed
	}
	j.mu.Unlock()
	return j.f.Close()
}
