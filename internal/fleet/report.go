package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// WindowReport is the committed record of one monitoring window — both the
// JSON journal entry (one line per committed window in -data-dir mode) and
// the unit of the fleet's final report. Every field round-trips exactly
// through encoding/json (float64s marshal to their shortest exact
// representation), which is what makes the post-restart report
// byte-identical to the uninterrupted one.
type WindowReport struct {
	Window   int    `json:"window"`
	FromMs   int64  `json:"from_ms"`
	ToMs     int64  `json:"to_ms"`
	Injected string `json:"injected,omitempty"`
	Records  int64  `json:"records"`
	Dropped  int64  `json:"dropped,omitempty"` // broker backpressure loss
	// Shed windows lost their diagnosis to backpressure: the queue was
	// full when a newer window arrived. Their records are still committed
	// so window numbering and the durable topic stay contiguous.
	Shed        bool            `json:"shed,omitempty"`
	MeanSession float64         `json:"mean_session"`
	MeanCPU     float64         `json:"mean_cpu"`
	Anomalies   []AnomalyReport `json:"anomalies,omitempty"`
}

// AnomalyReport is one detected phenomenon with its diagnosis.
type AnomalyReport struct {
	Rule     string         `json:"rule"`
	StartSec int            `json:"start_sec"` // absolute simulated seconds
	EndSec   int            `json:"end_sec"`
	RSQLs    []RSQLReport   `json:"rsqls,omitempty"`
	Actions  []ActionReport `json:"actions,omitempty"`
}

// RSQLReport is one ranked root-cause candidate.
type RSQLReport struct {
	ID       string  `json:"id"`
	Score    float64 `json:"score"`
	Verified bool    `json:"verified"`
}

// ActionReport is one suggested (and possibly executed) repairing action.
// Executed actions are replayed in order during crash recovery to rebuild
// the world/instance state the simulator continues from.
type ActionReport struct {
	Rule       string  `json:"rule"`
	Action     string  `json:"action"`
	Template   string  `json:"template,omitempty"`
	Value      float64 `json:"value"`
	DurationMs int64   `json:"duration_ms,omitempty"`
	Executed   bool    `json:"executed,omitempty"`
}

// FormatInstanceReport renders one instance's committed windows. The
// format is the determinism contract's observable: byte-identical for
// every worker count, shard count, and across kill/restart (when no
// window was shed). Exported so the shard manager can merge per-shard
// fleets into one deterministic fleet-wide report.
func FormatInstanceReport(b *strings.Builder, id string, reps []*WindowReport) {
	fmt.Fprintf(b, "instance %s: %d windows\n", id, len(reps))
	for _, r := range reps {
		fmt.Fprintf(b, "  window %d [%d, %d)s records=%d session=%s cpu=%s",
			r.Window, r.FromMs/1000, r.ToMs/1000, r.Records,
			formatFloat(r.MeanSession), formatFloat(r.MeanCPU))
		if r.Injected != "" {
			fmt.Fprintf(b, " injected=%s", r.Injected)
		}
		if r.Dropped > 0 {
			fmt.Fprintf(b, " dropped=%d", r.Dropped)
		}
		if r.Shed {
			b.WriteString(" SHED")
		}
		b.WriteByte('\n')
		for _, a := range r.Anomalies {
			fmt.Fprintf(b, "    anomaly %s [%d, %d)s\n", a.Rule, a.StartSec, a.EndSec)
			for _, rs := range a.RSQLs {
				fmt.Fprintf(b, "      rsql %s score=%s verified=%v\n", rs.ID, formatFloat(rs.Score), rs.Verified)
			}
			for _, act := range a.Actions {
				state := "suggested"
				if act.Executed {
					state = "executed"
				}
				fmt.Fprintf(b, "      action %s %s template=%s value=%s\n", act.Action, state, act.Template, formatFloat(act.Value))
			}
		}
	}
}

// formatFloat renders a float the way encoding/json does (shortest exact
// form), so the report built from live reports and the one rebuilt from a
// replayed journal agree byte for byte.
func formatFloat(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// sortedIDs returns map keys in order.
func sortedIDs[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
