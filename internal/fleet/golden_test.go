package fleet

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite the fleet fingerprint goldens")

// goldenCases are the fingerprint workloads: fixed-seed fleet
// configurations whose final reports are committed under testdata/ and must
// never change byte-for-byte across refactors of the collection/diagnosis
// path. TestFleetWorkersEquivalence proves a single build is internally
// deterministic; these goldens pin the output across builds, so a refactor
// of the ingestion seam (or anything upstream of the report) is provably a
// no-op for the simulator path.
func goldenCases() map[string]struct {
	specs []InstanceSpec
	opt   Options
} {
	return map[string]struct {
		specs []InstanceSpec
		opt   Options
	}{
		// The shared test fixture: 4 heterogeneous instances, one
		// auto-repairing (lockstep scheduling + executed actions).
		"fleet4": {specs: testSpecs(), opt: Options{Workers: 4, QueueDepth: 16}},
		// Single-instance pinsqld default shape.
		"single": {specs: []InstanceSpec{DefaultSpec("pinsqld", 42, 3, 300)}, opt: Options{Workers: 2, QueueDepth: 16}},
	}
}

func TestFleetGoldenFingerprint(t *testing.T) {
	for name, tc := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			rep, _ := runReport(t, tc.specs, tc.opt)
			path := filepath.Join("testdata", "golden_"+name+".txt")
			if *updateGoldens {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(rep), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-goldens): %v", err)
			}
			if rep != string(want) {
				t.Fatalf("report diverged from committed golden %s\n--- golden ---\n%s\n--- got ---\n%s", path, want, rep)
			}
		})
	}
}

// TestFleetGoldenKillRestart pins the durable path against the same golden:
// a fleet killed at a mid-run commit boundary and reopened must reproduce
// the fingerprint byte-for-byte.
func TestFleetGoldenKillRestart(t *testing.T) {
	tc := goldenCases()["fleet4"]
	dir := t.TempDir()
	opt := tc.opt
	opt.DataDir = dir
	opt.CrashAt = func(id string, window int, phase string) bool {
		return id == "inst-01" && window == 1 && phase == "pre-journal"
	}
	f, err := New(tc.specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	f.Wait()
	f.Close()

	opt2 := tc.opt
	opt2.DataDir = dir
	rep, _ := runReport(t, tc.specs, opt2)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fleet4.txt"))
	if err != nil {
		t.Fatalf("missing golden (run with -update-goldens): %v", err)
	}
	if rep != string(want) {
		t.Fatalf("post-restart report diverged from committed golden\n--- golden ---\n%s\n--- got ---\n%s", want, rep)
	}
}
