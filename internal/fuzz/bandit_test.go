package fuzz

import (
	"testing"
)

func TestBanditGreedyConverges(t *testing.T) {
	arms := defaultArms()
	b := newBandit(arms, 0, newSplitMix(7)) // eps=0: fully greedy

	// The optimistic prior makes unpulled arms (mean 0.6) beat a pulled
	// arm rewarded below it, so a greedy bandit still sweeps the grid.
	first := b.pick()
	if first != 0 {
		t.Fatalf("first greedy pick = %d, want 0 (prior ties break low)", first)
	}
	b.update(first, 0.1)
	if next := b.pick(); next == first {
		t.Fatalf("greedy re-picked a low-reward arm over optimistic unpulled ones")
	}

	// A consistently high-reward arm dominates once its mean beats the prior.
	for i := range arms {
		b.pulls[i], b.total[i] = 0, 0
	}
	b.update(5, 0.9)
	b.update(5, 0.9)
	b.update(5, 0.9)
	for i := 0; i < 10; i++ {
		a := b.pick()
		if a != 5 {
			t.Fatalf("greedy pick = %d, want the high-reward arm 5", a)
		}
		b.update(a, 0.9)
	}
	if m := b.mean(5); m < 0.89 || m > 0.91 {
		t.Fatalf("mean(5) = %v, want ~0.9", m)
	}
	if m := b.mean(0); m != 0 {
		t.Fatalf("mean of unpulled arm = %v, want 0", m)
	}
}

func TestBanditExplores(t *testing.T) {
	arms := defaultArms()
	b := newBandit(arms, 1, newSplitMix(11)) // eps=1: always explore
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		a := b.pick()
		if a < 0 || a >= len(arms) {
			t.Fatalf("pick out of range: %d", a)
		}
		seen[a] = true
	}
	if len(seen) < len(arms)/2 {
		t.Fatalf("exploration visited only %d/%d arms", len(seen), len(arms))
	}
}

func TestArmNamesUnique(t *testing.T) {
	arms := defaultArms()
	if len(arms) != 16 {
		t.Fatalf("arm grid = %d, want 16 (4 kinds × 2 bands × 2 confuser)", len(arms))
	}
	seen := map[string]bool{}
	for _, a := range arms {
		if seen[a.Name()] {
			t.Fatalf("duplicate arm name %q", a.Name())
		}
		seen[a.Name()] = true
	}
}

// TestArmSampleValid draws many vectors from every arm and requires each to
// pass the generator's validation — the sampler must never waste budget on
// rejected cases.
func TestArmSampleValid(t *testing.T) {
	const traceSec = 300
	r := newSplitMix(3)
	for _, a := range defaultArms() {
		for i := 0; i < 64; i++ {
			p := a.sample(r, traceSec)
			if err := p.Validate(traceSec); err != nil {
				t.Fatalf("arm %s sample %d invalid: %v\n%+v", a.Name(), i, err, p)
			}
			if a.Confuser != (p.ConfuserService >= 0) {
				t.Fatalf("arm %s sample %d: confuser presence mismatch", a.Name(), i)
			}
			if p.ConfuserService == p.Service && p.ConfuserService >= 0 {
				t.Fatalf("arm %s sample %d: confuser targets the anomaly service", a.Name(), i)
			}
		}
	}
}

func TestSplitMixStable(t *testing.T) {
	// The RNG is part of the determinism contract: same seed, same stream.
	r := newSplitMix(1)
	r2 := newSplitMix(1)
	for i := 0; i < 16; i++ {
		if a, b := r.next(), r2.next(); a != b {
			t.Fatalf("same-seed splitMix diverged at draw %d", i)
		}
	}
	if newSplitMix(1).next() == newSplitMix(2).next() {
		t.Fatal("different seeds produced the same first draw")
	}
}
