package fuzz

import (
	"pinsql/internal/caseio"
	"pinsql/internal/core"
	"pinsql/internal/sqltemplate"
)

// Score weights: the R-SQL misrank dominates (it is the paper's headline
// Hits@1 metric); a polluted H-SQL head contributes a smaller, continuous
// signal so the bandit feels a gradient even on top-1 hits.
const (
	rankWeight  = 0.85
	hFalseWeigh = 0.15
	hHead       = 5 // H-SQL head length inspected for false positives
)

// Judge scores one diagnosis against its ground truth. The returned
// Verdict is the fuzzer's whole objective: Miss flags the searched-for
// failure (true R-SQL not ranked first), Score is the bandit reward —
// 0 for a perfect diagnosis, approaching 1 as the truth sinks or vanishes
// and the H-SQL head fills with false positives.
func Judge(rsqls, hsqls map[sqltemplate.ID]bool, d *core.Diagnosis) caseio.Verdict {
	v := caseio.Verdict{}

	ranked := d.RSQLIDs()
	for i, id := range ranked {
		if rsqls[id] {
			v.RankOfTruth = i + 1
			break
		}
	}
	v.Top1Hit = v.RankOfTruth == 1
	v.Top3Hit = v.RankOfTruth >= 1 && v.RankOfTruth <= 3
	if v.RankOfTruth > 0 {
		v.RFalseAhead = v.RankOfTruth - 1
	} else {
		v.RFalseAhead = len(ranked)
	}

	// H-SQL head pollution, only judged when the case has H labels at all.
	if len(hsqls) > 0 {
		h := d.HSQLIDs()
		if len(h) > hHead {
			h = h[:hHead]
		}
		for _, id := range h {
			if !hsqls[id] {
				v.HFalseTop5++
			}
		}
	}

	rr := 0.0
	if v.RankOfTruth > 0 {
		rr = 1 / float64(v.RankOfTruth)
	}
	v.Score = rankWeight*(1-rr) + hFalseWeigh*float64(v.HFalseTop5)/hHead
	v.Miss = !v.Top1Hit
	return v
}
