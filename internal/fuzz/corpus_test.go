package fuzz

import (
	"os"
	"path/filepath"
	"testing"

	"pinsql/internal/caseio"
	"pinsql/internal/core"
)

// corpusDir locates the committed repro corpus at the repository root.
const corpusDir = "../../fuzz-corpus"

// TestFuzzCorpusRegression replays every committed repro bundle through
// core.DiagnoseFrame and asserts the recorded verdict byte-for-byte. A
// failure means the pipeline's behaviour on a known miss changed: either a
// fix (re-mine the bundle, or celebrate and delete it) or a regression in
// diagnosis determinism.
func TestFuzzCorpusRegression(t *testing.T) {
	ents, err := os.ReadDir(corpusDir)
	if os.IsNotExist(err) {
		t.Skipf("no committed corpus at %s", corpusDir)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Workers = 1

	bundles := 0
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		bundles++
		dir := filepath.Join(corpusDir, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			m, file, err := caseio.ReadBundle(dir)
			if err != nil {
				t.Fatal(err)
			}
			if file.Truth == nil {
				t.Fatal("bundle case has no ground truth")
			}
			c, fr, err := file.ToFrame()
			if err != nil {
				t.Fatal(err)
			}
			v := Judge(idSet(file.Truth.RSQLs), idSet(file.Truth.HSQLs), core.DiagnoseFrame(c, fr, cfg))
			assertVerdictBytes(t, m.Verdict, v, m.Name)
			if !v.Miss {
				t.Fatalf("%s no longer misses — the corpus entry is stale", m.Name)
			}
			// The manifest's expectation matches the embedded truth.
			if len(m.Expected) != len(file.Truth.RSQLs) {
				t.Fatalf("expected list diverged from embedded truth")
			}
			for i := range m.Expected {
				if m.Expected[i] != file.Truth.RSQLs[i] {
					t.Fatalf("expected[%d] = %q, truth %q", i, m.Expected[i], file.Truth.RSQLs[i])
				}
			}
		})
	}
	if bundles == 0 {
		t.Skipf("corpus directory %s holds no bundles", corpusDir)
	}
}
