package fuzz

import (
	"pinsql/internal/caseio"
	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/workload"
)

// Minimization invariants:
//
//   - the predicate is "the case still misses" (Verdict.Miss) — the same
//     failure class, not the same score;
//   - every probe replays through the full generator+diagnosis with the
//     case's own index, so probe results are pure functions of the
//     candidate vector (no RNG is consumed);
//   - fields shrink in a fixed order (confuser → fillers → duration →
//     intensity), each by binary search toward its benign bound, keeping
//     the smallest still-failing value found;
//   - the probe budget is a hard cap: when it runs out, the best vector so
//     far is the answer.
//
// Binary search over a non-monotone predicate is a heuristic (the standard
// fuzzer-minimizer trade): it cannot guarantee a global minimum, only a
// locally small still-failing vector in O(log) probes per field.

// probeResult carries one still-failing candidate's full evaluation.
type probeResult struct {
	params cases.CaseParams
	lab    *cases.Labeled
	diag   *core.Diagnosis
	v      caseio.Verdict
}

// probeFn evaluates a candidate vector; ok is false when the candidate is
// invalid or no longer misses.
type probeFn func(p cases.CaseParams) (probeResult, bool)

// minimizer runs the budgeted per-field shrink.
type minimizer struct {
	probe  probeFn
	budget int
	probes int
	best   probeResult
}

// durFloor is the smallest anomaly duration minimization aims for.
const durFloor = 30

// intensityFloor is the per-family benign end of the magnitude axis.
func intensityFloor(kind workload.AnomalyKind) float64 {
	switch kind {
	case workload.KindBusinessSpike:
		return 1
	case workload.KindPoorSQL:
		return 0.3
	default:
		return 1
	}
}

// try evaluates a candidate, adopting it as the new best when it still
// misses. Returns whether the candidate failed (missed).
func (m *minimizer) try(p cases.CaseParams) bool {
	if m.probes >= m.budget {
		return false
	}
	m.probes++
	res, ok := m.probe(p)
	if !ok {
		return false
	}
	m.best = res
	return true
}

// shrinkInt binary-searches the smallest still-failing value of one integer
// field in [floor, cur), where apply clones the current best vector with
// the field set.
func (m *minimizer) shrinkInt(floor, cur int, apply func(cases.CaseParams, int) cases.CaseParams) {
	lo, hi := floor, cur
	for lo < hi && m.probes < m.budget {
		mid := lo + (hi-lo)/2
		if m.try(apply(m.best.params, mid)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}

// shrinkFloat bisects one float field toward floor for a fixed number of
// steps, keeping the smallest still-failing value.
func (m *minimizer) shrinkFloat(floor float64, steps int, get func(cases.CaseParams) float64, apply func(cases.CaseParams, float64) cases.CaseParams) {
	lo := floor
	for i := 0; i < steps && m.probes < m.budget; i++ {
		cur := get(m.best.params)
		if cur <= lo {
			return
		}
		mid := (lo + cur) / 2
		if !m.try(apply(m.best.params, mid)) {
			lo = mid
		}
	}
}

// minimize shrinks a failing vector to a smaller still-failing one. seed is
// the already-evaluated original case. Returns the best (smallest) result
// and the number of probes spent.
func minimize(probe probeFn, seed probeResult, budget int) (probeResult, int) {
	m := &minimizer{probe: probe, budget: budget, best: seed}

	// 1. Drop the confuser surge entirely — the cheapest big shrink.
	if m.best.params.ConfuserService >= 0 {
		q := m.best.params
		q.ConfuserService = -1
		q.ConfuserFactor = 0
		q.ConfuserLeadSec = 0
		q.ConfuserDurSec = 0
		m.try(q)
	}

	// 2. Strip filler templates (fewer services, then fewer specs each).
	if m.best.params.FillerServices > 0 {
		m.shrinkInt(0, m.best.params.FillerServices, func(p cases.CaseParams, v int) cases.CaseParams {
			p.FillerServices = v
			if v == 0 {
				p.FillerSpecs = 0
			}
			return p
		})
	}
	if m.best.params.FillerServices == 0 {
		// Specs are inert without services; normalize without a probe —
		// the generated case is bit-identical.
		m.best.params.FillerSpecs = 0
	} else if m.best.params.FillerSpecs > 1 {
		m.shrinkInt(1, m.best.params.FillerSpecs, func(p cases.CaseParams, v int) cases.CaseParams {
			p.FillerSpecs = v
			return p
		})
	}

	// 3. Shorten the anomaly window.
	if m.best.params.DurSec > durFloor {
		m.shrinkInt(durFloor, m.best.params.DurSec, func(p cases.CaseParams, v int) cases.CaseParams {
			p.DurSec = v
			return p
		})
	}

	// 4. Weaken the anomaly magnitude (not meaningful for MDL, whose
	// magnitude is the duration already shrunk above).
	if m.best.params.Kind != workload.KindMDL {
		m.shrinkFloat(intensityFloor(m.best.params.Kind), 4,
			func(p cases.CaseParams) float64 { return p.Intensity },
			func(p cases.CaseParams, v float64) cases.CaseParams {
				p.Intensity = v
				return p
			})
	}

	return m.best, m.probes
}
