// Package fuzz is the adversarial workload search: a deterministic,
// seed-driven loop that samples injection parameter vectors from a bandit
// over parameter-region arms, generates each case through the real
// simulate→collect→detect pipeline, diagnoses it with core.DiagnoseFrame,
// and scores the diagnosis against the case's ground truth. Cases the
// pipeline misranks (true R-SQL not at rank 1 — the paper's Hits@1) are
// minimized to a smaller still-failing vector and written out as
// self-contained repro bundles.
//
// Everything observable — the sampled case sequence, scores, bandit
// trajectory, minimized vectors, the digest — is a pure function of
// Options. No wall clock or global RNG feeds the search; Workers only
// changes how fast rounds evaluate, never what they contain.
package fuzz

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"pinsql/internal/caseio"
	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/parallel"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/workload"
)

// Options configures one search run. The zero value is not runnable; use
// DefaultOptions or fill Seed/Budget explicitly.
type Options struct {
	Seed   int64
	Budget int // total cases to generate and diagnose

	// RoundSize cases are sampled per bandit round: the bandit picks the
	// whole round up front, the round evaluates (possibly in parallel),
	// then rewards apply in case order. The round size is part of the
	// trajectory, so it is a fixed option — never derived from the host.
	RoundSize int

	// Workers bounds concurrent case evaluation inside a round; results
	// are consumed in order, so any value yields the same run.
	Workers int

	Epsilon  float64 // bandit exploration rate
	TraceSec int     // trace horizon of every generated case
	Cores    int     // simulated instance cores; 0 → dbsim default

	// HistoryDays are the history-window offsets of generated cases.
	HistoryDays []int

	// MinimizeProbes caps the generator probes spent shrinking one miss.
	MinimizeProbes int
	// MaxRepros caps how many misses are minimized and recorded.
	MaxRepros int

	// CorpusDir, when set, receives one bundle directory per recorded
	// miss. Empty means record in-memory only (the replay self-check
	// still runs).
	CorpusDir string
}

// DefaultOptions is the bounded-budget search the bench harness runs.
func DefaultOptions() Options {
	return Options{
		Seed:           1,
		Budget:         24,
		RoundSize:      4,
		Workers:        1,
		Epsilon:        0.2,
		TraceSec:       600,
		HistoryDays:    []int{1, 3},
		MinimizeProbes: 10,
		MaxRepros:      4,
	}
}

func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.Budget <= 0 {
		o.Budget = def.Budget
	}
	if o.RoundSize <= 0 {
		o.RoundSize = def.RoundSize
	}
	if o.Epsilon <= 0 {
		o.Epsilon = def.Epsilon
	}
	if o.TraceSec <= 0 {
		o.TraceSec = def.TraceSec
	}
	if o.HistoryDays == nil {
		o.HistoryDays = def.HistoryDays
	}
	if o.MinimizeProbes <= 0 {
		o.MinimizeProbes = def.MinimizeProbes
	}
	if o.MaxRepros <= 0 {
		o.MaxRepros = def.MaxRepros
	}
	return o
}

// ArmStat is one arm's aggregate over the run.
type ArmStat struct {
	Name   string  `json:"name"`
	Pulls  int     `json:"pulls"`
	Mean   float64 `json:"mean_score"`
	Misses int     `json:"misses"`
}

// KindStat aggregates per anomaly family.
type KindStat struct {
	Kind   string  `json:"kind"`
	Cases  int     `json:"cases"`
	Misses int     `json:"misses"`
	Mean   float64 `json:"mean_score"`
}

// Found is one recorded miss: the minimized vector plus how it was found.
type Found struct {
	Name      string             `json:"name"`
	Arm       string             `json:"arm"`
	CaseIndex int64              `json:"case_index"`
	Params    caseio.ReproParams `json:"params"`
	Original  caseio.ReproParams `json:"original"`
	Probes    int                `json:"probes"`
	Verdict   caseio.Verdict     `json:"verdict"`
	Bundle    string             `json:"bundle,omitempty"`
}

// Result is the search outcome, serialized into BENCH_fuzz.json.
type Result struct {
	Schema   string  `json:"schema"`
	Seed     int64   `json:"seed"`
	Budget   int     `json:"budget"`
	TraceSec int     `json:"trace_sec"`
	Epsilon  float64 `json:"epsilon"`

	Cases  int `json:"cases"`
	Misses int `json:"misses"`

	// Digest fingerprints the whole trajectory: every (index, arm,
	// params, verdict) tuple, every minimized repro, and the final bandit
	// state. Two runs with equal Options must produce equal digests.
	Digest string `json:"digest"`

	Arms   []ArmStat  `json:"arms"`
	ByKind []KindStat `json:"by_kind"`
	Found  []Found    `json:"found"`

	Sec         float64 `json:"sec"`
	CasesPerSec float64 `json:"cases_per_sec"`
}

// Schema identifies the result format.
const Schema = "pinsql-fuzz/v1"

// StableJSON renders the result with wall-clock fields zeroed and bundle
// paths stripped (a cross-check run writes no bundles) — the byte form two
// determinism-checked runs are compared on.
func (r *Result) StableJSON() ([]byte, error) {
	c := *r
	c.Sec = 0
	c.CasesPerSec = 0
	c.Found = append([]Found(nil), r.Found...)
	for i := range c.Found {
		c.Found[i].Bundle = ""
	}
	data, err := json.MarshalIndent(&c, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// searcher holds the run-wide evaluation context.
type searcher struct {
	genOpt cases.Options
	cfg    core.Config
}

// eval generates and diagnoses one parameter vector. idx seeds the world
// and arrival noise; minimization probes reuse their case's idx so every
// probe differs from the original only by the vector.
func (s *searcher) eval(idx int64, p cases.CaseParams) (probeResult, error) {
	lab, err := cases.GenerateFromParams(s.genOpt, idx, p)
	if err != nil {
		return probeResult{}, err
	}
	d := core.DiagnoseFrame(lab.Case, lab.Collector.Frame(), s.cfg)
	return probeResult{params: p, lab: lab, diag: d, v: Judge(lab.RSQLs, lab.HSQLs, d)}, nil
}

// Run executes the search. The returned Result (modulo Sec/CasesPerSec)
// and every written bundle are pure functions of opt.
func Run(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	start := time.Now()

	s := &searcher{
		genOpt: cases.Options{
			Seed:        opt.Seed,
			TraceSec:    opt.TraceSec,
			HistoryDays: opt.HistoryDays,
			Cores:       opt.Cores,
			Workers:     1,
		},
		cfg: func() core.Config {
			c := core.DefaultConfig()
			c.Workers = 1
			return c
		}(),
	}

	arms := defaultArms()
	rng := newSplitMix(uint64(opt.Seed) ^ 0xf00d5eed)
	b := newBandit(arms, opt.Epsilon, rng)

	res := &Result{
		Schema:   Schema,
		Seed:     opt.Seed,
		Budget:   opt.Budget,
		TraceSec: opt.TraceSec,
		Epsilon:  opt.Epsilon,
	}
	h := sha256.New()
	armMisses := make([]int, len(arms))
	kindCases := map[workload.AnomalyKind]*KindStat{}

	type pick struct {
		idx int64
		arm int
		p   cases.CaseParams
	}

	for done := 0; done < opt.Budget; {
		n := opt.RoundSize
		if rem := opt.Budget - done; n > rem {
			n = rem
		}
		// The round's picks are drawn before any of its results exist, so
		// the trajectory does not depend on evaluation interleaving.
		picks := make([]pick, n)
		for i := range picks {
			a := b.pick()
			picks[i] = pick{idx: int64(done + i), arm: a, p: arms[a].sample(rng, opt.TraceSec)}
		}

		results := make([]probeResult, n)
		err := parallel.OrderedStream(opt.Workers, n,
			func(i int) (probeResult, error) {
				return s.eval(picks[i].idx, picks[i].p)
			},
			func(i int, r probeResult) error {
				results[i] = r
				return nil
			})
		if err != nil {
			return nil, fmt.Errorf("fuzz: case %d: %w", done, err)
		}

		for i, r := range results {
			pk := picks[i]
			b.update(pk.arm, r.v.Score)
			res.Cases++
			if r.v.Miss {
				res.Misses++
				armMisses[pk.arm]++
			}
			ks := kindCases[pk.p.Kind]
			if ks == nil {
				ks = &KindStat{Kind: pk.p.Kind.String()}
				kindCases[pk.p.Kind] = ks
			}
			ks.Cases++
			ks.Mean += r.v.Score
			if r.v.Miss {
				ks.Misses++
			}
			digestCase(h, pk.idx, arms[pk.arm].Name(), r.params, r.v)

			if r.v.Miss && len(res.Found) < opt.MaxRepros {
				f, err := s.record(opt, pk.idx, arms[pk.arm].Name(), r)
				if err != nil {
					return nil, err
				}
				res.Found = append(res.Found, *f)
				digestFound(h, f)
			}
		}
		done += n
	}

	// Final bandit state folds into the digest: a trajectory divergence
	// anywhere shows up even if per-case lines were somehow equal.
	for i := range arms {
		fmt.Fprintf(h, "arm|%s|%d|%.9f\n", arms[i].Name(), b.pulls[i], b.total[i])
	}
	res.Digest = fmt.Sprintf("%x", h.Sum(nil))

	for i := range arms {
		res.Arms = append(res.Arms, ArmStat{
			Name:   arms[i].Name(),
			Pulls:  b.pulls[i],
			Mean:   b.mean(i),
			Misses: armMisses[i],
		})
	}
	for _, k := range []workload.AnomalyKind{
		workload.KindBusinessSpike, workload.KindPoorSQL,
		workload.KindLockStorm, workload.KindMDL,
	} {
		ks := kindCases[k]
		if ks == nil {
			continue
		}
		if ks.Cases > 0 {
			ks.Mean /= float64(ks.Cases)
		}
		res.ByKind = append(res.ByKind, *ks)
	}

	res.Sec = time.Since(start).Seconds()
	if res.Sec > 0 {
		res.CasesPerSec = float64(res.Cases) / res.Sec
	}
	return res, nil
}

// record minimizes one miss, runs the replay self-check, and (when a
// corpus directory is configured) writes the repro bundle.
func (s *searcher) record(opt Options, idx int64, armName string, orig probeResult) (*Found, error) {
	probe := func(p cases.CaseParams) (probeResult, bool) {
		if p.Validate(opt.TraceSec) != nil {
			return probeResult{}, false
		}
		r, err := s.eval(idx, p)
		if err != nil || !r.v.Miss {
			return probeResult{}, false
		}
		return r, true
	}
	min, probes := minimize(probe, orig, opt.MinimizeProbes)

	name := fmt.Sprintf("seed%d-case%04d-%s", opt.Seed, idx, min.params.Kind)
	m := &caseio.ReproManifest{
		Version:        caseio.ManifestVersion,
		Name:           name,
		Seed:           opt.Seed,
		CaseIndex:      idx,
		TraceSec:       opt.TraceSec,
		Arm:            armName,
		HistoryDays:    opt.HistoryDays,
		Cores:          opt.Cores,
		Params:         toRepro(min.params),
		MinimizeProbes: probes,
		Expected:       sortedIDs(min.lab.RSQLs),
		ActualR:        headIDs(min.diag.RSQLIDs(), 8),
		ActualH:        headIDs(min.diag.HSQLIDs(), 5),
		Verdict:        min.v,
	}
	if min.params != orig.params {
		op := toRepro(orig.params)
		m.Original = &op
	}

	file, err := s.replayCheck(name, min)
	if err != nil {
		return nil, err
	}

	f := &Found{
		Name:      name,
		Arm:       armName,
		CaseIndex: idx,
		Params:    m.Params,
		Original:  toRepro(orig.params),
		Probes:    probes,
		Verdict:   min.v,
	}
	if opt.CorpusDir != "" {
		dir := filepath.Join(opt.CorpusDir, name)
		if err := caseio.WriteBundle(dir, m, file); err != nil {
			return nil, fmt.Errorf("fuzz: writing bundle %s: %w", dir, err)
		}
		f.Bundle = dir
	}
	return f, nil
}

// replayCheck round-trips the minimized case through the bundle document
// format and re-diagnoses the re-read frame: the replayed verdict must be
// byte-identical to the live one, or the bundle would not reproduce the
// miss it claims. A failure here is a determinism bug, not a bad case.
func (s *searcher) replayCheck(name string, min probeResult) (*caseio.File, error) {
	file := caseio.FromFrame(min.lab.Case, min.lab.Collector.Frame())
	file.Name = name
	file.Truth = &caseio.Truth{
		RSQLs: sortedIDs(min.lab.RSQLs),
		HSQLs: sortedIDs(min.lab.HSQLs),
		Kind:  min.lab.Kind.String(),
	}

	var buf bytes.Buffer
	if err := file.Write(&buf); err != nil {
		return nil, err
	}
	rf, err := caseio.Read(&buf)
	if err != nil {
		return nil, err
	}
	c, fr, err := rf.ToFrame()
	if err != nil {
		return nil, err
	}
	d := core.DiagnoseFrame(c, fr, s.cfg)
	v := Judge(idSet(rf.Truth.RSQLs), idSet(rf.Truth.HSQLs), d)

	want, err := json.Marshal(min.v)
	if err != nil {
		return nil, err
	}
	got, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(want, got) {
		return nil, fmt.Errorf("fuzz: replay self-check failed for %s: live %s vs replayed %s",
			name, want, got)
	}
	return file, nil
}

// digestCase folds one evaluated case into the trajectory digest.
func digestCase(h interface{ Write([]byte) (int, error) }, idx int64, arm string, p cases.CaseParams, v caseio.Verdict) {
	pj, _ := json.Marshal(toRepro(p))
	vj, _ := json.Marshal(v)
	fmt.Fprintf(h, "case|%d|%s|%s|%s\n", idx, arm, pj, vj)
}

// digestFound folds one minimized repro into the trajectory digest.
func digestFound(h interface{ Write([]byte) (int, error) }, f *Found) {
	pj, _ := json.Marshal(f.Params)
	vj, _ := json.Marshal(f.Verdict)
	fmt.Fprintf(h, "min|%s|%s|%d|%s\n", f.Name, pj, f.Probes, vj)
}

// toRepro converts the generator vector to its serialization mirror.
func toRepro(p cases.CaseParams) caseio.ReproParams {
	return caseio.ReproParams{
		Kind:            p.Kind.String(),
		Service:         p.Service,
		Intensity:       p.Intensity,
		StartSec:        p.StartSec,
		DurSec:          p.DurSec,
		FillerServices:  p.FillerServices,
		FillerSpecs:     p.FillerSpecs,
		ConfuserService: p.ConfuserService,
		ConfuserFactor:  p.ConfuserFactor,
		ConfuserLeadSec: p.ConfuserLeadSec,
		ConfuserDurSec:  p.ConfuserDurSec,
	}
}

// FromRepro converts a manifest vector back to the generator's form, for
// replaying a bundle through the generator (seed + case_index + params).
// Unknown kind names fall back to the zero family; callers that care
// should pre-validate with workload.KindFromString.
func FromRepro(p caseio.ReproParams) cases.CaseParams {
	kind, _ := workload.KindFromString(p.Kind)
	return cases.CaseParams{
		Kind:            kind,
		Service:         p.Service,
		Intensity:       p.Intensity,
		StartSec:        p.StartSec,
		DurSec:          p.DurSec,
		FillerServices:  p.FillerServices,
		FillerSpecs:     p.FillerSpecs,
		ConfuserService: p.ConfuserService,
		ConfuserFactor:  p.ConfuserFactor,
		ConfuserLeadSec: p.ConfuserLeadSec,
		ConfuserDurSec:  p.ConfuserDurSec,
	}
}

// sortedIDs renders a truth set as sorted strings.
func sortedIDs(set map[sqltemplate.ID]bool) []string {
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, string(id))
	}
	sort.Strings(out)
	return out
}

// headIDs renders the head of a ranked ID list.
func headIDs(ids []sqltemplate.ID, n int) []string {
	if len(ids) > n {
		ids = ids[:n]
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// idSet parses truth strings back into a set.
func idSet(ids []string) map[sqltemplate.ID]bool {
	out := make(map[sqltemplate.ID]bool, len(ids))
	for _, id := range ids {
		out[sqltemplate.ID(id)] = true
	}
	return out
}
