package fuzz

import (
	"fmt"

	"pinsql/internal/cases"
	"pinsql/internal/workload"
)

// Arm is one region of the workload/injector parameter space: an anomaly
// family crossed with an intensity band and an optional benign confuser
// surge. The bandit learns which regions yield misranks and re-weights its
// sampling toward them (the shiro loop: weighted feature toggles plus an
// adaptive bandit over bug-yielding actions).
type Arm struct {
	Kind     workload.AnomalyKind
	Hi       bool // high-intensity band (for MDL: long-freeze band)
	Confuser bool // add a benign co-spike on another service
}

// Name renders the arm, e.g. "poor_sql/lo/confuser".
func (a Arm) Name() string {
	band := "lo"
	if a.Hi {
		band = "hi"
	}
	tail := "plain"
	if a.Confuser {
		tail = "confuser"
	}
	return fmt.Sprintf("%s/%s/%s", a.Kind, band, tail)
}

// defaultArms enumerates the 4 families × 2 bands × {plain, confuser} grid
// in a fixed order (part of the determinism contract).
func defaultArms() []Arm {
	kinds := []workload.AnomalyKind{
		workload.KindBusinessSpike,
		workload.KindPoorSQL,
		workload.KindLockStorm,
		workload.KindMDL,
	}
	out := make([]Arm, 0, len(kinds)*4)
	for _, k := range kinds {
		for _, hi := range []bool{false, true} {
			for _, conf := range []bool{false, true} {
				out = append(out, Arm{Kind: k, Hi: hi, Confuser: conf})
			}
		}
	}
	return out
}

// intensityRange is the arm's magnitude band, per family (see
// cases.CaseParams.Intensity for the per-family meaning).
func (a Arm) intensityRange() (lo, hi float64) {
	switch a.Kind {
	case workload.KindBusinessSpike: // target active-session lift
		if a.Hi {
			return 6, 18
		}
		return 1.5, 6
	case workload.KindPoorSQL: // statements/second
		if a.Hi {
			return 2, 8
		}
		return 0.3, 2
	case workload.KindLockStorm: // statements/second
		if a.Hi {
			return 4, 9
		}
		return 1, 4
	default: // MDL: magnitude is the freeze duration, handled in durRange
		return 1, 1
	}
}

// durRange is the anomaly duration band in seconds, bounded by the trace.
func (a Arm) durRange(traceSec int) (lo, hi int) {
	maxDur := traceSec / 2
	if maxDur > 240 {
		maxDur = 240
	}
	if a.Kind == workload.KindMDL {
		// The MDL bands split on freeze length: short freezes are the
		// adversarial end (few blocked seconds to detect).
		if a.Hi {
			return 90, maxDur
		}
		return 30, 90
	}
	return 40, maxDur
}

// sample draws a full parameter vector from the arm's region. Every draw
// consumes the shared RNG in a fixed order, so the sampled sequence is a
// pure function of (seed, pick sequence).
func (a Arm) sample(r *splitMix, traceSec int) cases.CaseParams {
	p := cases.CaseParams{Kind: a.Kind, ConfuserService: -1}

	p.Service = r.intn(baseServices)
	if a.Kind == workload.KindLockStorm {
		p.Service = 2 // the storm is pinned to fulfillment (see injectParams)
	}

	ilo, ihi := a.intensityRange()
	p.Intensity = ilo + (ihi-ilo)*r.float()

	dlo, dhi := a.durRange(traceSec)
	if dhi <= dlo {
		dhi = dlo + 1
	}
	p.DurSec = dlo + r.intn(dhi-dlo)

	// Start anywhere from "barely any pre-anomaly baseline" to "window
	// flush against the trace end" — both edges are adversarial.
	slo := traceSec / 5
	shi := traceSec - p.DurSec
	if slo < 1 {
		slo = 1
	}
	if shi <= slo {
		shi = slo + 1
	}
	p.StartSec = slo + r.intn(shi-slo)

	p.FillerServices = r.intn(4)
	if p.FillerServices > 0 {
		p.FillerSpecs = 2 + r.intn(5)
	}

	if a.Confuser {
		// Surge a service other than the target, overlapping the window.
		p.ConfuserService = r.intn(baseServices - 1)
		if p.ConfuserService >= p.Service {
			p.ConfuserService++
		}
		p.ConfuserFactor = 1.5 + 3.5*r.float()
		p.ConfuserLeadSec = r.intn(p.DurSec+1) - p.DurSec/2
		p.ConfuserDurSec = p.DurSec/2 + r.intn(p.DurSec+1)
		if p.ConfuserDurSec <= 0 {
			p.ConfuserDurSec = 1
		}
	}
	return p
}

// baseServices mirrors cases.baseServices (workload.DefaultWorld's service
// count) — the index range sample draws targets from.
const baseServices = 6

// optimisticPrior is one virtual pull at this reward folded into every
// arm's mean, so unexplored arms look better than a typical explored one
// and greedy picks cycle through the grid early without a forced
// initialization sweep.
const optimisticPrior = 0.6

// bandit is a deterministic epsilon-greedy multi-armed bandit over
// parameter-region arms.
type bandit struct {
	eps   float64
	arms  []Arm
	pulls []int
	total []float64
	rng   *splitMix
}

func newBandit(arms []Arm, eps float64, rng *splitMix) *bandit {
	return &bandit{
		eps:   eps,
		arms:  arms,
		pulls: make([]int, len(arms)),
		total: make([]float64, len(arms)),
		rng:   rng,
	}
}

// pick selects an arm: with probability eps a uniform exploration draw,
// otherwise the arm with the best optimistic mean (ties to the lowest
// index, keeping selection deterministic).
func (b *bandit) pick() int {
	if b.rng.float() < b.eps {
		return b.rng.intn(len(b.arms))
	}
	best, bestMean := 0, -1.0
	for i := range b.arms {
		mean := (b.total[i] + optimisticPrior) / float64(b.pulls[i]+1)
		if mean > bestMean {
			best, bestMean = i, mean
		}
	}
	return best
}

// update credits a reward (the misrank score of the sampled case).
func (b *bandit) update(arm int, reward float64) {
	b.pulls[arm]++
	b.total[arm] += reward
}

// mean is the arm's observed mean reward (0 when unpulled).
func (b *bandit) mean(arm int) float64 {
	if b.pulls[arm] == 0 {
		return 0
	}
	return b.total[arm] / float64(b.pulls[arm])
}

// splitMix is the deterministic RNG driving arm selection and parameter
// sampling — independent of math/rand so trajectories stay stable across
// Go versions (same generator the cases package uses for jitter).
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (s *splitMix) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (s *splitMix) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}
