package fuzz

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pinsql/internal/caseio"
	"pinsql/internal/cases"
	"pinsql/internal/core"
)

// smallOptions is the cheap search configuration the tests run: short
// traces, one history window, a handful of cases.
func smallOptions(seed int64, budget int) Options {
	return Options{
		Seed:           seed,
		Budget:         budget,
		RoundSize:      4,
		Workers:        1,
		TraceSec:       300,
		HistoryDays:    []int{1},
		MinimizeProbes: 4,
		MaxRepros:      2,
	}
}

// TestRunDeterministic is the core contract: two runs with the same
// options — at different worker counts — produce byte-identical stable
// results and equal digests.
func TestRunDeterministic(t *testing.T) {
	a := smallOptions(2, 4)
	b := smallOptions(2, 4)
	b.Workers = 3

	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Digest != rb.Digest {
		t.Fatalf("digest diverged across worker counts:\n%s\n%s", ra.Digest, rb.Digest)
	}
	ja, err := ra.StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := rb.StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("stable JSON diverged:\n%s\nvs\n%s", ja, jb)
	}
	if ra.Cases != 4 {
		t.Fatalf("ran %d cases, want 4", ra.Cases)
	}
}

// TestRunFindsAndMinimizesMiss pins the acceptance behaviour on a
// calibrated seed: the search finds genuine misranks, minimizes them, and
// the written bundles replay to byte-identical verdicts — both through the
// frame document and through the generator from the recorded vector.
func TestRunFindsAndMinimizesMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second search")
	}
	opt := smallOptions(1, 8)
	opt.CorpusDir = filepath.Join(t.TempDir(), "corpus")

	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 || len(res.Found) == 0 {
		t.Fatalf("calibrated seed found no misses (misses=%d found=%d)", res.Misses, len(res.Found))
	}

	f := res.Found[0]
	if f.Bundle == "" {
		t.Fatal("recorded miss has no bundle path despite CorpusDir")
	}
	m, file, err := caseio.ReadBundle(f.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.Verdict.Miss {
		t.Fatal("bundle manifest records a non-miss")
	}
	if err := FromRepro(m.Params).Validate(m.TraceSec); err != nil {
		t.Fatalf("minimized vector does not validate: %v", err)
	}

	cfg := core.DefaultConfig()
	cfg.Workers = 1

	// Replay 1: the serialized frame alone reproduces the verdict.
	c, fr, err := file.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	v := Judge(idSet(file.Truth.RSQLs), idSet(file.Truth.HSQLs), core.DiagnoseFrame(c, fr, cfg))
	assertVerdictBytes(t, m.Verdict, v, "frame replay")

	// Replay 2: the generator rebuilds the identical case from
	// (seed, case_index, params) and the diagnosis re-judges the same.
	genOpt := cases.Options{
		Seed:        m.Seed,
		TraceSec:    m.TraceSec,
		HistoryDays: m.HistoryDays,
		Cores:       m.Cores,
		Workers:     1,
	}
	lab, err := cases.GenerateFromParams(genOpt, m.CaseIndex, FromRepro(m.Params))
	if err != nil {
		t.Fatal(err)
	}
	v2 := Judge(lab.RSQLs, lab.HSQLs, core.DiagnoseFrame(lab.Case, lab.Collector.Frame(), cfg))
	assertVerdictBytes(t, m.Verdict, v2, "generator replay")
}

// assertVerdictBytes compares two verdicts in their canonical JSON form.
func assertVerdictBytes(t *testing.T, want, got caseio.Verdict, what string) {
	t.Helper()
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("%s verdict diverged:\nwant %s\ngot  %s", what, wb, gb)
	}
}

// TestMinimizeShrinks exercises the minimizer against a synthetic probe:
// the predicate fails whenever Intensity >= 2 and DurSec >= 60, so the
// minimum still-failing vector is known.
func TestMinimizeShrinks(t *testing.T) {
	fails := func(p cases.CaseParams) bool {
		return p.Intensity >= 2 && p.DurSec >= 60
	}
	probe := func(p cases.CaseParams) (probeResult, bool) {
		if !fails(p) {
			return probeResult{}, false
		}
		return probeResult{params: p, v: caseio.Verdict{Miss: true}}, true
	}
	seed := probeResult{
		params: cases.CaseParams{
			Kind: 1, Intensity: 8, StartSec: 60, DurSec: 200,
			FillerServices: 3, FillerSpecs: 5,
			ConfuserService: 2, ConfuserFactor: 3, ConfuserDurSec: 100,
		},
		v: caseio.Verdict{Miss: true},
	}
	best, probes := minimize(probe, seed, 64)
	if probes == 0 || probes > 64 {
		t.Fatalf("probe count out of range: %d", probes)
	}
	if best.params.ConfuserService >= 0 {
		t.Fatal("minimizer kept an unnecessary confuser")
	}
	if best.params.FillerServices != 0 || best.params.FillerSpecs != 0 {
		t.Fatalf("minimizer kept fillers: %d×%d", best.params.FillerServices, best.params.FillerSpecs)
	}
	if best.params.DurSec != 60 {
		t.Fatalf("DurSec minimized to %d, want 60", best.params.DurSec)
	}
	if best.params.Intensity >= seed.params.Intensity {
		t.Fatalf("Intensity not shrunk: %v", best.params.Intensity)
	}
	if !fails(best.params) {
		t.Fatal("minimizer returned a passing vector")
	}
}

// TestMinimizeBudgetExhausted: with a zero budget the seed comes back
// untouched.
func TestMinimizeBudgetExhausted(t *testing.T) {
	probe := func(p cases.CaseParams) (probeResult, bool) {
		t.Fatal("probe called with zero budget")
		return probeResult{}, false
	}
	seed := probeResult{params: cases.CaseParams{Intensity: 5, DurSec: 100, ConfuserService: -1}}
	best, probes := minimize(probe, seed, 0)
	if probes != 0 || best.params != seed.params {
		t.Fatalf("zero-budget minimize changed the vector (probes=%d)", probes)
	}
}

// TestRoundTripVerdictBytes is the bundle round-trip property on a fully
// in-memory path: search → bundle write → read → frame diagnose must give
// byte-for-byte the recorded verdict. (Run already self-checks this; the
// test makes the property fail loudly on its own.)
func TestRoundTripVerdictBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second search")
	}
	opt := smallOptions(1, 4) // seed 1 finds its first miss at case 1
	opt.CorpusDir = filepath.Join(t.TempDir(), "corpus")
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Found) == 0 {
		t.Skip("no miss inside the 4-case prefix; covered by TestRunFindsAndMinimizesMiss")
	}
	for _, f := range res.Found {
		m, file, err := caseio.ReadBundle(f.Bundle)
		if err != nil {
			t.Fatal(err)
		}
		c, fr, err := file.ToFrame()
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Workers = 1
		v := Judge(idSet(file.Truth.RSQLs), idSet(file.Truth.HSQLs), core.DiagnoseFrame(c, fr, cfg))
		assertVerdictBytes(t, m.Verdict, v, m.Name)
	}
	// The bundle directory holds exactly the two canonical files.
	ents, err := os.ReadDir(res.Found[0].Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("bundle has %d entries, want manifest.json + case.json", len(ents))
	}
}
