package logstore

// Backend is the storage contract behind the log-store layer. Two
// implementations exist: the in-memory Store in this package (fast,
// volatile — the original substitute for the paper's LogStore) and the
// durable segment store in logstore/segment (crash-recoverable, TTL by
// whole-segment deletion). Both produce byte-identical Scan results for
// the same ingest sequence, so the diagnosis pipeline is backend-agnostic.
type Backend interface {
	// Append stores a record under the topic, rejecting records that
	// arrive more than the slack window behind the previously appended
	// record (ErrUnsortedAppend).
	Append(topic string, rec Record) error

	// AppendLoose stores a record with no ordering requirement; ordering
	// is restored lazily before the next scan. Batch collectors use this
	// path because query logs are emitted at statement completion.
	AppendLoose(topic string, rec Record)

	// Scan returns a copy of the records in topic with ArrivalMs in
	// [fromMs, toMs), sorted by ArrivalMs (ties in ingest order).
	Scan(topic string, fromMs, toMs int64) []Record

	// ScanFunc streams the records of Scan's range in the same order
	// without materializing a slice, calling fn for each; fn returning
	// false stops the scan. fn must not call back into the store.
	ScanFunc(topic string, fromMs, toMs int64, fn func(Record) bool)

	// Bounds returns the minimum and maximum ArrivalMs over a topic's
	// live records; ok is false for an empty or unknown topic.
	Bounds(topic string) (minMs, maxMs int64, ok bool)

	// Len returns the number of live records in a topic.
	Len(topic string) int

	// Topics returns the sorted names of topics with live records.
	Topics() []string

	// Expire drops every record with ArrivalMs < nowMs − TTL and returns
	// the number removed.
	Expire(nowMs int64) int

	// TruncateFrom drops every record in topic with ArrivalMs >= fromMs
	// and returns the number removed. It is the crash-recovery inverse of
	// Append: a restarting consumer discards the partially written suffix
	// of its topic and replays from a known-committed boundary.
	TruncateFrom(topic string, fromMs int64) int

	// TTL returns the configured time-to-live in milliseconds.
	TTL() int64

	// Close releases backend resources, flushing any buffered state. The
	// in-memory backend's Close is a no-op.
	Close() error
}

// Compile-time check: the in-memory store satisfies the contract.
var _ Backend = (*Store)(nil)
