package logstore

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestAppendAndScan(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		if err := s.Append("db1", Record{TemplateIdx: int32(i), ArrivalMs: int64(i * 100)}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Scan("db1", 200, 500)
	if len(got) != 3 {
		t.Fatalf("scan returned %d records, want 3", len(got))
	}
	for i, r := range got {
		if want := int64(200 + i*100); r.ArrivalMs != want {
			t.Errorf("rec[%d].ArrivalMs = %d, want %d", i, r.ArrivalMs, want)
		}
	}
}

func TestScanEmptyAndMissingTopic(t *testing.T) {
	s := New(0)
	if got := s.Scan("nope", 0, 100); len(got) != 0 {
		t.Errorf("missing topic scan = %v", got)
	}
	s.Append("a", Record{ArrivalMs: 50})
	if got := s.Scan("a", 100, 200); len(got) != 0 {
		t.Errorf("out-of-range scan = %v", got)
	}
}

func TestScanReturnsCopy(t *testing.T) {
	s := New(0)
	s.Append("t", Record{ArrivalMs: 1, TemplateIdx: 7})
	got := s.Scan("t", 0, 10)
	got[0].TemplateIdx = 99
	again := s.Scan("t", 0, 10)
	if again[0].TemplateIdx != 7 {
		t.Error("Scan must return copies")
	}
}

func TestSlackReordering(t *testing.T) {
	s := New(0)
	s.Append("t", Record{ArrivalMs: 1000})
	s.Append("t", Record{ArrivalMs: 3000})
	// Mildly late record (within 5 s slack) is inserted in order.
	if err := s.Append("t", Record{ArrivalMs: 2000}); err != nil {
		t.Fatal(err)
	}
	recs := s.Scan("t", 0, 10_000)
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].ArrivalMs < recs[i-1].ArrivalMs {
			t.Fatalf("records out of order: %v", recs)
		}
	}
	// Hopelessly late record is rejected.
	if err := s.Append("t", Record{ArrivalMs: 3000 - 6000}); err != ErrUnsortedAppend {
		t.Errorf("stale append error = %v, want ErrUnsortedAppend", err)
	}
}

func TestExpire(t *testing.T) {
	s := New(1000) // 1 s TTL
	for i := 0; i < 10; i++ {
		s.Append("t", Record{ArrivalMs: int64(i * 100)})
	}
	removed := s.Expire(1500) // cutoff = 500
	if removed != 5 {
		t.Errorf("removed = %d, want 5", removed)
	}
	if s.Len("t") != 5 {
		t.Errorf("live records = %d, want 5", s.Len("t"))
	}
	// Expiring everything drops the topic.
	s.Expire(100_000)
	if s.Len("t") != 0 {
		t.Errorf("live records = %d, want 0", s.Len("t"))
	}
	if topics := s.Topics(); len(topics) != 0 {
		t.Errorf("topics = %v, want none", topics)
	}
}

func TestTopicsSorted(t *testing.T) {
	s := New(0)
	s.Append("zeta", Record{})
	s.Append("alpha", Record{})
	s.Append("mid", Record{})
	got := s.Topics()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("topics = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("topics[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestDefaultTTL(t *testing.T) {
	if got := New(0).TTL(); got != DefaultTTLMs {
		t.Errorf("default TTL = %d", got)
	}
	if got := New(42).TTL(); got != 42 {
		t.Errorf("custom TTL = %d", got)
	}
}

func TestConcurrentAppendScan(t *testing.T) {
	s := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			topic := string(rune('a' + w%4))
			for i := 0; i < 500; i++ {
				s.Append(topic, Record{ArrivalMs: int64(i)})
				if i%50 == 0 {
					s.Scan(topic, 0, int64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, topic := range s.Topics() {
		total += s.Len(topic)
	}
	if total != 8*500 {
		t.Errorf("total records = %d, want 4000", total)
	}
}

// Property: after any sequence of in-slack appends, every topic scan is
// sorted and Scan(from,to) returns exactly the records in range.
func TestScanWindowProperty(t *testing.T) {
	f := func(offsets []uint16, from, to uint16) bool {
		s := New(0)
		base := int64(0)
		for _, off := range offsets {
			// Keep deltas within slack so every append is accepted.
			base += int64(off % 512)
			if err := s.Append("t", Record{ArrivalMs: base}); err != nil {
				return false
			}
		}
		lo, hi := int64(from), int64(to)
		if lo > hi {
			lo, hi = hi, lo
		}
		recs := s.Scan("t", lo, hi)
		for i, r := range recs {
			if r.ArrivalMs < lo || r.ArrivalMs >= hi {
				return false
			}
			if i > 0 && recs[i-1].ArrivalMs > r.ArrivalMs {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Expire never removes records newer than the cutoff and Len
// decreases by exactly the removed count.
func TestExpireProperty(t *testing.T) {
	f := func(times []uint32, now uint32) bool {
		s := New(1000)
		base := int64(0)
		n := 0
		for _, dt := range times {
			base += int64(dt % 300)
			if s.Append("t", Record{ArrivalMs: base}) == nil {
				n++
			}
		}
		before := s.Len("t")
		removed := s.Expire(int64(now))
		after := s.Len("t")
		if before-removed != after {
			return false
		}
		cutoff := int64(now) - 1000
		for _, r := range s.Scan("t", 0, 1<<62) {
			if r.ArrivalMs < cutoff {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestScanFuncStreamsWindow(t *testing.T) {
	s := New(0)
	for i := 0; i < 20; i++ {
		s.AppendLoose("t", Record{TemplateIdx: int32(i), ArrivalMs: int64((i * 13) % 100)})
	}
	want := s.Scan("t", 20, 80)
	var got []Record
	s.ScanFunc("t", 20, 80, func(r Record) bool {
		got = append(got, r)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ScanFunc streamed %d records, Scan returned %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Early stop terminates the stream.
	seen := 0
	s.ScanFunc("t", 0, 1<<62, func(Record) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("early stop saw %d records, want 3", seen)
	}
	// Missing topics stream nothing.
	s.ScanFunc("nope", 0, 1<<62, func(Record) bool {
		t.Error("callback invoked for a missing topic")
		return false
	})
}

func TestBounds(t *testing.T) {
	s := New(0)
	if _, _, ok := s.Bounds("t"); ok {
		t.Error("Bounds ok for an empty store")
	}
	s.AppendLoose("t", Record{ArrivalMs: 700})
	s.AppendLoose("t", Record{ArrivalMs: -50})
	s.AppendLoose("t", Record{ArrivalMs: 300})
	min, max, ok := s.Bounds("t")
	if !ok || min != -50 || max != 700 {
		t.Errorf("Bounds = %d, %d, %v, want -50, 700, true", min, max, ok)
	}
}

func TestCloseIsNoop(t *testing.T) {
	s := New(0)
	s.Append("t", Record{ArrivalMs: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Len("t"); got != 1 {
		t.Errorf("Len after Close = %d", got)
	}
}

// TestExpireSkipsCleanTopics pins the single-pass Expire: a topic whose
// records all survive must keep its backing slice (no copy, no re-sort).
func TestExpireSkipsCleanTopics(t *testing.T) {
	s := New(1000)
	for i := 0; i < 5; i++ {
		s.Append("fresh", Record{ArrivalMs: int64(10_000 + i)})
		s.Append("stale", Record{ArrivalMs: int64(i)})
	}
	if removed := s.Expire(11_000); removed != 5 {
		t.Fatalf("removed = %d, want 5", removed)
	}
	if got := s.Len("fresh"); got != 5 {
		t.Errorf("fresh Len = %d", got)
	}
	if got := s.Len("stale"); got != 0 {
		t.Errorf("stale Len = %d", got)
	}
}

// TestChunkedArenaDifferential drives the chunked arena and a flat
// reference slice through the same randomized mixed workload (in-order
// appends, slack inserts, loose appends, expiry, truncation) and asserts
// every scan stays byte-identical to the flat model.
func TestChunkedArenaDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New(0)
	var ref []Record // flat model, kept sorted exactly like the old store
	now := int64(0)
	for op := 0; op < 30_000; op++ {
		switch k := rng.Intn(100); {
		case k < 80: // in-order append
			now += int64(rng.Intn(20))
			rec := Record{TemplateIdx: int32(op), ArrivalMs: now}
			if err := s.Append("t", rec); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			i := sort.Search(len(ref), func(i int) bool { return ref[i].ArrivalMs > rec.ArrivalMs })
			ref = append(ref, Record{})
			copy(ref[i+1:], ref[i:])
			ref[i] = rec
		case k < 95: // slack insert behind the newest arrival
			back := int64(rng.Intn(int(s.slackMs)))
			rec := Record{TemplateIdx: int32(op), ArrivalMs: now - back}
			if err := s.Append("t", rec); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			i := sort.Search(len(ref), func(i int) bool { return ref[i].ArrivalMs > rec.ArrivalMs })
			ref = append(ref, Record{})
			copy(ref[i+1:], ref[i:])
			ref[i] = rec
		case k < 98: // expire a prefix
			// Mirror Expire's cutoff arithmetic: Expire(nowMs) drops
			// records with ArrivalMs < nowMs-ttl. Use ttl=1 and
			// nowMs=cut so the cutoff is cut-1.
			cut := now - int64(rng.Intn(500))
			s.ttlMs = 1
			got := s.Expire(cut)
			s.ttlMs = 0
			want := 0
			keep := ref[:0:0]
			for _, r := range ref {
				if r.ArrivalMs < cut-1 {
					want++
					continue
				}
				keep = append(keep, r)
			}
			ref = keep
			if got != want {
				t.Fatalf("op %d: Expire removed %d, want %d", op, got, want)
			}
		default: // truncate a suffix
			cut := now - int64(rng.Intn(200))
			s.TruncateFrom("t", cut)
			keep := ref[:0:0]
			for _, r := range ref {
				if r.ArrivalMs < cut {
					keep = append(keep, r)
				}
			}
			ref = keep
		}
		if op%997 == 0 || op == 29_999 {
			lo := now - int64(rng.Intn(2000))
			hi := lo + int64(rng.Intn(2000))
			got := s.Scan("t", lo, hi)
			want := refScan(ref, lo, hi)
			if len(got) != len(want) {
				t.Fatalf("op %d: scan len %d, want %d", op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d: scan[%d] = %+v, want %+v", op, i, got[i], want[i])
				}
			}
			if s.Len("t") != len(ref) {
				t.Fatalf("op %d: Len %d, want %d", op, s.Len("t"), len(ref))
			}
		}
	}
	// Final full-range sweep.
	got := s.Scan("t", -1<<62, 1<<62)
	if len(got) != len(ref) {
		t.Fatalf("final scan len %d, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("final scan[%d] = %+v, want %+v", i, got[i], ref[i])
		}
	}
}

func refScan(ref []Record, fromMs, toMs int64) []Record {
	lo := sort.Search(len(ref), func(i int) bool { return ref[i].ArrivalMs >= fromMs })
	hi := sort.Search(len(ref), func(i int) bool { return ref[i].ArrivalMs >= toMs })
	out := make([]Record, hi-lo)
	copy(out, ref[lo:hi])
	return out
}

// TestAppendAllocBudget pins the chunked arena's growth cost: appending N
// in-order records must allocate close to the raw data size (one fresh
// chunk at a time), not the ~2× of a doubling []Record. This is the
// regression gate for the growslice hot spot seen at 128 fleet instances.
func TestAppendAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting in -short")
	}
	const n = 1 << 18 // 256 Ki records ≈ 8 MiB of raw data
	recSize := int64(unsafe.Sizeof(Record{}))
	raw := int64(n) * recSize

	s := New(0)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		if err := s.Append("t", Record{ArrivalMs: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	grew := int64(after.TotalAlloc - before.TotalAlloc)

	// Chunked arena: n/chunkCap chunk allocations + spine growth. Budget
	// 1.25× raw data; the old doubling slice costs ~2× raw and fails.
	budget := raw + raw/4
	if grew > budget {
		t.Fatalf("appending %d records allocated %d B, budget %d B (raw %d B)", n, grew, budget, raw)
	}
	if s.Len("t") != n {
		t.Fatalf("Len = %d, want %d", s.Len("t"), n)
	}
}
