// Package logstore is the repository for collected query logs — the
// substitute for Alibaba Cloud LogStore in the paper's pipeline (§IV-A).
// It is an append-only, topic-partitioned store of compact per-query
// records with TTL-based expiry ("the data will be invalidated after three
// days, or another user-customized expiration period").
//
// Records are kept per topic (one topic per database instance) in arrival
// order, so range scans over a diagnosis window are a binary search plus a
// contiguous slice copy.
package logstore

import (
	"errors"
	"sort"
	"sync"
)

// Record is one collected query observation, compacted for bulk storage:
// the template is referenced by registry index instead of repeating the
// SQL text billions of times.
type Record struct {
	TemplateIdx  int32   // index into the collector's template registry
	ArrivalMs    int64   // t(q)
	ResponseMs   float64 // tres(q)
	ExaminedRows int64
}

// DefaultTTLMs is the paper's three-day default expiration period.
const DefaultTTLMs = 3 * 24 * 3600 * 1000

// ErrUnsortedAppend reports an append that would break a topic's arrival
// ordering beyond the allowed slack.
var ErrUnsortedAppend = errors.New("logstore: record arrival time out of order")

// Store is a thread-safe, TTL-expiring log store.
type Store struct {
	mu     sync.RWMutex
	ttlMs  int64
	topics map[string][]Record
	// slackMs tolerates mild reordering from asynchronous collection;
	// records are kept sorted by insertion sort within the slack window.
	slackMs int64
	// dirty topics have loose-appended records pending a lazy sort.
	dirty map[string]bool
}

// New creates a store with the given TTL in milliseconds; ttlMs ≤ 0 selects
// DefaultTTLMs.
func New(ttlMs int64) *Store {
	if ttlMs <= 0 {
		ttlMs = DefaultTTLMs
	}
	return &Store{
		ttlMs:   ttlMs,
		topics:  make(map[string][]Record),
		slackMs: 5000,
		dirty:   make(map[string]bool),
	}
}

// TTL returns the configured time-to-live in milliseconds.
func (s *Store) TTL() int64 { return s.ttlMs }

// Append stores a record under the topic. Records may arrive mildly out of
// order (asynchronous collectors); anything older than the slack window
// relative to the topic's newest record is rejected.
func (s *Store) Append(topic string, rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.topics[topic]
	if n := len(recs); n > 0 && rec.ArrivalMs < recs[n-1].ArrivalMs {
		if recs[n-1].ArrivalMs-rec.ArrivalMs > s.slackMs {
			return ErrUnsortedAppend
		}
		// Insertion sort within the slack window.
		i := sort.Search(n, func(i int) bool { return recs[i].ArrivalMs > rec.ArrivalMs })
		recs = append(recs, Record{})
		copy(recs[i+1:], recs[i:])
		recs[i] = rec
		s.topics[topic] = recs
		return nil
	}
	s.topics[topic] = append(recs, rec)
	return nil
}

// AppendLoose stores a record without any ordering requirement: records
// are sorted lazily at the next Scan. Query logs are emitted at statement
// *completion*, so a statement that spent minutes in a lock queue arrives
// long after later-arriving statements — far outside any streaming slack
// window. Batch collectors use this path.
func (s *Store) AppendLoose(topic string, rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.topics[topic] = append(s.topics[topic], rec)
	s.dirty[topic] = true
}

// ensureSorted lazily re-sorts a topic after loose appends. Callers must
// hold the write lock.
func (s *Store) ensureSorted(topic string) {
	if !s.dirty[topic] {
		return
	}
	recs := s.topics[topic]
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].ArrivalMs < recs[j].ArrivalMs })
	delete(s.dirty, topic)
}

// Scan returns a copy of the records in topic with ArrivalMs in
// [fromMs, toMs).
func (s *Store) Scan(topic string, fromMs, toMs int64) []Record {
	// The write lock covers the whole scan: a concurrent AppendLoose
	// between sorting and searching would otherwise leave an unsorted
	// tail under the binary search.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted(topic)
	recs := s.topics[topic]
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].ArrivalMs >= fromMs })
	hi := sort.Search(len(recs), func(i int) bool { return recs[i].ArrivalMs >= toMs })
	out := make([]Record, hi-lo)
	copy(out, recs[lo:hi])
	return out
}

// ScanFunc streams the records of Scan's range in the same order without
// materializing a copy, calling fn for each record until it returns false.
// The callback runs under the store lock: it must be quick and must not
// call back into the store.
func (s *Store) ScanFunc(topic string, fromMs, toMs int64, fn func(Record) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted(topic)
	recs := s.topics[topic]
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].ArrivalMs >= fromMs })
	for i := lo; i < len(recs) && recs[i].ArrivalMs < toMs; i++ {
		if !fn(recs[i]) {
			return
		}
	}
}

// Bounds returns the minimum and maximum ArrivalMs in a topic; ok is false
// when the topic is empty or unknown.
func (s *Store) Bounds(topic string) (minMs, maxMs int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted(topic)
	recs := s.topics[topic]
	if len(recs) == 0 {
		return 0, 0, false
	}
	return recs[0].ArrivalMs, recs[len(recs)-1].ArrivalMs, true
}

// Len returns the number of live records in a topic.
func (s *Store) Len(topic string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.topics[topic])
}

// Topics returns the topic names with at least one live record.
func (s *Store) Topics() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.topics))
	for name, recs := range s.topics {
		if len(recs) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Expire drops every record with ArrivalMs < nowMs − TTL across all topics
// and returns the number removed. PinSQL calls this periodically to keep
// the store's size within its limit (§IV-A).
func (s *Store) Expire(nowMs int64) int {
	cutoff := nowMs - s.ttlMs
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	// Single pass: ensureSorted is a no-op for topics without pending
	// loose appends, and sorting happens in place, so the lazily sorted
	// slice can be compacted in the same iteration.
	for topic := range s.topics {
		s.ensureSorted(topic)
		recs := s.topics[topic]
		lo := sort.Search(len(recs), func(i int) bool { return recs[i].ArrivalMs >= cutoff })
		if lo == 0 {
			continue
		}
		removed += lo
		remaining := make([]Record, len(recs)-lo)
		copy(remaining, recs[lo:])
		if len(remaining) == 0 {
			delete(s.topics, topic)
		} else {
			s.topics[topic] = remaining
		}
	}
	return removed
}

// TruncateFrom drops every record in topic with ArrivalMs >= fromMs and
// returns the number removed. Restarting consumers use it to discard a
// partially committed suffix before replaying a window.
func (s *Store) TruncateFrom(topic string, fromMs int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted(topic)
	recs := s.topics[topic]
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].ArrivalMs >= fromMs })
	removed := len(recs) - lo
	if removed == 0 {
		return 0
	}
	if lo == 0 {
		delete(s.topics, topic)
		return removed
	}
	s.topics[topic] = recs[:lo:lo]
	return removed
}

// Close satisfies Backend; the in-memory store holds no external
// resources.
func (s *Store) Close() error { return nil }
