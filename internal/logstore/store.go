// Package logstore is the repository for collected query logs — the
// substitute for Alibaba Cloud LogStore in the paper's pipeline (§IV-A).
// It is an append-only, topic-partitioned store of compact per-query
// records with TTL-based expiry ("the data will be invalidated after three
// days, or another user-customized expiration period").
//
// Records are kept per topic (one topic per database instance) in arrival
// order inside a chunked record arena: fixed-capacity chunks linked by a
// small spine, so an append never copies the topic's existing records the
// way a doubling []Record would (at 128 fleet instances ~10% of CPU was
// growslice under Append). Range scans are a two-level binary search —
// chunk spine, then within the chunk — plus a contiguous copy.
package logstore

import (
	"errors"
	"sort"
	"sync"
)

// Record is one collected query observation, compacted for bulk storage:
// the template is referenced by registry index instead of repeating the
// SQL text billions of times.
type Record struct {
	TemplateIdx  int32   // index into the collector's template registry
	ArrivalMs    int64   // t(q)
	ResponseMs   float64 // tres(q)
	ExaminedRows int64
}

// DefaultTTLMs is the paper's three-day default expiration period.
const DefaultTTLMs = 3 * 24 * 3600 * 1000

// ErrUnsortedAppend reports an append that would break a topic's arrival
// ordering beyond the allowed slack.
var ErrUnsortedAppend = errors.New("logstore: record arrival time out of order")

// chunkCap is the fixed record capacity of one arena chunk (32 B/record →
// 128 KiB chunks). Growth allocates one fresh chunk and never touches the
// records already stored.
const chunkCap = 4096

// topicLog is one topic's chunked record arena. When the topic is clean
// (no pending loose appends) every chunk is sorted by ArrivalMs and the
// chunks are ordered: chunks[i]'s last record ≤ chunks[i+1]'s first.
// Middle chunks may be shorter than chunkCap after expiry or truncation;
// only the tail chunk accepts plain appends.
type topicLog struct {
	chunks [][]Record
	size   int
}

// last returns the final record in insertion order; ok is false when the
// topic is empty.
func (t *topicLog) last() (Record, bool) {
	if len(t.chunks) == 0 {
		return Record{}, false
	}
	tail := t.chunks[len(t.chunks)-1]
	return tail[len(tail)-1], true
}

// push appends to the tail chunk, opening a new chunk when the tail is at
// capacity. Empty chunks never linger: push is the only way a chunk is
// born and it immediately receives a record.
func (t *topicLog) push(rec Record) {
	if n := len(t.chunks); n == 0 || len(t.chunks[n-1]) == cap(t.chunks[n-1]) {
		t.chunks = append(t.chunks, make([]Record, 0, chunkCap))
	}
	n := len(t.chunks) - 1
	t.chunks[n] = append(t.chunks[n], rec)
	t.size++
}

// at returns the record at logical index i (insertion order across the
// chunk spine). O(#chunks) — used only by the rare within-slack insertion
// path, which needs logical indexing to replicate the flat slice's
// binary-search semantics exactly.
func (t *topicLog) at(i int) Record {
	for _, c := range t.chunks {
		if i < len(c) {
			return c[i]
		}
		i -= len(c)
	}
	panic("logstore: chunk index out of range")
}

// insertAt places rec at logical index i, shifting everything at or after
// i one slot right. A full chunk overflows its last record into the front
// of the next chunk, cascading toward the tail — each step is a bounded
// memmove inside one fixed-size chunk, never a whole-topic copy.
func (t *topicLog) insertAt(i int, rec Record) {
	ci := 0
	// An index at the boundary of a full chunk is equivalently position 0
	// of the next chunk; step past so the cascade below always has a slot
	// (or falls off the end into a plain push).
	for ci < len(t.chunks) && (i > len(t.chunks[ci]) ||
		(i == len(t.chunks[ci]) && len(t.chunks[ci]) == cap(t.chunks[ci]))) {
		i -= len(t.chunks[ci])
		ci++
	}
	if ci == len(t.chunks) {
		t.push(rec)
		return
	}
	carry := rec
	for ; ci < len(t.chunks); ci++ {
		c := t.chunks[ci]
		if len(c) < cap(c) {
			c = append(c, Record{})
			copy(c[i+1:], c[i:])
			c[i] = carry
			t.chunks[ci] = c
			t.size++
			return
		}
		over := c[len(c)-1]
		copy(c[i+1:], c[i:len(c)-1])
		c[i] = carry
		carry, i = over, 0 // the overflow preceded everything in the next chunk
	}
	t.push(carry)
}

// find returns the position of the first record for which pred holds,
// assuming pred is monotone over the (sorted) topic: false…false
// true…true. It returns the logical index plus the (chunk, offset)
// coordinates; logical == size when no record matches.
func (t *topicLog) find(pred func(Record) bool) (logical, chunk, off int) {
	base := 0
	for ci, c := range t.chunks {
		if len(c) == 0 {
			continue
		}
		if !pred(c[len(c)-1]) {
			base += len(c)
			continue
		}
		i := sort.Search(len(c), func(i int) bool { return pred(c[i]) })
		return base + i, ci, i
	}
	return t.size, len(t.chunks), 0
}

// scan calls fn for each record with ArrivalMs in [fromMs, toMs), in
// order, until fn returns false. The topic must be clean (sorted).
func (t *topicLog) scan(fromMs, toMs int64, fn func(Record) bool) {
	_, ci, off := t.find(func(r Record) bool { return r.ArrivalMs >= fromMs })
	for ; ci < len(t.chunks); ci++ {
		c := t.chunks[ci]
		for ; off < len(c); off++ {
			if c[off].ArrivalMs >= toMs {
				return
			}
			if !fn(c[off]) {
				return
			}
		}
		off = 0
	}
}

// flatten materializes the topic in insertion order.
func (t *topicLog) flatten() []Record {
	out := make([]Record, 0, t.size)
	for _, c := range t.chunks {
		out = append(out, c...)
	}
	return out
}

// rebuild replaces the arena's contents with recs (already in the desired
// order), re-chunking from scratch.
func (t *topicLog) rebuild(recs []Record) {
	t.chunks = t.chunks[:0]
	t.size = 0
	for _, r := range recs {
		t.push(r)
	}
}

// Store is a thread-safe, TTL-expiring log store.
type Store struct {
	mu     sync.RWMutex
	ttlMs  int64
	topics map[string]*topicLog
	// slackMs tolerates mild reordering from asynchronous collection;
	// records are kept sorted by insertion sort within the slack window.
	slackMs int64
	// dirty topics have loose-appended records pending a lazy sort.
	dirty map[string]bool
}

// New creates a store with the given TTL in milliseconds; ttlMs ≤ 0 selects
// DefaultTTLMs.
func New(ttlMs int64) *Store {
	if ttlMs <= 0 {
		ttlMs = DefaultTTLMs
	}
	return &Store{
		ttlMs:   ttlMs,
		topics:  make(map[string]*topicLog),
		slackMs: 5000,
		dirty:   make(map[string]bool),
	}
}

// TTL returns the configured time-to-live in milliseconds.
func (s *Store) TTL() int64 { return s.ttlMs }

// topic returns the arena for a topic, creating it on first use. Callers
// hold the write lock.
func (s *Store) topic(name string) *topicLog {
	t := s.topics[name]
	if t == nil {
		t = &topicLog{}
		s.topics[name] = t
	}
	return t
}

// Append stores a record under the topic. Records may arrive mildly out of
// order (asynchronous collectors); anything older than the slack window
// relative to the topic's newest record is rejected.
func (s *Store) Append(topic string, rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.topic(topic)
	if newest, ok := t.last(); ok && rec.ArrivalMs < newest.ArrivalMs {
		if newest.ArrivalMs-rec.ArrivalMs > s.slackMs {
			return ErrUnsortedAppend
		}
		// Insertion sort within the slack window: first logical index
		// whose arrival exceeds the record's (equal arrivals keep
		// insertion order), exactly as the flat-slice store did.
		i := sort.Search(t.size, func(i int) bool { return t.at(i).ArrivalMs > rec.ArrivalMs })
		t.insertAt(i, rec)
		return nil
	}
	t.push(rec)
	return nil
}

// AppendLoose stores a record without any ordering requirement: records
// are sorted lazily at the next Scan. Query logs are emitted at statement
// *completion*, so a statement that spent minutes in a lock queue arrives
// long after later-arriving statements — far outside any streaming slack
// window. Batch collectors use this path.
func (s *Store) AppendLoose(topic string, rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.topic(topic).push(rec)
	s.dirty[topic] = true
}

// ensureSorted lazily re-sorts a topic after loose appends. Callers must
// hold the write lock.
func (s *Store) ensureSorted(topic string) {
	if !s.dirty[topic] {
		return
	}
	t := s.topics[topic]
	recs := t.flatten()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].ArrivalMs < recs[j].ArrivalMs })
	t.rebuild(recs)
	delete(s.dirty, topic)
}

// Scan returns a copy of the records in topic with ArrivalMs in
// [fromMs, toMs).
func (s *Store) Scan(topic string, fromMs, toMs int64) []Record {
	// The write lock covers the whole scan: a concurrent AppendLoose
	// between sorting and searching would otherwise leave an unsorted
	// tail under the binary search.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted(topic)
	t := s.topics[topic]
	if t == nil {
		return []Record{}
	}
	lo, _, _ := t.find(func(r Record) bool { return r.ArrivalMs >= fromMs })
	hi, _, _ := t.find(func(r Record) bool { return r.ArrivalMs >= toMs })
	out := make([]Record, 0, hi-lo)
	t.scan(fromMs, toMs, func(r Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// ScanFunc streams the records of Scan's range in the same order without
// materializing a copy, calling fn for each record until it returns false.
// The callback runs under the store lock: it must be quick and must not
// call back into the store.
func (s *Store) ScanFunc(topic string, fromMs, toMs int64, fn func(Record) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted(topic)
	t := s.topics[topic]
	if t == nil {
		return
	}
	t.scan(fromMs, toMs, fn)
}

// Bounds returns the minimum and maximum ArrivalMs in a topic; ok is false
// when the topic is empty or unknown.
func (s *Store) Bounds(topic string) (minMs, maxMs int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted(topic)
	t := s.topics[topic]
	if t == nil || t.size == 0 {
		return 0, 0, false
	}
	first := t.chunks[0]
	for _, c := range t.chunks {
		if len(c) > 0 {
			first = c
			break
		}
	}
	newest, _ := t.last()
	return first[0].ArrivalMs, newest.ArrivalMs, true
}

// Len returns the number of live records in a topic.
func (s *Store) Len(topic string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t := s.topics[topic]; t != nil {
		return t.size
	}
	return 0
}

// Topics returns the topic names with at least one live record.
func (s *Store) Topics() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.topics))
	for name, t := range s.topics {
		if t.size > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Expire drops every record with ArrivalMs < nowMs − TTL across all topics
// and returns the number removed. PinSQL calls this periodically to keep
// the store's size within its limit (§IV-A). Whole expired chunks are
// released in O(1); at most one chunk is trimmed in place.
func (s *Store) Expire(nowMs int64) int {
	cutoff := nowMs - s.ttlMs
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for topic := range s.topics {
		s.ensureSorted(topic)
		t := s.topics[topic]
		lo, ci, off := t.find(func(r Record) bool { return r.ArrivalMs >= cutoff })
		if lo == 0 {
			continue
		}
		removed += lo
		if lo == t.size {
			delete(s.topics, topic)
			continue
		}
		// Drop the fully expired chunks, trim the partially expired one.
		t.chunks = t.chunks[ci:]
		if off > 0 {
			t.chunks[0] = t.chunks[0][off:]
		}
		t.size -= lo
	}
	return removed
}

// TruncateFrom drops every record in topic with ArrivalMs >= fromMs and
// returns the number removed. Restarting consumers use it to discard a
// partially committed suffix before replaying a window.
func (s *Store) TruncateFrom(topic string, fromMs int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted(topic)
	t := s.topics[topic]
	if t == nil {
		return 0
	}
	lo, ci, off := t.find(func(r Record) bool { return r.ArrivalMs >= fromMs })
	removed := t.size - lo
	if removed == 0 {
		return 0
	}
	if lo == 0 {
		delete(s.topics, topic)
		return removed
	}
	if off > 0 {
		t.chunks = t.chunks[:ci+1]
		t.chunks[ci] = t.chunks[ci][:off]
	} else {
		t.chunks = t.chunks[:ci]
	}
	t.size = lo
	return removed
}

// Close satisfies Backend; the in-memory store holds no external
// resources.
func (s *Store) Close() error { return nil }
