//go:build !unix

package segment

import "os"

// Platforms without the unix mmap syscalls fall back to plain file reads;
// every scan path works identically, just without the zero-copy mapping.
func mmapFile(f *os.File) ([]byte, error) { return nil, errMmapUnavailable }

func munmapFile(b []byte) error { return nil }
