package segment

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"pinsql/internal/logstore"
)

// smallOpts forces frequent sealing so tests cross segment boundaries.
func smallOpts() Options {
	return Options{SegmentRecords: 16, IndexEvery: 4}
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rec(tpl int32, ms int64) logstore.Record {
	return logstore.Record{TemplateIdx: tpl, ArrivalMs: ms, ResponseMs: float64(ms) / 3, ExaminedRows: ms % 7}
}

func TestAppendScanAcrossSegments(t *testing.T) {
	s := mustOpen(t, t.TempDir(), smallOpts())
	defer s.Close()
	const n = 100 // crosses several 16-record segments
	for i := 0; i < n; i++ {
		if err := s.Append("db1", rec(int32(i), int64(i*100))); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Scan("db1", 200, 5000)
	if len(got) != 48 {
		t.Fatalf("scan returned %d records, want 48", len(got))
	}
	for i, r := range got {
		want := rec(int32(i+2), int64((i+2)*100))
		if r != want {
			t.Fatalf("rec[%d] = %+v, want %+v", i, r, want)
		}
	}
	if s.Len("db1") != n {
		t.Errorf("Len = %d, want %d", s.Len("db1"), n)
	}
	if min, max, ok := s.Bounds("db1"); !ok || min != 0 || max != int64((n-1)*100) {
		t.Errorf("Bounds = %d, %d, %v", min, max, ok)
	}
}

func TestScanFuncEarlyStop(t *testing.T) {
	s := mustOpen(t, t.TempDir(), smallOpts())
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.AppendLoose("t", rec(0, int64(i)))
	}
	seen := 0
	s.ScanFunc("t", 0, 100, func(logstore.Record) bool {
		seen++
		return seen < 7
	})
	if seen != 7 {
		t.Errorf("early stop saw %d records, want 7", seen)
	}
}

func TestLooseAppendSortedScan(t *testing.T) {
	s := mustOpen(t, t.TempDir(), smallOpts())
	defer s.Close()
	// Heavily out-of-order arrivals (lock-delayed completions).
	times := []int64{500, 100, 900, 100, 300, 700, 200, 100, 800}
	for i, ms := range times {
		s.AppendLoose("t", rec(int32(i), ms))
	}
	got := s.Scan("t", 0, 1000)
	if len(got) != len(times) {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].ArrivalMs < got[i-1].ArrivalMs {
			t.Fatalf("unsorted scan: %+v", got)
		}
	}
	// Stability: the three ties at 100 ms must stay in ingest order.
	var ties []int32
	for _, r := range got {
		if r.ArrivalMs == 100 {
			ties = append(ties, r.TemplateIdx)
		}
	}
	if !reflect.DeepEqual(ties, []int32{1, 3, 7}) {
		t.Errorf("ties out of ingest order: %v", ties)
	}
}

func TestSlackRejection(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	s.Append("t", rec(0, 1000))
	s.Append("t", rec(0, 9000))
	if err := s.Append("t", rec(0, 3000)); err != logstore.ErrUnsortedAppend {
		t.Errorf("stale append error = %v, want ErrUnsortedAppend", err)
	}
	if err := s.Append("t", rec(0, 5000)); err != nil { // within 5 s slack
		t.Errorf("in-slack append error = %v", err)
	}
}

func TestReopenReplaysEverything(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, smallOpts())
	for i := 0; i < 50; i++ {
		s.AppendLoose("a", rec(int32(i), int64(i*10)))
		s.AppendLoose("b", rec(int32(i), int64(i*20)))
	}
	want := s.Scan("a", 0, 1<<62)
	wantB := s.Scan("b", 0, 1<<62)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, smallOpts())
	defer r.Close()
	if got := r.Scan("a", 0, 1<<62); !reflect.DeepEqual(got, want) {
		t.Errorf("topic a diverged after reopen:\n got %v\nwant %v", got, want)
	}
	if got := r.Scan("b", 0, 1<<62); !reflect.DeepEqual(got, wantB) {
		t.Errorf("topic b diverged after reopen")
	}
	if topics := r.Topics(); !reflect.DeepEqual(topics, []string{"a", "b"}) {
		t.Errorf("topics = %v", topics)
	}
	// And the store still accepts appends after recovery.
	r.AppendLoose("a", rec(99, 10_000))
	if got := r.Len("a"); got != 51 {
		t.Errorf("post-recovery Len = %d, want 51", got)
	}
}

func TestExpireDeletesWholeSegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentRecords: 10, IndexEvery: 4, TTLMs: 1000})
	for i := 0; i < 40; i++ {
		s.AppendLoose("t", rec(int32(i), int64(i*100)))
	}
	segsBefore, _ := filepath.Glob(filepath.Join(dir, "t", "t", "*.seg"))
	if len(segsBefore) != 4 {
		t.Fatalf("segments on disk = %d, want 4", len(segsBefore))
	}

	// cutoff = 2500: segments [0,900] and [1000,1900] die whole, segment
	// [2000,2900] is half masked.
	removed := s.Expire(3500)
	if removed != 25 {
		t.Errorf("removed = %d, want 25", removed)
	}
	if got := s.Len("t"); got != 15 {
		t.Errorf("Len = %d, want 15", got)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "t", "t", "*.seg"))
	if len(segsAfter) != 2 {
		t.Errorf("segments on disk after expire = %d, want 2", len(segsAfter))
	}
	if min, _, ok := s.Bounds("t"); !ok || min != 2500 {
		t.Errorf("post-expire min = %d, %v, want 2500", min, ok)
	}

	// The watermark survives a restart: reopening must not resurrect
	// expired records.
	s.Close()
	r := mustOpen(t, dir, Options{SegmentRecords: 10, IndexEvery: 4, TTLMs: 1000})
	defer r.Close()
	if got := r.Len("t"); got != 15 {
		t.Errorf("Len after reopen = %d, want 15", got)
	}
	if got := r.Scan("t", 0, 1<<62); len(got) != 15 || got[0].ArrivalMs != 2500 {
		t.Errorf("scan after reopen: len %d, first %v", len(got), got[0])
	}
	// Expiring everything empties the topic list.
	r.Expire(1 << 40)
	if topics := r.Topics(); len(topics) != 0 {
		t.Errorf("topics after full expiry = %v", topics)
	}
}

func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	entries := []RegistryEntry{
		{Index: 0, ID: "id-a", Text: "SELECT * FROM orders WHERE id = ?", Table: "orders", Kind: 0},
		{Index: 1, ID: "id-b", Text: "UPDATE orders SET x = ? WHERE id = ?", Table: "orders", Kind: 2},
	}
	for _, e := range entries {
		if err := s.AppendRegistry(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendRegistry(RegistryEntry{Index: 5, ID: "bad"}); err == nil {
		t.Error("out-of-order registry append accepted")
	}
	s.Close() // folds the delta into a snapshot

	r := mustOpen(t, dir, Options{})
	if got := r.RegistryEntries(); !reflect.DeepEqual(got, entries) {
		t.Fatalf("entries after snapshot reopen = %+v", got)
	}
	// Delta-only entries (no snapshot between) also survive.
	r.AppendRegistry(RegistryEntry{Index: 2, ID: "id-c", Text: "DELETE FROM x", Table: "x", Kind: 3})
	// Simulate a crash: no Close, reopen directly on a fresh handle.
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if got := r2.RegistryEntries(); len(got) != 3 || got[2].ID != "id-c" {
		t.Fatalf("delta entry lost across crash-reopen: %+v", got)
	}
	r.Close()
}

// TestRegistryCrashBetweenSnapshotAndTruncate simulates the one crash
// window the snapshot protocol leaves: the new snapshot is renamed into
// place but the process dies before the delta is truncated, so every
// snapshotted entry is still duplicated in the delta. Open must recover
// (idempotent delta replay), not fail the dense-index check.
func TestRegistryCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	entries := []RegistryEntry{
		{Index: 0, ID: "id-a", Text: "SELECT * FROM orders WHERE id = ?", Table: "orders"},
		{Index: 1, ID: "id-b", Text: "UPDATE orders SET x = ? WHERE id = ?", Table: "orders", Kind: 2},
		{Index: 2, ID: "id-c", Text: "DELETE FROM x", Table: "x", Kind: 3},
	}
	for _, e := range entries {
		if err := s.AppendRegistry(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // snapshot written, delta truncated
		t.Fatal(err)
	}

	// Reconstruct the crash state: the delta again holds everything the
	// snapshot holds (snapshot and delta share the frame format).
	snap, err := os.ReadFile(filepath.Join(dir, "registry.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "registry.delta"), snap, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	if got := r.RegistryEntries(); !reflect.DeepEqual(got, entries) {
		t.Fatalf("entries after crash-state reopen = %+v, want %+v", got, entries)
	}
	// The interrupted truncate is completed, and appends continue at the
	// right dense index.
	next := RegistryEntry{Index: 3, ID: "id-d", Text: "INSERT INTO y VALUES (?)", Table: "y", Kind: 1}
	if err := r.AppendRegistry(next); err != nil {
		t.Fatal(err)
	}
	// Crash again before snapshotting: reopen must see all four entries.
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if got := r2.RegistryEntries(); len(got) != 4 || got[3] != next {
		t.Fatalf("entries after second crash-reopen = %+v", got)
	}
	r.Close()
}

// TestRegistryDeltaSnapshotMismatch: a delta entry that claims an index
// the snapshot already holds but with different content is corruption,
// not a benign crash artifact, and must fail Open loudly.
func TestRegistryDeltaSnapshotMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.AppendRegistry(RegistryEntry{Index: 0, ID: "id-a", Text: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	imposter := appendFrame([]byte(regMagic), appendRegistryEntry(nil, RegistryEntry{Index: 0, ID: "id-EVIL", Text: "DROP TABLE t"}))
	if err := os.WriteFile(filepath.Join(dir, "registry.delta"), imposter, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a delta entry disagreeing with the snapshot")
	}
}

func TestTopicNameEscaping(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	odd := "prod/db-7:3306 €"
	s.AppendLoose(odd, rec(1, 42))
	s.Close()
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := r.Topics(); len(got) != 1 || got[0] != odd {
		t.Errorf("topics after reopen = %q", got)
	}
	if got := r.Scan(odd, 0, 100); len(got) != 1 || got[0].ArrivalMs != 42 {
		t.Errorf("scan = %v", got)
	}
}

func TestEmptyAndMissingTopic(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if got := s.Scan("nope", 0, 100); len(got) != 0 {
		t.Errorf("missing topic scan = %v", got)
	}
	if _, _, ok := s.Bounds("nope"); ok {
		t.Error("Bounds ok for missing topic")
	}
	if got := s.Len("nope"); got != 0 {
		t.Errorf("Len = %d", got)
	}
	// Scanning must not create topic directories on disk.
	if _, err := os.Stat(filepath.Join(s.Dir(), "t", "nope")); !os.IsNotExist(err) {
		t.Error("read path created a topic directory")
	}
}

func TestConcurrentAppendScan(t *testing.T) {
	s := mustOpen(t, t.TempDir(), smallOpts())
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			topic := string(rune('a' + w%4))
			for i := 0; i < 300; i++ {
				s.AppendLoose(topic, rec(int32(w), int64(i)))
				if i%50 == 0 {
					s.Scan(topic, 0, int64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, topic := range s.Topics() {
		total += s.Len(topic)
	}
	if total != 8*300 {
		t.Errorf("total records = %d, want 2400", total)
	}
}

// TestAppendAcceptsDespiteStickyDiskError: once a record is accepted
// into the memtable, Append returns nil even when the store has a sticky
// disk error — degraded durability is reported via Err, not conflated
// with per-record ordering rejections.
func TestAppendAcceptsDespiteStickyDiskError(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Append("t", rec(0, 100)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.topics["t"].wal.Close() // force every later wal write to fail
	s.mu.Unlock()
	if err := s.Append("t", rec(1, 200)); err != nil {
		t.Fatalf("accepted append returned %v", err)
	}
	if s.Err() == nil {
		t.Fatal("wal write failure not recorded as sticky error")
	}
	if err := s.Append("t", rec(2, 300)); err != nil {
		t.Fatalf("append after sticky error returned %v", err)
	}
	// Ordering rejections stay distinguishable from the degraded state.
	if err := s.Append("t", rec(3, -90_000)); err != logstore.ErrUnsortedAppend {
		t.Fatalf("stale append error = %v, want ErrUnsortedAppend", err)
	}
	if got := s.Scan("t", 0, 1000); len(got) != 3 {
		t.Fatalf("memtable holds %d records, want 3", len(got))
	}
}

// TestSyncEveryPolicy exercises the periodic-fsync path: appends and the
// registry delta sync without error, and a crash-style reopen (no Close)
// still sees every record.
func TestSyncEveryPolicy(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncEvery: 3, SegmentRecords: 8, IndexEvery: 2})
	if err := s.AppendRegistry(RegistryEntry{Index: 0, ID: "id-a", Text: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Append("t", rec(int32(i), int64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{SyncEvery: 3, SegmentRecords: 8, IndexEvery: 2})
	defer r.Close()
	if got := r.Len("t"); got != 20 {
		t.Fatalf("records after crash-reopen = %d, want 20", got)
	}
	if got := r.RegistryEntries(); len(got) != 1 {
		t.Fatalf("registry after crash-reopen = %+v", got)
	}
}

func TestSealForcesSegmentScanPath(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.AppendLoose("t", rec(int32(i), int64(500-i*100)))
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	got := s.Scan("t", 0, 1000)
	if len(got) != 5 || got[0].ArrivalMs != 100 {
		t.Fatalf("sealed scan = %v", got)
	}
	// Appends after a forced seal open a fresh wal.
	s.AppendLoose("t", rec(9, 600))
	if got := s.Len("t"); got != 6 {
		t.Errorf("Len = %d", got)
	}
}
