package segment

import (
	"bytes"
	"math"
	"testing"

	"pinsql/internal/logstore"
)

// FuzzRecordCodec fuzzes the record codec end to end: every input is
// interpreted as (record fields, previous arrival, a mutation offset) and
// the target checks that
//
//  1. encode → frame → parse → decode round-trips the record exactly,
//  2. re-encoding the decoded record is byte-identical (canonical form),
//  3. flipping any single byte of the frame is rejected by the CRC (or,
//     for the length header, by the bounds checks) — corruption must
//     never decode to a different record silently,
//  4. arbitrary bytes fed straight into the frame parser never panic
//     and never alias past the buffer.
func FuzzRecordCodec(f *testing.F) {
	f.Add(int64(0), int32(0), float64(0), int64(0), int64(0), uint16(0))
	f.Add(int64(1234), int32(7), 3.25, int64(42), int64(1000), uint16(3))
	f.Add(int64(-5_000), int32(math.MaxInt32), math.MaxFloat64, int64(math.MinInt64), int64(math.MaxInt64), uint16(11))
	f.Add(int64(math.MaxInt64), int32(-1), math.SmallestNonzeroFloat64, int64(-1), int64(-9), uint16(0xffff))
	f.Add(int64(17), int32(50), math.Inf(1), int64(3), int64(16), uint16(5))

	f.Fuzz(func(t *testing.T, arrival int64, tpl int32, resp float64, rows, prev int64, mutate uint16) {
		if math.IsNaN(resp) {
			// NaN payloads round-trip bit-exactly but break the == check
			// below; real records never carry NaN response times.
			resp = 0
		}
		rec := logstore.Record{TemplateIdx: tpl, ArrivalMs: arrival, ResponseMs: resp, ExaminedRows: rows}

		payload := appendRecord(nil, prev, rec)
		frame := appendFrame(nil, payload)

		// 1. Round-trip through the frame parser and record decoder.
		got, next, err := nextFrame(frame, 0)
		if err != nil {
			t.Fatalf("nextFrame rejected a well-formed frame: %v", err)
		}
		if next != len(frame) {
			t.Fatalf("nextFrame consumed %d of %d bytes", next, len(frame))
		}
		dec, err := decodeRecord(got, prev)
		if err != nil {
			t.Fatalf("decodeRecord rejected a well-formed payload: %v", err)
		}
		if dec != rec {
			t.Fatalf("round-trip mismatch: encoded %+v, decoded %+v", rec, dec)
		}

		// 2. Canonical form: re-encoding yields identical bytes.
		if again := appendRecord(nil, prev, dec); !bytes.Equal(again, payload) {
			t.Fatalf("re-encode not canonical: %x vs %x", again, payload)
		}

		// 3. Single-byte corruption anywhere in the frame must not decode
		// to a *different* record. The CRC catches payload and checksum
		// damage; a damaged length header either fails parsing or shifts
		// the CRC out of alignment.
		k := int(mutate) % len(frame)
		bad := append([]byte(nil), frame...)
		bad[k] ^= 1 + byte(mutate>>8)
		if p, _, err := nextFrame(bad, 0); err == nil {
			if d, derr := decodeRecord(p, prev); derr == nil && d != rec {
				t.Fatalf("corrupted byte %d decoded silently to %+v (want %+v or an error)", k, d, rec)
			}
		}

		// 4. The parser must tolerate arbitrary garbage without panicking.
		garbage := append([]byte(nil), frame...)
		garbage = append(garbage, byte(arrival), byte(rows), byte(mutate))
		off := 0
		for off < len(garbage) {
			p, next, err := nextFrame(garbage, off)
			if err != nil {
				break
			}
			decodeRecord(p, prev)
			if next <= off {
				t.Fatal("nextFrame did not advance")
			}
			off = next
		}
	})
}

// FuzzFrameParser hammers nextFrame with raw bytes: it must never panic,
// never return a payload extending past the input, and always advance.
func FuzzFrameParser(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(appendFrame(nil, []byte("hello")))
	f.Add(append(appendFrame(nil, []byte{1, 2, 3}), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add([]byte{0x05, 'a', 'b'}) // length past the buffer

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			payload, next, err := nextFrame(data, off)
			if err != nil {
				break
			}
			if next <= off || next > len(data) {
				t.Fatalf("nextFrame advanced %d → %d of %d", off, next, len(data))
			}
			if len(payload) > next-off {
				t.Fatalf("payload of %d bytes from a %d-byte frame", len(payload), next-off)
			}
			off = next
		}
	})
}
