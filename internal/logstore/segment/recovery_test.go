package segment

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pinsql/internal/logstore"
)

// walPathOf locates the single active wal of a topic.
func walPathOf(t *testing.T, dir, topic string) string {
	t.Helper()
	wals, err := filepath.Glob(filepath.Join(dir, "t", topic, "*.wal"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("wal files = %v (err %v), want exactly 1", wals, err)
	}
	return wals[0]
}

// writeRecovery populates a store and returns the per-record prefixes of
// the expected recovery: want[i] is the scan after the first i records.
func recoveryFixture(t *testing.T, dir string) (walPath string, recs []logstore.Record) {
	t.Helper()
	s := mustOpen(t, dir, Options{SegmentRecords: 1 << 20})
	for i := 0; i < 25; i++ {
		// Mildly out-of-order arrivals with repeats, varied payloads.
		ms := int64((i*37)%200 + i)
		r := logstore.Record{TemplateIdx: int32(i % 5), ArrivalMs: ms, ResponseMs: float64(i) * 1.5, ExaminedRows: int64(i * i)}
		s.AppendLoose("t", r)
		recs = append(recs, r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return walPathOf(t, dir, "t"), recs
}

// expectPrefix computes the Scan result the in-memory store would produce
// for the first n ingested records.
func expectPrefix(recs []logstore.Record, n int) []logstore.Record {
	mem := logstore.New(0)
	for _, r := range recs[:n] {
		mem.AppendLoose("t", r)
	}
	return mem.Scan("t", 0, 1<<62)
}

// TestTornTailTruncation simulates a torn write at every byte offset of
// the active wal: the file is truncated to k bytes, the store reopened,
// and every record whose frame lies wholly before k must survive.
func TestTornTailTruncation(t *testing.T) {
	masterDir := t.TempDir()
	walPath, recs := recoveryFixture(t, masterDir)
	walData, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Map each byte offset to the number of wholly-written frames.
	frames := frameEnds(t, walData)

	for k := 0; k <= len(walData); k++ {
		dir := t.TempDir()
		cloneTopicDir(t, masterDir, dir)
		torn := walPathOf(t, dir, "t")
		if err := os.WriteFile(torn, walData[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{SegmentRecords: 1 << 20})
		if err != nil {
			t.Fatalf("offset %d: open: %v", k, err)
		}
		intact := 0
		for _, end := range frames {
			if end <= k {
				intact++
			}
		}
		want := expectPrefix(recs, intact)
		got := s.Scan("t", 0, 1<<62)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("offset %d: recovered %d records, want %d intact\n got %v\nwant %v",
				k, len(got), intact, got, want)
		}
		// The torn tail must actually be truncated so new appends start a
		// clean frame chain.
		s.AppendLoose("t", logstore.Record{TemplateIdx: 9, ArrivalMs: 10_000})
		if got := s.Len("t"); got != intact+1 {
			t.Fatalf("offset %d: post-recovery append Len = %d, want %d", k, got, intact+1)
		}
		s.Close()
	}
}

// TestCorruptedByteRecovery flips one byte at every offset of the wal:
// recovery must keep every record before the corrupted frame, with the
// CRC rejecting the mutation.
func TestCorruptedByteRecovery(t *testing.T) {
	masterDir := t.TempDir()
	walPath, recs := recoveryFixture(t, masterDir)
	walData, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	frames := frameEnds(t, walData)

	for k := len(walMagic); k < len(walData); k++ {
		dir := t.TempDir()
		cloneTopicDir(t, masterDir, dir)
		mut := append([]byte(nil), walData...)
		mut[k] ^= 0x5a
		torn := walPathOf(t, dir, "t")
		if err := os.WriteFile(torn, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{SegmentRecords: 1 << 20})
		if err != nil {
			t.Fatalf("offset %d: open: %v", k, err)
		}
		// Every frame that ends at or before the corrupted byte is intact;
		// recovery stops at the first damaged frame (a flipped length
		// byte may detach all later frames — that is within contract).
		intactAtLeast := 0
		for _, end := range frames {
			if end <= k {
				intactAtLeast++
			}
		}
		got := s.Scan("t", 0, 1<<62)
		want := expectPrefix(recs, intactAtLeast)
		if len(got) < len(want) {
			t.Fatalf("offset %d: recovered %d records, want ≥ %d", k, len(got), len(want))
		}
		for i, r := range want {
			if got[i] != r {
				t.Fatalf("offset %d: surviving record %d = %+v, want %+v (CRC failed to localize damage)",
					k, i, got[i], r)
			}
		}
		s.Close()
	}
}

// frameEnds returns the end offset of every frame in a wal image.
func frameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := len(walMagic)
	for off < len(data) {
		_, next, err := nextFrame(data, off)
		if err != nil {
			t.Fatalf("master wal corrupt at %d: %v", off, err)
		}
		ends = append(ends, next)
		off = next
	}
	return ends
}

// cloneTopicDir copies a store directory tree (small test stores only).
func cloneTopicDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
