package segment

import (
	"encoding/binary"
	"math"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pinsql/internal/logstore"
)

// Options configures a durable store.
type Options struct {
	// TTLMs is the record time-to-live in milliseconds; ≤ 0 selects
	// logstore.DefaultTTLMs.
	TTLMs int64
	// SegmentRecords seals the active file once it holds this many
	// records (default 8192).
	SegmentRecords int
	// SegmentBytes seals the active file once its encoded size reaches
	// this many bytes (default 1 MiB).
	SegmentBytes int64
	// IndexEvery is the sparse time-index granularity in records
	// (default 64).
	IndexEvery int
	// SlackMs is the reordering tolerance of the strict Append path
	// (default 5000, matching the in-memory store).
	SlackMs int64
	// SyncEvery fsyncs a topic's active wal after every SyncEvery
	// appended records (and the registry delta after every interned
	// template), bounding how much a power failure or OS crash can lose.
	// 0 (the default) syncs only at seal and Close: every append is still
	// safe against a *process* crash — frames reach the OS page cache
	// before Append returns — but not against losing the machine.
	SyncEvery int
	// DisableMmap forces sealed-segment scans onto the plain file-read
	// path even where memory-mapping is available. The default (off)
	// memory-maps every sealed segment so scans decode zero-copy views
	// straight out of the page cache; the two paths produce identical
	// results.
	DisableMmap bool
}

func (o Options) withDefaults() Options {
	if o.TTLMs <= 0 {
		o.TTLMs = logstore.DefaultTTLMs
	}
	if o.SegmentRecords <= 0 {
		o.SegmentRecords = 8192
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.IndexEvery <= 0 {
		o.IndexEvery = 64
	}
	if o.SlackMs <= 0 {
		o.SlackMs = 5000
	}
	return o
}

// topic is the mutable per-topic state: sealed segments, the active
// write-ahead file, and its in-memory mirror (the memtable).
type topic struct {
	name string
	dir  string
	segs []*segfile // ascending seq

	seq      uint64 // seq the active wal will seal into
	wal      *os.File
	walBytes int64

	mem   []logstore.Record // mirror of the live wal records
	dirty bool              // mem needs a lazy stable sort

	prevArrival int64 // delta base of the next wal frame
	sinceSync   int   // wal records appended since the last fsync

	// refLast mirrors what the in-memory store's recs[len-1].ArrivalMs
	// would be for the same call sequence — the reference point of the
	// strict Append slack check. refValid is false when the in-memory
	// topic would be empty (never appended, or deleted by Expire), a
	// state that accepts any arrival.
	refLast  int64
	refValid bool

	watermark int64 // records with ArrivalMs < watermark are expired
}

// Store is a durable, crash-recoverable logstore.Backend. Directory
// layout:
//
//	<dir>/registry.snap          template-registry snapshot
//	<dir>/registry.delta         registry entries appended since the snapshot
//	<dir>/t/<topic>/NNNNNNNN.seg immutable arrival-sorted segments
//	<dir>/t/<topic>/NNNNNNNN.wal the active append-order write-ahead file
//	<dir>/t/<topic>/watermark    persisted TTL expiry cutoff
//
// Appends go to the wal (one CRC-framed record per write) and an in-memory
// mirror; when the wal reaches the segment size the mirror is
// stable-sorted by arrival and sealed into an immutable .seg file whose
// sparse time index lives in memory. Scans merge the sorted segments and
// the mirror, reproducing exactly the in-memory store's lazily sorted
// order. Expire deletes whole segments below the TTL cutoff in O(1) per
// segment and persists the cutoff as a watermark so partially expired
// segments stay filtered across restarts.
type Store struct {
	mu     sync.Mutex
	dir    string
	opt    Options
	topics map[string]*topic
	closed bool

	// The registry has its own lock so AppendRegistry can be called from
	// a collect.Registry intern hook (which holds the registry's lock)
	// while a scan callback holding s.mu resolves template indexes — the
	// two paths never contend on the same mutex.
	regMu      sync.Mutex
	regEntries []RegistryEntry
	regDelta   *os.File
	regClosed  bool

	// The sticky error has a leaf lock of its own: fail is reachable
	// from both s.mu and regMu critical sections.
	errMu sync.Mutex
	err   error // first unrecoverable disk error
}

var _ logstore.Backend = (*Store)(nil)

// Open creates or recovers a durable store rooted at dir. Recovery
// verifies every frame CRC, truncates the torn tail of each topic's
// active wal, removes wal files already sealed into a segment, deletes
// segments wholly below the persisted watermark, and rebuilds the sparse
// indexes and the template registry (snapshot plus delta replay).
func Open(dir string, opt Options) (*Store, error) {
	s := &Store{
		dir:    dir,
		opt:    opt.withDefaults(),
		topics: make(map[string]*topic),
	}
	if err := os.MkdirAll(filepath.Join(dir, "t"), 0o755); err != nil {
		return nil, err
	}
	if err := s.openRegistry(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(dir, "t"))
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name, uerr := url.PathUnescape(ent.Name())
		if uerr != nil {
			continue
		}
		t, terr := s.recoverTopic(name, filepath.Join(dir, "t", ent.Name()))
		if terr != nil {
			s.Close()
			return nil, terr
		}
		s.topics[name] = t
	}
	return s, nil
}

// recoverTopic rebuilds one topic from its directory.
func (s *Store) recoverTopic(name, dir string) (*topic, error) {
	t := &topic{name: name, dir: dir, watermark: readWatermark(dir)}

	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	segSeqs := map[uint64]bool{}
	var walSeqs []uint64
	for _, f := range files {
		base := f.Name()
		switch {
		case strings.HasSuffix(base, ".seg"):
			seq, perr := strconv.ParseUint(strings.TrimSuffix(base, ".seg"), 10, 64)
			if perr != nil {
				continue
			}
			sf, oerr := openSegment(filepath.Join(dir, base), seq, s.opt.IndexEvery, s.opt.DisableMmap)
			if oerr != nil {
				continue // unreadable segment: leave the file, skip it
			}
			if sf.maxMs < t.watermark {
				sf.close()
				os.Remove(sf.path) // wholly expired while we were down
				continue
			}
			sf.live = sf.count - sf.countBefore(t.watermark)
			t.segs = append(t.segs, sf)
			segSeqs[seq] = true
		case strings.HasSuffix(base, ".wal"):
			seq, perr := strconv.ParseUint(strings.TrimSuffix(base, ".wal"), 10, 64)
			if perr != nil {
				continue
			}
			walSeqs = append(walSeqs, seq)
		case strings.HasSuffix(base, ".tmp"):
			os.Remove(filepath.Join(dir, base)) // interrupted seal or snapshot
		}
	}
	sort.Slice(t.segs, func(i, j int) bool { return t.segs[i].seq < t.segs[j].seq })

	// A wal whose segment exists was sealed but not yet removed (crash
	// between rename and delete): the segment's copy wins.
	active := uint64(0)
	for _, seq := range walSeqs {
		if segSeqs[seq] || seq < active {
			os.Remove(filepath.Join(dir, walName(seq)))
			continue
		}
		if active != 0 {
			os.Remove(filepath.Join(dir, walName(active)))
		}
		active = seq
	}
	if active == 0 {
		for seq := range segSeqs {
			if seq >= active {
				active = seq + 1
			}
		}
		if active == 0 {
			active = 1
		}
	}
	t.seq = active
	if err := s.replayWal(t); err != nil {
		return nil, err
	}
	t.syncRef() // a fresh open starts from the sorted state
	return t, nil
}

// replayWal loads the active wal's intact frames into the memtable,
// truncating the torn tail, and leaves the file positioned for appends.
// A missing wal (fresh topic or crash right after sealing) is created.
func (s *Store) replayWal(t *topic) error {
	path := filepath.Join(t.dir, walName(t.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return err
	}
	good := len(walMagic)
	if len(data) < good || string(data[:good]) != walMagic {
		// Brand-new or headerless wal: start it over.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return err
		}
		good = len(walMagic)
	} else {
		prev := int64(0)
		off := good
		for off < len(data) {
			payload, next, ferr := nextFrame(data, off)
			if ferr != nil {
				break // torn tail: truncate from here
			}
			rec, derr := decodeRecord(payload, prev)
			if derr != nil {
				break
			}
			if rec.ArrivalMs >= t.watermark {
				if n := len(t.mem); n > 0 && rec.ArrivalMs < t.mem[n-1].ArrivalMs {
					t.dirty = true
				}
				t.mem = append(t.mem, rec)
			}
			prev = rec.ArrivalMs
			off = next
			good = next
		}
		t.prevArrival = prev
		if good < len(data) {
			if err := f.Truncate(int64(good)); err != nil {
				f.Close()
				return err
			}
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return err
	}
	t.wal = f
	t.walBytes = int64(good)
	t.sinceSync = 0
	return nil
}

// getTopic returns the topic, creating its directory and first wal on
// demand when create is set.
func (s *Store) getTopic(name string, create bool) (*topic, error) {
	if t, ok := s.topics[name]; ok {
		return t, nil
	}
	if !create {
		return nil, nil
	}
	dir := filepath.Join(s.dir, "t", url.PathEscape(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	t := &topic{name: name, dir: dir, seq: 1, watermark: math.MinInt64}
	if err := s.replayWal(t); err != nil {
		return nil, err
	}
	s.topics[name] = t
	return t, nil
}

// fail records the first unrecoverable disk error; later operations keep
// serving from memory but the store is no longer durable past this point.
func (s *Store) fail(err error) {
	if err == nil {
		return
	}
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Err returns the first unrecoverable disk error hit by an append or
// seal, if any. Append and AppendLoose keep accepting records into the
// memtable past such an error (an Append error strictly means the record
// was rejected, e.g. for ordering), so callers should check Err before
// trusting durability.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// TTL returns the configured time-to-live in milliseconds.
func (s *Store) TTL() int64 { return s.opt.TTLMs }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Append stores a record under the topic, rejecting records that arrive
// more than the slack window out of order, with the same observable rule
// as the in-memory store: the reference point is what that store's last
// slice element would be — the topic maximum while the topic is sorted,
// the most recently appended record while loose appends are pending. A
// nil return means the record was accepted; disk errors degrade
// durability without failing the append and are reported via Err.
func (s *Store) Append(topicName string, rec logstore.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	t, err := s.getTopic(topicName, true)
	if err != nil {
		s.fail(err)
		return err
	}
	if t.refValid && rec.ArrivalMs < t.refLast && t.refLast-rec.ArrivalMs > s.opt.SlackMs {
		return logstore.ErrUnsortedAppend
	}
	s.append(t, rec, false)
	return nil
}

// AppendLoose stores a record with no ordering requirement; ordering is
// restored lazily before the next scan (and eagerly when sealing).
func (s *Store) AppendLoose(topicName string, rec logstore.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	t, err := s.getTopic(topicName, true)
	if err != nil {
		s.fail(err)
		return
	}
	s.append(t, rec, true)
}

// append writes one record frame to the wal and mirrors it in the
// memtable, sealing when the active file reaches the segment size.
// Callers hold s.mu.
func (s *Store) append(t *topic, rec logstore.Record, loose bool) {
	var buf []byte
	buf = appendFrame(buf, appendRecord(nil, t.prevArrival, rec))
	if t.wal != nil {
		if _, err := t.wal.Write(buf); err != nil {
			s.fail(err)
		} else if t.sinceSync++; s.opt.SyncEvery > 0 && t.sinceSync >= s.opt.SyncEvery {
			if err := t.wal.Sync(); err != nil {
				s.fail(err)
			}
			t.sinceSync = 0
		}
	}
	t.walBytes += int64(len(buf))
	t.prevArrival = rec.ArrivalMs
	if n := len(t.mem); n > 0 && rec.ArrivalMs < t.mem[n-1].ArrivalMs {
		t.dirty = true
	}
	t.mem = append(t.mem, rec)
	// Mirror the in-memory store's last slice element: a loose append
	// always lands at the end; a strict append lands at the end only when
	// it is not insertion-sorted below the current last element.
	if loose || !t.refValid || rec.ArrivalMs >= t.refLast {
		t.refLast = rec.ArrivalMs
	}
	t.refValid = true
	if len(t.mem) >= s.opt.SegmentRecords || t.walBytes >= s.opt.SegmentBytes {
		if err := s.seal(t); err != nil {
			s.fail(err)
		}
	}
}

// ensureSorted lazily restores the memtable's stable arrival order.
func (t *topic) ensureSorted() {
	if !t.dirty {
		return
	}
	sort.SliceStable(t.mem, func(i, j int) bool { return t.mem[i].ArrivalMs < t.mem[j].ArrivalMs })
	t.dirty = false
}

// syncRef realigns the slack reference with the in-memory store's state
// after its ensureSorted ran for the topic: the last slice element
// becomes the live maximum, and a topic whose records have all expired
// behaves as empty (the in-memory Expire deletes such topics). Must be
// called exactly where the in-memory store sorts — Scan, ScanFunc,
// Bounds, and Expire — so the two backends keep accepting and rejecting
// the same strict appends.
func (t *topic) syncRef() {
	t.ensureSorted()
	t.refValid = false
	t.refLast = 0
	for _, sf := range t.segs {
		if sf.live > 0 && (!t.refValid || sf.maxMs > t.refLast) {
			t.refLast, t.refValid = sf.maxMs, true
		}
	}
	if n := len(t.mem); n > 0 {
		if last := t.mem[n-1].ArrivalMs; !t.refValid || last > t.refLast {
			t.refLast, t.refValid = last, true
		}
	}
}

// seal stable-sorts the memtable into an immutable segment, starts a
// fresh wal, and removes the sealed one. Callers hold s.mu.
func (s *Store) seal(t *topic) error {
	if len(t.mem) == 0 {
		return nil
	}
	t.ensureSorted()
	sf, err := writeSegment(t.dir, t.seq, t.mem, s.opt.IndexEvery, s.opt.DisableMmap)
	if err != nil {
		return err
	}
	t.segs = append(t.segs, sf)
	oldWal := filepath.Join(t.dir, walName(t.seq))
	if t.wal != nil {
		t.wal.Close()
		t.wal = nil
	}
	t.seq++
	t.mem = nil
	t.dirty = false
	t.prevArrival = 0
	if err := s.replayWal(t); err != nil { // creates the fresh, empty wal
		return err
	}
	os.Remove(oldWal)
	syncDir(t.dir)
	return nil
}

// mergeRun is one sorted source feeding a scan: a sealed segment iterator
// or the memtable.
type mergeRun struct {
	cur logstore.Record
	ok  bool
	adv func() (logstore.Record, bool)
}

// scanLocked streams the records of [fromMs, toMs) in arrival order with
// ingest-order ties, merging the sorted segments (in seal order) with the
// memtable. Callers hold s.mu.
func (s *Store) scanLocked(t *topic, fromMs, toMs int64, fn func(logstore.Record) bool) {
	if t == nil {
		return
	}
	if fromMs < t.watermark {
		fromMs = t.watermark
	}
	if fromMs >= toMs {
		return
	}
	var runs []*mergeRun
	for _, sf := range t.segs {
		if sf.live == 0 || sf.maxMs < fromMs || sf.minMs >= toMs {
			continue
		}
		it := sf.iterFrom(fromMs)
		runs = append(runs, &mergeRun{adv: it.next})
	}
	t.ensureSorted()
	lo := sort.Search(len(t.mem), func(i int) bool { return t.mem[i].ArrivalMs >= fromMs })
	if lo < len(t.mem) && t.mem[lo].ArrivalMs < toMs {
		i := lo
		runs = append(runs, &mergeRun{adv: func() (logstore.Record, bool) {
			if i >= len(t.mem) {
				return logstore.Record{}, false
			}
			rec := t.mem[i]
			i++
			return rec, true
		}})
	}
	// Prime each run past records below fromMs (segment iterators start
	// at the sparse-index point before the range).
	live := 0
	for _, r := range runs {
		for {
			r.cur, r.ok = r.adv()
			if !r.ok || r.cur.ArrivalMs >= fromMs {
				break
			}
		}
		if r.ok && r.cur.ArrivalMs >= toMs {
			r.ok = false
		}
		if r.ok {
			live++
		}
	}
	// K-way merge; ties resolve to the earliest run (segments in seal
	// order before the memtable), which reproduces a global stable sort
	// by arrival over the ingest sequence.
	for live > 0 {
		var best *mergeRun
		for _, r := range runs {
			if r.ok && (best == nil || r.cur.ArrivalMs < best.cur.ArrivalMs) {
				best = r
			}
		}
		if !fn(best.cur) {
			return
		}
		best.cur, best.ok = best.adv()
		if best.ok && best.cur.ArrivalMs >= toMs {
			best.ok = false
		}
		if !best.ok {
			live--
		}
	}
}

// ScanFunc streams the records of [fromMs, toMs) in the same order as the
// in-memory store, without materializing a slice. The callback runs under
// the store lock: it must not call back into the store.
func (s *Store) ScanFunc(topicName string, fromMs, toMs int64, fn func(logstore.Record) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, _ := s.getTopic(topicName, false)
	if t != nil {
		t.syncRef() // the in-memory store sorts here
	}
	s.scanLocked(t, fromMs, toMs, fn)
}

// Scan returns a copy of the records in [fromMs, toMs), sorted by arrival
// with ingest-order ties — byte-identical to the in-memory store's result
// for the same ingest sequence.
func (s *Store) Scan(topicName string, fromMs, toMs int64) []logstore.Record {
	var out []logstore.Record
	s.ScanFunc(topicName, fromMs, toMs, func(rec logstore.Record) bool {
		out = append(out, rec)
		return true
	})
	if out == nil {
		out = []logstore.Record{}
	}
	return out
}

// Len returns the number of live records in a topic.
func (s *Store) Len(topicName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, _ := s.getTopic(topicName, false)
	if t == nil {
		return 0
	}
	n := len(t.mem)
	for _, sf := range t.segs {
		n += sf.live
	}
	return n
}

// Topics returns the sorted names of topics with at least one live record.
func (s *Store) Topics() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.topics))
	for name, t := range s.topics {
		n := len(t.mem)
		for _, sf := range t.segs {
			n += sf.live
		}
		if n > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Bounds returns the minimum and maximum live ArrivalMs of a topic.
func (s *Store) Bounds(topicName string) (minMs, maxMs int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, _ := s.getTopic(topicName, false)
	if t == nil {
		return 0, 0, false
	}
	t.syncRef() // the in-memory store sorts here
	s.scanLocked(t, t.watermark, 1<<62, func(rec logstore.Record) bool {
		minMs, ok = rec.ArrivalMs, true
		return false
	})
	if !ok {
		return 0, 0, false
	}
	for _, sf := range t.segs {
		if sf.live > 0 && sf.maxMs > maxMs {
			maxMs = sf.maxMs
		}
	}
	t.ensureSorted()
	if n := len(t.mem); n > 0 && t.mem[n-1].ArrivalMs > maxMs {
		maxMs = t.mem[n-1].ArrivalMs
	}
	return minMs, maxMs, true
}

// Expire drops every record with ArrivalMs < nowMs − TTL and returns the
// number removed. Wholly expired segments are deleted in O(1) each;
// partially expired segments are masked by the watermark, which is
// persisted so the mask survives restarts.
func (s *Store) Expire(nowMs int64) int {
	cutoff := nowMs - s.opt.TTLMs
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, t := range s.topics {
		if cutoff > t.watermark {
			keep := t.segs[:0]
			for _, sf := range t.segs {
				switch {
				case sf.maxMs < cutoff:
					removed += sf.live
					sf.close()
					os.Remove(sf.path)
				case sf.minMs < cutoff:
					wasDead := sf.countBefore(t.watermark)
					nowDead := sf.countBefore(cutoff)
					removed += nowDead - wasDead
					sf.live = sf.count - nowDead
					keep = append(keep, sf)
				default:
					keep = append(keep, sf)
				}
			}
			t.segs = keep
			t.ensureSorted()
			lo := sort.Search(len(t.mem), func(i int) bool { return t.mem[i].ArrivalMs >= cutoff })
			if lo > 0 {
				removed += lo
				t.mem = t.mem[lo:]
			}
			t.watermark = cutoff
			if err := writeWatermark(t.dir, cutoff); err != nil {
				s.fail(err)
			}
		}
		// The in-memory store sorts every topic on Expire, even when
		// nothing is removed, so the slack reference resets regardless.
		t.syncRef()
	}
	return removed
}

// TruncateFrom drops every record in topic with ArrivalMs >= fromMs and
// returns the number of live records removed. It is the crash-recovery
// inverse of Append: a restarting consumer (the fleet) discards the
// partially committed suffix of its topic before replaying a window.
// Segments wholly at/after the boundary are deleted; a segment straddling
// it is rewritten in place (atomically, tmp + rename); the memtable is cut
// and the active wal rewritten so the truncation survives a further crash.
func (s *Store) TruncateFrom(topicName string, fromMs int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, _ := s.getTopic(topicName, false)
	if t == nil {
		return 0
	}
	removed := 0
	var orphans []logstore.Record // survivors of a failed segment rewrite
	keep := t.segs[:0]
	for _, sf := range t.segs {
		switch {
		case sf.minMs >= fromMs: // wholly cut
			removed += sf.live
			sf.close()
			os.Remove(sf.path)
		case sf.maxMs >= fromMs: // straddles the boundary: rewrite survivors
			var survivors []logstore.Record
			it := sf.iterFrom(math.MinInt64)
			for {
				rec, ok := it.next()
				if !ok || rec.ArrivalMs >= fromMs {
					break
				}
				survivors = append(survivors, rec)
			}
			// Records below the watermark are already dead; both the
			// survivor prefix and the dead prefix are prefixes of the
			// sorted segment, so the kept live count is their difference.
			deadKept := sf.countBefore(t.watermark)
			if deadKept > len(survivors) {
				deadKept = len(survivors)
			}
			removed += sf.live - (len(survivors) - deadKept)
			if len(survivors) == 0 {
				sf.close()
				os.Remove(sf.path)
				continue
			}
			nsf, err := writeSegment(t.dir, sf.seq, survivors, s.opt.IndexEvery, s.opt.DisableMmap)
			if err != nil {
				// Disk trouble: stay correct in memory by folding the
				// survivors into the active wal; durability is degraded
				// and flagged via Err.
				s.fail(err)
				sf.close()
				os.Remove(sf.path)
				orphans = append(orphans, survivors...)
				continue
			}
			sf.close()
			nsf.live = nsf.count - deadKept
			keep = append(keep, nsf)
		default:
			keep = append(keep, sf)
		}
	}
	t.segs = keep
	for _, rec := range orphans {
		s.append(t, rec, true)
	}

	t.ensureSorted()
	lo := sort.Search(len(t.mem), func(i int) bool { return t.mem[i].ArrivalMs >= fromMs })
	if cut := len(t.mem) - lo; cut > 0 {
		// The memtable holds no watermark-dead records (replay filters
		// them, Expire trims them), so every cut record was live.
		removed += cut
		t.mem = t.mem[:lo:lo]
		if err := s.rewriteWal(t); err != nil {
			s.fail(err)
		}
	}
	syncDir(t.dir)
	t.syncRef()
	return removed
}

// rewriteWal replaces the topic's active wal with frames for exactly the
// current memtable (in sorted order — observably identical, since scans
// sort lazily anyway). Written to a temporary file and renamed into place
// so a crash mid-rewrite leaves either the old or the new wal, never a
// mix. Callers hold s.mu.
func (s *Store) rewriteWal(t *topic) error {
	buf := []byte(walMagic)
	prev := int64(0)
	var payload []byte
	for _, rec := range t.mem {
		payload = appendRecord(payload[:0], prev, rec)
		buf = appendFrame(buf, payload)
		prev = rec.ArrivalMs
	}
	path := filepath.Join(t.dir, walName(t.seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	f, err := os.OpenFile(tmp, os.O_RDWR, 0o644)
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Seek(int64(len(buf)), 0); err != nil {
		f.Close()
		return err
	}
	if t.wal != nil {
		t.wal.Close()
	}
	t.wal = f
	t.walBytes = int64(len(buf))
	t.prevArrival = prev
	t.sinceSync = 0
	t.dirty = false
	return nil
}

// Seal forces the active wal of every topic into a sealed segment; mainly
// for tests and benchmarks exercising the sealed-scan path.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.topics {
		if err := s.seal(t); err != nil {
			s.fail(err)
			return err
		}
	}
	return nil
}

// Close snapshots the registry, syncs and closes every file, and marks
// the store unusable. It returns the first error encountered, including
// any sticky append error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.Err()
	}
	s.closed = true
	s.regMu.Lock()
	s.regClosed = true
	if err := s.snapshotRegistryLocked(); err != nil {
		s.fail(err)
	}
	if s.regDelta != nil {
		s.regDelta.Close()
		s.regDelta = nil
	}
	s.regMu.Unlock()
	for _, t := range s.topics {
		if t.wal != nil {
			if err := t.wal.Sync(); err != nil {
				s.fail(err)
			}
			t.wal.Close()
			t.wal = nil
		}
		for _, sf := range t.segs {
			sf.close()
		}
	}
	return s.Err()
}

// readWatermark loads a topic's persisted expiry cutoff. Absent or
// unreadable files yield math.MinInt64 — nothing is masked, arrival times
// may legitimately be negative, and the records simply wait for the next
// Expire.
func readWatermark(dir string) int64 {
	data, err := os.ReadFile(filepath.Join(dir, "watermark"))
	if err != nil {
		return math.MinInt64
	}
	payload, _, err := nextFrame(data, 0)
	if err != nil {
		return math.MinInt64
	}
	wm, n := binary.Varint(payload)
	if n <= 0 {
		return math.MinInt64
	}
	return wm
}

// writeWatermark atomically persists a topic's expiry cutoff.
func writeWatermark(dir string, wm int64) error {
	buf := appendFrame(nil, binary.AppendVarint(nil, wm))
	tmp := filepath.Join(dir, "watermark.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "watermark"))
}

// syncDir best-effort fsyncs a directory after a rename or remove so the
// metadata change is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
