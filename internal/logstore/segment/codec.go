// Package segment is the durable backend of the log-store layer: a
// topic-partitioned, segment-based on-disk store for compact query-log
// records, the crash-recoverable substitute for the paper's LogStore
// (§IV-A). Records are framed with a compact varint codec and a per-record
// CRC32; an active write-ahead file per topic absorbs out-of-order
// arrivals and is sealed into immutable, arrival-sorted segment files that
// carry a sparse in-memory time index. TTL expiry deletes whole segments;
// crash recovery truncates the torn tail of the active file and rebuilds
// every index from the sealed frames.
package segment

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/bits"

	"pinsql/internal/logstore"
)

// Frame layout (everything on disk is a sequence of frames after a file
// magic):
//
//	uvarint(len(payload)) | payload | crc32-IEEE(payload) LE u32
//
// A frame whose length header, payload, or CRC cannot be read intact marks
// the torn tail of an append-only file: recovery keeps every frame before
// it and truncates the rest.

// maxFrameLen bounds a single frame payload; anything larger is treated as
// corruption rather than an allocation request.
const maxFrameLen = 1 << 20

// errCorrupt reports a frame that is truncated, oversized, or fails its
// CRC — the decode position is not advanced past it.
var errCorrupt = errors.New("segment: corrupt or truncated frame")

// appendFrame appends one CRC-protected frame carrying payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// nextFrame parses the frame starting at data[off:]. It returns the
// payload (aliasing data) and the offset just past the frame, or
// errCorrupt if the frame is torn or fails its CRC.
func nextFrame(data []byte, off int) (payload []byte, next int, err error) {
	n, ln := binary.Uvarint(data[off:])
	if ln <= 0 || n > maxFrameLen {
		return nil, off, errCorrupt
	}
	start := off + ln
	end := start + int(n)
	if end+4 > len(data) {
		return nil, off, errCorrupt
	}
	payload = data[start:end]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[end:]) {
		return nil, off, errCorrupt
	}
	return payload, end + 4, nil
}

// Record payload layout, delta-encoded against the previous record in the
// same file (prev = 0 before the first record):
//
//	varint(ArrivalMs − prev) | uvarint(TemplateIdx) |
//	uvarint(reverse-bytes(float64-bits(ResponseMs))) | varint(ExaminedRows)
//
// Arrival deltas between neighbouring records are small, so the varint is
// short; reversing the float's bytes moves the always-set exponent bits to
// the low end so round response times also encode in a few bytes.

// appendRecord appends the payload encoding of rec to dst.
func appendRecord(dst []byte, prev int64, rec logstore.Record) []byte {
	dst = binary.AppendVarint(dst, rec.ArrivalMs-prev)
	dst = binary.AppendUvarint(dst, uint64(uint32(rec.TemplateIdx)))
	dst = binary.AppendUvarint(dst, bits.ReverseBytes64(math.Float64bits(rec.ResponseMs)))
	return binary.AppendVarint(dst, rec.ExaminedRows)
}

// decodeRecord decodes one record payload produced by appendRecord.
func decodeRecord(payload []byte, prev int64) (logstore.Record, error) {
	var rec logstore.Record
	delta, n := binary.Varint(payload)
	if n <= 0 {
		return rec, errCorrupt
	}
	payload = payload[n:]
	tpl, n := binary.Uvarint(payload)
	if n <= 0 || tpl > math.MaxUint32 {
		return rec, errCorrupt
	}
	payload = payload[n:]
	fbits, n := binary.Uvarint(payload)
	if n <= 0 {
		return rec, errCorrupt
	}
	payload = payload[n:]
	rows, n := binary.Varint(payload)
	if n <= 0 || n != len(payload) {
		return rec, errCorrupt
	}
	rec.ArrivalMs = prev + delta
	rec.TemplateIdx = int32(uint32(tpl))
	rec.ResponseMs = math.Float64frombits(bits.ReverseBytes64(fbits))
	rec.ExaminedRows = rows
	return rec, nil
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeString decodes a length-prefixed string from p, returning it and
// the number of bytes consumed.
func decodeString(p []byte) (string, int, error) {
	ln, n := binary.Uvarint(p)
	if n <= 0 || ln > maxFrameLen || int(ln) > len(p)-n {
		return "", 0, errCorrupt
	}
	return string(p[n : n+int(ln)]), n + int(ln), nil
}

// Registry entry payload layout:
//
//	uvarint(Index) | str(ID) | str(Text) | str(Table) | varint(Kind)

// appendRegistryEntry appends the payload encoding of a registry entry.
func appendRegistryEntry(dst []byte, e RegistryEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(uint32(e.Index)))
	dst = appendString(dst, e.ID)
	dst = appendString(dst, e.Text)
	dst = appendString(dst, e.Table)
	return binary.AppendVarint(dst, int64(e.Kind))
}

// decodeRegistryEntry decodes one registry entry payload.
func decodeRegistryEntry(payload []byte) (RegistryEntry, error) {
	var e RegistryEntry
	idx, n := binary.Uvarint(payload)
	if n <= 0 || idx > math.MaxUint32 {
		return e, errCorrupt
	}
	payload = payload[n:]
	var err error
	if e.ID, n, err = decodeString(payload); err != nil {
		return e, err
	}
	payload = payload[n:]
	if e.Text, n, err = decodeString(payload); err != nil {
		return e, err
	}
	payload = payload[n:]
	if e.Table, n, err = decodeString(payload); err != nil {
		return e, err
	}
	payload = payload[n:]
	kind, n := binary.Varint(payload)
	if n <= 0 || n != len(payload) || kind < math.MinInt32 || kind > math.MaxInt32 {
		return e, errCorrupt
	}
	e.Index = int32(uint32(idx))
	e.Kind = int32(kind)
	return e, nil
}
