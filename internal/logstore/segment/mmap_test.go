package segment

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pinsql/internal/logstore"
)

// populateStore fills a store with a deterministic mixed workload of
// strict and loose appends across several sealed segments, returning the
// topics written.
func populateStore(t *testing.T, s *Store, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topics := []string{"alpha", "beta"}
	for i := 0; i < 400; i++ {
		topic := topics[i%len(topics)]
		r := rec(int32(rng.Intn(40)), int64(i*25+rng.Intn(10)))
		if rng.Intn(5) == 0 {
			s.AppendLoose(topic, logstore.Record{
				TemplateIdx: r.TemplateIdx,
				ArrivalMs:   int64(rng.Intn(10_000)),
				ResponseMs:  r.ResponseMs,
			})
			continue
		}
		if err := s.Append(topic, r); err != nil && err != logstore.ErrUnsortedAppend {
			t.Fatal(err)
		}
	}
	return topics
}

// scanAll collects every record of a topic via ScanFunc.
func scanAll(s *Store, topic string) []logstore.Record {
	var out []logstore.Record
	s.ScanFunc(topic, -1<<60, 1<<60, func(r logstore.Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// TestMmapScanMatchesFileScan is the mmap differential test: the same
// on-disk state scanned through the memory-mapped path and through the
// plain file-read fallback must yield identical records, including after
// a close/reopen cycle (recovery re-verifies segments through whichever
// path is configured).
func TestMmapScanMatchesFileScan(t *testing.T) {
	dir := t.TempDir()
	opt := smallOpts()
	s := mustOpen(t, dir, opt)
	topics := populateStore(t, s, 7)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	optOff := opt
	optOff.DisableMmap = true

	mm := mustOpen(t, dir, opt)
	plain := mustOpen(t, dir, optOff)
	defer mm.Close()
	defer plain.Close()

	for _, topic := range topics {
		got := scanAll(mm, topic)
		want := scanAll(plain, topic)
		if len(got) == 0 {
			t.Fatalf("topic %s: empty scan", topic)
		}
		if len(got) != len(want) {
			t.Fatalf("topic %s: mmap scan %d records, file scan %d", topic, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("topic %s rec[%d]: mmap %+v vs file %+v", topic, i, got[i], want[i])
			}
		}
		// Ranged scans hit the sparse index + mid-segment start offsets.
		for _, r := range []struct{ from, to int64 }{{0, 500}, {1_000, 3_000}, {2_500, 9_000}} {
			a := mm.Scan(topic, r.from, r.to)
			b := plain.Scan(topic, r.from, r.to)
			if len(a) != len(b) {
				t.Fatalf("topic %s range [%d,%d): %d vs %d records", topic, r.from, r.to, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("topic %s range rec[%d]: %+v vs %+v", topic, i, a[i], b[i])
				}
			}
		}
	}
}

// TestMmapSegmentsAreMapped asserts the default path actually maps sealed
// segments (on unix), and that DisableMmap leaves them unmapped — so the
// differential test above genuinely compares the two modes.
func TestMmapSegmentsAreMapped(t *testing.T) {
	dir := t.TempDir()
	opt := smallOpts()
	s := mustOpen(t, dir, opt)
	defer s.Close()
	for i := 0; i < 64; i++ { // several sealed 16-record segments
		if err := s.Append("t", rec(int32(i), int64(i*100))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	tp := s.topics["t"]
	if len(tp.segs) == 0 {
		s.mu.Unlock()
		t.Fatal("no sealed segments")
	}
	mapped := 0
	for _, sf := range tp.segs {
		if sf.data != nil {
			mapped++
		}
	}
	s.mu.Unlock()
	if _, err := mmapFile(nil); err == nil {
		t.Fatal("mmapFile(nil) should fail")
	}
	if mapped == 0 {
		// Only acceptable on platforms without mmap support.
		if _, err := os.Open(filepath.Join(dir, "t")); err == nil && isUnixLike() {
			t.Fatal("no sealed segment was memory-mapped on a unix platform")
		}
	}

	off := mustOpen(t, t.TempDir(), Options{SegmentRecords: 16, IndexEvery: 4, DisableMmap: true})
	defer off.Close()
	for i := 0; i < 64; i++ {
		if err := off.Append("t", rec(int32(i), int64(i*100))); err != nil {
			t.Fatal(err)
		}
	}
	off.mu.Lock()
	for _, sf := range off.topics["t"].segs {
		if sf.data != nil {
			off.mu.Unlock()
			t.Fatal("DisableMmap left a segment mapped")
		}
	}
	off.mu.Unlock()
}

func isUnixLike() bool {
	// The build tags decide; probe via a mapped throwaway file.
	f, err := os.CreateTemp("", "mmapprobe")
	if err != nil {
		return false
	}
	defer os.Remove(f.Name())
	defer f.Close()
	if _, err := f.WriteString("x"); err != nil {
		return false
	}
	m, err := mmapFile(f)
	if err != nil {
		return false
	}
	munmapFile(m)
	return true
}

// TestMmapCorruptPrefixRecovery pins the clean-prefix contract through the
// mapped verifier: a segment damaged mid-file reopens with the intact
// prefix in both modes, yielding identical scans.
func TestMmapCorruptPrefixRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, smallOpts())
	for i := 0; i < 32; i++ { // two sealed segments
		if err := s.Append("t", rec(int32(i), int64(i*100))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte two-thirds into the first sealed segment's record area.
	segs, err := filepath.Glob(filepath.Join(dir, "t", "t", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	var target string
	for _, p := range segs {
		if strings.HasSuffix(p, segName(1)) {
			target = p
		}
	}
	if target == "" {
		target = segs[0]
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)*2/3] ^= 0xFF
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}

	mm := mustOpen(t, dir, smallOpts())
	got := scanAll(mm, "t")
	mm.Close()

	optOff := smallOpts()
	optOff.DisableMmap = true
	plain := mustOpen(t, dir, optOff)
	want := scanAll(plain, "t")
	plain.Close()

	if len(got) == 0 || len(got) >= 32 {
		t.Fatalf("clean prefix scan has %d records, want a proper subset", len(got))
	}
	if len(got) != len(want) {
		t.Fatalf("mmap %d records vs file %d after corruption", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rec[%d]: mmap %+v vs file %+v", i, got[i], want[i])
		}
	}
}
