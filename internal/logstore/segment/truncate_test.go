package segment

import (
	"math/rand"
	"reflect"
	"testing"

	"pinsql/internal/logstore"
)

// TestTruncateFromEquivalence drives the same ingest + TruncateFrom
// sequence into both backends and asserts identical removal counts and
// byte-identical scans — including after a close/reopen cycle, proving
// the truncation is durable (whole segments deleted, straddling segments
// rewritten, the wal rewritten).
func TestTruncateFromEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := Options{TTLMs: 1 << 60, SegmentRecords: 16, IndexEvery: 4}
	mem := logstore.New(1 << 60)
	seg := logstore.Backend(mustOpen(t, dir, opts))

	rng := rand.New(rand.NewSource(11))
	var clock int64
	ingest := func(n int) {
		for i := 0; i < n; i++ {
			clock += int64(rng.Intn(300))
			rec := logstore.Record{
				TemplateIdx:  int32(rng.Intn(40)),
				ArrivalMs:    clock,
				ResponseMs:   rng.Float64() * 500,
				ExaminedRows: int64(rng.Intn(1000)),
			}
			if rng.Intn(4) == 0 {
				rec.ArrivalMs -= int64(rng.Intn(10_000)) // loose stragglers
			}
			mem.AppendLoose("t", rec)
			seg.AppendLoose("t", rec)
		}
	}
	check := func(stage string) {
		t.Helper()
		if got, want := seg.Len("t"), mem.Len("t"); got != want {
			t.Fatalf("%s: Len seg %d, mem %d", stage, got, want)
		}
		got := seg.Scan("t", -1<<60, 1<<60)
		want := mem.Scan("t", -1<<60, 1<<60)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: scan diverged (%d vs %d records)", stage, len(got), len(want))
		}
	}

	// Several rounds: ingest enough to seal multiple 16-record segments,
	// truncate at a boundary that lands mid-segment, re-ingest, repeat.
	for round := 0; round < 4; round++ {
		ingest(120)
		check("after ingest")
		cut := clock - int64(rng.Intn(8000)) // lands inside sealed data
		r1 := mem.TruncateFrom("t", cut)
		r2 := seg.TruncateFrom("t", cut)
		if r1 != r2 {
			t.Fatalf("round %d: TruncateFrom(%d) removed mem %d, seg %d", round, cut, r1, r2)
		}
		if r1 == 0 {
			t.Fatalf("round %d: truncation removed nothing — test lost its teeth", round)
		}
		check("after truncate")
		// Appends after a truncation must still land and stay ordered.
		clock = cut // resume the clock at the cut so replay-style appends are in range
		ingest(40)
		check("after re-ingest")
	}

	// The truncation must survive restart: reopen and compare again.
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	seg = mustOpen(t, dir, opts)
	defer seg.Close()
	check("after reopen")
}

// TestTruncateFromEdgeCases pins the degenerate boundaries.
func TestTruncateFromEdgeCases(t *testing.T) {
	for _, backend := range []string{"mem", "segment"} {
		t.Run(backend, func(t *testing.T) {
			var st logstore.Backend
			if backend == "mem" {
				st = logstore.New(0)
			} else {
				st = mustOpen(t, t.TempDir(), Options{SegmentRecords: 4, IndexEvery: 2})
				defer st.Close()
			}
			if got := st.TruncateFrom("missing", 0); got != 0 {
				t.Fatalf("unknown topic removed %d", got)
			}
			for ms := int64(0); ms < 20; ms++ {
				st.AppendLoose("t", logstore.Record{ArrivalMs: ms * 100})
			}
			if got := st.TruncateFrom("t", 10_000); got != 0 {
				t.Fatalf("cut beyond max removed %d", got)
			}
			if got := st.TruncateFrom("t", 1000); got != 10 {
				t.Fatalf("mid cut removed %d, want 10", got)
			}
			if got := st.Len("t"); got != 10 {
				t.Fatalf("Len after mid cut = %d, want 10", got)
			}
			if got := st.TruncateFrom("t", -1); got != 10 {
				t.Fatalf("full cut removed %d, want 10", got)
			}
			if got := st.Len("t"); got != 0 {
				t.Fatalf("Len after full cut = %d, want 0", got)
			}
			if got := st.Topics(); len(got) != 0 {
				t.Fatalf("emptied topic still listed: %v", got)
			}
			// The topic must accept appends again from scratch.
			if err := st.Append("t", logstore.Record{ArrivalMs: 5}); err != nil {
				t.Fatalf("append after full truncation: %v", err)
			}
		})
	}
}
