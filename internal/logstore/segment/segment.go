package segment

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"pinsql/internal/logstore"
)

// errMmapUnavailable marks a file that cannot be memory-mapped (empty,
// oversized for the address space, or an unsupported platform); callers
// fall back to plain reads.
var errMmapUnavailable = errors.New("segment: mmap unavailable")

// Sealed segment file layout:
//
//	magic "PSEGSEG1"
//	frame(header): uvarint(version) | uvarint(count) | varint(minMs) | varint(maxMs)
//	count × frame(record), arrival-sorted, delta-encoded (prev starts at 0)
//
// Sealed segments are written in one shot to a temporary file and renamed
// into place, so a segment either exists completely or not at all; the CRC
// on every frame still guards against on-disk bit rot, and recovery keeps
// the clean prefix of a damaged segment.
const (
	segMagic = "PSEGSEG1"
	walMagic = "PSEGWAL1"
	regMagic = "PSEGREG1"

	formatVersion = 1
)

// indexEntry is one sparse time-index point of a sealed segment: every
// indexEvery-th record's file offset plus the state needed to resume delta
// decoding there.
type indexEntry struct {
	firstMs int64 // ArrivalMs of the record at off
	prevMs  int64 // delta base for decoding at off
	off     int64 // file offset of that record's frame
	recIdx  int   // ordinal of that record within the segment
}

// segfile is an immutable, arrival-sorted segment on disk plus its
// in-memory metadata. The sparse index is rebuilt from the frames at Open.
// When the platform supports it (and Options.DisableMmap is off) the file
// is memory-mapped: scans decode straight out of the mapping with no read
// syscalls, no bufio staging buffer, and — at open — no whole-file heap
// copy for CRC verification.
type segfile struct {
	path  string
	f     *os.File
	data  []byte // read-only mmap of the whole file; nil in fallback mode
	seq   uint64
	count int // records physically in the file
	live  int // records at/after the topic's TTL watermark
	minMs int64
	maxMs int64
	index []indexEntry
}

// mapIfEnabled tries to memory-map sf.f; any failure leaves the segment in
// plain-read mode, which every scan path handles identically.
func (sf *segfile) mapIfEnabled(disableMmap bool) {
	if disableMmap || sf.f == nil {
		return
	}
	if m, err := mmapFile(sf.f); err == nil {
		sf.data = m
	}
}

func segName(seq uint64) string { return fmt.Sprintf("%08d.seg", seq) }
func walName(seq uint64) string { return fmt.Sprintf("%08d.wal", seq) }

// writeSegment seals recs (already arrival-sorted) into an immutable
// segment file at dir/segName(seq), building the sparse index as it goes.
// The file is written to a temporary name, synced, and renamed into place.
func writeSegment(dir string, seq uint64, recs []logstore.Record, indexEvery int, disableMmap bool) (*segfile, error) {
	sf := &segfile{
		path:  filepath.Join(dir, segName(seq)),
		seq:   seq,
		count: len(recs),
		live:  len(recs),
		minMs: recs[0].ArrivalMs,
		maxMs: recs[len(recs)-1].ArrivalMs,
	}
	var buf []byte
	buf = append(buf, segMagic...)
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, formatVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(recs)))
	hdr = binary.AppendVarint(hdr, sf.minMs)
	hdr = binary.AppendVarint(hdr, sf.maxMs)
	buf = appendFrame(buf, hdr)

	prev := int64(0)
	var payload []byte
	for i, rec := range recs {
		if i%indexEvery == 0 {
			sf.index = append(sf.index, indexEntry{
				firstMs: rec.ArrivalMs,
				prevMs:  prev,
				off:     int64(len(buf)),
				recIdx:  i,
			})
		}
		payload = appendRecord(payload[:0], prev, rec)
		buf = appendFrame(buf, payload)
		prev = rec.ArrivalMs
	}

	tmp := sf.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, sf.path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if sf.f, err = os.Open(sf.path); err != nil {
		return nil, err
	}
	sf.mapIfEnabled(disableMmap)
	return sf, nil
}

// openSegment reads a sealed segment, verifying every frame's CRC and
// rebuilding the sparse index. A clean prefix of a damaged segment is kept
// (count and maxMs shrink to what decoded intact); a segment whose magic
// or header is unreadable is reported as an error. With mmap available the
// verification pass runs over the mapping directly — the fallback pays one
// whole-file heap copy via os.ReadFile.
func openSegment(path string, seq uint64, indexEvery int, disableMmap bool) (*segfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sf := &segfile{path: path, f: f, seq: seq}
	sf.mapIfEnabled(disableMmap)
	data := sf.data
	if data == nil {
		if data, err = os.ReadFile(path); err != nil {
			sf.close()
			return nil, err
		}
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		sf.close()
		return nil, fmt.Errorf("segment: %s: bad magic", path)
	}
	hdr, off, err := nextFrame(data, len(segMagic))
	if err != nil {
		sf.close()
		return nil, fmt.Errorf("segment: %s: unreadable header", path)
	}
	version, n := binary.Uvarint(hdr)
	if n <= 0 || version != formatVersion {
		sf.close()
		return nil, fmt.Errorf("segment: %s: unsupported version %d", path, version)
	}

	prev := int64(0)
	for off < len(data) {
		payload, next, ferr := nextFrame(data, off)
		if ferr != nil {
			break // bit rot past this point; keep the clean prefix
		}
		rec, derr := decodeRecord(payload, prev)
		if derr != nil {
			break
		}
		if sf.count%indexEvery == 0 {
			sf.index = append(sf.index, indexEntry{
				firstMs: rec.ArrivalMs,
				prevMs:  prev,
				off:     int64(off),
				recIdx:  sf.count,
			})
		}
		if sf.count == 0 {
			sf.minMs = rec.ArrivalMs
		}
		sf.maxMs = rec.ArrivalMs
		sf.count++
		prev = rec.ArrivalMs
		off = next
	}
	if sf.count == 0 {
		sf.close()
		return nil, fmt.Errorf("segment: %s: no intact records", path)
	}
	sf.live = sf.count
	return sf, nil
}

func (sf *segfile) close() {
	if sf.data != nil {
		munmapFile(sf.data)
		sf.data = nil
	}
	if sf.f != nil {
		sf.f.Close()
		sf.f = nil
	}
}

// startEntry returns the sparse-index entry to begin decoding from so that
// no record with ArrivalMs ≥ fromMs is missed: the last entry strictly
// before fromMs (ties may extend backwards across an index point).
func (sf *segfile) startEntry(fromMs int64) indexEntry {
	i := sort.Search(len(sf.index), func(i int) bool { return sf.index[i].firstMs >= fromMs })
	if i == 0 {
		return sf.index[0]
	}
	return sf.index[i-1]
}

// iter streams a sealed segment's records in order from the sparse-index
// point covering fromMs. A mapped segment decodes zero-copy views straight
// out of the mmap region (data non-nil); the fallback reads through a
// bufio staging buffer over the file.
type iter struct {
	// mapped mode
	data []byte // whole-file mapping; nil selects file mode
	off  int    // decode position within data

	// file mode
	br  *bufio.Reader
	buf []byte

	prev int64
	left int // records remaining in the segment from the start entry
}

func (sf *segfile) iterFrom(fromMs int64) *iter {
	e := sf.startEntry(fromMs)
	it := &iter{prev: e.prevMs, left: sf.count - e.recIdx}
	if sf.data != nil {
		it.data = sf.data
		it.off = int(e.off)
	} else {
		it.br = bufio.NewReaderSize(io.NewSectionReader(sf.f, e.off, 1<<62), 32*1024)
	}
	return it
}

// next decodes the next record; ok is false at the end of the segment.
// Frames already verified at open are trusted, but a read or decode error
// still terminates the iterator cleanly.
func (it *iter) next() (logstore.Record, bool) {
	if it.left <= 0 {
		return logstore.Record{}, false
	}
	var payload []byte
	if it.data != nil {
		// Zero-copy: the payload view aliases the mapping; no syscalls,
		// no staging copy. The CRC was verified at open (or the frame was
		// just written by this process), so it is not re-checked here —
		// exactly the file path's contract.
		ln, n := binary.Uvarint(it.data[it.off:])
		if n <= 0 || ln == 0 || ln > maxFrameLen {
			it.left = 0
			return logstore.Record{}, false
		}
		start := it.off + n
		end := start + int(ln)
		if end+4 > len(it.data) {
			it.left = 0
			return logstore.Record{}, false
		}
		payload = it.data[start:end]
		it.off = end + 4
	} else {
		ln, err := binary.ReadUvarint(it.br)
		if err != nil || ln == 0 || ln > maxFrameLen {
			it.left = 0
			return logstore.Record{}, false
		}
		need := int(ln) + 4
		if cap(it.buf) < need {
			it.buf = make([]byte, need)
		}
		it.buf = it.buf[:need]
		if _, err := io.ReadFull(it.br, it.buf); err != nil {
			it.left = 0
			return logstore.Record{}, false
		}
		payload = it.buf[:ln]
	}
	rec, err := decodeRecord(payload, it.prev)
	if err != nil {
		it.left = 0
		return logstore.Record{}, false
	}
	it.left--
	it.prev = rec.ArrivalMs
	return rec, true
}

// countBefore returns how many of the segment's records have
// ArrivalMs < cutoff, using the sparse index to skip whole blocks.
func (sf *segfile) countBefore(cutoff int64) int {
	if cutoff <= sf.minMs {
		return 0
	}
	if cutoff > sf.maxMs {
		return sf.count
	}
	e := sf.startEntry(cutoff)
	it := sf.iterFrom(cutoff)
	n := e.recIdx
	for {
		rec, ok := it.next()
		if !ok || rec.ArrivalMs >= cutoff {
			return n
		}
		n++
	}
}
