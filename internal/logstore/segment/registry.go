package segment

import (
	"fmt"
	"os"
	"path/filepath"
)

// The template registry maps each compact record's TemplateIdx back to a
// SQL template, so it must survive restarts for persisted records to stay
// meaningful. It is persisted as a snapshot file plus an append-only delta
// log of entries interned since the snapshot:
//
//	registry.snap:  magic "PSEGREG1" | entry frames (atomic rewrite)
//	registry.delta: magic "PSEGREG1" | entry frames (appended, torn tail
//	                truncated at Open)
//
// Open replays snapshot then delta; Close (or SnapshotRegistry) folds the
// delta back into a fresh snapshot.

// RegistryEntry is one persisted template-registry row. Index is the dense
// index recorded in logstore.Record.TemplateIdx; entries are persisted in
// index order starting at 0.
type RegistryEntry struct {
	Index int32
	ID    string
	Text  string
	Table string
	Kind  int32
}

func (s *Store) snapPath() string  { return filepath.Join(s.dir, "registry.snap") }
func (s *Store) deltaPath() string { return filepath.Join(s.dir, "registry.delta") }

// openRegistry loads the snapshot and delta logs and leaves the delta file
// open for appends, with any torn tail truncated.
func (s *Store) openRegistry() error {
	if data, err := os.ReadFile(s.snapPath()); err == nil {
		entries, _, rerr := decodeRegistryFrames(data)
		if rerr != nil {
			return fmt.Errorf("segment: registry snapshot: %w", rerr)
		}
		s.regEntries = entries
	} else if !os.IsNotExist(err) {
		return err
	}

	f, err := os.OpenFile(s.deltaPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(s.deltaPath())
	if err != nil {
		f.Close()
		return err
	}
	good := len(regMagic)
	if len(data) < good || string(data[:good]) != regMagic {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteAt([]byte(regMagic), 0); err != nil {
			f.Close()
			return err
		}
	} else {
		entries, clean, _ := decodeRegistryFrames(data)
		// A crash between the snapshot rename and the delta truncate in
		// snapshotRegistryLocked leaves the snapshot's entries duplicated
		// at the head of the delta: verify that prefix against the
		// snapshot and skip it, so replay is idempotent.
		covered := 0
		for covered < len(entries) && int(entries[covered].Index) < len(s.regEntries) {
			if entries[covered] != s.regEntries[entries[covered].Index] {
				f.Close()
				return fmt.Errorf("segment: registry delta entry %d disagrees with snapshot", entries[covered].Index)
			}
			covered++
		}
		// The delta's torn tail (a crash mid-append) is dropped; every
		// intact entry before it survives.
		s.regEntries = append(s.regEntries, entries[covered:]...)
		good = clean
		if covered == len(entries) && covered > 0 {
			// The snapshot covers the whole delta: complete the
			// interrupted truncate.
			good = len(regMagic)
		}
		if good < len(data) {
			if err := f.Truncate(int64(good)); err != nil {
				f.Close()
				return err
			}
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return err
	}
	s.regDelta = f
	return s.validateRegistry()
}

// validateRegistry checks the dense-index invariant after replay.
func (s *Store) validateRegistry() error {
	for i, e := range s.regEntries {
		if int(e.Index) != i {
			return fmt.Errorf("segment: registry entry %d has index %d (snapshot/delta mismatch)", i, e.Index)
		}
	}
	return nil
}

// decodeRegistryFrames decodes magic-prefixed entry frames, returning the
// intact entries and the clean byte length.
func decodeRegistryFrames(data []byte) ([]RegistryEntry, int, error) {
	if len(data) < len(regMagic) || string(data[:len(regMagic)]) != regMagic {
		return nil, 0, fmt.Errorf("bad magic")
	}
	var entries []RegistryEntry
	off := len(regMagic)
	for off < len(data) {
		payload, next, err := nextFrame(data, off)
		if err != nil {
			return entries, off, err
		}
		e, derr := decodeRegistryEntry(payload)
		if derr != nil {
			return entries, off, derr
		}
		entries = append(entries, e)
		off = next
	}
	return entries, off, nil
}

// RegistryEntries returns the persisted template-registry rows in dense
// index order, as recovered at Open plus any appended since.
func (s *Store) RegistryEntries() []RegistryEntry {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	out := make([]RegistryEntry, len(s.regEntries))
	copy(out, s.regEntries)
	return out
}

// AppendRegistry durably appends one newly interned template to the delta
// log. Entries must arrive in dense index order. It takes only the
// registry lock, never the record lock, so it is safe to call from a
// collect.Registry intern hook even while a scan is in progress.
func (s *Store) AppendRegistry(e RegistryEntry) error {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.regClosed {
		return os.ErrClosed
	}
	if int(e.Index) != len(s.regEntries) {
		return fmt.Errorf("segment: registry append index %d, want %d", e.Index, len(s.regEntries))
	}
	buf := appendFrame(nil, appendRegistryEntry(nil, e))
	if s.regDelta != nil {
		if _, err := s.regDelta.Write(buf); err != nil {
			s.fail(err)
			return err
		}
		// Records referencing this template must never outlive it: under a
		// periodic-fsync policy the registry syncs eagerly (interning is
		// rare after warm-up).
		if s.opt.SyncEvery > 0 {
			if err := s.regDelta.Sync(); err != nil {
				s.fail(err)
				return err
			}
		}
	}
	s.regEntries = append(s.regEntries, e)
	return nil
}

// SnapshotRegistry folds the delta log into a fresh atomic snapshot. Close
// does this automatically; long-running daemons may call it periodically
// to bound delta replay time.
func (s *Store) SnapshotRegistry() error {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.snapshotRegistryLocked()
}

func (s *Store) snapshotRegistryLocked() error {
	buf := []byte(regMagic)
	var payload []byte
	for _, e := range s.regEntries {
		payload = appendRegistryEntry(payload[:0], e)
		buf = appendFrame(buf, payload)
	}
	// The snapshot is fsynced before the rename, and the delta truncated
	// only after it: a crash at any point leaves either the old
	// snapshot + full delta or the new snapshot + a delta whose entries
	// it covers — both states openRegistry recovers from.
	tmp := s.snapPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	if s.regDelta != nil {
		if err := s.regDelta.Truncate(int64(len(regMagic))); err != nil {
			return err
		}
		if _, err := s.regDelta.Seek(int64(len(regMagic)), 0); err != nil {
			return err
		}
	}
	syncDir(s.dir)
	return nil
}
