package segment

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pinsql/internal/logstore"
)

// TestBackendEquivalence drives the same ingest run into the in-memory
// store and the durable segment store and asserts byte-identical Scan
// results over many windows — the contract that makes the diagnosis
// pipeline backend-agnostic. The run mixes strict and loose appends,
// multiple topics, ties, TTL expiry, and a close/reopen cycle (restart
// replay) in the middle.
func TestBackendEquivalence(t *testing.T) {
	dir := t.TempDir()
	mem := logstore.New(60_000)
	seg := logstore.Backend(mustOpen(t, dir, Options{TTLMs: 60_000, SegmentRecords: 32, IndexEvery: 4}))

	rng := rand.New(rand.NewSource(7))
	topics := []string{"alpha", "beta", "gamma"}
	clock := make(map[string]int64)
	used := map[string]map[int64]bool{}
	for _, topic := range topics {
		used[topic] = map[int64]bool{}
	}

	ingest := func(n int) {
		for i := 0; i < n; i++ {
			topic := topics[rng.Intn(len(topics))]
			clock[topic] += int64(rng.Intn(400))
			rec := logstore.Record{
				TemplateIdx:  int32(rng.Intn(50)),
				ArrivalMs:    clock[topic],
				ResponseMs:   rng.Float64() * 1000,
				ExaminedRows: int64(rng.Intn(10_000)),
			}
			switch draw := rng.Intn(6); {
			case draw == 0:
				// Loose append with an arbitrarily late completion.
				rec.ArrivalMs -= int64(rng.Intn(30_000))
				mem.AppendLoose(topic, rec)
				seg.AppendLoose(topic, rec)
				used[topic][rec.ArrivalMs] = true
			case draw == 1:
				// Out-of-order strict append, in or just beyond the slack
				// window, so acceptance depends on the slack reference both
				// backends must agree on. Its arrival is kept distinct from
				// every record already in the topic: when the in-memory
				// store has loose appends pending, it insertion-sorts into
				// an unsorted slice, and the position it lands at among
				// equal arrivals is a binary-search artifact no other
				// backend can reproduce.
				rec.ArrivalMs -= int64(1 + rng.Intn(6000))
				for used[topic][rec.ArrivalMs] {
					rec.ArrivalMs--
				}
				errMem := mem.Append(topic, rec)
				errSeg := seg.Append(topic, rec)
				if (errMem == nil) != (errSeg == nil) {
					t.Fatalf("out-of-order append divergence for %+v: mem=%v seg=%v", rec, errMem, errSeg)
				}
				if errMem == nil {
					used[topic][rec.ArrivalMs] = true
				}
			default:
				errMem := mem.Append(topic, rec)
				errSeg := seg.Append(topic, rec)
				if (errMem == nil) != (errSeg == nil) {
					t.Fatalf("append divergence for %+v: mem=%v seg=%v", rec, errMem, errSeg)
				}
				if errMem == nil {
					used[topic][rec.ArrivalMs] = true
				}
			}
		}
	}

	check := func(stage string) {
		t.Helper()
		if got, want := seg.Topics(), mem.Topics(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: topics: seg %v, mem %v", stage, got, want)
		}
		for _, topic := range topics {
			if got, want := seg.Len(topic), mem.Len(topic); got != want {
				t.Fatalf("%s: %s: Len seg %d, mem %d", stage, topic, got, want)
			}
			gmin, gmax, gok := seg.Bounds(topic)
			wmin, wmax, wok := mem.Bounds(topic)
			if gmin != wmin || gmax != wmax || gok != wok {
				t.Fatalf("%s: %s: Bounds seg (%d,%d,%v), mem (%d,%d,%v)", stage, topic, gmin, gmax, gok, wmin, wmax, wok)
			}
			// Whole-range scan plus a sweep of sub-windows.
			windows := [][2]int64{{0, 1 << 62}}
			for w := 0; w < 20; w++ {
				from := rng.Int63n(clock[topic] + 1000)
				to := from + rng.Int63n(20_000)
				windows = append(windows, [2]int64{from, to})
			}
			for _, win := range windows {
				got := seg.Scan(topic, win[0], win[1])
				want := mem.Scan(topic, win[0], win[1])
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: %s: Scan[%d,%d) diverged:\n seg %v\n mem %v",
						stage, topic, win[0], win[1], got, want)
				}
				// The streaming iterator must visit the same sequence.
				var streamed []logstore.Record
				seg.ScanFunc(topic, win[0], win[1], func(r logstore.Record) bool {
					streamed = append(streamed, r)
					return true
				})
				if len(streamed) != len(want) || (len(want) > 0 && !reflect.DeepEqual(streamed, want)) {
					t.Fatalf("%s: %s: ScanFunc diverged from Scan", stage, topic)
				}
			}
		}
	}

	ingest(600)
	check("initial ingest")

	// TTL expiry must remove the same records from both backends.
	now := clock["alpha"]
	if r1, r2 := mem.Expire(now), seg.Expire(now); r1 != r2 {
		t.Fatalf("Expire removed mem %d, seg %d", r1, r2)
	}
	check("after expire")

	// Restart replay: close the durable store, reopen, and the contract
	// must still hold — including for records that only ever lived in the
	// active wal.
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	seg = mustOpen(t, dir, Options{TTLMs: 60_000, SegmentRecords: 32, IndexEvery: 4})
	defer seg.Close()
	check("after reopen")

	ingest(300)
	check("ingest after reopen")

	now = clock["beta"]
	if r1, r2 := mem.Expire(now), seg.Expire(now); r1 != r2 {
		t.Fatalf("post-reopen Expire removed mem %d, seg %d", r1, r2)
	}
	check("expire after reopen")
}

// TestStrictAppendSlackParity pins accept/reject parity of the strict
// Append path on directed sequences. The key regression: an in-slack
// out-of-order append must not shift the slack reference off the topic
// maximum — for {1000, 998, -4001} the third record is 5001 ms behind
// the maximum and both backends must reject it (the in-memory store
// insertion-sorts 998 back into place, so its reference stays 1000).
func TestStrictAppendSlackParity(t *testing.T) {
	sequences := [][]int64{
		{1000, 998, -4001},
		{1000, 998, 999, -4001},
		{1000, 998, -4000}, // exactly at the slack boundary: accepted
		{1000, 9000, 3000, 5000, 4000, 6000},
		{1000, 998, 996, 994, -4001, -3999},
		{5000, 0, 10_000, 5000, 4999},
	}
	for si, seq := range sequences {
		mem := logstore.New(0)
		seg := mustOpen(t, t.TempDir(), Options{})
		for i, ms := range seq {
			r := logstore.Record{TemplateIdx: int32(i), ArrivalMs: ms}
			errMem := mem.Append("t", r)
			errSeg := seg.Append("t", r)
			if (errMem == nil) != (errSeg == nil) {
				t.Errorf("seq %d, append %d (arrival %d): mem=%v seg=%v", si, i, ms, errMem, errSeg)
			}
		}
		if got, want := seg.Scan("t", -1<<60, 1<<60), mem.Scan("t", -1<<60, 1<<60); !reflect.DeepEqual(got, want) {
			t.Errorf("seq %d: scan diverged:\n seg %v\n mem %v", si, got, want)
		}
		seg.Close()
	}
}

// TestSlackReferenceAcrossStates walks the reference through every state
// transition the in-memory store exposes — loose appends move it to the
// last appended record, a scan resorts it to the topic maximum, and full
// expiry resets the topic — asserting parity at each step.
func TestSlackReferenceAcrossStates(t *testing.T) {
	mem := logstore.New(0)
	seg := mustOpen(t, t.TempDir(), Options{})
	defer seg.Close()
	parity := func(stage string, ms int64) {
		t.Helper()
		r := logstore.Record{ArrivalMs: ms}
		errMem := mem.Append("t", r)
		errSeg := seg.Append("t", r)
		if (errMem == nil) != (errSeg == nil) {
			t.Fatalf("%s (arrival %d): mem=%v seg=%v", stage, ms, errMem, errSeg)
		}
	}

	parity("first", 10_000)
	loose := logstore.Record{ArrivalMs: 400}
	mem.AppendLoose("t", loose)
	seg.AppendLoose("t", loose)
	// Reference is now the loose record: 4800 ms behind it is in slack
	// even though it is 14400 ms behind the topic maximum.
	parity("behind pending loose", -4400)
	// A scan resorts both stores; the reference snaps back to the max.
	if got, want := seg.Scan("t", -1<<60, 1<<60), mem.Scan("t", -1<<60, 1<<60); !reflect.DeepEqual(got, want) {
		t.Fatalf("scan diverged:\n seg %v\n mem %v", got, want)
	}
	parity("behind max after sort", 4999) // 5001 behind 10000: rejected
	parity("at slack after sort", 5000)   // exactly 5000 behind: accepted

	// Full expiry empties the topic in both backends; arbitrarily old
	// arrivals are acceptable again.
	now := 100_000 + int64(logstore.DefaultTTLMs)
	if r1, r2 := mem.Expire(now), seg.Expire(now); r1 != r2 {
		t.Fatalf("Expire removed mem %d, seg %d", r1, r2)
	}
	parity("after full expiry", 123)
}

// TestBackendEquivalenceSeeds runs a compact version of the equivalence
// drive across many seeds so segment-boundary and tie alignments vary.
func TestBackendEquivalenceSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			mem := logstore.New(0)
			seg := mustOpen(t, dir, Options{SegmentRecords: 8 + int(seed), IndexEvery: 2})
			defer seg.Close()
			rng := rand.New(rand.NewSource(seed))
			clock := int64(0)
			for i := 0; i < 200; i++ {
				clock += int64(rng.Intn(100))
				rec := logstore.Record{TemplateIdx: int32(i), ArrivalMs: clock - int64(rng.Intn(5000))}
				mem.AppendLoose("t", rec)
				seg.AppendLoose("t", rec)
			}
			if got, want := seg.Scan("t", 0, 1<<62), mem.Scan("t", 0, 1<<62); !reflect.DeepEqual(got, want) {
				t.Fatalf("full scan diverged:\n seg %v\n mem %v", got, want)
			}
			for w := 0; w < 50; w++ {
				from := rng.Int63n(clock + 1)
				to := from + rng.Int63n(3000)
				if got, want := seg.Scan("t", from, to), mem.Scan("t", from, to); !reflect.DeepEqual(got, want) {
					t.Fatalf("Scan[%d,%d) diverged", from, to)
				}
			}
		})
	}
}
