package segment

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pinsql/internal/logstore"
)

// TestBackendEquivalence drives the same ingest run into the in-memory
// store and the durable segment store and asserts byte-identical Scan
// results over many windows — the contract that makes the diagnosis
// pipeline backend-agnostic. The run mixes strict and loose appends,
// multiple topics, ties, TTL expiry, and a close/reopen cycle (restart
// replay) in the middle.
func TestBackendEquivalence(t *testing.T) {
	dir := t.TempDir()
	mem := logstore.New(60_000)
	seg := logstore.Backend(mustOpen(t, dir, Options{TTLMs: 60_000, SegmentRecords: 32, IndexEvery: 4}))

	rng := rand.New(rand.NewSource(7))
	topics := []string{"alpha", "beta", "gamma"}
	clock := make(map[string]int64)

	ingest := func(n int) {
		for i := 0; i < n; i++ {
			topic := topics[rng.Intn(len(topics))]
			clock[topic] += int64(rng.Intn(400))
			rec := logstore.Record{
				TemplateIdx:  int32(rng.Intn(50)),
				ArrivalMs:    clock[topic],
				ResponseMs:   rng.Float64() * 1000,
				ExaminedRows: int64(rng.Intn(10_000)),
			}
			if rng.Intn(3) == 0 {
				// Loose append with an arbitrarily late completion.
				rec.ArrivalMs -= int64(rng.Intn(30_000))
				mem.AppendLoose(topic, rec)
				seg.AppendLoose(topic, rec)
			} else {
				errMem := mem.Append(topic, rec)
				errSeg := seg.Append(topic, rec)
				if (errMem == nil) != (errSeg == nil) {
					t.Fatalf("append divergence for %+v: mem=%v seg=%v", rec, errMem, errSeg)
				}
			}
		}
	}

	check := func(stage string) {
		t.Helper()
		if got, want := seg.Topics(), mem.Topics(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: topics: seg %v, mem %v", stage, got, want)
		}
		for _, topic := range topics {
			if got, want := seg.Len(topic), mem.Len(topic); got != want {
				t.Fatalf("%s: %s: Len seg %d, mem %d", stage, topic, got, want)
			}
			gmin, gmax, gok := seg.Bounds(topic)
			wmin, wmax, wok := mem.Bounds(topic)
			if gmin != wmin || gmax != wmax || gok != wok {
				t.Fatalf("%s: %s: Bounds seg (%d,%d,%v), mem (%d,%d,%v)", stage, topic, gmin, gmax, gok, wmin, wmax, wok)
			}
			// Whole-range scan plus a sweep of sub-windows.
			windows := [][2]int64{{0, 1 << 62}}
			for w := 0; w < 20; w++ {
				from := rng.Int63n(clock[topic] + 1000)
				to := from + rng.Int63n(20_000)
				windows = append(windows, [2]int64{from, to})
			}
			for _, win := range windows {
				got := seg.Scan(topic, win[0], win[1])
				want := mem.Scan(topic, win[0], win[1])
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: %s: Scan[%d,%d) diverged:\n seg %v\n mem %v",
						stage, topic, win[0], win[1], got, want)
				}
				// The streaming iterator must visit the same sequence.
				var streamed []logstore.Record
				seg.ScanFunc(topic, win[0], win[1], func(r logstore.Record) bool {
					streamed = append(streamed, r)
					return true
				})
				if len(streamed) != len(want) || (len(want) > 0 && !reflect.DeepEqual(streamed, want)) {
					t.Fatalf("%s: %s: ScanFunc diverged from Scan", stage, topic)
				}
			}
		}
	}

	ingest(600)
	check("initial ingest")

	// TTL expiry must remove the same records from both backends.
	now := clock["alpha"]
	if r1, r2 := mem.Expire(now), seg.Expire(now); r1 != r2 {
		t.Fatalf("Expire removed mem %d, seg %d", r1, r2)
	}
	check("after expire")

	// Restart replay: close the durable store, reopen, and the contract
	// must still hold — including for records that only ever lived in the
	// active wal.
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	seg = mustOpen(t, dir, Options{TTLMs: 60_000, SegmentRecords: 32, IndexEvery: 4})
	defer seg.Close()
	check("after reopen")

	ingest(300)
	check("ingest after reopen")

	now = clock["beta"]
	if r1, r2 := mem.Expire(now), seg.Expire(now); r1 != r2 {
		t.Fatalf("post-reopen Expire removed mem %d, seg %d", r1, r2)
	}
	check("expire after reopen")
}

// TestBackendEquivalenceSeeds runs a compact version of the equivalence
// drive across many seeds so segment-boundary and tie alignments vary.
func TestBackendEquivalenceSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			mem := logstore.New(0)
			seg := mustOpen(t, dir, Options{SegmentRecords: 8 + int(seed), IndexEvery: 2})
			defer seg.Close()
			rng := rand.New(rand.NewSource(seed))
			clock := int64(0)
			for i := 0; i < 200; i++ {
				clock += int64(rng.Intn(100))
				rec := logstore.Record{TemplateIdx: int32(i), ArrivalMs: clock - int64(rng.Intn(5000))}
				mem.AppendLoose("t", rec)
				seg.AppendLoose("t", rec)
			}
			if got, want := seg.Scan("t", 0, 1<<62), mem.Scan("t", 0, 1<<62); !reflect.DeepEqual(got, want) {
				t.Fatalf("full scan diverged:\n seg %v\n mem %v", got, want)
			}
			for w := 0; w < 50; w++ {
				from := rng.Int63n(clock + 1)
				to := from + rng.Int63n(3000)
				if got, want := seg.Scan("t", from, to), mem.Scan("t", from, to); !reflect.DeepEqual(got, want) {
					t.Fatalf("Scan[%d,%d) diverged", from, to)
				}
			}
		})
	}
}
