//go:build unix

package segment

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. The segment layer only maps
// sealed, immutable files, so a shared read-only mapping is safe: nothing
// writes to a .seg after the rename that created it, and TTL expiry
// unmaps before unlinking.
func mmapFile(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, errMmapUnavailable
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }
