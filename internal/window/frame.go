// Package window defines the columnar, index-keyed representation of one
// collection window — the single frame every diagnosis layer consumes.
//
// The paper's pipeline (§IV) is a straight dataflow: per-template
// aggregates plus the raw observation stream feed session estimation,
// H-SQL ranking and R-SQL identification. A Frame materializes that
// dataflow's working set exactly once, at collection time:
//
//	Templates  [T]        per-template aggregates, ascending Meta.Index
//	Off        [T+1]      observation group offsets (prefix sums)
//	Arrival    [N]int64   observation columns, SoA: obs of Templates[i]
//	Response   [N]float64 are Arrival/Response[Off[i]:Off[i+1]]
//	ByID       [T]        frame positions in ascending template-ID order
//	metrics    [seconds]  the instance metric series (Definition II.4)
//
// Inside the pipeline, templates are plain positions (0..T-1) into these
// columns; the string sqltemplate.ID appears only at the boundaries —
// reports, caseio documents, the HTTP control plane — via Meta.ID.
//
// Determinism: the frame fixes every iteration order the legacy map-keyed
// path reached through sorting. Observation groups hold each template's
// records sorted by arrival time with ties in log-store insertion order
// (exactly the store's scan order), and ByID replays the "iterate template
// IDs in ascending string order" float-accumulation order of the session
// estimator and impact ranker — so frame-based diagnosis is byte-identical
// to the legacy Snapshot+Queries path, for every Workers count.
package window

import (
	"sort"

	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// Meta identifies one SQL template inside a frame. It mirrors the
// collector registry's entry (collect.TemplateMeta) without importing it:
// collect builds frames, so the dependency must point this way.
type Meta struct {
	Index int32          // dense registry index
	ID    sqltemplate.ID // digest of the normalized statement
	Text  string         // normalized statement
	Table string
	Kind  dbsim.QueryKind
}

// Template is one SQL template's aggregated view over the window: the
// sum/count aggregation of §IV-A, one sample per second.
type Template struct {
	Meta Meta

	Count     timeseries.Series // #execution per second
	SumRT     timeseries.Series // Σ tres per second, milliseconds
	SumRows   timeseries.Series // Σ #examined_rows per second
	Throttled timeseries.Series // statements rejected by a throttle rule
}

// Frame is one collection window in columnar form. Frames are immutable
// once built (Finalize); sharing one across goroutines is safe.
type Frame struct {
	Topic   string
	StartMs int64
	Seconds int

	// Templates in ascending Meta.Index order. Position in this slice —
	// not Meta.Index, which is registry-global — is the frame's template
	// key.
	Templates []Template

	// Observation columns (SoA). The group of Templates[i] is
	// Arrival[Off[i]:Off[i+1]] / Response[Off[i]:Off[i+1]], sorted by
	// arrival time with ties in insertion order — the log store's scan
	// order, so the columns replace a store re-scan bit-for-bit.
	Off      []int32
	Arrival  []int64
	Response []float64

	// ByID[k] is the position of the k-th template in ascending Meta.ID
	// order: the iteration order for every float accumulation whose
	// result must match the legacy sorted-map walk.
	ByID []int32

	// Instance performance metrics (Definition II.4), one sample/second.
	ActiveSession timeseries.Series
	AvgSession    timeseries.Series
	CPUUsage      timeseries.Series
	IOPSUsage     timeseries.Series
	MemUsage      timeseries.Series
	QPS           timeseries.Series
	RowLockWaits  timeseries.Series
	MDLWaits      timeseries.Series

	posByID map[sqltemplate.ID]int32
}

// NumTemplates returns T, the number of templates in the frame.
func (f *Frame) NumTemplates() int { return len(f.Templates) }

// NumObs returns N, the number of raw observations in the frame.
func (f *Frame) NumObs() int { return len(f.Arrival) }

// Obs returns template position pos's observation columns.
func (f *Frame) Obs(pos int) (arrival []int64, response []float64) {
	lo, hi := f.Off[pos], f.Off[pos+1]
	return f.Arrival[lo:hi], f.Response[lo:hi]
}

// ObsLen returns the number of observations of template position pos.
func (f *Frame) ObsLen(pos int) int { return int(f.Off[pos+1] - f.Off[pos]) }

// Pos resolves a template ID to its frame position; ok is false when the
// frame has no such template. This is a boundary helper — inner pipeline
// stages should carry positions, not IDs.
func (f *Frame) Pos(id sqltemplate.ID) (pos int, ok bool) {
	p, ok := f.posByID[id]
	return int(p), ok
}

// Template returns the template at a frame position.
func (f *Frame) Template(pos int) *Template { return &f.Templates[pos] }

// Finalize fixes the frame's derived state after the builder filled
// Templates (ascending Meta.Index), Off/Arrival/Response and the metric
// series: each observation group is stable-sorted by arrival time and the
// ByID permutation plus the ID→position index are computed. The frame
// must not be mutated afterwards.
func (f *Frame) Finalize() {
	if len(f.Off) != len(f.Templates)+1 {
		panic("window: Off must have NumTemplates+1 entries")
	}
	f.sortGroups()
	f.FinalizeSorted()
}

// FinalizeSorted computes the derived state (ByID, the ID→position index)
// for a builder that guarantees every observation group is already sorted
// by arrival with insertion-order ties — the incremental frame build sorts
// only the dirty groups itself via SortObsGroup. The frame must not be
// mutated afterwards.
func (f *Frame) FinalizeSorted() {
	if len(f.Off) != len(f.Templates)+1 {
		panic("window: Off must have NumTemplates+1 entries")
	}
	f.ByID = make([]int32, len(f.Templates))
	for i := range f.ByID {
		f.ByID[i] = int32(i)
	}
	sort.Slice(f.ByID, func(i, j int) bool {
		return f.Templates[f.ByID[i]].Meta.ID < f.Templates[f.ByID[j]].Meta.ID
	})
	f.posByID = make(map[sqltemplate.ID]int32, len(f.Templates))
	for i := range f.Templates {
		f.posByID[f.Templates[i].Meta.ID] = int32(i)
	}
}

// FinalizeShared adopts the derived state of a previous frame over the
// same template set (identical IDs in identical positions): ByID and the
// ID index are order-only structures, so a delta build that did not add or
// remove templates reuses them without recomputation. Frames are immutable
// once finalized, making the sharing safe. Observation groups must already
// be sorted, as for FinalizeSorted.
func (f *Frame) FinalizeShared(prev *Frame) {
	if len(prev.Templates) != len(f.Templates) {
		panic("window: FinalizeShared across different template sets")
	}
	f.ByID = prev.ByID
	f.posByID = prev.posByID
}

// SortObsGroup stable-sorts one observation group by arrival time with
// ties in insertion order — the exact per-group ordering Finalize
// establishes. Incremental builders call it on dirty groups only.
func SortObsGroup(arrival []int64, response []float64) {
	n := len(arrival)
	if n < 2 || sorted(arrival) {
		return
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(i, j int) bool { return arrival[perm[i]] < arrival[perm[j]] })
	scratchA := append([]int64(nil), arrival...)
	scratchR := append([]float64(nil), response...)
	for i, p := range perm {
		arrival[i] = scratchA[p]
		response[i] = scratchR[p]
	}
}

// sortGroups stable-sorts every observation group by arrival time,
// reproducing the log store's scan order (sort.SliceStable by ArrivalMs
// over insertion-ordered appends, filtered per template).
func (f *Frame) sortGroups() {
	var perm []int32
	var scratchA []int64
	var scratchR []float64
	for t := 0; t < len(f.Templates); t++ {
		lo, hi := int(f.Off[t]), int(f.Off[t+1])
		n := hi - lo
		if n < 2 || sorted(f.Arrival[lo:hi]) {
			continue
		}
		perm = perm[:0]
		for i := 0; i < n; i++ {
			perm = append(perm, int32(i))
		}
		arr, resp := f.Arrival[lo:hi], f.Response[lo:hi]
		sort.SliceStable(perm, func(i, j int) bool { return arr[perm[i]] < arr[perm[j]] })
		scratchA = append(scratchA[:0], arr...)
		scratchR = append(scratchR[:0], resp...)
		for i, p := range perm {
			arr[i] = scratchA[p]
			resp[i] = scratchR[p]
		}
	}
}

func sorted(a []int64) bool {
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			return false
		}
	}
	return true
}
