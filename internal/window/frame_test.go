package window

import (
	"testing"

	"pinsql/internal/sqltemplate"
)

// build assembles a three-template frame with hand-placed observations:
// template 0 (ID "c") has out-of-order arrivals with a tie, template 1
// (ID "a") is empty, template 2 (ID "b") is already sorted.
func build(t *testing.T) *Frame {
	t.Helper()
	f := &Frame{
		Topic:   "test",
		StartMs: 0,
		Seconds: 10,
		Templates: []Template{
			{Meta: Meta{Index: 0, ID: sqltemplate.ID("c")}},
			{Meta: Meta{Index: 1, ID: sqltemplate.ID("a")}},
			{Meta: Meta{Index: 2, ID: sqltemplate.ID("b")}},
		},
		Off:      []int32{0, 3, 3, 5},
		Arrival:  []int64{500, 100, 500, 200, 300},
		Response: []float64{1, 2, 3, 4, 5},
	}
	f.Finalize()
	return f
}

func TestFinalizeSortsGroupsByArrival(t *testing.T) {
	f := build(t)
	arr, resp := f.Obs(0)
	wantArr := []int64{100, 500, 500}
	// The two 500ms arrivals tie: stable sort keeps their insertion order,
	// so responses 1 then 3 — the log store's scan tie-break.
	wantResp := []float64{2, 1, 3}
	for i := range wantArr {
		if arr[i] != wantArr[i] || resp[i] != wantResp[i] {
			t.Fatalf("group 0 = %v/%v, want %v/%v", arr, resp, wantArr, wantResp)
		}
	}
	if n := f.ObsLen(1); n != 0 {
		t.Errorf("empty group length = %d", n)
	}
	arr, _ = f.Obs(2)
	if arr[0] != 200 || arr[1] != 300 {
		t.Errorf("pre-sorted group disturbed: %v", arr)
	}
}

func TestFinalizeBuildsByIDPermutation(t *testing.T) {
	f := build(t)
	// Ascending template-ID order: a (pos 1), b (pos 2), c (pos 0).
	want := []int32{1, 2, 0}
	if len(f.ByID) != len(want) {
		t.Fatalf("ByID = %v", f.ByID)
	}
	for i, p := range want {
		if f.ByID[i] != p {
			t.Fatalf("ByID = %v, want %v", f.ByID, want)
		}
	}
}

func TestPosLookup(t *testing.T) {
	f := build(t)
	for _, tc := range []struct {
		id  string
		pos int
	}{{"a", 1}, {"b", 2}, {"c", 0}} {
		pos, ok := f.Pos(sqltemplate.ID(tc.id))
		if !ok || pos != tc.pos {
			t.Errorf("Pos(%q) = %d, %v", tc.id, pos, ok)
		}
	}
	if _, ok := f.Pos(sqltemplate.ID("missing")); ok {
		t.Error("Pos found a template that is not there")
	}
}

func TestCounts(t *testing.T) {
	f := build(t)
	if f.NumTemplates() != 3 {
		t.Errorf("NumTemplates = %d", f.NumTemplates())
	}
	if f.NumObs() != 5 {
		t.Errorf("NumObs = %d", f.NumObs())
	}
	if f.ObsLen(0) != 3 || f.ObsLen(2) != 2 {
		t.Errorf("ObsLen = %d, %d", f.ObsLen(0), f.ObsLen(2))
	}
}

func TestFinalizePanicsOnBadOffsets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Finalize accepted an Off table of the wrong length")
		}
	}()
	f := &Frame{
		Templates: []Template{{Meta: Meta{ID: sqltemplate.ID("x")}}},
		Off:       []int32{0}, // must be len(Templates)+1
	}
	f.Finalize()
}
