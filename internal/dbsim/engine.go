package dbsim

import (
	"errors"
	"math"
)

// Source supplies open-loop arrivals in non-decreasing ArrivalMs order.
type Source interface {
	// Peek returns the arrival time of the next query, or math.MaxInt64
	// when the source is exhausted.
	Peek() int64
	// Pop removes and returns the next query. It must only be called when
	// Peek() < math.MaxInt64.
	Pop() *Query
}

// SliceSource adapts a pre-sorted slice of queries into a Source.
type SliceSource struct {
	queries []*Query
	next    int
}

// NewSliceSource wraps queries, which must be sorted by ArrivalMs.
func NewSliceSource(queries []*Query) *SliceSource {
	return &SliceSource{queries: queries}
}

// Peek implements Source.
func (s *SliceSource) Peek() int64 {
	if s.next >= len(s.queries) {
		return math.MaxInt64
	}
	return s.queries[s.next].ArrivalMs
}

// Pop implements Source.
func (s *SliceSource) Pop() *Query {
	q := s.queries[s.next]
	s.next++
	return q
}

// RunOptions configures one simulation run.
type RunOptions struct {
	StartMs int64 // inclusive virtual start
	EndMs   int64 // exclusive virtual end; queries still in flight are dropped
	Source  Source
	// OnComplete, if non-nil, is invoked for every completed query and may
	// return a follow-up query (closed-loop stress testing). The returned
	// query's ArrivalMs must be ≥ the completion time. The engine never
	// touches finished after the callback returns, so closed-loop drivers
	// may recycle the finished Query as the returned one.
	OnComplete func(finished *Query, nowMs int64) *Query
	// Sink receives the query-log record of every finished statement.
	Sink LogSink
}

// blockEntry snapshots one blocking episode for the timeout FIFO.
type blockEntry struct {
	aq    *activeQuery
	since float64
}

// activeQuery is the engine's in-flight statement state.
type activeQuery struct {
	q            *Query
	demand       float64 // remaining service demand expressed as finish virtual time
	finishV      float64 // admission virtual time + demand
	blockedSince float64 // ms; > 0 while waiting on a lock
	lockWaitMs   float64
	tbl          *table
}

// The running and internal-arrival priority queues are typed binary heaps
// that replicate container/heap's exact sift order (append + siftUp on
// push; swap-root-with-last + siftDown on pop), so completion and arrival
// ties break identically to the old boxed implementation — the engine's
// output is bit-for-bit unchanged — while pushes no longer round-trip
// every element through interface{} and a vtable.

// pushRun inserts aq into the running heap (min finishV at the root).
func (e *engine) pushRun(aq *activeQuery) {
	h := append(e.running, aq)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].finishV < h[i].finishV) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	e.running = h
}

// popRun removes and returns the statement with the smallest finishV.
func (e *engine) popRun() *activeQuery {
	h := e.running
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].finishV < h[j].finishV {
			j = j2
		}
		if !(h[j].finishV < h[i].finishV) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	aq := h[n]
	h[n] = nil
	e.running = h[:n]
	return aq
}

// pushInternal inserts a closed-loop follow-up arrival.
func (e *engine) pushInternal(q *Query) {
	h := append(e.internal, q)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].ArrivalMs < h[i].ArrivalMs) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	e.internal = h
}

// popInternal removes and returns the earliest internal arrival.
func (e *engine) popInternal() *Query {
	h := e.internal
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].ArrivalMs < h[j].ArrivalMs {
			j = j2
		}
		if !(h[j].ArrivalMs < h[i].ArrivalMs) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	q := h[n]
	h[n] = nil
	e.internal = h[:n]
	return q
}

// engine holds one run's mutable state. Its heavy scratch structures
// (heaps, FIFO, freelist, wake map, throttle counters) live on the
// Instance and are reused across runs, so a warm instance simulates with
// no per-event — and almost no per-run — allocations.
type engine struct {
	in   *Instance
	opts RunOptions

	now  float64 // virtual milliseconds
	curV float64 // processor-sharing virtual time

	running  []*activeQuery // min-heap on finishV
	internal []*Query       // min-heap on ArrivalMs (closed-loop arrivals)
	blocked  int            // statements waiting on row or metadata locks
	// blockedFIFO tracks blocked statements in blocking order for the
	// lock wait timeout; entries are lazily skipped when stale (the
	// statement was woken, completed, or re-blocked since). fifoHead
	// indexes the logical front so dequeuing reuses the backing array
	// instead of reslicing it away.
	blockedFIFO []blockEntry
	fifoHead    int

	// free is the activeQuery freelist: completed and timed-out
	// statements return their (zeroed) state here for the next admission.
	free []*activeQuery

	seconds []SecondMetrics
	startMs int64

	// Per-second accumulators.
	cpuWorkMs    float64
	sessionInt   float64 // ∫ activeSessions dt over the current second
	ioOps        float64
	completed    int
	rowWaits     int
	mdlWaits     int
	lockTimeouts int
	curSecond    int64

	// SHOW STATUS sampling.
	sampleTime   float64
	sampleOffset int
	sampleTaken  bool

	// Throttle admission counts for the current second.
	throttleCount map[string]int

	// claimed is the wake-scan scratch: keys touched by still-blocked
	// earlier waiters in the current wakeRowWaiters pass. Stamping with a
	// generation counter clears it in O(1) per pass.
	claimed  map[int]uint64
	claimGen uint64
}

var errNoSource = errors.New("dbsim: RunOptions.Source is required")

// Run executes the simulation over [StartMs, EndMs) and returns one metric
// row per virtual second.
func (in *Instance) Run(opts RunOptions) ([]SecondMetrics, error) {
	if opts.Source == nil {
		return nil, errNoSource
	}
	if opts.EndMs <= opts.StartMs {
		return nil, errors.New("dbsim: EndMs must exceed StartMs")
	}
	totalSeconds := (opts.EndMs - opts.StartMs + 999) / 1000
	e := &in.scratch
	*e = engine{
		in:            in,
		opts:          opts,
		now:           float64(opts.StartMs),
		startMs:       opts.StartMs,
		seconds:       make([]SecondMetrics, 0, totalSeconds),
		curSecond:     0,
		running:       e.running[:0],
		internal:      e.internal[:0],
		blockedFIFO:   e.blockedFIFO[:0],
		free:          e.free,
		claimed:       e.claimed,
		claimGen:      e.claimGen,
		throttleCount: e.throttleCount,
	}
	if e.throttleCount == nil {
		e.throttleCount = make(map[string]int)
	}
	if e.claimed == nil {
		e.claimed = make(map[int]uint64)
	}
	e.scheduleSample()

	endMs := float64(opts.EndMs)
	for {
		ta := e.nextArrivalTime()
		td := e.nextDepartureTime()
		tt := e.nextLockTimeout()
		tnext := math.Min(math.Min(ta, td), tt)
		if tnext >= endMs {
			e.advance(endMs)
			break
		}
		e.advance(tnext)
		switch {
		case tt <= td && tt <= ta:
			e.timeoutFront()
		case td <= ta:
			e.completeMin()
		default:
			e.admit(e.popArrival())
		}
	}
	// Close a trailing partial second, if any (a run ending exactly on a
	// second boundary has already been flushed by advance).
	if e.now > float64(e.startMs+e.curSecond*1000) {
		e.flushSecond()
	}
	// Queries still in flight are dropped with the run; their lock state
	// must go with them, or a later Run on the same instance would face
	// phantom holders and demands that nobody will ever release.
	for _, tbl := range in.tables {
		for k := range tbl.rowLocks {
			delete(tbl.rowLocks, k)
		}
		for k := range tbl.demanded {
			delete(tbl.demanded, k)
		}
		tbl.rowWaiters = recycleWaiters(e, tbl.rowWaiters)
		tbl.mdlPending = recycleWaiters(e, tbl.mdlPending)
		tbl.mdlWaiters = recycleWaiters(e, tbl.mdlWaiters)
		if tbl.mdlHolder != nil {
			e.release(tbl.mdlHolder)
			tbl.mdlHolder = nil
		}
		tbl.inFlight = 0
	}
	seconds := e.seconds
	e.retire()
	return seconds, nil
}

// retire parks the engine's scratch back on the instance with every
// cross-run reference cleared, so dropped queries and sinks are not
// retained past the run.
func (e *engine) retire() {
	for i, aq := range e.running {
		e.release(aq)
		e.running[i] = nil
	}
	e.running = e.running[:0]
	for i := range e.internal {
		e.internal[i] = nil
	}
	e.internal = e.internal[:0]
	for i := range e.blockedFIFO {
		e.blockedFIFO[i] = blockEntry{}
	}
	e.blockedFIFO = e.blockedFIFO[:0]
	e.fifoHead = 0
	e.opts = RunOptions{}
	e.seconds = nil
	for k := range e.throttleCount {
		delete(e.throttleCount, k)
	}
}

// recycleWaiters empties a wait list into the freelist.
func recycleWaiters(e *engine, list []*activeQuery) []*activeQuery {
	for i, aq := range list {
		e.release(aq)
		list[i] = nil
	}
	return nil
}

// newActive takes an activeQuery from the freelist, or allocates one.
func (e *engine) newActive(q *Query, demand float64, tbl *table) *activeQuery {
	if n := len(e.free); n > 0 {
		aq := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		aq.q, aq.demand, aq.tbl = q, demand, tbl
		return aq
	}
	return &activeQuery{q: q, demand: demand, tbl: tbl}
}

// release zeroes a finished activeQuery and returns it to the freelist.
// Stale blockedFIFO entries may still point at it; their staleness check
// (blockedSince == recorded since) can never collide with a recycled
// occupant, because any new blocking episode happens strictly later in
// virtual time than the stale entry's timestamp.
func (e *engine) release(aq *activeQuery) {
	*aq = activeQuery{}
	e.free = append(e.free, aq)
}

func (e *engine) nextArrivalTime() float64 {
	t := e.opts.Source.Peek()
	if len(e.internal) > 0 && e.internal[0].ArrivalMs < t {
		t = e.internal[0].ArrivalMs
	}
	if t == math.MaxInt64 {
		return math.Inf(1)
	}
	return float64(t)
}

func (e *engine) popArrival() *Query {
	ts := e.opts.Source.Peek()
	if len(e.internal) > 0 && e.internal[0].ArrivalMs < ts {
		return e.popInternal()
	}
	return e.opts.Source.Pop()
}

// cpuRate returns the per-statement service rate under processor sharing:
// each running statement uses at most one core; beyond saturation the cores
// are shared equally.
func (e *engine) cpuRate() float64 {
	n := len(e.running)
	if n == 0 {
		return 0
	}
	rate := e.in.cores / float64(n)
	if rate > 1 {
		rate = 1
	}
	return rate
}

func (e *engine) nextDepartureTime() float64 {
	if len(e.running) == 0 {
		return math.Inf(1)
	}
	rate := e.cpuRate()
	return e.now + (e.running[0].finishV-e.curV)/rate
}

// advance moves virtual time to `to`, accruing per-second integrals and
// emitting SHOW STATUS samples crossed along the way.
func (e *engine) advance(to float64) {
	if to <= e.now {
		return
	}
	rate := e.cpuRate()
	nRunning := float64(len(e.running))
	sessions := nRunning + float64(e.blocked)
	cpuPerMs := nRunning * rate // total CPU-ms consumed per wall ms
	if cpuPerMs > e.in.cores {
		cpuPerMs = e.in.cores
	}

	for e.now < to {
		secondEnd := float64(e.startMs + (e.curSecond+1)*1000)
		step := math.Min(to, secondEnd)

		// SHOW STATUS sample inside this span?
		if !e.sampleTaken && e.sampleTime <= step && e.sampleTime >= e.now {
			e.recordSample(sessions)
		}

		dt := step - e.now
		e.cpuWorkMs += cpuPerMs * dt
		e.sessionInt += sessions * dt
		e.curV += rate * dt
		e.now = step

		if e.now == secondEnd {
			e.flushSecond()
		}
	}
}

// scheduleSample picks the hidden sub-second offset at which SHOW STATUS
// observes the active session count for the current second (Fig. 3).
func (e *engine) scheduleSample() {
	e.sampleOffset = e.in.rng.Intn(1000)
	e.sampleTime = float64(e.startMs+e.curSecond*1000) + float64(e.sampleOffset)
	e.sampleTaken = false
}

func (e *engine) recordSample(sessions float64) {
	e.ensureSecondSlot()
	row := &e.seconds[e.curSecond]
	row.ActiveSession = sessions
	row.SampleOffsetMs = e.sampleOffset
	e.sampleTaken = true
}

func (e *engine) ensureSecondSlot() {
	for int64(len(e.seconds)) <= e.curSecond {
		e.seconds = append(e.seconds, SecondMetrics{Second: int64(len(e.seconds))})
	}
}

// flushSecond finalizes the accumulators for the current second.
func (e *engine) flushSecond() {
	e.ensureSecondSlot()
	if !e.sampleTaken {
		// The sample instant fell in a span we never advanced through
		// (can only happen at the very end of the run); observe now.
		e.recordSample(float64(len(e.running) + e.blocked))
	}
	row := &e.seconds[e.curSecond]
	row.CPUUsage = 100 * e.cpuWorkMs / (e.in.cores * 1000)
	row.AvgActiveSession = e.sessionInt / 1000
	row.IOPSUsage = 100 * e.ioOps / e.in.cfg.IOPSCapacity
	row.MemUsage = math.Min(95, 30+0.3*row.AvgActiveSession)
	row.QPS = e.completed
	row.RowLockWaits = e.rowWaits
	row.MDLWaits = e.mdlWaits
	row.LockTimeouts = e.lockTimeouts

	e.cpuWorkMs, e.sessionInt, e.ioOps = 0, 0, 0
	e.completed, e.rowWaits, e.mdlWaits, e.lockTimeouts = 0, 0, 0, 0
	e.curSecond++
	for k := range e.throttleCount {
		delete(e.throttleCount, k)
	}
	e.scheduleSample()
}

// admit runs the admission pipeline for an arriving statement: throttling,
// Performance Schema overhead, metadata locks, then row locks.
func (e *engine) admit(q *Query) {
	if rule, ok := e.in.throttles[q.TemplateID]; ok {
		if rule.untilMs > 0 && int64(e.now) >= rule.untilMs {
			delete(e.in.throttles, q.TemplateID) // expired
		} else {
			e.throttleCount[q.TemplateID]++
			if float64(e.throttleCount[q.TemplateID]) > rule.maxQPS {
				e.emitLog(q, 0.1, 0, true)
				e.scheduleFollowUp(q)
				return
			}
		}
	}
	tbl, err := e.in.tableOf(q)
	if err != nil {
		// Unknown table: fail fast, still logged so tests can see it.
		e.emitLog(q, 0.1, 0, false)
		e.scheduleFollowUp(q)
		return
	}
	demand := q.ServiceMs * e.in.cfg.PerfSchema.overhead(q.Kind)
	if demand < 0.01 {
		demand = 0.01
	}
	aq := e.newActive(q, demand, tbl)

	if q.MDLExclusive {
		if tbl.inFlight > 0 || tbl.mdlHolder != nil || len(tbl.mdlPending) > 0 {
			tbl.mdlPending = append(tbl.mdlPending, aq)
			e.block(aq, false)
			return
		}
		tbl.mdlHolder = aq
		e.startRunning(aq)
		return
	}
	// Ordinary statement: a held or requested MDL freezes it.
	if tbl.mdlHolder != nil || len(tbl.mdlPending) > 0 {
		tbl.mdlWaiters = append(tbl.mdlWaiters, aq)
		e.block(aq, true)
		return
	}
	e.tryAcquireRowLocks(aq, true)
}

// tryAcquireRowLocks attempts to take every row lock aq needs; on conflict
// — a key held by someone else, or demanded by an earlier waiter (no
// barging) — the statement parks in the table's FIFO wait list and records
// its demands.
func (e *engine) tryAcquireRowLocks(aq *activeQuery, countWait bool) {
	tbl := aq.tbl
	for _, key := range aq.q.LockKeys {
		holder, held := tbl.rowLocks[key]
		if (held && holder != aq) || tbl.demanded[key] > 0 {
			tbl.rowWaiters = append(tbl.rowWaiters, aq)
			for _, k := range aq.q.LockKeys {
				tbl.demanded[k]++
			}
			if countWait {
				e.rowWaits++
			}
			e.block(aq, false)
			return
		}
	}
	e.grantRowLocks(aq)
}

// grantRowLocks takes aq's locks and starts it running.
func (e *engine) grantRowLocks(aq *activeQuery) {
	for _, key := range aq.q.LockKeys {
		aq.tbl.rowLocks[key] = aq
	}
	aq.tbl.inFlight++
	e.startRunning(aq)
}

func (e *engine) block(aq *activeQuery, mdl bool) {
	if aq.blockedSince == 0 {
		aq.blockedSince = e.now
		e.blocked++
		if mdl {
			e.mdlWaits++
		}
		if e.in.cfg.LockWaitTimeoutMs > 0 {
			if e.fifoHead == len(e.blockedFIFO) {
				// Queue drained: rewind onto the front of the backing
				// array instead of growing it forever.
				e.blockedFIFO = e.blockedFIFO[:0]
				e.fifoHead = 0
			}
			e.blockedFIFO = append(e.blockedFIFO, blockEntry{aq: aq, since: e.now})
		}
	}
}

// nextLockTimeout returns the virtual time of the earliest pending lock
// wait timeout, skipping stale FIFO entries.
func (e *engine) nextLockTimeout() float64 {
	if e.in.cfg.LockWaitTimeoutMs <= 0 {
		return math.Inf(1)
	}
	for e.fifoHead < len(e.blockedFIFO) {
		front := e.blockedFIFO[e.fifoHead]
		if front.aq.blockedSince == 0 || front.aq.blockedSince != front.since {
			e.blockedFIFO[e.fifoHead] = blockEntry{}
			e.fifoHead++
			continue
		}
		return front.since + float64(e.in.cfg.LockWaitTimeoutMs)
	}
	return math.Inf(1)
}

// timeoutFront aborts the longest-waiting blocked statement: it is removed
// from its wait queue, its lock demands are withdrawn, and an errored log
// record is emitted — the "Lock wait timeout exceeded" every MySQL user
// knows. The session it occupied is freed.
func (e *engine) timeoutFront() {
	front := e.blockedFIFO[e.fifoHead]
	e.blockedFIFO[e.fifoHead] = blockEntry{}
	e.fifoHead++
	aq := front.aq
	if aq.blockedSince == 0 || aq.blockedSince != front.since {
		return // stale entry: already woken
	}
	tbl := aq.tbl
	// Withdraw from whichever wait structure holds it.
	switch {
	case removeWaiter(&tbl.rowWaiters, aq):
		for _, key := range aq.q.LockKeys {
			tbl.demanded[key]--
		}
		// Its withdrawn demands may unblock later FIFO waiters.
		e.wakeRowWaiters(tbl)
	case removeWaiter(&tbl.mdlWaiters, aq):
		// Frozen statement gave up; nothing to release.
	case removeWaiter(&tbl.mdlPending, aq):
		// A queued DDL gave up. If it was the only reason the table was
		// frozen, release the ordinary statements it was holding back.
		if tbl.mdlHolder == nil && len(tbl.mdlPending) == 0 {
			waiters := tbl.mdlWaiters
			tbl.mdlWaiters = nil
			for _, w := range waiters {
				e.tryAcquireRowLocks(w, false)
			}
		}
	}
	wait := e.now - aq.blockedSince
	aq.blockedSince = 0
	e.blocked--
	e.lockTimeouts++
	e.emitTimeoutLog(aq.q, e.now-float64(aq.q.ArrivalMs), aq.lockWaitMs+wait)
	e.scheduleFollowUp(aq.q)
	e.release(aq)
}

// removeWaiter deletes aq from a wait list, preserving order.
func removeWaiter(list *[]*activeQuery, aq *activeQuery) bool {
	for i, w := range *list {
		if w == aq {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return true
		}
	}
	return false
}

func (e *engine) emitTimeoutLog(q *Query, respMs, lockWaitMs float64) {
	if e.opts.Sink == nil {
		return
	}
	e.opts.Sink(LogRecord{
		TemplateID:   q.TemplateID,
		SQL:          q.SQL,
		Table:        q.Table,
		Kind:         q.Kind,
		ArrivalMs:    q.ArrivalMs,
		ResponseMs:   respMs,
		ExaminedRows: 0,
		TimedOut:     true,
		LockWaitMs:   lockWaitMs,
	})
}

func (e *engine) startRunning(aq *activeQuery) {
	if aq.blockedSince > 0 {
		aq.lockWaitMs += e.now - aq.blockedSince
		aq.blockedSince = 0
		e.blocked--
	}
	aq.finishV = e.curV + aq.demand
	e.pushRun(aq)
}

// completeMin finishes the statement with the smallest finish virtual time.
func (e *engine) completeMin() {
	aq := e.popRun()
	q := aq.q
	tbl := aq.tbl

	respMs := e.now - float64(q.ArrivalMs)
	if respMs < 0 {
		respMs = 0
	}
	e.emitLog(q, respMs, aq.lockWaitMs, false)
	e.completed++
	e.ioOps += q.IOOps

	if q.MDLExclusive {
		tbl.mdlHolder = nil
		e.release(aq)
		e.releaseMDL(tbl)
	} else {
		for _, key := range q.LockKeys {
			if tbl.rowLocks[key] == aq {
				delete(tbl.rowLocks, key)
			}
		}
		tbl.inFlight--
		e.release(aq)
		e.wakeRowWaiters(tbl)
		e.maybeGrantMDL(tbl)
	}
	e.scheduleFollowUp(q)
}

// releaseMDL drains the queue after a DDL finishes: first any pending DDL,
// otherwise every frozen ordinary statement re-enters row-lock admission.
func (e *engine) releaseMDL(tbl *table) {
	if len(tbl.mdlPending) > 0 {
		next := tbl.mdlPending[0]
		tbl.mdlPending = tbl.mdlPending[1:]
		tbl.mdlHolder = next
		e.startRunning(next)
		return
	}
	waiters := tbl.mdlWaiters
	tbl.mdlWaiters = nil
	for _, aq := range waiters {
		e.tryAcquireRowLocks(aq, false)
	}
}

// maybeGrantMDL hands the metadata lock to a pending DDL once the table's
// in-flight statements have drained.
func (e *engine) maybeGrantMDL(tbl *table) {
	if tbl.inFlight == 0 && tbl.mdlHolder == nil && len(tbl.mdlPending) > 0 {
		next := tbl.mdlPending[0]
		tbl.mdlPending = tbl.mdlPending[1:]
		tbl.mdlHolder = next
		e.startRunning(next)
	}
}

// wakeRowWaiters re-examines the FIFO wait list after a lock release.
// Waiters are granted in arrival order; a waiter that still cannot run
// claims its keys so later waiters cannot jump over it on those keys.
func (e *engine) wakeRowWaiters(tbl *table) {
	if len(tbl.rowWaiters) == 0 {
		return
	}
	e.claimGen++
	gen := e.claimGen
	remaining := tbl.rowWaiters[:0]
	for i, aq := range tbl.rowWaiters {
		free := true
		for _, key := range aq.q.LockKeys {
			holder, held := tbl.rowLocks[key]
			if (held && holder != aq) || e.claimed[key] == gen {
				free = false
				break
			}
		}
		if !free {
			for _, key := range aq.q.LockKeys {
				e.claimed[key] = gen
			}
			remaining = append(remaining, tbl.rowWaiters[i])
			continue
		}
		for _, key := range aq.q.LockKeys {
			tbl.demanded[key]--
		}
		e.grantRowLocks(aq)
	}
	tbl.rowWaiters = remaining
}

func (e *engine) emitLog(q *Query, respMs, lockWaitMs float64, throttled bool) {
	if e.opts.Sink == nil {
		return
	}
	rows := q.ExaminedRows
	if throttled {
		rows = 0
	}
	e.opts.Sink(LogRecord{
		TemplateID:   q.TemplateID,
		SQL:          q.SQL,
		Table:        q.Table,
		Kind:         q.Kind,
		ArrivalMs:    q.ArrivalMs,
		ResponseMs:   respMs,
		ExaminedRows: rows,
		Throttled:    throttled,
		LockWaitMs:   lockWaitMs,
	})
}

func (e *engine) scheduleFollowUp(q *Query) {
	if e.opts.OnComplete == nil {
		return
	}
	next := e.opts.OnComplete(q, int64(e.now))
	if next == nil {
		return
	}
	if next.ArrivalMs < int64(e.now) {
		next.ArrivalMs = int64(e.now)
	}
	e.pushInternal(next)
}
