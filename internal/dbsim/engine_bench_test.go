package dbsim

// Microbenchmarks and allocation budgets for the simulation event loop.
// BenchmarkEngineStep guards the typed-heap event loop (one iteration = one
// full mixed-workload run); TestRunAllocBudget locks in the steady-state
// allocation ceiling with testing.AllocsPerRun so a regression that
// reintroduces per-event allocations fails loudly.

import (
	"math/rand"
	"testing"
)

// benchWorkload builds a reproducible mixed open-loop workload: point
// reads, lock-taking updates (narrow and wide footprints), and a sprinkle
// of DDL, all on two tables — every admission path of the engine.
func benchWorkload(seed int64, n int) []*Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*Query, 0, n)
	var t int64
	for i := 0; i < n; i++ {
		t += rng.Int63n(8)
		q := &Query{
			TemplateID: "T", SQL: "x", Table: "sales",
			Kind: KindSelect, ArrivalMs: t,
			ServiceMs: 0.5 + rng.Float64()*40, ExaminedRows: int64(rng.Intn(100)), IOOps: rng.Float64(),
		}
		switch rng.Intn(5) {
		case 0:
			q.Kind = KindUpdate
			q.LockKeys = []int{rng.Intn(8)}
		case 1:
			q.Kind = KindUpdate
			q.LockKeys = []int{rng.Intn(8), 8 + rng.Intn(8)}
		case 2:
			if i%977 == 0 {
				q.Kind = KindDDL
				q.MDLExclusive = true
				q.ServiceMs = 200
			}
		}
		qs = append(qs, q)
	}
	return qs
}

func benchInstance() *Instance {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.LockWaitTimeoutMs = 2000
	in := NewInstance(cfg)
	in.CreateTable("sales", 1_000_000)
	in.CreateTable("users", 500_000)
	return in
}

// BenchmarkEngineStep measures the event loop on a contended mixed
// workload. b.N counts whole runs; events/op and allocs/op are the numbers
// the zero-allocation rewrite pins down.
func BenchmarkEngineStep(b *testing.B) {
	const nq = 5000
	in := benchInstance()
	qs := benchWorkload(1, nq)
	var events int64
	sink := func(LogRecord) { events++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := in.Run(RunOptions{
			StartMs: 0, EndMs: 60_000,
			Source: NewSliceSource(qs),
			Sink:   sink,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// TestRunAllocBudget pins the steady-state allocation count of one warm
// run: after the instance's engine scratch is primed, a 5000-event run may
// allocate only run-scoped state (the returned metrics slice, the source)
// — not per-event garbage. The pre-rewrite event loop spent ~4.3
// allocations per simulated event on this workload (boxed heap growth, one
// activeQuery per admission, a fresh wake-scan map per lock release); the
// budget asserts the ≥50% reduction with a two-orders-of-magnitude margin.
func TestRunAllocBudget(t *testing.T) {
	const nq = 5000
	in := benchInstance()
	qs := benchWorkload(1, nq)
	events := 0
	run := func() {
		_, err := in.Run(RunOptions{
			StartMs: 0, EndMs: 60_000,
			Source: NewSliceSource(qs),
			Sink:   func(LogRecord) { events++ },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the engine scratch (freelist, heaps, FIFO backing arrays)
	events = 0
	allocs := testing.AllocsPerRun(5, run)
	perEvent := allocs / float64(events/6) // AllocsPerRun ran it 5+1 times
	t.Logf("warm run: %.0f allocs total, %.4f allocs/event", allocs, perEvent)
	// Budget: ≤ 0.05 allocs per simulated event (pre-rewrite: ~1.1).
	if perEvent > 0.05 {
		t.Errorf("allocations per simulated event = %.4f, budget 0.05", perEvent)
	}
}
