package dbsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomWorkload builds a reproducible batch of mixed queries.
func randomWorkload(seed int64, n int, horizonMs int64) []*Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*Query, 0, n)
	var t int64
	for i := 0; i < n; i++ {
		t += 1 + rng.Int63n(2*horizonMs/int64(n)) // strictly increasing: arrivals double as unique keys
		q := mkQuery("T", "sales", KindSelect, t, 1+rng.Float64()*50)
		switch rng.Intn(4) {
		case 0:
			q.Kind = KindUpdate
			q.LockKeys = []int{rng.Intn(10)}
		case 1:
			q.Kind = KindUpdate
			q.LockKeys = []int{rng.Intn(10), 10 + rng.Intn(10)}
		}
		qs = append(qs, q)
	}
	return qs
}

// Property: CPU work accounted per second never exceeds capacity, sessions
// are non-negative, and the number of completed queries matches the log.
func TestConservationProperties(t *testing.T) {
	f := func(seed int64) bool {
		in := testInstance(2)
		qs := randomWorkload(seed, 120, 20_000)
		var logged int
		secs, err := in.Run(RunOptions{
			StartMs: 0,
			EndMs:   60_000,
			Source:  NewSliceSource(qs),
			Sink:    func(LogRecord) { logged++ },
		})
		if err != nil {
			return false
		}
		var totalQPS int
		for _, s := range secs {
			if s.CPUUsage < -1e-9 || s.CPUUsage > 100+1e-9 {
				return false
			}
			if s.ActiveSession < 0 || s.AvgActiveSession < -1e-9 {
				return false
			}
			totalQPS += s.QPS
		}
		return totalQPS == logged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every response time is at least the service demand (queueing
// and locks only add latency), and lock wait never exceeds response time.
func TestResponseDominatesServiceProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := testInstance(1) // heavy contention
		qs := randomWorkload(seed, 80, 10_000)
		demand := make(map[*Query]float64, len(qs))
		for _, q := range qs {
			demand[q] = q.ServiceMs
		}
		type rec struct{ resp, wait float64 }
		got := map[string][]rec{}
		byArrival := map[int64]float64{}
		for _, q := range qs {
			byArrival[q.ArrivalMs] = q.ServiceMs
		}
		_, err := in.Run(RunOptions{
			StartMs: 0,
			EndMs:   120_000,
			Source:  NewSliceSource(qs),
			Sink: func(r LogRecord) {
				got[r.TemplateID] = append(got[r.TemplateID], rec{r.ResponseMs, r.LockWaitMs})
				if svc, ok := byArrival[r.ArrivalMs]; ok {
					if r.ResponseMs+1e-6 < svc {
						t.Errorf("response %v < service %v", r.ResponseMs, svc)
					}
				}
				if r.LockWaitMs > r.ResponseMs+1e-6 {
					t.Errorf("lock wait %v > response %v", r.LockWaitMs, r.ResponseMs)
				}
			},
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: simulation is deterministic for a fixed seed.
func TestDeterminismProperty(t *testing.T) {
	run := func(seed int64) ([]SecondMetrics, []LogRecord) {
		cfg := DefaultConfig()
		cfg.Seed = seed
		in := NewInstance(cfg)
		in.CreateTable("sales", 1000)
		var log []LogRecord
		secs, err := in.Run(RunOptions{
			StartMs: 0,
			EndMs:   30_000,
			Source:  NewSliceSource(randomWorkload(seed, 100, 25_000)),
			Sink:    func(r LogRecord) { log = append(log, r) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return secs, log
	}
	a1, l1 := run(7)
	a2, l2 := run(7)
	if len(a1) != len(a2) || len(l1) != len(l2) {
		t.Fatalf("lengths differ: %d/%d secs, %d/%d log", len(a1), len(a2), len(l1), len(l2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("metrics differ at second %d: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("log differs at %d: %+v vs %+v", i, l1[i], l2[i])
		}
	}
}

// Property: the time-averaged session integral equals the total response
// time of completed queries when the window fully contains all activity
// (Little's law bookkeeping).
func TestSessionIntegralMatchesResponseMass(t *testing.T) {
	in := testInstance(4)
	qs := randomWorkload(3, 60, 5_000)
	var respMass float64
	secs, err := in.Run(RunOptions{
		StartMs: 0,
		EndMs:   300_000, // generous horizon: everything completes
		Source:  NewSliceSource(qs),
		Sink:    func(r LogRecord) { respMass += r.ResponseMs },
	})
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for _, s := range secs {
		integral += s.AvgActiveSession * 1000
	}
	if diff := integral - respMass; diff > 1e-3 || diff < -1e-3 {
		t.Errorf("session integral %v ≠ response mass %v", integral, respMass)
	}
}
