package dbsim

import (
	"math"
	"testing"
)

// collect runs the instance over the given queries and returns metrics + log.
func collect(t *testing.T, in *Instance, queries []*Query, startMs, endMs int64) ([]SecondMetrics, []LogRecord) {
	t.Helper()
	var log []LogRecord
	secs, err := in.Run(RunOptions{
		StartMs: startMs,
		EndMs:   endMs,
		Source:  NewSliceSource(queries),
		Sink:    func(r LogRecord) { log = append(log, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return secs, log
}

func testInstance(cores int) *Instance {
	cfg := DefaultConfig()
	cfg.Cores = cores
	in := NewInstance(cfg)
	in.CreateTable("sales", 1_000_000)
	in.CreateTable("users", 500_000)
	return in
}

func mkQuery(tpl, table string, kind QueryKind, arrival int64, service float64) *Query {
	return &Query{
		TemplateID:   tpl,
		SQL:          tpl,
		Table:        table,
		Kind:         kind,
		ArrivalMs:    arrival,
		ServiceMs:    service,
		ExaminedRows: 10,
		IOOps:        1,
	}
}

func TestSingleQueryResponseEqualsService(t *testing.T) {
	in := testInstance(4)
	q := mkQuery("T1", "sales", KindSelect, 100, 50)
	secs, log := collect(t, in, []*Query{q}, 0, 1000)
	if len(log) != 1 {
		t.Fatalf("log length = %d, want 1", len(log))
	}
	if !almostEq(log[0].ResponseMs, 50, 1e-6) {
		t.Errorf("response = %v, want 50", log[0].ResponseMs)
	}
	if len(secs) != 1 {
		t.Fatalf("seconds = %d, want 1", len(secs))
	}
	if secs[0].QPS != 1 {
		t.Errorf("QPS = %d, want 1", secs[0].QPS)
	}
	// 50 ms of one core over a second on a 4-core box = 1.25 %.
	if !almostEq(secs[0].CPUUsage, 1.25, 1e-6) {
		t.Errorf("CPU = %v, want 1.25", secs[0].CPUUsage)
	}
}

func TestProcessorSharingSlowdown(t *testing.T) {
	in := testInstance(1)
	// Two simultaneous 100 ms queries on one core: processor sharing
	// finishes both at 200 ms.
	qs := []*Query{
		mkQuery("A", "sales", KindSelect, 0, 100),
		mkQuery("B", "sales", KindSelect, 0, 100),
	}
	_, log := collect(t, in, qs, 0, 1000)
	if len(log) != 2 {
		t.Fatalf("log length = %d", len(log))
	}
	for _, r := range log {
		if !almostEq(r.ResponseMs, 200, 1e-6) {
			t.Errorf("%s response = %v, want 200", r.TemplateID, r.ResponseMs)
		}
	}
}

func TestProcessorSharingManyCores(t *testing.T) {
	in := testInstance(8)
	// Eight cores, two queries: no interference.
	qs := []*Query{
		mkQuery("A", "sales", KindSelect, 0, 100),
		mkQuery("B", "sales", KindSelect, 0, 100),
	}
	_, log := collect(t, in, qs, 0, 1000)
	for _, r := range log {
		if !almostEq(r.ResponseMs, 100, 1e-6) {
			t.Errorf("%s response = %v, want 100", r.TemplateID, r.ResponseMs)
		}
	}
}

func TestUnequalDemandsDepartInOrder(t *testing.T) {
	in := testInstance(1)
	qs := []*Query{
		mkQuery("SHORT", "sales", KindSelect, 0, 10),
		mkQuery("LONG", "sales", KindSelect, 0, 100),
	}
	_, log := collect(t, in, qs, 0, 1000)
	if len(log) != 2 {
		t.Fatalf("log length = %d", len(log))
	}
	if log[0].TemplateID != "SHORT" || log[1].TemplateID != "LONG" {
		t.Fatalf("completion order = %s, %s", log[0].TemplateID, log[1].TemplateID)
	}
	// PS on one core: short finishes at 20 ms (two queries sharing until
	// 10 ms of service each... short needs 10: with rate 1/2, 10 ms of
	// service takes 20 ms wall). Long: 20 + remaining 90 at rate 1 = 110.
	if !almostEq(log[0].ResponseMs, 20, 1e-6) {
		t.Errorf("short response = %v, want 20", log[0].ResponseMs)
	}
	if !almostEq(log[1].ResponseMs, 110, 1e-6) {
		t.Errorf("long response = %v, want 110", log[1].ResponseMs)
	}
}

func TestRowLockConflictSerializes(t *testing.T) {
	in := testInstance(8)
	u1 := mkQuery("U1", "sales", KindUpdate, 0, 100)
	u1.LockKeys = []int{7}
	u2 := mkQuery("U2", "sales", KindUpdate, 10, 20)
	u2.LockKeys = []int{7}
	secs, log := collect(t, in, []*Query{u1, u2}, 0, 1000)
	var r1, r2 LogRecord
	for _, r := range log {
		switch r.TemplateID {
		case "U1":
			r1 = r
		case "U2":
			r2 = r
		}
	}
	if !almostEq(r1.ResponseMs, 100, 1e-6) {
		t.Errorf("U1 response = %v, want 100", r1.ResponseMs)
	}
	// U2 arrives at 10, waits until U1 releases at 100, runs 20 → ends 120.
	if !almostEq(r2.ResponseMs, 110, 1e-6) {
		t.Errorf("U2 response = %v, want 110 (90 wait + 20 run)", r2.ResponseMs)
	}
	if !almostEq(r2.LockWaitMs, 90, 1e-6) {
		t.Errorf("U2 lock wait = %v, want 90", r2.LockWaitMs)
	}
	if secs[0].RowLockWaits != 1 {
		t.Errorf("row lock waits = %d, want 1", secs[0].RowLockWaits)
	}
}

func TestDisjointLockKeysRunConcurrently(t *testing.T) {
	in := testInstance(8)
	u1 := mkQuery("U1", "sales", KindUpdate, 0, 100)
	u1.LockKeys = []int{1}
	u2 := mkQuery("U2", "sales", KindUpdate, 0, 100)
	u2.LockKeys = []int{2}
	_, log := collect(t, in, []*Query{u1, u2}, 0, 1000)
	for _, r := range log {
		if !almostEq(r.ResponseMs, 100, 1e-6) {
			t.Errorf("%s response = %v, want 100 (no conflict)", r.TemplateID, r.ResponseMs)
		}
	}
}

func TestSelectBlockedByExclusiveLock(t *testing.T) {
	// The paper's driving example (§I, Challenge III): UPDATEs holding
	// exclusive row locks force SELECTs on the same rows to wait, so the
	// SELECT templates become H-SQLs while the UPDate is the R-SQL.
	in := testInstance(8)
	upd := mkQuery("UPD", "sales", KindUpdate, 0, 500)
	upd.LockKeys = []int{3}
	sel := mkQuery("SEL", "sales", KindSelect, 100, 5)
	sel.LockKeys = []int{3}
	_, log := collect(t, in, []*Query{upd, sel}, 0, 2000)
	var selRec LogRecord
	for _, r := range log {
		if r.TemplateID == "SEL" {
			selRec = r
		}
	}
	if !almostEq(selRec.ResponseMs, 405, 1e-6) {
		t.Errorf("SELECT response = %v, want 405 (400 wait + 5 run)", selRec.ResponseMs)
	}
}

func TestMDLFreezesTable(t *testing.T) {
	in := testInstance(8)
	// A long-running SELECT is in flight when the DDL arrives; the DDL
	// must wait for it, and a later fast SELECT must queue behind the DDL.
	sel1 := mkQuery("S1", "sales", KindSelect, 0, 300)
	ddl := mkQuery("DDL", "sales", KindDDL, 100, 1000)
	ddl.MDLExclusive = true
	sel2 := mkQuery("S2", "sales", KindSelect, 200, 5)
	other := mkQuery("OTHER", "users", KindSelect, 200, 5)

	secs, log := collect(t, in, []*Query{sel1, ddl, sel2, other}, 0, 3000)
	recs := map[string]LogRecord{}
	for _, r := range log {
		recs[r.TemplateID] = r
	}
	if !almostEq(recs["S1"].ResponseMs, 300, 1e-6) {
		t.Errorf("S1 response = %v, want 300", recs["S1"].ResponseMs)
	}
	// DDL waits until S1 finishes at 300, runs 1000 → completes 1300,
	// response 1200.
	if !almostEq(recs["DDL"].ResponseMs, 1200, 1e-6) {
		t.Errorf("DDL response = %v, want 1200", recs["DDL"].ResponseMs)
	}
	// S2 frozen until 1300, then runs 5 ms → response 1105.
	if !almostEq(recs["S2"].ResponseMs, 1105, 1e-6) {
		t.Errorf("S2 response = %v, want 1105", recs["S2"].ResponseMs)
	}
	// The other table is unaffected.
	if !almostEq(recs["OTHER"].ResponseMs, 5, 1e-6) {
		t.Errorf("OTHER response = %v, want 5", recs["OTHER"].ResponseMs)
	}
	var mdlWaits int
	for _, s := range secs {
		mdlWaits += s.MDLWaits
	}
	if mdlWaits != 1 {
		t.Errorf("MDL waits = %d, want 1 (S2)", mdlWaits)
	}
}

func TestTwoDDLsQueue(t *testing.T) {
	in := testInstance(8)
	d1 := mkQuery("D1", "sales", KindDDL, 0, 100)
	d1.MDLExclusive = true
	d2 := mkQuery("D2", "sales", KindDDL, 10, 100)
	d2.MDLExclusive = true
	_, log := collect(t, in, []*Query{d1, d2}, 0, 2000)
	recs := map[string]LogRecord{}
	for _, r := range log {
		recs[r.TemplateID] = r
	}
	if !almostEq(recs["D1"].ResponseMs, 100, 1e-6) {
		t.Errorf("D1 response = %v", recs["D1"].ResponseMs)
	}
	// D2 waits for D1 (done at 100), runs 100 → ends 200, response 190.
	if !almostEq(recs["D2"].ResponseMs, 190, 1e-6) {
		t.Errorf("D2 response = %v, want 190", recs["D2"].ResponseMs)
	}
}

func TestThrottleRejectsOverLimit(t *testing.T) {
	in := testInstance(8)
	in.SetThrottle("HOT", 2)
	var qs []*Query
	for i := 0; i < 5; i++ {
		qs = append(qs, mkQuery("HOT", "sales", KindSelect, int64(i*10), 5))
	}
	_, log := collect(t, in, qs, 0, 1000)
	var throttled, admitted int
	for _, r := range log {
		if r.Throttled {
			throttled++
		} else {
			admitted++
		}
	}
	if admitted != 2 || throttled != 3 {
		t.Errorf("admitted/throttled = %d/%d, want 2/3", admitted, throttled)
	}
	in.ClearThrottle("HOT")
	if _, ok := in.Throttled("HOT"); ok {
		t.Error("throttle not cleared")
	}
}

func TestThrottleResetsEachSecond(t *testing.T) {
	in := testInstance(8)
	in.SetThrottle("HOT", 1)
	qs := []*Query{
		mkQuery("HOT", "sales", KindSelect, 0, 5),
		mkQuery("HOT", "sales", KindSelect, 10, 5),
		mkQuery("HOT", "sales", KindSelect, 1500, 5),
	}
	_, log := collect(t, in, qs, 0, 2000)
	var admitted int
	for _, r := range log {
		if !r.Throttled {
			admitted++
		}
	}
	if admitted != 2 {
		t.Errorf("admitted = %d, want 2 (one per second)", admitted)
	}
}

func TestPerfSchemaOverheadInflatesResponse(t *testing.T) {
	base := func(cfg PerfSchemaConfig) float64 {
		in := testInstance(4)
		in.SetPerfSchema(cfg)
		_, log := collect(t, in, []*Query{mkQuery("Q", "sales", KindSelect, 0, 100)}, 0, 1000)
		return log[0].ResponseMs
	}
	normal := base(PerfSchemaOff)
	full := base(PerfSchemaConIns)
	if normal != 100 {
		t.Errorf("normal response = %v, want 100", normal)
	}
	if full <= normal*1.2 {
		t.Errorf("pfs+con+ins response = %v, want > %v", full, normal*1.2)
	}
}

func TestActiveSessionSampleSeesConcurrency(t *testing.T) {
	in := testInstance(1)
	// Keep 10 long queries active for the whole first second; the SHOW
	// STATUS sample (whenever it lands) must see all 10.
	var qs []*Query
	for i := 0; i < 10; i++ {
		qs = append(qs, mkQuery("Q", "sales", KindSelect, 0, 5000))
	}
	secs, _ := collect(t, in, qs, 0, 3000)
	if secs[0].ActiveSession != 10 {
		t.Errorf("active session sample = %v, want 10", secs[0].ActiveSession)
	}
	if !almostEq(secs[0].AvgActiveSession, 10, 1e-6) {
		t.Errorf("avg active session = %v, want 10", secs[0].AvgActiveSession)
	}
	if secs[0].SampleOffsetMs < 0 || secs[0].SampleOffsetMs >= 1000 {
		t.Errorf("sample offset = %d out of range", secs[0].SampleOffsetMs)
	}
}

func TestBlockedSessionsCountAsActive(t *testing.T) {
	in := testInstance(8)
	holder := mkQuery("HOLD", "sales", KindUpdate, 0, 5000)
	holder.LockKeys = []int{1}
	var qs []*Query
	qs = append(qs, holder)
	for i := 0; i < 5; i++ {
		w := mkQuery("WAIT", "sales", KindUpdate, 100, 10)
		w.LockKeys = []int{1}
		qs = append(qs, w)
	}
	secs, _ := collect(t, in, qs, 0, 3000)
	// From second 1 onward, 1 running + 5 blocked = 6 active sessions.
	if secs[1].ActiveSession != 6 {
		t.Errorf("active session = %v, want 6 (blocked count)", secs[1].ActiveSession)
	}
}

func TestClosedLoopThroughputScalesWithCores(t *testing.T) {
	run := func(cores int) int {
		in := testInstance(cores)
		completions := 0
		threads := 32
		var initial []*Query
		for i := 0; i < threads; i++ {
			initial = append(initial, mkQuery("CL", "sales", KindSelect, 0, 1))
		}
		secs, err := in.Run(RunOptions{
			StartMs: 0,
			EndMs:   5000,
			Source:  NewSliceSource(initial),
			OnComplete: func(fin *Query, now int64) *Query {
				return mkQuery("CL", "sales", KindSelect, now, 1)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range secs {
			completions += s.QPS
		}
		return completions
	}
	q4 := run(4)
	q8 := run(8)
	// Cores are the bottleneck (32 threads, 1 ms service): doubling
	// cores should roughly double throughput.
	ratio := float64(q8) / float64(q4)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("throughput ratio = %v (q4=%d q8=%d), want ≈ 2", ratio, q4, q8)
	}
	// 4 cores × 1000 ms / 1 ms service ≈ 4000 QPS.
	if q4 < 15000 || q4 > 25000 {
		t.Errorf("5-second completions on 4 cores = %d, want ≈ 20000", q4)
	}
}

func TestAutoScaleMidRunIsPossible(t *testing.T) {
	in := testInstance(2)
	in.SetCores(4)
	if in.Cores() != 4 {
		t.Errorf("Cores = %d, want 4", in.Cores())
	}
	in.SetCores(0)
	if in.Cores() != 1 {
		t.Errorf("Cores after clamp = %d, want 1", in.Cores())
	}
}

func TestRunValidation(t *testing.T) {
	in := testInstance(2)
	if _, err := in.Run(RunOptions{StartMs: 0, EndMs: 1000}); err == nil {
		t.Error("nil source must error")
	}
	if _, err := in.Run(RunOptions{StartMs: 5, EndMs: 5, Source: NewSliceSource(nil)}); err == nil {
		t.Error("empty window must error")
	}
}

func TestUnknownTableFailsFast(t *testing.T) {
	in := testInstance(2)
	q := mkQuery("BAD", "nope", KindSelect, 0, 100)
	_, log := collect(t, in, []*Query{q}, 0, 1000)
	if len(log) != 1 {
		t.Fatalf("log length = %d, want 1 (failed-fast record)", len(log))
	}
	if log[0].ResponseMs > 1 {
		t.Errorf("failed query response = %v, want ≈ 0", log[0].ResponseMs)
	}
}

func TestSecondsCountMatchesDuration(t *testing.T) {
	in := testInstance(2)
	secs, _ := collect(t, in, nil, 0, 10_000)
	if len(secs) != 10 {
		t.Errorf("seconds = %d, want 10", len(secs))
	}
	for i, s := range secs {
		if s.Second != int64(i) {
			t.Errorf("seconds[%d].Second = %d", i, s.Second)
		}
		if s.ActiveSession != 0 || s.CPUUsage != 0 {
			t.Errorf("idle second %d has activity: %+v", i, s)
		}
	}
}

func TestPartialFinalSecond(t *testing.T) {
	in := testInstance(2)
	secs, _ := collect(t, in, nil, 0, 2500)
	if len(secs) != 3 {
		t.Errorf("seconds = %d, want 3 (two full + one partial)", len(secs))
	}
}

func TestLogRecordFields(t *testing.T) {
	in := testInstance(2)
	q := mkQuery("T9", "sales", KindUpdate, 123, 10)
	q.SQL = "UPDATE sales SET x = 1 WHERE id = 5"
	q.ExaminedRows = 77
	_, log := collect(t, in, []*Query{q}, 0, 1000)
	r := log[0]
	if r.TemplateID != "T9" || r.Table != "sales" || r.Kind != KindUpdate {
		t.Errorf("record = %+v", r)
	}
	if r.ArrivalMs != 123 || r.ExaminedRows != 77 {
		t.Errorf("record = %+v", r)
	}
	if r.SQL == "" {
		t.Error("SQL missing from record")
	}
}

func TestQueryKindStrings(t *testing.T) {
	kinds := map[QueryKind]string{
		KindSelect: "SELECT", KindInsert: "INSERT", KindUpdate: "UPDATE",
		KindDelete: "DELETE", KindDDL: "DDL", QueryKind(99): "UNKNOWN",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), want)
		}
	}
	if !KindUpdate.IsWrite() || KindSelect.IsWrite() || KindDDL.IsWrite() {
		t.Error("IsWrite misclassifies")
	}
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNoBargingPastWaiters(t *testing.T) {
	// A wide-footprint waiter must not starve behind a stream of later,
	// narrow statements: once it waits on a key, newcomers on that key
	// queue behind it (InnoDB-style FIFO lock queues).
	in := testInstance(8)
	holder := mkQuery("HOLD", "sales", KindUpdate, 0, 100)
	holder.LockKeys = []int{1}
	wide := mkQuery("WIDE", "sales", KindUpdate, 10, 10)
	wide.LockKeys = []int{1, 2}
	qs := []*Query{holder, wide}
	// A stream of narrow updates on key 2 arriving after the wide waiter;
	// with barging they would keep key 2 busy forever.
	for i := 0; i < 20; i++ {
		n := mkQuery("NARROW", "sales", KindUpdate, 20+int64(i*5), 30)
		n.LockKeys = []int{2}
		qs = append(qs, n)
	}
	_, log := collect(t, in, qs, 0, 5000)
	var wideRec LogRecord
	narrowAfterWide := 0
	var wideDone float64
	for _, r := range log {
		if r.TemplateID == "WIDE" {
			wideRec = r
			wideDone = float64(r.ArrivalMs) + r.ResponseMs
		}
	}
	if wideDone == 0 {
		t.Fatal("wide statement never completed (starved)")
	}
	// Wide waits for HOLD (done at 100) and must then run promptly: its
	// key-2 demand blocks the narrow stream from barging.
	if wideRec.ResponseMs > 200 {
		t.Errorf("wide response = %v ms, want ≈ 100 (no starvation)", wideRec.ResponseMs)
	}
	for _, r := range log {
		if r.TemplateID == "NARROW" && float64(r.ArrivalMs)+r.ResponseMs < wideDone {
			narrowAfterWide++
		}
	}
	// At most one narrow statement (the one admitted before WIDE arrived)
	// may finish before WIDE.
	if narrowAfterWide > 1 {
		t.Errorf("%d narrow statements completed before the earlier wide waiter", narrowAfterWide)
	}
}

func TestThrottleExpiry(t *testing.T) {
	in := testInstance(8)
	in.SetThrottleUntil("HOT", 1, 2000) // 1 admitted per second until t=2s
	qs := []*Query{
		mkQuery("HOT", "sales", KindSelect, 100, 5),
		mkQuery("HOT", "sales", KindSelect, 200, 5),  // throttled
		mkQuery("HOT", "sales", KindSelect, 2500, 5), // after expiry: admitted
		mkQuery("HOT", "sales", KindSelect, 2600, 5), // admitted too
	}
	_, log := collect(t, in, qs, 0, 4000)
	var throttled, admitted int
	for _, r := range log {
		if r.Throttled {
			throttled++
		} else {
			admitted++
		}
	}
	if throttled != 1 || admitted != 3 {
		t.Errorf("throttled/admitted = %d/%d, want 1/3", throttled, admitted)
	}
	if _, ok := in.Throttled("HOT"); ok {
		t.Error("expired throttle still reported")
	}
}

func TestLockWaitTimeoutAbortsWaiter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.LockWaitTimeoutMs = 1000
	in := NewInstance(cfg)
	in.CreateTable("sales", 1000)
	holder := mkQuery("HOLD", "sales", KindUpdate, 0, 5000)
	holder.LockKeys = []int{1}
	waiter := mkQuery("WAIT", "sales", KindUpdate, 100, 10)
	waiter.LockKeys = []int{1}
	var log []LogRecord
	secs, err := in.Run(RunOptions{
		StartMs: 0, EndMs: 8000,
		Source: NewSliceSource([]*Query{holder, waiter}),
		Sink:   func(r LogRecord) { log = append(log, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var timedOut *LogRecord
	for i, r := range log {
		if r.TemplateID == "WAIT" {
			timedOut = &log[i]
		}
	}
	if timedOut == nil || !timedOut.TimedOut {
		t.Fatalf("waiter record = %+v, want timed out", timedOut)
	}
	// Aborted after ~1 s of waiting (arrived at 100, deadline 1100).
	if timedOut.ResponseMs < 900 || timedOut.ResponseMs > 1200 {
		t.Errorf("timed-out response = %v, want ≈ 1000", timedOut.ResponseMs)
	}
	var timeouts int
	for _, s := range secs {
		timeouts += s.LockTimeouts
	}
	if timeouts != 1 {
		t.Errorf("lock timeouts = %d, want 1", timeouts)
	}
	// The holder still completes normally.
	for _, r := range log {
		if r.TemplateID == "HOLD" && (r.TimedOut || r.ResponseMs != 5000) {
			t.Errorf("holder record = %+v", r)
		}
	}
}

func TestLockWaitTimeoutDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.LockWaitTimeoutMs = -1
	in := NewInstance(cfg)
	in.CreateTable("sales", 1000)
	holder := mkQuery("HOLD", "sales", KindUpdate, 0, 3000)
	holder.LockKeys = []int{1}
	waiter := mkQuery("WAIT", "sales", KindUpdate, 100, 10)
	waiter.LockKeys = []int{1}
	var log []LogRecord
	if _, err := in.Run(RunOptions{
		StartMs: 0, EndMs: 8000,
		Source: NewSliceSource([]*Query{holder, waiter}),
		Sink:   func(r LogRecord) { log = append(log, r) },
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range log {
		if r.TimedOut {
			t.Errorf("timeout fired while disabled: %+v", r)
		}
		if r.TemplateID == "WAIT" && !almostEq(r.ResponseMs, 2910, 1e-6) {
			t.Errorf("waiter response = %v, want 2910 (waited for holder)", r.ResponseMs)
		}
	}
}

func TestMDLPendingTimeoutUnfreezesTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.LockWaitTimeoutMs = 1000
	in := NewInstance(cfg)
	in.CreateTable("sales", 1000)
	// A long SELECT keeps the table busy; the DDL queues, freezing later
	// SELECTs; the DDL then times out and the frozen SELECT must run.
	long := mkQuery("LONG", "sales", KindSelect, 0, 4000)
	ddl := mkQuery("DDL", "sales", KindDDL, 100, 1000)
	ddl.MDLExclusive = true
	frozen := mkQuery("FROZEN", "sales", KindSelect, 200, 5)
	var log []LogRecord
	if _, err := in.Run(RunOptions{
		StartMs: 0, EndMs: 10_000,
		Source: NewSliceSource([]*Query{long, ddl, frozen}),
		Sink:   func(r LogRecord) { log = append(log, r) },
	}); err != nil {
		t.Fatal(err)
	}
	recs := map[string]LogRecord{}
	for _, r := range log {
		recs[r.TemplateID] = r
	}
	if !recs["DDL"].TimedOut {
		t.Fatalf("DDL record = %+v, want timed out", recs["DDL"])
	}
	// The frozen SELECT runs right after the DDL gives up at t≈1100:
	// response ≈ 900 wait + 5 run.
	fr := recs["FROZEN"]
	if fr.TimedOut || fr.ResponseMs > 1000 {
		t.Errorf("frozen select = %+v, want released after DDL timeout", fr)
	}
}
