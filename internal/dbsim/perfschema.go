package dbsim

// PerfSchemaConfig selects the built-in monitoring configuration of the
// instance. The paper's Table IV measures the QPS cost of MySQL's
// Performance Schema under combinations of consumers (con) and
// instrumentation (ins); this model charges a per-statement multiplicative
// overhead calibrated to the 8–30 % declines the paper reports, with writes
// paying slightly more than reads under instrumentation (every row change
// fires instruments) and reads paying slightly more under consumers (digest
// and history consumers aggregate per fetch).
type PerfSchemaConfig int

// Performance Schema configurations of Table IV.
const (
	// PerfSchemaOff is the "normal" config: no monitoring overhead.
	PerfSchemaOff PerfSchemaConfig = iota
	// PerfSchemaOn is "pfs": PERFORMANCE_SCHEMA=ON with default consumers
	// and instruments.
	PerfSchemaOn
	// PerfSchemaIns is "pfs+ins": all instrumentation enabled.
	PerfSchemaIns
	// PerfSchemaCon is "pfs+con": all consumers enabled.
	PerfSchemaCon
	// PerfSchemaConIns is "pfs+con+ins": everything on.
	PerfSchemaConIns
)

// String returns the Table IV row label.
func (c PerfSchemaConfig) String() string {
	switch c {
	case PerfSchemaOff:
		return "normal"
	case PerfSchemaOn:
		return "pfs"
	case PerfSchemaIns:
		return "pfs+ins"
	case PerfSchemaCon:
		return "pfs+con"
	case PerfSchemaConIns:
		return "pfs+con+ins"
	}
	return "unknown"
}

// overhead returns the service-demand multiplier for a statement kind under
// this config.
func (c PerfSchemaConfig) overhead(kind QueryKind) float64 {
	read := kind == KindSelect
	switch c {
	case PerfSchemaOff:
		return 1.0
	case PerfSchemaOn:
		if read {
			return 1.1444
		}
		return 1.0925
	case PerfSchemaIns:
		if read {
			return 1.1145
		}
		return 1.0871
	case PerfSchemaCon:
		if read {
			return 1.1235
		}
		return 1.1230
	case PerfSchemaConIns:
		if read {
			return 1.3549
		}
		return 1.4366
	}
	return 1.0
}
