// Package dbsim is a discrete-event simulator of a cloud database instance,
// the substrate PinSQL diagnoses. It models the pieces of a MySQL-like
// engine that the paper's causal chains flow through:
//
//   - a processor-sharing CPU with a configurable core count (AutoScale),
//   - InnoDB-style exclusive row locks held for a statement's duration,
//   - metadata locks (MDL) taken by DDL, which freeze a whole table and
//     pile up every later query ("Waiting for table metadata lock", §II),
//   - per-second performance metrics including the active-session metric
//     sampled by SHOW STATUS at an unknown sub-second offset (§IV-C, Fig. 3),
//   - a query log stream (statement, response time, examined rows,
//     arrival timestamp) exactly as §IV-A collects, and
//   - a Performance Schema overhead model used by the Table IV study.
//
// Everything is driven by virtual time in milliseconds; simulating an hour
// of heavy traffic takes well under a second of real time.
package dbsim

// QueryKind classifies a simulated statement.
type QueryKind int

// Query kinds.
const (
	KindSelect QueryKind = iota
	KindInsert
	KindUpdate
	KindDelete
	KindDDL
)

// String returns the SQL verb for the kind.
func (k QueryKind) String() string {
	switch k {
	case KindSelect:
		return "SELECT"
	case KindInsert:
		return "INSERT"
	case KindUpdate:
		return "UPDATE"
	case KindDelete:
		return "DELETE"
	case KindDDL:
		return "DDL"
	}
	return "UNKNOWN"
}

// IsWrite reports whether the kind modifies data (takes row locks).
func (k QueryKind) IsWrite() bool {
	return k == KindInsert || k == KindUpdate || k == KindDelete
}

// Query is one statement submitted to the instance. The workload generator
// fills in the cost model fields; the engine consumes them.
type Query struct {
	TemplateID   string    // SQL template digest (Definition II.3)
	SQL          string    // raw statement with literals
	Table        string    // table the statement touches
	Kind         QueryKind //
	ArrivalMs    int64     // virtual arrival time
	ServiceMs    float64   // CPU/IO service demand in milliseconds
	IOOps        float64   // I/O operations consumed (feeds iops_usage)
	ExaminedRows int64     // rows examined (feeds #examined_rows)
	LockKeys     []int     // exclusive row-lock keys (writes); nil for none
	MDLExclusive bool      // DDL: takes the table's metadata lock
}

// LogRecord is one entry of the collected query log (§IV-A): basic
// information, metric data and the arrival timestamp.
type LogRecord struct {
	TemplateID   string
	SQL          string
	Table        string
	Kind         QueryKind
	ArrivalMs    int64   // t(q), milliseconds
	ResponseMs   float64 // tres(q), includes lock-wait time
	ExaminedRows int64
	Throttled    bool // rejected by an active SQL throttle rule
	TimedOut     bool // aborted by the lock wait timeout (still consumed a session)
	LockWaitMs   float64
}

// LogSink receives completed-query records as the simulation produces them.
// Implementations must not retain the record past the call if they mutate it.
type LogSink func(LogRecord)

// SecondMetrics is the per-second performance-metric sample the monitoring
// pipeline collects (Definition II.4).
type SecondMetrics struct {
	Second int64 // virtual second index since simulation start

	// ActiveSession is the SHOW STATUS sample: the number of sessions
	// active at one unknown instant inside the second (Fig. 3). This is
	// the ground-truth metric the detector watches.
	ActiveSession float64
	// SampleOffsetMs is the hidden instant (within the second) at which
	// the SHOW STATUS observation happened. PinSQL never sees this; tests
	// and the Table III harness use it to validate bucket selection.
	SampleOffsetMs int
	// AvgActiveSession is the time-averaged session count over the second.
	AvgActiveSession float64

	CPUUsage     float64 // percent of total core capacity used
	IOPSUsage    float64 // percent of I/O capacity used
	MemUsage     float64 // percent, synthetic: base + session pressure
	QPS          int     // queries completed this second
	RowLockWaits int     // statements that waited on a row lock this second
	MDLWaits     int     // statements that waited on a metadata lock this second
	LockTimeouts int     // statements aborted by the lock wait timeout this second
}
