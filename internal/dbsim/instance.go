package dbsim

import (
	"fmt"
	"math/rand"
)

// Config describes a database instance.
type Config struct {
	Cores        int     // CPU cores (processor-sharing capacity)
	IOPSCapacity float64 // I/O operations per second at 100 % iops_usage
	MemoryGiB    float64 // only reported, never a bottleneck in this model
	PerfSchema   PerfSchemaConfig
	Seed         int64 // randomness for SHOW STATUS offsets
	// LockWaitTimeoutMs aborts statements that wait on a lock longer than
	// this (InnoDB's innodb_lock_wait_timeout, default 50 s). It is what
	// keeps real lock storms bounded: victims error out instead of piling
	// up forever. 0 selects the default; negative disables timeouts.
	LockWaitTimeoutMs int64
}

// DefaultConfig mirrors the average ADAC instance of the paper (§VIII-A:
// 15.9 cores, 87.9 GiB memory); 16 cores keeps the arithmetic simple.
func DefaultConfig() Config {
	return Config{
		Cores:             16,
		IOPSCapacity:      20000,
		MemoryGiB:         88,
		PerfSchema:        PerfSchemaOff,
		Seed:              1,
		LockWaitTimeoutMs: 50_000,
	}
}

// table holds the per-table lock state.
type table struct {
	name string
	rows int64

	// Row locks: key → holding query. Held for statement duration.
	rowLocks map[int]*activeQuery
	// rowWaiters are statements blocked on at least one row lock, FIFO.
	rowWaiters []*activeQuery
	// demanded counts waiters per key: a new arrival may not barge past
	// an earlier waiter onto a contested key (InnoDB-style FIFO lock
	// queues; without this, wide-footprint waiters starve forever behind
	// a stream of narrow ones).
	demanded map[int]int

	// Metadata lock state. A DDL wanting the MDL waits for inFlight to
	// drain, then holds mdlHolder until it completes; every non-DDL query
	// arriving meanwhile queues in mdlWaiters.
	inFlight   int
	mdlHolder  *activeQuery
	mdlPending []*activeQuery // DDLs waiting for in-flight statements to drain
	mdlWaiters []*activeQuery // ordinary statements frozen behind the MDL
}

// Instance is a simulated cloud database instance.
type Instance struct {
	cfg    Config
	cores  float64
	rng    *rand.Rand
	tables map[string]*table

	throttles map[string]throttleRule // template ID → rate limit

	// scratch is the engine's reusable run state (heap and FIFO backing
	// arrays, the activeQuery freelist, the wake-scan map). Keeping it on
	// the instance means a warm instance runs simulations without
	// per-event allocations. Instances are not safe for concurrent Runs —
	// that was already true (rng, table state); this makes it structural.
	scratch engine
}

// throttleRule is one installed SQL throttle: a rate limit with an optional
// expiry (§VII: "users can also customize the time duration of the
// throttling").
type throttleRule struct {
	maxQPS  float64
	untilMs int64 // 0 = no expiry
}

// NewInstance creates an instance with no tables.
func NewInstance(cfg Config) *Instance {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.IOPSCapacity <= 0 {
		cfg.IOPSCapacity = 10000
	}
	if cfg.LockWaitTimeoutMs == 0 {
		cfg.LockWaitTimeoutMs = 50_000
	}
	return &Instance{
		cfg:       cfg,
		cores:     float64(cfg.Cores),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		tables:    make(map[string]*table),
		throttles: make(map[string]throttleRule),
	}
}

// ReseedSampling resets the instance's metric-sampling RNG (the only
// consumer of instance randomness — the per-second SHOW STATUS sample
// offset). The fleet reseeds it per window so a restarted instance
// replays a window with the exact sampling phase the killed process would
// have used, independent of how many windows ran before the crash.
func (in *Instance) ReseedSampling(seed int64) {
	in.rng = rand.New(rand.NewSource(seed))
}

// CreateTable registers a table. rows is informational (the workload's cost
// model references it); lock keys are allocated lazily per key value.
func (in *Instance) CreateTable(name string, rows int64) {
	in.tables[name] = &table{
		name:     name,
		rows:     rows,
		rowLocks: make(map[int]*activeQuery),
		demanded: make(map[int]int),
	}
}

// Cores returns the current core count.
func (in *Instance) Cores() int { return int(in.cores) }

// SetCores rescales the CPU capacity; the repair module's AutoScale action
// calls this. Takes effect at the next simulation event.
func (in *Instance) SetCores(n int) {
	if n < 1 {
		n = 1
	}
	in.cores = float64(n)
}

// SetPerfSchema switches the monitoring overhead configuration (Table IV).
func (in *Instance) SetPerfSchema(cfg PerfSchemaConfig) { in.cfg.PerfSchema = cfg }

// SetThrottle installs a rate limit for a template: at most maxQPS
// statements are admitted per virtual second; the rest fail fast. The
// repairing module's SQL Throttling action uses this (§VII). maxQPS ≤ 0
// removes the throttle.
func (in *Instance) SetThrottle(templateID string, maxQPS float64) {
	in.SetThrottleUntil(templateID, maxQPS, 0)
}

// SetThrottleUntil installs a rate limit that expires at untilMs virtual
// time (0 = never). Expired throttles are dropped lazily at admission.
func (in *Instance) SetThrottleUntil(templateID string, maxQPS float64, untilMs int64) {
	if maxQPS <= 0 {
		delete(in.throttles, templateID)
		return
	}
	in.throttles[templateID] = throttleRule{maxQPS: maxQPS, untilMs: untilMs}
}

// ClearThrottle removes the throttle for a template.
func (in *Instance) ClearThrottle(templateID string) { delete(in.throttles, templateID) }

// Throttled reports the throttle limit for a template, if any. Expired
// rules report as absent.
func (in *Instance) Throttled(templateID string) (float64, bool) {
	v, ok := in.throttles[templateID]
	if !ok {
		return 0, false
	}
	return v.maxQPS, true
}

func (in *Instance) tableOf(q *Query) (*table, error) {
	tb, ok := in.tables[q.Table]
	if !ok {
		return nil, fmt.Errorf("dbsim: query %s references unknown table %q", q.TemplateID, q.Table)
	}
	return tb, nil
}
