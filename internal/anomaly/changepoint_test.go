package anomaly

import (
	"math/rand"
	"testing"

	"pinsql/internal/timeseries"
)

func TestPettittDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = 10 + rng.NormFloat64()
		if i >= 180 {
			s[i] += 8
		}
	}
	res := Pettitt(s, 0)
	if res.P > 0.01 {
		t.Errorf("P = %v, want significant", res.P)
	}
	if res.At < 160 || res.At > 200 {
		t.Errorf("change point at %d, want ≈ 180", res.At)
	}
}

func TestPettittNoShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := make(timeseries.Series, 200)
	for i := range s {
		s[i] = 5 + rng.NormFloat64()
	}
	res := Pettitt(s, 0)
	if res.P < 0.1 {
		t.Errorf("P = %v on stationary noise, want insignificant", res.P)
	}
}

func TestPettittDegenerate(t *testing.T) {
	if res := Pettitt(timeseries.Series{}, 0); res.P != 1 {
		t.Errorf("empty series P = %v", res.P)
	}
	if res := Pettitt(timeseries.Series{1, 1}, 0); res.P != 1 {
		t.Errorf("short series P = %v", res.P)
	}
	flat := make(timeseries.Series, 100)
	for i := range flat {
		flat[i] = 3
	}
	if res := Pettitt(flat, 0); res.P < 0.5 {
		t.Errorf("constant series P = %v", res.P)
	}
}

func TestPettittDownsamplesLargeInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
		if i >= 3000 {
			s[i] += 5
		}
	}
	res := Pettitt(s, 200)
	if res.P > 0.01 {
		t.Errorf("P = %v", res.P)
	}
	// The reported index is mapped back into original coordinates.
	if res.At < 2500 || res.At > 3500 {
		t.Errorf("change point at %d, want ≈ 3000", res.At)
	}
}

func TestDetectEWMASustainedShift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 400
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = 20 + rng.NormFloat64()
		if i >= 200 && i < 300 {
			s[i] += 6
		}
	}
	events := DetectEWMA("m", s, EWMAOptions{})
	if len(events) == 0 {
		t.Fatal("no EWMA alarm on a 6σ sustained shift")
	}
	first := events[0]
	if first.Start < 200 || first.Start > 230 {
		t.Errorf("alarm starts at %d, want shortly after 200", first.Start)
	}
	if first.Metric != "m" || first.Feature != SpikeUp {
		t.Errorf("event = %+v", first)
	}
}

func TestDetectEWMAQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := make(timeseries.Series, 300)
	for i := range s {
		s[i] = 10 + rng.NormFloat64()
	}
	if events := DetectEWMA("m", s, EWMAOptions{}); len(events) != 0 {
		t.Errorf("false alarms on stationary noise: %+v", events)
	}
}

func TestDetectEWMAShortSeries(t *testing.T) {
	if events := DetectEWMA("m", make(timeseries.Series, 10), EWMAOptions{Warmup: 30}); events != nil {
		t.Errorf("events on sub-warmup series: %+v", events)
	}
}

func TestDetectEWMAAlarmAtEnd(t *testing.T) {
	s := make(timeseries.Series, 100)
	for i := range s {
		s[i] = 5 + 0.1*float64(i%3)
		if i >= 80 {
			s[i] = 50 // never recovers
		}
	}
	events := DetectEWMA("m", s, EWMAOptions{})
	if len(events) != 1 || events[0].End != 100 {
		t.Errorf("open-ended alarm = %+v", events)
	}
}

func TestDetectorWithEWMAEnabled(t *testing.T) {
	d := NewDetector(Config{UseEWMA: true})
	rng := rand.New(rand.NewSource(6))
	s := make(timeseries.Series, 400)
	for i := range s {
		s[i] = 20 + rng.NormFloat64()
		if i >= 200 && i < 320 {
			s[i] += 5 // sustained small shift: EWMA territory
		}
	}
	events := d.DetectFeatures("m", s)
	found := false
	for _, ev := range events {
		if ev.Feature == SpikeUp && ev.Start >= 195 && ev.Start <= 240 {
			found = true
		}
	}
	if !found {
		t.Errorf("EWMA-backed detector missed the sustained shift: %+v", events)
	}
	// Default config must not change behaviour.
	plain := NewDetector(Config{})
	if n := len(plain.DetectFeatures("m", s)); n > len(events) {
		t.Errorf("default detector produced more events (%d) than EWMA-enabled (%d)", n, len(events))
	}
}
