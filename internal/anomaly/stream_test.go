package anomaly

import (
	"math/rand"
	"reflect"
	"testing"

	"pinsql/internal/timeseries"
)

// streamTestSeries builds a set of metric traces that exercise every
// detector path: quiet noise, spikes, level shifts, constant prefixes
// (zero-MAD fallback) and negative excursions.
func streamTestSeries(seed int64, n int) map[string]timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	quiet := make(timeseries.Series, n)
	spiky := make(timeseries.Series, n)
	shifted := make(timeseries.Series, n)
	constant := make(timeseries.Series, n)
	mixed := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		base := 10 + rng.Float64()
		quiet[i] = base
		spiky[i] = base
		if i%37 == 0 {
			spiky[i] += 40 + rng.Float64()*10
		}
		if i%53 == 1 {
			spiky[i] -= 35
		}
		shifted[i] = base
		if i >= n/2 {
			shifted[i] += 25
		}
		constant[i] = 4
		mixed[i] = base + rng.NormFloat64()
		if i > n/3 && i < n/3+8 {
			mixed[i] += 60
		}
		if i >= 3*n/4 {
			mixed[i] -= 18
		}
	}
	return map[string]timeseries.Series{
		MetricActiveSession: spiky,
		MetricCPUUsage:      shifted,
		MetricIOPSUsage:     quiet,
		MetricMemUsage:      constant,
		MetricQPS:           mixed,
	}
}

// TestStreamDetectorMatchesBatch pins the streaming Basic Perception Layer
// to the batch one: after observing any prefix of each metric, the
// streaming detector's phenomena equal a batch detector's over the same
// prefixes, for several configs including low thresholds (dense events),
// EWMA enabled, and defaults.
func TestStreamDetectorMatchesBatch(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"defaults", Config{}},
		{"sensitive", Config{SpikeZ: 2.5, ShiftWindow: 10, ShiftZ: 2, MinDurationSec: 1, MergeGapSec: 5}},
		{"ewma", Config{SpikeZ: 3, ShiftWindow: 12, ShiftZ: 3, MinDurationSec: 1, MergeGapSec: 10, UseEWMA: true}},
	}
	rules := append(DefaultRules(), Rule{
		Name: "qps_anomaly",
		Conditions: []Condition{{
			Metric:   MetricQPS,
			Features: []Feature{SpikeUp, SpikeDown, LevelShiftUp, LevelShiftDown},
		}},
	}, Rule{
		Name: "mem_anomaly",
		Conditions: []Condition{{
			Metric:   MetricMemUsage,
			Features: []Feature{SpikeUp, LevelShiftUp},
		}},
	})

	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				const n = 240
				metrics := streamTestSeries(seed, n)
				stream := NewStreamDetector(tc.cfg)
				batch := NewDetector(tc.cfg)

				// Feed second by second; compare at a few prefixes and at
				// the end, so mid-window ticks are pinned, not just the
				// final state.
				checkpoints := map[int]bool{1: true, 7: true, n / 3: true, n / 2: true, n - 1: true, n: true}
				for i := 0; i < n; i++ {
					for name, s := range metrics {
						stream.Observe(name, s[i])
					}
					if !checkpoints[i+1] {
						continue
					}
					prefix := make(map[string]timeseries.Series, len(metrics))
					for name, s := range metrics {
						prefix[name] = s[:i+1]
					}
					got := stream.DetectPhenomena(rules)
					want := batch.DetectPhenomena(prefix, rules)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d prefix %d: streaming phenomena diverge from batch\n got: %+v\nwant: %+v",
							seed, i+1, got, want)
					}
				}
			}
		})
	}
}

// TestStreamDetectorFeatureEvents pins the basic layer directly: per-metric
// event lists must match DetectFeatures exactly at every prefix length of a
// trace that triggers both spikes and shifts.
func TestStreamDetectorFeatureEvents(t *testing.T) {
	cfg := Config{SpikeZ: 3, ShiftWindow: 8, ShiftZ: 2.5, MinDurationSec: 1, MergeGapSec: 5}
	metrics := streamTestSeries(11, 120)
	stream := NewStreamDetector(cfg)
	batch := NewDetector(cfg)
	for name, s := range metrics {
		for i := range s {
			stream.Observe(name, s[i])
			got := stream.detectFeatures(name, stream.streams[name])
			want := batch.DetectFeatures(name, s[:i+1])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("metric %s prefix %d: events diverge\n got: %+v\nwant: %+v", name, i+1, got, want)
			}
		}
	}
}

// TestStreamDetectorObserveSeriesAndLen covers the bulk-feed helper and the
// length accessor.
func TestStreamDetectorObserveSeriesAndLen(t *testing.T) {
	s := timeseries.Series{1, 2, 3, 4}
	d := NewStreamDetector(Config{})
	if d.Len("x") != 0 {
		t.Fatalf("unobserved metric should have length 0")
	}
	d.ObserveSeries("x", s)
	if d.Len("x") != len(s) {
		t.Fatalf("Len = %d, want %d", d.Len("x"), len(s))
	}
}
