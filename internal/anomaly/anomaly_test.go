package anomaly

import (
	"strings"
	"testing"

	"pinsql/internal/collect"
	"pinsql/internal/timeseries"
)

// flatWithSpike builds a stable series with a spike of the given height
// over [from, to).
func flatWithSpike(n, from, to int, base, height float64) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = base + float64(i%3)
		if i >= from && i < to {
			s[i] += height
		}
	}
	return s
}

func TestDetectFeaturesSpike(t *testing.T) {
	d := NewDetector(Config{})
	s := flatWithSpike(300, 100, 120, 10, 200)
	events := d.DetectFeatures(MetricActiveSession, s)
	var spikes []Event
	for _, ev := range events {
		if ev.Feature == SpikeUp {
			spikes = append(spikes, ev)
		}
	}
	if len(spikes) != 1 {
		t.Fatalf("spike events = %+v, want 1", spikes)
	}
	if spikes[0].Start != 100 || spikes[0].End != 120 {
		t.Errorf("spike window = [%d,%d), want [100,120)", spikes[0].Start, spikes[0].End)
	}
	if spikes[0].Metric != MetricActiveSession {
		t.Errorf("metric = %s", spikes[0].Metric)
	}
}

func TestDetectFeaturesLevelShift(t *testing.T) {
	d := NewDetector(Config{})
	s := make(timeseries.Series, 400)
	for i := range s {
		if i < 200 {
			s[i] = 10 + float64(i%2)
		} else {
			s[i] = 60 + float64(i%2)
		}
	}
	events := d.DetectFeatures(MetricCPUUsage, s)
	found := false
	for _, ev := range events {
		if ev.Feature == LevelShiftUp && ev.Start >= 180 && ev.Start <= 220 {
			found = true
			if ev.End != len(s) {
				t.Errorf("unrecovered shift end = %d, want %d", ev.End, len(s))
			}
		}
	}
	if !found {
		t.Errorf("no level shift found in %+v", events)
	}
}

func TestDetectFeaturesQuietSeries(t *testing.T) {
	d := NewDetector(Config{})
	s := flatWithSpike(200, 0, 0, 10, 0)
	if events := d.DetectFeatures("m", s); len(events) != 0 {
		t.Errorf("events on quiet series = %+v", events)
	}
}

func TestDetectPhenomenaDefaultRules(t *testing.T) {
	d := NewDetector(Config{})
	metrics := map[string]timeseries.Series{
		MetricActiveSession: flatWithSpike(600, 300, 330, 5, 100),
		MetricCPUUsage:      flatWithSpike(600, 0, 0, 20, 0),
		MetricIOPSUsage:     flatWithSpike(600, 0, 0, 30, 0),
	}
	ps := d.DetectPhenomena(metrics, DefaultRules())
	if len(ps) != 1 {
		t.Fatalf("phenomena = %+v, want 1", ps)
	}
	p := ps[0]
	if p.Rule != "active_session_anomaly" {
		t.Errorf("rule = %s", p.Rule)
	}
	if p.Start != 300 || p.End != 330 {
		t.Errorf("window = [%d,%d), want [300,330)", p.Start, p.End)
	}
}

func TestDetectPhenomenaMinDuration(t *testing.T) {
	d := NewDetector(Config{MinDurationSec: 10})
	metrics := map[string]timeseries.Series{
		MetricActiveSession: flatWithSpike(300, 100, 104, 5, 100), // 4 s — too short
	}
	if ps := d.DetectPhenomena(metrics, DefaultRules()); len(ps) != 0 {
		t.Errorf("short phenomenon not dropped: %+v", ps)
	}
}

func TestDetectPhenomenaMerging(t *testing.T) {
	d := NewDetector(Config{MergeGapSec: 60})
	s := flatWithSpike(600, 100, 120, 5, 100)
	for i := 150; i < 170; i++ {
		s[i] += 100 // second spike 30 s after the first: should merge
	}
	metrics := map[string]timeseries.Series{MetricActiveSession: s}
	ps := d.DetectPhenomena(metrics, DefaultRules())
	if len(ps) != 1 {
		t.Fatalf("phenomena = %+v, want 1 merged", ps)
	}
	// The merged phenomenon must cover both spikes; the exact start may
	// land slightly early when the level-shift feature also fires.
	if ps[0].Start > 100 || ps[0].Start < 80 || ps[0].End != 170 {
		t.Errorf("merged window = [%d,%d), want ≈ [100,170)", ps[0].Start, ps[0].End)
	}
}

func TestDetectPhenomenaNoMergeAcrossGap(t *testing.T) {
	d := NewDetector(Config{MergeGapSec: 20})
	s := flatWithSpike(600, 100, 120, 5, 100)
	for i := 300; i < 320; i++ {
		s[i] += 100 // 180 s later: distinct anomaly
	}
	metrics := map[string]timeseries.Series{MetricActiveSession: s}
	ps := d.DetectPhenomena(metrics, DefaultRules())
	if len(ps) != 2 {
		t.Fatalf("phenomena = %+v, want 2", ps)
	}
}

func TestMultiConditionRule(t *testing.T) {
	d := NewDetector(Config{})
	rule := Rule{
		Name: "cpu_and_session",
		Conditions: []Condition{
			{Metric: MetricActiveSession, Features: []Feature{SpikeUp}},
			{Metric: MetricCPUUsage, Features: []Feature{SpikeUp}},
		},
	}
	// Overlapping spikes on both metrics → fires.
	metrics := map[string]timeseries.Series{
		MetricActiveSession: flatWithSpike(300, 100, 130, 5, 100),
		MetricCPUUsage:      flatWithSpike(300, 110, 140, 20, 300),
	}
	ps := d.DetectPhenomena(metrics, []Rule{rule})
	if len(ps) != 1 {
		t.Fatalf("phenomena = %+v, want 1", ps)
	}
	if ps[0].Start != 100 || ps[0].End != 140 {
		t.Errorf("window = [%d,%d), want union [100,140)", ps[0].Start, ps[0].End)
	}
	// CPU quiet → rule must not fire.
	metrics[MetricCPUUsage] = flatWithSpike(300, 0, 0, 20, 0)
	if ps := d.DetectPhenomena(metrics, []Rule{rule}); len(ps) != 0 {
		t.Errorf("rule fired without second condition: %+v", ps)
	}
}

func TestRuleString(t *testing.T) {
	r := DefaultRules()[0]
	s := r.String()
	if !strings.Contains(s, "active_session.spike") {
		t.Errorf("rule string = %q", s)
	}
}

func TestFeatureStrings(t *testing.T) {
	if SpikeUp.String() != "spike" || LevelShiftUp.String() != "levelshift" {
		t.Error("feature names wrong")
	}
	if SpikeDown.String() != "spike_down" || LevelShiftDown.String() != "levelshift_down" {
		t.Error("down feature names wrong")
	}
	if Feature(99).String() != "unknown" {
		t.Error("unknown feature name wrong")
	}
}

func TestNewCaseClampsWindow(t *testing.T) {
	snap := &collect.Snapshot{Seconds: 100}
	c := NewCase(snap, Phenomenon{Start: -5, End: 400})
	if c.AS != 0 || c.AE != 100 {
		t.Errorf("case window = [%d,%d), want [0,100)", c.AS, c.AE)
	}
}

func TestEventAndPhenomenonDuration(t *testing.T) {
	if (Event{Start: 3, End: 10}).Duration() != 7 {
		t.Error("event duration wrong")
	}
	if (Phenomenon{Start: 3, End: 10}).Duration() != 7 {
		t.Error("phenomenon duration wrong")
	}
}

func TestDetectorDefaultsApplied(t *testing.T) {
	d := NewDetector(Config{})
	if d.cfg.SpikeZ != DefaultConfig().SpikeZ {
		t.Error("default SpikeZ not applied")
	}
	d2 := NewDetector(Config{SpikeZ: 3})
	if d2.cfg.SpikeZ != 3 {
		t.Error("explicit SpikeZ overridden")
	}
}
