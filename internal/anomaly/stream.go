package anomaly

import (
	"sort"

	"pinsql/internal/timeseries"
)

// StreamDetector is the rolling-state form of the Basic Perception Layer:
// metric samples are observed one second at a time, and the order
// statistics every feature detector needs (median, MAD, and the
// first-difference scale of the level-shift detector) are maintained
// incrementally instead of re-sorting the whole window per detection pass.
// A per-second monitoring tick therefore costs O(log n) amortized per
// metric for state maintenance, where the batch detector pays O(n log n)
// in sorts every time it runs.
//
// Determinism contract: DetectPhenomena returns exactly what a batch
// Detector with the same Config returns over the observed series —
// bit-identical features, extents and phenomena — because the rolling
// statistics are bit-equal to the batch ones (timeseries.Rolling) and the
// run/scan code is shared (DetectSpikesScaled, DetectLevelShiftsScaled).
// The fleet's byte-identical-reports guarantee survives the streaming
// rewrite unchanged.
type StreamDetector struct {
	det     *Detector
	streams map[string]*metricStream
}

// metricStream is one metric's rolling detection state.
type metricStream struct {
	s        timeseries.Series   // samples in observation order
	roll     *timeseries.Rolling // order statistics over s
	diff     timeseries.Series   // first differences of s
	diffRoll *timeseries.Rolling // order statistics over diff
}

func (m *metricStream) observe(v float64) {
	if len(m.s) > 0 {
		d := v - m.s[len(m.s)-1]
		m.diff = append(m.diff, d)
		m.diffRoll.Append(d)
	}
	m.s = append(m.s, v)
	m.roll.Append(v)
}

// NewStreamDetector creates a streaming detector; zero-valued config
// fields fall back to defaults exactly as NewDetector's do.
func NewStreamDetector(cfg Config) *StreamDetector {
	return &StreamDetector{
		det:     NewDetector(cfg),
		streams: make(map[string]*metricStream),
	}
}

// Observe appends one per-second sample of the named metric, updating its
// rolling state.
func (d *StreamDetector) Observe(metric string, v float64) {
	m := d.streams[metric]
	if m == nil {
		m = &metricStream{
			roll:     timeseries.NewRolling(),
			diffRoll: timeseries.NewRolling(),
		}
		d.streams[metric] = m
	}
	m.observe(v)
}

// ObserveSeries appends every sample of s, in order, to the named metric.
func (d *StreamDetector) ObserveSeries(metric string, s timeseries.Series) {
	for _, v := range s {
		d.Observe(metric, v)
	}
}

// Len returns the number of samples observed for a metric.
func (d *StreamDetector) Len(metric string) int {
	if m := d.streams[metric]; m != nil {
		return len(m.s)
	}
	return 0
}

// detectFeatures is DetectFeatures off the rolling state: the medians and
// robust scales come from the incrementally maintained order statistics,
// the scans are the shared batch code paths.
func (d *StreamDetector) detectFeatures(metric string, m *metricStream) []Event {
	cfg := d.det.cfg
	var events []Event
	if cfg.UseEWMA {
		// The EWMA control chart is a single O(n) recurrence with no
		// order statistics; the batch implementation is already the
		// streaming one.
		events = append(events, DetectEWMA(metric, m.s, cfg.EWMA)...)
	}
	if len(m.s) > 0 {
		med := m.roll.Median()
		scale := m.roll.MAD() * 1.4826
		if scale == 0 {
			// Rare fallback (constant-so-far metric): the batch rule
			// uses the plain standard deviation, computed on demand.
			scale = m.s.Std()
		}
		for _, sp := range m.s.DetectSpikesScaled(cfg.SpikeZ, med, scale) {
			f := SpikeUp
			if sp.Direction == timeseries.SpikeDown {
				f = SpikeDown
			}
			events = append(events, Event{Metric: metric, Feature: f, Start: sp.Start, End: sp.End})
		}
	}
	if len(m.s) >= 2*cfg.ShiftWindow {
		scale := m.diffRoll.MAD() * 1.4826
		if scale == 0 {
			scale = m.diff.Std()
		}
		for _, sh := range m.s.DetectLevelShiftsScaled(cfg.ShiftWindow, cfg.ShiftZ, scale) {
			f := LevelShiftUp
			if sh.Direction == timeseries.SpikeDown {
				f = LevelShiftDown
			}
			end := shiftExtent(m.s, sh.At, sh.Delta)
			events = append(events, Event{Metric: metric, Feature: f, Start: sh.At, End: end})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].Feature < events[j].Feature
	})
	return events
}

// DetectPhenomena runs the Phenomenon Perception Layer over the features
// detected from the current rolling state of every observed metric. The
// result is bit-identical to a batch Detector over the same series.
func (d *StreamDetector) DetectPhenomena(rules []Rule) []Phenomenon {
	features := make(map[string][]Event, len(d.streams))
	for name, m := range d.streams {
		features[name] = d.detectFeatures(name, m)
	}
	return d.det.assemblePhenomena(features, rules)
}
