package anomaly

import (
	"math"

	"pinsql/internal/timeseries"
)

// This file holds the additional detection methods the production system
// integrates alongside the robust spike/level-shift features (§IV-B cites
// "a variety of methods", including Pettitt's non-parametric change-point
// test [28] and control-chart style detectors). They are exposed both as
// standalone functions and as optional Detector features (Config.UseEWMA).

// PettittResult is the outcome of Pettitt's change-point test.
type PettittResult struct {
	// At is the most probable change-point index: the split maximizing
	// |U_t|.
	At int
	// K is max|U_t|.
	K float64
	// P is the approximate significance probability
	// p ≈ 2·exp(−6K²/(n³+n²)); small p means a significant change point.
	P float64
}

// Pettitt runs Pettitt's non-parametric change-point test on s. Series
// longer than maxN samples are downsampled first (the test is O(n²));
// maxN ≤ 0 selects 400. A zero-length or constant series returns P = 1.
func Pettitt(s timeseries.Series, maxN int) PettittResult {
	if maxN <= 0 {
		maxN = 400
	}
	factor := 1
	if len(s) > maxN {
		factor = (len(s) + maxN - 1) / maxN
		s = s.Downsample(factor)
	}
	n := len(s)
	if n < 3 {
		return PettittResult{P: 1}
	}

	// U_t = Σ_{i ≤ t} Σ_{j > t} sgn(x_j − x_i), computed incrementally:
	// U_t = U_{t−1} + Σ_j sgn(x_j − x_t) over all j — standard identity
	// U_t = U_{t-1} + V_t where V_t = Σ_{j=1..n} sgn(x_t_runs)…
	// We use the direct O(n²) accumulation of V_t = Σ_j sgn(x_j − x_t),
	// with U_t = U_{t−1} + V_t' where V_t' counts only j > t minus j ≤ t.
	best := PettittResult{P: 1}
	var u float64
	for t := 0; t < n-1; t++ {
		// Adding element t to the "left" side changes U by
		// Σ_{j>t} sgn(x_j − x_t) − Σ_{i<t… } — recompute the marginal:
		var v float64
		for j := t + 1; j < n; j++ {
			v += sign(s[j] - s[t])
		}
		for i := 0; i < t; i++ {
			v -= sign(s[t] - s[i])
		}
		u += v
		if k := math.Abs(u); k > best.K {
			best.K = k
			best.At = (t + 1) * factor
		}
	}
	nf := float64(n)
	best.P = math.Min(1, 2*math.Exp(-6*best.K*best.K/(nf*nf*nf+nf*nf)))
	return best
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// EWMAOptions tunes the EWMA control-chart detector.
type EWMAOptions struct {
	// Lambda is the smoothing factor in (0, 1]; smaller reacts slower
	// but detects smaller sustained shifts. Default 0.2.
	Lambda float64
	// L is the control-limit width in process standard deviations.
	// Default 4.
	L float64
	// Warmup samples establish the baseline before alarms can fire.
	// Default 30.
	Warmup int
}

// DetectEWMA runs a one-sided-up EWMA control chart over s and returns
// maximal alarm runs as events (feature SpikeUp — the chart reacts to both
// spikes and sustained shifts, which is why production systems layer it
// with the shape-specific detectors).
func DetectEWMA(metric string, s timeseries.Series, opt EWMAOptions) []Event {
	if opt.Lambda <= 0 || opt.Lambda > 1 {
		opt.Lambda = 0.2
	}
	if opt.L <= 0 {
		opt.L = 4
	}
	if opt.Warmup <= 0 {
		opt.Warmup = 30
	}
	if len(s) <= opt.Warmup {
		return nil
	}

	// Baseline mean/σ from the warmup, then updated only on in-control
	// samples so the anomaly does not poison its own control limits.
	base := s.Slice(0, opt.Warmup)
	mean := base.Mean()
	sigma := base.Std()
	if sigma == 0 {
		sigma = 1e-9
	}

	lam := opt.Lambda
	z := mean
	var events []Event
	runStart := -1
	for t := opt.Warmup; t < len(s); t++ {
		z = lam*s[t] + (1-lam)*z
		// Asymptotic control limit of the EWMA statistic.
		limit := mean + opt.L*sigma*math.Sqrt(lam/(2-lam))
		if z > limit {
			if runStart < 0 {
				runStart = t
			}
			continue
		}
		if runStart >= 0 {
			events = append(events, Event{Metric: metric, Feature: SpikeUp, Start: runStart, End: t})
			runStart = -1
		}
		// In control: let the baseline drift slowly with the process.
		mean = 0.995*mean + 0.005*s[t]
	}
	if runStart >= 0 {
		events = append(events, Event{Metric: metric, Feature: SpikeUp, Start: runStart, End: len(s)})
	}
	return events
}
