// Package anomaly implements the Anomaly Detection component of PinSQL's
// first module (§IV-B). It is organized exactly as the paper describes:
//
//   - a Basic Perception Layer that detects anomalous features (spike
//     up/down, level shift up/down) on individual performance metrics, and
//   - a Phenomenon Perception Layer that recognizes configured combinations
//     of those features (e.g. [active_session.spike]) as anomalous
//     phenomena, merges phenomena of the same type that occur close in
//     time, and drops phenomena shorter than a configurable duration.
//
// A recognized phenomenon is packaged as a Case (Definition II.2): the
// performance metrics M, the SQL templates Q with their aggregated series,
// and the anomaly window [as, ae), widened on the left by δs so the root
// cause — which usually appears before the detected anomaly — is inside the
// collected data.
package anomaly

import (
	"fmt"
	"sort"

	"pinsql/internal/collect"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// Feature is one anomalous feature kind of the Basic Perception Layer.
type Feature int

// Anomalous features (§II: spike up/down, level shift up/down).
const (
	SpikeUp Feature = iota
	SpikeDown
	LevelShiftUp
	LevelShiftDown
)

// String returns the configuration-file name of the feature.
func (f Feature) String() string {
	switch f {
	case SpikeUp:
		return "spike"
	case SpikeDown:
		return "spike_down"
	case LevelShiftUp:
		return "levelshift"
	case LevelShiftDown:
		return "levelshift_down"
	}
	return "unknown"
}

// Event is one detected anomalous feature on one metric.
type Event struct {
	Metric  string
	Feature Feature
	Start   int // second index, inclusive
	End     int // second index, exclusive
}

// Duration returns the event length in seconds.
func (e Event) Duration() int { return e.End - e.Start }

// Config tunes the two perception layers.
type Config struct {
	// SpikeZ is the robust z-score threshold of the spike detector.
	SpikeZ float64
	// ShiftWindow and ShiftZ configure the level-shift detector.
	ShiftWindow int
	ShiftZ      float64
	// MinDurationSec drops phenomena shorter than this ("users can
	// configure to ignore anomalies when their duration is less than a
	// certain length of time").
	MinDurationSec int
	// MergeGapSec merges same-type phenomena closer than this ("if
	// multiple anomaly phenomena of the same type occur close in time,
	// they will be merged into a longer anomaly").
	MergeGapSec int
	// UseEWMA additionally runs the EWMA control-chart detector as a
	// basic-layer feature source (off by default; the production system
	// layers several methods, §IV-B).
	UseEWMA bool
	// EWMA tunes the chart when UseEWMA is set.
	EWMA EWMAOptions
}

// DefaultConfig returns the detection defaults used in production.
func DefaultConfig() Config {
	return Config{
		SpikeZ:         8,
		ShiftWindow:    30,
		ShiftZ:         6,
		MinDurationSec: 5,
		MergeGapSec:    60,
	}
}

// Detector runs both perception layers.
type Detector struct {
	cfg Config
}

// NewDetector creates a detector; zero-valued config fields fall back to
// defaults.
func NewDetector(cfg Config) *Detector {
	def := DefaultConfig()
	if cfg.SpikeZ <= 0 {
		cfg.SpikeZ = def.SpikeZ
	}
	if cfg.ShiftWindow <= 0 {
		cfg.ShiftWindow = def.ShiftWindow
	}
	if cfg.ShiftZ <= 0 {
		cfg.ShiftZ = def.ShiftZ
	}
	if cfg.MinDurationSec <= 0 {
		cfg.MinDurationSec = def.MinDurationSec
	}
	if cfg.MergeGapSec <= 0 {
		cfg.MergeGapSec = def.MergeGapSec
	}
	return &Detector{cfg: cfg}
}

// DetectFeatures runs the Basic Perception Layer on one metric series and
// returns every detected anomalous feature, sorted by start time.
func (d *Detector) DetectFeatures(metric string, s timeseries.Series) []Event {
	var events []Event
	if d.cfg.UseEWMA {
		events = append(events, DetectEWMA(metric, s, d.cfg.EWMA)...)
	}
	for _, sp := range s.DetectSpikes(d.cfg.SpikeZ) {
		f := SpikeUp
		if sp.Direction == timeseries.SpikeDown {
			f = SpikeDown
		}
		events = append(events, Event{Metric: metric, Feature: f, Start: sp.Start, End: sp.End})
	}
	for _, sh := range s.DetectLevelShifts(d.cfg.ShiftWindow, d.cfg.ShiftZ) {
		f := LevelShiftUp
		if sh.Direction == timeseries.SpikeDown {
			f = LevelShiftDown
		}
		// A level shift's extent: from the change point until the series
		// returns near its pre-shift level, or the trace end.
		end := shiftExtent(s, sh.At, sh.Delta)
		events = append(events, Event{Metric: metric, Feature: f, Start: sh.At, End: end})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].Feature < events[j].Feature
	})
	return events
}

// shiftExtent scans forward from a level-shift change point and returns the
// first index where the series has recovered to within half the shift of
// the pre-shift mean, or the series end.
func shiftExtent(s timeseries.Series, at int, delta float64) int {
	pre := s.Slice(0, at).Mean()
	for i := at; i < len(s); i++ {
		recovered := (delta > 0 && s[i] < pre+delta/2) || (delta < 0 && s[i] > pre+delta/2)
		if recovered {
			return i
		}
	}
	return len(s)
}

// Condition is one metric/feature requirement inside a phenomenon rule.
type Condition struct {
	Metric   string
	Features []Feature // any of these qualifies
}

// Rule is a Phenomenon Perception Layer configuration: the phenomenon fires
// when every condition has a matching basic-layer event overlapping in time.
// The paper's example configuration `[active_session.spike]` is a rule with
// a single condition.
type Rule struct {
	Name       string
	Conditions []Condition
}

// String renders the rule in the paper's bracket notation.
func (r Rule) String() string {
	out := "["
	for i, c := range r.Conditions {
		if i > 0 {
			out += ", "
		}
		for j, f := range c.Features {
			if j > 0 {
				out += "|"
			}
			out += fmt.Sprintf("%s.%s", c.Metric, f)
		}
	}
	return out + "]"
}

// DefaultRules is the production default configuration: anomalies on the
// active session, CPU usage and IOPS usage metrics (§IV-B).
func DefaultRules() []Rule {
	mk := func(name, metric string) Rule {
		return Rule{
			Name: name,
			Conditions: []Condition{{
				Metric:   metric,
				Features: []Feature{SpikeUp, LevelShiftUp},
			}},
		}
	}
	return []Rule{
		mk("active_session_anomaly", MetricActiveSession),
		mk("cpu_usage_anomaly", MetricCPUUsage),
		mk("iops_usage_anomaly", MetricIOPSUsage),
	}
}

// Canonical metric names used across the system.
const (
	MetricActiveSession = "active_session"
	MetricCPUUsage      = "cpu_usage"
	MetricIOPSUsage     = "iops_usage"
	MetricMemUsage      = "mem_usage"
	MetricRowLockWaits  = "innodb_row_lock_waits"
	MetricMDLWaits      = "mdl_waits"
	MetricQPS           = "qps"
)

// Phenomenon is a recognized anomalous phenomenon: a rule that fired over a
// time window, with the contributing basic-layer events.
type Phenomenon struct {
	Rule   string
	Start  int // second index, inclusive
	End    int // second index, exclusive
	Events []Event
}

// Duration returns the phenomenon length in seconds.
func (p Phenomenon) Duration() int { return p.End - p.Start }

// DetectPhenomena runs both layers over a set of named metric series and
// returns the recognized phenomena, merged and duration-filtered.
func (d *Detector) DetectPhenomena(metrics map[string]timeseries.Series, rules []Rule) []Phenomenon {
	features := make(map[string][]Event, len(metrics))
	for name, s := range metrics {
		features[name] = d.DetectFeatures(name, s)
	}
	return d.assemblePhenomena(features, rules)
}

// assemblePhenomena is the Phenomenon Perception Layer proper: rule
// application over the basic-layer features, same-type merging, duration
// filtering and the deterministic final order. The batch and streaming
// basic layers both feed it.
func (d *Detector) assemblePhenomena(features map[string][]Event, rules []Rule) []Phenomenon {
	var phenomena []Phenomenon
	for _, rule := range rules {
		phenomena = append(phenomena, d.applyRule(rule, features)...)
	}
	phenomena = d.mergePhenomena(phenomena)

	kept := phenomena[:0]
	for _, p := range phenomena {
		if p.Duration() >= d.cfg.MinDurationSec {
			kept = append(kept, p)
		}
	}
	// Stable with a rule tiebreak: phenomena order must be a pure function
	// of the input (diagnosis reports are compared byte-for-byte across
	// runs), and an unstable sort reorders equal-Start entries at random.
	sort.SliceStable(kept, func(i, j int) bool {
		if kept[i].Start != kept[j].Start {
			return kept[i].Start < kept[j].Start
		}
		return kept[i].Rule < kept[j].Rule
	})
	return kept
}

// applyRule finds time windows where every condition of the rule has a
// matching event. For single-condition rules (the common configuration)
// each matching event yields one phenomenon; multi-condition rules require
// overlap with the first condition's events.
func (d *Detector) applyRule(rule Rule, features map[string][]Event) []Phenomenon {
	if len(rule.Conditions) == 0 {
		return nil
	}
	anchors := matching(features, rule.Conditions[0])
	var out []Phenomenon
	for _, anchor := range anchors {
		events := []Event{anchor}
		ok := true
		for _, cond := range rule.Conditions[1:] {
			found := false
			for _, ev := range matching(features, cond) {
				if ev.Start < anchor.End && anchor.Start < ev.End {
					events = append(events, ev)
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		start, end := anchor.Start, anchor.End
		for _, ev := range events[1:] {
			if ev.Start < start {
				start = ev.Start
			}
			if ev.End > end {
				end = ev.End
			}
		}
		out = append(out, Phenomenon{Rule: rule.Name, Start: start, End: end, Events: events})
	}
	return out
}

func matching(features map[string][]Event, cond Condition) []Event {
	var out []Event
	for _, ev := range features[cond.Metric] {
		for _, f := range cond.Features {
			if ev.Feature == f {
				out = append(out, ev)
				break
			}
		}
	}
	return out
}

// mergePhenomena merges same-rule phenomena whose gap is below MergeGapSec.
func (d *Detector) mergePhenomena(ps []Phenomenon) []Phenomenon {
	byRule := make(map[string][]Phenomenon)
	for _, p := range ps {
		byRule[p.Rule] = append(byRule[p.Rule], p)
	}
	rules := make([]string, 0, len(byRule))
	for rule := range byRule {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	var out []Phenomenon
	for _, rule := range rules {
		group := byRule[rule]
		sort.SliceStable(group, func(i, j int) bool { return group[i].Start < group[j].Start })
		cur := group[0]
		for _, p := range group[1:] {
			if p.Start-cur.End <= d.cfg.MergeGapSec {
				if p.End > cur.End {
					cur.End = p.End
				}
				cur.Events = append(cur.Events, p.Events...)
				continue
			}
			out = append(out, cur)
			cur = p
		}
		out = append(out, cur)
	}
	return out
}

// Case is an anomaly case C = (M, Q, as, ae) per Definition II.2, plus the
// per-template history windows the R-SQL verifier needs (§VI). All times
// are second indexes into the snapshot's window [ts, te), where
// ts = as − δs.
type Case struct {
	Snapshot   *collect.Snapshot
	Phenomenon Phenomenon
	AS, AE     int // anomaly window [as, ae) in snapshot-relative seconds

	// History holds #execution series of earlier, same-length windows
	// (Nd days ago), used by History Trend Verification.
	History []HistoryWindow
}

// HistoryWindow is a template→#execution map for one relative day offset.
type HistoryWindow struct {
	DaysAgo int
	Counts  map[sqltemplate.ID]timeseries.Series
}

// NewCase builds a Case from a snapshot and a recognized phenomenon.
func NewCase(snap *collect.Snapshot, p Phenomenon) *Case {
	as, ae := p.Start, p.End
	if as < 0 {
		as = 0
	}
	if ae > snap.Seconds {
		ae = snap.Seconds
	}
	return &Case{Snapshot: snap, Phenomenon: p, AS: as, AE: ae}
}
