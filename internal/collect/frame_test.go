package collect

import (
	"fmt"
	"testing"

	"pinsql/internal/dbsim"
	"pinsql/internal/logstore"
	"pinsql/internal/sqltemplate"
)

// ingestMixed feeds a small deterministic workload: three templates with
// interleaved, deliberately unordered arrivals plus one throttled record.
func ingestMixed(c *Collector) {
	c.Ingest(rec("T1", "SELECT 1", "a", dbsim.KindSelect, 5_000, 10, 1))
	c.Ingest(rec("T2", "UPDATE t", "b", dbsim.KindUpdate, 2_000, 20, 2))
	c.Ingest(rec("T1", "SELECT 1", "a", dbsim.KindSelect, 1_000, 30, 3))
	c.Ingest(rec("T3", "DELETE x", "c", dbsim.KindDelete, 9_000, 40, 4))
	c.Ingest(rec("T1", "SELECT 1", "a", dbsim.KindSelect, 1_000, 50, 5)) // arrival tie with the 30ms obs
	throttled := rec("T2", "UPDATE t", "b", dbsim.KindUpdate, 3_000, 60, 6)
	throttled.Throttled = true
	c.Ingest(throttled)
}

func TestFrameMatchesStoreScan(t *testing.T) {
	c := NewCollector("frames", 0, 20_000, nil, nil)
	ingestMixed(c)
	f := c.Frame()

	// Per template, the frame's observation column must equal the store's
	// arrival-sorted scan of that template — same values, same tie order.
	type obs struct {
		a int64
		r float64
	}
	fromStore := make(map[int32][]obs)
	c.Store().ScanFunc("frames", 0, 20_000, func(r logstore.Record) bool {
		fromStore[r.TemplateIdx] = append(fromStore[r.TemplateIdx], obs{r.ArrivalMs, r.ResponseMs})
		return true
	})
	total := 0
	for pos := range f.Templates {
		arr, resp := f.Obs(pos)
		want := fromStore[f.Templates[pos].Meta.Index]
		if len(arr) != len(want) {
			t.Fatalf("template %d: %d obs in frame, %d in store", pos, len(arr), len(want))
		}
		for i := range want {
			if arr[i] != want[i].a || resp[i] != want[i].r {
				t.Fatalf("template %d obs %d = (%d, %g), store has (%d, %g)",
					pos, i, arr[i], resp[i], want[i].a, want[i].r)
			}
		}
		total += len(arr)
	}
	if total != f.NumObs() {
		t.Errorf("NumObs = %d, summed %d", f.NumObs(), total)
	}
}

func TestFrameMatchesSnapshotAggregates(t *testing.T) {
	c := NewCollector("frames", 0, 20_000, nil, nil)
	ingestMixed(c)
	c.IngestMetrics([]dbsim.SecondMetrics{{Second: 0, ActiveSession: 3, CPUUsage: 0.5}})
	f := c.Frame()
	snap := c.Snapshot()

	if len(f.Templates) != len(snap.Templates) {
		t.Fatalf("frame has %d templates, snapshot %d", len(f.Templates), len(snap.Templates))
	}
	for i := range snap.Templates {
		st, ft := snap.Templates[i], &f.Templates[i]
		if TemplateMeta(ft.Meta) != st.Meta {
			t.Errorf("template %d meta: frame %+v vs snapshot %+v", i, ft.Meta, st.Meta)
		}
		if ft.Count.Sum() != st.Count.Sum() || ft.SumRT.Sum() != st.SumRT.Sum() {
			t.Errorf("template %d aggregates differ", i)
		}
	}
	if f.ActiveSession[0] != snap.ActiveSession[0] || f.CPUUsage[0] != snap.CPUUsage[0] {
		t.Error("metric series differ between frame and snapshot")
	}

	// SnapshotOfFrame closes the loop: a snapshot view over the frame is
	// indistinguishable from the collector's own snapshot.
	view := SnapshotOfFrame(f)
	if view.Topic != snap.Topic || view.Seconds != snap.Seconds || view.StartMs != snap.StartMs {
		t.Errorf("SnapshotOfFrame header = %s/%d/%d", view.Topic, view.Seconds, view.StartMs)
	}
	for i := range snap.Templates {
		if view.Templates[i].Meta != snap.Templates[i].Meta {
			t.Errorf("SnapshotOfFrame template %d meta differs", i)
		}
	}
}

func TestFrameCacheInvalidation(t *testing.T) {
	c := NewCollector("frames", 0, 20_000, nil, nil)
	ingestMixed(c)
	f1 := c.Frame()
	if c.Frame() != f1 {
		t.Error("second Frame() call rebuilt an unchanged window")
	}
	c.Ingest(rec("T1", "SELECT 1", "a", dbsim.KindSelect, 6_000, 70, 7))
	f2 := c.Frame()
	if f2 == f1 {
		t.Error("Frame() returned a stale cache after Ingest")
	}
	if f2.NumObs() != f1.NumObs()+1 {
		t.Errorf("NumObs = %d after one more record (was %d)", f2.NumObs(), f1.NumObs())
	}
	c.IngestMetrics([]dbsim.SecondMetrics{{Second: 1, ActiveSession: 1}})
	if c.Frame() == f2 {
		t.Error("Frame() returned a stale cache after IngestMetrics")
	}
	// A throttled record carries no observation but still counts toward
	// the Throttled series, so it must invalidate too.
	tr := rec("T1", "SELECT 1", "a", dbsim.KindSelect, 7_000, 80, 8)
	tr.Throttled = true
	f3 := c.Frame()
	c.Ingest(tr)
	if c.Frame() == f3 {
		t.Error("Frame() returned a stale cache after a throttled Ingest")
	}
}

func TestSnapshotTemplateLookup(t *testing.T) {
	c := NewCollector("frames", 0, 20_000, nil, nil)
	ingestMixed(c)
	snap := c.Snapshot()
	ts := snap.Template(sqltemplate.ID("T2"))
	if ts == nil || ts.Meta.ID != "T2" {
		t.Fatalf("Template(T2) = %+v", ts)
	}
	if snap.Template(sqltemplate.ID("nope")) != nil {
		t.Error("lookup of a missing template succeeded")
	}
	// The lazy index must serve repeated lookups from the same map.
	if snap.Template(sqltemplate.ID("T1")) != snap.Template(sqltemplate.ID("T1")) {
		t.Error("repeated lookups disagree")
	}
}

// BenchmarkSnapshotTemplate measures the ID lookup that used to walk the
// template slice linearly — the lazy index makes it O(1) after the first
// call.
func BenchmarkSnapshotTemplate(b *testing.B) {
	c := NewCollector("bench", 0, 1_000_000, nil, nil)
	const n = 2000
	ids := make([]sqltemplate.ID, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("T%04d", i)
		c.Ingest(rec(id, "SELECT "+id, "t", dbsim.KindSelect, int64(i), 1, 1))
		ids[i] = sqltemplate.ID(id)
	}
	snap := c.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap.Template(ids[i%n]) == nil {
			b.Fatal("missing template")
		}
	}
}
