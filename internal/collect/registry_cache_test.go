package collect

// Tests for the raw-SQL interning cache: it must be a pure accelerator —
// identical registry contents and identical Intern results with the cache
// on, off, or pathologically small — and it must stay race-clean under
// concurrent interning.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pinsql/internal/dbsim"
)

// cacheWorkload yields raw-SQL log records with repeated statements (cache
// hits), literal variants of one shape (same template, new raw spellings),
// and unique statements (cache churn).
func cacheWorkload(seed int64, n int) []dbsim.LogRecord {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]dbsim.LogRecord, 0, n)
	for i := 0; i < n; i++ {
		var sql string
		switch rng.Intn(4) {
		case 0: // hot statement repeated verbatim
			sql = "SELECT * FROM orders WHERE id = 1"
		case 1: // same template, varying literal
			sql = fmt.Sprintf("SELECT * FROM orders WHERE id = %d", rng.Intn(50))
		case 2: // another hot template
			sql = fmt.Sprintf("UPDATE users SET age = %d WHERE name = 'u%d'", rng.Intn(99), rng.Intn(10))
		default: // unique statement
			sql = fmt.Sprintf("INSERT INTO t%d (a) VALUES (%d)", i, i)
		}
		recs = append(recs, dbsim.LogRecord{SQL: sql, Table: "orders", Kind: dbsim.KindSelect})
	}
	return recs
}

// TestRegistryCacheDifferential drives identical record streams through a
// cache-enabled and a cache-disabled registry and asserts every Intern
// result and the final registry contents are identical.
func TestRegistryCacheDifferential(t *testing.T) {
	recs := cacheWorkload(11, 5000)
	on := NewRegistry()
	off := NewRegistry()
	off.SetRawCacheCap(0)
	tiny := NewRegistry()
	tiny.SetRawCacheCap(3) // pathological bound: constant eviction

	for i, rec := range recs {
		a, b, c := on.Intern(rec), off.Intern(rec), tiny.Intern(rec)
		if a != b || a != c {
			t.Fatalf("record %d (%q): cache-on %+v, cache-off %+v, tiny %+v", i, rec.SQL, a, b, c)
		}
	}
	if !reflect.DeepEqual(on.Entries(), off.Entries()) {
		t.Fatal("cache-on and cache-off registries diverged")
	}
	if !reflect.DeepEqual(on.Entries(), tiny.Entries()) {
		t.Fatal("cache-on and tiny-cache registries diverged")
	}

	hits, misses, size := on.RawCacheStats()
	if hits == 0 {
		t.Error("expected cache hits on a workload with repeated statements")
	}
	if misses == 0 {
		t.Error("expected cache misses on first sight of each statement")
	}
	if size > DefaultRawCacheCap {
		t.Errorf("cache size %d exceeds cap %d", size, DefaultRawCacheCap)
	}
	if offHits, _, offSize := off.RawCacheStats(); offHits != 0 || offSize != 0 {
		t.Errorf("disabled cache recorded hits=%d size=%d", offHits, offSize)
	}
	if _, _, tinySize := tiny.RawCacheStats(); tinySize > 3 {
		t.Errorf("tiny cache size %d exceeds cap 3", tinySize)
	}
}

// TestRegistryCacheBounded floods the cache with unique statements and
// asserts the bound holds.
func TestRegistryCacheBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < DefaultRawCacheCap*2; i++ {
		r.Intern(dbsim.LogRecord{SQL: fmt.Sprintf("SELECT %d FROM t WHERE c = 'x%d'", i, i)})
	}
	if _, _, size := r.RawCacheStats(); size > DefaultRawCacheCap {
		t.Fatalf("cache size %d exceeds cap %d", size, DefaultRawCacheCap)
	}
}

// TestRegistryCacheConcurrent hammers one registry from many goroutines
// with overlapping raw statements; under -race this proves the cache's
// read-path/insert-path locking, and every goroutine must observe
// identical metadata for identical SQL.
func TestRegistryCacheConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetRawCacheCap(64) // small enough to exercise eviction concurrently
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([][]TemplateMeta, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			recs := cacheWorkload(99, 2000) // same stream in every goroutine
			out := make([]TemplateMeta, 0, len(recs))
			for _, rec := range recs {
				out = append(out, r.Intern(rec))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i].ID != results[0][i].ID || results[g][i].Text != results[0][i].Text {
				t.Fatalf("goroutine %d record %d: %+v vs %+v", g, i, results[g][i], results[0][i])
			}
		}
	}
}
