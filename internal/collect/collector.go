package collect

import (
	"sync"

	"pinsql/internal/dbsim"
	"pinsql/internal/logstore"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// TemplateSeries is the aggregated view of one SQL template over the
// collection window: per-second #execution, total response time and total
// examined rows, produced by the sum/count aggregation of §IV-A.
type TemplateSeries struct {
	Meta TemplateMeta

	Count     timeseries.Series // #execution per second
	SumRT     timeseries.Series // Σ tres per second, milliseconds
	SumRows   timeseries.Series // Σ #examined_rows per second
	Throttled timeseries.Series // statements rejected by a throttle rule
}

// MeanRT returns the average response time per executed statement over the
// whole window, in milliseconds.
func (ts *TemplateSeries) MeanRT() float64 {
	n := ts.Count.Sum()
	if n == 0 {
		return 0
	}
	return ts.SumRT.Sum() / n
}

// MeanRows returns the average examined rows per executed statement.
func (ts *TemplateSeries) MeanRows() float64 {
	n := ts.Count.Sum()
	if n == 0 {
		return 0
	}
	return ts.SumRows.Sum() / n
}

// Snapshot is the assembled data of one collection window: everything the
// diagnosis pipeline consumes.
type Snapshot struct {
	Topic   string
	StartMs int64
	Seconds int

	Templates []*TemplateSeries

	// Instance performance metrics (Definition II.4), one sample/second.
	ActiveSession timeseries.Series // SHOW STATUS samples — the headline metric
	AvgSession    timeseries.Series
	CPUUsage      timeseries.Series
	IOPSUsage     timeseries.Series
	MemUsage      timeseries.Series
	QPS           timeseries.Series
	RowLockWaits  timeseries.Series
	MDLWaits      timeseries.Series

	// byID is the lazily built ID→series index behind Template; it sits
	// on the repair and fig8 hot paths, which resolve templates by ID per
	// suggestion.
	byIDOnce sync.Once
	byID     map[sqltemplate.ID]*TemplateSeries
}

// Template returns the series for a template ID, or nil. The lookup index
// is built once on first use; callers must not grow s.Templates afterwards.
func (s *Snapshot) Template(id sqltemplate.ID) *TemplateSeries {
	s.byIDOnce.Do(func() {
		m := make(map[sqltemplate.ID]*TemplateSeries, len(s.Templates))
		for _, ts := range s.Templates {
			if _, dup := m[ts.Meta.ID]; !dup { // first match wins, as the linear scan did
				m[ts.Meta.ID] = ts
			}
		}
		s.byID = m
	})
	return s.byID[id]
}

// Collector ingests the raw query-log stream and instance metrics of one
// database instance over a fixed window, producing per-template aggregates
// and archiving compact records in the log store.
type Collector struct {
	mu       sync.Mutex
	topic    string
	startMs  int64
	seconds  int
	registry *Registry
	store    logstore.Backend

	templates map[int32]*TemplateSeries

	// obs accumulates each template's raw observation columns during
	// Ingest — the same records the store archives, in the same insertion
	// order — so Frame() never re-scans the store.
	obs map[int32]*obsColumns

	metrics []dbsim.SecondMetrics

	records int64 // raw query records archived to the store

	// frame caches the last built window frame; any later Ingest or
	// IngestMetrics invalidates it (mid-window snapshots, as in the Fig. 8
	// scripted scenario, rebuild on the next Frame call).
	frame *window.Frame
}

// obsColumns is one template's in-progress observation columns, appended in
// log-store insertion order.
type obsColumns struct {
	arrival  []int64
	response []float64
}

// NewCollector creates a collector for the window [startMs, endMs) on the
// given topic (instance name). registry and store may be shared across
// collectors; nil values create private ones. The store may be any
// logstore.Backend — the volatile in-memory store or the durable segment
// store (logstore/segment).
func NewCollector(topic string, startMs, endMs int64, registry *Registry, store logstore.Backend) *Collector {
	if registry == nil {
		registry = NewRegistry()
	}
	if store == nil {
		store = logstore.New(0)
	}
	return &Collector{
		topic:     topic,
		startMs:   startMs,
		seconds:   int((endMs - startMs + 999) / 1000),
		registry:  registry,
		store:     store,
		templates: make(map[int32]*TemplateSeries),
		obs:       make(map[int32]*obsColumns),
	}
}

// Registry returns the template registry backing this collector.
func (c *Collector) Registry() *Registry { return c.registry }

// Store returns the log store backing this collector.
func (c *Collector) Store() logstore.Backend { return c.store }

// Sink returns a dbsim.LogSink that feeds this collector; plug it directly
// into a simulation run.
func (c *Collector) Sink() dbsim.LogSink { return c.Ingest }

// Ingest consumes one query-log record.
func (c *Collector) Ingest(rec dbsim.LogRecord) {
	if rec.ArrivalMs < c.startMs {
		return // integer division would round -1..-999 ms up to second 0
	}
	sec := int((rec.ArrivalMs - c.startMs) / 1000)
	if sec >= c.seconds {
		return
	}
	meta := c.registry.Intern(rec)

	c.mu.Lock()
	ts, ok := c.templates[meta.Index]
	if !ok {
		ts = &TemplateSeries{
			Meta:      meta,
			Count:     make(timeseries.Series, c.seconds),
			SumRT:     make(timeseries.Series, c.seconds),
			SumRows:   make(timeseries.Series, c.seconds),
			Throttled: make(timeseries.Series, c.seconds),
		}
		c.templates[meta.Index] = ts
	}
	if rec.Throttled {
		ts.Throttled[sec]++
		c.frame = nil
		c.mu.Unlock()
		return
	}
	ts.Count[sec]++
	ts.SumRT[sec] += rec.ResponseMs
	ts.SumRows[sec] += float64(rec.ExaminedRows)
	c.records++

	// Observation columns for the window frame: the same record the store
	// archives below, in the same order.
	col, ok := c.obs[meta.Index]
	if !ok {
		col = &obsColumns{}
		c.obs[meta.Index] = col
	}
	col.arrival = append(col.arrival, rec.ArrivalMs)
	col.response = append(col.response, rec.ResponseMs)
	c.frame = nil

	// Raw record for the log store (session estimation needs per-query
	// start and response times, §IV-C). Loose append: records are emitted
	// at completion, so lock-delayed statements arrive far out of arrival
	// order. Appended under c.mu so the column order above always equals
	// the store's insertion order — the tie-break order both sides of the
	// frame/legacy equivalence rely on.
	c.store.AppendLoose(c.topic, logstore.Record{
		TemplateIdx:  meta.Index,
		ArrivalMs:    rec.ArrivalMs,
		ResponseMs:   rec.ResponseMs,
		ExaminedRows: rec.ExaminedRows,
	})
	c.mu.Unlock()
}

// IngestMetrics stores the instance's per-second performance metrics.
//
// Contract (audited for the ingest layer): placement is positional, not
// keyed — row i of the accumulated calls lands at window second i and the
// rows' Second fields are ignored. That is exactly right for stacking
// multiple simulator runs into one window (each dbsim run's rows are
// 0-based, as in the Fig. 8 scripted scenario), and exactly wrong for
// real samplers, whose rows are sparse and sometimes double-reported:
// a gap would shift every later row one second early. Samplers and the
// trace replay path must use IngestMetricsAt.
func (c *Collector) IngestMetrics(rows []dbsim.SecondMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = append(c.metrics, rows...)
	c.frame = nil
}

// IngestMetricsAt stores per-second performance metrics keyed by each
// row's window-relative Second: gaps stay zero rows, a duplicated second
// keeps the last row, rows outside [0, seconds) are dropped. For the
// dense 0-based rows the simulator produces this is bit-identical to
// IngestMetrics; for sparse sampler output it places every row at its
// actual second.
func (c *Collector) IngestMetricsAt(rows []dbsim.SecondMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range rows {
		if m.Second < 0 || m.Second >= int64(c.seconds) {
			continue
		}
		for int64(len(c.metrics)) <= m.Second {
			c.metrics = append(c.metrics, dbsim.SecondMetrics{Second: int64(len(c.metrics))})
		}
		c.metrics[m.Second] = m
	}
	c.frame = nil
}

// Snapshot assembles the aggregated window view. It is safe to call while
// ingestion continues; the returned series are copies.
func (c *Collector) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()

	snap := &Snapshot{
		Topic:         c.topic,
		StartMs:       c.startMs,
		Seconds:       c.seconds,
		ActiveSession: make(timeseries.Series, c.seconds),
		AvgSession:    make(timeseries.Series, c.seconds),
		CPUUsage:      make(timeseries.Series, c.seconds),
		IOPSUsage:     make(timeseries.Series, c.seconds),
		MemUsage:      make(timeseries.Series, c.seconds),
		QPS:           make(timeseries.Series, c.seconds),
		RowLockWaits:  make(timeseries.Series, c.seconds),
		MDLWaits:      make(timeseries.Series, c.seconds),
	}
	for i, m := range c.metrics {
		if i >= c.seconds {
			break
		}
		snap.ActiveSession[i] = m.ActiveSession
		snap.AvgSession[i] = m.AvgActiveSession
		snap.CPUUsage[i] = m.CPUUsage
		snap.IOPSUsage[i] = m.IOPSUsage
		snap.MemUsage[i] = m.MemUsage
		snap.QPS[i] = float64(m.QPS)
		snap.RowLockWaits[i] = float64(m.RowLockWaits)
		snap.MDLWaits[i] = float64(m.MDLWaits)
	}

	snap.Templates = make([]*TemplateSeries, 0, len(c.templates))
	for _, ts := range c.templates {
		snap.Templates = append(snap.Templates, &TemplateSeries{
			Meta:      ts.Meta,
			Count:     ts.Count.Clone(),
			SumRT:     ts.SumRT.Clone(),
			SumRows:   ts.SumRows.Clone(),
			Throttled: ts.Throttled.Clone(),
		})
	}
	// Deterministic order: by registry index.
	sortTemplates(snap.Templates)
	return snap
}

// Frame assembles (and caches) the collection window as a columnar
// window.Frame — per-template aggregates, observation columns grouped by
// template position, the metric series, and the ByID permutation. The
// frame is built from data accumulated during Ingest; the log store is
// never re-scanned. Like Snapshot, the frame's series are copies: further
// ingestion invalidates the cache instead of mutating a returned frame.
func (c *Collector) Frame() *window.Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frame != nil {
		return c.frame
	}

	f := &window.Frame{
		Topic:         c.topic,
		StartMs:       c.startMs,
		Seconds:       c.seconds,
		ActiveSession: make(timeseries.Series, c.seconds),
		AvgSession:    make(timeseries.Series, c.seconds),
		CPUUsage:      make(timeseries.Series, c.seconds),
		IOPSUsage:     make(timeseries.Series, c.seconds),
		MemUsage:      make(timeseries.Series, c.seconds),
		QPS:           make(timeseries.Series, c.seconds),
		RowLockWaits:  make(timeseries.Series, c.seconds),
		MDLWaits:      make(timeseries.Series, c.seconds),
	}
	for i, m := range c.metrics {
		if i >= c.seconds {
			break
		}
		f.ActiveSession[i] = m.ActiveSession
		f.AvgSession[i] = m.AvgActiveSession
		f.CPUUsage[i] = m.CPUUsage
		f.IOPSUsage[i] = m.IOPSUsage
		f.MemUsage[i] = m.MemUsage
		f.QPS[i] = float64(m.QPS)
		f.RowLockWaits[i] = float64(m.RowLockWaits)
		f.MDLWaits[i] = float64(m.MDLWaits)
	}

	ordered := make([]*TemplateSeries, 0, len(c.templates))
	for _, ts := range c.templates {
		ordered = append(ordered, ts)
	}
	sortTemplates(ordered)

	total := 0
	for _, col := range c.obs {
		total += len(col.arrival)
	}
	f.Templates = make([]window.Template, len(ordered))
	f.Off = make([]int32, len(ordered)+1)
	f.Arrival = make([]int64, 0, total)
	f.Response = make([]float64, 0, total)
	for i, ts := range ordered {
		f.Templates[i] = window.Template{
			Meta:      window.Meta(ts.Meta),
			Count:     ts.Count.Clone(),
			SumRT:     ts.SumRT.Clone(),
			SumRows:   ts.SumRows.Clone(),
			Throttled: ts.Throttled.Clone(),
		}
		if col := c.obs[ts.Meta.Index]; col != nil {
			f.Arrival = append(f.Arrival, col.arrival...)
			f.Response = append(f.Response, col.response...)
		}
		f.Off[i+1] = int32(len(f.Arrival))
	}
	f.Finalize()
	c.frame = f
	return f
}

// SnapshotOfFrame derives a Snapshot view from a frame for code that still
// speaks the legacy aggregate type (the anomaly detector's NewCase, repair
// suggestion rules, Top-SQL baselines). The snapshot shares the frame's
// series — treat it as read-only; mutating callers must use
// Collector.Snapshot, which clones.
func SnapshotOfFrame(f *window.Frame) *Snapshot {
	snap := &Snapshot{
		Topic:         f.Topic,
		StartMs:       f.StartMs,
		Seconds:       f.Seconds,
		ActiveSession: f.ActiveSession,
		AvgSession:    f.AvgSession,
		CPUUsage:      f.CPUUsage,
		IOPSUsage:     f.IOPSUsage,
		MemUsage:      f.MemUsage,
		QPS:           f.QPS,
		RowLockWaits:  f.RowLockWaits,
		MDLWaits:      f.MDLWaits,
		Templates:     make([]*TemplateSeries, len(f.Templates)),
	}
	for i := range f.Templates {
		t := &f.Templates[i]
		snap.Templates[i] = &TemplateSeries{
			Meta:      TemplateMeta(t.Meta),
			Count:     t.Count,
			SumRT:     t.SumRT,
			SumRows:   t.SumRows,
			Throttled: t.Throttled,
		}
	}
	return snap
}

// Records returns the number of raw query records this collector has
// archived to the log store (throttled statements are counted in the
// Throttled series instead). The fleet exports it per window.
func (c *Collector) Records() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records
}

// QueriesOf returns the raw per-query records of one template inside
// [fromMs, toMs), for the session estimator. It streams the store's range
// instead of materializing every record in the window.
func (c *Collector) QueriesOf(idx int32, fromMs, toMs int64) []logstore.Record {
	var out []logstore.Record
	c.store.ScanFunc(c.topic, fromMs, toMs, func(r logstore.Record) bool {
		if r.TemplateIdx == idx {
			out = append(out, r)
		}
		return true
	})
	return out
}

func sortTemplates(ts []*TemplateSeries) {
	// Insertion sort: template counts per snapshot are moderate and the
	// input is usually almost sorted (registry order of first arrival).
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1].Meta.Index > ts[j].Meta.Index; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}
