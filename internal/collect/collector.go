package collect

import (
	"math"
	"sort"
	"sync"

	"pinsql/internal/dbsim"
	"pinsql/internal/logstore"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// TemplateSeries is the aggregated view of one SQL template over the
// collection window: per-second #execution, total response time and total
// examined rows, produced by the sum/count aggregation of §IV-A.
type TemplateSeries struct {
	Meta TemplateMeta

	Count     timeseries.Series // #execution per second
	SumRT     timeseries.Series // Σ tres per second, milliseconds
	SumRows   timeseries.Series // Σ #examined_rows per second
	Throttled timeseries.Series // statements rejected by a throttle rule

	// sealed marks the live series as referenced by the collector's last
	// sealed frame: the next aggregate mutation clones them first
	// (copy-on-seal), so sealed frames stay immutable without recopying
	// untouched templates at every seal.
	sealed bool
	// sealPos is 1 + this template's position in the last sealed frame
	// (0 = not in it): the delta build fetches a clean group's
	// already-sorted column from there instead of re-sorting its tail.
	sealPos int32
}

// touch prepares the series for mutation: if the last sealed frame still
// references them, fresh copies replace them first.
func (ts *TemplateSeries) touch() {
	if !ts.sealed {
		return
	}
	ts.Count = ts.Count.Clone()
	ts.SumRT = ts.SumRT.Clone()
	ts.SumRows = ts.SumRows.Clone()
	ts.Throttled = ts.Throttled.Clone()
	ts.sealed = false
}

// MeanRT returns the average response time per executed statement over the
// whole window, in milliseconds.
func (ts *TemplateSeries) MeanRT() float64 {
	n := ts.Count.Sum()
	if n == 0 {
		return 0
	}
	return ts.SumRT.Sum() / n
}

// MeanRows returns the average examined rows per executed statement.
func (ts *TemplateSeries) MeanRows() float64 {
	n := ts.Count.Sum()
	if n == 0 {
		return 0
	}
	return ts.SumRows.Sum() / n
}

// Snapshot is the assembled data of one collection window: everything the
// diagnosis pipeline consumes.
type Snapshot struct {
	Topic   string
	StartMs int64
	Seconds int

	Templates []*TemplateSeries

	// Instance performance metrics (Definition II.4), one sample/second.
	ActiveSession timeseries.Series // SHOW STATUS samples — the headline metric
	AvgSession    timeseries.Series
	CPUUsage      timeseries.Series
	IOPSUsage     timeseries.Series
	MemUsage      timeseries.Series
	QPS           timeseries.Series
	RowLockWaits  timeseries.Series
	MDLWaits      timeseries.Series

	// byID is the lazily built ID→series index behind Template; it sits
	// on the repair and fig8 hot paths, which resolve templates by ID per
	// suggestion.
	byIDOnce sync.Once
	byID     map[sqltemplate.ID]*TemplateSeries
}

// Template returns the series for a template ID, or nil. The lookup index
// is built once on first use; callers must not grow s.Templates afterwards.
func (s *Snapshot) Template(id sqltemplate.ID) *TemplateSeries {
	s.byIDOnce.Do(func() {
		m := make(map[sqltemplate.ID]*TemplateSeries, len(s.Templates))
		for _, ts := range s.Templates {
			if _, dup := m[ts.Meta.ID]; !dup { // first match wins, as the linear scan did
				m[ts.Meta.ID] = ts
			}
		}
		s.byID = m
	})
	return s.byID[id]
}

// metricSet is the live per-second instance metric series, populated row
// by row during ingestion. set is the single bounds-checked placement
// point: Snapshot and Frame previously each re-copied the accumulated rows
// with their own silent `i >= seconds` truncation; now rows land in their
// final columnar form exactly once.
type metricSet struct {
	ActiveSession timeseries.Series
	AvgSession    timeseries.Series
	CPUUsage      timeseries.Series
	IOPSUsage     timeseries.Series
	MemUsage      timeseries.Series
	QPS           timeseries.Series
	RowLockWaits  timeseries.Series
	MDLWaits      timeseries.Series
}

func newMetricSet(seconds int) metricSet {
	return metricSet{
		ActiveSession: make(timeseries.Series, seconds),
		AvgSession:    make(timeseries.Series, seconds),
		CPUUsage:      make(timeseries.Series, seconds),
		IOPSUsage:     make(timeseries.Series, seconds),
		MemUsage:      make(timeseries.Series, seconds),
		QPS:           make(timeseries.Series, seconds),
		RowLockWaits:  make(timeseries.Series, seconds),
		MDLWaits:      make(timeseries.Series, seconds),
	}
}

func (m *metricSet) clone() metricSet {
	return metricSet{
		ActiveSession: m.ActiveSession.Clone(),
		AvgSession:    m.AvgSession.Clone(),
		CPUUsage:      m.CPUUsage.Clone(),
		IOPSUsage:     m.IOPSUsage.Clone(),
		MemUsage:      m.MemUsage.Clone(),
		QPS:           m.QPS.Clone(),
		RowLockWaits:  m.RowLockWaits.Clone(),
		MDLWaits:      m.MDLWaits.Clone(),
	}
}

// set places one metric row at window second sec; rows outside [0, seconds)
// are dropped.
func (m *metricSet) set(sec int, row dbsim.SecondMetrics) {
	if sec < 0 || sec >= len(m.ActiveSession) {
		return
	}
	m.ActiveSession[sec] = row.ActiveSession
	m.AvgSession[sec] = row.AvgActiveSession
	m.CPUUsage[sec] = row.CPUUsage
	m.IOPSUsage[sec] = row.IOPSUsage
	m.MemUsage[sec] = row.MemUsage
	m.QPS[sec] = float64(row.QPS)
	m.RowLockWaits[sec] = float64(row.RowLockWaits)
	m.MDLWaits[sec] = float64(row.MDLWaits)
}

// noDirtyObs is the dirty-watermark sentinel: no observation group has
// changed since the last seal.
const noDirtyObs = math.MaxInt

// Collector ingests the raw query-log stream and instance metrics of one
// database instance over a fixed window, producing per-template aggregates
// and archiving compact records in the log store.
//
// Frame maintenance is incremental: observation columns accumulate in
// per-template tails grown in place during Ingest, and each Frame call
// seals a new immutable frame by patching only what changed since the
// previous seal — the dirty suffix of the observation columns (tracked by
// a minimum-position watermark), the aggregate series of touched templates
// (copy-on-seal), and the live metric series (also copy-on-seal). A warm
// close therefore allocates O(new records), not O(window).
type Collector struct {
	mu       sync.Mutex
	topic    string
	startMs  int64
	seconds  int
	registry *Registry
	store    logstore.Backend

	templates map[int32]*TemplateSeries

	// ordered mirrors templates in ascending Meta.Index order — the
	// frame's template-position order — maintained by insertion as new
	// templates intern, so sealing never re-sorts. posOf resolves a
	// registry index to its current position.
	ordered []*TemplateSeries
	posOf   map[int32]int

	// obs accumulates each template's raw observation columns during
	// Ingest — the same records the store archives, in the same insertion
	// order — so Frame() never re-scans the store. Tails are append-only
	// and never sorted in place: a seal copies the tail into the frame
	// column and sorts the copy.
	obs map[int32]*obsColumns

	// met holds the live metric series; metSealed marks them as referenced
	// by the last sealed frame (copy-on-seal, like TemplateSeries.sealed).
	// metricsLen is the logical row count of the positional IngestMetrics
	// path: row i of accumulated calls lands at window second i.
	met        metricSet
	metSealed  bool
	metricsLen int

	records int64 // raw query records archived to the store

	// frame is the last sealed frame; frameValid reports that nothing was
	// ingested since its seal, so Frame() returns it unchanged. dirtyObs
	// is the smallest frame position whose observation group changed since
	// that seal (noDirtyObs when none), and tsetChanged reports templates
	// added since — both reset at seal.
	frame       *window.Frame
	frameValid  bool
	dirtyObs    int
	tsetChanged bool
}

// obsColumns is one template's in-progress observation columns, appended in
// log-store insertion order. dirty marks appends since the last seal: only
// dirty groups are re-sorted at seal; clean groups copy their sorted form
// from the previous frame.
type obsColumns struct {
	arrival  []int64
	response []float64
	dirty    bool
}

// NewCollector creates a collector for the window [startMs, endMs) on the
// given topic (instance name). registry and store may be shared across
// collectors; nil values create private ones. The store may be any
// logstore.Backend — the volatile in-memory store or the durable segment
// store (logstore/segment).
func NewCollector(topic string, startMs, endMs int64, registry *Registry, store logstore.Backend) *Collector {
	if registry == nil {
		registry = NewRegistry()
	}
	if store == nil {
		store = logstore.New(0)
	}
	seconds := int((endMs - startMs + 999) / 1000)
	return &Collector{
		topic:     topic,
		startMs:   startMs,
		seconds:   seconds,
		registry:  registry,
		store:     store,
		templates: make(map[int32]*TemplateSeries),
		posOf:     make(map[int32]int),
		obs:       make(map[int32]*obsColumns),
		met:       newMetricSet(seconds),
		dirtyObs:  noDirtyObs,
	}
}

// Registry returns the template registry backing this collector.
func (c *Collector) Registry() *Registry { return c.registry }

// Store returns the log store backing this collector.
func (c *Collector) Store() logstore.Backend { return c.store }

// Sink returns a dbsim.LogSink that feeds this collector; plug it directly
// into a simulation run.
func (c *Collector) Sink() dbsim.LogSink { return c.Ingest }

// insertOrdered places a freshly interned template into the position-order
// mirror and lowers the dirty watermark to its insertion point: every
// position at or after it shifts, so the seal rebuilds that suffix.
func (c *Collector) insertOrdered(ts *TemplateSeries) {
	pos := sort.Search(len(c.ordered), func(i int) bool {
		return c.ordered[i].Meta.Index > ts.Meta.Index
	})
	c.ordered = append(c.ordered, nil)
	copy(c.ordered[pos+1:], c.ordered[pos:])
	c.ordered[pos] = ts
	for i := pos; i < len(c.ordered); i++ {
		c.posOf[c.ordered[i].Meta.Index] = i
	}
	c.tsetChanged = true
	if pos < c.dirtyObs {
		c.dirtyObs = pos
	}
}

// Ingest consumes one query-log record.
func (c *Collector) Ingest(rec dbsim.LogRecord) {
	if rec.ArrivalMs < c.startMs {
		return // integer division would round -1..-999 ms up to second 0
	}
	sec := int((rec.ArrivalMs - c.startMs) / 1000)
	if sec >= c.seconds {
		return
	}
	meta := c.registry.Intern(rec)

	c.mu.Lock()
	ts, ok := c.templates[meta.Index]
	if !ok {
		ts = &TemplateSeries{
			Meta:      meta,
			Count:     make(timeseries.Series, c.seconds),
			SumRT:     make(timeseries.Series, c.seconds),
			SumRows:   make(timeseries.Series, c.seconds),
			Throttled: make(timeseries.Series, c.seconds),
		}
		c.templates[meta.Index] = ts
		c.insertOrdered(ts)
	}
	ts.touch()
	if rec.Throttled {
		ts.Throttled[sec]++
		c.frameValid = false
		c.mu.Unlock()
		return
	}
	ts.Count[sec]++
	ts.SumRT[sec] += rec.ResponseMs
	ts.SumRows[sec] += float64(rec.ExaminedRows)
	c.records++

	// Observation columns for the window frame: the same record the store
	// archives below, in the same order.
	col, ok := c.obs[meta.Index]
	if !ok {
		col = &obsColumns{}
		c.obs[meta.Index] = col
	}
	col.arrival = append(col.arrival, rec.ArrivalMs)
	col.response = append(col.response, rec.ResponseMs)
	col.dirty = true
	if pos := c.posOf[meta.Index]; pos < c.dirtyObs {
		c.dirtyObs = pos
	}
	c.frameValid = false

	// Raw record for the log store (session estimation needs per-query
	// start and response times, §IV-C). Loose append: records are emitted
	// at completion, so lock-delayed statements arrive far out of arrival
	// order. Appended under c.mu so the column order above always equals
	// the store's insertion order — the tie-break order both sides of the
	// frame/legacy equivalence rely on.
	c.store.AppendLoose(c.topic, logstore.Record{
		TemplateIdx:  meta.Index,
		ArrivalMs:    rec.ArrivalMs,
		ResponseMs:   rec.ResponseMs,
		ExaminedRows: rec.ExaminedRows,
	})
	c.mu.Unlock()
}

// touchMetricsLocked prepares the metric series for mutation, cloning them
// first if the last sealed frame still references them.
func (c *Collector) touchMetricsLocked() {
	if c.metSealed {
		c.met = c.met.clone()
		c.metSealed = false
	}
}

// IngestMetrics stores the instance's per-second performance metrics.
//
// Contract (audited for the ingest layer): placement is positional, not
// keyed — row i of the accumulated calls lands at window second i and the
// rows' Second fields are ignored. That is exactly right for stacking
// multiple simulator runs into one window (each dbsim run's rows are
// 0-based, as in the Fig. 8 scripted scenario), and exactly wrong for
// real samplers, whose rows are sparse and sometimes double-reported:
// a gap would shift every later row one second early. Samplers and the
// trace replay path must use IngestMetricsAt.
func (c *Collector) IngestMetrics(rows []dbsim.SecondMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(rows) > 0 {
		c.touchMetricsLocked()
	}
	for _, m := range rows {
		c.met.set(c.metricsLen, m)
		c.metricsLen++
	}
	c.frameValid = false
}

// IngestMetricsAt stores per-second performance metrics keyed by each
// row's window-relative Second: gaps stay zero rows, a duplicated second
// keeps the last row, rows outside [0, seconds) are dropped. For the
// dense 0-based rows the simulator produces this is bit-identical to
// IngestMetrics; for sparse sampler output it places every row at its
// actual second.
func (c *Collector) IngestMetricsAt(rows []dbsim.SecondMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range rows {
		if m.Second < 0 || m.Second >= int64(c.seconds) {
			continue
		}
		c.touchMetricsLocked()
		c.met.set(int(m.Second), m)
		// Keep the positional path's cursor consistent with the
		// accumulated-rows semantics: the next IngestMetrics row lands
		// after the highest second placed so far.
		if n := int(m.Second) + 1; n > c.metricsLen {
			c.metricsLen = n
		}
	}
	c.frameValid = false
}

// Snapshot assembles the aggregated window view. It is safe to call while
// ingestion continues; the returned series are copies.
func (c *Collector) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()

	met := c.met.clone()
	snap := &Snapshot{
		Topic:         c.topic,
		StartMs:       c.startMs,
		Seconds:       c.seconds,
		ActiveSession: met.ActiveSession,
		AvgSession:    met.AvgSession,
		CPUUsage:      met.CPUUsage,
		IOPSUsage:     met.IOPSUsage,
		MemUsage:      met.MemUsage,
		QPS:           met.QPS,
		RowLockWaits:  met.RowLockWaits,
		MDLWaits:      met.MDLWaits,
	}
	// c.ordered is already in the deterministic registry-index order.
	snap.Templates = make([]*TemplateSeries, 0, len(c.ordered))
	for _, ts := range c.ordered {
		snap.Templates = append(snap.Templates, &TemplateSeries{
			Meta:      ts.Meta,
			Count:     ts.Count.Clone(),
			SumRT:     ts.SumRT.Clone(),
			SumRows:   ts.SumRows.Clone(),
			Throttled: ts.Throttled.Clone(),
		})
	}
	return snap
}

// Frame seals (and caches) the collection window as a columnar
// window.Frame — per-template aggregates, observation columns grouped by
// template position, the metric series, and the ByID permutation. The
// frame is built from data accumulated during Ingest; the log store is
// never re-scanned.
//
// The seal is a delta build: observation groups below the dirty watermark
// are copied wholesale from the previous (immutable) frame, only groups at
// or above it are re-materialized from their tails, and aggregate/metric
// series are handed out by reference under the copy-on-seal protocol —
// the live copies are cloned on the next mutation, never at seal. Sealed
// frames are immutable; holding one across further ingestion is safe.
func (c *Collector) Frame() *window.Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frame != nil && c.frameValid {
		return c.frame
	}
	f := c.sealLocked()
	c.frame = f
	c.frameValid = true
	return f
}

// sealLocked builds the next immutable frame from the previous one plus
// the dirty state accumulated since its seal.
func (c *Collector) sealLocked() *window.Frame {
	prev := c.frame
	T := len(c.ordered)

	f := &window.Frame{
		Topic:         c.topic,
		StartMs:       c.startMs,
		Seconds:       c.seconds,
		ActiveSession: c.met.ActiveSession,
		AvgSession:    c.met.AvgSession,
		CPUUsage:      c.met.CPUUsage,
		IOPSUsage:     c.met.IOPSUsage,
		MemUsage:      c.met.MemUsage,
		QPS:           c.met.QPS,
		RowLockWaits:  c.met.RowLockWaits,
		MDLWaits:      c.met.MDLWaits,
	}
	c.metSealed = true

	dirty := c.dirtyObs
	if prev == nil {
		dirty = 0
	}
	if dirty > T {
		dirty = T
	}

	if prev != nil && !c.tsetChanged && dirty == T {
		// No observation changed: the columns of the previous frame are
		// exactly right — share them.
		f.Off, f.Arrival, f.Response = prev.Off, prev.Arrival, prev.Response
	} else {
		total := 0
		for _, col := range c.obs {
			total += len(col.arrival)
		}
		f.Off = make([]int32, T+1)
		f.Arrival = make([]int64, total)
		f.Response = make([]float64, total)

		if dirty > 0 {
			// Positions below the watermark are untouched since the last
			// seal: identical groups at identical offsets (template
			// inserts always lower the watermark to the insertion point,
			// so the prefix's positions still name the same templates).
			n := int(prev.Off[dirty])
			copy(f.Arrival[:n], prev.Arrival[:n])
			copy(f.Response[:n], prev.Response[:n])
			copy(f.Off[:dirty+1], prev.Off[:dirty+1])
		}
		for pos := dirty; pos < T; pos++ {
			ts := c.ordered[pos]
			off := int(f.Off[pos])
			end := off
			if col := c.obs[ts.Meta.Index]; col != nil {
				end = off + len(col.arrival)
				if !col.dirty && prev != nil && ts.sealPos > 0 {
					// Clean group above the watermark (only its position
					// shifted): its sorted column already exists in the
					// previous frame — copy it instead of re-sorting.
					plo := int(prev.Off[ts.sealPos-1])
					copy(f.Arrival[off:end], prev.Arrival[plo:plo+len(col.arrival)])
					copy(f.Response[off:end], prev.Response[plo:plo+len(col.arrival)])
				} else {
					copy(f.Arrival[off:end], col.arrival)
					copy(f.Response[off:end], col.response)
					window.SortObsGroup(f.Arrival[off:end], f.Response[off:end])
					col.dirty = false
				}
			}
			f.Off[pos+1] = int32(end)
		}
	}

	f.Templates = make([]window.Template, T)
	for i, ts := range c.ordered {
		f.Templates[i] = window.Template{
			Meta:      window.Meta(ts.Meta),
			Count:     ts.Count,
			SumRT:     ts.SumRT,
			SumRows:   ts.SumRows,
			Throttled: ts.Throttled,
		}
		ts.sealed = true
		ts.sealPos = int32(i) + 1
	}

	if prev != nil && !c.tsetChanged {
		f.FinalizeShared(prev)
	} else {
		f.FinalizeSorted()
	}
	c.dirtyObs = noDirtyObs
	c.tsetChanged = false
	return f
}

// RebuildFrame assembles the window frame from scratch — every series
// cloned, every observation group re-concatenated and re-sorted, all
// derived state recomputed — exactly as Frame did before the delta build.
// It ignores and leaves untouched the incremental seal state, so it is the
// from-scratch reference the differential tests and the frame-maintenance
// benchmark compare the delta build against. The result must be
// byte-identical to Frame()'s at every point of any ingest interleaving.
func (c *Collector) RebuildFrame() *window.Frame {
	c.mu.Lock()
	defer c.mu.Unlock()

	met := c.met.clone()
	f := &window.Frame{
		Topic:         c.topic,
		StartMs:       c.startMs,
		Seconds:       c.seconds,
		ActiveSession: met.ActiveSession,
		AvgSession:    met.AvgSession,
		CPUUsage:      met.CPUUsage,
		IOPSUsage:     met.IOPSUsage,
		MemUsage:      met.MemUsage,
		QPS:           met.QPS,
		RowLockWaits:  met.RowLockWaits,
		MDLWaits:      met.MDLWaits,
	}

	ordered := make([]*TemplateSeries, 0, len(c.templates))
	for _, ts := range c.templates {
		ordered = append(ordered, ts)
	}
	sortTemplates(ordered)

	total := 0
	for _, col := range c.obs {
		total += len(col.arrival)
	}
	f.Templates = make([]window.Template, len(ordered))
	f.Off = make([]int32, len(ordered)+1)
	f.Arrival = make([]int64, 0, total)
	f.Response = make([]float64, 0, total)
	for i, ts := range ordered {
		f.Templates[i] = window.Template{
			Meta:      window.Meta(ts.Meta),
			Count:     ts.Count.Clone(),
			SumRT:     ts.SumRT.Clone(),
			SumRows:   ts.SumRows.Clone(),
			Throttled: ts.Throttled.Clone(),
		}
		if col := c.obs[ts.Meta.Index]; col != nil {
			f.Arrival = append(f.Arrival, col.arrival...)
			f.Response = append(f.Response, col.response...)
		}
		f.Off[i+1] = int32(len(f.Arrival))
	}
	f.Finalize()
	return f
}

// SnapshotOfFrame derives a Snapshot view from a frame for code that still
// speaks the legacy aggregate type (the anomaly detector's NewCase, repair
// suggestion rules, Top-SQL baselines). The snapshot shares the frame's
// series — treat it as read-only; mutating callers must use
// Collector.Snapshot, which clones.
func SnapshotOfFrame(f *window.Frame) *Snapshot {
	snap := &Snapshot{
		Topic:         f.Topic,
		StartMs:       f.StartMs,
		Seconds:       f.Seconds,
		ActiveSession: f.ActiveSession,
		AvgSession:    f.AvgSession,
		CPUUsage:      f.CPUUsage,
		IOPSUsage:     f.IOPSUsage,
		MemUsage:      f.MemUsage,
		QPS:           f.QPS,
		RowLockWaits:  f.RowLockWaits,
		MDLWaits:      f.MDLWaits,
		Templates:     make([]*TemplateSeries, len(f.Templates)),
	}
	for i := range f.Templates {
		t := &f.Templates[i]
		snap.Templates[i] = &TemplateSeries{
			Meta:      TemplateMeta(t.Meta),
			Count:     t.Count,
			SumRT:     t.SumRT,
			SumRows:   t.SumRows,
			Throttled: t.Throttled,
		}
	}
	return snap
}

// Records returns the number of raw query records this collector has
// archived to the log store (throttled statements are counted in the
// Throttled series instead). The fleet exports it per window.
func (c *Collector) Records() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records
}

// QueriesOf returns the raw per-query records of one template inside
// [fromMs, toMs), for the session estimator. It streams the store's range
// instead of materializing every record in the window.
func (c *Collector) QueriesOf(idx int32, fromMs, toMs int64) []logstore.Record {
	var out []logstore.Record
	c.store.ScanFunc(c.topic, fromMs, toMs, func(r logstore.Record) bool {
		if r.TemplateIdx == idx {
			out = append(out, r)
		}
		return true
	})
	return out
}

func sortTemplates(ts []*TemplateSeries) {
	// Insertion sort: template counts per snapshot are moderate and the
	// input is usually almost sorted (registry order of first arrival).
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1].Meta.Index > ts[j].Meta.Index; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}
