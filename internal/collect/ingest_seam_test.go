package collect

// Tests for the two collect-layer pieces the ingest seam rides on: the
// broker's lossless blocking sink and the keyed metric-ingestion path.

import (
	"sync"
	"testing"

	"pinsql/internal/dbsim"
)

// TestBrokerBlockingSinkLossless pushes far more records through a tiny
// buffer than it can hold: with a draining consumer every record must
// arrive, in order, with zero drops — the property trace replay (which
// pumps windows much faster than real time) depends on.
func TestBrokerBlockingSinkLossless(t *testing.T) {
	const total = 100_000
	b := NewBroker()
	defer b.Close()
	ch, cancel := b.Subscribe("t", 8)

	var got []int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rec := range ch {
			got = append(got, rec.ArrivalMs)
		}
	}()

	sink := b.BlockingSink("t")
	for i := 0; i < total; i++ {
		sink(dbsim.LogRecord{ArrivalMs: int64(i)})
	}
	cancel()
	wg.Wait()

	if len(got) != total {
		t.Fatalf("delivered %d records, want %d", len(got), total)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("record %d out of order: %d", i, v)
		}
	}
	if d := b.Dropped("t"); d != 0 {
		t.Fatalf("blocking sink dropped %d records", d)
	}
}

// TestBrokerBlockingSinkCancelledSubscription checks the escape hatch: a
// blocking publish to a topic whose only subscription was cancelled (and
// is no longer draining) must not deadlock.
func TestBrokerBlockingSinkCancelledSubscription(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	_, cancel := b.Subscribe("t", 1)
	cancel()
	b.PublishBlocking("t", dbsim.LogRecord{}) // must return, not block
}

// TestIngestMetricsAtSparse is the satellite regression test for real
// samplers: gaps stay zero, duplicated seconds last-win, out-of-range
// rows are dropped — and nothing shifts.
func TestIngestMetricsAtSparse(t *testing.T) {
	c := NewCollector("t", 0, 5000, nil, nil)
	c.IngestMetricsAt([]dbsim.SecondMetrics{
		{Second: 1, ActiveSession: 10, QPS: 100},
		{Second: 3, ActiveSession: 30},
		{Second: 3, ActiveSession: 33}, // duplicate: last wins
		{Second: -1, ActiveSession: 99},
		{Second: 5, ActiveSession: 99}, // past the window: dropped
	})
	snap := c.Snapshot()
	want := []float64{0, 10, 0, 33, 0}
	for i, w := range want {
		if snap.ActiveSession[i] != w {
			t.Fatalf("ActiveSession[%d] = %v, want %v (series %v)", i, snap.ActiveSession[i], w, snap.ActiveSession)
		}
	}
	if snap.QPS[1] != 100 {
		t.Fatalf("QPS[1] = %v, want 100", snap.QPS[1])
	}
	// Late keyed rows may fill an earlier gap.
	c.IngestMetricsAt([]dbsim.SecondMetrics{{Second: 2, ActiveSession: 20}})
	if snap := c.Snapshot(); snap.ActiveSession[2] != 20 {
		t.Fatalf("backfilled ActiveSession[2] = %v, want 20", snap.ActiveSession[2])
	}
}

// TestIngestMetricsAtMatchesAppendForDenseRows pins the equivalence the
// fleet's no-op refactor relies on: for the dense 0-based rows a
// simulator run produces, the keyed path and the legacy positional append
// build identical snapshots.
func TestIngestMetricsAtMatchesAppendForDenseRows(t *testing.T) {
	rows := make([]dbsim.SecondMetrics, 4)
	for i := range rows {
		rows[i] = dbsim.SecondMetrics{
			Second: int64(i), ActiveSession: float64(i) * 1.5, CPUUsage: 10 + float64(i),
			QPS: 7 * i, RowLockWaits: i, SampleOffsetMs: i * 13,
		}
	}
	a := NewCollector("t", 0, 4000, nil, nil)
	a.IngestMetrics(rows)
	b := NewCollector("t", 0, 4000, nil, nil)
	b.IngestMetricsAt(rows)
	sa, sb := a.Snapshot(), b.Snapshot()
	for i := 0; i < 4; i++ {
		if sa.ActiveSession[i] != sb.ActiveSession[i] || sa.CPUUsage[i] != sb.CPUUsage[i] ||
			sa.QPS[i] != sb.QPS[i] || sa.RowLockWaits[i] != sb.RowLockWaits[i] {
			t.Fatalf("second %d: keyed and positional ingestion diverge", i)
		}
	}
}

// TestIngestMetricsAppendContract documents the audited legacy behavior:
// positional append ignores the rows' Second fields, which is what lets
// multiple 0-based simulator runs stack into one window (the Fig. 8
// scripted scenario) — and why samplers must not use it.
func TestIngestMetricsAppendContract(t *testing.T) {
	c := NewCollector("t", 0, 4000, nil, nil)
	c.IngestMetrics([]dbsim.SecondMetrics{{Second: 0, ActiveSession: 1}, {Second: 1, ActiveSession: 2}})
	c.IngestMetrics([]dbsim.SecondMetrics{{Second: 0, ActiveSession: 3}, {Second: 1, ActiveSession: 4}})
	snap := c.Snapshot()
	want := []float64{1, 2, 3, 4}
	for i, w := range want {
		if snap.ActiveSession[i] != w {
			t.Fatalf("ActiveSession = %v, want %v", snap.ActiveSession, want)
		}
	}
}
