package collect

import (
	"sync"
	"sync/atomic"

	"pinsql/internal/dbsim"
)

// Broker is the in-process substitute for the Kafka layer of §IV-A: topics
// fan out query-log records to any number of subscribers. Delivery is
// lossy under backpressure (a full subscriber buffer drops the record and
// counts it), which matches the monitoring pipeline's priorities — never
// slow the producer, i.e. the database instance.
type Broker struct {
	mu     sync.RWMutex
	subs   map[string][]*subscription
	lost   map[string]*atomic.Int64 // cumulative per-topic drop counts
	closed bool
}

type subscription struct {
	ch      chan dbsim.LogRecord
	done    chan struct{} // closed with ch; PublishBlocking's escape hatch
	dropped atomic.Int64  // atomic: Publish only holds the read lock
	closed  bool
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{
		subs: make(map[string][]*subscription),
		lost: make(map[string]*atomic.Int64),
	}
}

// Subscribe registers a consumer on a topic with the given buffer size and
// returns the record channel plus a cancel function. Cancel closes the
// channel after detaching it from the topic.
func (b *Broker) Subscribe(topic string, buffer int) (<-chan dbsim.LogRecord, func()) {
	if buffer < 1 {
		buffer = 1
	}
	sub := &subscription{ch: make(chan dbsim.LogRecord, buffer), done: make(chan struct{})}
	b.mu.Lock()
	b.subs[topic] = append(b.subs[topic], sub)
	if b.lost[topic] == nil {
		b.lost[topic] = new(atomic.Int64)
	}
	b.mu.Unlock()

	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		subs := b.subs[topic]
		for i, s := range subs {
			if s == sub {
				b.subs[topic] = append(subs[:i], subs[i+1:]...)
				break
			}
		}
		closeSub(sub)
	}
	return sub.ch, cancel
}

// closeSub closes a subscription's channel exactly once. Callers must hold
// b.mu, which is what makes the once-ness safe.
func closeSub(sub *subscription) {
	if !sub.closed {
		sub.closed = true
		close(sub.done)
		close(sub.ch)
	}
}

// Publish delivers a record to every subscriber of the topic, dropping it
// for subscribers whose buffers are full. Concurrent publishers only share
// the read lock, so the drop counters are atomics.
func (b *Broker) Publish(topic string, rec dbsim.LogRecord) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return
	}
	for _, sub := range b.subs[topic] {
		select {
		case sub.ch <- rec:
		default:
			sub.dropped.Add(1)
			b.lost[topic].Add(1)
		}
	}
}

// Dropped reports how many records have been dropped on the topic across
// all of its subscribers (including canceled ones) since the broker was
// created — the pipeline's backpressure-loss gauge. The count survives
// Close so a window's loss can be read after teardown.
func (b *Broker) Dropped(topic string) int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if c := b.lost[topic]; c != nil {
		return c.Load()
	}
	return 0
}

// PublishBlocking delivers a record to every subscriber of the topic,
// waiting for buffer space instead of dropping — the lossless mode trace
// replay needs: a replayed window can be pumped arbitrarily faster than
// real time, and a dropped record would break the bit-reproducibility of
// its diagnosis. The producer is throttled to the consumer, so callers
// must keep every subscription of the topic draining until the publisher
// is done, and must not cancel a subscription (or Close the broker) while
// a blocking publish is in flight.
func (b *Broker) PublishBlocking(topic string, rec dbsim.LogRecord) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return
	}
	subs := append([]*subscription(nil), b.subs[topic]...)
	b.mu.RUnlock()
	for _, sub := range subs {
		select {
		case <-sub.done:
			continue // cancelled since the snapshot
		default:
		}
		select {
		case sub.ch <- rec:
		case <-sub.done:
		}
	}
}

// Sink returns a dbsim.LogSink publishing to the topic.
func (b *Broker) Sink(topic string) dbsim.LogSink {
	return func(rec dbsim.LogRecord) { b.Publish(topic, rec) }
}

// BlockingSink returns a dbsim.LogSink publishing losslessly to the topic
// (see PublishBlocking for the draining contract).
func (b *Broker) BlockingSink(topic string) dbsim.LogSink {
	return func(rec dbsim.LogRecord) { b.PublishBlocking(topic, rec) }
}

// Close detaches and closes every subscription; subsequent publishes are
// no-ops.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for topic, subs := range b.subs {
		for _, sub := range subs {
			closeSub(sub)
		}
		delete(b.subs, topic)
	}
}

// StreamAggregator is the Flink substitute: a goroutine that drains a
// broker subscription into a Collector.
type StreamAggregator struct {
	collector *Collector
}

// NewStreamAggregator wraps a collector.
func NewStreamAggregator(c *Collector) *StreamAggregator {
	return &StreamAggregator{collector: c}
}

// Consume starts draining ch into the collector and returns a channel that
// closes when ch does.
func (a *StreamAggregator) Consume(ch <-chan dbsim.LogRecord) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rec := range ch {
			a.collector.Ingest(rec)
		}
	}()
	return done
}
