// Package collect is the data-collection and pre-processing half of
// PinSQL's first module (§IV-A): it subscribes to the query-log stream of a
// database instance (the Kafka substitute is the in-process Broker), keeps
// compact per-query records in a TTL'd log store, and aggregates them into
// per-template per-second metric series (the Flink substitute is the
// Collector/StreamAggregator), alongside the instance performance metrics.
package collect

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
)

// TemplateMeta is the registry entry for one SQL template.
type TemplateMeta struct {
	Index int32          // dense index used by compact log records
	ID    sqltemplate.ID // digest of the normalized statement
	Text  string         // normalized statement
	Table string
	Kind  dbsim.QueryKind
}

// DefaultRawCacheCap bounds the raw-SQL interning cache: at most this many
// distinct raw statements are remembered verbatim. The bound caps memory on
// adversarial workloads (every statement a unique literal) while covering
// the paper's steady state, where a few hundred templates dominate.
const DefaultRawCacheCap = 4096

// Registry interns SQL templates: structurally identical statements map to
// one TemplateMeta. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	byID    map[sqltemplate.ID]int32
	entries []TemplateMeta
	// rawCache short-circuits normalization: exact raw SQL text → dense
	// index of its template. Entries are never removed from the registry,
	// so a cached index stays valid forever; the cache itself is bounded
	// by rawCap with random replacement. A repeated statement costs one
	// map probe under the read lock instead of a full tokenize pass.
	rawCache map[string]int32
	rawCap   int
	rawHits  atomic.Uint64
	rawMiss  atomic.Uint64
	// onIntern, when set, observes every newly created entry (under the
	// write lock, in dense index order) — the persistence hook.
	onIntern func(TemplateMeta)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:     make(map[sqltemplate.ID]int32),
		rawCache: make(map[string]int32),
		rawCap:   DefaultRawCacheCap,
	}
}

// SetRawCacheCap rebounds the raw-SQL interning cache; n <= 0 disables it
// (every Intern normalizes, the differential-testing configuration). The
// cache is cleared either way — hit/miss counters are not reset.
func (r *Registry) SetRawCacheCap(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rawCap = n
	if n <= 0 {
		r.rawCache = nil
		return
	}
	r.rawCache = make(map[string]int32)
}

// RawCacheStats reports the interning cache's lifetime hit/miss counters
// and current size.
func (r *Registry) RawCacheStats() (hits, misses uint64, size int) {
	r.mu.RLock()
	size = len(r.rawCache)
	r.mu.RUnlock()
	return r.rawHits.Load(), r.rawMiss.Load(), size
}

// cacheRaw remembers sql → idx, evicting one arbitrary entry when full.
// Caller must hold the write lock.
func (r *Registry) cacheRaw(sql string, idx int32) {
	if r.rawCache == nil {
		return
	}
	if _, ok := r.rawCache[sql]; !ok && len(r.rawCache) >= r.rawCap {
		for k := range r.rawCache { // random replacement
			delete(r.rawCache, k)
			break
		}
	}
	r.rawCache[sql] = idx
}

// Intern returns the registry entry for the record's template, creating it
// on first sight. The record's TemplateID is trusted when present (the
// workload generator pre-digests statements); otherwise the SQL text is
// normalized here — unless this exact raw statement was seen before, in
// which case the interning cache answers without tokenizing at all.
func (r *Registry) Intern(rec dbsim.LogRecord) TemplateMeta {
	id := sqltemplate.ID(rec.TemplateID)
	var text string
	normalized := false
	if id == "" {
		r.mu.RLock()
		if idx, ok := r.rawCache[rec.SQL]; ok {
			meta := r.entries[idx]
			r.mu.RUnlock()
			r.rawHits.Add(1)
			return meta
		}
		r.mu.RUnlock()
		r.rawMiss.Add(1)
		tpl := sqltemplate.New(rec.SQL)
		id, text = tpl.ID, tpl.Text
		normalized = true
	}

	r.mu.RLock()
	idx, ok := r.byID[id]
	var meta TemplateMeta
	if ok {
		// Read the entry before unlocking: a concurrent append may grow
		// (and reallocate) the entries slice at any moment.
		meta = r.entries[idx]
	}
	r.mu.RUnlock()
	if ok {
		if normalized {
			// First sight of this raw spelling of a known template:
			// remember it so the next occurrence skips normalization.
			r.mu.Lock()
			r.cacheRaw(rec.SQL, idx)
			r.mu.Unlock()
		}
		return meta
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if idx, ok := r.byID[id]; ok {
		if normalized {
			r.cacheRaw(rec.SQL, idx)
		}
		return r.entries[idx]
	}
	if text == "" {
		text = sqltemplate.Normalize(rec.SQL)
	}
	meta = TemplateMeta{
		Index: int32(len(r.entries)),
		ID:    id,
		Text:  text,
		Table: rec.Table,
		Kind:  rec.Kind,
	}
	r.entries = append(r.entries, meta)
	r.byID[id] = meta.Index
	if normalized {
		r.cacheRaw(rec.SQL, meta.Index)
	}
	if r.onIntern != nil {
		r.onIntern(meta)
	}
	return meta
}

// SetOnIntern installs a callback observing every newly interned template
// in dense index order. The callback runs under the registry's write lock:
// it must be quick and must not call back into the registry.
func (r *Registry) SetOnIntern(fn func(TemplateMeta)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onIntern = fn
}

// Entries returns a copy of every interned template in dense index order.
func (r *Registry) Entries() []TemplateMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]TemplateMeta, len(r.entries))
	copy(out, r.entries)
	return out
}

// restore re-inserts a previously persisted entry; metas must arrive in
// dense index order with no duplicates.
func (r *Registry) restore(meta TemplateMeta) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(meta.Index) != len(r.entries) {
		return fmt.Errorf("collect: registry restore index %d, want %d", meta.Index, len(r.entries))
	}
	if _, ok := r.byID[meta.ID]; ok {
		return fmt.Errorf("collect: registry restore duplicate template %s", meta.ID)
	}
	r.entries = append(r.entries, meta)
	r.byID[meta.ID] = meta.Index
	return nil
}

// Lookup returns the entry for a template ID.
func (r *Registry) Lookup(id sqltemplate.ID) (TemplateMeta, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx, ok := r.byID[id]
	if !ok {
		return TemplateMeta{}, false
	}
	return r.entries[idx], true
}

// At returns the entry with the given dense index.
func (r *Registry) At(idx int32) TemplateMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[idx]
}

// Len returns the number of interned templates.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
