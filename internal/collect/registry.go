// Package collect is the data-collection and pre-processing half of
// PinSQL's first module (§IV-A): it subscribes to the query-log stream of a
// database instance (the Kafka substitute is the in-process Broker), keeps
// compact per-query records in a TTL'd log store, and aggregates them into
// per-template per-second metric series (the Flink substitute is the
// Collector/StreamAggregator), alongside the instance performance metrics.
package collect

import (
	"fmt"
	"sync"

	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
)

// TemplateMeta is the registry entry for one SQL template.
type TemplateMeta struct {
	Index int32          // dense index used by compact log records
	ID    sqltemplate.ID // digest of the normalized statement
	Text  string         // normalized statement
	Table string
	Kind  dbsim.QueryKind
}

// Registry interns SQL templates: structurally identical statements map to
// one TemplateMeta. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	byID    map[sqltemplate.ID]int32
	entries []TemplateMeta
	// onIntern, when set, observes every newly created entry (under the
	// write lock, in dense index order) — the persistence hook.
	onIntern func(TemplateMeta)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[sqltemplate.ID]int32)}
}

// Intern returns the registry entry for the record's template, creating it
// on first sight. The record's TemplateID is trusted when present (the
// workload generator pre-digests statements); otherwise the SQL text is
// normalized here.
func (r *Registry) Intern(rec dbsim.LogRecord) TemplateMeta {
	id := sqltemplate.ID(rec.TemplateID)
	var text string
	if id == "" {
		tpl := sqltemplate.New(rec.SQL)
		id, text = tpl.ID, tpl.Text
	}

	r.mu.RLock()
	idx, ok := r.byID[id]
	r.mu.RUnlock()
	if ok {
		return r.entries[idx]
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if idx, ok := r.byID[id]; ok {
		return r.entries[idx]
	}
	if text == "" {
		text = sqltemplate.Normalize(rec.SQL)
	}
	meta := TemplateMeta{
		Index: int32(len(r.entries)),
		ID:    id,
		Text:  text,
		Table: rec.Table,
		Kind:  rec.Kind,
	}
	r.entries = append(r.entries, meta)
	r.byID[id] = meta.Index
	if r.onIntern != nil {
		r.onIntern(meta)
	}
	return meta
}

// SetOnIntern installs a callback observing every newly interned template
// in dense index order. The callback runs under the registry's write lock:
// it must be quick and must not call back into the registry.
func (r *Registry) SetOnIntern(fn func(TemplateMeta)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onIntern = fn
}

// Entries returns a copy of every interned template in dense index order.
func (r *Registry) Entries() []TemplateMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]TemplateMeta, len(r.entries))
	copy(out, r.entries)
	return out
}

// restore re-inserts a previously persisted entry; metas must arrive in
// dense index order with no duplicates.
func (r *Registry) restore(meta TemplateMeta) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(meta.Index) != len(r.entries) {
		return fmt.Errorf("collect: registry restore index %d, want %d", meta.Index, len(r.entries))
	}
	if _, ok := r.byID[meta.ID]; ok {
		return fmt.Errorf("collect: registry restore duplicate template %s", meta.ID)
	}
	r.entries = append(r.entries, meta)
	r.byID[meta.ID] = meta.Index
	return nil
}

// Lookup returns the entry for a template ID.
func (r *Registry) Lookup(id sqltemplate.ID) (TemplateMeta, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx, ok := r.byID[id]
	if !ok {
		return TemplateMeta{}, false
	}
	return r.entries[idx], true
}

// At returns the entry with the given dense index.
func (r *Registry) At(idx int32) TemplateMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[idx]
}

// Len returns the number of interned templates.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
