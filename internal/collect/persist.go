package collect

import (
	"fmt"

	"pinsql/internal/dbsim"
	"pinsql/internal/logstore/segment"
	"pinsql/internal/sqltemplate"
)

// OpenRegistry restores the template registry persisted in a durable
// segment store and keeps it persisted: every entry recovered from the
// store's snapshot + delta log is replayed into a fresh Registry (so
// logstore.Record.TemplateIdx values written before the restart still
// resolve), and newly interned templates are appended to the store's delta
// log as they appear.
func OpenRegistry(st *segment.Store) (*Registry, error) {
	reg := NewRegistry()
	for _, e := range st.RegistryEntries() {
		meta := TemplateMeta{
			Index: e.Index,
			ID:    sqltemplate.ID(e.ID),
			Text:  e.Text,
			Table: e.Table,
			Kind:  dbsim.QueryKind(e.Kind),
		}
		if err := reg.restore(meta); err != nil {
			return nil, fmt.Errorf("collect: replaying persisted registry: %w", err)
		}
	}
	reg.SetOnIntern(func(meta TemplateMeta) {
		// Append errors surface through the store's sticky Err; the
		// in-memory registry stays authoritative either way.
		st.AppendRegistry(segment.RegistryEntry{
			Index: meta.Index,
			ID:    string(meta.ID),
			Text:  meta.Text,
			Table: meta.Table,
			Kind:  int32(meta.Kind),
		})
	})
	return reg, nil
}
