package collect

import (
	"sync"
	"testing"

	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
)

func rec(tpl, sql, table string, kind dbsim.QueryKind, arrival int64, rt float64, rows int64) dbsim.LogRecord {
	return dbsim.LogRecord{
		TemplateID:   tpl,
		SQL:          sql,
		Table:        table,
		Kind:         kind,
		ArrivalMs:    arrival,
		ResponseMs:   rt,
		ExaminedRows: rows,
	}
}

func TestRegistryInternDedupes(t *testing.T) {
	r := NewRegistry()
	a := r.Intern(rec("T1", "SELECT 1", "t", dbsim.KindSelect, 0, 1, 1))
	b := r.Intern(rec("T1", "SELECT 1", "t", dbsim.KindSelect, 5, 1, 1))
	if a.Index != b.Index {
		t.Errorf("same template interned twice: %d vs %d", a.Index, b.Index)
	}
	c := r.Intern(rec("T2", "SELECT 2", "t", dbsim.KindSelect, 0, 1, 1))
	if c.Index == a.Index {
		t.Error("distinct templates share an index")
	}
	if r.Len() != 2 {
		t.Errorf("registry len = %d, want 2", r.Len())
	}
	got, ok := r.Lookup(sqltemplate.ID("T1"))
	if !ok || got.Index != a.Index {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("Lookup of missing ID succeeded")
	}
	if r.At(a.Index).ID != a.ID {
		t.Error("At returned wrong entry")
	}
}

func TestRegistryDigestsWhenNoTemplateID(t *testing.T) {
	r := NewRegistry()
	a := r.Intern(rec("", "SELECT * FROM t WHERE id = 5", "t", dbsim.KindSelect, 0, 1, 1))
	b := r.Intern(rec("", "SELECT * FROM t WHERE id = 99", "t", dbsim.KindSelect, 0, 1, 1))
	if a.Index != b.Index {
		t.Error("literal-differing statements should share a template")
	}
	if a.Text != "SELECT * FROM t WHERE id = ?" {
		t.Errorf("normalized text = %q", a.Text)
	}
}

func TestRegistryConcurrentIntern(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tpl := string(rune('A' + i%10))
				r.Intern(rec(tpl, "SELECT "+tpl, "t", dbsim.KindSelect, 0, 1, 1))
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 10 {
		t.Errorf("registry len = %d, want 10", r.Len())
	}
}

func TestCollectorAggregation(t *testing.T) {
	c := NewCollector("db1", 0, 3000, nil, nil)
	c.Ingest(rec("A", "SELECT a", "t", dbsim.KindSelect, 100, 10, 5))
	c.Ingest(rec("A", "SELECT a", "t", dbsim.KindSelect, 900, 20, 7))
	c.Ingest(rec("A", "SELECT a", "t", dbsim.KindSelect, 1100, 30, 9))
	c.Ingest(rec("B", "SELECT b", "t", dbsim.KindSelect, 2500, 40, 11))

	snap := c.Snapshot()
	if len(snap.Templates) != 2 {
		t.Fatalf("templates = %d, want 2", len(snap.Templates))
	}
	a := snap.Template("A")
	if a == nil {
		t.Fatal("template A missing")
	}
	if a.Count[0] != 2 || a.Count[1] != 1 || a.Count[2] != 0 {
		t.Errorf("A count = %v", a.Count)
	}
	if a.SumRT[0] != 30 || a.SumRT[1] != 30 {
		t.Errorf("A sumRT = %v", a.SumRT)
	}
	if a.SumRows[0] != 12 || a.SumRows[1] != 9 {
		t.Errorf("A sumRows = %v", a.SumRows)
	}
	if got := a.MeanRT(); got != 20 {
		t.Errorf("A meanRT = %v, want 20", got)
	}
	if got := a.MeanRows(); got != 7 {
		t.Errorf("A meanRows = %v, want 7", got)
	}
	b := snap.Template("B")
	if b.Count[2] != 1 {
		t.Errorf("B count = %v", b.Count)
	}
	if snap.Template("missing") != nil {
		t.Error("missing template lookup should be nil")
	}
}

func TestCollectorIgnoresOutOfWindow(t *testing.T) {
	c := NewCollector("db1", 1000, 2000, nil, nil)
	c.Ingest(rec("A", "q", "t", dbsim.KindSelect, 500, 1, 1))  // before
	c.Ingest(rec("A", "q", "t", dbsim.KindSelect, 2500, 1, 1)) // after
	c.Ingest(rec("A", "q", "t", dbsim.KindSelect, 1500, 1, 1)) // inside
	snap := c.Snapshot()
	if got := snap.Template("A").Count.Sum(); got != 1 {
		t.Errorf("in-window count = %v, want 1", got)
	}
}

func TestCollectorThrottledSeparated(t *testing.T) {
	c := NewCollector("db1", 0, 1000, nil, nil)
	r := rec("A", "q", "t", dbsim.KindSelect, 100, 1, 5)
	r.Throttled = true
	c.Ingest(r)
	c.Ingest(rec("A", "q", "t", dbsim.KindSelect, 200, 1, 5))
	snap := c.Snapshot()
	a := snap.Template("A")
	if a.Count.Sum() != 1 || a.Throttled.Sum() != 1 {
		t.Errorf("count = %v, throttled = %v", a.Count.Sum(), a.Throttled.Sum())
	}
	// Throttled statements never executed: no rows examined.
	if a.SumRows.Sum() != 5 {
		t.Errorf("sumRows = %v, want 5 (executed only)", a.SumRows.Sum())
	}
}

func TestCollectorMetricsIngest(t *testing.T) {
	c := NewCollector("db1", 0, 2000, nil, nil)
	c.IngestMetrics([]dbsim.SecondMetrics{
		{Second: 0, ActiveSession: 3, CPUUsage: 50, QPS: 100},
		{Second: 1, ActiveSession: 7, CPUUsage: 80, QPS: 200},
	})
	snap := c.Snapshot()
	if snap.ActiveSession[0] != 3 || snap.ActiveSession[1] != 7 {
		t.Errorf("active session = %v", snap.ActiveSession)
	}
	if snap.CPUUsage[1] != 80 || snap.QPS[0] != 100 {
		t.Errorf("cpu = %v qps = %v", snap.CPUUsage, snap.QPS)
	}
}

func TestQueriesOf(t *testing.T) {
	c := NewCollector("db1", 0, 3000, nil, nil)
	c.Ingest(rec("A", "qa", "t", dbsim.KindSelect, 100, 10, 1))
	c.Ingest(rec("B", "qb", "t", dbsim.KindSelect, 200, 10, 1))
	c.Ingest(rec("A", "qa", "t", dbsim.KindSelect, 1200, 10, 1))
	meta, _ := c.Registry().Lookup("A")
	got := c.QueriesOf(meta.Index, 0, 1000)
	if len(got) != 1 || got[0].ArrivalMs != 100 {
		t.Errorf("QueriesOf window = %+v", got)
	}
	all := c.QueriesOf(meta.Index, 0, 3000)
	if len(all) != 2 {
		t.Errorf("QueriesOf all = %+v", all)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	c := NewCollector("db1", 0, 1000, nil, nil)
	for _, tpl := range []string{"C", "A", "B"} {
		c.Ingest(rec(tpl, "q"+tpl, "t", dbsim.KindSelect, 10, 1, 1))
	}
	snap := c.Snapshot()
	for i := 1; i < len(snap.Templates); i++ {
		if snap.Templates[i-1].Meta.Index > snap.Templates[i].Meta.Index {
			t.Fatal("templates not sorted by index")
		}
	}
}

func TestSnapshotSeriesAreCopies(t *testing.T) {
	c := NewCollector("db1", 0, 1000, nil, nil)
	c.Ingest(rec("A", "q", "t", dbsim.KindSelect, 10, 1, 1))
	snap := c.Snapshot()
	snap.Template("A").Count[0] = 999
	snap2 := c.Snapshot()
	if snap2.Template("A").Count[0] != 1 {
		t.Error("Snapshot shares storage with collector")
	}
}

func TestBrokerFanOut(t *testing.T) {
	b := NewBroker()
	ch1, cancel1 := b.Subscribe("db1", 10)
	ch2, cancel2 := b.Subscribe("db1", 10)
	defer cancel2()
	chOther, cancelOther := b.Subscribe("db2", 10)
	defer cancelOther()

	b.Publish("db1", rec("A", "q", "t", dbsim.KindSelect, 1, 1, 1))
	if got := <-ch1; got.TemplateID != "A" {
		t.Errorf("sub1 got %+v", got)
	}
	if got := <-ch2; got.TemplateID != "A" {
		t.Errorf("sub2 got %+v", got)
	}
	select {
	case r := <-chOther:
		t.Errorf("db2 subscriber received %+v", r)
	default:
	}

	cancel1()
	// Publishing after cancel must not panic and ch1 must be closed.
	b.Publish("db1", rec("B", "q", "t", dbsim.KindSelect, 2, 1, 1))
	if _, open := <-ch1; open {
		// Drain the pre-close record if any, then expect closed.
		if _, open := <-ch1; open {
			t.Error("cancelled subscription still open")
		}
	}
}

func TestBrokerDropsOnFullBuffer(t *testing.T) {
	b := NewBroker()
	ch, cancel := b.Subscribe("t", 1)
	defer cancel()
	b.Publish("t", rec("A", "q", "t", dbsim.KindSelect, 1, 1, 1))
	b.Publish("t", rec("B", "q", "t", dbsim.KindSelect, 2, 1, 1)) // dropped
	got := <-ch
	if got.TemplateID != "A" {
		t.Errorf("got %+v", got)
	}
	select {
	case r := <-ch:
		t.Errorf("unexpected second record %+v", r)
	default:
	}
}

func TestBrokerClose(t *testing.T) {
	b := NewBroker()
	ch, cancel := b.Subscribe("t", 1)
	b.Close()
	if _, open := <-ch; open {
		t.Error("channel open after Close")
	}
	b.Publish("t", dbsim.LogRecord{}) // must not panic
	b.Close()                         // idempotent
	cancel()                          // safe after Close... must not double-close
}

func TestStreamAggregatorEndToEnd(t *testing.T) {
	b := NewBroker()
	c := NewCollector("db1", 0, 2000, nil, nil)
	ch, cancel := b.Subscribe("db1", 64)
	done := NewStreamAggregator(c).Consume(ch)

	sink := b.Sink("db1")
	for i := 0; i < 20; i++ {
		sink(rec("A", "q", "t", dbsim.KindSelect, int64(i*50), 2, 3))
	}
	cancel()
	<-done
	snap := c.Snapshot()
	if got := snap.Template("A").Count.Sum(); got != 20 {
		t.Errorf("aggregated count = %v, want 20", got)
	}
}
