package collect

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pinsql/internal/dbsim"
	"pinsql/internal/window"
)

// framesEqual compares two frames on every consumer-visible bit: metadata,
// template set with aggregate series (Float64bits), observation columns,
// offsets and the ByID permutation.
func framesEqual(a, b *window.Frame) error {
	if a.Topic != b.Topic || a.StartMs != b.StartMs || a.Seconds != b.Seconds {
		return fmt.Errorf("header mismatch: %v/%v/%v vs %v/%v/%v",
			a.Topic, a.StartMs, a.Seconds, b.Topic, b.StartMs, b.Seconds)
	}
	if len(a.Templates) != len(b.Templates) {
		return fmt.Errorf("template count %d vs %d", len(a.Templates), len(b.Templates))
	}
	seriesEqual := func(what string, x, y []float64) error {
		if len(x) != len(y) {
			return fmt.Errorf("%s length %d vs %d", what, len(x), len(y))
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return fmt.Errorf("%s[%d]: %v vs %v", what, i, x[i], y[i])
			}
		}
		return nil
	}
	for i := range a.Templates {
		ta, tb := &a.Templates[i], &b.Templates[i]
		if ta.Meta != tb.Meta {
			return fmt.Errorf("template %d meta %+v vs %+v", i, ta.Meta, tb.Meta)
		}
		for _, s := range []struct {
			what string
			x, y []float64
		}{
			{"Count", ta.Count, tb.Count},
			{"SumRT", ta.SumRT, tb.SumRT},
			{"SumRows", ta.SumRows, tb.SumRows},
			{"Throttled", ta.Throttled, tb.Throttled},
		} {
			if err := seriesEqual(fmt.Sprintf("template %d %s", i, s.what), s.x, s.y); err != nil {
				return err
			}
		}
	}
	if len(a.Off) != len(b.Off) {
		return fmt.Errorf("Off length %d vs %d", len(a.Off), len(b.Off))
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			return fmt.Errorf("Off[%d]: %d vs %d", i, a.Off[i], b.Off[i])
		}
	}
	if len(a.Arrival) != len(b.Arrival) {
		return fmt.Errorf("Arrival length %d vs %d", len(a.Arrival), len(b.Arrival))
	}
	for i := range a.Arrival {
		if a.Arrival[i] != b.Arrival[i] {
			return fmt.Errorf("Arrival[%d]: %d vs %d", i, a.Arrival[i], b.Arrival[i])
		}
	}
	if err := seriesEqual("Response", a.Response, b.Response); err != nil {
		return err
	}
	if len(a.ByID) != len(b.ByID) {
		return fmt.Errorf("ByID length %d vs %d", len(a.ByID), len(b.ByID))
	}
	for i := range a.ByID {
		if a.ByID[i] != b.ByID[i] {
			return fmt.Errorf("ByID[%d]: %d vs %d", i, a.ByID[i], b.ByID[i])
		}
	}
	for _, s := range []struct {
		what string
		x, y []float64
	}{
		{"ActiveSession", a.ActiveSession, b.ActiveSession},
		{"AvgSession", a.AvgSession, b.AvgSession},
		{"CPUUsage", a.CPUUsage, b.CPUUsage},
		{"IOPSUsage", a.IOPSUsage, b.IOPSUsage},
		{"MemUsage", a.MemUsage, b.MemUsage},
		{"QPS", a.QPS, b.QPS},
		{"RowLockWaits", a.RowLockWaits, b.RowLockWaits},
		{"MDLWaits", a.MDLWaits, b.MDLWaits},
	} {
		if err := seriesEqual(s.what, s.x, s.y); err != nil {
			return err
		}
	}
	return nil
}

// randomRecord draws an ingestible record: a bounded template universe (so
// templates repeat and interleave), arrivals across the whole window
// including out-of-order and tie cases, and occasional throttling.
func randomRecord(rng *rand.Rand, windowMs int64) dbsim.LogRecord {
	tpl := rng.Intn(24)
	r := rec(
		fmt.Sprintf("PT%02d", tpl),
		fmt.Sprintf("SELECT %d FROM prop", tpl),
		"prop",
		dbsim.KindSelect,
		rng.Int63n(windowMs),
		float64(rng.Intn(500))/4+1,
		int64(rng.Intn(1000)),
	)
	r.Throttled = rng.Intn(12) == 0
	return r
}

// TestIncrementalFramePropertyInterleaved is the interleaving property
// test: any sequence of Ingest / IngestMetrics / IngestMetricsAt / Frame
// calls yields, at every seal point, a frame byte-identical to a
// from-scratch build of the same collector state.
func TestIncrementalFramePropertyInterleaved(t *testing.T) {
	const windowMs = 60_000
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := NewCollector("prop", 0, windowMs, nil, nil)
		// Seal an empty frame sometimes, to cover the prev==nil and T==0
		// transitions.
		if seed%2 == 0 {
			if err := framesEqual(c.Frame(), c.RebuildFrame()); err != nil {
				t.Fatalf("seed %d: empty frame diverges: %v", seed, err)
			}
		}
		for step := 0; step < 400; step++ {
			switch rng.Intn(10) {
			case 0: // positional metric rows
				rows := make([]dbsim.SecondMetrics, rng.Intn(3)+1)
				for i := range rows {
					rows[i] = dbsim.SecondMetrics{
						ActiveSession: float64(rng.Intn(100)),
						CPUUsage:      rng.Float64() * 100,
						QPS:           rng.Intn(500),
					}
				}
				c.IngestMetrics(rows)
			case 1: // keyed metric rows, including out-of-range seconds
				sec := int64(rng.Intn(70)) - 3
				c.IngestMetricsAt([]dbsim.SecondMetrics{{
					Second:        sec,
					ActiveSession: float64(rng.Intn(100)),
					IOPSUsage:     rng.Float64() * 100,
					RowLockWaits:  rng.Intn(20),
				}})
			case 2, 3: // seal mid-stream
				got := c.Frame()
				want := c.RebuildFrame()
				if err := framesEqual(got, want); err != nil {
					t.Fatalf("seed %d step %d: incremental frame diverges from rebuild: %v", seed, step, err)
				}
				if again := c.Frame(); again != got {
					t.Fatalf("seed %d step %d: cached frame not reused", seed, step)
				}
			default:
				c.Ingest(randomRecord(rng, windowMs))
			}
		}
		if err := framesEqual(c.Frame(), c.RebuildFrame()); err != nil {
			t.Fatalf("seed %d: final frame diverges from rebuild: %v", seed, err)
		}
	}
}

// TestIncrementalFrameHeldFramesImmutable pins the copy-on-seal contract:
// a frame held across further ingestion and reseals keeps its exact
// contents.
func TestIncrementalFrameHeldFramesImmutable(t *testing.T) {
	const windowMs = 60_000
	rng := rand.New(rand.NewSource(42))
	c := NewCollector("held", 0, windowMs, nil, nil)
	for i := 0; i < 200; i++ {
		c.Ingest(randomRecord(rng, windowMs))
	}
	c.IngestMetrics([]dbsim.SecondMetrics{{ActiveSession: 5}, {ActiveSession: 7}})

	held := c.Frame()
	reference := c.RebuildFrame() // independent deep copy of the same state

	for i := 0; i < 300; i++ {
		c.Ingest(randomRecord(rng, windowMs))
		if i%50 == 0 {
			c.IngestMetricsAt([]dbsim.SecondMetrics{{Second: int64(i % 60), ActiveSession: float64(i)}})
			c.Frame() // reseal while held is still alive
		}
	}
	c.Frame()

	if err := framesEqual(held, reference); err != nil {
		t.Fatalf("held frame mutated by later ingestion: %v", err)
	}
}

// TestIncrementalFrameAllocBudget is the warm-close allocation budget: a
// window of W seconds and many templates is sealed once, then each
// {ingest K records → Frame} cycle must allocate O(K) — a fixed number of
// frame-level allocations plus a bounded number per touched template —
// independent of the window's size in records, templates or seconds.
func TestIncrementalFrameAllocBudget(t *testing.T) {
	const windowMs = 120_000
	rng := rand.New(rand.NewSource(9))
	c := NewCollector("budget", 0, windowMs, nil, nil)
	// A sizeable warm window: if warm closes were O(window), the budget
	// below would be exceeded by orders of magnitude.
	for i := 0; i < 8_000; i++ {
		r := randomRecord(rng, windowMs)
		r.Throttled = false
		c.Ingest(r)
	}
	rows := make([]dbsim.SecondMetrics, 120)
	for i := range rows {
		rows[i] = dbsim.SecondMetrics{ActiveSession: float64(i % 17)}
	}
	c.IngestMetrics(rows)
	c.Frame()

	// Pre-generate the deltas so the measured closure ingests and seals
	// without test-side formatting allocations.
	const K = 4
	deltas := make([]dbsim.LogRecord, (40+1)*K)
	for i := range deltas {
		deltas[i] = randomRecord(rng, windowMs)
		deltas[i].Throttled = false
	}
	next := 0
	allocs := testing.AllocsPerRun(40, func() {
		for j := 0; j < K; j++ {
			c.Ingest(deltas[next%len(deltas)])
			next++
		}
		c.Frame()
	})

	// Per cycle: the frame struct, Templates, Off, Arrival, Response and
	// ByID-related state stay O(1) in allocation count; each of the ≤K
	// touched templates copy-on-seal-clones 4 series and its re-sorted
	// group costs a few scratch slices; the store append and obs tails
	// amortize. The bound is generous against noise but far below any
	// O(window) behaviour (rebuilding this window costs hundreds of
	// allocations per close in template clones and group sorts alone).
	budget := float64(16 + K*(4+6+2))
	if allocs > budget {
		t.Fatalf("warm incremental close allocates %.1f allocs per %d-record cycle, budget %.0f", allocs, K, budget)
	}
}
