package collect

// Concurrency suite for the broker, designed to run under `go test -race`.
// Before the dropped-counter fix (sub.dropped++ under the broker's READ
// lock), TestBrokerConcurrentPublishCountsDrops reliably tripped the race
// detector: concurrent Publish calls both hold RLock, so the unsynchronized
// increment is a write-write race. With the atomic counter the whole suite
// is race-clean, and the drop accounting is exact.

import (
	"sync"
	"testing"

	"pinsql/internal/dbsim"
)

// TestBrokerConcurrentPublishCountsDrops hammers one topic from many
// publishers with no consumer draining, then checks conservation: every
// published record is either buffered or counted as dropped.
func TestBrokerConcurrentPublishCountsDrops(t *testing.T) {
	const (
		publishers = 8
		perPub     = 500
		buffer     = 16
	)
	b := NewBroker()
	defer b.Close()
	ch, cancel := b.Subscribe("hot", buffer)
	defer cancel()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				b.Publish("hot", dbsim.LogRecord{ArrivalMs: int64(i)})
			}
		}()
	}
	wg.Wait()

	if got, want := b.Dropped("hot")+int64(len(ch)), int64(publishers*perPub); got != want {
		t.Errorf("dropped+buffered = %d, want %d published", got, want)
	}
	if b.Dropped("hot") == 0 {
		t.Error("expected drops with a full buffer and no consumer")
	}
}

// TestBrokerPublishSubscribeCancelChaos runs Publish, Subscribe, cancel and
// draining concurrently across topics; the assertion is simply that the
// race detector stays quiet and nothing deadlocks or panics.
func TestBrokerPublishSubscribeCancelChaos(t *testing.T) {
	b := NewBroker()
	topics := []string{"a", "b", "c"}

	var wg sync.WaitGroup
	// Publishers.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b.Publish(topics[i%len(topics)], dbsim.LogRecord{ArrivalMs: int64(p*10000 + i)})
			}
		}(p)
	}
	// Churning subscribers: subscribe, drain a little, cancel, repeat.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ch, cancel := b.Subscribe(topics[(s+i)%len(topics)], 8)
				for j := 0; j < 4; j++ {
					select {
					case <-ch:
					default:
					}
				}
				cancel()
				cancel() // canceling twice must be safe
			}
		}(s)
	}
	wg.Wait()
	b.Close()
	b.Close() // closing twice must be safe

	// Post-close publishes are no-ops, not panics.
	b.Publish("a", dbsim.LogRecord{})
}

// TestBrokerCloseWhilePublishing closes the broker while publishers are
// mid-flight: no send on a closed channel may happen (that would panic).
func TestBrokerCloseWhilePublishing(t *testing.T) {
	for round := 0; round < 20; round++ {
		b := NewBroker()
		ch, _ := b.Subscribe("t", 1)
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					b.Publish("t", dbsim.LogRecord{ArrivalMs: int64(i)})
				}
			}()
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range ch { // drain until Close closes the channel
			}
		}()
		b.Close()
		wg.Wait()
		<-done
	}
}

// TestBrokerDroppedAccessor pins the accessor's edge cases: unknown topics
// report zero, counts accumulate across canceled subscriptions, and the
// total survives Close.
func TestBrokerDroppedAccessor(t *testing.T) {
	b := NewBroker()
	if got := b.Dropped("nope"); got != 0 {
		t.Errorf("unknown topic Dropped = %d, want 0", got)
	}

	_, cancel := b.Subscribe("t", 1)
	b.Publish("t", dbsim.LogRecord{}) // buffered
	b.Publish("t", dbsim.LogRecord{}) // dropped
	b.Publish("t", dbsim.LogRecord{}) // dropped
	if got := b.Dropped("t"); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	cancel()
	if got := b.Dropped("t"); got != 2 {
		t.Errorf("Dropped after cancel = %d, want 2", got)
	}

	_, cancel2 := b.Subscribe("t", 1)
	defer cancel2()
	b.Publish("t", dbsim.LogRecord{})
	b.Publish("t", dbsim.LogRecord{})
	if got := b.Dropped("t"); got != 3 {
		t.Errorf("Dropped across subscriptions = %d, want 3", got)
	}

	b.Close()
	if got := b.Dropped("t"); got != 3 {
		t.Errorf("Dropped after Close = %d, want 3", got)
	}
}
