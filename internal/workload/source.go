package workload

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
)

// event is a tentative arrival of one spec in the thinning process.
type event struct {
	tMs  float64
	spec *Spec
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].tMs < h[j].tMs }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// source lazily samples every spec's inhomogeneous Poisson process over
// [startMs, endMs) by thinning: tentative arrivals are drawn at each spec's
// maximum rate and accepted with probability rate(t)/maxRate. Accepted
// arrivals come out in global time order. One-shot statements are merged in.
type source struct {
	w       *World
	rng     *rand.Rand
	h       eventHeap
	endMs   int64
	maxRate map[*Spec]float64
	next    *dbsim.Query

	oneShots []*dbsim.Query // sorted by arrival
	oneIdx   int
}

// Source builds a dbsim.Source emitting this world's traffic over
// [startMs, endMs). seed decouples the arrival randomness from the world's
// structural randomness so history windows can replay the same world with
// fresh noise.
func (w *World) Source(startMs, endMs, seed int64) dbsim.Source {
	rng := rand.New(rand.NewSource(seed))
	src := &source{
		w:       w,
		rng:     rng,
		endMs:   endMs,
		maxRate: make(map[*Spec]float64),
	}
	for _, spec := range w.AllSpecs() {
		maxFactor := spec.maxRateFactor()
		mr := spec.service.maxRate(w.maxSpike) * spec.CallsPerRequest * maxFactor
		if mr <= 0 {
			continue
		}
		src.maxRate[spec] = mr
		first := float64(startMs) + src.exp(mr)
		heap.Push(&src.h, event{tMs: first, spec: spec})
	}
	for _, q := range w.oneShots {
		if q.ArrivalMs >= startMs && q.ArrivalMs < endMs {
			src.oneShots = append(src.oneShots, q)
		}
	}
	sort.Slice(src.oneShots, func(i, j int) bool {
		return src.oneShots[i].ArrivalMs < src.oneShots[j].ArrivalMs
	})
	return src
}

// maxRateFactor returns an upper bound of the spec's RateFactor.
func (s *Spec) maxRateFactor() float64 {
	if s.RateFactor == nil {
		return 1
	}
	if s.MaxRateFactor > 0 {
		return s.MaxRateFactor
	}
	return 1
}

func (s *source) exp(rate float64) float64 {
	return s.rng.ExpFloat64() / rate * 1000 // milliseconds between arrivals
}

// fill advances the thinning process until the next accepted arrival is
// cached or the window is exhausted.
func (s *source) fill() {
	for s.next == nil {
		// One-shot due before the next tentative arrival?
		var nextTent float64 = math.Inf(1)
		if len(s.h) > 0 {
			nextTent = s.h[0].tMs
		}
		if s.oneIdx < len(s.oneShots) && float64(s.oneShots[s.oneIdx].ArrivalMs) <= nextTent {
			s.next = s.oneShots[s.oneIdx]
			s.oneIdx++
			return
		}
		if len(s.h) == 0 {
			return
		}
		ev := heap.Pop(&s.h).(event)
		if ev.tMs >= float64(s.endMs) {
			continue // spec exhausted; do not reschedule
		}
		mr := s.maxRate[ev.spec]
		heap.Push(&s.h, event{tMs: ev.tMs + s.exp(mr), spec: ev.spec})
		// Thinning acceptance.
		r := specRate(ev.spec, int64(ev.tMs))
		if r <= 0 || s.rng.Float64() > r/mr {
			continue
		}
		s.next = s.w.buildQuery(ev.spec, int64(ev.tMs), s.rng)
	}
}

// Peek implements dbsim.Source.
func (s *source) Peek() int64 {
	s.fill()
	if s.next == nil {
		return math.MaxInt64
	}
	return s.next.ArrivalMs
}

// Pop implements dbsim.Source.
func (s *source) Pop() *dbsim.Query {
	s.fill()
	q := s.next
	s.next = nil
	return q
}

// CountArrivals replays the world's arrival process over a window and
// returns per-template #execution series at one-second granularity, without
// running the database simulation. The R-SQL module's history windows only
// need execution counts, so this is how 1/3/7-days-ago traces are produced.
func (w *World) CountArrivals(startMs, endMs, seed int64) map[sqltemplate.ID]timeseries.Series {
	seconds := int((endMs - startMs + 999) / 1000)
	out := make(map[sqltemplate.ID]timeseries.Series)
	src := w.Source(startMs, endMs, seed)
	for src.Peek() != math.MaxInt64 {
		q := src.Pop()
		id := sqltemplate.ID(q.TemplateID)
		s, ok := out[id]
		if !ok {
			s = make(timeseries.Series, seconds)
			out[id] = s
		}
		sec := int((q.ArrivalMs - startMs) / 1000)
		if sec >= 0 && sec < seconds {
			s[sec]++
		}
	}
	return out
}
