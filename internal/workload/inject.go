package workload

import (
	"fmt"

	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
)

// AnomalyKind is the paper's R-SQL taxonomy (§II).
type AnomalyKind int

// The four injected anomaly families.
const (
	// KindBusinessSpike: business scenario change — one service's QPS
	// multiplies (category 1).
	KindBusinessSpike AnomalyKind = iota
	// KindPoorSQL: a newly deployed statement with a pathological plan
	// saturates the CPU (category 2).
	KindPoorSQL
	// KindLockStorm: a burst of hot-key UPDATEs takes exclusive row locks
	// and blocks readers of the same rows (category 3-ii).
	KindLockStorm
	// KindMDL: a long DDL freezes a hot table behind its metadata lock
	// (category 3-i).
	KindMDL
)

// String names the anomaly family.
func (k AnomalyKind) String() string {
	switch k {
	case KindBusinessSpike:
		return "business_spike"
	case KindPoorSQL:
		return "poor_sql"
	case KindLockStorm:
		return "lock_storm"
	case KindMDL:
		return "mdl_lock"
	}
	return "unknown"
}

// KindFromString parses the String() form back; ok is false for unknown
// names (repro manifests store kinds as strings).
func KindFromString(s string) (AnomalyKind, bool) {
	for _, k := range []AnomalyKind{KindBusinessSpike, KindPoorSQL, KindLockStorm, KindMDL} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Anomaly records an installed injection: the ground-truth R-SQLs and the
// true disturbance window.
type Anomaly struct {
	Kind    AnomalyKind
	RSQLs   []sqltemplate.ID // ground truth, "labeled by the DBA"
	StartMs int64
	EndMs   int64
	Table   string // affected table, when applicable
}

// InjectBusinessSpike multiplies one service's request rate by factor over
// [startMs, endMs) — a business scenario change (§II category 1, e.g. a
// flash sale). Ground-truth R-SQLs are every statement of the spiked
// business: the root cause is the workload change itself, and the DBA
// labels the templates whose #execution suddenly multiplied.
func (w *World) InjectBusinessSpike(svc *Service, factor float64, startMs, endMs int64) Anomaly {
	window := func(tMs int64) bool { return tMs >= startMs && tMs < endMs }
	prev := svc.SpikeFactor
	svc.SpikeFactor = func(tMs int64) float64 {
		f := 1.0
		if prev != nil {
			f = prev(tMs)
		}
		if window(tMs) {
			f *= factor
		}
		return f
	}
	if factor > w.maxSpike {
		w.maxSpike = factor
	}

	rsqls := make([]sqltemplate.ID, 0, len(svc.Specs))
	for _, s := range svc.Specs {
		rsqls = append(rsqls, s.ID())
	}
	a := Anomaly{Kind: KindBusinessSpike, RSQLs: rsqls, StartMs: startMs, EndMs: endMs}
	w.anomalies = append(w.anomalies, a)
	return a
}

// InjectPoorSQL deploys a new statement on the service from startMs onward
// (poor SQLs persist until repaired): a full scan with a huge examined-rows
// footprint and heavy service demand. rps is its absolute arrival rate.
func (w *World) InjectPoorSQL(svc *Service, table string, rps float64, startMs int64) Anomaly {
	spec := w.AddSpec(svc, Spec{
		Name:    "poor-scan-" + table,
		Pattern: "SELECT o.*, x.* FROM " + table + " o JOIN " + table + "_audit x ON o.ref = x.ref WHERE o.note LIKE '%@%'",
		Table:   table,
		Kind:    dbsim.KindSelect,
		// Absolute rate: divide out the service modulation baseline.
		CallsPerRequest: rps / svc.BaseRPS,
		ServiceMs:       1100, // a 2M-row join scan: seconds per execution
		ServiceJitter:   0.3,
		ExaminedRows:    2_000_000,
		RowsJitter:      0.2,
		IOOps:           400,
		ActiveFromMs:    startMs,
	})
	a := Anomaly{Kind: KindPoorSQL, RSQLs: []sqltemplate.ID{spec.ID()}, StartMs: startMs, EndMs: 0, Table: table}
	w.anomalies = append(w.anomalies, a)
	return a
}

// AddTrafficSpike multiplies one service's request rate by factor over
// [startMs, endMs) WITHOUT recording an anomaly: a benign traffic surge
// (a marketing push, a batch read job) that co-occurs with — and is not —
// the root cause. The adversarial fuzzer installs these as confusers: a
// diagnosis that pins the surged service's templates has been fooled by
// correlation. Ground truth stays whatever the real injectors recorded.
func (w *World) AddTrafficSpike(svc *Service, factor float64, startMs, endMs int64) {
	if factor <= 1 || endMs <= startMs {
		return
	}
	prev := svc.SpikeFactor
	svc.SpikeFactor = func(tMs int64) float64 {
		f := 1.0
		if prev != nil {
			f = prev(tMs)
		}
		if tMs >= startMs && tMs < endMs {
			f *= factor
		}
		return f
	}
	if factor > w.maxSpike {
		w.maxSpike = factor
	}
}

// InjectLockStorm models the paper's canonical row-lock anomaly (§I
// Challenge III): a batch job inside an existing business starts hammering
// the hot key range of a table with exclusive-locking writes over
// [startMs, endMs). The job belongs to svc — the same business whose
// readers touch those rows — so three things happen at once, exactly the
// structure the R-SQL module exploits:
//
//   - the service's overall traffic co-lifts mildly (×~1.6): enough for the
//     job's write templates to land in the same #execution cluster as the
//     service's blocked readers (1-minute clustering granularity), yet
//     small enough that the readers' own 1-second #execution stays inside
//     the Tukey fences, so history verification filters the victims and
//     keeps the writes;
//   - the writes serialize on each other and block the readers, piling up
//     the active session;
//   - the job splits its writes across two statement shapes (UPDATE and
//     DELETE), so no single write template dominates the per-template
//     response-time ranking — the blinding that defeats Top-RT.
//
// Ground-truth R-SQLs are the two write templates. svc should own readers
// with lock footprints on the table's hot range (in DefaultWorld, the
// fulfillment service's `order-by-id ... FOR UPDATE`).
func (w *World) InjectLockStorm(svc *Service, table string, rps float64, startMs, endMs int64) Anomaly {
	// Mild co-lift of the whole business during the job.
	const coLift = 1.7
	prev := svc.SpikeFactor
	svc.SpikeFactor = func(tMs int64) float64 {
		f := 1.0
		if prev != nil {
			f = prev(tMs)
		}
		if tMs >= startMs && tMs < endMs {
			f *= coLift
		}
		return f
	}
	if coLift > w.maxSpike {
		w.maxSpike = coLift
	}

	write := func(name, pattern string, kind dbsim.QueryKind, share, serviceMs float64, keys int) *Spec {
		return w.AddSpec(svc, Spec{
			Name:            name,
			Pattern:         pattern,
			Table:           table,
			Kind:            kind,
			CallsPerRequest: rps * share / svc.BaseRPS,
			ServiceMs:       serviceMs,
			ServiceJitter:   0.4,
			// The job's writes range-scan the hot segment before locking:
			// real index-miss potential for the optimizer to reclaim.
			ExaminedRows:  300,
			RowsJitter:    0.3,
			IOOps:         6,
			LockLo:        0,
			LockHi:        40,
			LockCount:     keys,
			ActiveFromMs:  startMs,
			ActiveUntilMs: endMs,
			// The co-lift also scales these specs via the service rate;
			// compensate so rps stays the requested absolute rate.
			RateFactor:    func(tMs int64) float64 { return 1 / coLift },
			MaxRateFactor: 1,
		})
	}
	upd := write("hot-update-"+table,
		"UPDATE "+table+" SET state = @, version = version + 1 WHERE id = @",
		dbsim.KindUpdate, 0.55, 500, 3)
	del := write("hot-delete-"+table,
		"DELETE FROM "+table+" WHERE id = @ AND state = @",
		dbsim.KindDelete, 0.45, 400, 3)

	a := Anomaly{
		Kind:    KindLockStorm,
		RSQLs:   []sqltemplate.ID{upd.ID(), del.ID()},
		StartMs: startMs,
		EndMs:   endMs,
		Table:   table,
	}
	w.anomalies = append(w.anomalies, a)
	return a
}

// InjectMDL schedules a one-shot long DDL on a table at startMs with the
// given duration. Every statement on the table freezes behind the metadata
// lock ("Waiting for table metadata lock").
func (w *World) InjectMDL(table string, startMs, durationMs int64) Anomaly {
	sql := fmt.Sprintf("ALTER TABLE %s ADD COLUMN ext_%d varchar", table, w.rng.Intn(1000))
	tpl := sqltemplate.New(sql)
	w.AddOneShot(&dbsim.Query{
		TemplateID:   string(tpl.ID),
		SQL:          sql,
		Table:        table,
		Kind:         dbsim.KindDDL,
		ArrivalMs:    startMs,
		ServiceMs:    float64(durationMs),
		IOOps:        1000,
		ExaminedRows: 1,
		MDLExclusive: true,
	})
	a := Anomaly{Kind: KindMDL, RSQLs: []sqltemplate.ID{tpl.ID}, StartMs: startMs, EndMs: startMs + durationMs, Table: table}
	w.anomalies = append(w.anomalies, a)
	return a
}
