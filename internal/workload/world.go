package workload

import (
	"fmt"

	"pinsql/internal/dbsim"
)

// DefaultWorld builds the standard evaluation workload: an e-commerce-ish
// set of tables and six business services (microservice DAGs) whose specs
// cover point reads, range scans, inserts, and lock-taking updates. The
// aggregate baseline keeps a 16-core instance lightly loaded (a few active
// sessions), leaving headroom that injected anomalies visibly destroy.
func DefaultWorld(seed int64) *World {
	w := NewWorld(seed)

	w.AddTable("orders", 5_000_000)
	w.AddTable("orders_audit", 8_000_000)
	w.AddTable("users", 2_000_000)
	w.AddTable("items", 1_000_000)
	w.AddTable("inventory", 500_000)
	w.AddTable("payments", 3_000_000)
	w.AddTable("applogs", 10_000_000)

	storefront := w.AddService("storefront", 12, 1)
	w.AddSpec(storefront, Spec{
		Name: "item-by-id", Pattern: "SELECT * FROM items WHERE item_id = @",
		Table: "items", Kind: dbsim.KindSelect,
		CallsPerRequest: 3, ServiceMs: 8, ServiceJitter: 0.4, ExaminedRows: 120, RowsJitter: 0.4, IOOps: 2,
	})
	w.AddSpec(storefront, Spec{
		Name: "user-by-id", Pattern: "SELECT name, level FROM users WHERE uid = @",
		Table: "users", Kind: dbsim.KindSelect,
		CallsPerRequest: 1, ServiceMs: 5, ServiceJitter: 0.3, ExaminedRows: 10, IOOps: 1,
	})
	w.AddSpec(storefront, Spec{
		Name: "recent-orders", Pattern: "SELECT * FROM orders WHERE uid = @ ORDER BY ts DESC LIMIT 20",
		Table: "orders", Kind: dbsim.KindSelect,
		CallsPerRequest: 0.8, ServiceMs: 15, ServiceJitter: 0.5, ExaminedRows: 600, RowsJitter: 0.5, IOOps: 4,
	})
	w.AddSpec(storefront, Spec{
		Name: "touch-user", Pattern: "UPDATE users SET last_seen = @ WHERE uid = @",
		Table: "users", Kind: dbsim.KindUpdate,
		CallsPerRequest: 0.5, ServiceMs: 6, ServiceJitter: 0.3, ExaminedRows: 5, IOOps: 2,
		LockLo: 0, LockHi: 100_000, LockCount: 1,
	})

	checkout := w.AddService("checkout", 5, 2)
	w.AddSpec(checkout, Spec{
		Name: "stock-check", Pattern: "SELECT qty FROM inventory WHERE sku = @",
		Table: "inventory", Kind: dbsim.KindSelect,
		CallsPerRequest: 2, ServiceMs: 6, ServiceJitter: 0.3, ExaminedRows: 20, IOOps: 1,
	})
	w.AddSpec(checkout, Spec{
		Name: "create-order", Pattern: "INSERT INTO orders (uid, item, qty, ts) VALUES (@, @, @, @)",
		Table: "orders", Kind: dbsim.KindInsert,
		CallsPerRequest: 1, ServiceMs: 10, ServiceJitter: 0.4, ExaminedRows: 1, IOOps: 5,
		LockLo: 10_000, LockHi: 500_000, LockCount: 1,
	})
	w.AddSpec(checkout, Spec{
		Name: "reserve-stock", Pattern: "UPDATE inventory SET qty = qty - @ WHERE sku = @",
		Table: "inventory", Kind: dbsim.KindUpdate,
		CallsPerRequest: 1, ServiceMs: 12, ServiceJitter: 0.4, ExaminedRows: 15, IOOps: 4,
		LockLo: 0, LockHi: 50_000, LockCount: 1,
	})
	w.AddSpec(checkout, Spec{
		Name: "payment-lookup", Pattern: "SELECT status FROM payments WHERE order_id = @",
		Table: "payments", Kind: dbsim.KindSelect,
		CallsPerRequest: 0.7, ServiceMs: 8, ServiceJitter: 0.3, ExaminedRows: 30, IOOps: 2,
	})

	fulfillment := w.AddService("fulfillment", 4, 3)
	w.AddSpec(fulfillment, Spec{
		Name: "order-by-id", Pattern: "SELECT * FROM orders WHERE id = @ FOR UPDATE",
		Table: "orders", Kind: dbsim.KindSelect,
		CallsPerRequest: 3, ServiceMs: 10, ServiceJitter: 0.4, ExaminedRows: 50, IOOps: 2,
		// Locking read concentrated on the hot (recently created) order
		// rows: the lock-storm victims. A narrow two-key footprint keeps
		// FIFO head-of-line blocking from cascading into runaway queues.
		LockLo: 0, LockHi: 60, LockCount: 2,
	})
	w.AddSpec(fulfillment, Spec{
		Name: "ship-order", Pattern: "UPDATE orders SET status = @ WHERE id = @",
		Table: "orders", Kind: dbsim.KindUpdate,
		CallsPerRequest: 1, ServiceMs: 15, ServiceJitter: 0.4, ExaminedRows: 20, IOOps: 5,
		LockLo: 0, LockHi: 1000, LockCount: 1,
	})
	w.AddSpec(fulfillment, Spec{
		Name: "item-stock-peek", Pattern: "SELECT qty, updated_at FROM inventory WHERE sku = @",
		Table: "inventory", Kind: dbsim.KindSelect,
		CallsPerRequest: 1, ServiceMs: 6, ServiceJitter: 0.3, ExaminedRows: 20, IOOps: 1,
	})

	analytics := w.AddService("analytics", 2, 4)
	w.AddSpec(analytics, Spec{
		Name: "log-scan", Pattern: "SELECT count(*) FROM applogs WHERE level = @ AND ts > @",
		Table: "applogs", Kind: dbsim.KindSelect,
		CallsPerRequest: 1, ServiceMs: 60, ServiceJitter: 0.5, ExaminedRows: 50_000, RowsJitter: 0.5, IOOps: 40,
	})
	w.AddSpec(analytics, Spec{
		Name: "orders-rollup", Pattern: "SELECT item, sum(qty) FROM orders WHERE ts > @ GROUP BY item",
		Table: "orders", Kind: dbsim.KindSelect,
		CallsPerRequest: 1, ServiceMs: 45, ServiceJitter: 0.5, ExaminedRows: 20_000, RowsJitter: 0.4, IOOps: 25,
	})

	crm := w.AddService("crm", 3, 5)
	w.AddSpec(crm, Spec{
		Name: "user-search", Pattern: "SELECT * FROM users WHERE city = @ AND level > @ LIMIT 50",
		Table: "users", Kind: dbsim.KindSelect,
		CallsPerRequest: 1, ServiceMs: 12, ServiceJitter: 0.4, ExaminedRows: 900, RowsJitter: 0.5, IOOps: 5,
	})
	w.AddSpec(crm, Spec{
		Name: "user-orders", Pattern: "SELECT id, ts FROM orders WHERE uid = @ LIMIT 100",
		Table: "orders", Kind: dbsim.KindSelect,
		CallsPerRequest: 0.5, ServiceMs: 20, ServiceJitter: 0.4, ExaminedRows: 1500, RowsJitter: 0.4, IOOps: 6,
	})

	billing := w.AddService("billing", 2.5, 6)
	w.AddSpec(billing, Spec{
		Name: "payment-insert", Pattern: "INSERT INTO payments (order_id, amount, ts) VALUES (@, @, @)",
		Table: "payments", Kind: dbsim.KindInsert,
		CallsPerRequest: 1, ServiceMs: 9, ServiceJitter: 0.3, ExaminedRows: 1, IOOps: 4,
		LockLo: 0, LockHi: 300_000, LockCount: 1,
	})
	w.AddSpec(billing, Spec{
		Name: "payment-reconcile", Pattern: "SELECT * FROM payments WHERE ts BETWEEN @ AND @ AND status = @",
		Table: "payments", Kind: dbsim.KindSelect,
		CallsPerRequest: 0.6, ServiceMs: 25, ServiceJitter: 0.5, ExaminedRows: 4000, RowsJitter: 0.5, IOOps: 10,
	})

	return w
}

// AddFillerServices pads the world with extra low-traffic services so the
// template count can be swept (Fig. 7 scalability): n services of specsPer
// templates each, all on the applogs table at negligible cost.
func (w *World) AddFillerServices(n, specsPer int) {
	for i := 0; i < n; i++ {
		svc := w.AddService(fmt.Sprintf("filler-%d", i), 1.2, 7+i)
		for j := 0; j < specsPer; j++ {
			w.AddSpec(svc, Spec{
				Name:    fmt.Sprintf("filler-%d-%d", i, j),
				Pattern: fmt.Sprintf("SELECT f%d FROM applogs WHERE k%d_%d = @", j, i, j),
				Table:   "applogs", Kind: dbsim.KindSelect,
				CallsPerRequest: 0.35, ServiceMs: 3, ServiceJitter: 0.3, ExaminedRows: 20, IOOps: 1,
			})
		}
	}
}
