package workload

import (
	"math"
	"testing"

	"pinsql/internal/dbsim"
	"pinsql/internal/timeseries"
)

// runWorld simulates the world over [0, endMs) and returns the metrics and
// per-template per-second execution counts derived from the log.
func runWorld(t *testing.T, w *World, endMs int64) ([]dbsim.SecondMetrics, map[string]timeseries.Series) {
	t.Helper()
	cfg := dbsim.DefaultConfig()
	in := dbsim.NewInstance(cfg)
	w.Apply(in)

	seconds := int(endMs / 1000)
	counts := make(map[string]timeseries.Series)
	secs, err := in.Run(dbsim.RunOptions{
		StartMs: 0,
		EndMs:   endMs,
		Source:  w.Source(0, endMs, 99),
		Sink: func(r dbsim.LogRecord) {
			s, ok := counts[r.TemplateID]
			if !ok {
				s = make(timeseries.Series, seconds)
				counts[r.TemplateID] = s
			}
			sec := int(r.ArrivalMs / 1000)
			if sec >= 0 && sec < seconds {
				s[sec]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return secs, counts
}

func TestSourceOrderedAndInWindow(t *testing.T) {
	w := DefaultWorld(7)
	src := w.Source(10_000, 40_000, 3)
	prev := int64(0)
	n := 0
	for src.Peek() != math.MaxInt64 {
		q := src.Pop()
		if q.ArrivalMs < prev {
			t.Fatalf("arrivals out of order: %d after %d", q.ArrivalMs, prev)
		}
		if q.ArrivalMs < 10_000 || q.ArrivalMs >= 40_000 {
			t.Fatalf("arrival %d outside window", q.ArrivalMs)
		}
		prev = q.ArrivalMs
		n++
	}
	// ~30 s of ~100 QPS aggregate traffic.
	if n < 1000 || n > 10_000 {
		t.Errorf("arrivals = %d, want a plausible volume", n)
	}
}

func TestArrivalRatesMatchSpecs(t *testing.T) {
	w := DefaultWorld(1)
	counts := w.CountArrivals(0, 600_000, 5)
	// storefront item-by-id: 12 RPS × 3 calls = 36 QPS on average.
	spec := w.Services[0].Specs[0]
	got := counts[spec.ID()].Sum()
	want := 36.0 * 600
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("item-by-id count = %v, want ≈ %v", got, want)
	}
}

func TestIntraServiceCorrelationExceedsTau(t *testing.T) {
	w := DefaultWorld(2)
	counts := w.CountArrivals(0, 2_400_000, 6)
	sf := w.Services[0] // storefront
	a := counts[sf.Specs[0].ID()].Downsample(60)
	b := counts[sf.Specs[1].ID()].Downsample(60)
	corrAB, _ := timeseries.Corr(a, b)
	if corrAB <= 0.8 {
		t.Errorf("same-service corr = %v, want > 0.8", corrAB)
	}
	// Cross-service correlation must stay below the clustering threshold.
	other := counts[w.Services[3].Specs[0].ID()].Downsample(60) // analytics log-scan
	corrAX, _ := timeseries.Corr(a, other)
	if corrAX > 0.8 {
		t.Errorf("cross-service corr = %v, want ≤ 0.8", corrAX)
	}
}

func TestBaselineLeavesHeadroom(t *testing.T) {
	w := DefaultWorld(3)
	secs, _ := runWorld(t, w, 120_000)
	var cpu, sess float64
	for _, s := range secs {
		cpu += s.CPUUsage
		sess += s.AvgActiveSession
	}
	cpu /= float64(len(secs))
	sess /= float64(len(secs))
	if cpu > 40 {
		t.Errorf("baseline CPU = %.1f%%, want light load", cpu)
	}
	if sess < 0.2 || sess > 10 {
		t.Errorf("baseline sessions = %.2f, want a few", sess)
	}
}

func TestBusinessSpikeInjection(t *testing.T) {
	w := DefaultWorld(4)
	anom := w.InjectBusinessSpike(w.Services[2], 50, 60_000, 120_000)
	if anom.Kind != KindBusinessSpike || len(anom.RSQLs) == 0 {
		t.Fatalf("anomaly = %+v", anom)
	}
	secs, counts := runWorld(t, w, 180_000)

	// Execution counts of the spiked service jump inside the window.
	spec := w.Services[2].Specs[0]
	s := counts[string(spec.ID())]
	base := s.Slice(0, 60).Mean()
	spike := s.Slice(60, 120).Mean()
	if spike < base*20 {
		t.Errorf("spiked exec: base %.1f → %.1f, want ≥ 20×", base, spike)
	}

	// The instance active session rises visibly during the window.
	var baseSess, spikeSess float64
	for i := 0; i < 60; i++ {
		baseSess += secs[i].AvgActiveSession
	}
	for i := 60; i < 120; i++ {
		spikeSess += secs[i].AvgActiveSession
	}
	baseSess /= 60
	spikeSess /= 60
	if spikeSess < baseSess+3 {
		t.Errorf("session lift %.2f → %.2f too weak for detection", baseSess, spikeSess)
	}
}

func TestPoorSQLInjection(t *testing.T) {
	w := DefaultWorld(5)
	anom := w.InjectPoorSQL(w.Services[4], "orders", 30, 60_000)
	secs, counts := runWorld(t, w, 180_000)

	s := counts[string(anom.RSQLs[0])]
	if s == nil || s.Slice(0, 60).Sum() != 0 {
		t.Fatalf("poor SQL should not execute before deployment: %v", s)
	}
	if s.Slice(60, 180).Sum() < 100 {
		t.Errorf("poor SQL executions = %v, want plenty", s.Slice(60, 180).Sum())
	}

	var baseCPU, postCPU, baseSess, postSess float64
	for i := 0; i < 60; i++ {
		baseCPU += secs[i].CPUUsage
		baseSess += secs[i].AvgActiveSession
	}
	for i := 90; i < 180; i++ {
		postCPU += secs[i].CPUUsage
		postSess += secs[i].AvgActiveSession
	}
	baseCPU /= 60
	postCPU /= 90
	baseSess /= 60
	postSess /= 90
	if postCPU < baseCPU+30 {
		t.Errorf("CPU %.1f%% → %.1f%%, want a CPU bottleneck", baseCPU, postCPU)
	}
	if postSess < baseSess+5 {
		t.Errorf("sessions %.2f → %.2f, want a pile-up", baseSess, postSess)
	}
}

func TestLockStormInjection(t *testing.T) {
	w := DefaultWorld(6)
	anom := w.InjectLockStorm(w.Services[2], "orders", 25, 60_000, 120_000)
	secs, counts := runWorld(t, w, 180_000)

	s := counts[string(anom.RSQLs[0])]
	if s == nil {
		t.Fatal("storm UPDATE never executed")
	}
	if got := s.Slice(0, 55).Sum(); got != 0 {
		t.Errorf("storm UPDATE executed before window: %v", got)
	}

	var baseWaits, stormWaits int
	var baseSess, stormSess float64
	for i := 0; i < 60; i++ {
		baseWaits += secs[i].RowLockWaits
		baseSess += secs[i].AvgActiveSession
	}
	for i := 60; i < 120; i++ {
		stormWaits += secs[i].RowLockWaits
		stormSess += secs[i].AvgActiveSession
	}
	baseSess /= 60
	stormSess /= 60
	if stormWaits < baseWaits+100 {
		t.Errorf("row lock waits %d → %d, want a storm", baseWaits, stormWaits)
	}
	if stormSess < baseSess+3 {
		t.Errorf("sessions %.2f → %.2f, want lock pile-up", baseSess, stormSess)
	}
}

func TestMDLInjection(t *testing.T) {
	w := DefaultWorld(7)
	anom := w.InjectMDL("orders", 60_000, 45_000)
	secs, counts := runWorld(t, w, 180_000)

	if got := counts[string(anom.RSQLs[0])]; got == nil || got.Sum() != 1 {
		t.Fatalf("DDL executions = %v, want exactly 1", got)
	}
	var freezeSess, baseSess float64
	var mdlWaits int
	for i := 0; i < 60; i++ {
		baseSess += secs[i].AvgActiveSession
	}
	for i := 60; i < 105; i++ {
		freezeSess += secs[i].AvgActiveSession
		mdlWaits += secs[i].MDLWaits
	}
	baseSess /= 60
	freezeSess /= 45
	if freezeSess < baseSess+20 {
		t.Errorf("sessions %.2f → %.2f, want a big MDL pile-up", baseSess, freezeSess)
	}
	if mdlWaits < 500 {
		t.Errorf("MDL waits = %d, want hundreds of frozen statements", mdlWaits)
	}
}

func TestFillerServicesScaleTemplateCount(t *testing.T) {
	w := DefaultWorld(8)
	base := len(w.AllSpecs())
	w.AddFillerServices(5, 20)
	if got := len(w.AllSpecs()); got != base+100 {
		t.Errorf("specs = %d, want %d", got, base+100)
	}
	counts := w.CountArrivals(0, 120_000, 9)
	// Filler templates actually produce traffic.
	filler := w.Services[len(w.Services)-1].Specs[0]
	if counts[filler.ID()].Sum() == 0 {
		t.Error("filler spec produced no arrivals")
	}
}

func TestSpecLifetimeBounds(t *testing.T) {
	w := NewWorld(1)
	w.AddTable("t", 1000)
	svc := w.AddService("svc", 10, 1)
	w.AddSpec(svc, Spec{
		Name: "windowed", Pattern: "SELECT x FROM t WHERE id = @",
		Table: "t", Kind: dbsim.KindSelect,
		CallsPerRequest: 2, ServiceMs: 1,
		ActiveFromMs: 30_000, ActiveUntilMs: 60_000,
	})
	counts := w.CountArrivals(0, 90_000, 2)
	s := counts[svc.Specs[0].ID()]
	if s.Slice(0, 30).Sum() != 0 || s.Slice(60, 90).Sum() != 0 {
		t.Errorf("spec active outside its lifetime: %v / %v", s.Slice(0, 30).Sum(), s.Slice(60, 90).Sum())
	}
	if s.Slice(30, 60).Sum() == 0 {
		t.Error("spec inactive inside its lifetime")
	}
}

func TestInstantiateReplacesPlaceholders(t *testing.T) {
	w := DefaultWorld(9)
	src := w.Source(0, 2_000, 1)
	q := src.Pop()
	for i := 0; i < len(q.SQL); i++ {
		if q.SQL[i] == '@' {
			t.Errorf("unreplaced placeholder in %q", q.SQL)
		}
	}
}

func TestAnomalyKindStrings(t *testing.T) {
	kinds := map[AnomalyKind]string{
		KindBusinessSpike: "business_spike",
		KindPoorSQL:       "poor_sql",
		KindLockStorm:     "lock_storm",
		KindMDL:           "mdl_lock",
		AnomalyKind(99):   "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %s, want %s", k, k.String(), want)
		}
	}
}
