// Package workload generates the synthetic microservice traffic PinSQL is
// evaluated on — the substitute for Alibaba's production query streams.
//
// The model follows §VI's business-logic argument (Fig. 4): back-end
// services implement business logic as microservice DAGs, so every SQL
// template issued by one service shares that service's request-rate
// modulation. A Service here owns a set of template Specs; its request rate
// is a base RPS shaped by two service-specific sinusoids (minute-scale
// co-movement) plus injected anomaly factors. Arrivals per template follow
// an inhomogeneous Poisson process sampled by thinning, so templates of one
// service correlate strongly in #execution while different services stay
// uncorrelated — exactly the cluster structure the R-SQL module exploits.
//
// Four anomaly injectors mirror the paper's R-SQL taxonomy (§II):
// business-scenario change (QPS spike of one service), poor SQL (a newly
// deployed statement with a huge examined-rows footprint), row-lock storm
// (a burst of hot-key UPDATEs blocking readers of the same rows), and
// metadata lock (a long DDL freezing a hot table).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
)

// Spec describes one SQL template issued by a service, with the cost model
// dbsim consumes.
type Spec struct {
	Name    string // human-readable label
	Pattern string // SQL text with '@' placeholders for literals
	Table   string
	Kind    dbsim.QueryKind

	CallsPerRequest float64 // mean executions per service request (DAG fan-out)
	ServiceMs       float64 // mean service demand
	ServiceJitter   float64 // relative jitter, e.g. 0.3 → ±30 %
	ExaminedRows    int64
	RowsJitter      float64
	IOOps           float64

	// Row-lock footprint: LockCount keys drawn uniformly from
	// [LockLo, LockHi) per statement. Zero LockCount means no locks.
	LockLo, LockHi, LockCount int

	// ActiveFromMs/ActiveUntilMs bound the spec's lifetime (injected
	// templates appear mid-trace); zero values mean "always".
	ActiveFromMs, ActiveUntilMs int64

	// RateFactor optionally scales this spec's arrival rate over time,
	// on top of the service rate (injections install these).
	// MaxRateFactor must bound RateFactor's range for Poisson thinning;
	// it defaults to 1 when unset.
	RateFactor    func(tMs int64) float64
	MaxRateFactor float64

	service  *Service
	template sqltemplate.Template
}

// Template returns the spec's SQL template (digest + normalized text).
func (s *Spec) Template() sqltemplate.Template { return s.template }

// ApplyOptimization models an accepted query optimization (automatic index
// plus rewrite). The passed factors are the optimizer's *maximum* achievable
// reductions; the realized reduction is capped by the statement's own
// optimization potential — a statement already examining few rows has
// little left for an index to cut. This is what separates the Table II
// gains: a pathological scan optimizes by the full factor, while a
// merely-slowed statement improves far less.
func (s *Spec) ApplyOptimization(rowsFactor, timeFactor float64) {
	potential := float64(s.ExaminedRows) / 50
	if potential < 2 {
		potential = 2
	}
	if rowsFactor > potential {
		rowsFactor = potential
	}
	if timeFactor > potential {
		timeFactor = potential
	}
	if rowsFactor > 1 {
		s.ExaminedRows = int64(float64(s.ExaminedRows) / rowsFactor)
		if s.ExaminedRows < 1 {
			s.ExaminedRows = 1
		}
		s.IOOps /= rowsFactor
	}
	if timeFactor > 1 {
		s.ServiceMs /= timeFactor
		if s.ServiceMs < 0.05 {
			s.ServiceMs = 0.05
		}
	}
}

// ID returns the spec's template ID.
func (s *Spec) ID() sqltemplate.ID { return s.template.ID }

// Service is one business (microservice DAG). All its specs share the
// service's request-rate modulation.
type Service struct {
	Name    string
	BaseRPS float64

	// Modulation: rate(t) = BaseRPS · (1 + A1·sin(2πt/P1+φ1) + A2·sin(2πt/P2+φ2)) · spike(t).
	p1, p2     float64 // periods in seconds
	ph1, ph2   float64 // phases
	amp1, amp2 float64

	// SpikeFactor is installed by the business-spike injector.
	SpikeFactor func(tMs int64) float64

	Specs []*Spec
}

// BaseDemand returns the service's expected steady-state CPU demand in
// core-seconds per second (≈ its expected active-session contribution),
// counting only always-active specs. Injection sizing uses it to pick
// spike factors that hurt without driving the instance into runaway
// saturation.
func (s *Service) BaseDemand() float64 {
	var d float64
	for _, sp := range s.Specs {
		if sp.ActiveFromMs != 0 || sp.ActiveUntilMs != 0 {
			continue
		}
		d += s.BaseRPS * sp.CallsPerRequest * sp.ServiceMs / 1000
	}
	return d
}

// Rate returns the service request rate (requests/second) at virtual time t.
func (s *Service) Rate(tMs int64) float64 {
	t := float64(tMs) / 1000
	r := s.BaseRPS * (1 + s.amp1*math.Sin(2*math.Pi*t/s.p1+s.ph1) + s.amp2*math.Sin(2*math.Pi*t/s.p2+s.ph2))
	if s.SpikeFactor != nil {
		r *= s.SpikeFactor(tMs)
	}
	if r < 0 {
		return 0
	}
	return r
}

// maxRate bounds Rate over any time, for Poisson thinning.
func (s *Service) maxRate(maxSpike float64) float64 {
	return s.BaseRPS * (1 + s.amp1 + s.amp2) * maxSpike
}

// TableDef declares a simulated table.
type TableDef struct {
	Name string
	Rows int64
}

// World is a complete workload: tables, services, one-shot statements and
// the installed anomalies.
type World struct {
	rng      *rand.Rand
	Tables   []TableDef
	Services []*Service

	oneShots  []*dbsim.Query // e.g. the DDL of an MDL anomaly
	anomalies []Anomaly
	maxSpike  float64 // upper bound of any installed spike factor
}

// NewWorld creates an empty world with its own deterministic randomness.
func NewWorld(seed int64) *World {
	return &World{rng: rand.New(rand.NewSource(seed)), maxSpike: 1}
}

// Anomalies returns the anomalies installed so far.
func (w *World) Anomalies() []Anomaly { return w.anomalies }

// AddTable declares a table.
func (w *World) AddTable(name string, rows int64) {
	w.Tables = append(w.Tables, TableDef{Name: name, Rows: rows})
}

// AddService creates a service with randomized modulation parameters.
// periodHint decorrelates services: each service should pass a distinct
// value so their sinusoid periods differ.
func (w *World) AddService(name string, baseRPS float64, periodHint int) *Service {
	svc := &Service{
		Name:    name,
		BaseRPS: baseRPS,
		p1:      120 + 37*float64(periodHint%13),
		p2:      310 + 71*float64((periodHint+5)%11),
		ph1:     w.rng.Float64() * 2 * math.Pi,
		ph2:     w.rng.Float64() * 2 * math.Pi,
		amp1:    0.18,
		amp2:    0.12,
	}
	w.Services = append(w.Services, svc)
	return svc
}

// AddSpec attaches a template spec to a service and digests its pattern.
func (w *World) AddSpec(svc *Service, spec Spec) *Spec {
	s := spec
	s.service = svc
	s.template = sqltemplate.New(instantiate(s.Pattern, w.rng))
	if s.CallsPerRequest <= 0 {
		s.CallsPerRequest = 1
	}
	if s.ServiceMs <= 0 {
		s.ServiceMs = 1
	}
	svc.Specs = append(svc.Specs, &s)
	return svc.Specs[len(svc.Specs)-1]
}

// AddOneShot schedules a single statement (used by the MDL injector).
func (w *World) AddOneShot(q *dbsim.Query) { w.oneShots = append(w.oneShots, q) }

// Apply creates the world's tables on a simulated instance.
func (w *World) Apply(in *dbsim.Instance) {
	for _, t := range w.Tables {
		in.CreateTable(t.Name, t.Rows)
	}
}

// AllSpecs returns every spec across services.
func (w *World) AllSpecs() []*Spec {
	var out []*Spec
	for _, svc := range w.Services {
		out = append(out, svc.Specs...)
	}
	return out
}

// SpecByID finds a spec by template ID.
func (w *World) SpecByID(id sqltemplate.ID) *Spec {
	for _, s := range w.AllSpecs() {
		if s.ID() == id {
			return s
		}
	}
	return nil
}

// instantiate replaces each '@' in a pattern with a random integer literal.
func instantiate(pattern string, rng *rand.Rand) string {
	out := make([]byte, 0, len(pattern)+8)
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '@' {
			out = append(out, fmt.Sprintf("%d", rng.Intn(1_000_000))...)
			continue
		}
		out = append(out, pattern[i])
	}
	return string(out)
}

// buildQuery instantiates one statement of a spec at time t.
func (w *World) buildQuery(s *Spec, tMs int64, rng *rand.Rand) *dbsim.Query {
	jitter := func(base, rel float64) float64 {
		if rel <= 0 {
			return base
		}
		return base * (1 + rel*(2*rng.Float64()-1))
	}
	rows := int64(jitter(float64(s.ExaminedRows), s.RowsJitter))
	if rows < 1 {
		rows = 1
	}
	q := &dbsim.Query{
		TemplateID:   string(s.template.ID),
		SQL:          instantiate(s.Pattern, rng),
		Table:        s.Table,
		Kind:         s.Kind,
		ArrivalMs:    tMs,
		ServiceMs:    jitter(s.ServiceMs, s.ServiceJitter),
		IOOps:        s.IOOps,
		ExaminedRows: rows,
		MDLExclusive: s.Kind == dbsim.KindDDL,
	}
	if s.LockCount > 0 && s.LockHi > s.LockLo {
		keys := make([]int, 0, s.LockCount)
		seen := make(map[int]bool, s.LockCount)
		for len(keys) < s.LockCount {
			k := s.LockLo + rng.Intn(s.LockHi-s.LockLo)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		q.LockKeys = keys
	}
	return q
}

// specRate is the arrival rate of one spec at time t (statements/second).
func specRate(s *Spec, tMs int64) float64 {
	if s.ActiveFromMs != 0 && tMs < s.ActiveFromMs {
		return 0
	}
	if s.ActiveUntilMs != 0 && tMs >= s.ActiveUntilMs {
		return 0
	}
	r := s.service.Rate(tMs) * s.CallsPerRequest
	if s.RateFactor != nil {
		r *= s.RateFactor(tMs)
	}
	return r
}
