// Package cases generates the evaluation corpus — the stand-in for the
// paper's ADAC dataset (§VIII-A): anomaly cases sampled from simulated
// database instances running microservice workloads, with ground-truth
// R-SQL and H-SQL labels.
//
// Each case is produced end-to-end through the real pipeline: a workload
// world is built, one anomaly family is injected, the instance simulation
// runs, the collector aggregates the query log, and the anomaly detector
// finds the phenomenon. Ground truth mirrors the paper's DBA labeling:
// R-SQLs are the injected statements (the DBA knows the true cause);
// H-SQLs are the templates whose true per-template active session visibly
// lifted during the anomaly window (the DBA reads the monitoring data).
package cases

import (
	"fmt"
	"math"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/dbsim"
	"pinsql/internal/parallel"
	"pinsql/internal/session"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
	"pinsql/internal/workload"
)

// Labeled is one evaluation case with its ground truth.
type Labeled struct {
	Name string
	Kind workload.AnomalyKind

	Case      *anomaly.Case
	Collector *collect.Collector
	World     *workload.World
	Injected  workload.Anomaly

	RSQLs map[sqltemplate.ID]bool
	HSQLs map[sqltemplate.ID]bool

	// Detected reports whether the anomaly detector found the phenomenon
	// on its own; when false, the injected window was used as a fallback
	// (counted as a detection miss by the harness).
	Detected bool
}

// Options configures corpus generation.
type Options struct {
	Seed  int64
	Count int // number of cases (families rotate round-robin)

	// TraceSec is the collected window length [ts, te); the paper uses
	// δs = 30 min of pre-anomaly data plus the anomaly itself.
	TraceSec int
	// AnomalyStartSec / durations bound the injected window.
	AnomalyStartSec  int
	AnomalyMinDurSec int
	AnomalyMaxDurSec int

	// FillerServices × FillerSpecs extra low-traffic templates pad the
	// template count toward production-like cardinality.
	FillerServices int
	FillerSpecs    int

	// HistoryDays are the Nd offsets of history windows (paper: 1/3/7).
	HistoryDays []int

	Cores int // instance cores; 0 → default

	// Workers bounds how many cases generate concurrently: 1 is the exact
	// sequential path, 0 or negative means use every core
	// (parallel.Resolve). Each case owns its seed, world, instance and
	// collector, so generation order cannot leak into case content; Stream
	// re-delivers in case order regardless, making the corpus — and every
	// report built from it — bit-identical for all Workers values.
	Workers int
}

// DefaultOptions returns the standard corpus configuration: 2400 s traces
// (a 30+ min diagnosis window), anomalies of 4–8 minutes starting around
// t = 1500 s, a modest filler population, and 1/3/7-day history.
func DefaultOptions() Options {
	return Options{
		Seed:             1,
		Count:            20,
		TraceSec:         2400,
		AnomalyStartSec:  1500,
		AnomalyMinDurSec: 240,
		AnomalyMaxDurSec: 480,
		FillerServices:   6,
		FillerSpecs:      10,
		HistoryDays:      []int{1, 3, 7},
	}
}

// Stream generates Count cases and hands each to fn in case order,
// releasing it afterwards. Generation fans out over opt.Workers goroutines
// (each case is self-contained), but fn always runs on the calling
// goroutine, in order, with at most Workers+1 cases alive at once — memory
// stays bounded: a full corpus of multi-thousand-second traces does not
// fit comfortably in RAM.
func Stream(opt Options, fn func(*Labeled) error) error {
	if opt.Count <= 0 {
		return nil
	}
	kinds := []workload.AnomalyKind{
		workload.KindBusinessSpike,
		workload.KindPoorSQL,
		workload.KindLockStorm,
		workload.KindMDL,
	}
	return parallel.OrderedStream(opt.Workers, opt.Count,
		func(i int) (*Labeled, error) {
			kind := kinds[i%len(kinds)]
			c, err := GenerateOne(opt, int64(i), kind)
			if err != nil {
				return nil, fmt.Errorf("case %d (%s): %w", i, kind, err)
			}
			return c, nil
		},
		func(i int, c *Labeled) error { return fn(c) })
}

// Generate materializes the whole corpus in memory; prefer Stream for
// large corpora.
func Generate(opt Options) ([]*Labeled, error) {
	var out []*Labeled
	err := Stream(opt, func(c *Labeled) error {
		out = append(out, c)
		return nil
	})
	return out, err
}

// GenerateOne builds the idx-th case of the given anomaly family.
func GenerateOne(opt Options, idx int64, kind workload.AnomalyKind) (*Labeled, error) {
	return GenerateOneWith(opt, idx, kind, nil)
}

// GenerateOneWith is GenerateOne with a hook invoked on the world after the
// anomaly is injected and before the simulation runs. The Table II harness
// uses it to replay a case with one statement optimized; everything else
// (world structure, injection parameters, arrival noise, SHOW STATUS
// offsets) stays bit-identical.
func GenerateOneWith(opt Options, idx int64, kind workload.AnomalyKind, mutate func(*workload.World)) (*Labeled, error) {
	if opt.TraceSec <= 0 {
		opt = withDefaults(opt)
	}
	seed := opt.Seed*1_000_003 + idx*7919
	world := workload.DefaultWorld(seed)
	if opt.FillerServices > 0 {
		world.AddFillerServices(opt.FillerServices, opt.FillerSpecs)
	}

	// Injection parameters, mildly randomized per case.
	r := newSplitMix(uint64(seed))
	dur := opt.AnomalyMinDurSec
	if opt.AnomalyMaxDurSec > opt.AnomalyMinDurSec {
		dur += int(r.next() % uint64(opt.AnomalyMaxDurSec-opt.AnomalyMinDurSec))
	}
	asMs := int64(opt.AnomalyStartSec+int(r.next()%180)) * 1000
	aeMs := asMs + int64(dur)*1000
	endMs := int64(opt.TraceSec) * 1000

	svcIdx := int(r.next() % 6)
	injected := inject(world, kind, svcIdx, asMs, aeMs, r)
	if mutate != nil {
		mutate(world)
	}
	if err := validateWorld(world, endMs); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("case-%03d-%s", idx, kind)
	return finish(opt, seed, idx, name, kind, world, injected, asMs, aeMs)
}

// finish simulates a prepared (injected, validated) world, detects the
// phenomenon, replays the history windows and labels ground truth — the
// shared tail of GenerateOneWith and GenerateFromParams. The history
// replays rebuild a pristine world from the same seed and the filler shape
// in opt — callers must pass an opt whose FillerServices/FillerSpecs match
// whatever padded the live world.
func finish(opt Options, seed, idx int64, name string, kind workload.AnomalyKind, world *workload.World, injected workload.Anomaly, asMs, aeMs int64) (*Labeled, error) {
	endMs := int64(opt.TraceSec) * 1000

	// Simulate the instance with the collector attached.
	cfg := dbsim.DefaultConfig()
	if opt.Cores > 0 {
		cfg.Cores = opt.Cores
	}
	cfg.Seed = seed + 13
	inst := dbsim.NewInstance(cfg)
	world.Apply(inst)

	coll := collect.NewCollector(fmt.Sprintf("case-%d", idx), 0, endMs, nil, nil)
	secs, err := inst.Run(dbsim.RunOptions{
		StartMs: 0,
		EndMs:   endMs,
		Source:  world.Source(0, endMs, seed+17),
		Sink:    coll.Sink(),
	})
	if err != nil {
		return nil, err
	}
	coll.IngestMetrics(secs)
	snap := coll.Snapshot()

	// Detect the phenomenon with the production-default rules.
	det := anomaly.NewDetector(anomaly.Config{})
	metrics := map[string]timeseries.Series{
		anomaly.MetricActiveSession: snap.ActiveSession,
		anomaly.MetricCPUUsage:      snap.CPUUsage,
		anomaly.MetricIOPSUsage:     snap.IOPSUsage,
	}
	phenomena := det.DetectPhenomena(metrics, anomaly.DefaultRules())
	ph, detected := pickPhenomenon(phenomena, int(asMs/1000), int(aeMs/1000))
	if !detected {
		ph = anomaly.Phenomenon{
			Rule:  "injected_window_fallback",
			Start: int(asMs / 1000),
			End:   int(aeMs / 1000),
		}
	}
	cs := anomaly.NewCase(snap, ph)

	// History windows: replay the same (pristine) world with fresh noise.
	for _, days := range opt.HistoryDays {
		pristine := workload.DefaultWorld(seed)
		if opt.FillerServices > 0 {
			pristine.AddFillerServices(opt.FillerServices, opt.FillerSpecs)
		}
		counts := pristine.CountArrivals(0, endMs, seed+int64(days)*101)
		cs.History = append(cs.History, anomaly.HistoryWindow{DaysAgo: days, Counts: counts})
	}

	lab := &Labeled{
		Name:      name,
		Kind:      kind,
		Case:      cs,
		Collector: coll,
		World:     world,
		Injected:  injected,
		Detected:  detected,
		RSQLs:     map[sqltemplate.ID]bool{},
		HSQLs:     map[sqltemplate.ID]bool{},
	}
	for _, id := range injected.RSQLs {
		lab.RSQLs[id] = true
	}
	lab.labelHSQLs()
	return lab, nil
}

func withDefaults(opt Options) Options {
	def := DefaultOptions()
	if opt.TraceSec <= 0 {
		opt.TraceSec = def.TraceSec
	}
	if opt.AnomalyStartSec <= 0 {
		opt.AnomalyStartSec = def.AnomalyStartSec
	}
	if opt.AnomalyMinDurSec <= 0 {
		opt.AnomalyMinDurSec = def.AnomalyMinDurSec
	}
	if opt.AnomalyMaxDurSec <= 0 {
		opt.AnomalyMaxDurSec = def.AnomalyMaxDurSec
	}
	if opt.HistoryDays == nil {
		opt.HistoryDays = def.HistoryDays
	}
	return opt
}

// inject installs one anomaly of the requested family.
func inject(w *workload.World, kind workload.AnomalyKind, svcIdx int, asMs, aeMs int64, r *splitMix) workload.Anomaly {
	svc := w.Services[svcIdx%len(w.Services)]
	switch kind {
	case workload.KindBusinessSpike:
		// Avoid the fulfillment service: its hot-range locking reads make
		// a large rate spike degenerate into a lock storm (that causal
		// structure belongs to the lock-storm family, injected below).
		if svc == w.Services[2] {
			svc = w.Services[(svcIdx+1)%len(w.Services)]
			if svc == w.Services[2] {
				svc = w.Services[0]
			}
		}
		// Size the spike for an 8–14 active-session lift: enough to trip
		// the detector, not enough to stall the instance so badly that
		// the completed-query log (and hence session estimation) goes
		// blind — the same reason production anomalies are actionable.
		target := 8 + float64(r.next()%7)
		factor := target / math.Max(svc.BaseDemand(), 0.05)
		factor = math.Max(5, math.Min(80, factor))
		return w.InjectBusinessSpike(svc, factor, asMs, aeMs)
	case workload.KindPoorSQL:
		rps := 4 + float64(r.next()%4) // ~4–8 cores of extra demand
		return w.InjectPoorSQL(svc, "orders", rps, asMs)
	case workload.KindLockStorm:
		// The storm job belongs to the business whose readers lock the
		// hot rows: fulfillment (order-by-id ... FOR UPDATE).
		rps := 5 + float64(r.next()%4)
		return w.InjectLockStorm(w.Services[2], "orders", rps, asMs, aeMs)
	default:
		return w.InjectMDL("orders", asMs, aeMs-asMs)
	}
}

// pickPhenomenon selects the detected phenomenon overlapping the injected
// window, preferring the one with the largest overlap.
func pickPhenomenon(ps []anomaly.Phenomenon, as, ae int) (anomaly.Phenomenon, bool) {
	best := -1
	bestOverlap := 0
	for i, p := range ps {
		lo, hi := p.Start, p.End
		if as > lo {
			lo = as
		}
		if ae < hi {
			hi = ae
		}
		if hi-lo > bestOverlap {
			bestOverlap = hi - lo
			best = i
		}
	}
	if best < 0 {
		return anomaly.Phenomenon{}, false
	}
	return ps[best], true
}

// labelHSQLs derives the H-SQL ground truth from the true per-template
// active sessions (whole-second expectation over the real query log):
// a template is an H-SQL when its session lift during the anomaly window
// is material both absolutely and relative to the instance lift.
func (l *Labeled) labelHSQLs() {
	f := l.Collector.Frame()
	as, ae := l.Case.AS, l.Case.AE
	est := session.EstimateFrameNoBuckets(f)

	instLift := lift(est.Total, as, ae)
	threshold := math.Max(0.5, 0.05*instLift)
	for pos, s := range est.PerTemplate {
		if lift(s, as, ae) >= threshold {
			l.HSQLs[f.Templates[pos].Meta.ID] = true
		}
	}
}

// lift is the anomaly-window mean minus the pre-window mean of a series.
func lift(s timeseries.Series, as, ae int) float64 {
	if as <= 0 {
		return s.Slice(0, ae).Mean()
	}
	return s.Slice(as, ae).Mean() - s.Slice(0, as).Mean()
}

// QueriesOf converts a collector's window into the estimator's legacy
// map-keyed input. It is a compatibility shim over the collector's window
// frame: the observation columns accumulated during ingest are flattened
// into per-ID slices, so the log store is no longer re-scanned. snap must
// be the collector's own window snapshot (every caller's situation); its
// bounds are the frame's bounds.
//
// Ordering contract: the returned value is a Go map, so iteration order is
// UNORDERED and differs between runs. Any consumer whose output must be
// deterministic has to fix an order itself — and every consumer does:
// session estimators iterate sortedIDs / accumulate per-template,
// impact.Rank sorts the IDs, and caseio.FromCase sorts template IDs before
// rendering. Within one template, observations are ordered by arrival time
// (ties in log insertion order) — the store's scan order. The shuffled
// insertion regression test in cases_order_test.go guards this contract.
func QueriesOf(coll *collect.Collector, snap *collect.Snapshot) session.Queries {
	return FrameQueries(coll.Frame())
}

// FrameQueries flattens a frame's observation columns into the legacy
// map-keyed estimator input. Templates without observations get no entry,
// matching the historical store-scan behaviour.
func FrameQueries(f *window.Frame) session.Queries {
	out := make(session.Queries, len(f.Templates))
	for pos := range f.Templates {
		arr, resp := f.Obs(pos)
		if len(arr) == 0 {
			continue
		}
		obs := make([]session.Obs, len(arr))
		for i, a := range arr {
			obs[i] = session.Obs{ArrivalMs: a, ResponseMs: resp[i]}
		}
		id := f.Templates[pos].Meta.ID
		out[id] = append(out[id], obs...)
	}
	return out
}

// splitMix is a tiny deterministic RNG for parameter jitter, independent of
// math/rand so corpus parameters stay stable across Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
