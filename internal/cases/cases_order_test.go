package cases

// Regression tests for QueriesOf's ordering contract: within a template the
// observation slice is sorted by arrival time, with ties preserving the
// collector's insertion order. The frame shim must keep honoring this even
// though it no longer re-scans the log store — downstream float summation
// order (and therefore byte-identical diagnosis output) depends on it.

import (
	"math/rand"
	"testing"

	"pinsql/internal/collect"
	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
)

func TestQueriesOfSortsShuffledInsertions(t *testing.T) {
	const (
		templates = 5
		perTpl    = 40
		windowMs  = 100_000
	)
	type ins struct {
		tpl     int
		arrival int64
		resp    float64
	}
	// A shuffled insertion schedule with deliberate arrival collisions
	// (arrivals quantized to 500ms so ties are frequent).
	rng := rand.New(rand.NewSource(99))
	var schedule []ins
	for tpl := 0; tpl < templates; tpl++ {
		for i := 0; i < perTpl; i++ {
			schedule = append(schedule, ins{
				tpl:     tpl,
				arrival: int64(rng.Intn(windowMs/500)) * 500,
				resp:    float64(1 + rng.Intn(1000)),
			})
		}
	}
	rng.Shuffle(len(schedule), func(i, j int) { schedule[i], schedule[j] = schedule[j], schedule[i] })

	coll := collect.NewCollector("order", 0, windowMs, nil, nil)
	ids := []string{"TA", "TB", "TC", "TD", "TE"}
	// wantOrder reproduces the contract by hand: per template, a stable
	// arrival sort over the insertion sequence.
	type obs struct {
		arrival int64
		resp    float64
	}
	want := make(map[string][]obs)
	for _, s := range schedule {
		coll.Ingest(dbsim.LogRecord{
			TemplateID: ids[s.tpl],
			SQL:        "SELECT " + ids[s.tpl],
			Table:      "t",
			Kind:       dbsim.KindSelect,
			ArrivalMs:  s.arrival,
			ResponseMs: s.resp,
		})
		want[ids[s.tpl]] = append(want[ids[s.tpl]], obs{s.arrival, s.resp})
	}
	for _, id := range ids {
		w := want[id]
		// Stable insertion-order-preserving sort by arrival.
		for i := 1; i < len(w); i++ {
			for j := i; j > 0 && w[j-1].arrival > w[j].arrival; j-- {
				w[j-1], w[j] = w[j], w[j-1]
			}
		}
	}

	snap := coll.Snapshot()
	got := QueriesOf(coll, snap)
	if len(got) != templates {
		t.Fatalf("queries for %d templates, want %d", len(got), templates)
	}
	for _, id := range ids {
		g := got[sqltemplate.ID(id)]
		w := want[id]
		if len(g) != len(w) {
			t.Fatalf("%s: %d obs, want %d", id, len(g), len(w))
		}
		for i := range w {
			if g[i].ArrivalMs != w[i].arrival || g[i].ResponseMs != w[i].resp {
				t.Fatalf("%s obs %d = (%d, %g), want (%d, %g) — arrival sort or tie order broken",
					id, i, g[i].ArrivalMs, g[i].ResponseMs, w[i].arrival, w[i].resp)
			}
		}
	}
}

// TestQueriesOfMatchesFrameQueries pins the shim: QueriesOf is defined as
// the flattening of the collector's frame.
func TestQueriesOfMatchesFrameQueries(t *testing.T) {
	coll := collect.NewCollector("order", 0, 10_000, nil, nil)
	for i := 0; i < 50; i++ {
		coll.Ingest(dbsim.LogRecord{
			TemplateID: "T" + string(rune('A'+i%3)),
			SQL:        "SELECT 1",
			Table:      "t",
			Kind:       dbsim.KindSelect,
			ArrivalMs:  int64((50 - i) * 100),
			ResponseMs: float64(i),
		})
	}
	a := QueriesOf(coll, coll.Snapshot())
	b := FrameQueries(coll.Frame())
	if len(a) != len(b) {
		t.Fatalf("QueriesOf has %d templates, FrameQueries %d", len(a), len(b))
	}
	for id, obs := range a {
		if len(b[id]) != len(obs) {
			t.Fatalf("%s: %d vs %d obs", id, len(obs), len(b[id]))
		}
		for i := range obs {
			if obs[i] != b[id][i] {
				t.Fatalf("%s obs %d differs: %+v vs %+v", id, i, obs[i], b[id][i])
			}
		}
	}
}
