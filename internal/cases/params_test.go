package cases

import (
	"errors"
	"math"
	"testing"

	"pinsql/internal/workload"
)

// fastOpt is a minimal-cost generation configuration for validation tests.
func fastOpt() Options {
	opt := DefaultOptions()
	opt.TraceSec = 300
	opt.AnomalyStartSec = 150
	opt.AnomalyMinDurSec = 60
	opt.AnomalyMaxDurSec = 90
	opt.FillerServices = 0
	opt.HistoryDays = []int{1}
	return opt
}

// validParams is a vector that passes Validate for fastOpt's horizon.
func validParams() CaseParams {
	return CaseParams{
		Kind:            workload.KindPoorSQL,
		Service:         1,
		Intensity:       3,
		StartSec:        150,
		DurSec:          60,
		ConfuserService: -1,
	}
}

// TestCaseParamsValidate drives the boundary values the fuzzer hits
// constantly through Validate; each invalid vector must come back as a
// typed *ValidationError (wrapping ErrInvalid) naming the right field.
func TestCaseParamsValidate(t *testing.T) {
	const trace = 300
	tests := []struct {
		name   string
		mutate func(*CaseParams)
		field  string // "" = expect valid
	}{
		{"valid", func(p *CaseParams) {}, ""},
		{"valid at horizon edge", func(p *CaseParams) { p.StartSec = 299; p.DurSec = 1 }, ""},
		{"valid mdl ignores intensity", func(p *CaseParams) { p.Kind = workload.KindMDL; p.Intensity = 0 }, ""},
		{"valid with confuser", func(p *CaseParams) {
			p.ConfuserService = 3
			p.ConfuserFactor = 2.5
			p.ConfuserDurSec = 60
		}, ""},

		{"service negative", func(p *CaseParams) { p.Service = -1 }, "service"},
		{"service beyond base world", func(p *CaseParams) { p.Service = 6 }, "service"},
		{"zero intensity", func(p *CaseParams) { p.Intensity = 0 }, "intensity"},
		{"negative intensity", func(p *CaseParams) { p.Intensity = -4 }, "intensity"},
		{"NaN intensity", func(p *CaseParams) { p.Intensity = math.NaN() }, "intensity"},
		{"Inf intensity", func(p *CaseParams) { p.Intensity = math.Inf(1) }, "intensity"},
		{"start at zero", func(p *CaseParams) { p.StartSec = 0 }, "start_sec"},
		{"start negative", func(p *CaseParams) { p.StartSec = -10 }, "start_sec"},
		{"start at horizon", func(p *CaseParams) { p.StartSec = trace }, "start_sec"},
		{"start past horizon", func(p *CaseParams) { p.StartSec = trace + 50 }, "start_sec"},
		{"zero duration", func(p *CaseParams) { p.DurSec = 0 }, "dur_sec"},
		{"negative duration", func(p *CaseParams) { p.DurSec = -30 }, "dur_sec"},
		{"window leaves horizon", func(p *CaseParams) { p.StartSec = 280; p.DurSec = 21 }, "dur_sec"},
		{"negative fillers", func(p *CaseParams) { p.FillerServices = -1 }, "filler_services"},
		{"fillers without specs", func(p *CaseParams) { p.FillerServices = 2; p.FillerSpecs = 0 }, "filler_specs"},
		{"confuser beyond base world", func(p *CaseParams) {
			p.ConfuserService = 6
			p.ConfuserFactor = 2
			p.ConfuserDurSec = 60
		}, "confuser_service"},
		{"confuser equals target", func(p *CaseParams) {
			p.ConfuserService = p.Service
			p.ConfuserFactor = 2
			p.ConfuserDurSec = 60
		}, "confuser_service"},
		{"confuser factor of one", func(p *CaseParams) {
			p.ConfuserService = 3
			p.ConfuserFactor = 1
			p.ConfuserDurSec = 60
		}, "confuser_factor"},
		{"confuser without duration", func(p *CaseParams) {
			p.ConfuserService = 3
			p.ConfuserFactor = 2
		}, "confuser_dur_sec"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := validParams()
			tc.mutate(&p)
			err := p.Validate(trace)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("expected valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected a validation error on %s", tc.field)
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("expected *ValidationError, got %T: %v", err, err)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("validation error does not wrap ErrInvalid: %v", err)
			}
			if verr.Field != tc.field {
				t.Fatalf("field = %q, want %q (err: %v)", verr.Field, tc.field, err)
			}
		})
	}
}

// TestCaseParamsValidateHorizon covers the degenerate horizon itself.
func TestCaseParamsValidateHorizon(t *testing.T) {
	err := validParams().Validate(0)
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Field != "trace_sec" {
		t.Fatalf("expected trace_sec validation error, got %v", err)
	}
}

// TestGenerateFromParamsRejectsInvalid confirms the generator refuses an
// invalid vector before paying for a simulation.
func TestGenerateFromParamsRejectsInvalid(t *testing.T) {
	p := validParams()
	p.StartSec = 10_000 // far outside fastOpt's 300 s horizon
	_, err := GenerateFromParams(fastOpt(), 0, p)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("expected ErrInvalid, got %v", err)
	}
}

// TestGenerateOneWithMutationValidation: mutations that degrade the world
// out of range must surface as typed validation errors instead of silently
// generating a degenerate case.
func TestGenerateOneWithMutationValidation(t *testing.T) {
	opt := fastOpt()
	tests := []struct {
		name   string
		mutate func(*workload.World)
		field  string
	}{
		{"zero-QPS service", func(w *workload.World) {
			w.Services[1].BaseRPS = 0
		}, "service"},
		{"negative-QPS service", func(w *workload.World) {
			w.Services[0].BaseRPS = -3
		}, "service"},
		{"NaN service rate", func(w *workload.World) {
			w.Services[2].BaseRPS = math.NaN()
		}, "service"},
		{"negative calls per request", func(w *workload.World) {
			w.Services[0].Specs[0].CallsPerRequest = -1
		}, "spec"},
		{"zero service demand", func(w *workload.World) {
			w.Services[0].Specs[0].ServiceMs = 0
		}, "spec"},
		{"anomaly window outside horizon", func(w *workload.World) {
			// A second injection entirely past the 300 s trace.
			w.InjectPoorSQL(w.Services[1], "orders", 2, 400_000)
		}, "anomaly"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := GenerateOneWith(opt, 0, workload.KindPoorSQL, tc.mutate)
			if err == nil {
				t.Fatal("expected a validation error")
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("expected *ValidationError, got %T: %v", err, err)
			}
			if verr.Field != tc.field {
				t.Fatalf("field = %q, want %q (err: %v)", verr.Field, tc.field, err)
			}
		})
	}

	// The nil mutation still generates: validation must not reject the
	// generator's own injections.
	if _, err := GenerateOneWith(opt, 0, workload.KindPoorSQL, nil); err != nil {
		t.Fatalf("unmutated generation failed validation: %v", err)
	}
}

// TestGenerateFromParamsDeterministic: the same (opt, idx, vector) must
// reproduce the identical case — the replay contract repro bundles and the
// minimizer depend on.
func TestGenerateFromParamsDeterministic(t *testing.T) {
	opt := fastOpt()
	p := validParams()
	p.ConfuserService = 3
	p.ConfuserFactor = 2.5
	p.ConfuserLeadSec = -20
	p.ConfuserDurSec = 80

	a, err := GenerateFromParams(opt, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFromParams(opt, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || a.Case.AS != b.Case.AS || a.Case.AE != b.Case.AE {
		t.Fatalf("case identity diverged: %v/%d/%d vs %v/%d/%d",
			a.Name, a.Case.AS, a.Case.AE, b.Name, b.Case.AS, b.Case.AE)
	}
	sa, sb := a.Case.Snapshot, b.Case.Snapshot
	if len(sa.Templates) != len(sb.Templates) {
		t.Fatalf("template counts diverged: %d vs %d", len(sa.Templates), len(sb.Templates))
	}
	for i := range sa.ActiveSession {
		if sa.ActiveSession[i] != sb.ActiveSession[i] {
			t.Fatalf("active session diverged at second %d", i)
		}
	}
	if len(a.RSQLs) != len(b.RSQLs) {
		t.Fatalf("truth labels diverged")
	}
}
