package cases

import (
	"errors"
	"fmt"
	"math"

	"pinsql/internal/workload"
)

// ErrInvalid is the sentinel every case-parameter validation failure wraps;
// callers can match the class with errors.Is and recover the detail with
// errors.As on *ValidationError.
var ErrInvalid = errors.New("cases: invalid parameters")

// ValidationError reports one out-of-range case parameter or a degenerate
// post-mutation world. The adversarial fuzzer hits these boundaries
// constantly; returning a typed error (instead of silently generating a
// degenerate case) lets it reject the sample and resample, and keeps
// hand-written harness mistakes loud.
type ValidationError struct {
	Field  string // parameter or world element that failed, e.g. "start_sec"
	Value  string // offending value, rendered
	Reason string // why it is invalid
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("cases: invalid %s=%s: %s", e.Field, e.Value, e.Reason)
}

// Unwrap ties every ValidationError to ErrInvalid.
func (e *ValidationError) Unwrap() error { return ErrInvalid }

func invalidf(field string, value any, reason string) *ValidationError {
	return &ValidationError{Field: field, Value: fmt.Sprint(value), Reason: reason}
}

// CaseParams is the explicit injection parameter vector of one generated
// case — the mutation space the adversarial fuzzer searches. GenerateOne
// derives an equivalent vector from seed jitter; GenerateFromParams takes
// it verbatim, so a found case replays from its recorded vector alone.
type CaseParams struct {
	Kind workload.AnomalyKind `json:"kind"`

	// Service indexes the target service (business-spike and poor-SQL
	// families; the lock storm is pinned to the fulfillment service whose
	// readers lock the hot rows, and the MDL freeze targets a table).
	Service int `json:"service"`

	// Intensity is the anomaly magnitude, with a per-family meaning:
	// business spike — target active-session lift; poor SQL / lock storm —
	// absolute statements/second of the injected job; MDL — unused.
	Intensity float64 `json:"intensity"`

	// StartSec / DurSec place the anomaly window inside the trace horizon.
	StartSec int `json:"start_sec"`
	DurSec   int `json:"dur_sec"`

	// FillerServices × FillerSpecs pad the template population.
	FillerServices int `json:"filler_services"`
	FillerSpecs    int `json:"filler_specs"`

	// Confuser: a benign traffic surge on another service overlapping the
	// anomaly window (workload.AddTrafficSpike — no ground-truth labels).
	// ConfuserService < 0 disables it. ConfuserLeadSec shifts the surge
	// start relative to the anomaly start (negative = surge begins first).
	ConfuserService int     `json:"confuser_service"`
	ConfuserFactor  float64 `json:"confuser_factor,omitempty"`
	ConfuserLeadSec int     `json:"confuser_lead_sec,omitempty"`
	ConfuserDurSec  int     `json:"confuser_dur_sec,omitempty"`
}

// baseServices is the service count of workload.DefaultWorld — the range
// Service and ConfuserService index into (fillers are never targets).
const baseServices = 6

// Validate checks the vector against a trace horizon of traceSec seconds.
// Every violation returns a *ValidationError wrapping ErrInvalid.
func (p CaseParams) Validate(traceSec int) error {
	if traceSec <= 0 {
		return invalidf("trace_sec", traceSec, "horizon must be positive")
	}
	if p.Service < 0 || p.Service >= baseServices {
		return invalidf("service", p.Service, fmt.Sprintf("must index a base service [0,%d)", baseServices))
	}
	if p.Kind != workload.KindMDL {
		if math.IsNaN(p.Intensity) || math.IsInf(p.Intensity, 0) || p.Intensity <= 0 {
			return invalidf("intensity", p.Intensity, "must be a positive finite magnitude")
		}
	}
	if p.StartSec <= 0 || p.StartSec >= traceSec {
		return invalidf("start_sec", p.StartSec, fmt.Sprintf("anomaly must start inside the (0,%d) horizon", traceSec))
	}
	if p.DurSec <= 0 {
		return invalidf("dur_sec", p.DurSec, "anomaly needs a positive duration")
	}
	if p.StartSec+p.DurSec > traceSec {
		return invalidf("dur_sec", p.DurSec,
			fmt.Sprintf("anomaly window [%d,%d) leaves the %ds horizon", p.StartSec, p.StartSec+p.DurSec, traceSec))
	}
	if p.FillerServices < 0 {
		return invalidf("filler_services", p.FillerServices, "must be non-negative")
	}
	if p.FillerServices > 0 && p.FillerSpecs <= 0 {
		return invalidf("filler_specs", p.FillerSpecs, "filler services need at least one spec each")
	}
	if p.ConfuserService >= 0 {
		if p.ConfuserService >= baseServices {
			return invalidf("confuser_service", p.ConfuserService, fmt.Sprintf("must index a base service [0,%d)", baseServices))
		}
		if p.ConfuserService == p.Service && p.Kind != workload.KindMDL {
			return invalidf("confuser_service", p.ConfuserService, "confuser must surge a service other than the target")
		}
		if math.IsNaN(p.ConfuserFactor) || math.IsInf(p.ConfuserFactor, 0) || p.ConfuserFactor <= 1 {
			return invalidf("confuser_factor", p.ConfuserFactor, "a surge must multiply the rate by more than 1")
		}
		if p.ConfuserDurSec <= 0 {
			return invalidf("confuser_dur_sec", p.ConfuserDurSec, "confuser needs a positive duration")
		}
	}
	return nil
}

// GenerateFromParams builds one case from an explicit parameter vector:
// the same world, simulation and labeling path as GenerateOne, but with the
// injection controlled by p instead of seed jitter. idx seeds the world and
// arrival noise exactly as GenerateOne's idx does, so (opt, idx, p) is a
// complete, replayable description of the case. Invalid vectors return a
// *ValidationError wrapping ErrInvalid.
func GenerateFromParams(opt Options, idx int64, p CaseParams) (*Labeled, error) {
	if opt.TraceSec <= 0 {
		opt = withDefaults(opt)
	}
	if err := p.Validate(opt.TraceSec); err != nil {
		return nil, err
	}
	// finish replays history with opt's filler shape: keep it in sync with
	// the live world, which is padded from the vector.
	opt.FillerServices = p.FillerServices
	opt.FillerSpecs = p.FillerSpecs

	seed := opt.Seed*1_000_003 + idx*7919
	world := workload.DefaultWorld(seed)
	if p.FillerServices > 0 {
		world.AddFillerServices(p.FillerServices, p.FillerSpecs)
	}

	asMs := int64(p.StartSec) * 1000
	aeMs := asMs + int64(p.DurSec)*1000
	endMs := int64(opt.TraceSec) * 1000

	injected := injectParams(world, p, asMs, aeMs)
	if p.ConfuserService >= 0 {
		cs := asMs + int64(p.ConfuserLeadSec)*1000
		if cs < 0 {
			cs = 0
		}
		ce := cs + int64(p.ConfuserDurSec)*1000
		if ce > endMs {
			ce = endMs
		}
		world.AddTrafficSpike(world.Services[p.ConfuserService], p.ConfuserFactor, cs, ce)
	}
	if err := validateWorld(world, endMs); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("fuzz-%04d-%s", idx, p.Kind)
	return finish(opt, seed, idx, name, p.Kind, world, injected, asMs, aeMs)
}

// injectParams installs the anomaly p describes. Unlike inject (the
// seed-jitter path), the business-spike family may target any service —
// including fulfillment, where a rate spike degenerates into lock
// contention: exactly the confusable region an adversarial search should
// be free to explore.
func injectParams(w *workload.World, p CaseParams, asMs, aeMs int64) workload.Anomaly {
	svc := w.Services[p.Service]
	switch p.Kind {
	case workload.KindBusinessSpike:
		factor := p.Intensity / math.Max(svc.BaseDemand(), 0.05)
		factor = math.Max(1.5, math.Min(120, factor))
		return w.InjectBusinessSpike(svc, factor, asMs, aeMs)
	case workload.KindPoorSQL:
		return w.InjectPoorSQL(svc, "orders", p.Intensity, asMs)
	case workload.KindLockStorm:
		// The storm job must belong to the business whose readers lock the
		// hot rows — fulfillment (see InjectLockStorm's contract).
		return w.InjectLockStorm(w.Services[2], "orders", p.Intensity, asMs, aeMs)
	default:
		return w.InjectMDL("orders", asMs, aeMs-asMs)
	}
}

// validateWorld rejects degenerate post-mutation worlds: zero-QPS services,
// non-positive spec costs, and anomaly windows entirely outside the trace
// horizon. Windows that merely extend past the horizon are fine — open-ended
// injections (poor SQL) and end-of-trace anomalies are the normal case.
func validateWorld(w *workload.World, horizonMs int64) error {
	for _, svc := range w.Services {
		if math.IsNaN(svc.BaseRPS) || math.IsInf(svc.BaseRPS, 0) || svc.BaseRPS <= 0 {
			return invalidf("service", svc.Name, "zero-QPS service: BaseRPS must be positive and finite")
		}
		for _, sp := range svc.Specs {
			if sp.CallsPerRequest < 0 || math.IsNaN(sp.CallsPerRequest) {
				return invalidf("spec", svc.Name+"/"+sp.Name, "CallsPerRequest must be non-negative")
			}
			if sp.ServiceMs <= 0 || math.IsNaN(sp.ServiceMs) {
				return invalidf("spec", svc.Name+"/"+sp.Name, "ServiceMs must be positive")
			}
		}
	}
	for _, a := range w.Anomalies() {
		if a.StartMs < 0 || a.StartMs >= horizonMs {
			return invalidf("anomaly", fmt.Sprintf("%s@%dms", a.Kind, a.StartMs),
				fmt.Sprintf("anomaly starts outside the [0,%dms) horizon", horizonMs))
		}
		if a.EndMs != 0 && a.EndMs <= a.StartMs {
			return invalidf("anomaly", fmt.Sprintf("%s@[%d,%d)ms", a.Kind, a.StartMs, a.EndMs),
				"anomaly window is empty or inverted")
		}
	}
	return nil
}
