package cases

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pinsql/internal/workload"
)

func smallOptions() Options {
	opt := DefaultOptions()
	opt.TraceSec = 1200
	opt.AnomalyStartSec = 700
	opt.AnomalyMinDurSec = 180
	opt.AnomalyMaxDurSec = 300
	opt.FillerServices = 1
	opt.FillerSpecs = 3
	opt.HistoryDays = []int{1}
	return opt
}

func TestGenerateOneEachFamily(t *testing.T) {
	kinds := []workload.AnomalyKind{
		workload.KindBusinessSpike,
		workload.KindPoorSQL,
		workload.KindLockStorm,
		workload.KindMDL,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			lab, err := GenerateOne(smallOptions(), 3, kind)
			if err != nil {
				t.Fatal(err)
			}
			if len(lab.RSQLs) == 0 {
				t.Error("no ground-truth R-SQLs")
			}
			if len(lab.HSQLs) == 0 {
				t.Error("no ground-truth H-SQLs")
			}
			if lab.Case.Snapshot == nil || lab.Case.Snapshot.Seconds != 1200 {
				t.Errorf("snapshot seconds = %d", lab.Case.Snapshot.Seconds)
			}
			if lab.Case.AE <= lab.Case.AS {
				t.Errorf("anomaly window [%d,%d) malformed", lab.Case.AS, lab.Case.AE)
			}
			if len(lab.Case.History) != 1 || lab.Case.History[0].DaysAgo != 1 {
				t.Errorf("history windows = %+v", lab.Case.History)
			}
			if !lab.Detected {
				t.Errorf("%s anomaly not detected by perception layers", kind)
			}
		})
	}
}

func TestGroundTruthRSQLIsNewInHistory(t *testing.T) {
	lab, err := GenerateOne(smallOptions(), 5, workload.KindPoorSQL)
	if err != nil {
		t.Fatal(err)
	}
	for id := range lab.RSQLs {
		if _, ok := lab.Case.History[0].Counts[id]; ok {
			t.Errorf("injected template %s exists in history (should be new)", id)
		}
	}
	// Base templates must exist in history.
	base := lab.World.Services[0].Specs[0].ID()
	if _, ok := lab.Case.History[0].Counts[base]; !ok {
		t.Error("base template missing from history window")
	}
}

func TestHSQLLabelsIncludeAffectedTemplates(t *testing.T) {
	lab, err := GenerateOne(smallOptions(), 7, workload.KindMDL)
	if err != nil {
		t.Fatal(err)
	}
	// An MDL freeze on "orders" must label at least one orders-touching
	// template (a frozen victim) as H-SQL.
	found := false
	for id := range lab.HSQLs {
		if ts := lab.Case.Snapshot.Template(id); ts != nil && ts.Meta.Table == "orders" {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no orders-table victim among H-SQLs: %v", lab.HSQLs)
	}
}

func TestStreamRoundRobin(t *testing.T) {
	opt := smallOptions()
	opt.Count = 4
	var kinds []workload.AnomalyKind
	err := Stream(opt, func(c *Labeled) error {
		kinds = append(kinds, c.Kind)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []workload.AnomalyKind{
		workload.KindBusinessSpike,
		workload.KindPoorSQL,
		workload.KindLockStorm,
		workload.KindMDL,
	}
	if len(kinds) != 4 {
		t.Fatalf("cases = %d", len(kinds))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("case %d kind = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestStreamZeroCount(t *testing.T) {
	if err := Stream(Options{}, func(*Labeled) error { t.Fatal("must not call"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateOne(smallOptions(), 2, workload.KindLockStorm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateOne(smallOptions(), 2, workload.KindLockStorm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Case.AS != b.Case.AS || a.Case.AE != b.Case.AE {
		t.Errorf("windows differ: [%d,%d) vs [%d,%d)", a.Case.AS, a.Case.AE, b.Case.AS, b.Case.AE)
	}
	for id := range a.RSQLs {
		if !b.RSQLs[id] {
			t.Errorf("R-SQL truth differs: %s", id)
		}
	}
	sa := a.Case.Snapshot.ActiveSession
	sb := b.Case.Snapshot.ActiveSession
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("active session differs at %d: %v vs %v", i, sa[i], sb[i])
		}
	}
}

func TestQueriesOfCoversLog(t *testing.T) {
	lab, err := GenerateOne(smallOptions(), 9, workload.KindBusinessSpike)
	if err != nil {
		t.Fatal(err)
	}
	queries := QueriesOf(lab.Collector, lab.Case.Snapshot)
	var total int
	for _, obs := range queries {
		total += len(obs)
	}
	var logged float64
	for _, ts := range lab.Case.Snapshot.Templates {
		logged += ts.Count.Sum()
	}
	if float64(total) != logged {
		t.Errorf("queries = %d, logged executions = %v", total, logged)
	}
}

// corpusFingerprint flattens the fields of a generated case that every
// report reads, so corpora generated under different worker counts can be
// compared for exact equality.
func corpusFingerprint(t *testing.T, labs []*Labeled) string {
	t.Helper()
	var b strings.Builder
	for _, lab := range labs {
		fmt.Fprintf(&b, "%s|%s|%v|%d|%d\n", lab.Name, lab.Kind, lab.Detected, lab.Case.AS, lab.Case.AE)
		for _, v := range lab.Case.Snapshot.ActiveSession {
			fmt.Fprintf(&b, "%.12g ", v)
		}
		b.WriteByte('\n')
		for _, ts := range lab.Case.Snapshot.Templates {
			fmt.Fprintf(&b, "%s %.12g %.12g %.12g\n", ts.Meta.ID, ts.Count.Sum(), ts.SumRT.Sum(), ts.SumRows.Sum())
		}
		ids := make([]string, 0, len(lab.RSQLs)+len(lab.HSQLs))
		for id := range lab.RSQLs {
			ids = append(ids, "R"+string(id))
		}
		for id := range lab.HSQLs {
			ids = append(ids, "H"+string(id))
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "%v\n", ids)
	}
	return b.String()
}

// TestStreamWorkersEquivalence generates the same corpus at several worker
// counts and asserts delivery order and case content are identical — the
// determinism contract behind parallel case generation.
func TestStreamWorkersEquivalence(t *testing.T) {
	opt := smallOptions()
	opt.TraceSec = 600
	opt.AnomalyStartSec = 300
	opt.AnomalyMinDurSec = 120
	opt.AnomalyMaxDurSec = 180
	opt.Count = 4 // one case of each family

	var want string
	for _, workers := range []int{1, 2, 4} {
		o := opt
		o.Workers = workers
		labs, err := Generate(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp := corpusFingerprint(t, labs)
		if workers == 1 {
			want = fp
			continue
		}
		if fp != want {
			t.Errorf("corpus at workers=%d differs from sequential corpus", workers)
		}
	}
}
