package ingest

import (
	"io"
	"sort"
	"time"
)

// ReplayOptions configures the replay clock.
type ReplayOptions struct {
	// Speed is the wall-clock pacing factor: 1 replays in real time, 2
	// twice as fast, 0 (default) as fast as the pipeline drains. Pacing
	// changes only timing, never content — the batch sequence is
	// identical at every speed.
	Speed float64

	// MaxGapSec caps how many consecutive idle trace seconds survive into
	// the replay timeline; a recording gap longer than this collapses to
	// exactly MaxGapSec empty seconds (monitoring windows should measure
	// the workload, not the collector's downtime). Default 5; negative
	// preserves all gaps.
	MaxGapSec int

	// SlackSec bounds how far out of order the raw stream may be: a
	// batch is held until every second that could still precede it has
	// been seen. Mirrors the log store's 5-second insertion-sort slack
	// (logstore.Append), which is the same contract the collector's
	// staging path relies on. Default 5.
	SlackSec int
}

func (o ReplayOptions) withDefaults() ReplayOptions {
	if o.MaxGapSec == 0 {
		o.MaxGapSec = 5
	}
	if o.SlackSec <= 0 {
		o.SlackSec = 5
	}
	return o
}

// Replay turns a raw adapter stream (sparse batches, absolute trace
// epoch, locally out of order) into the dense contract the Player needs:
// consecutive seconds starting at 0, one batch each. It rebases the
// timeline so the first active trace second becomes second 0 (rewriting
// record timestamps to match), re-orders within a bounded slack,
// compresses long recording gaps, and optionally paces emission against
// the wall clock.
type Replay struct {
	src Source
	opt ReplayOptions

	pend     []Batch // out-of-order holding pen, sorted by trace second
	maxSeen  int64   // highest trace second pulled so far
	innerEOF bool

	outQ []Batch // dense, rebased, ready to emit

	started   bool
	prevTrace int64 // last trace second flushed
	shiftSec  int64 // trace second − output second
	outSec    int64 // next output second to emit (== #seconds emitted)

	lastEmit time.Time
}

// NewReplay wraps a raw source in the replay clock.
func NewReplay(src Source, opt ReplayOptions) *Replay {
	return &Replay{src: src, opt: opt.withDefaults()}
}

// Next implements Source.
func (r *Replay) Next() (Batch, error) {
	for len(r.outQ) == 0 {
		if r.innerEOF {
			if len(r.pend) == 0 {
				return Batch{}, io.EOF
			}
			r.flushReady()
			continue
		}
		b, err := r.src.Next()
		if err == io.EOF {
			r.innerEOF = true
			r.flushReady()
			continue
		}
		if err != nil {
			return Batch{}, err
		}
		r.hold(b)
		r.flushReady()
	}
	out := r.outQ[0]
	r.outQ = r.outQ[1:]
	if r.innerEOF && len(r.pend) == 0 && len(r.outQ) == 0 {
		out.Last = true
	}
	r.pace()
	return out, nil
}

// hold inserts a raw batch into the slack pen, merging same-second
// batches (later arrivals append after earlier ones, preserving the raw
// stream's within-second order).
func (r *Replay) hold(b Batch) {
	if r.started && b.Second <= r.prevTrace {
		// Older than the slack window: clamp forward to the oldest
		// second that can still be emitted, so nothing is lost.
		b.Second = r.prevTrace + 1
	}
	if b.Second > r.maxSeen {
		r.maxSeen = b.Second
	}
	i := sort.Search(len(r.pend), func(i int) bool { return r.pend[i].Second >= b.Second })
	if i < len(r.pend) && r.pend[i].Second == b.Second {
		r.pend[i].Records = append(r.pend[i].Records, b.Records...)
		r.pend[i].Metrics = append(r.pend[i].Metrics, b.Metrics...)
		return
	}
	r.pend = append(r.pend, Batch{})
	copy(r.pend[i+1:], r.pend[i:])
	r.pend[i] = b
}

// flushReady moves every pen batch that is out of slack danger — older
// than maxSeen by more than SlackSec, or everything on inner EOF — into
// the dense output queue, synthesizing empty seconds for (capped) gaps.
func (r *Replay) flushReady() {
	for len(r.pend) > 0 {
		b := r.pend[0]
		if !r.innerEOF && b.Second+int64(r.opt.SlackSec) >= r.maxSeen {
			return
		}
		r.pend = r.pend[1:]
		r.emit(b)
	}
}

// emit rebases one trace batch onto the replay timeline, preceded by its
// gap's empty seconds.
func (r *Replay) emit(b Batch) {
	if !r.started {
		r.started = true
		r.shiftSec = b.Second
		r.prevTrace = b.Second - 1
	}
	gap := b.Second - r.prevTrace - 1 // idle trace seconds skipped over
	keep := gap
	if r.opt.MaxGapSec >= 0 && keep > int64(r.opt.MaxGapSec) {
		keep = int64(r.opt.MaxGapSec)
	}
	r.shiftSec += gap - keep
	for i := int64(0); i < keep; i++ {
		r.outQ = append(r.outQ, Batch{Second: r.outSec})
		r.outSec++
	}
	shiftMs := r.shiftSec * 1000
	for i := range b.Records {
		b.Records[i].ArrivalMs -= shiftMs
	}
	for i := range b.Metrics {
		b.Metrics[i].Second = r.outSec
	}
	r.prevTrace = b.Second
	b.Second = r.outSec
	r.outSec++
	r.outQ = append(r.outQ, b)
}

// pace sleeps so emission tracks the wall clock at the configured speed.
func (r *Replay) pace() {
	if r.opt.Speed <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / r.opt.Speed)
	now := time.Now()
	if !r.lastEmit.IsZero() {
		if wait := interval - now.Sub(r.lastEmit); wait > 0 {
			time.Sleep(wait)
			now = now.Add(wait)
		}
	}
	r.lastEmit = now
}

// Bounds implements Source: the replay timeline's extent so far — exact
// once the inner source is drained, growing before that.
func (r *Replay) Bounds() (int64, int64) {
	// outSec counts every second already placed on the output queue;
	// pen batches extend the timeline by at least their own count.
	to := r.outSec + int64(len(r.pend))
	return 0, to * 1000
}

// Stats implements Counting by delegation.
func (r *Replay) Stats() Stats {
	if c, ok := r.src.(Counting); ok {
		return c.Stats()
	}
	return Stats{}
}

// Close implements Source.
func (r *Replay) Close() error { return r.src.Close() }
