package ingest

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Format names for Open. FormatAuto guesses from the file extension
// (after stripping a trailing .gz).
const (
	FormatAuto       = ""
	FormatSlowLog    = "slowlog"
	FormatWaitEvents = "waitevents"
	FormatTrace      = "trace"
)

// OpenOptions configures the adapter stack Open builds.
type OpenOptions struct {
	// Replay configures the replay clock wrapped around slow-log and
	// wait-event sources (traces are already dense and skip it).
	Replay ReplayOptions

	// Synth configures session synthesis for slow-log sources.
	Synth SynthOptions

	// WaitEvents configures the wait-event sampler mapping.
	WaitEvents WaitEventsOptions
}

// Open opens a trace file and composes the full adapter stack for its
// format:
//
//	slowlog     SlowLogSource → Replay → SessionSynth
//	waitevents  WaitEventsSource → Replay
//	trace       TraceSource (already dense and rebased)
//
// Gzip compression is detected by content, independent of the name. The
// returned source owns the file handle; Close releases it.
func Open(path, format string, opt OpenOptions) (Source, error) {
	if format == FormatAuto {
		format = guessFormat(path)
		if format == FormatAuto {
			return nil, fmt.Errorf("ingest: cannot guess format of %q; pass slowlog, waitevents, or trace", path)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := openReader(f, format, opt)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &ownedSource{Source: src, closers: []io.Closer{f}}, nil
}

// openReader builds the adapter stack for format on top of r, sniffing
// gzip by magic bytes.
func openReader(r io.Reader, format string, opt OpenOptions) (Source, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("ingest: gzip: %w", err)
		}
		r = zr
	} else {
		r = br
	}
	switch format {
	case FormatSlowLog:
		return NewSessionSynth(NewReplay(SlowLog(r), opt.Replay), opt.Synth), nil
	case FormatWaitEvents:
		return NewReplay(NewWaitEventsSource(r, opt.WaitEvents), opt.Replay), nil
	case FormatTrace:
		return OpenTrace(r)
	default:
		return nil, fmt.Errorf("ingest: unknown format %q", format)
	}
}

// guessFormat maps a file name to a format, "" when unrecognized.
func guessFormat(path string) string {
	name := strings.ToLower(filepath.Base(path))
	name = strings.TrimSuffix(name, ".gz")
	switch filepath.Ext(name) {
	case ".trace", ".pinsql":
		return FormatTrace
	case ".jsonl", ".ndjson":
		return FormatWaitEvents
	case ".log", ".slow", ".txt":
		return FormatSlowLog
	}
	return FormatAuto
}

// ownedSource delegates to an adapter stack and additionally closes the
// underlying file(s).
type ownedSource struct {
	Source
	closers []io.Closer
}

func (o *ownedSource) Close() error {
	err := o.Source.Close()
	for _, c := range o.closers {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats implements Counting by delegation (interface embedding does not
// promote methods outside the embedded interface).
func (o *ownedSource) Stats() Stats {
	if c, ok := o.Source.(Counting); ok {
		return c.Stats()
	}
	return Stats{}
}
