package ingest

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenSlowLogGzipAndPlainAgree(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "slowlog_fixture.log"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain := filepath.Join(dir, "fixture.log")
	if err := os.WriteFile(plain, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(raw)
	zw.Close()
	zipped := filepath.Join(dir, "fixture.log.gz")
	if err := os.WriteFile(zipped, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	sum := func(path string) (batches int, records int64, st Stats) {
		t.Helper()
		src, err := Open(path, FormatAuto, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		for {
			b, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			batches++
			records += int64(len(b.Records))
			if len(b.Metrics) == 0 {
				t.Fatalf("second %d came out of the slow-log stack without a synthesized metric row", b.Second)
			}
		}
		if c, ok := src.(Counting); ok {
			st = c.Stats()
		}
		return
	}

	pb, pr, pst := sum(plain)
	zb, zr, zst := sum(zipped)
	if pb != zb || pr != zr || pst != zst {
		t.Fatalf("plain (%d batches, %d recs, %+v) != gzip (%d batches, %d recs, %+v)", pb, pr, pst, zb, zr, zst)
	}
	if pr == 0 || pst.Records == 0 {
		t.Fatal("no records came through the full slow-log stack")
	}
	if pst.ParseErrors == 0 {
		t.Fatal("fixture parse errors not propagated through the stack")
	}
}

func TestOpenWaitEvents(t *testing.T) {
	src, err := Open(filepath.Join("testdata", "waitevents_fixture.jsonl"), FormatWaitEvents, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var prev int64 = -1
	var withMetrics int
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Second != prev+1 {
			t.Fatalf("not dense: second %d after %d", b.Second, prev)
		}
		prev = b.Second
		if len(b.Metrics) > 0 {
			withMetrics++
		}
	}
	if prev < 30 {
		t.Fatalf("replay ended at second %d, want ~39 fixture seconds", prev)
	}
	if withMetrics < 30 {
		t.Fatalf("only %d seconds carried sampler metrics", withMetrics)
	}
}

func TestOpenUnknownFormat(t *testing.T) {
	if _, err := Open(filepath.Join("testdata", "slowlog_fixture.log"), "nonsense", OpenOptions{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := Open(filepath.Join("testdata", "slowlog_fixture.log"), FormatTrace, OpenOptions{}); err == nil {
		t.Fatal("slow log accepted as a trace header")
	}
}

func TestGuessFormat(t *testing.T) {
	cases := map[string]string{
		"a/b/mysql-slow.log": FormatSlowLog,
		"x.slow.gz":          FormatSlowLog,
		"samples.jsonl":      FormatWaitEvents,
		"samples.ndjson.gz":  FormatWaitEvents,
		"run.trace":          FormatTrace,
		"export.pinsql.gz":   FormatTrace,
		"mystery.bin":        FormatAuto,
		"noextension":        FormatAuto,
	}
	for path, want := range cases {
		if got := guessFormat(path); got != want {
			t.Errorf("guessFormat(%q) = %q, want %q", path, got, want)
		}
	}
}
