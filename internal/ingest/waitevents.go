package ingest

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strings"
	"time"

	"pinsql/internal/dbsim"
)

// WaitEventsSource parses a pg_stat_activity-style wait-event sample
// stream: JSONL, one snapshot of the instance's sessions per line,
//
//	{"ts":"2024-05-12T03:14:15Z","sessions":[
//	  {"pid":4711,"state":"active","wait_event_type":"Lock",
//	   "wait_event":"transactionid","query":"UPDATE orders ...",
//	   "query_start":"2024-05-12T03:14:10Z"},
//	  ...]}
//
// Each snapshot becomes one metric row (so this adapter needs no
// SessionSynth): the active-session count is the snapshot's active
// sessions, and wait-event classes map onto the simulator's metric
// vocabulary — Lock waits count as row-lock waits (relation locks as
// metadata-lock waits), IO waits drive the IOPS-usage gauge and on-CPU
// sessions the CPU-usage gauge, both scaled against Options.Cores.
//
// Query-log records are reconstructed ASH-style: a (pid, query_start)
// pair that stops appearing has finished, and is emitted as a LogRecord
// whose arrival is query_start and whose completion is the snapshot time
// at which it disappeared (an over-estimate bounded by one sample
// interval). Sessions still live at EOF flush with the final snapshot's
// time. Records carry TemplateID == "" — the collector's registry
// normalizes raw SQL.
//
// Snapshots may be seconds apart and mildly out of order; wrap the
// source in Replay to densify. Malformed lines are counted and skipped.
type WaitEventsSource struct {
	r     *bufio.Scanner
	opt   WaitEventsOptions
	live  map[liveKey]*liveQuery
	queue []Batch // completed batches not yet handed out
	eof   bool
	stats Stats
	ord   int64 // snapshot ordinal, for disappearance detection

	firstMs, lastMs int64
}

// WaitEventsOptions configures the sampler adapter.
type WaitEventsOptions struct {
	// Cores scales on-CPU / in-IO session counts to utilization
	// percentages: usage = min(100, sessions*100/Cores). Default 8.
	Cores int
}

type liveKey struct {
	pid     int64
	startMs int64
}

type liveQuery struct {
	sql      string
	lastMs   int64 // snapshot time the query was last seen
	lockMs   float64
	lastSeen int64 // snapshot ordinal, for disappearance detection
}

type weSample struct {
	TS       string      `json:"ts"`
	Sessions []weSession `json:"sessions"`
}

type weSession struct {
	PID        int64  `json:"pid"`
	State      string `json:"state"`
	WaitType   string `json:"wait_event_type"`
	WaitEvent  string `json:"wait_event"`
	Query      string `json:"query"`
	QueryStart string `json:"query_start"`
}

// NewWaitEventsSource wraps r. The reader stays owned by the caller.
func NewWaitEventsSource(r io.Reader, opt WaitEventsOptions) *WaitEventsSource {
	if opt.Cores <= 0 {
		opt.Cores = 8
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &WaitEventsSource{r: sc, opt: opt, live: make(map[liveKey]*liveQuery)}
}

// Next implements Source: one batch per snapshot line.
func (s *WaitEventsSource) Next() (Batch, error) {
	for len(s.queue) == 0 && !s.eof {
		if !s.r.Scan() {
			s.eof = true
			s.flushLive(s.lastMs)
			break
		}
		s.sample(s.r.Bytes())
	}
	if len(s.queue) == 0 {
		return Batch{}, io.EOF
	}
	b := s.queue[0]
	s.queue = s.queue[1:]
	b.Last = s.eof && len(s.queue) == 0
	return b, nil
}

// sample folds one snapshot line into a batch.
func (s *WaitEventsSource) sample(raw []byte) {
	var snap weSample
	if err := json.Unmarshal(raw, &snap); err != nil {
		s.stats.ParseErrors++
		return
	}
	ts, err := time.Parse(time.RFC3339Nano, snap.TS)
	if err != nil {
		s.stats.ParseErrors++
		return
	}
	tMs := ts.UnixMilli()
	if s.firstMs == 0 || tMs < s.firstMs {
		s.firstMs = tMs
	}
	if tMs > s.lastMs {
		s.lastMs = tMs
	}
	s.ord++
	ord := s.ord

	row := dbsim.SecondMetrics{Second: tMs / 1000}
	for _, sess := range snap.Sessions {
		if !strings.EqualFold(sess.State, "active") {
			continue
		}
		row.ActiveSession++
		switch strings.ToLower(sess.WaitType) {
		case "lock":
			if strings.EqualFold(sess.WaitEvent, "relation") {
				row.MDLWaits++
			} else {
				row.RowLockWaits++
			}
		case "io":
			row.IOPSUsage++
		case "", "cpu":
			row.CPUUsage++
		}
		s.track(sess, tMs, ord)
	}
	row.AvgActiveSession = row.ActiveSession
	row.CPUUsage = usagePct(row.CPUUsage, s.opt.Cores)
	row.IOPSUsage = usagePct(row.IOPSUsage, s.opt.Cores)

	b := Batch{Second: row.Second, Metrics: []dbsim.SecondMetrics{row}}
	b.Records = s.reap(ord, tMs)
	row2 := &b.Metrics[0]
	row2.QPS = len(b.Records)
	s.queue = append(s.queue, b)
}

// track registers or refreshes a live query from one session row.
func (s *WaitEventsSource) track(sess weSession, tMs, ord int64) {
	if sess.PID <= 0 || sess.Query == "" {
		return // metrics-only session: nothing to attribute a record to
	}
	start, err := time.Parse(time.RFC3339Nano, sess.QueryStart)
	if err != nil {
		s.stats.ParseErrors++
		return
	}
	k := liveKey{pid: sess.PID, startMs: start.UnixMilli()}
	q, ok := s.live[k]
	if !ok {
		q = &liveQuery{sql: sess.Query}
		s.live[k] = q
	}
	q.lastMs = tMs
	q.lastSeen = ord
	if strings.EqualFold(sess.WaitType, "lock") {
		// Attribute (at least) one sample interval of lock wait; exact
		// wait durations are not recoverable from snapshots.
		q.lockMs += 1000
	}
}

// reap emits records for live queries that vanished before snapshot ord:
// they completed somewhere in (lastMs, tMs]; tMs is used as the bound.
func (s *WaitEventsSource) reap(ord, tMs int64) []dbsim.LogRecord {
	var recs []dbsim.LogRecord
	var done []liveKey
	for k, q := range s.live {
		if q.lastSeen < ord {
			recs = append(recs, s.record(k, q, tMs))
			done = append(done, k)
		}
	}
	for _, k := range done {
		delete(s.live, k)
	}
	sortRecords(recs)
	return recs
}

// flushLive drains every still-running query at stream end.
func (s *WaitEventsSource) flushLive(tMs int64) {
	if len(s.live) == 0 {
		return
	}
	var recs []dbsim.LogRecord
	for k, q := range s.live {
		recs = append(recs, s.record(k, q, tMs))
	}
	s.live = make(map[liveKey]*liveQuery)
	sortRecords(recs)
	sec := tMs / 1000
	if len(s.queue) > 0 && s.queue[len(s.queue)-1].Second == sec {
		last := &s.queue[len(s.queue)-1]
		last.Records = append(last.Records, recs...)
	} else {
		s.queue = append(s.queue, Batch{Second: sec, Records: recs})
	}
}

func (s *WaitEventsSource) record(k liveKey, q *liveQuery, endMs int64) dbsim.LogRecord {
	s.stats.Records++
	dur := float64(endMs - k.startMs)
	if dur < 0 {
		dur = 0
	}
	sql := strings.ToValidUTF8(q.sql, "�")
	return dbsim.LogRecord{
		SQL:        sql,
		Table:      guessTable(sql),
		Kind:       guessKind(sql),
		ArrivalMs:  k.startMs,
		ResponseMs: dur,
		LockWaitMs: q.lockMs,
	}
}

// sortRecords orders reaped records deterministically (map iteration is
// random): by arrival, then SQL text.
func sortRecords(recs []dbsim.LogRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].ArrivalMs != recs[j].ArrivalMs {
			return recs[i].ArrivalMs < recs[j].ArrivalMs
		}
		return recs[i].SQL < recs[j].SQL
	})
}

func usagePct(sessions float64, cores int) float64 {
	pct := sessions * 100 / float64(cores)
	if pct > 100 {
		pct = 100
	}
	return pct
}

// Bounds implements Source: best-effort, growing as snapshots stream in.
func (s *WaitEventsSource) Bounds() (int64, int64) {
	if s.firstMs == 0 {
		return 0, 0
	}
	return s.firstMs, s.lastMs + 1000
}

// Stats implements Counting.
func (s *WaitEventsSource) Stats() Stats { return s.stats }

// Close implements Source. The underlying reader belongs to the caller.
func (s *WaitEventsSource) Close() error { return nil }
