package ingest

import (
	"io"

	"pinsql/internal/dbsim"
)

// SessionSynth derives per-second instance metrics from the query stream
// itself, for traces that carry no sampler output (a MySQL slow log is
// just statements). The active-session series — the detector's headline
// metric (Definition II.4) — is reconstructed the ASH way: a statement
// occupies one session over [arrival, completion), so the session count
// at an instant is the number of overlapping statement spans.
//
// Because the stream is emission-ordered, a span covering second s is
// only known once its statement completes — possibly much later. The
// synthesizer therefore holds a bounded lookahead of Lookahead seconds
// before releasing a batch; statements longer than the lookahead are
// counted only over their last Lookahead seconds (an explicit
// under-count, preferred over unbounded buffering).
//
// The input must already be dense (wrap raw adapters in Replay first).
// Batches that carry sampler metrics pass through untouched — synthesis
// only fills silence.
type SessionSynth struct {
	src       Source
	lookahead int64

	buf      []Batch
	innerEOF bool
	innerErr error
	spans    []span
}

// span is one statement's session occupancy.
type span struct {
	arrMs, emMs int64
	lockWait    bool
}

// SynthOptions configures SessionSynth.
type SynthOptions struct {
	// LookaheadSec bounds how far past a second the synthesizer reads
	// before computing that second's session count. Default 300.
	LookaheadSec int
}

// NewSessionSynth wraps a dense source.
func NewSessionSynth(src Source, opt SynthOptions) *SessionSynth {
	if opt.LookaheadSec <= 0 {
		opt.LookaheadSec = 300
	}
	return &SessionSynth{src: src, lookahead: int64(opt.LookaheadSec)}
}

// Next implements Source.
func (s *SessionSynth) Next() (Batch, error) {
	for !s.innerEOF && (len(s.buf) == 0 || s.buf[len(s.buf)-1].Second-s.buf[0].Second < s.lookahead) {
		b, err := s.src.Next()
		if err == io.EOF {
			s.innerEOF = true
			break
		}
		if err != nil {
			s.innerErr = err
			s.innerEOF = true
			break
		}
		for _, r := range b.Records {
			s.spans = append(s.spans, span{arrMs: r.ArrivalMs, emMs: EmissionMs(r), lockWait: r.LockWaitMs > 0})
		}
		s.buf = append(s.buf, b)
	}
	if len(s.buf) == 0 {
		if s.innerErr != nil {
			err := s.innerErr
			s.innerErr = nil
			return Batch{}, err
		}
		return Batch{}, io.EOF
	}
	b := s.buf[0]
	s.buf = s.buf[1:]
	if len(b.Metrics) == 0 {
		b.Metrics = []dbsim.SecondMetrics{s.synthesize(b.Second)}
	}
	s.prune(b.Second)
	return b, nil
}

// synthesize computes second sec's metric row from the known spans.
func (s *SessionSynth) synthesize(sec int64) dbsim.SecondMetrics {
	t0 := sec * 1000
	t1 := t0 + 1000
	mid := t0 + 500
	row := dbsim.SecondMetrics{Second: sec}
	var avg float64
	for _, sp := range s.spans {
		if sp.arrMs <= mid && mid < sp.emMs {
			row.ActiveSession++
		}
		if lo, hi := max64(sp.arrMs, t0), min64(sp.emMs, t1); hi > lo {
			avg += float64(hi-lo) / 1000
		}
		if sp.arrMs >= t0 && sp.arrMs < t1 {
			row.QPS++
			if sp.lockWait {
				row.RowLockWaits++
			}
		}
	}
	row.AvgActiveSession = avg
	return row
}

// prune drops spans that cannot overlap any second after sec.
func (s *SessionSynth) prune(sec int64) {
	cut := (sec + 1) * 1000
	kept := s.spans[:0]
	for _, sp := range s.spans {
		if sp.emMs > cut {
			kept = append(kept, sp)
		}
	}
	s.spans = kept
}

// Bounds implements Source by delegation.
func (s *SessionSynth) Bounds() (int64, int64) { return s.src.Bounds() }

// Stats implements Counting by delegation.
func (s *SessionSynth) Stats() Stats {
	if c, ok := s.src.(Counting); ok {
		return c.Stats()
	}
	return Stats{}
}

// Close implements Source.
func (s *SessionSynth) Close() error { return s.src.Close() }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
