package ingest

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"unicode/utf8"

	"pinsql/internal/dbsim"
)

// FuzzSlowLogParser holds the slow-log parser to three promises on
// arbitrary input: it never panics, every record it emits carries valid
// UTF-8 SQL (and an empty TemplateID, since interning happens in the
// collector), and whatever it parses survives a serialize→re-parse round
// trip through the trace codec bit-identically.
func FuzzSlowLogParser(f *testing.F) {
	// Well-formed entry.
	f.Add("# Time: 2023-05-12T03:14:15Z\n# User@Host: a[a] @ h [1.2.3.4]\n# Query_time: 0.5  Lock_time: 0.001 Rows_sent: 1  Rows_examined: 10\nSET timestamp=1683861255;\nSELECT * FROM orders WHERE id = 7;\n")
	// Torn tail: statement cut off at EOF.
	f.Add("# Time: 2023-05-12T03:14:15Z\n# Query_time: 0.5  Lock_time: 0 Rows_sent: 0  Rows_examined: 0\nSET timestamp=1683861255;\nSELECT id FROM orders WHERE\n")
	// Interleaved header: a new entry interrupts an unterminated statement.
	f.Add("# Time: 2023-05-12T03:14:15Z\n# Query_time: 0.2  Lock_time: 0 Rows_sent: 0  Rows_examined: 0\nSET timestamp=1683861255;\nSELECT a, b\n# Time: 2023-05-12T03:14:16Z\n# Query_time: 0.3  Lock_time: 0 Rows_sent: 0  Rows_examined: 0\nSET timestamp=1683861256;\nSELECT 1;\n")
	// Legacy time format, use statement, multi-line SQL.
	f.Add("# Time: 230512  3:14:20\n# Query_time: 2.1  Lock_time: 0 Rows_sent: 1  Rows_examined: 9\nuse shop;\nSELECT COUNT(*)\n  FROM order_items\n WHERE shipped = 0;\n")
	// Restart banner mid-file, bad numbers, bad timestamp, invalid UTF-8.
	f.Add("/usr/sbin/mysqld, Version: 8.0.32 started with:\n# Time: not-a-time\n# Query_time: NaN  Lock_time: -1 Rows_sent: x  Rows_examined: -5\nSELECT \xff\xfe;\n")
	// Empty and header-only inputs.
	f.Add("")
	f.Add("# Time: 2023-05-12T03:14:15Z\n")

	f.Fuzz(func(t *testing.T, input string) {
		src := SlowLog(strings.NewReader(input))
		var recs []dbsim.LogRecord
		var minEm, maxEm int64
		for {
			b, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("scanner error on string input: %v", err)
			}
			for _, r := range b.Records {
				if !utf8.ValidString(r.SQL) {
					t.Fatalf("invalid UTF-8 SQL: %q", r.SQL)
				}
				if !utf8.ValidString(r.Table) {
					t.Fatalf("invalid UTF-8 table: %q", r.Table)
				}
				if r.TemplateID != "" {
					t.Fatalf("parser assigned TemplateID %q", r.TemplateID)
				}
				em := EmissionMs(r)
				if len(recs) == 0 || em < minEm {
					minEm = em
				}
				if len(recs) == 0 || em > maxEm {
					maxEm = em
				}
				recs = append(recs, r)
			}
		}
		st := src.Stats()
		if int64(len(recs)) != st.Records {
			t.Fatalf("emitted %d records, Stats.Records = %d", len(recs), st.Records)
		}
		if len(recs) == 0 {
			return
		}

		// Round trip through the trace codec. Extreme timestamps would
		// make the dense timeline absurdly long; the replay clock exists
		// for those, so bound the codec check to sane spans.
		fromMs := (minEm / 1000) * 1000
		if minEm < 0 {
			return
		}
		toMs := maxEm + 1
		if (toMs-fromMs)/1000 > 100_000 {
			return
		}
		var buf bytes.Buffer
		if err := WriteTraceData(&buf, fromMs, toMs, recs, nil); err != nil {
			t.Fatalf("WriteTraceData: %v", err)
		}
		back, err := OpenTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("OpenTrace of own output: %v", err)
		}
		var got []dbsim.LogRecord
		for {
			b, err := back.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			got = append(got, b.Records...)
		}
		if bst := back.Stats(); bst.ParseErrors != 0 {
			t.Fatalf("re-parse of own trace hit %d parse errors", bst.ParseErrors)
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip lost records: wrote %d, read %d", len(recs), len(got))
		}
		// chop may regroup batches but preserves record order and content.
		for i := range recs {
			if recs[i] != got[i] {
				t.Fatalf("record %d changed in round trip:\nwrote %+v\nread  %+v", i, recs[i], got[i])
			}
		}
	})
}
