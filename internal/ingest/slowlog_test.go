package ingest

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"

	"pinsql/internal/sqltemplate"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata goldens from current output")

// slowEntry is one parsed record as serialized into the golden file:
// the normalized template stands in for raw SQL so the golden pins the
// whole normalization path, not just the parser.
type slowEntry struct {
	Template    string  `json:"template"`
	Table       string  `json:"table"`
	Kind        int     `json:"kind"`
	ArrivalMs   int64   `json:"arrival_ms"`
	ResponseMs  float64 `json:"response_ms"`
	LockWaitMs  float64 `json:"lock_wait_ms,omitempty"`
	Examined    int64   `json:"rows_examined,omitempty"`
	EmissionSec int64   `json:"emission_sec"`
}

type slowGolden struct {
	Records     int64       `json:"records"`
	ParseErrors int64       `json:"parse_errors"`
	FromMs      int64       `json:"from_ms"`
	ToMs        int64       `json:"to_ms"`
	Entries     []slowEntry `json:"entries"`
}

func TestSlowLogGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "slowlog_fixture.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src := SlowLog(f)

	var got slowGolden
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range b.Records {
			if r.TemplateID != "" {
				t.Fatalf("record %q left with TemplateID %q, want empty (registry interns)", r.SQL, r.TemplateID)
			}
			if !utf8.ValidString(r.SQL) {
				t.Fatalf("invalid UTF-8 in SQL %q", r.SQL)
			}
			got.Entries = append(got.Entries, slowEntry{
				Template:    sqltemplate.Normalize(r.SQL),
				Table:       r.Table,
				Kind:        int(r.Kind),
				ArrivalMs:   r.ArrivalMs,
				ResponseMs:  r.ResponseMs,
				LockWaitMs:  r.LockWaitMs,
				Examined:    r.ExaminedRows,
				EmissionSec: b.Second,
			})
		}
	}
	st := src.Stats()
	got.Records, got.ParseErrors = st.Records, st.ParseErrors
	got.FromMs, got.ToMs = src.Bounds()

	// Structural checks independent of the golden: the fixture ends in a
	// truncated tail and contains an interleaved header and a bad
	// Query_time line, all of which must be counted, not fatal.
	if st.ParseErrors < 3 {
		t.Errorf("ParseErrors = %d, want >= 3 (torn tail, interleaved header, bad Query_time)", st.ParseErrors)
	}
	if int64(len(got.Entries)) != st.Records {
		t.Errorf("drained %d records, stats say %d", len(got.Entries), st.Records)
	}
	if st.Records < 40 {
		t.Errorf("Records = %d, want >= 40", st.Records)
	}

	compareGolden(t, filepath.Join("testdata", "slowlog_fixture.golden.json"), got)
}

// compareGolden marshals got and diffs it against (or rewrites) the
// golden file.
func compareGolden(t *testing.T, path string, got any) {
	t.Helper()
	raw, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if *updateGoldens {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-goldens to create)", err)
	}
	if string(want) != string(raw) {
		t.Fatalf("output differs from %s (run with -update-goldens after intentional changes)\nfirst diff near: %s",
			path, firstDiff(string(want), string(raw)))
	}
}

func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: want %s got %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length: want %d lines, got %d", len(la), len(lb))
}
