package ingest

import (
	"io"
	"reflect"
	"testing"

	"pinsql/internal/dbsim"
	"pinsql/internal/workload"
)

func rec(arrivalMs int64, responseMs float64) dbsim.LogRecord {
	return dbsim.LogRecord{TemplateID: "t", SQL: "SELECT 1", ArrivalMs: arrivalMs, ResponseMs: responseMs}
}

// TestSliceSourceDense checks the dense-batch contract: one batch per
// second over the full range, records placed at their emission second in
// slice order with the monotone clamp, metrics placed by absolute second.
func TestSliceSourceDense(t *testing.T) {
	recs := []dbsim.LogRecord{
		rec(100, 50),    // emission 150 → sec 0
		rec(500, 2200),  // emission 2700 → sec 2
		rec(900, 100),   // emission 1000 → sec 1, but clamped to 2 (monotone)
		rec(3100, 9000), // emission 12100 → past the range, clamped to last sec
	}
	rows := []dbsim.SecondMetrics{
		{Second: 1, ActiveSession: 3},
		{Second: 1, ActiveSession: 4}, // duplicate second: both kept in the batch
		{Second: 9, ActiveSession: 7}, // out of range: dropped
	}
	src := NewSliceSource(0, 4000, recs, rows)
	if from, to := src.Bounds(); from != 0 || to != 4000 {
		t.Fatalf("bounds = [%d, %d)", from, to)
	}
	var got []Batch
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if len(got) != 4 {
		t.Fatalf("batches = %d, want 4 (dense)", len(got))
	}
	for i, b := range got {
		if b.Second != int64(i) {
			t.Fatalf("batch %d has second %d", i, b.Second)
		}
	}
	if len(got[0].Records) != 1 || len(got[1].Records) != 0 || len(got[2].Records) != 2 || len(got[3].Records) != 1 {
		t.Fatalf("record placement: %d/%d/%d/%d", len(got[0].Records), len(got[1].Records), len(got[2].Records), len(got[3].Records))
	}
	// Monotone clamp keeps slice order: the 2700-emission record stays
	// ahead of the 1000-emission one inside second 2.
	if got[2].Records[0].ArrivalMs != 500 || got[2].Records[1].ArrivalMs != 900 {
		t.Fatalf("second 2 order: %+v", got[2].Records)
	}
	if len(got[1].Metrics) != 2 || got[1].Metrics[1].ActiveSession != 4 {
		t.Fatalf("metric placement: %+v", got[1].Metrics)
	}
	if len(got[3].Metrics) != 0 {
		t.Fatalf("out-of-range metric row kept: %+v", got[3].Metrics)
	}
}

// TestPlayerWindows drives a 4-second trace through two 2-second windows:
// dense rows out (duplicates last-wins, rebased to window-relative),
// record late-count, the `more` flag, and io.EOF on the window after the
// end.
func TestPlayerWindows(t *testing.T) {
	recs := []dbsim.LogRecord{
		rec(100, 50),   // sec 0
		rec(1200, 100), // sec 1
		rec(1900, 700), // emission 2600 → sec 2, arrival inside window 1 → late for window 2
		rec(3000, 500), // sec 3
	}
	rows := []dbsim.SecondMetrics{
		{Second: 0, ActiveSession: 1},
		{Second: 1, ActiveSession: 2},
		{Second: 2, ActiveSession: 5},
		{Second: 2, ActiveSession: 6}, // duplicate: last wins
		{Second: 3, ActiveSession: 9},
	}
	p := NewPlayer(NewSliceSource(0, 4000, recs, rows))

	var w0 []dbsim.LogRecord
	rows0, more, err := p.PlayWindow(0, 2000, func(r dbsim.LogRecord) { w0 = append(w0, r) })
	if err != nil || !more {
		t.Fatalf("window 0: more=%v err=%v", more, err)
	}
	if len(w0) != 2 || len(rows0) != 2 {
		t.Fatalf("window 0: %d recs, %d rows", len(w0), len(rows0))
	}
	if rows0[0].Second != 0 || rows0[1].Second != 1 || rows0[1].ActiveSession != 2 {
		t.Fatalf("window 0 rows: %+v", rows0)
	}

	var w1 []dbsim.LogRecord
	rows1, more, err := p.PlayWindow(2000, 4000, func(r dbsim.LogRecord) { w1 = append(w1, r) })
	if err != nil || more {
		t.Fatalf("window 1: more=%v err=%v", more, err)
	}
	if len(w1) != 2 {
		t.Fatalf("window 1: %d recs", len(w1))
	}
	if rows1[0].Second != 0 || rows1[0].ActiveSession != 6 || rows1[1].ActiveSession != 9 {
		t.Fatalf("window 1 rows: %+v", rows1)
	}
	st := p.Stats()
	if st.Records != 4 || st.Late != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LagSeconds != 0 {
		t.Fatalf("lag after full replay: %v", st.LagSeconds)
	}

	if _, _, err := p.PlayWindow(4000, 6000, nil); err != io.EOF {
		t.Fatalf("window past the end: err=%v, want io.EOF", err)
	}
}

// TestPlayerSkipTo drains a generic (non-seeking) source up to the resume
// boundary without counting the skipped records.
func TestPlayerSkipTo(t *testing.T) {
	recs := []dbsim.LogRecord{rec(100, 10), rec(1100, 10), rec(2100, 10)}
	p := NewPlayer(NewSliceSource(0, 3000, recs, nil))
	if err := p.SkipTo(2000); err != nil {
		t.Fatal(err)
	}
	var got []dbsim.LogRecord
	if _, _, err := p.PlayWindow(2000, 3000, func(r dbsim.LogRecord) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ArrivalMs != 2100 {
		t.Fatalf("after skip: %+v", got)
	}
	if st := p.Stats(); st.Records != 1 {
		t.Fatalf("skipped records counted: %+v", st)
	}
}

// TestSimSourceMatchesDirectRun is the seam's no-op proof at unit level:
// the record stream and metric rows the Player extracts from a SimSource
// are bit-identical to calling dbsim.Instance.Run directly with the
// pre-seam per-window reseed/source arguments.
func TestSimSourceMatchesDirectRun(t *testing.T) {
	const (
		seed      = int64(11)
		windows   = 2
		windowSec = 60
	)
	setup := func() (*workload.World, *dbsim.Instance) {
		world := workload.DefaultWorld(seed)
		world.AddFillerServices(2, 4)
		cfg := dbsim.DefaultConfig()
		cfg.Seed = seed
		sim := dbsim.NewInstance(cfg)
		world.Apply(sim)
		return world, sim
	}

	world, sim := setup()
	p := NewPlayer(NewSimSource(world, sim, seed, windows, windowSec))
	dworld, dsim := setup()

	windowMs := int64(windowSec) * 1000
	for w := 0; w < windows; w++ {
		fromMs := int64(w) * windowMs
		toMs := fromMs + windowMs
		var got []dbsim.LogRecord
		rows, more, err := p.PlayWindow(fromMs, toMs, func(r dbsim.LogRecord) { got = append(got, r) })
		if err != nil {
			t.Fatal(err)
		}
		if wantMore := w < windows-1; more != wantMore {
			t.Fatalf("window %d: more=%v, want %v", w, more, wantMore)
		}

		var want []dbsim.LogRecord
		dsim.ReseedSampling(WindowSeed(seed, w))
		secs, err := dsim.Run(dbsim.RunOptions{
			StartMs: fromMs,
			EndMs:   toMs,
			Source:  dworld.Source(fromMs, toMs, seed+int64(w)),
			Sink:    func(r dbsim.LogRecord) { want = append(want, r) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d: record stream diverged (%d vs %d records)", w, len(got), len(want))
		}
		if !reflect.DeepEqual(rows, secs) {
			t.Fatalf("window %d: metric rows diverged\n got: %+v\nwant: %+v", w, rows[:3], secs[:3])
		}
	}
}

// TestSimSourceSeek proves SeekMs(w·window) reproduces window w exactly as
// a fresh source that played everything up to it — the crash-recovery
// path.
func TestSimSourceSeek(t *testing.T) {
	const (
		seed      = int64(7)
		windows   = 3
		windowSec = 30
	)
	setup := func() *Player {
		world := workload.DefaultWorld(seed)
		cfg := dbsim.DefaultConfig()
		cfg.Seed = seed
		sim := dbsim.NewInstance(cfg)
		world.Apply(sim)
		return NewPlayer(NewSimSource(world, sim, seed, windows, windowSec))
	}
	windowMs := int64(windowSec) * 1000

	full := setup()
	var wantRecs []dbsim.LogRecord
	var wantRows []dbsim.SecondMetrics
	for w := 0; w < windows; w++ {
		sink := func(r dbsim.LogRecord) {}
		if w == 2 {
			sink = func(r dbsim.LogRecord) { wantRecs = append(wantRecs, r) }
		}
		rows, _, err := full.PlayWindow(int64(w)*windowMs, int64(w+1)*windowMs, sink)
		if err != nil {
			t.Fatal(err)
		}
		if w == 2 {
			wantRows = rows
		}
	}

	seeked := setup()
	if err := seeked.SkipTo(2 * windowMs); err != nil {
		t.Fatal(err)
	}
	var gotRecs []dbsim.LogRecord
	gotRows, more, err := seeked.PlayWindow(2*windowMs, 3*windowMs, func(r dbsim.LogRecord) { gotRecs = append(gotRecs, r) })
	if err != nil {
		t.Fatal(err)
	}
	if more {
		t.Fatal("seeked source reports more after the last window")
	}
	if !reflect.DeepEqual(gotRecs, wantRecs) || !reflect.DeepEqual(gotRows, wantRows) {
		t.Fatal("seeked window 2 diverged from sequentially played window 2")
	}
}
