package ingest

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"pinsql/internal/dbsim"
)

func traceFixture() ([]dbsim.LogRecord, []dbsim.SecondMetrics) {
	recs := []dbsim.LogRecord{
		{TemplateID: "AB12CD34", SQL: "SELECT * FROM orders WHERE id = ?", Table: "orders", ArrivalMs: 100, ResponseMs: 250.5},
		{SQL: "UPDATE orders SET x = 1", Table: "orders", Kind: dbsim.KindUpdate, ArrivalMs: 900, ResponseMs: 1700, LockWaitMs: 120, ExaminedRows: 42},
		{SQL: "SELECT 1", ArrivalMs: 3100, ResponseMs: 10, Throttled: true},
		{SQL: "DELETE FROM t", Kind: dbsim.KindDelete, Table: "t", ArrivalMs: 4200, ResponseMs: 300, TimedOut: true},
	}
	rows := []dbsim.SecondMetrics{
		{Second: 0, ActiveSession: 2, AvgActiveSession: 1.5, CPUUsage: 40, QPS: 2},
		{Second: 2, ActiveSession: 1, IOPSUsage: 12.5, RowLockWaits: 1},
		{Second: 4, ActiveSession: 3, MDLWaits: 2},
	}
	return recs, rows
}

func TestTraceRoundTrip(t *testing.T) {
	recs, rows := traceFixture()
	var buf bytes.Buffer
	if err := WriteTraceData(&buf, 0, 5000, recs, rows); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] != 0x1f || buf.Bytes()[1] != 0x8b {
		t.Fatal("trace is not gzip-framed")
	}

	src, err := OpenTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if from, to := src.Bounds(); from != 0 || to != 5000 {
		t.Fatalf("Bounds = (%d, %d), want (0, 5000)", from, to)
	}

	want := NewSliceSource(0, 5000, recs, rows)
	var sec int64
	for {
		wb, werr := want.Next()
		gb, gerr := src.Next()
		if (werr == io.EOF) != (gerr == io.EOF) {
			t.Fatalf("EOF mismatch at second %d: want %v, got %v", sec, werr, gerr)
		}
		if werr == io.EOF {
			break
		}
		if werr != nil || gerr != nil {
			t.Fatal(werr, gerr)
		}
		if wb.Second != gb.Second || wb.Last != gb.Last {
			t.Fatalf("second %d: batch shape (%d,%v) vs (%d,%v)", sec, wb.Second, wb.Last, gb.Second, gb.Last)
		}
		if !sameRecords(wb.Records, gb.Records) {
			t.Fatalf("second %d: records differ\nwant %+v\ngot  %+v", sec, wb.Records, gb.Records)
		}
		if !sameMetrics(wb.Metrics, gb.Metrics) {
			t.Fatalf("second %d: metrics differ\nwant %+v\ngot  %+v", sec, wb.Metrics, gb.Metrics)
		}
		sec++
	}
	if st := src.Stats(); st.Records != int64(len(recs)) || st.ParseErrors != 0 {
		t.Fatalf("Stats = %+v, want %d records, 0 errors", st, len(recs))
	}
}

func sameRecords(a, b []dbsim.LogRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func sameMetrics(a, b []dbsim.SecondMetrics) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestTraceUncompressedAndMalformed(t *testing.T) {
	raw := `{"format":"pinsql-trace","version":1,"from_ms":0,"to_ms":2000}
{"t":"r","rec":{"SQL":"SELECT 1","ArrivalMs":100,"ResponseMs":50}}
this is not json
{"t":"x"}
{"t":"m","met":{"Second":1,"ActiveSession":4}}
`
	src, err := OpenTrace(bytes.NewReader([]byte(raw)))
	if err != nil {
		t.Fatal(err)
	}
	var nrec, nmet int
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		nrec += len(b.Records)
		nmet += len(b.Metrics)
	}
	if nrec != 1 || nmet != 1 {
		t.Fatalf("got %d records, %d metrics; want 1 and 1", nrec, nmet)
	}
	if st := src.Stats(); st.ParseErrors != 2 {
		t.Fatalf("ParseErrors = %d, want 2 (bad json, unknown type)", st.ParseErrors)
	}
}

func TestTraceHeaderValidation(t *testing.T) {
	cases := []string{
		``,
		`{"format":"something-else","version":1}`,
		`{"format":"pinsql-trace","version":99}`,
		`{"format":"pinsql-trace","version":1,"from_ms":10,"to_ms":5}`,
		`garbage`,
	}
	for _, c := range cases {
		if _, err := OpenTrace(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("OpenTrace(%q) accepted a bad header", c)
		}
	}
}
