// Package ingest feeds the monitoring pipeline from recorded traces.
//
// PinSQL's production deployment (§II, Fig. 2) consumes real slow logs and
// sampled instance metrics; this reproduction historically consumed only
// what dbsim synthesizes. The ingest layer closes that gap with one seam:
// a Source yields the window-agnostic raw stream — query-log records plus
// per-second instance metrics, batched by trace second — and the fleet's
// Player pumps exactly one window's worth of seconds at a time through the
// existing broker → stream-aggregator → collector path. The simulator
// itself is just one Source (SimSource), which is what makes the seam a
// provable no-op for the legacy path: the fingerprint goldens of
// internal/fleet are byte-identical on either side of the refactor.
//
// # The dense-batch contract
//
// A Source emits one Batch per consecutive trace second, starting at its
// lower bound, ending with io.EOF. Seconds with no activity still get a
// (records-less, metrics-less) Batch. Density is what lets the Player stop
// at a window boundary without peeking into the next second — essential
// for the simulator source, where "peeking" would mean simulating window
// w+1 before window w's repairs were applied, and for real traces, where
// it keeps replay single-pass. Raw inputs are rarely dense or ordered;
// adapters stay simple and sparse, and the Replay wrapper densifies,
// re-orders within a bounded slack (mirroring the log store's slack
// contract), and compresses recording gaps.
//
// Records inside a batch are in emission order — the order a database
// writes its slow log, i.e. query completion. Batch concatenation order is
// the collector's insertion order, which is the frame tie-break order, so
// sources must never re-sort across batches.
package ingest

import (
	"io"

	"pinsql/internal/dbsim"
)

// Batch is one trace second's raw stream: the query-log records emitted
// (completed) during that second, in emission order, plus any instance
// metric rows sampled in it. Metric rows carry the absolute trace second
// in SecondMetrics.Second; the Player rewrites them to window-relative
// seconds when it places them.
type Batch struct {
	Second  int64 // absolute trace second (trace epoch, not wall clock)
	Records []dbsim.LogRecord
	Metrics []dbsim.SecondMetrics

	// Last marks the trace's final batch. Sources that know their end
	// (the simulator, in-memory slices, the trace codec) set it so the
	// Player can report exhaustion without pulling past a window
	// boundary — pulling is exactly what the dense contract exists to
	// avoid. Optional: an unmarked source just costs one extra Next call
	// returning io.EOF.
	Last bool
}

// Empty reports whether the batch carries no records and no metric rows.
func (b Batch) Empty() bool { return len(b.Records) == 0 && len(b.Metrics) == 0 }

// Source is a trace of one database instance: the generalization of what
// the fleet used to get from its hardwired dbsim.Instance. Sources are
// single-consumer and not concurrency-safe; the fleet guarantees one
// reader (the per-instance sim slot).
type Source interface {
	// Next returns the next second's batch, or io.EOF when the trace is
	// exhausted. Batches follow the dense contract: consecutive seconds,
	// one batch each, starting at the source's lower bound.
	Next() (Batch, error)

	// Bounds returns the trace extent in absolute trace milliseconds,
	// [fromMs, toMs). Streaming sources that cannot know their end ahead
	// of time report best effort — the extent seen so far — which is
	// enough for the lag gauge; exact bounds come from the trace codec's
	// header or a finished parse.
	Bounds() (fromMs, toMs int64)

	// Close releases the underlying input. Closing mid-trace is allowed.
	Close() error
}

// Stats counts a source chain's parsing work. Wrappers (Replay, session
// synthesis) delegate inward so the chain reports its adapter's totals.
type Stats struct {
	Records     int64 // records the source has parsed/emitted
	ParseErrors int64 // malformed inputs counted and skipped
}

// Counting is implemented by sources that track Stats. Optional: the
// Player treats sources without it as error-free.
type Counting interface {
	Stats() Stats
}

// Seeker is implemented by sources that can jump to an absolute trace
// offset without replaying the skipped prefix (SimSource re-derives any
// window from its seed; the trace codec could index). ms must be a window
// boundary in fleet use. Optional: Player.SkipTo drains generic sources.
type Seeker interface {
	SeekMs(ms int64) error
}

// EmissionMs returns the instant a record enters the raw stream: query
// completion (arrival + response time), except for throttled statements,
// which the database rejects at arrival. This is the batching key — the
// same clock a real slow log is ordered by.
func EmissionMs(r dbsim.LogRecord) int64 {
	if r.Throttled {
		return r.ArrivalMs
	}
	return r.ArrivalMs + int64(r.ResponseMs)
}

// WindowSeed derives the per-window metric-sampling seed from an instance
// seed: independent of how many windows ran before (crash-resume replays a
// window bit-identically) and spread by a splitmix-style odd multiplier so
// neighbouring windows do not correlate. Moved here from the fleet so
// every simulator-backed source shares one derivation.
func WindowSeed(seed int64, window int) int64 {
	return seed ^ (int64(window)+1)*-0x61c8864680b583eb // 0x9E3779B97F4A7C15 as signed
}

// chop splits an emission-ordered record slice plus metric rows into the
// dense batch sequence covering [fromMs, toMs). Records keep their slice
// order: each is placed at its emission second, clamped monotonically (a
// record never lands before its predecessor's second — float rounding in
// ResponseMs must not reorder the stream) and clamped into the range.
// Metric rows are placed by their absolute Second; rows outside the range
// are dropped.
func chop(fromMs, toMs int64, recs []dbsim.LogRecord, rows []dbsim.SecondMetrics) []Batch {
	fromSec := fromMs / 1000
	seconds := (toMs - fromMs + 999) / 1000
	if seconds <= 0 {
		return nil
	}
	batches := make([]Batch, seconds)
	for i := range batches {
		batches[i].Second = fromSec + int64(i)
	}
	cur := int64(0)
	for _, r := range recs {
		rel := EmissionMs(r)/1000 - fromSec
		if rel < cur {
			rel = cur
		}
		if rel >= seconds {
			rel = seconds - 1
		}
		cur = rel
		batches[rel].Records = append(batches[rel].Records, r)
	}
	for _, m := range rows {
		rel := m.Second - fromSec
		if rel < 0 || rel >= seconds {
			continue
		}
		batches[rel].Metrics = append(batches[rel].Metrics, m)
	}
	return batches
}

// SliceSource serves an in-memory trace: records in emission order plus
// metric rows (absolute seconds), chopped into dense batches over
// [fromMs, toMs). It is the bridge from materialized data — a diagnosed
// frame, a fuzz repro, a test fixture — to the Source seam.
type SliceSource struct {
	fromMs, toMs int64
	batches      []Batch
	pos          int
}

// NewSliceSource builds a SliceSource over [fromMs, toMs). recs must be in
// emission order (sort by EmissionMs first if unsure); rows carry absolute
// trace seconds.
func NewSliceSource(fromMs, toMs int64, recs []dbsim.LogRecord, rows []dbsim.SecondMetrics) *SliceSource {
	return &SliceSource{
		fromMs:  fromMs,
		toMs:    toMs,
		batches: chop(fromMs, toMs, recs, rows),
	}
}

// Next implements Source.
func (s *SliceSource) Next() (Batch, error) {
	if s.pos >= len(s.batches) {
		return Batch{}, io.EOF
	}
	b := s.batches[s.pos]
	s.pos++
	b.Last = s.pos == len(s.batches)
	return b, nil
}

// Bounds implements Source; SliceSource bounds are exact.
func (s *SliceSource) Bounds() (int64, int64) { return s.fromMs, s.toMs }

// Close implements Source.
func (s *SliceSource) Close() error { return nil }

// maxLineBytes bounds a single input line across every textual adapter:
// multi-megabyte statements are real in slow logs, but an unbounded line
// is an attack on memory.
const maxLineBytes = 4 * 1024 * 1024
