package ingest

import (
	"io"
	"testing"

	"pinsql/internal/dbsim"
)

// rawSource feeds hand-built sparse batches, for replay-clock tests.
type rawSource struct {
	batches []Batch
	pos     int
}

func (r *rawSource) Next() (Batch, error) {
	if r.pos >= len(r.batches) {
		return Batch{}, io.EOF
	}
	b := r.batches[r.pos]
	r.pos++
	return b, nil
}
func (r *rawSource) Bounds() (int64, int64) { return 0, 0 }
func (r *rawSource) Close() error           { return nil }

func rawBatch(sec int64, arrivals ...int64) Batch {
	b := Batch{Second: sec}
	for _, a := range arrivals {
		b.Records = append(b.Records, dbsim.LogRecord{SQL: "SELECT 1", ArrivalMs: a, ResponseMs: float64(sec*1000 - a)})
	}
	return b
}

func drainReplay(t *testing.T, r *Replay) []Batch {
	t.Helper()
	var out []Batch
	for {
		b, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
}

func TestReplayRebaseAndDensify(t *testing.T) {
	// Trace starts at second 1000, with a 3-second gap after it.
	src := &rawSource{batches: []Batch{
		rawBatch(1000, 999500),
		rawBatch(1004, 1003800),
	}}
	out := drainReplay(t, NewReplay(src, ReplayOptions{}))
	if len(out) != 5 {
		t.Fatalf("got %d batches, want 5 (dense 0..4)", len(out))
	}
	for i, b := range out {
		if b.Second != int64(i) {
			t.Fatalf("batch %d has Second %d", i, b.Second)
		}
	}
	// Second 1000 → 0: arrivals shift by 1000*1000 ms.
	if got := out[0].Records[0].ArrivalMs; got != 999500-1000_000 {
		t.Errorf("rebased arrival = %d, want %d", got, 999500-1000_000)
	}
	if !out[4].Last {
		t.Error("final batch not marked Last")
	}
	if out[1].Records != nil || out[2].Records != nil || out[3].Records != nil {
		t.Error("gap seconds must be empty")
	}
}

func TestReplayGapCompression(t *testing.T) {
	// A 100-second recording gap collapses to MaxGapSec empty seconds,
	// and the later batch's records shift by the dropped 95 seconds too.
	src := &rawSource{batches: []Batch{
		rawBatch(10, 9000),
		rawBatch(111, 110500),
	}}
	out := drainReplay(t, NewReplay(src, ReplayOptions{MaxGapSec: 5}))
	if len(out) != 7 {
		t.Fatalf("got %d batches, want 7 (sec 0, five gap seconds, sec 6)", len(out))
	}
	last := out[6]
	if last.Second != 6 {
		t.Fatalf("compressed batch Second = %d, want 6", last.Second)
	}
	// Trace second 111 lands on replay second 6 → shift = 105 seconds.
	if got := last.Records[0].ArrivalMs; got != 110500-105_000 {
		t.Errorf("arrival after gap = %d, want %d", got, 110500-105_000)
	}

	// MaxGapSec < 0 preserves the whole gap.
	src2 := &rawSource{batches: []Batch{rawBatch(10, 9000), rawBatch(111, 110500)}}
	out2 := drainReplay(t, NewReplay(src2, ReplayOptions{MaxGapSec: -1}))
	if len(out2) != 102 {
		t.Fatalf("uncompressed: got %d batches, want 102", len(out2))
	}
}

func TestReplaySlackReorder(t *testing.T) {
	// Seconds arrive 5,3,4: within the 5s slack they come out sorted.
	src := &rawSource{batches: []Batch{
		rawBatch(5, 4500),
		rawBatch(3, 2500),
		rawBatch(4, 3500),
	}}
	out := drainReplay(t, NewReplay(src, ReplayOptions{}))
	if len(out) != 3 {
		t.Fatalf("got %d batches, want 3", len(out))
	}
	for i, b := range out {
		if b.Second != int64(i) {
			t.Fatalf("batch %d has Second %d, want sorted dense", i, b.Second)
		}
		if len(b.Records) != 1 {
			t.Fatalf("batch %d has %d records", i, len(b.Records))
		}
	}
}

func TestReplayBeyondSlackClamps(t *testing.T) {
	// A batch arriving > SlackSec behind is clamped forward, not dropped.
	src := &rawSource{batches: []Batch{
		rawBatch(100, 99500),
		rawBatch(110, 109500), // flushes second 100 (slack 5)
		rawBatch(99, 98500),   // older than anything still open
		rawBatch(120, 119500),
	}}
	out := drainReplay(t, NewReplay(src, ReplayOptions{MaxGapSec: -1}))
	var total int
	for _, b := range out {
		total += len(b.Records)
	}
	if total != 4 {
		t.Fatalf("replay lost records: %d of 4 came through", total)
	}
}

func TestReplaySameSecondMerge(t *testing.T) {
	src := &rawSource{batches: []Batch{
		rawBatch(7, 6100),
		rawBatch(7, 6200),
		rawBatch(7, 6300),
	}}
	out := drainReplay(t, NewReplay(src, ReplayOptions{}))
	if len(out) != 1 {
		t.Fatalf("got %d batches, want 1 merged", len(out))
	}
	if len(out[0].Records) != 3 {
		t.Fatalf("merged batch has %d records, want 3", len(out[0].Records))
	}
	for i := 1; i < 3; i++ {
		if out[0].Records[i].ArrivalMs < out[0].Records[i-1].ArrivalMs {
			t.Error("within-second order not preserved by merge")
		}
	}
}
